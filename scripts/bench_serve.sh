#!/usr/bin/env sh
# Benchmark fleet-scale serving (the 'serve_fleet' experiment): the
# deterministic million-user traffic harness (cmd/edgepc-loadgen) sweeps the
# overload grid — 1x/10x/100x offered load, Pareto arrivals, diurnal ramp,
# Zipf tenant skew — through the real serve control plane (consistent-hash
# ring, tenant QoS buckets, priority shed controller) on a virtual clock,
# and writes the full report to BENCH_serve.json at the repository root:
# latency quantiles, goodput, per-class fairness, the shed-vs-degrade
# crossover curve, and the goodput-under-stall-storm survivability sweep
# (none / retry2 / retry2+hedge recovery policies at 10% injected stalls).
# Same seed ⇒ bit-identical counts.
#
# The full run calibrates per-tier service times from the real pipeline
# first (-calibrate), so the simulated fleet serves at measured speeds; the
# measured times are recorded in the report as pinned spec inputs.
#
# Usage: scripts/bench_serve.sh [-quick]
#   -quick  CI-scale preset (2 engines, 400ms virtual window; seconds)
#
# Environment:
#   OUT  output JSON path  (default BENCH_serve.json)
#   RAW  raw count lines   (default BENCH_serve.txt)

set -eu

cd "$(dirname "$0")/.."

RAW="${RAW:-BENCH_serve.txt}"
OUT="${OUT:-BENCH_serve.json}"

if [ "${1:-}" = "-quick" ]; then
	go run ./cmd/edgepc-loadgen -quick -out "$OUT" >"$RAW"
else
	go run ./cmd/edgepc-loadgen -calibrate -workload W1 -config S+N \
		-mults 1,10,100 -crossover 1,2,5,10,20,50,100 -out "$OUT" >"$RAW"
fi

echo "wrote $OUT; count lines:"
grep -E '^(scenario|survivability) mult=' "$RAW"
