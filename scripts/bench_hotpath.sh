#!/usr/bin/env sh
# Benchmark the zero-allocation inference hot path and emit a machine-readable
# summary to BENCH_hotpath.json at the repository root: one record per
# benchmark with ns/op, bytes/op and allocs/op (the regression metrics for the
# workspace-backed forward pass).
#
# Usage: scripts/bench_hotpath.sh [benchtime]
#   benchtime  go test -benchtime value, default 10x

set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${1:-10x}"
RAW=BENCH_hotpath.txt
OUT=BENCH_hotpath.json

go test -run '^$' -benchmem -benchtime="$BENCHTIME" \
	-bench 'BenchmarkPipelineFrameAllocs' ./internal/pipeline/ >"$RAW"
go test -run '^$' -benchmem -benchtime="$BENCHTIME" \
	-bench 'BenchmarkMatMulAT' ./internal/tensor/ >>"$RAW"
go test -run '^$' -benchmem -benchtime="$BENCHTIME" \
	-bench 'BenchmarkFig3Pipeline' . >>"$RAW"

# Benchmark lines look like:
#   BenchmarkName-8   10   123456 ns/op   7890 B/op   12 allocs/op
# (the -N GOMAXPROCS suffix is absent on single-core machines).
awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ && /ns\/op/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; bytes = ""; allocs = ""
	for (i = 2; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns = $i
		if ($(i + 1) == "B/op") bytes = $i
		if ($(i + 1) == "allocs/op") allocs = $i
	}
	if (!first) printf ",\n"
	first = 0
	printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
		name, ns, (bytes == "" ? "null" : bytes), (allocs == "" ? "null" : allocs)
}
END { print "\n]" }
' "$RAW" >"$OUT"

echo "wrote $OUT:"
cat "$OUT"
