#!/usr/bin/env sh
# Benchmark large-scale down-sampling (the 'fps' experiment: exact FPS vs
# bucketed pruned Morton-FPS vs pure stride on 100k/1M synthetic clouds) and
# emit the coverage-radius-vs-latency curves to BENCH_fps.json at the
# repository root: one record per (cloud size, sampler, quality) point.
#
# Usage: scripts/bench_fps.sh [-quick]
#   -quick  run the reduced-size clouds (20k/50k points; seconds, used by CI)
#
# Environment:
#   OUT  output JSON path  (default BENCH_fps.json)
#   RAW  raw table path    (default BENCH_fps.txt)

set -eu

cd "$(dirname "$0")/.."

QUICK=""
if [ "${1:-}" = "-quick" ]; then
	QUICK="-quick"
fi
RAW="${RAW:-BENCH_fps.txt}"
OUT="${OUT:-BENCH_fps.json}"

go run ./cmd/edgepc-bench $QUICK fps >"$RAW"

# Data rows look like (tabwriter-aligned):
#   100000  bucketfps  0.90  0.0639  1.014  81.399  13.28x
#   100000  fps(exact) -     0.0630  1.000  1081.116  1.00x
awk '
BEGIN { print "["; first = 1 }
$1 ~ /^[0-9]+$/ && NF == 7 {
	quality = ($3 == "-") ? "null" : $3
	speedup = $7
	sub(/x$/, "", speedup)
	if (!first) printf ",\n"
	first = 0
	printf "  {\"n_points\": %s, \"sampler\": \"%s\", \"quality\": %s, \"cover_radius\": %s, \"radius_vs_fps\": %s, \"ms\": %s, \"speedup_vs_fps\": %s}", \
		$1, $2, quality, $4, $5, $6, speedup
}
END { print "\n]" }
' "$RAW" >"$OUT"

echo "wrote $OUT:"
cat "$OUT"
