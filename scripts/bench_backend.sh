#!/usr/bin/env sh
# Benchmark the three tensor compute backends (naive / blocked / int8) on the
# Fig. 3 hot path and emit a machine-readable summary to BENCH_backend.json at
# the repository root: one record per benchmark with ns/op, bytes/op and
# allocs/op. Two views per backend:
#
#   BenchmarkBackendMatMul*        the bare 2048x128 · 128x128 matmul kernel
#   BenchmarkPipelineFrameBackend* a full PointNet++ segmentation frame
#
# The blocked backend must show a measured ns/op win over naive on the bare
# kernel; the committed BENCH_backend.json records the reference run.
#
# Usage: scripts/bench_backend.sh [benchtime]
#   benchtime  go test -benchtime value, default 10x

set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${1:-10x}"
RAW=BENCH_backend.txt
OUT=BENCH_backend.json

go test -run '^$' -benchmem -benchtime="$BENCHTIME" \
	-bench 'BenchmarkBackendMatMul' ./internal/tensor/ >"$RAW"
go test -run '^$' -benchmem -benchtime="$BENCHTIME" \
	-bench 'BenchmarkPipelineFrameBackend' ./internal/pipeline/ >>"$RAW"

# Benchmark lines look like:
#   BenchmarkName-8   10   123456 ns/op   7890 B/op   12 allocs/op
# (the -N GOMAXPROCS suffix is absent on single-core machines).
awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ && /ns\/op/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; bytes = ""; allocs = ""
	for (i = 2; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns = $i
		if ($(i + 1) == "B/op") bytes = $i
		if ($(i + 1) == "allocs/op") allocs = $i
	}
	if (!first) printf ",\n"
	first = 0
	printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
		name, ns, (bytes == "" ? "null" : bytes), (allocs == "" ? "null" : allocs)
}
END { print "\n]" }
' "$RAW" >"$OUT"

echo "wrote $OUT:"
cat "$OUT"
