#!/usr/bin/env sh
# Reproduce everything: tests, the full experiment suite, and the host
# wall-clock benchmarks. Writes test_output.txt, bench_results_full.txt and
# bench_output.txt at the repository root.
#
# Usage: scripts/reproduce.sh [-quick]
#   -quick  run the experiment suite at reduced scale (seconds, not minutes)

set -eu

cd "$(dirname "$0")/.."

QUICK=""
if [ "${1:-}" = "-quick" ]; then
	QUICK="-quick"
fi

echo "== go test ./... =="
go test ./... 2>&1 | tee test_output.txt

echo "== experiment suite =="
go run ./cmd/edgepc-bench ${QUICK} 2>&1 | tee bench_results_full.txt

echo "== benchmarks =="
go test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

echo "done: test_output.txt, bench_results_full.txt, bench_output.txt"
