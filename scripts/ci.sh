#!/usr/bin/env sh
# Tier-1+ gate: everything the repo promises must stay green, plus formatting
# and static invariants, the race-detector pass over the packages with
# goroutine-parallel kernels, and a one-iteration benchmark smoke so the
# hot-path benchmarks can never rot.
#
# Usage: scripts/ci.sh

set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -l =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet ./... =="
go vet ./...

echo "== go build ./... =="
go build ./...

echo "== edgepc-lint ./... (static invariants; see DESIGN.md §7) =="
# Pin the interprocedural analyzer pack by name so a renamed/deleted analyzer
# fails loudly instead of silently shrinking coverage (mirrors the fuzz-target
# pinning below).
lint_list=$(go run ./cmd/edgepc-lint -list)
for a in lockpair wgbalance chanlife ctxflow; do
	if ! printf '%s\n' "$lint_list" | grep -q "^$a "; then
		echo "edgepc-lint: analyzer '$a' missing from -list" >&2
		exit 1
	fi
done
go run ./cmd/edgepc-lint ./...

echo "== escape gate (hotpath heap escapes vs baseline; see DESIGN.md §7) =="
scripts/escape_gate.sh

echo "== go test -race ./internal/lint/... (analyzer engine) =="
go test -race ./internal/lint/...

echo "== go test -race (parallel kernels + workspace hot path + serving) =="
go test -race ./internal/tensor/... ./internal/parallel/... ./internal/morton/... ./internal/pipeline/... ./internal/nn/... ./internal/model/... ./internal/serve/... ./internal/loadgen/...

echo "== go test ./... =="
go test ./...

echo "== fuzz smoke (seed corpus only) =="
# Plain `go test` already runs every f.Add seed through the fuzz targets;
# this stage just pins the targets by name so a renamed/deleted one fails
# loudly instead of silently shrinking coverage.
go test -run '^Fuzz' ./internal/compress/ ./internal/dataset/ ./internal/nn/ ./internal/neighbor/ ./internal/serve/ ./internal/loadgen/

echo "== chaos smoke (fault injection under -race; see DESIGN.md §11, §15) =="
# The resilience layer's promises — panics isolated and quarantined, invalid
# input rejected at admission, Close never hung by a parked breaker, the
# degradation ladder stepping both ways, stalled workers detected and
# respawned, retries/hedges conserving the accounting under a stall storm —
# exercised under the race detector.
go test -race -run 'TestChaos|TestCircuitBreaker|TestCloseDoesNotWaitOutBreakerPark|TestLastResort|TestDegradation|TestAdmission|TestCorruptInjection|TestDelayAndStall|TestFleetChaos|TestStall|TestBreakerBackoffJitterPinned|TestRetry|TestHedge|TestRouterSurvivability' ./internal/serve/
go test -run '^$' -fuzz '^FuzzSubmitFrame$' -fuzztime 5s ./internal/serve/
go test -run '^$' -fuzz '^FuzzLoadgenConfig$' -fuzztime 5s ./internal/loadgen/
go test -run '^$' -fuzz '^FuzzReadCheckpoint$' -fuzztime 5s ./internal/nn/

echo "== backend parity (golden suite under each compute backend) =="
# The three compute backends are a contract: pin the registry by name so a
# renamed/removed backend fails loudly, run the golden-logit suite (naive
# path, bit-exact fixtures) plus the cross-backend parity and property tests,
# and exercise the per-block parallel MatMul under the race detector.
backend_list=$(go run ./cmd/edgepc-bench -list-backends)
for b in naive blocked int8; do
	if ! printf '%s\n' "$backend_list" | grep -qx "$b"; then
		echo "backend parity: backend '$b' missing from -list-backends" >&2
		exit 1
	fi
done
go test -run 'TestGolden' ./internal/pipeline/
go test -race -run 'TestGoldenBackendParity|TestBackendNamesPinned|TestBuildRejectsUnknownBackend' ./internal/pipeline/
go test -race -run 'TestQuickBlockedMatMulMatchesNaive|TestQuickInt8RoundTrip|TestInt8MatMulWithinAnalyticBound|TestBlockedBackendConcurrent|TestBackendRegistry|TestInt8WeightCacheReuse|TestBackendValidationMatchesReference' ./internal/tensor/

echo "== bench smoke (1 iteration) =="
go test -run '^$' -bench 'BenchmarkMatMulAT' -benchtime=1x -benchmem ./internal/tensor/

echo "== bench_fps smoke (quick clouds) =="
# The large-scale sampling bench must keep producing parseable curves; the
# quick run writes to throwaway paths so the committed full-scale
# BENCH_fps.json is never clobbered by CI.
OUT=.bench_fps_smoke.json RAW=.bench_fps_smoke.txt scripts/bench_fps.sh -quick >/dev/null
grep -q '"sampler": "bucketfps"' .bench_fps_smoke.json
rm -f .bench_fps_smoke.json .bench_fps_smoke.txt

echo "== bench_serve smoke (quick virtual window, run twice, diff counts) =="
# The fleet traffic harness promises bit-reproducibility: two same-seed runs
# must emit identical scenario count lines, and the report must carry the
# schema the experiment log points at.
OUT=.bench_serve_smoke.json RAW=.bench_serve_smoke.txt scripts/bench_serve.sh -quick >/dev/null
grep -q '"bench": "serve_fleet"' .bench_serve_smoke.json
grep -q '"crossover"' .bench_serve_smoke.json
grep -q '"fairness_jain"' .bench_serve_smoke.json
grep -q '"survivability"' .bench_serve_smoke.json
grep -q '"hedge_wins"' .bench_serve_smoke.json
grep -E '^(scenario|survivability) mult=' .bench_serve_smoke.txt >.bench_serve_counts1.txt
OUT=.bench_serve_smoke.json RAW=.bench_serve_smoke.txt scripts/bench_serve.sh -quick >/dev/null
grep -E '^(scenario|survivability) mult=' .bench_serve_smoke.txt >.bench_serve_counts2.txt
diff .bench_serve_counts1.txt .bench_serve_counts2.txt
rm -f .bench_serve_smoke.json .bench_serve_smoke.txt .bench_serve_counts1.txt .bench_serve_counts2.txt

echo "== allocs/op regression gate =="
# The zero-allocation hot path (DESIGN.md §6) must not regress: steady-state
# frame allocation counts are capped per benchmark. Raising a ceiling is a
# reviewed decision, not a drive-by.
bench_out=$(go test -run '^$' -bench 'BenchmarkPipelineFrameAllocs' -benchtime=1x -benchmem ./internal/pipeline/)
serve_out=$(go test -run '^$' -bench 'BenchmarkServeSteadyState' -benchtime=1x -benchmem ./internal/serve/)
printf '%s\n%s\n' "$bench_out" "$serve_out"
printf '%s\n%s\n' "$bench_out" "$serve_out" | awk '
	/^Benchmark/ {
		for (i = 1; i <= NF; i++) if ($i == "allocs/op") allocs = $(i-1)
		limit = -1
		if ($1 ~ /^BenchmarkPipelineFrameAllocsPointNetPP/) limit = 80
		if ($1 ~ /^BenchmarkPipelineFrameAllocsDGCNN/)      limit = 46
		if ($1 ~ /^BenchmarkServeSteadyState/)              limit = 80
		if (limit >= 0) {
			seen++
			if (allocs + 0 > limit) {
				printf "allocs gate: %s allocated %s/op, ceiling %d\n", $1, allocs, limit
				bad = 1
			}
		}
	}
	END {
		if (seen < 3) { printf "allocs gate: matched %d of 3 benchmarks\n", seen; exit 1 }
		exit bad
	}
'

echo "ci: all green"
