#!/usr/bin/env sh
# Tier-1+ gate: everything the repo promises must stay green, plus the
# race-detector pass over the packages with goroutine-parallel kernels and a
# one-iteration benchmark smoke so the hot-path benchmarks can never rot.
#
# Usage: scripts/ci.sh

set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./... =="
go vet ./...

echo "== go build ./... =="
go build ./...

echo "== go test -race (parallel kernels + workspace hot path) =="
go test -race ./internal/tensor/... ./internal/parallel/... ./internal/morton/... ./internal/pipeline/...

echo "== go test ./... =="
go test ./...

echo "== bench smoke (1 iteration) =="
go test -run '^$' -bench 'BenchmarkPipelineFrameAllocs|BenchmarkMatMulAT' -benchtime=1x -benchmem ./internal/pipeline/ ./internal/tensor/

echo "ci: all green"
