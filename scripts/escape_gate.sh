#!/usr/bin/env bash
# Static allocation gate: fail if any //edgepc:hotpath function gains a heap
# escape according to the compiler's own escape analysis (-gcflags='-m -m').
#
#   scripts/escape_gate.sh           check against scripts/escape_baseline.txt
#   scripts/escape_gate.sh -update   regenerate the baseline (after reviewing
#                                    why an escape is acceptable, or to lock in
#                                    a removed one)
#
# Go replays cached compiler diagnostics on rebuilds, so a warm build cache
# still yields the full -m output.
set -euo pipefail
cd "$(dirname "$0")/.."

mode=check
if [[ "${1:-}" == "-update" ]]; then
  mode=update
fi

out=$(mktemp)
trap 'rm -f "$out"' EXIT

# Escape diagnostics land on stderr; a failed build must surface its errors.
if ! go build -gcflags='-m -m' ./... 2>"$out" >/dev/null; then
  cat "$out" >&2
  echo "escape_gate: go build failed" >&2
  exit 2
fi

if [[ $mode == update ]]; then
  go run ./cmd/edgepc-lint -escapes "$out" -escape-write
else
  go run ./cmd/edgepc-lint -escapes "$out"
fi
