// Sensor-to-edge transport: compress a scanned frame with the Morton delta
// codec, ship it, decode on the edge device, and run the EdgePC pipeline on
// the decoded cloud — which arrives *already Morton-ordered*, so the
// structurization sort that powers the index-based sampling and neighbor
// search costs nothing on the device.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// The "sensor": a scanned indoor frame.
	frame := edgepc.GenerateScene(edgepc.SceneOptions{N: 8192, Seed: 11})
	raw := frame.Len() * 12 // float32 xyz

	// Compress at the paper's a=32 quantization (10 bits/axis).
	start := time.Now()
	payload, err := edgepc.CompressCloud(frame, 10)
	if err != nil {
		log.Fatal(err)
	}
	encDur := time.Since(start)
	fmt.Printf("sensor: %d points, %d B raw -> %d B (%.2fx) in %v\n",
		frame.Len(), raw, len(payload), float64(raw)/float64(len(payload)), encDur.Round(time.Microsecond))
	fmt.Printf("        max reconstruction error %.4g m\n",
		edgepc.CompressionMaxError(frame.Bounds(), 10))

	// The "edge device": decode and run EdgePC.
	start = time.Now()
	decoded, err := edgepc.DecompressCloud(payload)
	if err != nil {
		log.Fatal(err)
	}
	decDur := time.Since(start)

	// Decoded clouds are Morton-ordered; structurize is a no-op reorder.
	start = time.Now()
	s, err := edgepc.Structurize(decoded, edgepc.StructurizeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	sortDur := time.Since(start)
	fmt.Printf("edge:   decode %v, (re)structurize %v — already sorted\n",
		decDur.Round(time.Microsecond), sortDur.Round(time.Microsecond))

	// Index-based sampling + window neighbor search on the decoded frame.
	samples, err := edgepc.SampleStructurized(s, 2048)
	if err != nil {
		log.Fatal(err)
	}
	mean, max, err := edgepc.CoverageRadius(decoded.Points, samples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("        sampled %d points: coverage mean %.4f max %.4f\n", len(samples), mean, max)

	queries := make([]int, 0, 256)
	for p := 0; p < s.Len(); p += s.Len() / 256 {
		queries = append(queries, p)
	}
	start = time.Now()
	if _, err := edgepc.WindowNeighbors(s, queries, 8, 16); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("        window search for %d queries in %v\n", len(queries), time.Since(start).Round(time.Microsecond))

	// How lossy was the transport for the analytics? Compare sampling on
	// the original vs decoded frame.
	origSamples, err := edgepc.SampleMorton(frame, 2048)
	if err != nil {
		log.Fatal(err)
	}
	om, _, err := edgepc.CoverageRadius(frame.Points, origSamples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanalytics drift: coverage mean %.4f (original) vs %.4f (decoded)\n", om, mean)
}
