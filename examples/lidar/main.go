// Streaming LiDAR-style inference under a latency budget, the paper's
// motivating autonomous-driving scenario (§2.1.1): frames arrive at a fixed
// rate and each must be classified before its deadline on the modelled edge
// device. The baseline pipeline blows the deadline at high point counts; the
// EdgePC pipeline holds it, and the search-window knob trades residual
// accuracy risk (false-neighbor ratio) against headroom.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	const (
		points     = 8192
		k          = 8
		deadlineMS = 33.0 // 30 Hz LiDAR
	)
	frameSizes := []int{1024, 2048, 4096, 8192}
	dev := edgepc.JetsonAGXXavier()
	w := edgepc.Workload{
		ID: "lidar", Dataset: "ScanNet", Points: points, Batch: 1,
		Arch: edgepc.ArchDGCNN, Task: edgepc.TaskClassification,
		Classes: 10, K: k,
	}
	opts := edgepc.Options{BaseWidth: 16, Modules: 4, Seed: 5}

	nets := map[edgepc.ConfigKind]edgepc.Net{}
	for _, kind := range []edgepc.ConfigKind{edgepc.Baseline, edgepc.SN} {
		net, err := edgepc.BuildNet(w, kind, opts)
		if err != nil {
			log.Fatal(err)
		}
		nets[kind] = net
	}

	fmt.Printf("LiDAR stream: frames of %v points, %.0f ms deadline (30 Hz), device %s\n\n",
		frameSizes, deadlineMS, dev.Name)
	fmt.Printf("%-8s  %-9s  %-12s  %-10s  %s\n", "points", "config", "modelled ms", "deadline", "energy J")
	missed := map[edgepc.ConfigKind]int{}
	var energy = map[edgepc.ConfigKind]float64{}
	for f, pts := range frameSizes {
		fw := w
		fw.Points = pts
		frame, err := edgepc.GenerateFrame(fw, int64(100+f))
		if err != nil {
			log.Fatal(err)
		}
		for _, kind := range []edgepc.ConfigKind{edgepc.Baseline, edgepc.SN} {
			_, rep, _, err := edgepc.RunFrame(nets[kind], frame, dev, edgepc.NewSimConfig(fw, kind, opts))
			if err != nil {
				log.Fatal(err)
			}
			lat := rep.Total.Seconds() * 1e3
			verdict := "ok"
			if lat > deadlineMS {
				verdict = "MISSED"
				missed[kind]++
			}
			energy[kind] += rep.EnergyJ
			fmt.Printf("%-8d  %-9s  %-12.2f  %-10s  %.3f\n", pts, kind, lat, verdict, rep.EnergyJ)
		}
	}
	fmt.Printf("\nbaseline missed %d/%d deadlines, EdgePC missed %d/%d\n",
		missed[edgepc.Baseline], len(frameSizes), missed[edgepc.SN], len(frameSizes))
	fmt.Printf("energy per stream: baseline %.2f J, EdgePC %.2f J (%.0f%% saved)\n",
		energy[edgepc.Baseline], energy[edgepc.SN],
		100*(1-energy[edgepc.SN]/energy[edgepc.Baseline]))

	// Bonus: how much window headroom does the deadline leave? Sweep W and
	// report the modelled NS latency of the first EdgeConv layer.
	fmt.Println("\nwindow headroom at the first EdgeConv layer:")
	frame, err := edgepc.GenerateFrame(w, 999)
	if err != nil {
		log.Fatal(err)
	}
	s, err := edgepc.Structurize(frame, edgepc.StructurizeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	pos := make([]int, s.Len())
	for i := range pos {
		pos[i] = i
	}
	exact, err := edgepc.KNNNeighbors(s.Cloud.Points, s.Cloud.Points, k)
	if err != nil {
		log.Fatal(err)
	}
	for _, mult := range []int{1, 2, 4, 8} {
		start := time.Now()
		approx, err := edgepc.WindowNeighbors(s, pos, k, mult*k)
		if err != nil {
			log.Fatal(err)
		}
		dur := time.Since(start)
		fnr, err := edgepc.FalseNeighborRatio(approx, exact, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  W=%2dk: FNR %5.1f%%  host wall %v\n", mult, 100*fnr, dur.Round(time.Microsecond))
	}
}
