// Indoor-scene semantic segmentation, the paper's W1/W2 workload shape:
// train a PointNet++ segmentation model on synthetic rooms twice — once with
// the SOTA pipeline (FPS + ball query) and once with the EdgePC
// approximations in the training loop — then compare accuracy and the
// modelled edge-device latency/energy of one inference frame.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const (
		items  = 16
		points = 256
		epochs = 60
	)
	ds := edgepc.NewSceneDataset(items, points, "s3dis", 7)
	trainIdx, testIdx := edgepc.SplitDataset(ds.Len(), 0.25)

	w := edgepc.Workload{
		ID: "demo", Dataset: "S3DIS", Points: points, Batch: 32,
		Arch: edgepc.ArchPointNetPP, Task: edgepc.TaskSegmentation,
		Classes: ds.Classes(), K: 6,
	}
	opts := edgepc.Options{BaseWidth: 16, Depth: 3, Seed: 2}
	tc := edgepc.TrainConfig{Epochs: epochs, LR: 3e-3, BatchSize: 4, Seed: 2}

	fmt.Println("training baseline (FPS + ball query)…")
	baseNet, err := edgepc.BuildNet(w, edgepc.Baseline, opts)
	if err != nil {
		log.Fatal(err)
	}
	baseRes, err := edgepc.Train(baseNet, ds, trainIdx, testIdx, tc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("training EdgePC (Morton sampling + window search, retrained)…")
	edgeNet, err := edgepc.BuildNet(w, edgepc.SN, opts)
	if err != nil {
		log.Fatal(err)
	}
	edgeRes, err := edgepc.Train(edgeNet, ds, trainIdx, testIdx, tc)
	if err != nil {
		log.Fatal(err)
	}

	// Real S3DIS scans carry color; the synthetic stand-in carries a
	// material-reflectance channel. Networks built with ExtraFeatDim
	// consume it alongside the coordinates.
	fmt.Println("training EdgePC with the per-point intensity feature…")
	featDS := edgepc.NewSceneDatasetIntensity(items, points, "s3dis", 7)
	featOpts := opts
	featOpts.ExtraFeatDim = 1
	featNet, err := edgepc.BuildNet(w, edgepc.SN, featOpts)
	if err != nil {
		log.Fatal(err)
	}
	featRes, err := edgepc.Train(featNet, featDS, trainIdx, testIdx, tc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\naccuracy: baseline %.3f (mIoU %.3f) vs EdgePC %.3f (mIoU %.3f) vs EdgePC+intensity %.3f (mIoU %.3f)\n",
		baseRes.TestAcc, baseRes.TestIoU, edgeRes.TestAcc, edgeRes.TestIoU, featRes.TestAcc, featRes.TestIoU)

	// Price one full-scale frame on the modelled Jetson AGX Xavier.
	dev := edgepc.JetsonAGXXavier()
	frameW := w
	frameW.Points = 4096
	frame, err := edgepc.GenerateFrame(frameW, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmodelled inference cost for a %d-point frame (batch %d) on %s:\n",
		frame.Len(), frameW.Batch, dev.Name)
	for _, kind := range []edgepc.ConfigKind{edgepc.Baseline, edgepc.SN, edgepc.SNF} {
		net, err := edgepc.BuildNet(frameW, kind, opts)
		if err != nil {
			log.Fatal(err)
		}
		_, rep, _, err := edgepc.RunFrame(net, frame, dev, edgepc.NewSimConfig(frameW, kind, opts))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s  sample+NS %8.2f ms  feature %8.2f ms  total %8.2f ms  %6.2f J  avg %.2f W\n",
			kind,
			rep.SampleNeighbor.Seconds()*1e3, rep.Feature.Seconds()*1e3,
			rep.Total.Seconds()*1e3, rep.EnergyJ, rep.AvgPowerW)
	}
}
