// Design-space exploration, the paper's §5.1.3/§5.2.3/§6.3 knobs: sweep the
// Morton code width, the search-window size and the number of optimized
// layers, printing the accuracy-proxy (false-neighbor ratio / coverage) and
// modelled-latency trade-offs so a deployment can pick its own operating
// point, exactly as the paper prescribes for new workloads.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const (
		points = 4096
		k      = 8
		n      = 1024
	)
	frame := edgepc.GenerateScene(edgepc.SceneOptions{N: points, Seed: 21})
	dev := edgepc.JetsonAGXXavier()
	_ = dev

	// --- Knob 1: Morton code width a (§5.1.3, paper picks 32) ---
	fmt.Println("Morton code width a vs false neighbor ratio (W = 2k):")
	// The windowed searcher excludes the query itself, so the exact
	// reference must too.
	exact, err := edgepc.KNNNeighborsExcludingSelf(frame.Points, seq(frame.Len()), k)
	if err != nil {
		log.Fatal(err)
	}
	for _, bits := range []int{12, 18, 24, 33, 45} {
		s, err := edgepc.Structurize(frame, edgepc.StructurizeOptions{TotalBits: bits})
		if err != nil {
			log.Fatal(err)
		}
		// Exact reference must be in the same (sorted) order as queries.
		refSorted := remap(exact, s.Perm, k)
		pos := seq(s.Len())
		approx, err := edgepc.WindowNeighbors(s, pos, k, 2*k)
		if err != nil {
			log.Fatal(err)
		}
		fnr, err := edgepc.FalseNeighborRatio(approx, refSorted, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  a=%2d (%d bits/axis): FNR %5.1f%%, code memory %d KB\n",
			bits, bits/3, 100*fnr, s.MemoryOverheadBytes()/1024)
	}

	// --- Knob 2: search window W (§6.3 Fig. 15a) ---
	fmt.Println("\nsearch window W vs FNR:")
	s, err := edgepc.Structurize(frame, edgepc.StructurizeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	refSorted := remap(exact, s.Perm, k)
	pos := seq(s.Len())
	for _, mult := range []int{1, 2, 4, 8, 16} {
		approx, err := edgepc.WindowNeighbors(s, pos, k, mult*k)
		if err != nil {
			log.Fatal(err)
		}
		fnr, err := edgepc.FalseNeighborRatio(approx, refSorted, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  W=%2dk: FNR %5.1f%%\n", mult, 100*fnr)
	}

	// --- Knob 3: sampling quality vs sampler (§4.2 Fig. 5) ---
	fmt.Println("\nsampler quality (lower coverage radius = better):")
	fps, err := edgepc.SampleFPS(frame, n)
	if err != nil {
		log.Fatal(err)
	}
	morton, err := edgepc.SampleMorton(frame, n)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range []struct {
		name string
		sel  []int
	}{{"FPS", fps}, {"Morton", morton}} {
		mean, max, err := edgepc.CoverageRadius(frame.Points, row.sel)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-7s coverage mean %.4f max %.4f\n", row.name, mean, max)
	}
}

// remap converts a flat q×k neighbor result expressed in original indexes
// into the structurized order given by perm (original → position).
func remap(flat []int, perm []int, k int) []int {
	inv := make([]int, len(perm))
	for p, orig := range perm {
		inv[orig] = p
	}
	out := make([]int, len(flat))
	// Row q of the original result belongs to original point q; its row in
	// sorted order is inv[q].
	q := len(flat) / k
	for i := 0; i < q; i++ {
		dst := inv[i]
		for j := 0; j < k; j++ {
			out[dst*k+j] = inv[flat[i*k+j]]
		}
	}
	return out
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
