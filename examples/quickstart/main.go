// Quickstart: structurize a point cloud with Morton codes, approximate FPS
// with index-stride sampling, and approximate k-NN with index-window search —
// the two EdgePC techniques, on a synthetic Stanford-Bunny-like model.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// A 40 256-point organic model with uneven scan density.
	bunny := edgepc.SyntheticBunny(1)
	fmt.Printf("bunny: %d points\n", bunny.Len())

	// 1. Structurize: Morton-encode, sort, and reorder (the paper's §4).
	start := time.Now()
	s, err := edgepc.Structurize(bunny, edgepc.StructurizeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("structurized in %v (grid r=%.4g, +%d bytes of codes)\n",
		time.Since(start).Round(time.Microsecond), s.Encoder.R, s.MemoryOverheadBytes())

	// 2. Sampling: FPS (SOTA, O(nN)) vs Morton stride (O(N log N) total).
	const n = 1024
	start = time.Now()
	fps, err := edgepc.SampleFPS(bunny, n)
	if err != nil {
		log.Fatal(err)
	}
	fpsDur := time.Since(start)
	start = time.Now()
	morton, err := edgepc.SampleStructurized(s, n)
	if err != nil {
		log.Fatal(err)
	}
	mortonDur := time.Since(start)

	fpsMean, fpsMax, _ := edgepc.CoverageRadius(bunny.Points, fps)
	mMean, mMax, _ := edgepc.CoverageRadius(bunny.Points, morton)
	fmt.Printf("FPS:    %8v  coverage mean %.4f max %.4f\n", fpsDur.Round(time.Microsecond), fpsMean, fpsMax)
	fmt.Printf("Morton: %8v  coverage mean %.4f max %.4f  (%.0fx faster)\n",
		mortonDur.Round(time.Microsecond), mMean, mMax, float64(fpsDur)/float64(mortonDur))

	// 3. Neighbor search: exact kNN vs index-window on the sorted order.
	const k, window = 8, 16
	queries := make([]int, 0, 512)
	for p := 0; p < s.Len(); p += s.Len() / 512 {
		queries = append(queries, p)
	}
	start = time.Now()
	approx, err := edgepc.WindowNeighbors(s, queries, k, window)
	if err != nil {
		log.Fatal(err)
	}
	windowDur := time.Since(start)
	queryPts := make([]edgepc.Point3, len(queries))
	for i, p := range queries {
		queryPts[i] = s.Cloud.Points[p]
	}
	start = time.Now()
	exact, err := edgepc.KNNNeighbors(s.Cloud.Points, queryPts, k)
	if err != nil {
		log.Fatal(err)
	}
	exactDur := time.Since(start)
	fnr, err := edgepc.FalseNeighborRatio(approx, exact, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("window search: %v vs exact kNN %v (%.0fx faster), FNR %.1f%%\n",
		windowDur.Round(time.Microsecond), exactDur.Round(time.Microsecond),
		float64(exactDur)/float64(windowDur), 100*fnr)
	fmt.Println("\n(the FNR is what retraining absorbs — see examples/segmentation)")
}
