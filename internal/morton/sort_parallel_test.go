package morton

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/parallel"
)

// TestRadixOrderParallelMatchesStdOrder forces multiple workers (single-CPU
// machines never take the parallel path at the default GOMAXPROCS) and pins
// the per-worker-histogram radix sort against the stable comparison sort,
// including duplicate-heavy inputs where stability is the whole point.
func TestRadixOrderParallelMatchesStdOrder(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	rng := rand.New(rand.NewSource(21))
	cases := []struct {
		n    int
		vals int // distinct code count; small → many duplicates
	}{
		{2049, 7},        // just above the parallel threshold, duplicate-heavy
		{10000, 13},      // duplicate-heavy
		{10000, 1 << 30}, // mostly distinct, multiple varying bytes
	}
	for _, c := range cases {
		if parallel.Workers(c.n) < 2 {
			t.Fatalf("Workers(%d) = %d with GOMAXPROCS=4", c.n, parallel.Workers(c.n))
		}
		codes := make([]uint64, c.n)
		for i := range codes {
			codes[i] = uint64(rng.Intn(c.vals))
		}
		r := RadixOrder(codes)
		s := StdOrder(codes)
		for i := range s {
			if r[i] != s[i] {
				t.Fatalf("n=%d vals=%d: parallel radix differs from std at %d: %d vs %d",
					c.n, c.vals, i, r[i], s[i])
			}
		}
	}
}
