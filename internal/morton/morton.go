// Package morton implements 3-D Morton (Z-order) encoding, decoding and
// sorting — the structurization substrate of EdgePC (§4 of the paper).
//
// A Morton code maps an n-dimensional integer coordinate to one dimension by
// bitwise interleaving, preserving spatial locality: points that are close in
// 3-D space receive nearby codes. EdgePC voxelizes the cloud's bounding box
// into small cubes of side r (the grid size), assigns each point the integer
// index (i, j, k) of its voxel, interleaves those indexes into a single code,
// and sorts the points by code. The sorted ("structurized") order supports
// index-based sampling and neighbor search, the paper's two approximations.
//
// Bit layout: following the paper's worked example ((2,3,4) → 282), bit b of
// x lands at code bit 3b, bit b of y at 3b+1, and bit b of z at 3b+2.
package morton

import "math/bits"

// MaxBitsPerAxis is the largest per-axis resolution supported: 21 bits per
// axis fill 63 bits of a uint64 code.
const MaxBitsPerAxis = 21

// spread3 spreads the low 21 bits of x so that bit b moves to bit 3b.
func spread3(x uint64) uint64 {
	x &= 0x1fffff
	x = (x | x<<32) & 0x1f00000000ffff
	x = (x | x<<16) & 0x1f0000ff0000ff
	x = (x | x<<8) & 0x100f00f00f00f00f
	x = (x | x<<4) & 0x10c30c30c30c30c3
	x = (x | x<<2) & 0x1249249249249249
	return x
}

// compact3 is the inverse of spread3: it gathers every third bit (starting at
// bit 0) back into the low 21 bits.
func compact3(x uint64) uint64 {
	x &= 0x1249249249249249
	x = (x | x>>2) & 0x10c30c30c30c30c3
	x = (x | x>>4) & 0x100f00f00f00f00f
	x = (x | x>>8) & 0x1f0000ff0000ff
	x = (x | x>>16) & 0x1f00000000ffff
	x = (x | x>>32) & 0x1fffff
	return x
}

// Encode3 interleaves the low 21 bits of x, y and z into a 63-bit Morton
// code. Following the paper's convention, x occupies the least-significant
// position of each 3-bit group.
func Encode3(x, y, z uint32) uint64 {
	return spread3(uint64(x)) | spread3(uint64(y))<<1 | spread3(uint64(z))<<2
}

// Decode3 recovers the three axis indexes from a Morton code produced by
// Encode3.
func Decode3(code uint64) (x, y, z uint32) {
	return uint32(compact3(code)), uint32(compact3(code >> 1)), uint32(compact3(code >> 2))
}

// Level returns the number of bits per axis needed to represent coordinate
// values up to max (i.e. ceil(log2(max+1))).
func Level(max uint32) int {
	if max == 0 {
		return 0
	}
	return bits.Len32(max)
}
