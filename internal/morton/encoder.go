package morton

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/parallel"
)

// DefaultTotalBits is the paper's chosen Morton code width (a = 32), striking
// its reported balance between memory overhead (Na/8 bytes per frame) and
// inference accuracy. ⌊32/3⌋ = 10 bits per axis → a 1024³ voxel grid.
const DefaultTotalBits = 32

// ErrBits reports an unsupported Morton code width.
var ErrBits = errors.New("morton: total bits must be in [3, 63]")

// Encoder voxelizes points into an integer grid and produces Morton codes.
//
// The grid is anchored at Min with cubic voxels of side R; per-axis voxel
// indexes are clamped to [0, 2^BitsPerAxis). Clamping (rather than erroring)
// matches the behaviour needed for streaming input where occasional points
// fall marginally outside the reference bounding box.
type Encoder struct {
	Min         geom.Point3 // minimum corner of the voxel grid (the paper's {x_min, y_min, z_min})
	R           float64     // grid size r (voxel edge length)
	BitsPerAxis int         // ⌊a/3⌋ in the paper
}

// NewEncoder builds an encoder for the given bounding box using totalBits
// (the paper's a) split evenly across the three axes. The grid size is
// r = D / 2^⌊a/3⌋ where D is the box's longest extent (§5.1.3). A degenerate
// (zero-extent or invalid) box gets a unit grid so encoding stays total.
func NewEncoder(bounds geom.AABB, totalBits int) (*Encoder, error) {
	if totalBits < 3 || totalBits > 63 {
		return nil, fmt.Errorf("%w: got %d", ErrBits, totalBits)
	}
	bpa := totalBits / 3
	d := bounds.MaxDim()
	if !bounds.IsValid() || d <= 0 || math.IsNaN(d) || math.IsInf(d, 0) {
		return &Encoder{Min: geom.Point3{}, R: 1, BitsPerAxis: bpa}, nil
	}
	r := d / float64(uint64(1)<<uint(bpa))
	return &Encoder{Min: bounds.Min, R: r, BitsPerAxis: bpa}, nil
}

// NewEncoderWithGrid builds an encoder with an explicit grid size r and
// minimum corner, as in the paper's Algorithm 1 inputs. bitsPerAxis bounds
// the representable voxel index range.
func NewEncoderWithGrid(min geom.Point3, r float64, bitsPerAxis int) (*Encoder, error) {
	if bitsPerAxis < 1 || bitsPerAxis > MaxBitsPerAxis {
		return nil, fmt.Errorf("%w: %d bits per axis", ErrBits, bitsPerAxis)
	}
	if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
		return nil, fmt.Errorf("morton: grid size must be positive and finite, got %v", r)
	}
	return &Encoder{Min: min, R: r, BitsPerAxis: bitsPerAxis}, nil
}

// TotalBits returns the code width 3 × BitsPerAxis.
func (e *Encoder) TotalBits() int { return 3 * e.BitsPerAxis }

// MemoryBytes returns the storage needed for the Morton codes of n points at
// this encoder's width, as accounted in §5.1.3 (Na/8 bytes, rounded up to
// whole bytes per code — a 30-bit code occupies 4 bytes).
func (e *Encoder) MemoryBytes(n int) int {
	return n * ((e.TotalBits() + 7) / 8)
}

// voxel returns the clamped integer voxel index of a scalar coordinate.
func (e *Encoder) voxel(v, min float64) uint32 {
	idx := math.Floor((v - min) / e.R)
	limit := float64(uint64(1)<<uint(e.BitsPerAxis) - 1)
	if math.IsNaN(idx) || idx < 0 {
		return 0
	}
	if idx > limit {
		return uint32(limit)
	}
	return uint32(idx)
}

// Code returns the Morton code of a single point.
//
//edgepc:hotpath
func (e *Encoder) Code(p geom.Point3) uint64 {
	return Encode3(e.voxel(p.X, e.Min.X), e.voxel(p.Y, e.Min.Y), e.voxel(p.Z, e.Min.Z))
}

// EncodeCloud computes the Morton code of every point. This is the paper's
// MC_Gen (Algorithm 1, lines 1–6): every iteration is independent, so the
// loop runs fully parallel. If dst has capacity it is reused.
//
//edgepc:hotpath
func (e *Encoder) EncodeCloud(c *geom.Cloud, dst []uint64) []uint64 {
	n := c.Len()
	if cap(dst) < n {
		//edgepc:lint-ignore hotpathalloc cap-guarded grow; steady-state frames pass a reused dst
		dst = make([]uint64, n)
	}
	dst = dst[:n]
	pts := c.Points
	parallel.ForChunks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = e.Code(pts[i])
		}
	})
	return dst
}
