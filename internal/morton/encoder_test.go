package morton

import (
	"math"
	"testing"

	"repro/internal/geom"
)

// fig8Points are the five points of the paper's Fig. 8/10 worked examples,
// recovered from their published Morton codes ({185, 23, 114, 0, 67} at
// grid size r = 1) and consistent with the FPS distance array of Fig. 8(a)
// ({0, 14, 10, 49, 33} after sampling P0).
func fig8Points() []geom.Point3 {
	return []geom.Point3{
		{X: 3, Y: 6, Z: 2}, // P0 → 185
		{X: 1, Y: 3, Z: 1}, // P1 → 23
		{X: 4, Y: 3, Z: 2}, // P2 → 114
		{X: 0, Y: 0, Z: 0}, // P3 → 0
		{X: 5, Y: 1, Z: 0}, // P4 → 67
	}
}

func fig8Cloud() *geom.Cloud {
	c := geom.NewCloud(0, 0)
	c.Points = fig8Points()
	return c
}

func TestPaperWorkedExampleFig8Codes(t *testing.T) {
	enc, err := NewEncoderWithGrid(geom.Point3{}, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	got := enc.EncodeCloud(fig8Cloud(), nil)
	want := []uint64{185, 23, 114, 0, 67}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("codes = %v, want %v", got, want)
		}
	}
	perm := Order(got)
	wantPerm := []int{3, 1, 4, 2, 0}
	for i := range wantPerm {
		if perm[i] != wantPerm[i] {
			t.Fatalf("sorted index array = %v, want %v", perm, wantPerm)
		}
	}
}

func TestPaperWorkedExampleFig8GridSize4(t *testing.T) {
	// "if the grid size is defined as r=4, then the Morton codes would
	// become {2, 0, 1, 0, 1}, for which the sorted indexes are {1,3,2,4,0}".
	enc, err := NewEncoderWithGrid(geom.Point3{}, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	got := enc.EncodeCloud(fig8Cloud(), nil)
	want := []uint64{2, 0, 1, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("codes = %v, want %v", got, want)
		}
	}
	perm := Order(got)
	wantPerm := []int{1, 3, 2, 4, 0}
	for i := range wantPerm {
		if perm[i] != wantPerm[i] {
			t.Fatalf("sorted index array = %v, want %v", perm, wantPerm)
		}
	}
}

func TestNewEncoderGridSize(t *testing.T) {
	// §5.1.3: r = D / 2^⌊a/3⌋.
	b := geom.AABB{Min: geom.Point3{}, Max: geom.Point3{X: 8, Y: 4, Z: 2}}
	enc, err := NewEncoder(b, 32)
	if err != nil {
		t.Fatal(err)
	}
	if enc.BitsPerAxis != 10 {
		t.Fatalf("BitsPerAxis = %d, want 10", enc.BitsPerAxis)
	}
	want := 8.0 / 1024
	if math.Abs(enc.R-want) > 1e-12 {
		t.Fatalf("R = %v, want %v", enc.R, want)
	}
	if enc.TotalBits() != 30 {
		t.Fatalf("TotalBits = %d, want 30", enc.TotalBits())
	}
}

func TestNewEncoderRejectsBadBits(t *testing.T) {
	b := geom.AABB{Max: geom.Point3{X: 1, Y: 1, Z: 1}}
	for _, bits := range []int{0, 1, 2, 64, -3} {
		if _, err := NewEncoder(b, bits); err == nil {
			t.Errorf("NewEncoder with %d bits: want error", bits)
		}
	}
}

func TestNewEncoderDegenerateBounds(t *testing.T) {
	// Zero-extent box: encoding must stay total (unit grid).
	b := geom.AABB{Min: geom.Point3{X: 1, Y: 1, Z: 1}, Max: geom.Point3{X: 1, Y: 1, Z: 1}}
	enc, err := NewEncoder(b, 30)
	if err != nil {
		t.Fatal(err)
	}
	if enc.R != 1 {
		t.Fatalf("degenerate bounds: R = %v, want 1", enc.R)
	}
	// Must not panic on any input.
	_ = enc.Code(geom.Point3{X: math.NaN()})
	_ = enc.Code(geom.Point3{X: math.Inf(1)})
}

func TestEncoderWithGridRejectsBadInput(t *testing.T) {
	if _, err := NewEncoderWithGrid(geom.Point3{}, 0, 10); err == nil {
		t.Error("zero grid size: want error")
	}
	if _, err := NewEncoderWithGrid(geom.Point3{}, math.NaN(), 10); err == nil {
		t.Error("NaN grid size: want error")
	}
	if _, err := NewEncoderWithGrid(geom.Point3{}, 1, 0); err == nil {
		t.Error("zero bits per axis: want error")
	}
	if _, err := NewEncoderWithGrid(geom.Point3{}, 1, 22); err == nil {
		t.Error("22 bits per axis: want error")
	}
}

func TestEncoderClampsOutOfRange(t *testing.T) {
	enc, err := NewEncoderWithGrid(geom.Point3{}, 1, 3) // voxel range [0, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Below min clamps to voxel 0; far above clamps to voxel 7.
	lo := enc.Code(geom.Point3{X: -100, Y: -100, Z: -100})
	if lo != Encode3(0, 0, 0) {
		t.Fatalf("below-min code = %d, want 0", lo)
	}
	hi := enc.Code(geom.Point3{X: 100, Y: 100, Z: 100})
	if hi != Encode3(7, 7, 7) {
		t.Fatalf("above-max code = %d, want %d", hi, Encode3(7, 7, 7))
	}
}

func TestEncoderMemoryBytes(t *testing.T) {
	// §5.1.3: Na/8 bytes for N points at a-bit codes.
	enc, err := NewEncoderWithGrid(geom.Point3{}, 1, 10) // a = 30
	if err != nil {
		t.Fatal(err)
	}
	if got := enc.MemoryBytes(8192); got != 8192*4 {
		t.Fatalf("MemoryBytes = %d, want %d (30-bit codes round up to 4 bytes)", got, 8192*4)
	}
}

func TestEncodeCloudSpatialLocality(t *testing.T) {
	// Points in the same voxel share a code; points in far voxels differ.
	enc, err := NewEncoderWithGrid(geom.Point3{}, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	a := enc.Code(geom.Point3{X: 0.2, Y: 0.3, Z: 0.4})
	b := enc.Code(geom.Point3{X: 0.9, Y: 0.1, Z: 0.99})
	if a != b {
		t.Fatalf("same-voxel codes differ: %d vs %d", a, b)
	}
	far := enc.Code(geom.Point3{X: 900, Y: 900, Z: 900})
	if far == a {
		t.Fatal("far voxel shares the code of voxel (0,0,0)")
	}
}

func TestEncodeCloudReusesBuffer(t *testing.T) {
	enc, err := NewEncoderWithGrid(geom.Point3{}, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	c := fig8Cloud()
	buf := make([]uint64, 0, 16)
	out := enc.EncodeCloud(c, buf)
	if cap(out) != cap(buf) {
		t.Fatal("EncodeCloud did not reuse the provided buffer")
	}
}
