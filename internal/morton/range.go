package morton

// Z-order range search (Tropf & Herzog 1981): given an axis-aligned voxel
// box, the Morton codes inside it form a set of contiguous runs of the
// Z-curve. BigMin computes, for a code z that has wandered outside the box,
// the smallest in-box code greater than z — letting a scan over *sorted*
// codes skip the out-of-box gaps entirely.
//
// This is the machinery behind the "non-approximate" Morton/grid neighbor
// searchers the paper contrasts itself against (§3.2: cuNSearch, FRNN,
// fixed-radius GPU search): an exact ball query that touches only the
// Z-curve runs intersecting the ball's voxel box. EdgePC's window search
// trades this exactness for a fixed O(W) cost; having both in one codebase
// makes the comparison direct (see core.RangeBall and the benchmarks).

// dimMask returns the mask of all code bits belonging to dimension d
// (d = 0 → x, bits 0, 3, 6, …).
func dimMask(d uint) uint64 {
	return 0x1249249249249249 << d & ((1 << 63) - 1)
}

// InBox reports whether code lies inside the voxel box [min, max] (per-axis
// inclusive bounds given as Morton codes of the corner voxels).
func InBox(code, zmin, zmax uint64) bool {
	for d := uint(0); d < 3; d++ {
		m := dimMask(d)
		v := code & m
		if v < zmin&m || v > zmax&m {
			return false
		}
	}
	return true
}

// BigMin returns the smallest Morton code ≥ z that lies inside the box
// [zmin, zmax], and whether such a code exists. z itself may be in the box,
// in which case it is returned unchanged.
func BigMin(z, zmin, zmax uint64) (uint64, bool) {
	if InBox(z, zmin, zmax) {
		return z, true
	}
	var bigmin uint64
	haveBigmin := false
	// Scan bit positions from most significant to least.
	for i := 62; i >= 0; i-- {
		bit := uint64(1) << uint(i)
		zb := z & bit
		minb := zmin & bit
		maxb := zmax & bit
		switch {
		case zb == 0 && minb == 0 && maxb == 0:
			// stay
		case zb == 0 && minb == 0 && maxb != 0:
			// The box splits at this bit: remember the smallest code in
			// the upper half, continue searching the lower half.
			bigmin = loadOneZeros(zmin, uint(i))
			haveBigmin = true
			zmax = loadZeroOnes(zmax, uint(i))
		case zb == 0 && minb != 0 && maxb != 0:
			// z is below the whole box.
			return zmin, true
		case zb != 0 && minb == 0 && maxb == 0:
			// z is above the whole (remaining) box.
			if haveBigmin {
				return bigmin, true
			}
			return 0, false
		case zb != 0 && minb == 0 && maxb != 0:
			zmin = loadOneZeros(zmin, uint(i))
		case zb != 0 && minb != 0 && maxb != 0:
			// stay
		default:
			// minb set while maxb clear would mean min > max: invalid box.
			return 0, false
		}
	}
	// z ≤ zmax along every prefix: zmin has been narrowed onto z's path.
	return zmin, true
}

// loadOneZeros returns v with bit i set and all lower bits of the same
// dimension cleared (the Tropf–Herzog LOAD(1000…) operation).
func loadOneZeros(v uint64, i uint) uint64 {
	under := dimMask(i%3) & (uint64(1)<<i - 1)
	return (v &^ under) | uint64(1)<<i
}

// loadZeroOnes returns v with bit i cleared and all lower bits of the same
// dimension set (LOAD(0111…)).
func loadZeroOnes(v uint64, i uint) uint64 {
	under := dimMask(i%3) & (uint64(1)<<i - 1)
	return (v | under) &^ (uint64(1) << i)
}

// RangeQuery visits every position j of the sorted code sequence whose code
// lies inside the voxel box [zmin, zmax], in ascending order. codes must be
// sorted ascending. visit returning false stops the scan early.
//
// Complexity: O(runs × log N + hits); out-of-box gaps are skipped with
// BigMin + binary search instead of being scanned.
func RangeQuery(codes []uint64, zmin, zmax uint64, visit func(j int) bool) {
	j := lowerBound(codes, zmin)
	for j < len(codes) {
		c := codes[j]
		if c > zmax {
			return
		}
		if InBox(c, zmin, zmax) {
			if !visit(j) {
				return
			}
			j++
			continue
		}
		next, ok := BigMin(c, zmin, zmax)
		if !ok || next <= c {
			return
		}
		j = lowerBoundFrom(codes, next, j+1)
	}
}

// lowerBound returns the first index with codes[i] >= target.
func lowerBound(codes []uint64, target uint64) int {
	return lowerBoundFrom(codes, target, 0)
}

func lowerBoundFrom(codes []uint64, target uint64, from int) int {
	lo, hi := from, len(codes)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if codes[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
