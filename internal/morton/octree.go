package morton

import (
	"fmt"
	"sort"
)

// Linear octree: the octree that Morton codes implicitly define. A node at
// depth d is a d×3-bit code prefix; its eight children extend the prefix by
// one bit per axis. Because sorted Morton codes group every subtree into a
// contiguous run, the whole tree can be represented as ranges over the
// sorted code array — no pointers, no per-node allocation, built in O(N)
// after the sort the EdgePC pipeline already performs.
//
// This is the structure the hardware-accelerator prior works traverse
// explicitly (PointAcc's mapping unit, Crescent's k-d trees); here it serves
// as another exact-search baseline and as the index behind ball queries with
// data-adaptive early termination.

// Octree is a linear octree over a sorted Morton code sequence.
type Octree struct {
	codes       []uint64
	bitsPerAxis int
	// nodes[d] holds the node list at depth d (root at depth 0).
	nodes [][]octNode
}

type octNode struct {
	prefix uint64 // code prefix, shifted to full-code position
	lo, hi int32  // sorted-code index range [lo, hi)
}

// NewOctree builds the linear octree for sorted codes produced by an encoder
// with the given bits per axis. maxDepth ≤ bitsPerAxis bounds the tree; 0
// uses bitsPerAxis.
func NewOctree(codes []uint64, bitsPerAxis, maxDepth int) (*Octree, error) {
	if bitsPerAxis < 1 || bitsPerAxis > MaxBitsPerAxis {
		return nil, fmt.Errorf("morton: octree bits per axis %d out of [1, %d]", bitsPerAxis, MaxBitsPerAxis)
	}
	if !sort.SliceIsSorted(codes, func(a, b int) bool { return codes[a] < codes[b] }) {
		return nil, fmt.Errorf("morton: octree requires sorted codes")
	}
	if maxDepth <= 0 || maxDepth > bitsPerAxis {
		maxDepth = bitsPerAxis
	}
	t := &Octree{codes: codes, bitsPerAxis: bitsPerAxis}
	t.nodes = make([][]octNode, maxDepth+1)
	t.nodes[0] = []octNode{{prefix: 0, lo: 0, hi: int32(len(codes))}}
	for d := 1; d <= maxDepth; d++ {
		shift := uint(3 * (bitsPerAxis - d))
		var level []octNode
		for _, parent := range t.nodes[d-1] {
			if parent.hi <= parent.lo {
				continue
			}
			// Split the parent's range by the next 3 bits.
			lo := parent.lo
			for lo < parent.hi {
				child := t.codes[lo] >> shift
				// Find the end of this child's run.
				hi := int32(sort.Search(int(parent.hi-lo), func(i int) bool {
					return t.codes[lo+int32(i)]>>shift > child
				})) + lo
				level = append(level, octNode{prefix: child << shift, lo: lo, hi: hi})
				lo = hi
			}
		}
		t.nodes[d] = level
	}
	return t, nil
}

// Depth returns the built depth of the tree.
func (t *Octree) Depth() int { return len(t.nodes) - 1 }

// NodeCount returns the number of (occupied) nodes at the given depth.
func (t *Octree) NodeCount(depth int) int {
	if depth < 0 || depth >= len(t.nodes) {
		return 0
	}
	return len(t.nodes[depth])
}

// Len returns the number of indexed codes.
func (t *Octree) Len() int { return len(t.codes) }

// CellRange returns the sorted-code index range [lo, hi) of the octree cell
// containing code at the given depth. An unoccupied cell yields an empty
// range.
func (t *Octree) CellRange(code uint64, depth int) (lo, hi int) {
	if depth < 0 {
		depth = 0
	}
	if depth > t.Depth() {
		depth = t.Depth()
	}
	shift := uint(3 * (t.bitsPerAxis - depth))
	prefix := code >> shift
	l := sort.Search(len(t.codes), func(i int) bool { return t.codes[i]>>shift >= prefix })
	h := sort.Search(len(t.codes), func(i int) bool { return t.codes[i]>>shift > prefix })
	return l, h
}

// VisitBox walks the tree and calls visit(lo, hi) for every maximal run of
// sorted-code indexes whose cells intersect the voxel box [zmin, zmax].
// Subtrees fully inside the box are emitted as single runs without
// descending; subtrees fully outside are pruned. Points in partially
// overlapping leaves are emitted individually after an exact InBox test.
func (t *Octree) VisitBox(zmin, zmax uint64, visit func(lo, hi int) bool) {
	t.visitBox(0, 0, zmin, zmax, visit)
}

// visitBox returns false when the walk should stop entirely.
func (t *Octree) visitBox(depth, nodeIdx int, zmin, zmax uint64, visit func(lo, hi int) bool) bool {
	node := t.nodes[depth][nodeIdx]
	rel := boxRelation(node.prefix, uint(3*(t.bitsPerAxis-depth)), zmin, zmax)
	switch rel {
	case relOutside:
		return true
	case relInside:
		return visit(int(node.lo), int(node.hi))
	}
	// Partial overlap: descend, or test points at the leaf level.
	if depth == t.Depth() {
		for i := node.lo; i < node.hi; i++ {
			if InBox(t.codes[i], zmin, zmax) {
				if !visit(int(i), int(i)+1) {
					return false
				}
			}
		}
		return true
	}
	// Children of this node are the next-level nodes whose ranges lie
	// within [node.lo, node.hi). Locate them by binary search on lo.
	next := t.nodes[depth+1]
	start := sort.Search(len(next), func(i int) bool { return next[i].lo >= node.lo })
	for i := start; i < len(next) && next[i].lo < node.hi; i++ {
		if !t.visitBox(depth+1, i, zmin, zmax, visit) {
			return false
		}
	}
	return true
}

type relation int

const (
	relOutside relation = iota
	relPartial
	relInside
)

// boxRelation classifies the cell with the given prefix (shift = bits below
// the prefix) against the query box.
func boxRelation(prefix uint64, shift uint, zmin, zmax uint64) relation {
	// Cell bounds per axis: prefix bits fixed, lower bits all-0 (min) or
	// all-1 (max).
	cellMin := prefix
	cellMax := prefix | (uint64(1)<<shift - 1)
	inside := true
	for d := uint(0); d < 3; d++ {
		m := dimMask(d)
		cLo, cHi := cellMin&m, cellMax&m
		qLo, qHi := zmin&m, zmax&m
		if cHi < qLo || cLo > qHi {
			return relOutside
		}
		if cLo < qLo || cHi > qHi {
			inside = false
		}
	}
	if inside {
		return relInside
	}
	return relPartial
}
