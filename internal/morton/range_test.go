package morton

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestInBox(t *testing.T) {
	zmin := Encode3(1, 2, 3)
	zmax := Encode3(4, 5, 6)
	if !InBox(Encode3(2, 3, 4), zmin, zmax) {
		t.Fatal("interior voxel reported outside")
	}
	if InBox(Encode3(0, 3, 4), zmin, zmax) {
		t.Fatal("x below min reported inside")
	}
	if InBox(Encode3(2, 6, 4), zmin, zmax) {
		t.Fatal("y above max reported inside")
	}
	if !InBox(zmin, zmin, zmax) || !InBox(zmax, zmin, zmax) {
		t.Fatal("corners must be inside")
	}
}

// bruteNextInBox finds the smallest code ≥ z inside the box by scanning.
func bruteNextInBox(z, zmin, zmax uint64, limit uint64) (uint64, bool) {
	for c := z; c <= limit; c++ {
		if InBox(c, zmin, zmax) {
			return c, true
		}
	}
	return 0, false
}

func TestBigMinAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 3000; trial++ {
		// Small coordinate ranges keep the brute-force scan affordable.
		x0, y0, z0 := uint32(rng.Intn(8)), uint32(rng.Intn(8)), uint32(rng.Intn(8))
		x1 := x0 + uint32(rng.Intn(4))
		y1 := y0 + uint32(rng.Intn(4))
		z1 := z0 + uint32(rng.Intn(4))
		zmin := Encode3(x0, y0, z0)
		zmax := Encode3(x1, y1, z1)
		z := uint64(rng.Intn(1 << 12))
		got, ok := BigMin(z, zmin, zmax)
		want, wantOK := bruteNextInBox(z, zmin, zmax, 1<<12)
		if ok != wantOK {
			t.Fatalf("trial %d: BigMin(%d, [%d,%d]) ok=%v want %v", trial, z, zmin, zmax, ok, wantOK)
		}
		if ok && got != want {
			t.Fatalf("trial %d: BigMin(%d, [%d,%d]) = %d, want %d", trial, z, zmin, zmax, got, want)
		}
	}
}

func TestBigMinIdentityInsideBox(t *testing.T) {
	f := func(x, y, z uint8) bool {
		zmin := Encode3(0, 0, 0)
		zmax := Encode3(255, 255, 255)
		c := Encode3(uint32(x), uint32(y), uint32(z))
		got, ok := BigMin(c, zmin, zmax)
		return ok && got == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeQueryMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 200 + rng.Intn(300)
		codes := make([]uint64, n)
		for i := range codes {
			codes[i] = Encode3(uint32(rng.Intn(32)), uint32(rng.Intn(32)), uint32(rng.Intn(32)))
		}
		sort.Slice(codes, func(a, b int) bool { return codes[a] < codes[b] })
		x0, y0, z0 := uint32(rng.Intn(28)), uint32(rng.Intn(28)), uint32(rng.Intn(28))
		zmin := Encode3(x0, y0, z0)
		zmax := Encode3(x0+uint32(rng.Intn(5)), y0+uint32(rng.Intn(5)), z0+uint32(rng.Intn(5)))

		var got []int
		RangeQuery(codes, zmin, zmax, func(j int) bool {
			got = append(got, j)
			return true
		})
		var want []int
		for j, c := range codes {
			if InBox(c, zmin, zmax) {
				want = append(want, j)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d hits, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: hit %d = %d, want %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestRangeQueryEarlyStop(t *testing.T) {
	codes := []uint64{0, 1, 2, 3, 4, 5, 6, 7}
	count := 0
	RangeQuery(codes, 0, 7, func(j int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestRangeQueryEmptyInputs(t *testing.T) {
	RangeQuery(nil, 0, 100, func(j int) bool { t.Fatal("visited empty"); return false })
	// Inverted box: no panic, no hits.
	codes := []uint64{1, 2, 3}
	RangeQuery(codes, Encode3(5, 5, 5), Encode3(1, 1, 1), func(j int) bool {
		t.Fatal("visited inverted box")
		return false
	})
}

func TestRangeQuerySkipsGaps(t *testing.T) {
	// Codes along x at y=z=0 plus a far cluster: a box around the far
	// cluster must not visit the near points.
	var codes []uint64
	for x := uint32(0); x < 16; x++ {
		codes = append(codes, Encode3(x, 0, 0))
	}
	far := Encode3(100, 100, 100)
	codes = append(codes, far)
	sort.Slice(codes, func(a, b int) bool { return codes[a] < codes[b] })
	visited := 0
	RangeQuery(codes, Encode3(99, 99, 99), Encode3(101, 101, 101), func(j int) bool {
		visited++
		if codes[j] != far {
			t.Fatalf("visited near point %d", codes[j])
		}
		return true
	})
	if visited != 1 {
		t.Fatalf("visited %d, want 1", visited)
	}
}
