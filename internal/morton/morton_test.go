package morton

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncode3PaperExample(t *testing.T) {
	// §4.1: "a point with coordinate (2, 3, 4) = (010, 011, 100)b translates
	// to Morton code 282 = 100,011,010b".
	if got := Encode3(2, 3, 4); got != 282 {
		t.Fatalf("Encode3(2,3,4) = %d, want 282", got)
	}
	x, y, z := Decode3(282)
	if x != 2 || y != 3 || z != 4 {
		t.Fatalf("Decode3(282) = (%d,%d,%d), want (2,3,4)", x, y, z)
	}
}

func TestEncode3Zero(t *testing.T) {
	if got := Encode3(0, 0, 0); got != 0 {
		t.Fatalf("Encode3(0,0,0) = %d, want 0", got)
	}
}

func TestEncode3UnitAxes(t *testing.T) {
	// x occupies bit 0, y bit 1, z bit 2 of each triplet.
	cases := []struct {
		x, y, z uint32
		want    uint64
	}{
		{1, 0, 0, 1},
		{0, 1, 0, 2},
		{0, 0, 1, 4},
		{2, 0, 0, 8},
		{0, 2, 0, 16},
		{0, 0, 2, 32},
	}
	for _, c := range cases {
		if got := Encode3(c.x, c.y, c.z); got != c.want {
			t.Errorf("Encode3(%d,%d,%d) = %d, want %d", c.x, c.y, c.z, got, c.want)
		}
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	f := func(x, y, z uint32) bool {
		x &= 0x1fffff
		y &= 0x1fffff
		z &= 0x1fffff
		gx, gy, gz := Decode3(Encode3(x, y, z))
		return gx == x && gy == y && gz == z
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncode3MaxCoordinate(t *testing.T) {
	const max = (1 << 21) - 1
	code := Encode3(max, max, max)
	if code != (1<<63)-1 {
		t.Fatalf("Encode3(max,max,max) = %#x, want all 63 bits set", code)
	}
}

func TestEncode3MasksHighBits(t *testing.T) {
	// Bits above 21 per axis must not leak into the code.
	if Encode3(1<<21, 0, 0) != Encode3(0, 0, 0) {
		t.Fatal("bit 21 of x leaked into the code")
	}
}

func TestEncode3Monotonic(t *testing.T) {
	// Along a single axis (others fixed), Morton codes are monotone.
	f := func(a, b uint32) bool {
		a &= 0x1fffff
		b &= 0x1fffff
		if a > b {
			a, b = b, a
		}
		return Encode3(a, 7, 9) <= Encode3(b, 7, 9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestLevel(t *testing.T) {
	cases := []struct {
		max  uint32
		want int
	}{{0, 0}, {1, 1}, {2, 2}, {3, 2}, {1023, 10}, {1024, 11}}
	for _, c := range cases {
		if got := Level(c.max); got != c.want {
			t.Errorf("Level(%d) = %d, want %d", c.max, got, c.want)
		}
	}
}

func TestRadixOrderMatchesStdOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(500)
		codes := make([]uint64, n)
		for i := range codes {
			// Duplicates on purpose: stability matters.
			codes[i] = uint64(rng.Intn(50))
		}
		r := RadixOrder(codes)
		s := StdOrder(codes)
		if len(r) != len(s) {
			t.Fatalf("length mismatch: %d vs %d", len(r), len(s))
		}
		for i := range r {
			if r[i] != s[i] {
				t.Fatalf("trial %d: radix and std orders differ at %d: %v vs %v", trial, i, r, s)
			}
		}
	}
}

func TestRadixOrderSortedProperty(t *testing.T) {
	f := func(codes []uint64) bool {
		perm := RadixOrder(codes)
		if len(perm) != len(codes) {
			return false
		}
		seen := make([]bool, len(codes))
		for _, p := range perm {
			if p < 0 || p >= len(codes) || seen[p] {
				return false
			}
			seen[p] = true
		}
		return IsSorted(codes, perm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRadixOrderEmptyAndSingle(t *testing.T) {
	if got := RadixOrder(nil); len(got) != 0 {
		t.Fatalf("RadixOrder(nil) = %v", got)
	}
	if got := RadixOrder([]uint64{42}); len(got) != 1 || got[0] != 0 {
		t.Fatalf("RadixOrder single = %v", got)
	}
}

func TestSortedCodes(t *testing.T) {
	codes := []uint64{30, 10, 20}
	perm := Order(codes)
	sorted := SortedCodes(codes, perm)
	want := []uint64{10, 20, 30}
	for i := range want {
		if sorted[i] != want[i] {
			t.Fatalf("SortedCodes = %v, want %v", sorted, want)
		}
	}
}
