package morton

import (
	"sort"

	"repro/internal/parallel"
)

// Sorting Morton codes is Algorithm 1, line 10: it produces the new index
// array I' = [i_0, ..., i_{N-1}] such that codes[I'[0]] ≤ codes[I'[1]] ≤ ….
// Two implementations are provided — an LSD radix sort (the default: O(N)
// passes over fixed-width integer keys, the natural choice for 32/63-bit
// codes) and a comparison sort (the reference, and the subject of the
// sort-algorithm ablation bench).

// Order returns the stable sorted order of codes: a permutation perm such
// that codes[perm[j]] is non-decreasing in j, with ties broken by original
// index. It is the package's default (radix) implementation.
//
//edgepc:hotpath
func Order(codes []uint64) []int {
	return RadixOrder(codes)
}

// RadixOrder computes the sorted order with an LSD radix sort over 8-bit
// digits. Passes whose digit is constant across all keys are skipped, so a
// 32-bit code pays only four passes. Above the parallel threshold the
// counting and scatter passes split the keys across workers (see
// radixOrderParallel); the result is identical to the serial sort.
//
//edgepc:hotpath
func RadixOrder(codes []uint64) []int {
	n := len(codes)
	//edgepc:lint-ignore hotpathalloc the permutation is the result and must be fresh per call; candidate for a caller-provided buffer
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	if n < 2 {
		return perm
	}
	// Determine which byte positions vary.
	var orAll, andAll uint64
	andAll = ^uint64(0)
	for _, c := range codes {
		orAll |= c
		andAll &= c
	}
	varying := orAll ^ andAll

	//edgepc:lint-ignore hotpathalloc O(N) scatter scratch, one per sort; candidate for a caller-provided buffer
	buf := make([]int, n)
	if workers := parallel.Workers(n); workers > 1 {
		return radixOrderParallel(codes, perm, buf, varying, workers)
	}
	var count [256]int
	for shift := uint(0); shift < 64; shift += 8 {
		if (varying>>shift)&0xff == 0 {
			continue
		}
		for i := range count {
			count[i] = 0
		}
		for _, p := range perm {
			count[(codes[p]>>shift)&0xff]++
		}
		sum := 0
		for i := 0; i < 256; i++ {
			c := count[i]
			count[i] = sum
			sum += c
		}
		for _, p := range perm {
			d := (codes[p] >> shift) & 0xff
			buf[count[d]] = p
			count[d]++
		}
		perm, buf = buf, perm
	}
	return perm
}

// radixOrderParallel runs each radix pass with a per-worker histogram: every
// worker counts the digits of its contiguous key chunk, a serial exclusive
// prefix over (digit, worker) — 256·workers integers, negligible next to the
// O(n) passes — turns the histograms into private write cursors, and each
// worker scatters its chunk using only its own cursors. Output slots are
// therefore written exactly once (no races) and chunks are processed in
// worker order within each digit, preserving the LSD sort's stability.
//
//edgepc:hotpath
func radixOrderParallel(codes []uint64, perm, buf []int, varying uint64, workers int) []int {
	//edgepc:lint-ignore hotpathalloc one 1KiB histogram per worker per sort, negligible next to the O(N) passes
	counts := make([][256]int, workers)
	for shift := uint(0); shift < 64; shift += 8 {
		if (varying>>shift)&0xff == 0 {
			continue
		}
		// Zero all slots serially: ceil division may leave trailing worker
		// slots unused, and stale counts would corrupt the prefix sums.
		for i := range counts {
			counts[i] = [256]int{}
		}
		parallel.ForWorkers(len(perm), func(w, lo, hi int) {
			c := &counts[w]
			for _, p := range perm[lo:hi] {
				c[(codes[p]>>shift)&0xff]++
			}
		})
		sum := 0
		for d := 0; d < 256; d++ {
			for w := range counts {
				c := counts[w][d]
				counts[w][d] = sum
				sum += c
			}
		}
		parallel.ForWorkers(len(perm), func(w, lo, hi int) {
			off := &counts[w]
			for _, p := range perm[lo:hi] {
				d := (codes[p] >> shift) & 0xff
				buf[off[d]] = p
				off[d]++
			}
		})
		perm, buf = buf, perm
	}
	return perm
}

// StdOrder computes the sorted order with the standard library's stable
// comparison sort. Used as the reference implementation in tests and as the
// comparison point in the sort ablation bench.
func StdOrder(codes []uint64) []int {
	perm := make([]int, len(codes))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return codes[perm[a]] < codes[perm[b]] })
	return perm
}

// SortedCodes applies perm to codes, returning the code sequence in sorted
// order.
func SortedCodes(codes []uint64, perm []int) []uint64 {
	out := make([]uint64, len(perm))
	for j, i := range perm {
		out[j] = codes[i]
	}
	return out
}

// IsSorted reports whether codes[perm[j]] is non-decreasing.
func IsSorted(codes []uint64, perm []int) bool {
	for j := 1; j < len(perm); j++ {
		if codes[perm[j-1]] > codes[perm[j]] {
			return false
		}
	}
	return true
}
