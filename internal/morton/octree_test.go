package morton

import (
	"math/rand"
	"sort"
	"testing"
)

func sortedRandomCodes(n, coordMax int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	codes := make([]uint64, n)
	for i := range codes {
		codes[i] = Encode3(uint32(rng.Intn(coordMax)), uint32(rng.Intn(coordMax)), uint32(rng.Intn(coordMax)))
	}
	sort.Slice(codes, func(a, b int) bool { return codes[a] < codes[b] })
	return codes
}

func TestOctreeBuildInvariants(t *testing.T) {
	codes := sortedRandomCodes(500, 64, 1)
	tree, err := NewOctree(codes, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 6 {
		t.Fatalf("depth = %d", tree.Depth())
	}
	// Each level's node ranges partition [0, N) in order.
	for d := 0; d <= tree.Depth(); d++ {
		pos := int32(0)
		for _, n := range tree.nodes[d] {
			if n.lo != pos {
				t.Fatalf("depth %d: gap at %d (node starts %d)", d, pos, n.lo)
			}
			if n.hi < n.lo {
				t.Fatalf("depth %d: inverted node", d)
			}
			pos = n.hi
		}
		if pos != int32(len(codes)) {
			t.Fatalf("depth %d: covers %d of %d", d, pos, len(codes))
		}
	}
	// Node counts grow (or stay) with depth and never exceed N.
	prev := 1
	for d := 1; d <= tree.Depth(); d++ {
		c := tree.NodeCount(d)
		if c < prev/8 || c > len(codes) {
			t.Fatalf("depth %d: %d nodes", d, c)
		}
		prev = c
	}
}

func TestOctreeRejectsBadInput(t *testing.T) {
	if _, err := NewOctree([]uint64{3, 1, 2}, 4, 0); err == nil {
		t.Fatal("unsorted codes: want error")
	}
	if _, err := NewOctree([]uint64{1, 2}, 0, 0); err == nil {
		t.Fatal("0 bits: want error")
	}
	if _, err := NewOctree([]uint64{1, 2}, 25, 0); err == nil {
		t.Fatal("25 bits: want error")
	}
}

func TestOctreeCellRange(t *testing.T) {
	codes := sortedRandomCodes(300, 32, 2)
	tree, err := NewOctree(codes, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range []uint64{codes[0], codes[150], codes[299]} {
		for d := 0; d <= 5; d++ {
			lo, hi := tree.CellRange(probe, d)
			if lo > hi || lo < 0 || hi > len(codes) {
				t.Fatalf("depth %d: bad range [%d,%d)", d, lo, hi)
			}
			// The probe itself is in its own cell.
			found := false
			for i := lo; i < hi; i++ {
				if codes[i] == probe {
					found = true
				}
			}
			if !found {
				t.Fatalf("depth %d: probe %d not in its cell range", d, probe)
			}
			// Depth 0 covers everything.
			if d == 0 && (lo != 0 || hi != len(codes)) {
				t.Fatalf("root range [%d,%d)", lo, hi)
			}
		}
	}
}

func TestOctreeVisitBoxMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	codes := sortedRandomCodes(400, 32, 3)
	tree, err := NewOctree(codes, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 60; trial++ {
		x0, y0, z0 := uint32(rng.Intn(28)), uint32(rng.Intn(28)), uint32(rng.Intn(28))
		zmin := Encode3(x0, y0, z0)
		zmax := Encode3(x0+uint32(rng.Intn(6)), y0+uint32(rng.Intn(6)), z0+uint32(rng.Intn(6)))
		var got []int
		tree.VisitBox(zmin, zmax, func(lo, hi int) bool {
			for i := lo; i < hi; i++ {
				got = append(got, i)
			}
			return true
		})
		var want []int
		for i, c := range codes {
			if InBox(c, zmin, zmax) {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d hits, want %d", trial, len(got), len(want))
		}
		sort.Ints(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: hit %d = %d, want %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestOctreeVisitBoxEarlyStop(t *testing.T) {
	codes := sortedRandomCodes(200, 16, 4)
	tree, err := NewOctree(codes, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	tree.VisitBox(0, Encode3(15, 15, 15), func(lo, hi int) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("early stop visited %d runs", calls)
	}
}

func TestOctreeVisitBoxAgreesWithRangeQuery(t *testing.T) {
	// The two exact range mechanisms (BigMin scan vs octree walk) must
	// agree on every box.
	rng := rand.New(rand.NewSource(5))
	codes := sortedRandomCodes(600, 64, 5)
	tree, err := NewOctree(codes, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 40; trial++ {
		x0, y0, z0 := uint32(rng.Intn(56)), uint32(rng.Intn(56)), uint32(rng.Intn(56))
		zmin := Encode3(x0, y0, z0)
		zmax := Encode3(x0+uint32(rng.Intn(8)), y0+uint32(rng.Intn(8)), z0+uint32(rng.Intn(8)))
		var a, b []int
		tree.VisitBox(zmin, zmax, func(lo, hi int) bool {
			for i := lo; i < hi; i++ {
				a = append(a, i)
			}
			return true
		})
		RangeQuery(codes, zmin, zmax, func(j int) bool {
			b = append(b, j)
			return true
		})
		sort.Ints(a)
		if len(a) != len(b) {
			t.Fatalf("trial %d: octree %d vs bigmin %d hits", trial, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: disagree at %d", trial, i)
			}
		}
	}
}
