package morton

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func benchCodes(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	codes := make([]uint64, n)
	for i := range codes {
		codes[i] = uint64(rng.Int63()) & ((1 << 30) - 1)
	}
	return codes
}

// The §5.1.2 anchor: Morton code generation for 8 192 points (0.1 ms on the
// paper's GPU; host wall-clock here).
func BenchmarkEncodeCloud8192(b *testing.B) {
	cloud := geom.GenerateShape(geom.ShapeBlob, geom.ShapeOptions{N: 8192, Seed: 1})
	enc, err := NewEncoder(cloud.Bounds(), 32)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]uint64, 8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = enc.EncodeCloud(cloud, buf)
	}
	b.SetBytes(8192 * 8)
}

func BenchmarkEncode3(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= Encode3(uint32(i), uint32(i>>1), uint32(i>>2))
	}
	_ = sink
}

// The sort-algorithm ablation (DESIGN.md §5.5).
func BenchmarkAblationSortRadix8192(b *testing.B) {
	codes := benchCodes(8192, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RadixOrder(codes)
	}
}

func BenchmarkAblationSortStd8192(b *testing.B) {
	codes := benchCodes(8192, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StdOrder(codes)
	}
}

func BenchmarkAblationSortRadix65536(b *testing.B) {
	codes := benchCodes(65536, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RadixOrder(codes)
	}
}
