// Package parallel provides small helpers for data-parallel loops.
//
// The EdgePC kernels (Morton code generation, uniform index sampling,
// window-based neighbor search) are "fully parallel" in the paper's terms:
// every iteration is independent. On the GPU these map to one CUDA thread per
// point; here they map onto a goroutine worker pool sized to GOMAXPROCS.
package parallel

import (
	"runtime"
	"sync"
)

// minParallelWork is the smallest slice length worth spawning goroutines for.
// Below this, scheduling overhead dominates and we run serially.
const minParallelWork = 2048

// For runs body(i) for every i in [0, n) using up to GOMAXPROCS workers.
// Iterations must be independent. For small n the loop runs serially.
func For(n int, body func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if n < minParallelWork || workers <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	ForChunks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForChunks splits [0, n) into contiguous chunks, one per worker, and runs
// body(lo, hi) on each chunk concurrently. Chunked iteration amortizes the
// per-call overhead when the body is only a few instructions (e.g. one Morton
// encode per point).
func ForChunks(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < minParallelWork {
		body(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ForWorkers splits [0, n) into one contiguous chunk per worker — exactly
// the split Workers(n) reports — and runs body(worker, lo, hi) concurrently.
// Unlike ForChunks, the body learns which worker slot it occupies, so callers
// can give every worker a private accumulator sized by Workers(n) and reduce
// after the call returns (the k-split pattern of tensor.MatMulATInto and the
// counting passes of morton.RadixOrder). Worker indexes are dense in
// [0, Workers(n)), though for some n the trailing slots go unused (ceil
// division can cover n with fewer chunks). For a fixed n and GOMAXPROCS the
// chunk boundaries are deterministic, so two consecutive ForWorkers calls
// see identical (worker, lo, hi) triples.
func ForWorkers(n int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := Workers(n)
	if workers <= 1 {
		body(0, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	w := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			body(w, lo, hi)
		}(w, lo, hi)
		w++
	}
	wg.Wait()
}

// Workers reports the number of workers For would use for a loop of length n.
// Exposed so the edge-device cost model can charge the same parallel split
// the real code executes.
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if n < minParallelWork {
		return 1
	}
	if w > n {
		w = n
	}
	return w
}
