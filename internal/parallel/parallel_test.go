package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndexes(t *testing.T) {
	for _, n := range []int{0, 1, 7, 2048, 10000} {
		var count int64
		seen := make([]int32, n)
		For(n, func(i int) {
			atomic.AddInt64(&count, 1)
			atomic.AddInt32(&seen[i], 1)
		})
		if count != int64(n) {
			t.Fatalf("n=%d: %d calls", n, count)
		}
		for i, s := range seen {
			if s != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, s)
			}
		}
	}
}

func TestForChunksCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 5, 4096} {
		covered := make([]int32, n)
		ForChunks(n, func(lo, hi int) {
			if lo < 0 || hi > n || lo > hi {
				t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&covered[i], 1)
			}
		})
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("n=%d: index %d covered %d times", n, i, c)
			}
		}
	}
}

func TestParallelPathsWithMultipleWorkers(t *testing.T) {
	// Single-CPU machines never take the goroutine paths at the default
	// GOMAXPROCS; force a multi-worker setting to exercise them.
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	const n = 10000
	var count int64
	seen := make([]int32, n)
	For(n, func(i int) {
		atomic.AddInt64(&count, 1)
		atomic.AddInt32(&seen[i], 1)
	})
	if count != n {
		t.Fatalf("%d calls", count)
	}
	for i, s := range seen {
		if s != 1 {
			t.Fatalf("index %d visited %d times", i, s)
		}
	}
	covered := make([]int32, n)
	ForChunks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&covered[i], 1)
		}
	})
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("chunked index %d covered %d times", i, c)
		}
	}
	if w := Workers(n); w < 2 {
		t.Fatalf("Workers(%d) = %d with GOMAXPROCS=4", n, w)
	}
}

// TestForChunksEdgeCases pins the clamp ordering: n = 0 must return before
// the worker clamp (workers > n would otherwise clamp to 0 and divide by
// zero), n = 1 and sub-threshold n must run serially as a single chunk, and
// crossing minParallelWork must still cover every index exactly once.
func TestForChunksEdgeCases(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	t.Run("n=0", func(t *testing.T) {
		called := false
		ForChunks(0, func(lo, hi int) { called = true })
		if called {
			t.Fatal("body called for n=0")
		}
	})
	for _, n := range []int{1, minParallelWork - 1} {
		calls := 0
		ForChunks(n, func(lo, hi int) {
			calls++
			if lo != 0 || hi != n {
				t.Fatalf("n=%d: serial chunk [%d,%d)", n, lo, hi)
			}
		})
		if calls != 1 {
			t.Fatalf("n=%d: %d chunks below threshold, want 1", n, calls)
		}
	}
	for _, n := range []int{minParallelWork, minParallelWork + 1} {
		covered := make([]int32, n)
		ForChunks(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&covered[i], 1)
			}
		})
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("n=%d: index %d covered %d times", n, i, c)
			}
		}
	}
}

func TestForWorkersCoversRangeWithDistinctSlots(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	t.Run("n=0", func(t *testing.T) {
		ForWorkers(0, func(w, lo, hi int) { t.Error("body called for n=0") })
	})
	t.Run("serial", func(t *testing.T) {
		calls := 0
		ForWorkers(5, func(w, lo, hi int) {
			calls++
			if w != 0 || lo != 0 || hi != 5 {
				t.Fatalf("serial call (%d, %d, %d)", w, lo, hi)
			}
		})
		if calls != 1 {
			t.Fatalf("%d serial calls", calls)
		}
	})
	t.Run("parallel", func(t *testing.T) {
		n := 3*minParallelWork + 5
		workers := Workers(n)
		if workers < 2 {
			t.Fatalf("Workers(%d) = %d with GOMAXPROCS=4", n, workers)
		}
		covered := make([]int32, n)
		slotUsed := make([]int32, workers)
		ForWorkers(n, func(w, lo, hi int) {
			if w < 0 || w >= workers {
				t.Errorf("worker slot %d out of [0,%d)", w, workers)
				return
			}
			if atomic.AddInt32(&slotUsed[w], 1) != 1 {
				t.Errorf("worker slot %d used twice", w)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&covered[i], 1)
			}
		})
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("index %d covered %d times", i, c)
			}
		}
	})
}

func TestWorkers(t *testing.T) {
	if w := Workers(10); w != 1 {
		t.Fatalf("Workers(10) = %d, want 1 (below parallel threshold)", w)
	}
	if w := Workers(1 << 20); w < 1 {
		t.Fatalf("Workers(1M) = %d", w)
	}
}
