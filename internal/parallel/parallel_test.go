package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndexes(t *testing.T) {
	for _, n := range []int{0, 1, 7, 2048, 10000} {
		var count int64
		seen := make([]int32, n)
		For(n, func(i int) {
			atomic.AddInt64(&count, 1)
			atomic.AddInt32(&seen[i], 1)
		})
		if count != int64(n) {
			t.Fatalf("n=%d: %d calls", n, count)
		}
		for i, s := range seen {
			if s != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, s)
			}
		}
	}
}

func TestForChunksCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 5, 4096} {
		covered := make([]int32, n)
		ForChunks(n, func(lo, hi int) {
			if lo < 0 || hi > n || lo > hi {
				t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&covered[i], 1)
			}
		})
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("n=%d: index %d covered %d times", n, i, c)
			}
		}
	}
}

func TestParallelPathsWithMultipleWorkers(t *testing.T) {
	// Single-CPU machines never take the goroutine paths at the default
	// GOMAXPROCS; force a multi-worker setting to exercise them.
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	const n = 10000
	var count int64
	seen := make([]int32, n)
	For(n, func(i int) {
		atomic.AddInt64(&count, 1)
		atomic.AddInt32(&seen[i], 1)
	})
	if count != n {
		t.Fatalf("%d calls", count)
	}
	for i, s := range seen {
		if s != 1 {
			t.Fatalf("index %d visited %d times", i, s)
		}
	}
	covered := make([]int32, n)
	ForChunks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&covered[i], 1)
		}
	})
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("chunked index %d covered %d times", i, c)
		}
	}
	if w := Workers(n); w < 2 {
		t.Fatalf("Workers(%d) = %d with GOMAXPROCS=4", n, w)
	}
}

func TestWorkers(t *testing.T) {
	if w := Workers(10); w != 1 {
		t.Fatalf("Workers(10) = %d, want 1 (below parallel threshold)", w)
	}
	if w := Workers(1 << 20); w < 1 {
		t.Fatalf("Workers(1M) = %d", w)
	}
}
