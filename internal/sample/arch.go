package sample

// Arch names a down-sampling algorithm family for configuration surfaces
// (pipeline options, degradation tiers, benches) that select samplers by
// value rather than holding a Sampler instance.
type Arch int

const (
	// ArchFPS is exact farthest point sampling (FPS / FPSIndexes).
	ArchFPS Arch = iota
	// ArchBucketFPS is bucketed, pruned FPS with the Frac quality knob
	// (BucketFPS); at quality 1 it matches ArchFPS exactly.
	ArchBucketFPS
	// ArchStride is uniform position striding over the cloud's current
	// order (UniformIndexes) — the EdgePC approximation when that order is
	// Morton-structurized.
	ArchStride
)

// String implements fmt.Stringer with the Sampler.Name vocabulary.
func (a Arch) String() string {
	switch a {
	case ArchBucketFPS:
		return "bucketfps"
	case ArchStride:
		return "stride"
	default:
		return "fps"
	}
}

// New builds a fresh sampler for the arch. frac is the BucketFPS quality
// knob; the other archs ignore it.
func (a Arch) New(frac float64) Sampler {
	switch a {
	case ArchBucketFPS:
		return &BucketFPS{Frac: frac}
	case ArchStride:
		return Uniform{}
	default:
		return FPS{}
	}
}
