package sample

import (
	"errors"
	"fmt"

	"repro/internal/geom"
	"repro/internal/parallel"
)

// Up-sampling (feature propagation) interpolates features of the original N
// points from the n sampled points. PointNet++'s FP modules use 3-nearest-
// neighbor inverse-distance weighting; finding those 3 neighbors costs
// O(N·n), making the last FP module a sampling-stage bottleneck (Fig. 9).
// EdgePC's approximation (package core) restricts the candidate set to 4
// stride-adjacent samples, cutting the search by O(n).

// ErrNoSources reports interpolation with an empty source set.
var ErrNoSources = errors.New("sample: interpolation needs at least one source point")

// InterpPlan holds, for each target point, the indexes of its interpolation
// sources and their normalized weights. Weights are ≥ 0 and sum to 1 per
// target (exactly-coincident points receive weight 1).
type InterpPlan struct {
	K       int       // sources per target
	Indexes []int     // len = targets × K
	Weights []float64 // len = targets × K
}

// Targets returns the number of target points in the plan.
func (p *InterpPlan) Targets() int {
	if p.K == 0 {
		return 0
	}
	return len(p.Indexes) / p.K
}

// Interpolator produces interpolation plans from sampled points back to the
// full-resolution point set.
type Interpolator interface {
	Plan(targets, sources []geom.Point3) (*InterpPlan, error)
	Name() string
}

// ThreeNN is the SOTA feature-propagation interpolator: for every target
// point it finds the 3 nearest source points by exhaustive search and weights
// them by inverse squared distance.
type ThreeNN struct{}

// Name implements Interpolator.
func (ThreeNN) Name() string { return "three-nn" }

// Plan implements Interpolator.
func (ThreeNN) Plan(targets, sources []geom.Point3) (*InterpPlan, error) {
	if len(sources) == 0 {
		return nil, ErrNoSources
	}
	k := 3
	if len(sources) < k {
		k = len(sources)
	}
	plan := &InterpPlan{
		K:       k,
		Indexes: make([]int, len(targets)*k),
		Weights: make([]float64, len(targets)*k),
	}
	parallel.ForChunks(len(targets), func(lo, hi int) {
		bestIdx := make([]int, k)
		bestD := make([]float64, k)
		for t := lo; t < hi; t++ {
			nearestK(targets[t], sources, bestIdx, bestD)
			fillWeights(plan, t, bestIdx, bestD)
		}
	})
	return plan, nil
}

// nearestK fills idx/d with the k nearest sources to p (ascending distance).
// idx and d must have length k.
func nearestK(p geom.Point3, sources []geom.Point3, idx []int, d []float64) {
	k := len(idx)
	for i := range d {
		d[i] = inf
		idx[i] = -1
	}
	for s, q := range sources {
		dist := p.DistSq(q)
		if dist >= d[k-1] {
			continue
		}
		// Insert into the sorted top-k.
		j := k - 1
		for j > 0 && d[j-1] > dist {
			d[j] = d[j-1]
			idx[j] = idx[j-1]
			j--
		}
		d[j] = dist
		idx[j] = s
	}
}

const inf = 1e300

// fillWeights writes the inverse-distance-squared weights for target t. If a
// source coincides with the target (d = 0) it receives all the weight.
func fillWeights(plan *InterpPlan, t int, idx []int, d []float64) {
	k := plan.K
	base := t * k
	const eps = 1e-10
	total := 0.0
	for i := 0; i < k; i++ {
		plan.Indexes[base+i] = idx[i]
		w := 1.0 / (d[i] + eps)
		plan.Weights[base+i] = w
		total += w
	}
	for i := 0; i < k; i++ {
		plan.Weights[base+i] /= total
	}
}

// ApplyPlan interpolates source features into target features according to
// the plan: dst[t] = Σ_i w[t,i] · src[idx[t,i]]. dst is allocated if too
// small. featDim is the feature width of src rows.
func ApplyPlan(plan *InterpPlan, src []float32, featDim int, dst []float32) ([]float32, error) {
	t := plan.Targets()
	need := t * featDim
	if len(src)%featDim != 0 {
		return nil, fmt.Errorf("sample: src length %d not divisible by featDim %d", len(src), featDim)
	}
	if cap(dst) < need {
		dst = make([]float32, need)
	}
	dst = dst[:need]
	parallel.ForChunks(t, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out := dst[i*featDim : (i+1)*featDim]
			for c := range out {
				out[c] = 0
			}
			for j := 0; j < plan.K; j++ {
				s := plan.Indexes[i*plan.K+j]
				w := float32(plan.Weights[i*plan.K+j])
				row := src[s*featDim : (s+1)*featDim]
				for c, v := range row {
					out[c] += w * v
				}
			}
		}
	})
	return dst, nil
}
