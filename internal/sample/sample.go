// Package sample provides point-cloud down-sampling and up-sampling
// (interpolation) algorithms: the state-of-the-art baselines used by
// PointNet++-style networks.
//
// The paper's primary target is farthest point sampling (FPS): it yields an
// excellent coverage of the input cloud but costs O(nN) with a serial
// dependency between consecutive samples, making it the dominant stage on
// edge devices. The EdgePC approximation (uniform index sampling over
// Morton-structurized data) lives in package core; the samplers here are the
// baselines it is compared against.
package sample

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/geom"
)

// Common sampler errors.
var (
	ErrEmptyCloud = errors.New("sample: empty cloud")
	ErrBadCount   = errors.New("sample: invalid sample count")
)

// Sampler selects n representative points from a cloud and returns their
// indexes into the cloud.
type Sampler interface {
	// Sample returns the indexes of n selected points. Implementations
	// must return an error if n < 1 or n > c.Len().
	Sample(c *geom.Cloud, n int) ([]int, error)
	// Name identifies the algorithm in reports and benchmarks.
	Name() string
}

func checkArgs(c *geom.Cloud, n int) error {
	if c.Len() == 0 {
		return ErrEmptyCloud
	}
	if n < 1 || n > c.Len() {
		return fmt.Errorf("%w: n=%d with %d points", ErrBadCount, n, c.Len())
	}
	return nil
}

// FPS is farthest point sampling (Eldar et al. 1997), the SOTA down-sampler
// in PointNet++. Starting from StartIndex it repeatedly selects the point
// whose distance to the already-sampled set is maximal, updating a running
// minimum-distance array after every pick — O(nN) total, inherently serial
// across picks (§5.1.1).
type FPS struct {
	// StartIndex is the first sampled point. The paper's Fig. 8(a) example
	// starts from P0; production implementations often pick it randomly.
	StartIndex int
}

// Name implements Sampler.
func (FPS) Name() string { return "fps" }

// Sample implements Sampler.
func (f FPS) Sample(c *geom.Cloud, n int) ([]int, error) {
	if err := checkArgs(c, n); err != nil {
		return nil, err
	}
	start := f.StartIndex
	if start < 0 || start >= c.Len() {
		start = 0
	}
	return fpsFrom(c.Points, n, start), nil
}

// FPSIndexes runs farthest point sampling directly over a point slice,
// starting from index start. It is the kernel behind FPS.Sample, exported for
// callers (the CNN modules) that hold bare point slices rather than clouds.
func FPSIndexes(pts []geom.Point3, n, start int) ([]int, error) {
	if len(pts) == 0 {
		return nil, ErrEmptyCloud
	}
	if n < 1 || n > len(pts) {
		return nil, fmt.Errorf("%w: n=%d with %d points", ErrBadCount, n, len(pts))
	}
	if start < 0 || start >= len(pts) {
		start = 0
	}
	return fpsFrom(pts, n, start), nil
}

func fpsFrom(pts []geom.Point3, n, start int) []int {
	N := len(pts)
	out := make([]int, 0, n)
	// dist[i] holds the squared distance from point i to the sampled set —
	// the paper's array D, initialized to +inf (here: updated on first pick).
	dist := make([]float64, N)
	cur := start
	out = append(out, cur)
	for i := range dist {
		dist[i] = pts[i].DistSq(pts[cur])
	}
	for len(out) < n {
		best, bestD := -1, -1.0
		for i, d := range dist {
			if d > bestD {
				best, bestD = i, d
			}
		}
		cur = best
		out = append(out, cur)
		// Update step: O(N) per pick.
		p := pts[cur]
		for i := range dist {
			if d := pts[i].DistSq(p); d < dist[i] {
				dist[i] = d
			}
		}
	}
	return out
}

// Random samples n points uniformly at random without replacement.
type Random struct {
	Seed int64
}

// Name implements Sampler.
func (Random) Name() string { return "random" }

// Sample implements Sampler.
func (r Random) Sample(c *geom.Cloud, n int) ([]int, error) {
	if err := checkArgs(c, n); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(r.Seed))
	// Partial Fisher–Yates over a sparse index overlay: only the first n
	// swaps of a full shuffle are performed, and only displaced entries are
	// materialized — O(n) time and space where rng.Perm(N)[:n] would pay for
	// the full N-element permutation on every call.
	N := c.Len()
	out := make([]int, n)
	moved := make(map[int]int, n)
	get := func(k int) int {
		if v, ok := moved[k]; ok {
			return v
		}
		return k
	}
	for i := 0; i < n; i++ {
		j := i + rng.Intn(N-i)
		out[i] = get(j)
		moved[j] = get(i)
	}
	return out, nil
}

// Uniform samples points at evenly spaced positions of the cloud's *current*
// order. On raw (unordered) clouds this is the strawman of Fig. 4b — cheap
// but spatially uneven; on Morton-structurized clouds it is the core of the
// EdgePC sampler.
type Uniform struct{}

// Name implements Sampler.
func (Uniform) Name() string { return "uniform" }

// Sample implements Sampler.
func (Uniform) Sample(c *geom.Cloud, n int) ([]int, error) {
	if err := checkArgs(c, n); err != nil {
		return nil, err
	}
	return UniformIndexes(c.Len(), n), nil
}

// UniformIndexes returns n evenly spaced positions in [0, total). Both
// endpoints are covered (position 0 and total-1 are always selected for
// n ≥ 2), matching the paper's Fig. 8(b) worked example, where sampling 3 of
// 5 points picks positions {0, 2, 4}.
func UniformIndexes(total, n int) []int {
	out := make([]int, n)
	writeUniformIndexes(out, total)
	return out
}

// writeUniformIndexes fills out with len(out) evenly spaced positions in
// [0, total) — the allocation-free core of UniformIndexes, usable from
// hot-path kernels with a pre-sized destination.
func writeUniformIndexes(out []int, total int) {
	n := len(out)
	if n == 0 {
		return
	}
	if n == 1 {
		out[0] = 0
		return
	}
	num, den := total-1, n-1
	for k := 0; k < n; k++ {
		// round(k * (total-1) / (n-1)) in integer arithmetic.
		out[k] = (k*num + den/2) / den
	}
}

// Grid performs voxel-grid down-sampling: the cloud is divided into cubic
// voxels of side Size and the point nearest to each occupied voxel's centroid
// is retained. A common non-learned baseline (e.g. in PCL); included for the
// sampler-quality comparison. The number of returned points is the number of
// occupied voxels, truncated or topped up to n.
type Grid struct {
	Size float64
}

// Name implements Sampler.
func (Grid) Name() string { return "grid" }

// Sample implements Sampler.
func (g Grid) Sample(c *geom.Cloud, n int) ([]int, error) {
	if err := checkArgs(c, n); err != nil {
		return nil, err
	}
	size := g.Size
	if size <= 0 {
		// Heuristic: aim for ~n occupied voxels.
		b := c.Bounds()
		size = b.MaxDim() / float64(max(1, cubeRootCeil(n)))
	}
	type cell struct {
		sum   geom.Point3
		count int
		first int
	}
	cells := make(map[[3]int64]*cell, n)
	b := c.Bounds()
	for i, p := range c.Points {
		key := [3]int64{
			int64((p.X - b.Min.X) / size),
			int64((p.Y - b.Min.Y) / size),
			int64((p.Z - b.Min.Z) / size),
		}
		cl := cells[key]
		if cl == nil {
			cl = &cell{first: i}
			cells[key] = cl
		}
		cl.sum = cl.sum.Add(p)
		cl.count++
	}
	out := make([]int, 0, len(cells))
	for _, cl := range cells {
		out = append(out, cl.first)
	}
	// Deterministic order, then fit to n.
	sort.Ints(out)
	if len(out) > n {
		pick := UniformIndexes(len(out), n)
		sel := make([]int, n)
		for j, p := range pick {
			sel[j] = out[p]
		}
		return sel, nil
	}
	// Fewer occupied voxels than n: top up with the lowest indexes not
	// already selected. out is sorted, so a single merge-style scan finds
	// the gaps without re-checking membership per candidate.
	picked := len(out)
	next := 0 // next position in the sorted voxel picks to skip over
	for i := 0; len(out) < n && i < c.Len(); i++ {
		if next < picked && out[next] == i {
			next++
			continue
		}
		out = append(out, i)
	}
	sort.Ints(out)
	return out[:n], nil
}

func cubeRootCeil(n int) int {
	r := 1
	for r*r*r < n {
		r++
	}
	return r
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
