package sample

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// fig8Cloud is the 5-point cloud of the paper's Fig. 8 worked example.
func fig8Cloud() *geom.Cloud {
	c := geom.NewCloud(0, 0)
	c.Points = []geom.Point3{
		{X: 3, Y: 6, Z: 2}, // P0
		{X: 1, Y: 3, Z: 1}, // P1
		{X: 4, Y: 3, Z: 2}, // P2
		{X: 0, Y: 0, Z: 0}, // P3
		{X: 5, Y: 1, Z: 0}, // P4
	}
	return c
}

func TestPaperWorkedExampleFig8aFPS(t *testing.T) {
	// Fig. 8(a): sampling 3 of 5 points starting at P0: after P0 the
	// distance array is {0,14,10,49,33} → P3 picked; then {0,11,10,0,26} →
	// P4 picked. Result: {P0, P3, P4}.
	got, err := FPS{StartIndex: 0}.Sample(fig8Cloud(), 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FPS = %v, want %v", got, want)
		}
	}
}

func TestUniformIndexesPaperExample(t *testing.T) {
	// Fig. 8(b): sampling 3 of 5 points picks sorted positions {0, 2, 4}.
	got := UniformIndexes(5, 3)
	want := []int{0, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("UniformIndexes(5,3) = %v, want %v", got, want)
		}
	}
}

func TestUniformIndexesProperties(t *testing.T) {
	f := func(total, n uint8) bool {
		tt := int(total%200) + 2
		nn := int(n)%tt + 1
		idx := UniformIndexes(tt, nn)
		if len(idx) != nn {
			return false
		}
		prev := -1
		for _, i := range idx {
			if i < 0 || i >= tt || i <= prev {
				return false
			}
			prev = i
		}
		if nn >= 2 && (idx[0] != 0 || idx[nn-1] != tt-1) {
			return false // both ends covered
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFPSErrors(t *testing.T) {
	c := fig8Cloud()
	if _, err := (FPS{}).Sample(c, 0); err == nil {
		t.Fatal("n=0: want error")
	}
	if _, err := (FPS{}).Sample(c, 6); err == nil {
		t.Fatal("n>N: want error")
	}
	if _, err := (FPS{}).Sample(geom.NewCloud(0, 0), 1); err == nil {
		t.Fatal("empty cloud: want error")
	}
}

func TestFPSAllPoints(t *testing.T) {
	c := fig8Cloud()
	got, err := FPS{}.Sample(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, i := range got {
		if seen[i] {
			t.Fatalf("duplicate sample %d in %v", i, got)
		}
		seen[i] = true
	}
	if len(seen) != 5 {
		t.Fatalf("sampled %d distinct of 5", len(seen))
	}
}

func TestFPSStartIndexOutOfRangeFallsBack(t *testing.T) {
	got, err := FPS{StartIndex: 99}.Sample(fig8Cloud(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatalf("fallback start = %d, want 0", got[0])
	}
}

// coverRadius computes max distance of any point to the sampled set.
func coverRadius(pts []geom.Point3, sel []int) float64 {
	worst := 0.0
	for _, p := range pts {
		best := math.Inf(1)
		for _, s := range sel {
			if d := p.DistSq(pts[s]); d < best {
				best = d
			}
		}
		if best > worst {
			worst = best
		}
	}
	return math.Sqrt(worst)
}

func TestFPSGreedyKCenterBound(t *testing.T) {
	// FPS is the greedy k-center heuristic: its covering radius is within
	// 2× of the optimal. We verify the weaker, directly checkable
	// invariant: the covering radius never exceeds the distance of the last
	// (farthest) pick at selection time, and shrinks monotonically as n
	// grows.
	c := geom.GenerateShape(geom.ShapeTorus, geom.ShapeOptions{N: 300, Seed: 11})
	prev := math.Inf(1)
	for _, n := range []int{5, 10, 20, 40} {
		sel, err := FPS{}.Sample(c, n)
		if err != nil {
			t.Fatal(err)
		}
		r := coverRadius(c.Points, sel)
		if r > prev+1e-12 {
			t.Fatalf("covering radius grew from %v to %v at n=%d", prev, r, n)
		}
		prev = r
	}
}

func TestFPSBeatsRandomCoverage(t *testing.T) {
	c := geom.GenerateShape(geom.ShapeBlob, geom.ShapeOptions{N: 400, DensitySkew: 0.8, Seed: 3})
	fps, err := FPS{}.Sample(c, 24)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := Random{Seed: 7}.Sample(c, 24)
	if err != nil {
		t.Fatal(err)
	}
	if coverRadius(c.Points, fps) > coverRadius(c.Points, rnd) {
		t.Fatalf("FPS coverage (%v) worse than random (%v)",
			coverRadius(c.Points, fps), coverRadius(c.Points, rnd))
	}
}

func TestRandomSampleDistinct(t *testing.T) {
	c := geom.GenerateShape(geom.ShapeSphere, geom.ShapeOptions{N: 100, Seed: 1})
	sel, err := Random{Seed: 5}.Sample(c, 50)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, i := range sel {
		if i < 0 || i >= 100 || seen[i] {
			t.Fatalf("bad or duplicate index %d", i)
		}
		seen[i] = true
	}
}

func TestUniformSamplerName(t *testing.T) {
	names := map[string]Sampler{
		"fps": FPS{}, "random": Random{}, "uniform": Uniform{}, "grid": Grid{},
	}
	for want, s := range names {
		if s.Name() != want {
			t.Fatalf("Name = %q, want %q", s.Name(), want)
		}
	}
}

func TestGridSamplerReturnsNIndexes(t *testing.T) {
	c := geom.GenerateShape(geom.ShapeBox, geom.ShapeOptions{N: 500, Seed: 2})
	for _, n := range []int{10, 100, 499} {
		sel, err := Grid{}.Sample(c, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(sel) != n {
			t.Fatalf("grid returned %d of %d", len(sel), n)
		}
		for _, i := range sel {
			if i < 0 || i >= c.Len() {
				t.Fatalf("index %d out of range", i)
			}
		}
	}
}

func TestThreeNNPlanWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var targets, sources []geom.Point3
	for i := 0; i < 50; i++ {
		targets = append(targets, geom.Point3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()})
	}
	for i := 0; i < 20; i++ {
		sources = append(sources, geom.Point3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()})
	}
	plan, err := ThreeNN{}.Plan(targets, sources)
	if err != nil {
		t.Fatal(err)
	}
	if plan.K != 3 || plan.Targets() != 50 {
		t.Fatalf("plan shape K=%d targets=%d", plan.K, plan.Targets())
	}
	for ti := 0; ti < plan.Targets(); ti++ {
		var sum float64
		for j := 0; j < plan.K; j++ {
			w := plan.Weights[ti*plan.K+j]
			if w < 0 {
				t.Fatalf("negative weight %v", w)
			}
			sum += w
			if s := plan.Indexes[ti*plan.K+j]; s < 0 || s >= len(sources) {
				t.Fatalf("bad source index %d", s)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("weights sum to %v", sum)
		}
	}
}

func TestThreeNNPicksNearestSources(t *testing.T) {
	sources := []geom.Point3{{X: 0}, {X: 10}, {X: 20}, {X: 30}}
	targets := []geom.Point3{{X: 1}}
	plan, err := ThreeNN{}.Plan(targets, sources)
	if err != nil {
		t.Fatal(err)
	}
	// Nearest three to x=1 are sources 0, 1, 2 in that order.
	want := []int{0, 1, 2}
	for j, s := range want {
		if plan.Indexes[j] != s {
			t.Fatalf("indexes = %v, want %v", plan.Indexes[:3], want)
		}
	}
	// Coincident source dominates the weight.
	plan2, err := ThreeNN{}.Plan([]geom.Point3{{X: 10}}, sources)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.Weights[0] < 0.999 {
		t.Fatalf("coincident weight = %v, want ≈1", plan2.Weights[0])
	}
}

func TestThreeNNFewSources(t *testing.T) {
	plan, err := ThreeNN{}.Plan([]geom.Point3{{}, {X: 1}}, []geom.Point3{{X: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if plan.K != 1 {
		t.Fatalf("K = %d with one source", plan.K)
	}
	if _, err := (ThreeNN{}).Plan([]geom.Point3{{}}, nil); err == nil {
		t.Fatal("no sources: want error")
	}
}

func TestApplyPlan(t *testing.T) {
	// Two targets, two sources, K=1: pure gather.
	plan := &InterpPlan{K: 1, Indexes: []int{1, 0}, Weights: []float64{1, 1}}
	src := []float32{1, 2, 3, 4} // 2×2
	dst, err := ApplyPlan(plan, src, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{3, 4, 1, 2}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst = %v, want %v", dst, want)
		}
	}
}

func TestApplyPlanBlends(t *testing.T) {
	plan := &InterpPlan{K: 2, Indexes: []int{0, 1}, Weights: []float64{0.25, 0.75}}
	src := []float32{0, 4} // 2×1
	dst, err := ApplyPlan(plan, src, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(dst[0]-3)) > 1e-6 {
		t.Fatalf("blend = %v, want 3", dst[0])
	}
}

func TestApplyPlanBadShape(t *testing.T) {
	plan := &InterpPlan{K: 1, Indexes: []int{0}, Weights: []float64{1}}
	if _, err := ApplyPlan(plan, []float32{1, 2, 3}, 2, nil); err == nil {
		t.Fatal("odd src length: want error")
	}
}

func TestFPSIndexesDirect(t *testing.T) {
	pts := fig8Cloud().Points
	idx, err := FPSIndexes(pts, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if idx[0] != 0 || idx[1] != 3 || idx[2] != 4 {
		t.Fatalf("FPSIndexes = %v", idx)
	}
	if _, err := FPSIndexes(nil, 1, 0); err == nil {
		t.Fatal("empty points: want error")
	}
}
