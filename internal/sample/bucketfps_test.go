package sample

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func randomCloud(n int, seed int64) *geom.Cloud {
	rng := rand.New(rand.NewSource(seed))
	c := geom.NewCloud(0, 0)
	c.Points = make([]geom.Point3, n)
	for i := range c.Points {
		c.Points[i] = geom.Point3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
	}
	return c
}

func TestBucketFPSWorkedExample(t *testing.T) {
	// At quality 1 the Fig. 8(a) worked example must come out exactly as
	// with exact FPS: {P0, P3, P4}.
	b := &BucketFPS{Frac: 1}
	got, err := b.Sample(fig8Cloud(), 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BucketFPS = %v, want %v", got, want)
		}
	}
}

func TestBucketFPSQualityOneMatchesExactFPS(t *testing.T) {
	// Pruning must be a pure speedup: same picks, same order, across bucket
	// layouts, start indexes and sample counts.
	for _, N := range []int{5, 37, 200, 1000} {
		c := randomCloud(N, int64(N))
		for _, n := range []int{1, 2, N / 3, N} {
			if n < 1 {
				continue
			}
			for _, bsize := range []int{0, 1, 7, 64, N} {
				exact, err := FPS{StartIndex: N / 2}.Sample(c, n)
				if err != nil {
					t.Fatal(err)
				}
				b := &BucketFPS{Frac: 1, StartIndex: N / 2, BucketSize: bsize}
				got, err := b.Sample(c, n)
				if err != nil {
					t.Fatal(err)
				}
				for i := range exact {
					if got[i] != exact[i] {
						t.Fatalf("N=%d n=%d bucket=%d: pick %d = %d, want %d (got %v want %v)",
							N, n, bsize, i, got[i], exact[i], got[:i+1], exact[:i+1])
					}
				}
			}
		}
	}
}

func TestBucketFPSScratchReuseStaysExact(t *testing.T) {
	// A single BucketFPS instance re-used across clouds of different sizes
	// must keep matching exact FPS (stale scratch must never leak through).
	b := &BucketFPS{Frac: 1}
	var sel []int
	for i, N := range []int{300, 50, 700, 50, 301} {
		c := randomCloud(N, int64(100+i))
		exact, err := FPS{}.Sample(c, N/4)
		if err != nil {
			t.Fatal(err)
		}
		sel, err = b.SampleInto(c.Points, N/4, sel)
		if err != nil {
			t.Fatal(err)
		}
		for j := range exact {
			if sel[j] != exact[j] {
				t.Fatalf("call %d (N=%d): pick %d = %d, want %d", i, N, j, sel[j], exact[j])
			}
		}
	}
}

func TestBucketFPSQualityZeroIsStride(t *testing.T) {
	c := randomCloud(256, 9)
	b := &BucketFPS{Frac: 0}
	got, err := b.Sample(c, 17)
	if err != nil {
		t.Fatal(err)
	}
	want := UniformIndexes(256, 17)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("quality 0 = %v, want stride %v", got, want)
		}
	}
}

func TestBucketFPSCoverageImprovesWithQuality(t *testing.T) {
	// The quality knob buys coverage: refinement picks target the worst
	// covered region, so radius at quality q=0.5 and q=1 should beat pure
	// stride on a randomly ordered (unstructurized, worst-case) cloud, and
	// exact quality should be at least as good as half quality up to noise.
	c := randomCloud(4000, 42)
	radius := func(frac float64) float64 {
		b := &BucketFPS{Frac: frac}
		sel, err := b.Sample(c, 64)
		if err != nil {
			t.Fatal(err)
		}
		return coverRadius(c.Points, sel)
	}
	r0, r5, r1 := radius(0), radius(0.5), radius(1)
	if r5 > r0 {
		t.Fatalf("coverage radius grew with quality: q0=%v q0.5=%v", r0, r5)
	}
	if r1 > r5*1.05 {
		t.Fatalf("coverage radius grew with quality: q0.5=%v q1=%v", r5, r1)
	}
}

func TestBucketFPSExplicitBuckets(t *testing.T) {
	c := randomCloud(120, 3)
	exact, err := FPS{}.Sample(c, 30)
	if err != nil {
		t.Fatal(err)
	}
	b := &BucketFPS{Frac: 1, Buckets: []int{0, 11, 12, 64, 120}}
	got, err := b.Sample(c, 30)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if got[i] != exact[i] {
			t.Fatalf("explicit buckets: pick %d = %d, want %d", i, got[i], exact[i])
		}
	}
	for _, bad := range [][]int{{}, {0}, {1, 120}, {0, 60}, {0, 60, 60, 120}, {0, 80, 60, 120}} {
		b := &BucketFPS{Frac: 1, Buckets: bad}
		if _, err := b.Sample(c, 5); err == nil {
			t.Fatalf("bucket offsets %v: want error", bad)
		}
	}
}

func TestBucketFPSErrors(t *testing.T) {
	c := fig8Cloud()
	b := &BucketFPS{Frac: 1}
	if _, err := b.Sample(c, 0); err == nil {
		t.Fatal("n=0: want error")
	}
	if _, err := b.Sample(c, 6); err == nil {
		t.Fatal("n>N: want error")
	}
	if _, err := b.Sample(geom.NewCloud(0, 0), 1); err == nil {
		t.Fatal("empty cloud: want error")
	}
	if _, err := b.SampleIndexes(nil, 1); err == nil {
		t.Fatal("empty points: want error")
	}
}

func TestBucketFPSDegenerateCloudStaysUnique(t *testing.T) {
	// All points coincide: exact FPS degrades to repeated index 0, but
	// BucketFPS's selected-point sentinel keeps the sample duplicate-free.
	c := geom.NewCloud(0, 0)
	c.Points = make([]geom.Point3, 40)
	b := &BucketFPS{Frac: 1}
	sel, err := b.Sample(c, 10)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, i := range sel {
		if i < 0 || i >= 40 || seen[i] {
			t.Fatalf("bad or duplicate index %d in %v", i, sel)
		}
		seen[i] = true
	}
}

func TestGridSampleTopUpHasNoDuplicates(t *testing.T) {
	// Regression: with fewer occupied voxels than n, the top-up loop used
	// to append indexes 0,1,2,… without checking membership, duplicating
	// the voxel representatives (which are themselves low indexes after
	// sorting). Two coincident clusters → 2 voxels; asking for more picks
	// than voxels must still return distinct indexes.
	c := geom.NewCloud(0, 0)
	for i := 0; i < 10; i++ {
		c.Points = append(c.Points, geom.Point3{X: 0, Y: 0, Z: 0})
	}
	for i := 0; i < 10; i++ {
		c.Points = append(c.Points, geom.Point3{X: 100, Y: 100, Z: 100})
	}
	sel, err := Grid{Size: 1}.Sample(c, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 8 {
		t.Fatalf("got %d picks, want 8", len(sel))
	}
	seen := map[int]bool{}
	for _, i := range sel {
		if i < 0 || i >= c.Len() || seen[i] {
			t.Fatalf("bad or duplicate index %d in %v", i, sel)
		}
		seen[i] = true
	}
}

func TestRandomSampleMatchesUniformityAtFullDraw(t *testing.T) {
	// Drawing all N points must return a permutation of 0..N−1 — the
	// partial Fisher–Yates overlay must not lose or duplicate indexes.
	c := randomCloud(64, 8)
	sel, err := Random{Seed: 21}.Sample(c, 64)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, i := range sel {
		if i < 0 || i >= 64 || seen[i] {
			t.Fatalf("bad or duplicate index %d", i)
		}
		seen[i] = true
	}
	if len(seen) != 64 {
		t.Fatalf("got %d distinct of 64", len(seen))
	}
}

func TestArchFactory(t *testing.T) {
	for _, tc := range []struct {
		a    Arch
		name string
	}{
		{ArchFPS, "fps"},
		{ArchBucketFPS, "bucketfps"},
		{ArchStride, "uniform"},
	} {
		s := tc.a.New(0.5)
		if s.Name() != tc.name {
			t.Fatalf("Arch %v → sampler %q, want %q", tc.a, s.Name(), tc.name)
		}
	}
	if ArchBucketFPS.String() != "bucketfps" || ArchStride.String() != "stride" || ArchFPS.String() != "fps" {
		t.Fatal("Arch.String mismatch")
	}
	b, ok := ArchBucketFPS.New(0.25).(*BucketFPS)
	if !ok || b.Frac != 0.25 {
		t.Fatalf("ArchBucketFPS.New did not thread frac: %#v", b)
	}
}
