package sample

import (
	"testing"
	"testing/quick"
)

// TestQuickUniformIndexes: for every 1 ≤ n ≤ total, stride sampling returns
// exactly n strictly increasing (hence unique) in-range positions, always
// covering position 0, and covering total-1 whenever n ≥ 2 — the endpoint
// guarantee the Morton sampler's Fig. 8(b) semantics require.
func TestQuickUniformIndexes(t *testing.T) {
	prop := func(a, b uint16) bool {
		total := 1 + int(a)%2000
		n := 1 + int(b)%total
		out := UniformIndexes(total, n)
		if len(out) != n || out[0] != 0 {
			return false
		}
		prev := -1
		for _, v := range out {
			if v <= prev || v >= total {
				return false
			}
			prev = v
		}
		return n < 2 || out[n-1] == total-1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
