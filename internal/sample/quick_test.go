package sample

import (
	"testing"
	"testing/quick"
)

// TestQuickBucketFPSQualityOneIdentity: on random clouds, BucketFPS at
// quality 1.0 is index-identical (same picks, same order) to exact FPS for
// arbitrary cloud sizes, sample counts, start indexes and bucket widths —
// the pruning and caching are pure speedups.
func TestQuickBucketFPSQualityOneIdentity(t *testing.T) {
	b := &BucketFPS{Frac: 1}
	prop := func(a, bb, cc, dd uint16) bool {
		N := 2 + int(a)%600
		n := 1 + int(bb)%N
		start := int(cc) % N
		c := randomCloud(N, int64(a)^int64(bb)<<16)
		exact, err := FPSIndexes(c.Points, n, start)
		if err != nil {
			return false
		}
		b.StartIndex = start
		b.BucketSize = int(dd) % (N + 1) // 0 → auto
		got, err := b.Sample(c, n)
		if err != nil {
			return false
		}
		for i := range exact {
			if got[i] != exact[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBucketFPSWellFormed: at every quality, the returned index set is
// exactly n long, in range, and duplicate-free.
func TestQuickBucketFPSWellFormed(t *testing.T) {
	prop := func(a, bb uint16, q uint8) bool {
		N := 1 + int(a)%500
		n := 1 + int(bb)%N
		b := &BucketFPS{Frac: float64(q%11) / 10}
		c := randomCloud(N, int64(a)*31+int64(bb))
		sel, err := b.Sample(c, n)
		if err != nil || len(sel) != n {
			return false
		}
		seen := make(map[int]bool, n)
		for _, i := range sel {
			if i < 0 || i >= N || seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBucketFPSCoverageMonotone: quality buys coverage. Adjacent-step
// monotonicity is NOT a theorem — the stride/refinement mixes at middle
// qualities are noisy, and pure stride (q=0) routinely beats the
// mostly-stride q=0.25 mix by more than any reasonable slack — so the
// property pins what does hold on every cloud: exact FPS (q=1) has the best
// coverage radius of the sweep (no lower quality beats it by more than 10%),
// and the endpoints order correctly (pure stride never beats exact FPS).
func TestQuickBucketFPSCoverageMonotone(t *testing.T) {
	prop := func(a uint16) bool {
		N := 400 + int(a)%400
		c := randomCloud(N, int64(a)+7)
		n := 32
		var rExact, rStride float64
		for _, q := range []float64{1, 0.75, 0.5, 0.25, 0} {
			b := &BucketFPS{Frac: q}
			sel, err := b.Sample(c, n)
			if err != nil {
				return false
			}
			r := coverRadius(c.Points, sel)
			switch q {
			case 1:
				rExact = r
			case 0:
				rStride = r
			}
			if r*1.10 < rExact {
				return false // a cheaper quality beat exact FPS outright
			}
		}
		return rStride >= rExact // endpoint trend: stride is never the best
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickUniformIndexes: for every 1 ≤ n ≤ total, stride sampling returns
// exactly n strictly increasing (hence unique) in-range positions, always
// covering position 0, and covering total-1 whenever n ≥ 2 — the endpoint
// guarantee the Morton sampler's Fig. 8(b) semantics require.
func TestQuickUniformIndexes(t *testing.T) {
	prop := func(a, b uint16) bool {
		total := 1 + int(a)%2000
		n := 1 + int(b)%total
		out := UniformIndexes(total, n)
		if len(out) != n || out[0] != 0 {
			return false
		}
		prev := -1
		for _, v := range out {
			if v <= prev || v >= total {
				return false
			}
			prev = v
		}
		return n < 2 || out[n-1] == total-1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
