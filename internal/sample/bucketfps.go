package sample

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// BucketFPS is farthest point sampling with distance-bound pruning and
// per-bucket distance caching, designed for Morton-structurized clouds where
// consecutive indexes are approximately spatial neighbors (FlashFPS-style
// pruning; Li et al.'s adjustable FPS for approximately-sorted data).
//
// The cloud is partitioned into contiguous buckets of the current order. For
// each bucket the sampler caches
//
//   - an axis-aligned bounding box of the bucket's points, and
//   - cmax: the maximum min-distance-to-selected-set over the bucket as of the
//     bucket's last refresh.
//
// Distances are updated lazily: each bucket remembers how many picks it has
// applied, and newer picks are replayed only when the bucket is actually
// refreshed. Because min-distances only decrease, a stale cmax is always an
// upper bound on the bucket's true max — so on every pick the sampler can
// skip any bucket whose cached cmax cannot beat the current global best
// (distance-bound pruning), and during replay it can skip any pick whose
// AABB lower bound to the bucket already exceeds cmax (the pick is provably a
// no-op there). Per pick this scans O(√N) bucket summaries plus a handful of
// refreshed buckets instead of all N points.
//
// Frac is the quality knob: with m = round(Frac·n), the sampler takes n−m
// stride seeds (UniformIndexes positions, cheap but spatially uneven) and m
// farthest-point refinement picks on top of them. Frac=1 is exact FPS —
// index-identical to FPS.Sample with the same StartIndex, pruning acting as
// a pure speedup; Frac=0 is pure stride. Note the zero value of Frac is 0
// (pure stride); callers wanting exact behavior must set Frac explicitly.
//
// The one intentional divergence from FPS.Sample at Frac=1: BucketFPS marks
// selected points with a −1 distance sentinel so returned indexes are always
// unique, whereas fpsFrom re-picks index 0 once every remaining point
// coincides with the selected set (fully degenerate clouds). On any cloud
// where exact FPS itself does not duplicate, the outputs are bit-identical.
//
// BucketFPS keeps reusable scratch between calls; it is not safe for
// concurrent use. The zero value (beyond Frac) is ready to use.
type BucketFPS struct {
	// Frac in [0,1] is the fraction of the n samples chosen by
	// farthest-point refinement; the remainder are stride seeds. Values
	// outside [0,1] are clamped.
	Frac float64
	// StartIndex is the first pick when Frac is 1 (no stride seeds),
	// mirroring FPS.StartIndex. Out-of-range values fall back to 0.
	StartIndex int
	// BucketSize is the number of consecutive points per bucket. 0 means
	// ≈√N clamped to [32, 4096].
	BucketSize int
	// Buckets optionally gives explicit bucket offsets (0 = Buckets[0] <
	// … < Buckets[M] = N), e.g. runs of equal Morton prefixes from
	// core.Structurized. When set it overrides BucketSize.
	Buckets []int

	s bucketScratch
}

// bucketScratch is the reusable per-call state: grown in SampleInto, written
// by the allocation-free kernel.
type bucketScratch struct {
	dist    []float64   // min sq. distance to selected set; −1 marks selected
	off     []int       // bucket offsets, len M+1
	applied []int       // picks already replayed into each bucket's dist
	boxes   []geom.AABB // per-bucket bounds
	cmax    []float64   // per-bucket max dist as of last refresh (upper bound)
}

// Name implements Sampler.
func (*BucketFPS) Name() string { return "bucketfps" }

// Sample implements Sampler.
func (b *BucketFPS) Sample(c *geom.Cloud, n int) ([]int, error) {
	if err := checkArgs(c, n); err != nil {
		return nil, err
	}
	return b.SampleInto(c.Points, n, nil)
}

// SampleIndexes runs bucketed FPS directly over a point slice, mirroring
// FPSIndexes for callers that hold bare slices rather than clouds.
func (b *BucketFPS) SampleIndexes(pts []geom.Point3, n int) ([]int, error) {
	return b.SampleInto(pts, n, nil)
}

// SampleInto is SampleIndexes reusing out's backing array when it has
// capacity for n indexes. It returns the (possibly re-allocated) slice, the
// way append does; steady-state callers pass the previous result back in and
// reach zero allocations per call.
func (b *BucketFPS) SampleInto(pts []geom.Point3, n int, out []int) ([]int, error) {
	N := len(pts)
	if N == 0 {
		return nil, ErrEmptyCloud
	}
	if n < 1 || n > N {
		return nil, fmt.Errorf("%w: n=%d with %d points", ErrBadCount, n, N)
	}
	frac := b.Frac
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	m := int(frac*float64(n) + 0.5)
	if cap(out) < n {
		out = make([]int, n)
	}
	out = out[:n]
	if m == 0 {
		// Pure stride: no distances, no bucket metadata.
		writeUniformIndexes(out, N)
		return out, nil
	}
	if err := b.prepare(N); err != nil {
		return nil, err
	}
	b.kernel(pts, out, n-m)
	return out, nil
}

// prepare sizes the scratch for an N-point cloud and lays out the bucket
// offsets. All allocation happens here, outside the hot path.
func (b *BucketFPS) prepare(N int) error {
	s := &b.s
	if cap(s.dist) < N {
		s.dist = make([]float64, N)
	}
	s.dist = s.dist[:N]
	if b.Buckets != nil {
		if len(b.Buckets) < 2 || b.Buckets[0] != 0 || b.Buckets[len(b.Buckets)-1] != N {
			return fmt.Errorf("sample: bucket offsets must run 0..%d, got %d offsets", N, len(b.Buckets))
		}
		for j := 1; j < len(b.Buckets); j++ {
			if b.Buckets[j] <= b.Buckets[j-1] {
				return fmt.Errorf("sample: bucket offsets not strictly increasing at %d", j)
			}
		}
		s.off = append(s.off[:0], b.Buckets...)
	} else {
		B := b.BucketSize
		if B <= 0 {
			B = int(math.Round(math.Sqrt(float64(N))))
			if B < 32 {
				B = 32
			}
			if B > 4096 {
				B = 4096
			}
		}
		if B > N {
			B = N
		}
		s.off = s.off[:0]
		for o := 0; o < N; o += B {
			s.off = append(s.off, o)
		}
		s.off = append(s.off, N)
	}
	M := len(s.off) - 1
	if cap(s.applied) < M {
		s.applied = make([]int, M)
		s.boxes = make([]geom.AABB, M)
		s.cmax = make([]float64, M)
	}
	s.applied = s.applied[:M]
	s.boxes = s.boxes[:M]
	s.cmax = s.cmax[:M]
	return nil
}

// kernel fills out with seeds stride picks followed by len(out)−seeds
// farthest-point refinement picks. The scratch must already be prepared for
// len(pts) points.
//
//edgepc:hotpath
func (b *BucketFPS) kernel(pts []geom.Point3, out []int, seeds int) {
	s := &b.s
	n := len(out)
	N := len(pts)
	cnt := 0
	if seeds > 0 {
		// Stride seeds first, then an approximate distance init: point i's
		// nearest seed is positionally near j0 = i·(seeds−1)/(N−1) in the
		// (approximately sorted) Morton order, so a ±2-seed window around
		// j0 gives min-distance in O(N) instead of O(N·seeds). Exact for
		// seeds ≤ 3; beyond that a missed closer seed leaves dist an
		// over-estimate, nudging refinement toward that region — an
		// approximation of the seed set's coverage, never an invalid
		// distance state (replayed picks still apply exactly).
		writeUniformIndexes(out[:seeds], N)
		for i := 0; i < N; i++ {
			j0 := 0
			if N > 1 {
				j0 = i * (seeds - 1) / (N - 1)
			}
			lo, hi := j0-2, j0+2
			if lo < 0 {
				lo = 0
			}
			if hi > seeds-1 {
				hi = seeds - 1
			}
			best := math.Inf(1)
			for j := lo; j <= hi; j++ {
				if d := pts[i].DistSq(pts[out[j]]); d < best {
					best = d
				}
			}
			s.dist[i] = best
		}
		for j := 0; j < seeds; j++ {
			s.dist[out[j]] = -1
		}
		cnt = seeds
	} else {
		start := b.StartIndex
		if start < 0 || start >= N {
			start = 0
		}
		out[0] = start
		p := pts[start]
		for i := 0; i < N; i++ {
			s.dist[i] = pts[i].DistSq(p)
		}
		s.dist[start] = -1
		cnt = 1
	}
	if cnt >= n {
		return
	}
	M := len(s.off) - 1
	for j := 0; j < M; j++ {
		lo, hi := s.off[j], s.off[j+1]
		box := geom.EmptyAABB()
		m := s.dist[lo]
		for i := lo; i < hi; i++ {
			box.Extend(pts[i])
			if s.dist[i] > m {
				m = s.dist[i]
			}
		}
		s.boxes[j] = box
		s.cmax[j] = m
		s.applied[j] = cnt
	}
	for cnt < n {
		// Phase A: refresh the bucket with the largest cached bound; its
		// exact max seeds the global best and prunes most other buckets.
		jA := 0
		for j := 1; j < M; j++ {
			if s.cmax[j] > s.cmax[jA] {
				jA = j
			}
		}
		bestD, bestIdx := b.refresh(pts, out[:cnt], jA)
		// Phase B: every other bucket is either pruned by its cached upper
		// bound or refreshed and compared. Ascending bucket order plus the
		// first-argmax tie rules below reproduce exact FPS's "first index
		// with maximal distance" pick. A cached max exactly equal to bestD
		// can only matter if the bucket could win the index tiebreak, i.e.
		// if it starts before bestIdx.
		for j := 0; j < M; j++ {
			if j == jA {
				continue
			}
			cm := s.cmax[j]
			if cm < bestD || (!(cm > bestD) && s.off[j] > bestIdx) {
				continue
			}
			d, i := b.refresh(pts, out[:cnt], j)
			if d > bestD || (!(d < bestD) && i < bestIdx) {
				bestD, bestIdx = d, i
			}
		}
		out[cnt] = bestIdx
		cnt++
		s.dist[bestIdx] = -1
		// The winning bucket's cmax is now an over-estimate (its max just
		// became −1); that is safe — cmax only needs to stay an upper
		// bound — and Phase A will refresh it on the next pick.
	}
}

// refresh brings bucket j's distances up to date — replaying picks the bucket
// has not yet applied, skipping any pick whose AABB lower bound to the bucket
// is at least the cached max (such a pick cannot lower any distance below a
// value that matters) — and rescans for the bucket's max and first argmax.
//
//edgepc:hotpath
func (b *BucketFPS) refresh(pts []geom.Point3, picks []int, j int) (float64, int) {
	s := &b.s
	lo, hi := s.off[j], s.off[j+1]
	// cm0 is the cached bound from before this replay: every dist in the
	// bucket is ≤ cm0, so a pick at AABB-distance ≥ cm0 lowers nothing.
	cm0 := s.cmax[j]
	for k := s.applied[j]; k < len(picks); k++ {
		p := pts[picks[k]]
		if aabbDistSq(p, s.boxes[j]) >= cm0 {
			continue
		}
		for i := lo; i < hi; i++ {
			if d := pts[i].DistSq(p); d < s.dist[i] {
				s.dist[i] = d
			}
		}
	}
	s.applied[j] = len(picks)
	m, mi := s.dist[lo], lo
	for i := lo + 1; i < hi; i++ {
		if s.dist[i] > m {
			m, mi = s.dist[i], i
		}
	}
	s.cmax[j] = m
	return m, mi
}

// aabbDistSq is the squared distance from p to the nearest point of box b:
// 0 when p is inside, else the sum of squared per-axis overshoots.
func aabbDistSq(p geom.Point3, b geom.AABB) float64 {
	var s float64
	if d := b.Min.X - p.X; d > 0 {
		s += d * d
	} else if d := p.X - b.Max.X; d > 0 {
		s += d * d
	}
	if d := b.Min.Y - p.Y; d > 0 {
		s += d * d
	} else if d := p.Y - b.Max.Y; d > 0 {
		s += d * d
	}
	if d := b.Min.Z - p.Z; d > 0 {
		s += d * d
	} else if d := p.Z - b.Max.Z; d > 0 {
		s += d * d
	}
	return s
}
