package dataset

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestClassificationDataset(t *testing.T) {
	d := NewClassification(20, 1)
	if d.Len() != 20 || d.Classes() != int(geom.NumShapeKinds) {
		t.Fatalf("len=%d classes=%d", d.Len(), d.Classes())
	}
	s, err := d.At(3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cloud.Len() != 1024 {
		t.Fatalf("points = %d, want 1024 (Table 1 ModelNet)", s.Cloud.Len())
	}
	if s.Label != 3%int32(geom.NumShapeKinds) {
		t.Fatalf("label = %d", s.Label)
	}
	// Deterministic.
	s2, _ := d.At(3)
	for i := range s.Cloud.Points {
		if s.Cloud.Points[i] != s2.Cloud.Points[i] {
			t.Fatal("At not deterministic")
		}
	}
	if _, err := d.At(20); err == nil {
		t.Fatal("out of range: want error")
	}
	if _, err := d.At(-1); err == nil {
		t.Fatal("negative: want error")
	}
}

func TestClassificationCoversAllClasses(t *testing.T) {
	d := NewClassification(int(geom.NumShapeKinds)*2, 2)
	seen := map[int32]bool{}
	for i := 0; i < d.Len(); i++ {
		s, err := d.At(i)
		if err != nil {
			t.Fatal(err)
		}
		seen[s.Label] = true
	}
	if len(seen) != int(geom.NumShapeKinds) {
		t.Fatalf("covered %d of %d classes", len(seen), geom.NumShapeKinds)
	}
}

func TestPartSegmentationDataset(t *testing.T) {
	d := NewPartSegmentation(6, 3)
	if d.Classes() != int(NumPartClasses) {
		t.Fatalf("classes = %d", d.Classes())
	}
	for i := 0; i < d.Len(); i++ {
		s, err := d.At(i)
		if err != nil {
			t.Fatal(err)
		}
		if s.Label != -1 {
			t.Fatal("segmentation sample should have cloud label -1")
		}
		if s.Cloud.Len() != 2048 {
			t.Fatalf("points = %d, want 2048 (Table 1 ShapeNet)", s.Cloud.Len())
		}
		if len(s.Cloud.Labels) != s.Cloud.Len() {
			t.Fatal("per-point labels missing")
		}
		seen := map[int32]bool{}
		for _, l := range s.Cloud.Labels {
			if l < 0 || l >= NumPartClasses {
				t.Fatalf("label %d out of range", l)
			}
			seen[l] = true
		}
		if len(seen) < 2 {
			t.Fatalf("item %d has only %d parts", i, len(seen))
		}
	}
}

func TestSceneSegmentationDataset(t *testing.T) {
	for _, style := range []string{"s3dis", "scannet"} {
		points := 4096
		if style == "scannet" {
			points = 8192
		}
		d := NewSceneSegmentation(2, points, style, 4)
		s, err := d.At(1)
		if err != nil {
			t.Fatal(err)
		}
		if s.Cloud.Len() < points {
			t.Fatalf("%s: %d points, want ≥ %d", style, s.Cloud.Len(), points)
		}
		if !strings.Contains(d.Name(), style) {
			t.Fatalf("name %q", d.Name())
		}
	}
}

func TestSplit(t *testing.T) {
	train, test := Split(10, 0.2)
	if len(train)+len(test) != 10 {
		t.Fatalf("split sizes %d+%d", len(train), len(test))
	}
	if len(test) != 2 {
		t.Fatalf("test size %d, want 2", len(test))
	}
	// No overlap.
	seen := map[int]bool{}
	for _, i := range append(train, test...) {
		if seen[i] {
			t.Fatalf("index %d duplicated", i)
		}
		seen[i] = true
	}
	// Deterministic.
	train2, test2 := Split(10, 0.2)
	for i := range test {
		if test[i] != test2[i] {
			t.Fatal("split not deterministic")
		}
	}
	_ = train2
	// Zero test fraction.
	train, test = Split(5, 0)
	if len(train) != 5 || test != nil {
		t.Fatal("zero fraction wrong")
	}
}

func TestSplitCoversClassesWithRoundRobinLabels(t *testing.T) {
	// Regression: the datasets assign labels round-robin (label = i mod C);
	// a strided split whose stride divides C would put one class in the
	// test set. The shuffled split must cover (nearly) all classes.
	const items, classes = 100, 5
	_, test := Split(items, 0.2)
	seen := map[int]bool{}
	for _, i := range test {
		seen[i%classes] = true
	}
	if len(seen) < classes-1 {
		t.Fatalf("test split covers only %d of %d classes", len(seen), classes)
	}
}

func TestOFFRoundtrip(t *testing.T) {
	c := geom.GenerateShape(geom.ShapeSphere, geom.ShapeOptions{N: 30, Seed: 1})
	var buf bytes.Buffer
	if err := WriteOFF(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := ReadOFF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 30 {
		t.Fatalf("roundtrip %d points", back.Len())
	}
	for i := range c.Points {
		if c.Points[i].Dist(back.Points[i]) > 1e-9 {
			t.Fatalf("point %d drifted", i)
		}
	}
}

func TestOFFCompactHeader(t *testing.T) {
	in := "OFF 2 0 0\n1 2 3\n4 5 6\n"
	c, err := ReadOFF(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 || c.Points[1].Z != 6 {
		t.Fatalf("compact OFF parsed wrong: %v", c.Points)
	}
}

func TestOFFWithComments(t *testing.T) {
	in := "# a comment\nOFF\n# counts\n1 0 0\n7 8 9\n"
	c, err := ReadOFF(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if c.Points[0].X != 7 {
		t.Fatal("comment handling broken")
	}
}

func TestOFFErrors(t *testing.T) {
	bad := []string{
		"",
		"NOTOFF\n1 0 0\n1 2 3\n",
		"OFF\n2 0 0\n1 2 3\n", // truncated vertex list
		"OFF\nx 0 0\n",        // bad count
		"OFF\n1 0 0\n1 2\n",   // short vertex
		"OFF\n1 0 0\na b c\n", // non-numeric
	}
	for _, in := range bad {
		if _, err := ReadOFF(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q: want error", in)
		}
	}
}

func TestPLYRoundtrip(t *testing.T) {
	c := geom.GenerateShape(geom.ShapeTorus, geom.ShapeOptions{N: 25, Seed: 2})
	var buf bytes.Buffer
	if err := WritePLY(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPLY(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 25 {
		t.Fatalf("roundtrip %d points", back.Len())
	}
	for i := range c.Points {
		if c.Points[i].Dist(back.Points[i]) > 1e-9 {
			t.Fatalf("point %d drifted", i)
		}
	}
}

func TestPLYExtraPropertiesAndElements(t *testing.T) {
	in := `ply
format ascii 1.0
comment made by hand
element vertex 2
property float x
property float y
property float z
property uchar red
element face 1
property list uchar int vertex_indices
end_header
1 2 3 255
4 5 6 0
3 0 1 0
`
	c, err := ReadPLY(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 || c.Points[1].Y != 5 {
		t.Fatalf("parsed %v", c.Points)
	}
}

func TestPLYSkipsNonVertexElementsBeforeVertex(t *testing.T) {
	in := `ply
format ascii 1.0
element other 2
property float a
element vertex 1
property float x
property float y
property float z
end_header
9
9
1 2 3
`
	c, err := ReadPLY(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 || c.Points[0].X != 1 {
		t.Fatalf("parsed %v", c.Points)
	}
}

func TestPLYErrors(t *testing.T) {
	bad := []string{
		"",
		"notply\n",
		"ply\nformat binary_little_endian 1.0\nend_header\n",
		"ply\nformat ascii 1.0\nelement vertex 1\nproperty float x\nproperty float y\nend_header\n1 2\n",                     // no z
		"ply\nformat ascii 1.0\nend_header\n",                                                                                // no vertex element
		"ply\nformat ascii 1.0\nelement vertex 2\nproperty float x\nproperty float y\nproperty float z\nend_header\n1 2 3\n", // truncated
	}
	for _, in := range bad {
		if _, err := ReadPLY(strings.NewReader(in)); err == nil {
			t.Fatalf("input %.40q: want error", in)
		}
	}
}
