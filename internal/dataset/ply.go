package dataset

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"repro/internal/geom"
)

// ReadPLY parses a PLY file (the format of the Stanford scans, including the
// Bunny) into a point cloud. ASCII and binary_little_endian payloads are
// supported; only the vertex element's x/y/z properties are read, extra
// per-vertex properties and other elements are skipped.
func ReadPLY(r io.Reader) (*geom.Cloud, error) {
	br := bufio.NewReader(r)
	h, err := parsePLYHeader(br)
	if err != nil {
		return nil, err
	}
	switch h.format {
	case "ascii":
		return readASCIIPLY(br, h)
	case "binary_little_endian":
		return readBinaryPLY(br, h)
	default:
		return nil, fmt.Errorf("dataset: PLY: unsupported format %q", h.format)
	}
}

// readASCIIPLY reads the vertex element of an ASCII payload.
func readASCIIPLY(br *bufio.Reader, h *plyHeader) (*geom.Cloud, error) {
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	for _, el := range h.elements {
		if el.name != "vertex" {
			for i := 0; i < el.count; i++ {
				if _, err := nextFields(sc); err != nil {
					return nil, fmt.Errorf("dataset: PLY: truncated %s data: %w", el.name, err)
				}
			}
			continue
		}
		xi, yi, zi := -1, -1, -1
		for i, p := range el.props {
			if p.isList {
				return nil, errors.New("dataset: PLY: list property on vertices is unsupported")
			}
			switch p.name {
			case "x":
				xi = i
			case "y":
				yi = i
			case "z":
				zi = i
			}
		}
		if xi < 0 || yi < 0 || zi < 0 {
			return nil, errors.New("dataset: PLY: vertex element lacks x/y/z properties")
		}
		cloud := geom.NewCloud(0, 0)
		cloud.Points = make([]geom.Point3, 0, clampPrealloc(el.count))
		for i := 0; i < el.count; i++ {
			f, err := nextFields(sc)
			if err != nil {
				return nil, fmt.Errorf("dataset: PLY: vertex %d: %w", i, err)
			}
			if len(f) < len(el.props) {
				return nil, fmt.Errorf("dataset: PLY: vertex %d has %d of %d fields", i, len(f), len(el.props))
			}
			p, err := parsePoint(f[xi], f[yi], f[zi])
			if err != nil {
				return nil, fmt.Errorf("dataset: PLY: vertex %d: %w", i, err)
			}
			cloud.Points = append(cloud.Points, p)
		}
		return cloud, nil
	}
	return nil, errors.New("dataset: PLY: no vertex element")
}

// WritePLY writes the cloud as an ASCII PLY file with x/y/z vertex
// properties.
func WritePLY(w io.Writer, c *geom.Cloud) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "ply\nformat ascii 1.0\nelement vertex %d\n", c.Len())
	fmt.Fprint(bw, "property float x\nproperty float y\nproperty float z\nend_header\n")
	for _, p := range c.Points {
		fmt.Fprintf(bw, "%g %g %g\n", p.X, p.Y, p.Z)
	}
	return bw.Flush()
}
