// Package dataset provides the workload data for the experiments: synthetic
// stand-ins for the paper's four datasets (ModelNet40 → shape classification,
// ShapeNet → part segmentation, S3DIS/ScanNet → indoor-scene semantic
// segmentation) plus ASCII OFF and PLY loaders for real point-cloud files.
//
// Every synthetic dataset is deterministic: item i of a dataset with seed s
// is synthesized from seed s+i, so train/test splits and repeated runs are
// reproducible without storing any data.
package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/geom"
)

// Sample is one dataset item: a cloud and, for classification tasks, a
// cloud-level label (−1 for segmentation tasks, whose labels live per point
// in Cloud.Labels).
type Sample struct {
	Cloud *geom.Cloud
	Label int32
}

// Dataset is a deterministic indexed collection of samples.
type Dataset interface {
	Len() int
	At(i int) (*Sample, error)
	Classes() int
	Name() string
}

// Split returns deterministic train/test index sets for an n-item dataset
// with the given test fraction. Items are assigned via a deterministic
// shuffle rather than a fixed stride: the synthetic datasets lay classes out
// round-robin, and a stride that divides the class period would silently
// put a single class in the test set.
func Split(n int, testFrac float64) (train, test []int) {
	if testFrac < 0 {
		testFrac = 0
	}
	if testFrac > 1 {
		testFrac = 1
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	rng := rand.New(rand.NewSource(0x5eed))
	rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	testN := int(float64(n)*testFrac + 0.5)
	test = append(test, order[:testN]...)
	train = append(train, order[testN:]...)
	sort.Ints(test)
	sort.Ints(train)
	if len(test) == 0 {
		test = nil
	}
	return train, test
}

func checkIndex(i, n int, name string) error {
	if i < 0 || i >= n {
		return fmt.Errorf("dataset %s: index %d out of %d", name, i, n)
	}
	return nil
}
