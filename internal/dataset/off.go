package dataset

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/geom"
)

// ReadOFF parses the vertex set of an ASCII OFF file (the format ModelNet
// ships in) into a point cloud. Faces are ignored — point-cloud networks
// consume vertices only. Both the strict two-line header ("OFF\n nv nf ne")
// and the common compact variant ("OFF nv nf ne" on one line) are accepted.
func ReadOFF(r io.Reader) (*geom.Cloud, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	fields, err := nextFields(sc)
	if err != nil {
		return nil, fmt.Errorf("dataset: OFF: missing header: %w", err)
	}
	if !strings.HasPrefix(fields[0], "OFF") {
		return nil, errors.New("dataset: OFF: missing OFF magic")
	}
	var counts []string
	if len(fields) >= 4 {
		// Compact header: "OFF nv nf ne".
		counts = fields[1:4]
	} else {
		counts, err = nextFields(sc)
		if err != nil || len(counts) < 3 {
			return nil, errors.New("dataset: OFF: missing count line")
		}
	}
	nv, err := strconv.Atoi(counts[0])
	if err != nil || nv < 0 {
		return nil, fmt.Errorf("dataset: OFF: bad vertex count %q", counts[0])
	}
	// Grow incrementally rather than trusting the declared count: a forged
	// header must not allocate gigabytes before the (absent) data fails to
	// parse.
	cloud := geom.NewCloud(0, 0)
	cloud.Points = make([]geom.Point3, 0, clampPrealloc(nv))
	for i := 0; i < nv; i++ {
		f, err := nextFields(sc)
		if err != nil {
			return nil, fmt.Errorf("dataset: OFF: vertex %d: %w", i, err)
		}
		if len(f) < 3 {
			return nil, fmt.Errorf("dataset: OFF: vertex %d: %d fields", i, len(f))
		}
		p, err := parsePoint(f[0], f[1], f[2])
		if err != nil {
			return nil, fmt.Errorf("dataset: OFF: vertex %d: %w", i, err)
		}
		cloud.Points = append(cloud.Points, p)
	}
	return cloud, nil
}

// clampPrealloc bounds header-declared counts to a sane preallocation; the
// slices still grow to any real size via append.
func clampPrealloc(n int) int {
	const limit = 1 << 16
	if n > limit {
		return limit
	}
	if n < 0 {
		return 0
	}
	return n
}

// nextFields returns the fields of the next non-empty, non-comment line.
func nextFields(sc *bufio.Scanner) ([]string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return strings.Fields(line), nil
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, io.ErrUnexpectedEOF
}

func parsePoint(xs, ys, zs string) (geom.Point3, error) {
	x, err := strconv.ParseFloat(xs, 64)
	if err != nil {
		return geom.Point3{}, err
	}
	y, err := strconv.ParseFloat(ys, 64)
	if err != nil {
		return geom.Point3{}, err
	}
	z, err := strconv.ParseFloat(zs, 64)
	if err != nil {
		return geom.Point3{}, err
	}
	return geom.Point3{X: x, Y: y, Z: z}, nil
}

// WriteOFF writes the cloud's points as an ASCII OFF file with no faces.
func WriteOFF(w io.Writer, c *geom.Cloud) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "OFF\n%d 0 0\n", c.Len())
	for _, p := range c.Points {
		fmt.Fprintf(bw, "%g %g %g\n", p.X, p.Y, p.Z)
	}
	return bw.Flush()
}
