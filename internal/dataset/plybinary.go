package dataset

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/geom"
)

// Binary PLY support: real scan repositories (including the Stanford set the
// paper samples for Fig. 5) ship binary_little_endian PLY. The ASCII reader
// lives in ply.go; this file parses the same header grammar and then reads
// fixed-width records.

type plyType struct {
	size  int
	float bool
}

var plyTypes = map[string]plyType{
	"char": {1, false}, "int8": {1, false},
	"uchar": {1, false}, "uint8": {1, false},
	"short": {2, false}, "int16": {2, false},
	"ushort": {2, false}, "uint16": {2, false},
	"int": {4, false}, "int32": {4, false},
	"uint": {4, false}, "uint32": {4, false},
	"float": {4, true}, "float32": {4, true},
	"double": {8, true}, "float64": {8, true},
}

type plyProperty struct {
	name   string
	typ    plyType
	isList bool
}

type plyElement struct {
	name  string
	count int
	props []plyProperty
}

// plyHeader holds the parsed header of any PLY flavor.
type plyHeader struct {
	format   string // "ascii", "binary_little_endian", "binary_big_endian"
	elements []plyElement
}

// parsePLYHeader consumes the header through end_header, reading byte by
// byte so the binary payload position stays exact.
func parsePLYHeader(r *bufio.Reader) (*plyHeader, error) {
	readLine := func() (string, error) {
		line, err := r.ReadString('\n')
		if err != nil {
			return "", err
		}
		return strings.TrimRight(line, "\r\n"), nil
	}
	first, err := readLine()
	if err != nil || strings.TrimSpace(first) != "ply" {
		return nil, errors.New("dataset: PLY: missing ply magic")
	}
	h := &plyHeader{}
	for {
		line, err := readLine()
		if err != nil {
			return nil, fmt.Errorf("dataset: PLY: truncated header: %w", err)
		}
		f := strings.Fields(line)
		if len(f) == 0 {
			continue
		}
		switch f[0] {
		case "format":
			if len(f) < 2 {
				return nil, errors.New("dataset: PLY: malformed format line")
			}
			h.format = f[1]
		case "comment", "obj_info":
		case "element":
			if len(f) < 3 {
				return nil, errors.New("dataset: PLY: malformed element line")
			}
			n, err := strconv.Atoi(f[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("dataset: PLY: bad element count %q", f[2])
			}
			h.elements = append(h.elements, plyElement{name: f[1], count: n})
		case "property":
			if len(h.elements) == 0 {
				return nil, errors.New("dataset: PLY: property before element")
			}
			el := &h.elements[len(h.elements)-1]
			if len(f) >= 2 && f[1] == "list" {
				if len(f) < 5 {
					return nil, errors.New("dataset: PLY: malformed list property")
				}
				el.props = append(el.props, plyProperty{name: f[len(f)-1], isList: true})
				continue
			}
			if len(f) < 3 {
				return nil, errors.New("dataset: PLY: malformed property line")
			}
			typ, ok := plyTypes[f[1]]
			if !ok {
				return nil, fmt.Errorf("dataset: PLY: unknown property type %q", f[1])
			}
			el.props = append(el.props, plyProperty{name: f[len(f)-1], typ: typ})
		case "end_header":
			if h.format == "" {
				return nil, errors.New("dataset: PLY: missing format line")
			}
			return h, nil
		default:
			return nil, fmt.Errorf("dataset: PLY: unknown header keyword %q", f[0])
		}
	}
}

// readBinaryPLY reads the vertex element of a binary_little_endian payload.
func readBinaryPLY(r *bufio.Reader, h *plyHeader) (*geom.Cloud, error) {
	for _, el := range h.elements {
		if el.name != "vertex" {
			// Skip a non-vertex element preceding the vertices. Fixed-width
			// properties can be skipped exactly; list properties cannot
			// without reading them, which we only do after the vertices.
			stride := 0
			for _, p := range el.props {
				if p.isList {
					return nil, fmt.Errorf("dataset: PLY: list property in element %q before vertices is unsupported", el.name)
				}
				stride += p.typ.size
			}
			if _, err := io.CopyN(io.Discard, r, int64(stride)*int64(el.count)); err != nil {
				return nil, fmt.Errorf("dataset: PLY: skipping %s: %w", el.name, err)
			}
			continue
		}
		xi, yi, zi := -1, -1, -1
		stride := 0
		offsets := make([]int, len(el.props))
		for i, p := range el.props {
			if p.isList {
				return nil, errors.New("dataset: PLY: list property on vertices is unsupported")
			}
			offsets[i] = stride
			stride += p.typ.size
			switch p.name {
			case "x":
				xi = i
			case "y":
				yi = i
			case "z":
				zi = i
			}
		}
		if xi < 0 || yi < 0 || zi < 0 {
			return nil, errors.New("dataset: PLY: vertex element lacks x/y/z properties")
		}
		cloud := geom.NewCloud(0, 0)
		cloud.Points = make([]geom.Point3, 0, clampPrealloc(el.count))
		record := make([]byte, stride)
		for i := 0; i < el.count; i++ {
			if _, err := io.ReadFull(r, record); err != nil {
				return nil, fmt.Errorf("dataset: PLY: vertex %d: %w", i, err)
			}
			x, err := readScalar(record[offsets[xi]:], el.props[xi].typ)
			if err != nil {
				return nil, err
			}
			y, err := readScalar(record[offsets[yi]:], el.props[yi].typ)
			if err != nil {
				return nil, err
			}
			z, err := readScalar(record[offsets[zi]:], el.props[zi].typ)
			if err != nil {
				return nil, err
			}
			cloud.Points = append(cloud.Points, geom.Point3{X: x, Y: y, Z: z})
		}
		return cloud, nil
	}
	return nil, errors.New("dataset: PLY: no vertex element")
}

func readScalar(b []byte, t plyType) (float64, error) {
	if !t.float {
		return 0, errors.New("dataset: PLY: integer coordinates are unsupported")
	}
	switch t.size {
	case 4:
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(b))), nil
	case 8:
		return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
	default:
		return 0, fmt.Errorf("dataset: PLY: bad float width %d", t.size)
	}
}

// WritePLYBinary writes the cloud as binary_little_endian PLY with float32
// x/y/z vertex properties.
func WritePLYBinary(w io.Writer, c *geom.Cloud) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "ply\nformat binary_little_endian 1.0\nelement vertex %d\n", c.Len())
	fmt.Fprint(bw, "property float x\nproperty float y\nproperty float z\nend_header\n")
	var buf [12]byte
	for _, p := range c.Points {
		binary.LittleEndian.PutUint32(buf[0:], math.Float32bits(float32(p.X)))
		binary.LittleEndian.PutUint32(buf[4:], math.Float32bits(float32(p.Y)))
		binary.LittleEndian.PutUint32(buf[8:], math.Float32bits(float32(p.Z)))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
