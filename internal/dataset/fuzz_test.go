package dataset

import (
	"bytes"
	"testing"

	"repro/internal/geom"
)

// Fuzz targets: the file-format decoders take attacker-controlled bytes and
// must fail cleanly (error, never panic, never runaway allocation driven by
// a declared-but-absent element count).

func FuzzReadPLY(f *testing.F) {
	c := geom.GenerateShape(geom.ShapeSphere, geom.ShapeOptions{N: 5, Seed: 1})
	var ascii, bin bytes.Buffer
	if err := WritePLY(&ascii, c); err != nil {
		f.Fatal(err)
	}
	if err := WritePLYBinary(&bin, c); err != nil {
		f.Fatal(err)
	}
	f.Add(ascii.Bytes())
	f.Add(bin.Bytes())
	f.Add([]byte("ply\nformat ascii 1.0\nelement vertex 1000000000\nproperty float x\nproperty float y\nproperty float z\nend_header\n"))
	f.Add([]byte("ply\nformat binary_little_endian 1.0\nelement vertex 3\nproperty double x\nproperty float y\nproperty float z\nend_header\nxx"))
	f.Fuzz(func(t *testing.T, data []byte) {
		cloud, err := ReadPLY(bytes.NewReader(data))
		if err == nil && cloud == nil {
			t.Fatal("nil cloud without error")
		}
	})
}

func FuzzReadOFF(f *testing.F) {
	c := geom.GenerateShape(geom.ShapeBox, geom.ShapeOptions{N: 4, Seed: 2})
	var buf bytes.Buffer
	if err := WriteOFF(&buf, c); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("OFF 2 0 0\n1 2 3\n"))
	f.Add([]byte("OFF\n99999999 0 0\n1 2 3\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		cloud, err := ReadOFF(bytes.NewReader(data))
		if err == nil && cloud == nil {
			t.Fatal("nil cloud without error")
		}
	})
}
