package dataset

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"repro/internal/geom"
)

func TestBinaryPLYRoundtrip(t *testing.T) {
	c := geom.GenerateShape(geom.ShapeBlob, geom.ShapeOptions{N: 200, Seed: 4})
	var buf bytes.Buffer
	if err := WritePLYBinary(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPLY(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 200 {
		t.Fatalf("roundtrip %d points", back.Len())
	}
	for i := range c.Points {
		// float32 quantization on write.
		if c.Points[i].Dist(back.Points[i]) > 1e-5 {
			t.Fatalf("point %d drifted: %v vs %v", i, c.Points[i], back.Points[i])
		}
	}
}

// buildBinaryPLY constructs a binary PLY with extra vertex properties and a
// preceding fixed-width element, mimicking real scan exports.
func buildBinaryPLY(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	fmt.Fprint(&buf, "ply\nformat binary_little_endian 1.0\n")
	fmt.Fprint(&buf, "comment scanner export\n")
	fmt.Fprint(&buf, "element sensor 2\nproperty float temperature\n")
	fmt.Fprint(&buf, "element vertex 2\n")
	fmt.Fprint(&buf, "property float x\nproperty float y\nproperty double z\nproperty uchar intensity\n")
	fmt.Fprint(&buf, "element face 1\nproperty list uchar int vertex_indices\n")
	fmt.Fprint(&buf, "end_header\n")
	// sensor element: two float32 temperatures.
	for _, v := range []float32{20.5, 21.5} {
		binary.Write(&buf, binary.LittleEndian, v)
	}
	// vertices: x float32, y float32, z float64, intensity uchar.
	writeVertex := func(x, y float32, z float64, in byte) {
		binary.Write(&buf, binary.LittleEndian, x)
		binary.Write(&buf, binary.LittleEndian, y)
		binary.Write(&buf, binary.LittleEndian, z)
		buf.WriteByte(in)
	}
	writeVertex(1, 2, 3, 200)
	writeVertex(-4, 5.5, -6.25, 10)
	// trailing face data (ignored — reader stops after vertices).
	buf.WriteByte(3)
	binary.Write(&buf, binary.LittleEndian, [3]int32{0, 1, 0})
	return buf.Bytes()
}

func TestBinaryPLYMixedProperties(t *testing.T) {
	c, err := ReadPLY(bytes.NewReader(buildBinaryPLY(t)))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("%d points", c.Len())
	}
	want := []geom.Point3{{X: 1, Y: 2, Z: 3}, {X: -4, Y: 5.5, Z: -6.25}}
	for i := range want {
		if c.Points[i].Dist(want[i]) > 1e-6 {
			t.Fatalf("point %d = %v, want %v", i, c.Points[i], want[i])
		}
	}
}

func TestBinaryPLYErrors(t *testing.T) {
	full := buildBinaryPLY(t)
	if _, err := ReadPLY(bytes.NewReader(full[:len(full)-30])); err == nil {
		t.Fatal("truncated payload: want error")
	}
	// Big-endian unsupported.
	be := bytes.Replace(full, []byte("binary_little_endian"), []byte("binary_big_endian"), 1)
	if _, err := ReadPLY(bytes.NewReader(be)); err == nil {
		t.Fatal("big endian: want error")
	}
	// List property before vertices cannot be skipped.
	var buf bytes.Buffer
	fmt.Fprint(&buf, "ply\nformat binary_little_endian 1.0\n")
	fmt.Fprint(&buf, "element face 1\nproperty list uchar int idx\n")
	fmt.Fprint(&buf, "element vertex 1\nproperty float x\nproperty float y\nproperty float z\nend_header\n")
	if _, err := ReadPLY(&buf); err == nil {
		t.Fatal("pre-vertex list property: want error")
	}
	// Integer coordinates rejected.
	buf.Reset()
	fmt.Fprint(&buf, "ply\nformat binary_little_endian 1.0\n")
	fmt.Fprint(&buf, "element vertex 1\nproperty int x\nproperty float y\nproperty float z\nend_header\n")
	binary.Write(&buf, binary.LittleEndian, int32(1))
	binary.Write(&buf, binary.LittleEndian, float32(2))
	binary.Write(&buf, binary.LittleEndian, float32(3))
	if _, err := ReadPLY(&buf); err == nil {
		t.Fatal("integer x: want error")
	}
}

func TestBinaryPLYDoublePrecision(t *testing.T) {
	var buf bytes.Buffer
	fmt.Fprint(&buf, "ply\nformat binary_little_endian 1.0\n")
	fmt.Fprint(&buf, "element vertex 1\nproperty double x\nproperty double y\nproperty double z\nend_header\n")
	want := geom.Point3{X: math.Pi, Y: -math.E, Z: 1e-12}
	binary.Write(&buf, binary.LittleEndian, want.X)
	binary.Write(&buf, binary.LittleEndian, want.Y)
	binary.Write(&buf, binary.LittleEndian, want.Z)
	c, err := ReadPLY(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if c.Points[0] != want {
		t.Fatalf("double precision lost: %v vs %v", c.Points[0], want)
	}
}
