package dataset

import (
	"math/rand"

	"repro/internal/geom"
)

// Classification is the ModelNet-stand-in: each item is one procedural shape
// with its family as the class label.
type Classification struct {
	Items  int
	Points int
	Noise  float64
	Skew   float64
	Seed   int64
}

// NewClassification builds the synthetic classification dataset with
// paper-comparable defaults (1 024 points per item, mirroring ModelNet40's
// per-batch point count in Table 1).
func NewClassification(items int, seed int64) *Classification {
	return &Classification{Items: items, Points: 1024, Noise: 0.02, Skew: 0.5, Seed: seed}
}

// Name implements Dataset.
func (d *Classification) Name() string { return "synthetic-modelnet" }

// Len implements Dataset.
func (d *Classification) Len() int { return d.Items }

// Classes implements Dataset.
func (d *Classification) Classes() int { return int(geom.NumShapeKinds) }

// At implements Dataset.
func (d *Classification) At(i int) (*Sample, error) {
	if err := checkIndex(i, d.Items, d.Name()); err != nil {
		return nil, err
	}
	kind := geom.ShapeKind(i % int(geom.NumShapeKinds))
	cloud := geom.GenerateShape(kind, geom.ShapeOptions{
		N:           d.Points,
		Noise:       d.Noise,
		DensitySkew: d.Skew,
		Seed:        d.Seed + int64(i),
	})
	return &Sample{Cloud: cloud, Label: int32(kind)}, nil
}

// PartSegmentation is the ShapeNet stand-in: composite objects whose parts
// carry distinct labels (e.g. a "rocket" = cylinder body + cone nose).
type PartSegmentation struct {
	Items  int
	Points int
	Noise  float64
	Seed   int64
}

// NewPartSegmentation builds the synthetic part-segmentation dataset
// (2 048 points per item, matching ShapeNet's per-batch count in Table 1).
func NewPartSegmentation(items int, seed int64) *PartSegmentation {
	return &PartSegmentation{Items: items, Points: 2048, Noise: 0.015, Seed: seed}
}

// Name implements Dataset.
func (d *PartSegmentation) Name() string { return "synthetic-shapenet" }

// Len implements Dataset.
func (d *PartSegmentation) Len() int { return d.Items }

// Part labels for the composite objects.
const (
	PartBody int32 = iota
	PartTop
	PartBase
	NumPartClasses
)

// Classes implements Dataset.
func (d *PartSegmentation) Classes() int { return int(NumPartClasses) }

// At implements Dataset.
func (d *PartSegmentation) At(i int) (*Sample, error) {
	if err := checkIndex(i, d.Items, d.Name()); err != nil {
		return nil, err
	}
	seed := d.Seed + int64(i)
	rng := rand.New(rand.NewSource(seed))
	variant := i % 3
	c := geom.NewCloud(0, 0)
	c.Labels = []int32{}
	bodyN := d.Points / 2
	topN := d.Points / 4
	baseN := d.Points - bodyN - topN
	addPart := func(kind geom.ShapeKind, n int, label int32, scale, dz float64) {
		part := geom.GenerateShape(kind, geom.ShapeOptions{N: n, Noise: d.Noise, DensitySkew: 0.4, Seed: rng.Int63()})
		for _, p := range part.Points {
			c.Points = append(c.Points, geom.Point3{X: p.X * scale, Y: p.Y * scale, Z: p.Z*scale + dz})
			c.Labels = append(c.Labels, label)
		}
	}
	switch variant {
	case 0: // rocket: cylinder body, cone nose, box fins
		addPart(geom.ShapeCylinder, bodyN, PartBody, 0.5, 0)
		addPart(geom.ShapeCone, topN, PartTop, 0.5, 1.0)
		addPart(geom.ShapeBox, baseN, PartBase, 0.3, -0.8)
	case 1: // lamp: pole, shade, base
		addPart(geom.ShapeCylinder, bodyN, PartBody, 0.15, 0)
		addPart(geom.ShapeShell, topN, PartTop, 0.6, 0.9)
		addPart(geom.ShapePlane, baseN, PartBase, 0.5, -0.6)
	default: // barbell: bar, two spheres
		addPart(geom.ShapeCylinder, bodyN, PartBody, 0.2, 0)
		addPart(geom.ShapeSphere, topN, PartTop, 0.45, 0.8)
		addPart(geom.ShapeSphere, baseN, PartBase, 0.45, -0.8)
	}
	return &Sample{Cloud: c, Label: -1}, nil
}

// SceneSegmentation is the S3DIS/ScanNet stand-in: synthetic indoor rooms
// with per-point semantic labels. Points controls the per-item point count
// (4 096 for the S3DIS-like setting, 8 192 for the ScanNet-like one, matching
// Table 1).
type SceneSegmentation struct {
	Items  int
	Points int
	Seed   int64
	Style  string // "s3dis" or "scannet": room-size statistics
	// Intensity attaches the one-channel reflectance feature (the RGB
	// stand-in); pair with the models' ExtraFeatDim = 1.
	Intensity bool
}

// NewSceneSegmentation builds the synthetic scene dataset.
func NewSceneSegmentation(items, points int, style string, seed int64) *SceneSegmentation {
	return &SceneSegmentation{Items: items, Points: points, Seed: seed, Style: style}
}

// Name implements Dataset.
func (d *SceneSegmentation) Name() string { return "synthetic-" + d.Style }

// Len implements Dataset.
func (d *SceneSegmentation) Len() int { return d.Items }

// Classes implements Dataset.
func (d *SceneSegmentation) Classes() int { return int(geom.NumSceneClasses) }

// At implements Dataset.
func (d *SceneSegmentation) At(i int) (*Sample, error) {
	if err := checkIndex(i, d.Items, d.Name()); err != nil {
		return nil, err
	}
	opts := geom.SceneOptions{N: d.Points, Seed: d.Seed + int64(i), Intensity: d.Intensity}
	if d.Style == "scannet" {
		// ScanNet scans are smaller, cluttered rooms.
		opts.RoomW, opts.RoomD, opts.RoomH = 4.5, 4, 2.8
		opts.Furniture = 8
	}
	cloud := geom.GenerateScene(opts)
	return &Sample{Cloud: cloud, Label: -1}, nil
}
