package pipeline

import (
	"testing"

	"repro/internal/model"
	"repro/internal/sample"
	"repro/internal/tensor"
)

// tinyWorkload is a scaled-down DGCNN row: replica construction and one
// forward stay fast while exercising every knob the ladder touches.
func tinyWorkload() Workload {
	return Workload{
		ID: "T", Model: "DGCNN(c)", Dataset: "ModelNet40",
		Points: 128, Batch: 1, Task: model.TaskClassification,
		Arch: ArchDGCNN, Classes: 10, K: 4,
	}
}

func sharesAllParams(t *testing.T, ref, n Net) {
	t.Helper()
	rp, np := ref.Params(), n.Params()
	if len(rp) != len(np) || len(rp) == 0 {
		t.Fatalf("param count %d vs %d", len(rp), len(np))
	}
	for i := range rp {
		if rp[i].Value != np[i].Value {
			t.Fatalf("param %d (%s) not shared", i, rp[i].Name)
		}
		if rp[i].Grad == np[i].Grad {
			t.Fatalf("param %d (%s) shares gradients; only values may alias", i, rp[i].Name)
		}
	}
}

func TestRebuildReplicaSharesParams(t *testing.T) {
	w := tinyWorkload()
	ref, err := Build(w, SN, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reb, err := RebuildReplica(ref, w, SN, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if reb == ref {
		t.Fatal("rebuild returned the reference net")
	}
	sharesAllParams(t, ref, reb)
	// The rebuilt replica must actually serve.
	frame, err := Frame(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunInto(reb, frame, &model.Trace{}, nil, SimConfig(w, SN, Options{})); err != nil {
		t.Fatalf("rebuilt replica forward: %v", err)
	}
	if _, err := RebuildReplica(nil, w, SN, Options{}); err == nil {
		t.Fatal("nil reference accepted")
	}
}

func TestDegradeTiersAreCumulativeAndClamped(t *testing.T) {
	w := tinyWorkload()
	base := Options{}
	base.defaults(w)
	tiers := DegradeTiers(w, Options{}, MaxDegradeTiers+5)
	if len(tiers) != MaxDegradeTiers {
		t.Fatalf("got %d tiers, want clamp at %d", len(tiers), MaxDegradeTiers)
	}
	if tiers[0].WindowW >= base.WindowW || tiers[0].WindowW < w.K {
		t.Fatalf("tier 1 window %d, want < %d and ≥ k=%d", tiers[0].WindowW, base.WindowW, w.K)
	}
	if tiers[0].SampleFrac != base.SampleFrac {
		t.Fatal("tier 1 must not touch the sample budget yet")
	}
	if tiers[0].SampleArch != sample.ArchFPS {
		t.Fatal("tier 1 must not touch the sampler arch yet")
	}
	if tiers[0].Backend != "" {
		t.Fatal("tier 1 must not touch the compute backend yet")
	}
	if tiers[1].Backend != tensor.BackendInt8 {
		t.Fatalf("tier 2 backend %q, want %q", tiers[1].Backend, tensor.BackendInt8)
	}
	if tiers[1].SampleArch != sample.ArchFPS || tiers[1].SampleFrac != base.SampleFrac {
		t.Fatal("tier 2 must not touch the sampler or budget yet")
	}
	if tiers[1].WindowW != tiers[0].WindowW {
		t.Fatal("tier 2 must keep tier 1's window (steps are cumulative)")
	}
	if tiers[2].SampleArch != sample.ArchBucketFPS || tiers[2].SampleQuality != 0.5 {
		t.Fatalf("tier 3 sampler %v@%v, want bucketfps@0.5", tiers[2].SampleArch, tiers[2].SampleQuality)
	}
	if tiers[2].SampleFrac != base.SampleFrac {
		t.Fatal("tier 3 must not touch the sample budget yet")
	}
	if tiers[2].Backend != tensor.BackendInt8 {
		t.Fatal("tier 3 must keep tier 2's backend (steps are cumulative)")
	}
	if tiers[3].SampleFrac >= base.SampleFrac || tiers[3].SampleFrac < 0.05 {
		t.Fatalf("tier 4 sample budget %v, want < %v with floor 0.05", tiers[3].SampleFrac, base.SampleFrac)
	}
	if tiers[3].SampleArch != sample.ArchBucketFPS {
		t.Fatal("tier 4 must keep tier 3's sampler arch (steps are cumulative)")
	}
	if tiers[4].ReuseDistance != base.ReuseDistance+1 || tiers[4].PPReuseDistance != base.PPReuseDistance+1 {
		t.Fatalf("tier 5 reuse %d/%d, want base+1", tiers[4].ReuseDistance, tiers[4].PPReuseDistance)
	}
	if got := DegradeTiers(w, Options{}, 0); got != nil {
		t.Fatalf("n=0 produced %d tiers", len(got))
	}
	if got := DegradeTiers(w, Options{}, 1); len(got) != 1 {
		t.Fatalf("n=1 produced %d tiers", len(got))
	}
}

func TestSampleArchReachesBucketFPS(t *testing.T) {
	// Options.SampleArch must flow through the ArchBuilder registry into the
	// SA modules: under the baseline config (no Morton stride) every SA
	// sample stage should report the bucketed sampler in its trace.
	w := Workload{
		ID: "T2", Model: "PointNet++(s)", Dataset: "ModelNet40",
		Points: 256, Batch: 1, Task: model.TaskSegmentation,
		Arch: ArchPointNetPP, Classes: 10, K: 4,
	}
	opts := Options{Depth: 2, SampleArch: sample.ArchBucketFPS, SampleQuality: 0.75}
	net, err := Build(w, Baseline, opts)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := Frame(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	trace := &model.Trace{}
	if _, _, err := RunInto(net, frame, trace, nil, SimConfig(w, Baseline, opts)); err != nil {
		t.Fatal(err)
	}
	samples := 0
	for _, r := range trace.Records {
		if r.Stage != model.StageSample {
			continue
		}
		samples++
		if r.Algo != "bucketfps" {
			t.Fatalf("SA%d sample algo %q, want bucketfps", r.Layer, r.Algo)
		}
	}
	if samples != opts.Depth {
		t.Fatalf("saw %d sample stages, want %d", samples, opts.Depth)
	}
}

func TestTieredReplicasShareOneParamSet(t *testing.T) {
	w := tinyWorkload()
	const workers = 2
	tiers := DegradeTiers(w, Options{}, 2)
	rows, err := TieredReplicas(w, SN, Options{}, workers, tiers)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+len(tiers) {
		t.Fatalf("got %d rows, want %d", len(rows), 1+len(tiers))
	}
	seen := map[Net]bool{}
	for ri, row := range rows {
		if len(row) != workers {
			t.Fatalf("row %d has %d nets, want %d", ri, len(row), workers)
		}
		for wi, n := range row {
			if n == nil {
				t.Fatalf("nil net at row %d worker %d", ri, wi)
			}
			if seen[n] {
				t.Fatalf("net at row %d worker %d duplicated", ri, wi)
			}
			seen[n] = true
			if ri == 0 && wi == 0 {
				continue
			}
			sharesAllParams(t, rows[0][0], n)
		}
	}
	// A degraded replica serves the same frame the full one does.
	frame, err := Frame(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []Net{rows[0][0], rows[len(rows)-1][workers-1]} {
		if _, _, err := RunInto(n, frame, &model.Trace{}, nil, SimConfig(w, SN, Options{})); err != nil {
			t.Fatalf("tiered replica forward: %v", err)
		}
	}
}

func TestFleetReplicasShareOneParamSet(t *testing.T) {
	w := tinyWorkload()
	const engines, workers = 3, 2
	tiers := DegradeTiers(w, Options{}, 1)
	fleet, err := FleetReplicas(w, SN, Options{}, engines, workers, tiers)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != engines {
		t.Fatalf("got %d engines, want %d", len(fleet), engines)
	}
	ref := fleet[0][0][0]
	seen := map[Net]bool{}
	for ei, rows := range fleet {
		if len(rows) != 1+len(tiers) {
			t.Fatalf("engine %d has %d rows, want %d", ei, len(rows), 1+len(tiers))
		}
		for ri, row := range rows {
			if len(row) != workers {
				t.Fatalf("engine %d row %d has %d nets, want %d", ei, ri, len(row), workers)
			}
			for wi, n := range row {
				if seen[n] {
					t.Fatalf("net at engine %d row %d worker %d duplicated", ei, ri, wi)
				}
				seen[n] = true
				if n == ref {
					continue
				}
				// One weight set per process, fleet-wide: every net on every
				// engine aliases the reference parameters.
				sharesAllParams(t, ref, n)
			}
		}
	}
	// A replica from the last engine's degraded row serves a frame.
	frame, err := Frame(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	last := fleet[engines-1][len(tiers)][workers-1]
	if _, _, err := RunInto(last, frame, &model.Trace{}, nil, SimConfig(w, SN, Options{})); err != nil {
		t.Fatalf("fleet replica forward: %v", err)
	}
	if _, err := FleetReplicas(w, SN, Options{}, 0, workers, tiers); err == nil {
		t.Fatal("zero engines accepted")
	}
}
