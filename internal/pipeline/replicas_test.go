package pipeline

import (
	"testing"

	"repro/internal/model"
)

// tinyWorkload is a scaled-down DGCNN row: replica construction and one
// forward stay fast while exercising every knob the ladder touches.
func tinyWorkload() Workload {
	return Workload{
		ID: "T", Model: "DGCNN(c)", Dataset: "ModelNet40",
		Points: 128, Batch: 1, Task: model.TaskClassification,
		Arch: ArchDGCNN, Classes: 10, K: 4,
	}
}

func sharesAllParams(t *testing.T, ref, n Net) {
	t.Helper()
	rp, np := ref.Params(), n.Params()
	if len(rp) != len(np) || len(rp) == 0 {
		t.Fatalf("param count %d vs %d", len(rp), len(np))
	}
	for i := range rp {
		if rp[i].Value != np[i].Value {
			t.Fatalf("param %d (%s) not shared", i, rp[i].Name)
		}
		if rp[i].Grad == np[i].Grad {
			t.Fatalf("param %d (%s) shares gradients; only values may alias", i, rp[i].Name)
		}
	}
}

func TestRebuildReplicaSharesParams(t *testing.T) {
	w := tinyWorkload()
	ref, err := Build(w, SN, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reb, err := RebuildReplica(ref, w, SN, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if reb == ref {
		t.Fatal("rebuild returned the reference net")
	}
	sharesAllParams(t, ref, reb)
	// The rebuilt replica must actually serve.
	frame, err := Frame(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunInto(reb, frame, &model.Trace{}, nil, SimConfig(w, SN, Options{})); err != nil {
		t.Fatalf("rebuilt replica forward: %v", err)
	}
	if _, err := RebuildReplica(nil, w, SN, Options{}); err == nil {
		t.Fatal("nil reference accepted")
	}
}

func TestDegradeTiersAreCumulativeAndClamped(t *testing.T) {
	w := tinyWorkload()
	base := Options{}
	base.defaults(w)
	tiers := DegradeTiers(w, Options{}, MaxDegradeTiers+5)
	if len(tiers) != MaxDegradeTiers {
		t.Fatalf("got %d tiers, want clamp at %d", len(tiers), MaxDegradeTiers)
	}
	if tiers[0].WindowW >= base.WindowW || tiers[0].WindowW < w.K {
		t.Fatalf("tier 1 window %d, want < %d and ≥ k=%d", tiers[0].WindowW, base.WindowW, w.K)
	}
	if tiers[0].SampleFrac != base.SampleFrac {
		t.Fatal("tier 1 must not touch the sample budget yet")
	}
	if tiers[1].SampleFrac >= base.SampleFrac || tiers[1].SampleFrac < 0.05 {
		t.Fatalf("tier 2 sample budget %v, want < %v with floor 0.05", tiers[1].SampleFrac, base.SampleFrac)
	}
	if tiers[1].WindowW != tiers[0].WindowW {
		t.Fatal("tier 2 must keep tier 1's window (steps are cumulative)")
	}
	if tiers[2].ReuseDistance != base.ReuseDistance+1 || tiers[2].PPReuseDistance != base.PPReuseDistance+1 {
		t.Fatalf("tier 3 reuse %d/%d, want base+1", tiers[2].ReuseDistance, tiers[2].PPReuseDistance)
	}
	if got := DegradeTiers(w, Options{}, 0); got != nil {
		t.Fatalf("n=0 produced %d tiers", len(got))
	}
	if got := DegradeTiers(w, Options{}, 1); len(got) != 1 {
		t.Fatalf("n=1 produced %d tiers", len(got))
	}
}

func TestTieredReplicasShareOneParamSet(t *testing.T) {
	w := tinyWorkload()
	const workers = 2
	tiers := DegradeTiers(w, Options{}, 2)
	rows, err := TieredReplicas(w, SN, Options{}, workers, tiers)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+len(tiers) {
		t.Fatalf("got %d rows, want %d", len(rows), 1+len(tiers))
	}
	seen := map[Net]bool{}
	for ri, row := range rows {
		if len(row) != workers {
			t.Fatalf("row %d has %d nets, want %d", ri, len(row), workers)
		}
		for wi, n := range row {
			if n == nil {
				t.Fatalf("nil net at row %d worker %d", ri, wi)
			}
			if seen[n] {
				t.Fatalf("net at row %d worker %d duplicated", ri, wi)
			}
			seen[n] = true
			if ri == 0 && wi == 0 {
				continue
			}
			sharesAllParams(t, rows[0][0], n)
		}
	}
	// A degraded replica serves the same frame the full one does.
	frame, err := Frame(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []Net{rows[0][0], rows[len(rows)-1][workers-1]} {
		if _, _, err := RunInto(n, frame, &model.Trace{}, nil, SimConfig(w, SN, Options{})); err != nil {
			t.Fatalf("tiered replica forward: %v", err)
		}
	}
}
