package pipeline

import "repro/internal/model"

// Mesorasi comparison (§6.4): Mesorasi's delayed aggregation (DA) runs the
// per-point MLP *before* grouping, so feature compute touches n points
// instead of n·k grouped rows (the paper measured FC 88.2 → 42.2 ms/batch,
// 2.1×), while the grouping stage afterwards must gather the *output*-width
// features (latency × 2.73 in the paper) and nothing changes for sampling.
//
// DelayedAggregation rewrites a baseline trace into its DA equivalent so the
// cost model can price it: feature stages shrink their row count from q·k to
// q, and grouping stages gather COut-wide rows instead of CIn-wide ones.
func DelayedAggregation(tr *model.Trace) *model.Trace {
	out := &model.Trace{Records: make([]model.StageRecord, len(tr.Records))}
	copy(out.Records, tr.Records)
	// Pair each group stage with the feature stage of the same layer.
	featWidth := make(map[int]int)
	for _, r := range tr.Records {
		if r.Stage == model.StageFeature && r.K == 0 {
			featWidth[r.Layer] = r.COut
		}
	}
	for i, r := range out.Records {
		switch r.Stage {
		case model.StageFeature:
			if r.Q > 0 && r.CIn > 0 {
				// MLP now runs per point, before neighbor aggregation. The
				// grouped row count q·k collapses to q. (The paper's 2.1×
				// is less than k because cuDNN already amortizes; the cost
				// model's channel-utilization term plays that role here.)
				k := kForLayer(tr, r.Layer)
				if k > 1 {
					out.Records[i].Q = r.Q / k
					out.Records[i].Algo = "shared-mlp-da"
				}
			}
		case model.StageGroup:
			if w, ok := featWidth[r.Layer]; ok && w > 0 {
				// Grouping moves after the MLP: it gathers output-width
				// features.
				out.Records[i].CIn = w
				out.Records[i].Algo = "gather-da"
			}
		}
	}
	return out
}

// kForLayer finds the neighbor count used by the given layer.
func kForLayer(tr *model.Trace, layer int) int {
	for _, r := range tr.Records {
		if r.Layer == layer && r.Stage == model.StageNeighbor {
			return r.K
		}
	}
	return 1
}
