package pipeline

import (
	"testing"
	"time"

	"repro/internal/edgesim"
)

func TestTuneWindowPicksLargestFitting(t *testing.T) {
	dev := edgesim.JetsonAGXXavier()
	w := smallWorkload(Workloads[1]) // PointNet++ ScanNet shape
	w.Points = 1024
	opts := smallOpts()

	// A generous budget admits the largest window probed.
	wide, latWide, err := TuneWindow(dev, w, opts, time.Second, 8)
	if err != nil {
		t.Fatal(err)
	}
	if wide != 8*w.K {
		t.Fatalf("generous budget picked W=%d, want %d", wide, 8*w.K)
	}
	if latWide <= 0 || latWide > time.Second {
		t.Fatalf("latency %v", latWide)
	}

	// The pure-pick floor: sample+NS latency at W = k. Any budget between
	// the floor and the wide latency must admit some window and respect the
	// budget.
	_, latPure, err := TuneWindow(dev, w, opts, time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	if latPure > latWide {
		t.Fatalf("pure pick (%v) slower than wide window (%v)", latPure, latWide)
	}
	budget := latPure + (latWide-latPure)/2
	narrow, latNarrow, err := TuneWindow(dev, w, opts, budget, 8)
	if err != nil {
		t.Fatal(err)
	}
	if narrow > wide {
		t.Fatalf("tighter budget picked W=%d > %d", narrow, wide)
	}
	if latNarrow > budget {
		t.Fatalf("picked latency %v exceeds budget %v", latNarrow, budget)
	}
}

func TestTuneWindowImpossibleBudget(t *testing.T) {
	dev := edgesim.JetsonAGXXavier()
	w := smallWorkload(Workloads[1])
	w.Points = 1024
	if _, _, err := TuneWindow(dev, w, smallOpts(), time.Nanosecond, 4); err == nil {
		t.Fatal("nanosecond budget: want error")
	}
}
