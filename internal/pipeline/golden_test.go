package pipeline

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// The golden suite pins the numerics of every Table-1 workload in both the
// Baseline and S+N configurations: logits (eval forward) for all six
// workloads, plus train-path parameter gradients for one workload per
// architecture. Fixtures were captured before the stage-graph executor
// refactor, so a passing run proves the refactored models are bit-identical
// to the hand-rolled forwards. Regenerate (only when an intentional numeric
// change lands) with:
//
//	go test ./internal/pipeline -run Golden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite golden fixtures from the current implementation")

// goldenScale shrinks a Table-1 workload to laptop scale while keeping its
// identity (arch, task, dataset, K).
func goldenScale(w Workload) Workload {
	w.Points = 256
	return w
}

func goldenOptions() Options {
	return Options{BaseWidth: 4, Depth: 2, Modules: 3, Seed: 11}
}

const goldenFrameSeed = 7

func goldenPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join("testdata", "golden", name)
}

func encodeMatrix(m *tensor.Matrix) []byte {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, uint32(m.Rows))
	binary.Write(&buf, binary.LittleEndian, uint32(m.Cols))
	for _, v := range m.Data {
		binary.Write(&buf, binary.LittleEndian, math.Float32bits(v))
	}
	return buf.Bytes()
}

func encodeGrads(params []*nn.Param) []byte {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, uint32(len(params)))
	for _, p := range params {
		binary.Write(&buf, binary.LittleEndian, uint32(len(p.Grad.Data)))
		for _, v := range p.Grad.Data {
			binary.Write(&buf, binary.LittleEndian, math.Float32bits(v))
		}
	}
	return buf.Bytes()
}

// checkGolden compares got against the named fixture, or rewrites the fixture
// under -update-golden.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := goldenPath(t, name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture %s (run with -update-golden at a known-good commit): %v", path, err)
	}
	if bytes.Equal(want, got) {
		return
	}
	if len(want) != len(got) {
		t.Fatalf("%s: size changed: golden %d bytes, got %d", name, len(want), len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: first byte mismatch at offset %d (of %d): golden 0x%02x, got 0x%02x", name, i, len(got), want[i], got[i])
		}
	}
}

// TestGoldenLogits checks eval-forward logits for every workload × config
// against pre-refactor fixtures, bit for bit.
func TestGoldenLogits(t *testing.T) {
	for _, w := range Workloads {
		for _, kind := range []ConfigKind{Baseline, SN} {
			w, kind := goldenScale(w), kind
			t.Run(fmt.Sprintf("%s_%s", w.ID, kind), func(t *testing.T) {
				net, err := Build(w, kind, goldenOptions())
				if err != nil {
					t.Fatal(err)
				}
				cloud, err := Frame(w, goldenFrameSeed)
				if err != nil {
					t.Fatal(err)
				}
				out, err := net.Forward(cloud, nil, false)
				if err != nil {
					t.Fatal(err)
				}
				checkGolden(t, fmt.Sprintf("logits_%s_%d.bin", w.ID, kind), encodeMatrix(out.Logits))

				// A second frame through the same net must agree with the
				// first: the workspace steady state may not perturb numerics.
				out2, err := net.Forward(cloud, nil, false)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(encodeMatrix(out.Logits), encodeMatrix(out2.Logits)) {
					t.Fatal("second frame through the same net diverged from the first")
				}
			})
		}
	}
}

// TestGoldenGradients checks train-path parameter gradients for one workload
// per architecture (PointNet++ via W1, DGCNN via W3) in the S+N config.
func TestGoldenGradients(t *testing.T) {
	cases := []struct {
		wid  string
		kind ConfigKind
	}{
		{"W1", SN},
		{"W3", SN},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s_%s", tc.wid, tc.kind), func(t *testing.T) {
			w, err := WorkloadByID(tc.wid)
			if err != nil {
				t.Fatal(err)
			}
			w = goldenScale(w)
			net, err := Build(w, tc.kind, goldenOptions())
			if err != nil {
				t.Fatal(err)
			}
			cloud, err := Frame(w, goldenFrameSeed)
			if err != nil {
				t.Fatal(err)
			}
			out, err := net.Forward(cloud, nil, true)
			if err != nil {
				t.Fatal(err)
			}
			labels := out.Labels
			if out.Logits.Rows == 1 {
				labels = []int32{1}
			}
			_, grad, err := nn.CrossEntropy(out.Logits, labels)
			if err != nil {
				t.Fatal(err)
			}
			if err := net.Backward(grad); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, fmt.Sprintf("grads_%s_%d.bin", tc.wid, tc.kind), encodeGrads(net.Params()))
		})
	}
}
