package pipeline

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/tensor"
)

// String names the architecture (Table 1 uses these in the Model column
// prefixes).
func (a Arch) String() string {
	switch a {
	case ArchPointNetPP:
		return "pointnet++"
	case ArchDGCNN:
		return "dgcnn"
	}
	return fmt.Sprintf("arch(%d)", int(a))
}

// ArchBuilder constructs a network for a workload under a configuration.
// Builders receive Options with defaults already applied.
type ArchBuilder func(w Workload, kind ConfigKind, opts Options) (Net, error)

var archBuilders = map[Arch]ArchBuilder{}

// RegisterArch installs the builder for an architecture, replacing any
// previous registration. New architectures plug into the harness by
// registering here; every workload whose Arch matches then builds through
// NewNet without touching the pipeline package.
func RegisterArch(a Arch, b ArchBuilder) {
	if b == nil {
		panic(fmt.Sprintf("pipeline: RegisterArch(%v) with nil builder", a))
	}
	archBuilders[a] = b
}

// NewNet constructs the network for a workload under a configuration by
// dispatching to the registered ArchBuilder.
func NewNet(w Workload, kind ConfigKind, opts Options) (Net, error) {
	b, ok := archBuilders[w.Arch]
	if !ok {
		names := make([]string, 0, len(archBuilders))
		for a := range archBuilders {
			names = append(names, a.String())
		}
		sort.Strings(names)
		return nil, fmt.Errorf("pipeline: no builder registered for architecture %v (registered: %s)", w.Arch, strings.Join(names, ", "))
	}
	opts.defaults(w)
	return b(w, kind, opts)
}

func init() {
	RegisterArch(ArchPointNetPP, buildPointNetPP)
	RegisterArch(ArchDGCNN, buildDGCNN)
}

// mortonStructurize returns the structurization options for a configuration:
// nil for the baseline, Morton ordering for S+N and S+N+F.
func mortonStructurize(kind ConfigKind, opts Options) *core.StructurizeOptions {
	if kind == Baseline {
		return nil
	}
	return &core.StructurizeOptions{TotalBits: opts.TotalBits}
}

// resolveBackend turns Options.Backend into a fresh tensor.Backend instance
// for one net. Fresh per net is deliberate: backends may keep per-instance
// state (the int8 quantization cache and scratch), and serving runs one
// replica — hence one backend — per worker goroutine.
func resolveBackend(opts Options) (tensor.Backend, error) {
	be, err := tensor.NewBackend(opts.Backend)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	return be, nil
}

func buildPointNetPP(w Workload, kind ConfigKind, opts Options) (Net, error) {
	be, err := resolveBackend(opts)
	if err != nil {
		return nil, err
	}
	useMorton := kind != Baseline
	sa := make([]model.ModuleStrategy, opts.Depth)
	fp := make([]model.ModuleStrategy, opts.Depth)
	reuse := core.ReusePolicy{}
	if useMorton {
		for l := 0; l < opts.MortonLayers && l < opts.Depth; l++ {
			sa[l] = model.ModuleStrategy{MortonSample: true, MortonWindow: true, WindowW: opts.WindowW}
			// The matching FP module is the one that *produces* level l:
			// execution index Depth−1−l (§5.1.3 optimizes the last FP).
			fp[opts.Depth-1-l] = model.ModuleStrategy{MortonInterp: true}
		}
		reuse = core.ReusePolicy{Distance: opts.PPReuseDistance}
	}
	return model.NewPointNetPP(model.PPConfig{
		Classes:       w.Classes,
		Depth:         opts.Depth,
		BaseWidth:     opts.BaseWidth,
		K:             w.K,
		SampleFrac:    opts.SampleFrac,
		Radius:        opts.BallRadius,
		SampleArch:    opts.SampleArch,
		SampleQuality: opts.SampleQuality,
		ExtraFeatDim:  opts.ExtraFeatDim,
		SAStrategies:  sa,
		FPStrategies:  fp,
		Reuse:         reuse,
		Structurize:   mortonStructurize(kind, opts),
		Backend:       be,
		Seed:          opts.Seed,
	})
}

func buildDGCNN(w Workload, kind ConfigKind, opts Options) (Net, error) {
	be, err := resolveBackend(opts)
	if err != nil {
		return nil, err
	}
	useMorton := kind != Baseline
	strat := make([]model.ModuleStrategy, opts.Modules)
	reuse := core.ReusePolicy{}
	if useMorton {
		for l := 0; l < opts.MortonLayers && l < opts.Modules; l++ {
			strat[l] = model.ModuleStrategy{MortonWindow: true, WindowW: opts.WindowW}
		}
		reuse = core.ReusePolicy{Distance: opts.ReuseDistance}
	}
	return model.NewDGCNN(model.DGCNNConfig{
		Classes:      w.Classes,
		Modules:      opts.Modules,
		BaseWidth:    opts.BaseWidth,
		K:            w.K,
		ExtraFeatDim: opts.ExtraFeatDim,
		Strategies:   strat,
		Reuse:        reuse,
		Task:         w.Task,
		Structurize:  mortonStructurize(kind, opts),
		Backend:      be,
		Seed:         opts.Seed,
	})
}
