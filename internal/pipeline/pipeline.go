// Package pipeline assembles the end-to-end PC inference pipelines the paper
// evaluates: the six workloads of Table 1, the three execution
// configurations (Baseline, S+N, S+N+F), and the per-frame run/price loop
// that feeds the experiment harness.
package pipeline

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/edgesim"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/tensor"
)

// ConfigKind is the execution configuration axis of Fig. 12/13.
type ConfigKind int

// The paper's three configurations.
const (
	// Baseline: SOTA FPS + ball query / k-NN, feature compute on CUDA cores.
	Baseline ConfigKind = iota
	// SN applies the Morton approximations to the critical sample and
	// neighbor-search layers (step ② in Fig. 12).
	SN
	// SNF additionally deploys feature compute to tensor cores (step ③).
	SNF
)

var configNames = [...]string{"baseline", "S+N", "S+N+F"}

// String names the configuration.
func (c ConfigKind) String() string {
	if c < 0 || int(c) >= len(configNames) {
		return "unknown"
	}
	return configNames[c]
}

// Arch selects the network architecture.
type Arch int

// Architectures of Fig. 2.
const (
	ArchPointNetPP Arch = iota
	ArchDGCNN
)

// Net is the common surface of the two architectures.
type Net interface {
	Forward(cloud *geom.Cloud, trace *model.Trace, train bool) (*model.Output, error)
	Backward(gradLogits *tensor.Matrix) error
	Params() []*nn.Param
}

// Workload is one row of Table 1.
type Workload struct {
	ID      string
	Model   string
	Dataset string
	Points  int // points per batch element
	Batch   int // batch size (W2/W6 use the ScanNet average of 14)
	Task    model.Task
	Arch    Arch
	Classes int
	K       int // neighbors per query
}

// Workloads reproduces Table 1. Batch sizes follow §6.2: S3DIS uses fixed
// batches of 32; ScanNet batches range 4–41 with an average of 14.
var Workloads = []Workload{
	{ID: "W1", Model: "PointNet++(s)", Dataset: "S3DIS", Points: 8192, Batch: 32, Task: model.TaskSegmentation, Arch: ArchPointNetPP, Classes: int(geom.NumSceneClasses), K: 8},
	{ID: "W2", Model: "PointNet++(s)", Dataset: "ScanNet", Points: 8192, Batch: 14, Task: model.TaskSegmentation, Arch: ArchPointNetPP, Classes: int(geom.NumSceneClasses), K: 8},
	{ID: "W3", Model: "DGCNN(c)", Dataset: "ModelNet40", Points: 1024, Batch: 32, Task: model.TaskClassification, Arch: ArchDGCNN, Classes: int(geom.NumShapeKinds), K: 8},
	{ID: "W4", Model: "DGCNN(p)", Dataset: "ShapeNet", Points: 2048, Batch: 32, Task: model.TaskSegmentation, Arch: ArchDGCNN, Classes: int(dataset.NumPartClasses), K: 8},
	{ID: "W5", Model: "DGCNN(s)", Dataset: "S3DIS", Points: 4096, Batch: 32, Task: model.TaskSegmentation, Arch: ArchDGCNN, Classes: int(geom.NumSceneClasses), K: 8},
	{ID: "W6", Model: "DGCNN(s)", Dataset: "ScanNet", Points: 8192, Batch: 14, Task: model.TaskSegmentation, Arch: ArchDGCNN, Classes: int(geom.NumSceneClasses), K: 8},
}

// WorkloadByID looks a workload up by its Table 1 id.
func WorkloadByID(id string) (Workload, error) {
	for _, w := range Workloads {
		if w.ID == id {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("pipeline: unknown workload %q", id)
}

// Options tunes model construction beyond the workload row.
type Options struct {
	BaseWidth int // network width; default 16 (laptop-scale substitute for the paper's 64+)
	Depth     int // PointNet++ SA/FP module count; default 4
	Modules   int // DGCNN EdgeConv module count; default 4 (shows reuse at distance 1)
	WindowW   int // Morton search window; default 2k
	// MortonLayers is how many leading modules get the Morton approximation
	// in the S+N configs (default 1, the paper's design point; Fig. 15b
	// sweeps it).
	MortonLayers  int
	ReuseDistance int // DGCNN reuse distance in S+N configs; default 1
	// SampleFrac is the per-module down-sampling ratio of the PointNet++ SA
	// chain (the sample budget); default 0.25, the PointNet++ convention.
	// Smaller fractions spend less compute per frame at some accuracy cost —
	// one rung of serve's degradation ladder (DegradeTiers).
	SampleFrac float64
	// SampleArch selects the sampler for PointNet++ SA modules that run a
	// real (non-Morton-stride) sampling stage: exact FPS (the default),
	// bucketed pruned FPS over the Morton order (sample.ArchBucketFPS, the
	// 100k+-point middle ground), or pure stride.
	SampleArch sample.Arch
	// SampleQuality is the BucketFPS quality knob in [0,1]; 0 defaults to 1
	// (exact FPS picks with pruning as a pure speedup). Lower values trade
	// coverage for latency — one rung of serve's degradation ladder.
	SampleQuality float64
	// PPReuseDistance is the PointNet++ SA neighbor-reuse distance in S+N
	// configs (§5.2.3 generalized across sampled levels). Default 0: off —
	// unlike DGCNN, reusing across SA levels projects indexes through the
	// sampling map, an approximation the caller must opt into.
	PPReuseDistance int
	TotalBits       int // Morton code width; default 32
	// BallRadius, when positive, makes the PointNet++ baseline use ball
	// query with this base radius (doubling per level, the PointNet++
	// convention); zero keeps exact kNN. Both are O(N²) SOTA searchers.
	BallRadius float64
	// ExtraFeatDim is the per-point input feature width beyond coordinates
	// (pair with datasets that attach features, e.g. scene intensity).
	ExtraFeatDim int
	// Backend names the tensor.Backend eval frames dispatch their compute
	// kernels through: "naive" (the reference float32 loops, the default),
	// "blocked" (cache-blocked fp32 tiles), or "int8" (quantized inference).
	// Builders resolve the name per net, so every replica owns a private
	// backend instance. Unknown names fail at Build with the registered list.
	// Training always runs the reference kernels regardless.
	Backend string
	Seed    int64
}

func (o *Options) defaults(w Workload) {
	if o.BaseWidth == 0 {
		o.BaseWidth = 16
	}
	if o.Depth == 0 {
		o.Depth = 4
	}
	if o.Modules == 0 {
		o.Modules = 4
	}
	if o.WindowW == 0 {
		o.WindowW = 2 * w.K
	}
	if o.MortonLayers == 0 {
		o.MortonLayers = 1
	}
	if o.ReuseDistance == 0 {
		o.ReuseDistance = 1
	}
	if o.SampleFrac == 0 {
		o.SampleFrac = 0.25
	}
	if o.SampleQuality == 0 {
		o.SampleQuality = 1
	}
	if o.TotalBits == 0 {
		o.TotalBits = 32
	}
}

// Build constructs the network for a workload under a configuration. It is
// the historical name for NewNet; both dispatch through the ArchBuilder
// registry (see registry.go).
func Build(w Workload, kind ConfigKind, opts Options) (Net, error) {
	return NewNet(w, kind, opts)
}

// Frame generates one input cloud for a workload (deterministic in seed).
func Frame(w Workload, seed int64) (*geom.Cloud, error) {
	var s *dataset.Sample
	var err error
	switch w.Dataset {
	case "S3DIS":
		s, err = dataset.NewSceneSegmentation(1, w.Points, "s3dis", seed).At(0)
	case "ScanNet":
		s, err = dataset.NewSceneSegmentation(1, w.Points, "scannet", seed).At(0)
	case "ModelNet40":
		d := dataset.NewClassification(1, seed)
		d.Points = w.Points
		s, err = d.At(0)
	case "ShapeNet":
		d := dataset.NewPartSegmentation(1, seed)
		d.Points = w.Points
		s, err = d.At(0)
	default:
		return nil, fmt.Errorf("pipeline: unknown dataset %q", w.Dataset)
	}
	if err != nil {
		return nil, err
	}
	return s.Cloud, nil
}

// SimConfig derives the edgesim pricing configuration for a workload under a
// configuration kind.
func SimConfig(w Workload, kind ConfigKind, opts Options) edgesim.Config {
	opts.defaults(w)
	return edgesim.Config{
		Batch:       w.Batch,
		TensorCores: kind == SNF,
		Reuse: kind != Baseline &&
			(w.Arch == ArchDGCNN && opts.ReuseDistance > 0 ||
				w.Arch == ArchPointNetPP && opts.PPReuseDistance > 0),
	}
}

// Run executes one frame through a freshly traced forward pass and prices it.
//
// Inference forwards (train=false) serve intermediate activations from a
// per-network workspace that is recycled between frames, so the steady-state
// per-frame allocation count is small and independent of network depth. The
// returned Output is detached from the workspace (logits are cloned out) and
// stays valid across subsequent Run calls on the same net.
//
//edgepc:hotpath
func Run(net Net, cloud *geom.Cloud, dev *edgesim.Device, cfg edgesim.Config) (*model.Trace, edgesim.Report, *model.Output, error) {
	trace := &model.Trace{}
	rep, out, err := RunInto(net, cloud, trace, dev, cfg)
	if err != nil {
		return nil, edgesim.Report{}, nil, err
	}
	return trace, rep, out, nil
}

// RunInto is the reentrant per-worker form of Run: the caller owns the Trace
// and reuses it across frames (it is Reset here), so a long-lived serving
// worker appends stage records into the same backing array every frame
// instead of growing a fresh one. A nil dev skips the cost model and returns
// a zero Report — the mode for serving paths that only want logits.
//
// Reentrancy contract: distinct (net, trace) pairs may call RunInto
// concurrently — each net owns its workspace and caches — but a single net or
// trace must never be shared between goroutines (see internal/serve, which
// pins one replica per worker).
//
//edgepc:hotpath
func RunInto(net Net, cloud *geom.Cloud, trace *model.Trace, dev *edgesim.Device, cfg edgesim.Config) (edgesim.Report, *model.Output, error) {
	trace.Reset()
	out, err := net.Forward(cloud, trace, false)
	if err != nil {
		return edgesim.Report{}, nil, err
	}
	if dev == nil {
		return edgesim.Report{}, out, nil
	}
	return dev.PriceTrace(trace, cfg), out, nil
}

// BatchResult aggregates a RunBatch stream.
type BatchResult struct {
	Outputs []*model.Output
	// Total sums the per-frame modelled latency; Energy the per-frame
	// energy. Frames are priced individually (cfg.Batch is forced to 1 —
	// the batch here is materialized as real frames, so the analytic batch
	// multiplier must not double-count).
	Total   time.Duration
	EnergyJ float64
}

// RunBatch executes several real frames through the network, pricing each
// and aggregating — the streaming counterpart of the analytic batch model
// (see edgesim.Config.Batch). Frame N+1 reuses frame N's workspace buffers,
// so the loop allocates little beyond the Outputs it returns.
//
//edgepc:hotpath
func RunBatch(net Net, frames []*geom.Cloud, dev *edgesim.Device, cfg edgesim.Config) (BatchResult, error) {
	cfg.Batch = 1
	var res BatchResult
	for i, frame := range frames {
		_, rep, out, err := Run(net, frame, dev, cfg)
		if err != nil {
			return res, fmt.Errorf("pipeline: frame %d: %w", i, err)
		}
		//edgepc:lint-ignore hotpathalloc the accumulated Outputs are the function's result, one header per frame
		res.Outputs = append(res.Outputs, out)
		res.Total += rep.Total
		res.EnergyJ += rep.EnergyJ
	}
	return res, nil
}
