package pipeline

import (
	"strings"
	"testing"

	"repro/internal/model"
)

func TestArchString(t *testing.T) {
	if ArchPointNetPP.String() != "pointnet++" || ArchDGCNN.String() != "dgcnn" {
		t.Fatalf("arch names: %s, %s", ArchPointNetPP, ArchDGCNN)
	}
	if got := Arch(42).String(); got != "arch(42)" {
		t.Fatalf("unknown arch = %q", got)
	}
}

func TestNewNetUnregisteredArch(t *testing.T) {
	w := Workloads[0]
	w.Arch = Arch(42)
	_, err := NewNet(w, Baseline, Options{})
	if err == nil {
		t.Fatal("unregistered arch: want error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "arch(42)") {
		t.Fatalf("error does not name the arch: %v", err)
	}
	if !strings.Contains(msg, "dgcnn") || !strings.Contains(msg, "pointnet++") {
		t.Fatalf("error does not list registered arches: %v", err)
	}
}

func TestRegisterArchRoundTrip(t *testing.T) {
	const custom = Arch(77)
	called := false
	RegisterArch(custom, func(w Workload, kind ConfigKind, opts Options) (Net, error) {
		called = true
		if opts.BaseWidth == 0 {
			t.Error("builder must receive defaulted options")
		}
		return buildDGCNN(w, kind, opts)
	})
	defer delete(archBuilders, custom)
	w := Workloads[2] // W3, classification shape
	w.Arch = custom
	if _, err := NewNet(w, Baseline, Options{Modules: 2, BaseWidth: 4}); err != nil || !called {
		t.Fatalf("custom builder: called=%v err=%v", called, err)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("nil builder must panic")
		}
	}()
	RegisterArch(custom, nil)
}

// TestPPReuseDistanceWiring runs W1 under S+N with the opt-in PointNet++
// reuse distance and checks the generalized §5.2.3 path end to end: the SA1
// module serves projected indexes (Algo "reuse" in its span) instead of
// searching.
func TestPPReuseDistanceWiring(t *testing.T) {
	w := Workloads[0] // W1, PointNet++
	w.Points = 256
	opts := Options{BaseWidth: 4, Depth: 2, Seed: 11, PPReuseDistance: 1}
	net, err := NewNet(w, SN, opts)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := Frame(w, 7)
	if err != nil {
		t.Fatal(err)
	}
	trace, _, _, err := Run(net, frame, nil, SimConfig(w, SN, opts))
	if err != nil {
		t.Fatal(err)
	}
	reused := 0
	for _, sp := range trace.Spans {
		for _, r := range trace.SpanRecords(sp) {
			if r.Stage == model.StageNeighbor && r.Reused {
				if sp.Node != "sa1" || r.Algo != "reuse" {
					t.Fatalf("reuse at %s/%s", sp.Node, r.Algo)
				}
				reused++
			}
		}
	}
	if reused != 1 {
		t.Fatalf("reused neighbor stages = %d, want 1 (sa1)", reused)
	}
	if !SimConfig(w, SN, opts).Reuse {
		t.Fatal("SimConfig must price the reuse buffer for PP reuse runs")
	}
	if SimConfig(w, SN, Options{}).Reuse {
		t.Fatal("PP reuse is opt-in: default options must not price it")
	}
}
