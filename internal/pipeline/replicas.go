package pipeline

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/tensor"
)

// Replicas constructs n networks for the same workload/configuration whose
// trainable parameters share backing storage (nn.ShareParams): replica 0 is
// built normally and every further replica's Param.Value matrices are
// re-pointed at replica 0's. The weights therefore exist once per process
// while everything mutable per frame — tensor workspace, layer caches,
// DGCNN reuse cache, BatchNorm running statistics — stays private per
// replica, which is exactly the split concurrent serving needs: one replica
// per worker goroutine, zero cross-worker synchronization on the hot path.
//
// Loading trained weights into replica 0 (nn.LoadParams writes in place)
// updates every replica; do it before serving starts. Training any replica
// while others serve would race on the shared values — replicas are for
// inference.
func Replicas(w Workload, kind ConfigKind, opts Options, n int) ([]Net, error) {
	if n < 1 {
		return nil, fmt.Errorf("pipeline: need at least 1 replica, got %d", n)
	}
	nets := make([]Net, n)
	for i := range nets {
		net, err := Build(w, kind, opts)
		if err != nil {
			return nil, fmt.Errorf("pipeline: replica %d: %w", i, err)
		}
		if i > 0 {
			if err := nn.ShareParams(net.Params(), nets[0].Params()); err != nil {
				return nil, fmt.Errorf("pipeline: replica %d: %w", i, err)
			}
		}
		nets[i] = net
	}
	return nets, nil
}

// RebuildReplica constructs a fresh net for the workload/configuration and
// re-points its parameters at ref's (nn.ShareParams) — the serve-layer
// quarantine hook: when a worker's replica panics mid-frame, its workspace
// and caches can no longer be trusted, so the engine swaps in a replica
// rebuilt from the shared weights. Safe to call concurrently from several
// workers; ref's parameters are only read.
func RebuildReplica(ref Net, w Workload, kind ConfigKind, opts Options) (Net, error) {
	if ref == nil {
		return nil, fmt.Errorf("pipeline: rebuild needs a reference net")
	}
	net, err := Build(w, kind, opts)
	if err != nil {
		return nil, fmt.Errorf("pipeline: rebuild: %w", err)
	}
	if err := nn.ShareParams(net.Params(), ref.Params()); err != nil {
		return nil, fmt.Errorf("pipeline: rebuild: %w", err)
	}
	return net, nil
}

// MaxDegradeTiers is the depth of the ladder DegradeTiers can derive.
const MaxDegradeTiers = 5

// DegradeTiers derives up to MaxDegradeTiers option presets for serve's
// degradation ladder from a base configuration, exploiting the paper's own
// accuracy/latency knobs (§5, Fig. 15) plus the bucketed sampler's quality
// knob and the quantized compute backend. The steps are cumulative:
//
//	tier 1: shrink the Morton neighbor window W to max(k, W/2)
//	tier 2: + drop feature compute to the int8 backend (quantized matmuls,
//	        dequantized at stage boundaries — a pure arithmetic cut that
//	        keeps the sampling/search fidelity intact, so it slots in
//	        before the rungs that change which points are looked at)
//	tier 3: + step exact-FPS sampling sites onto bucketed pruned FPS at
//	        quality 0.5 (half refinement picks, half stride seeds). Sites
//	        already on the cheaper Morton stride are untouched, so the rung
//	        only ever removes cost.
//	tier 4: + halve the sample budget (PointNet++ SA SampleFrac; floor 0.05)
//	tier 5: + raise the neighbor-reuse distance by one layer
//
// The knobs never change parameter shapes, so every tier's replicas share
// weights with the base net (TieredReplicas) — the int8 rung quantizes
// per-replica copies of the shared weights at first use, leaving the shared
// float32 values untouched. Knobs a workload doesn't use (W under the
// baseline config, SampleFrac on DGCNN) degrade gracefully to the previous
// tier's cost.
func DegradeTiers(w Workload, opts Options, n int) []Options {
	if n < 1 {
		return nil
	}
	if n > MaxDegradeTiers {
		n = MaxDegradeTiers
	}
	opts.defaults(w)
	tiers := make([]Options, 0, n)
	cur := opts
	cur.WindowW = cur.WindowW / 2
	if cur.WindowW < w.K {
		cur.WindowW = w.K
	}
	tiers = append(tiers, cur)
	if len(tiers) < n {
		cur.Backend = tensor.BackendInt8
		tiers = append(tiers, cur)
	}
	if len(tiers) < n {
		cur.SampleArch = sample.ArchBucketFPS
		cur.SampleQuality = 0.5
		tiers = append(tiers, cur)
	}
	if len(tiers) < n {
		cur.SampleFrac = cur.SampleFrac / 2
		if cur.SampleFrac < 0.05 {
			cur.SampleFrac = 0.05
		}
		tiers = append(tiers, cur)
	}
	if len(tiers) < n {
		cur.ReuseDistance++
		cur.PPReuseDistance++
		tiers = append(tiers, cur)
	}
	return tiers
}

// FleetReplicas builds the replica tensor for a multi-engine fleet:
// result[e] is a TieredReplicas-shaped matrix (row 0 full fidelity, row 1+i
// tier i) for engine e, and every net across every engine, tier and worker
// shares one set of trainable parameters with result[0][0][0]. The weights
// therefore exist once per process however wide the fleet scales — the
// construction serve.NewRouter expects: one serve.New engine per
// result[e], wired into one Router.
func FleetReplicas(w Workload, kind ConfigKind, opts Options, engines, workers int, tiers []Options) ([][][]Net, error) {
	if engines < 1 {
		return nil, fmt.Errorf("pipeline: need at least 1 engine, got %d", engines)
	}
	fleet := make([][][]Net, engines)
	rows, err := TieredReplicas(w, kind, opts, workers, tiers)
	if err != nil {
		return nil, err
	}
	fleet[0] = rows
	ref := rows[0][0]
	for e := 1; e < engines; e++ {
		rows := make([][]Net, 1+len(tiers))
		for ti := range rows {
			topt := opts
			if ti > 0 {
				topt = tiers[ti-1]
			}
			row := make([]Net, workers)
			for wi := range row {
				net, err := RebuildReplica(ref, w, kind, topt)
				if err != nil {
					return nil, fmt.Errorf("pipeline: engine %d tier %d replica %d: %w", e, ti, wi, err)
				}
				row[wi] = net
			}
			rows[ti] = row
		}
		fleet[e] = rows
	}
	return fleet, nil
}

// TieredReplicas builds the replica matrix for a degraded serving ladder:
// row 0 holds workers full-fidelity replicas of the base options, and row
// 1+i holds workers replicas built with tiers[i] — every net in every row
// sharing one set of trainable parameters with the base replica. serve wires
// row 0 into New and the remaining rows into Config.Degrade.
func TieredReplicas(w Workload, kind ConfigKind, opts Options, workers int, tiers []Options) ([][]Net, error) {
	base, err := Replicas(w, kind, opts, workers)
	if err != nil {
		return nil, err
	}
	rows := make([][]Net, 1, 1+len(tiers))
	rows[0] = base
	for ti, topt := range tiers {
		row := make([]Net, workers)
		for i := range row {
			net, err := RebuildReplica(base[0], w, kind, topt)
			if err != nil {
				return nil, fmt.Errorf("pipeline: tier %d replica %d: %w", ti+1, i, err)
			}
			row[i] = net
		}
		rows = append(rows, row)
	}
	return rows, nil
}
