package pipeline

import (
	"fmt"

	"repro/internal/nn"
)

// Replicas constructs n networks for the same workload/configuration whose
// trainable parameters share backing storage (nn.ShareParams): replica 0 is
// built normally and every further replica's Param.Value matrices are
// re-pointed at replica 0's. The weights therefore exist once per process
// while everything mutable per frame — tensor workspace, layer caches,
// DGCNN reuse cache, BatchNorm running statistics — stays private per
// replica, which is exactly the split concurrent serving needs: one replica
// per worker goroutine, zero cross-worker synchronization on the hot path.
//
// Loading trained weights into replica 0 (nn.LoadParams writes in place)
// updates every replica; do it before serving starts. Training any replica
// while others serve would race on the shared values — replicas are for
// inference.
func Replicas(w Workload, kind ConfigKind, opts Options, n int) ([]Net, error) {
	if n < 1 {
		return nil, fmt.Errorf("pipeline: need at least 1 replica, got %d", n)
	}
	nets := make([]Net, n)
	for i := range nets {
		net, err := Build(w, kind, opts)
		if err != nil {
			return nil, fmt.Errorf("pipeline: replica %d: %w", i, err)
		}
		if i > 0 {
			if err := nn.ShareParams(net.Params(), nets[0].Params()); err != nil {
				return nil, fmt.Errorf("pipeline: replica %d: %w", i, err)
			}
		}
		nets[i] = net
	}
	return nets, nil
}
