package pipeline

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/model"
	"repro/internal/nn"
)

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	w := tinyWorkload()
	ref, err := Build(w, SN, Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := SaveCheckpoint(path, ref); err != nil {
		t.Fatal(err)
	}
	got, err := RebuildReplicaFromCheckpoint(path, w, SN, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rp, gp := ref.Params(), got.Params()
	if len(rp) != len(gp) || len(rp) == 0 {
		t.Fatalf("param count %d vs %d", len(rp), len(gp))
	}
	for i := range rp {
		if rp[i].Value == gp[i].Value {
			t.Fatalf("param %d (%s) aliases the reference: checkpoint restore must be private", i, rp[i].Name)
		}
		for j := range rp[i].Value.Data {
			if math.Float32bits(rp[i].Value.Data[j]) != math.Float32bits(gp[i].Value.Data[j]) {
				t.Fatalf("param %s[%d] differs after restore", rp[i].Name, j)
			}
		}
	}
	// The restored replica must actually serve.
	frame, err := Frame(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunInto(got, frame, &model.Trace{}, nil, SimConfig(w, SN, Options{})); err != nil {
		t.Fatalf("restored replica forward: %v", err)
	}
}

func TestCheckpointRestoreDetectsCorruption(t *testing.T) {
	w := tinyWorkload()
	ref, err := Build(w, SN, Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := SaveCheckpoint(path, ref); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Bit flip mid-file: restore must fail with the typed corruption error.
	data[len(data)/2] ^= 0x04
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RebuildReplicaFromCheckpoint(path, w, SN, Options{}); !errors.Is(err, nn.ErrCheckpointCorrupt) && !errors.Is(err, nn.ErrCheckpointTorn) {
		t.Fatalf("corrupt checkpoint: got %v", err)
	}
	// Truncation — the torn-write signature — must be typed too.
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RebuildReplicaFromCheckpoint(path, w, SN, Options{}); !errors.Is(err, nn.ErrCheckpointCorrupt) && !errors.Is(err, nn.ErrCheckpointTorn) {
		t.Fatalf("torn checkpoint: got %v", err)
	}
	// LoadCheckpoint's all-or-nothing contract: a failing load leaves the
	// destination net bit-identical.
	dst, err := Build(w, SN, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := make([][]float32, 0, len(dst.Params()))
	for _, p := range dst.Params() {
		before = append(before, append([]float32{}, p.Value.Data...))
	}
	if err := LoadCheckpoint(path, dst); err == nil {
		t.Fatal("torn checkpoint accepted")
	}
	for i, p := range dst.Params() {
		for j := range p.Value.Data {
			if math.Float32bits(p.Value.Data[j]) != math.Float32bits(before[i][j]) {
				t.Fatalf("failed load modified %s[%d]", p.Name, j)
			}
		}
	}
}
