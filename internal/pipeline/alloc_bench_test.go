package pipeline

import (
	"testing"

	"repro/internal/edgesim"
	"repro/internal/model"
)

// Per-frame allocation benchmarks for the inference hot path. Run with
// -benchmem (scripts/bench_hotpath.sh does): the allocs/op column is the
// regression metric — steady-state frames reuse the previous frame's
// workspace buffers, so it must stay small and independent of network depth.

func benchFrameAllocs(b *testing.B, arch Arch) {
	b.Helper()
	w := Workload{
		ID: "bench", Dataset: "S3DIS", Points: 512, Batch: 8,
		Arch: arch, Task: model.TaskSegmentation, Classes: 8, K: 8,
	}
	opts := Options{BaseWidth: 8, Depth: 3, Modules: 3, Seed: 9}
	net, err := Build(w, Baseline, opts)
	if err != nil {
		b.Fatal(err)
	}
	frame, err := Frame(w, 9)
	if err != nil {
		b.Fatal(err)
	}
	dev := edgesim.JetsonAGXXavier()
	cfg := SimConfig(w, Baseline, opts)
	// Warm-up frame: populates the workspace so the loop below measures the
	// steady state.
	if _, _, _, err := Run(net, frame, dev, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := Run(net, frame, dev, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineFrameAllocsPointNetPP(b *testing.B) {
	benchFrameAllocs(b, ArchPointNetPP)
}

func BenchmarkPipelineFrameAllocsDGCNN(b *testing.B) {
	benchFrameAllocs(b, ArchDGCNN)
}
