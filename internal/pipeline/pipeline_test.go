package pipeline

import (
	"testing"

	"repro/internal/edgesim"
	"repro/internal/geom"
	"repro/internal/model"
)

func TestWorkloadTable(t *testing.T) {
	if len(Workloads) != 6 {
		t.Fatalf("Table 1 has 6 workloads, got %d", len(Workloads))
	}
	// Spot-check the Table 1 rows.
	w1, err := WorkloadByID("W1")
	if err != nil {
		t.Fatal(err)
	}
	if w1.Points != 8192 || w1.Batch != 32 || w1.Arch != ArchPointNetPP {
		t.Fatalf("W1 = %+v", w1)
	}
	w3, _ := WorkloadByID("W3")
	if w3.Points != 1024 || w3.Task != model.TaskClassification {
		t.Fatalf("W3 = %+v", w3)
	}
	if _, err := WorkloadByID("W9"); err == nil {
		t.Fatal("unknown workload: want error")
	}
}

// smallOpts shrinks the pipeline for test speed while keeping the structure.
func smallOpts() Options {
	return Options{BaseWidth: 4, Depth: 2, Modules: 3, Seed: 1}
}

func smallWorkload(w Workload) Workload {
	w.Points = 256
	w.Batch = 2
	return w
}

func TestBuildAndRunAllWorkloadsAllConfigs(t *testing.T) {
	dev := edgesim.JetsonAGXXavier()
	for _, wl := range Workloads {
		w := smallWorkload(wl)
		cloud, err := Frame(w, 7)
		if err != nil {
			t.Fatalf("%s: frame: %v", w.ID, err)
		}
		for _, kind := range []ConfigKind{Baseline, SN, SNF} {
			net, err := Build(w, kind, smallOpts())
			if err != nil {
				t.Fatalf("%s/%s: build: %v", w.ID, kind, err)
			}
			trace, rep, out, err := Run(net, cloud, dev, SimConfig(w, kind, smallOpts()))
			if err != nil {
				t.Fatalf("%s/%s: run: %v", w.ID, kind, err)
			}
			if len(trace.Records) == 0 || rep.Total <= 0 {
				t.Fatalf("%s/%s: empty trace or zero latency", w.ID, kind)
			}
			wantRows := cloud.Len()
			if w.Task == model.TaskClassification {
				wantRows = 1
			}
			if out.Logits.Rows != wantRows {
				t.Fatalf("%s/%s: logits rows %d", w.ID, kind, out.Logits.Rows)
			}
		}
	}
}

func TestSNFasterThanBaseline(t *testing.T) {
	// The headline direction of Fig. 13a/b at full workload scale (priced
	// by the cost model from real stage traces at reduced width).
	dev := edgesim.JetsonAGXXavier()
	w := smallWorkload(Workloads[0]) // W1 shape, shrunk
	w.Points = 1024
	cloud, err := Frame(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Build(w, Baseline, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	sn, err := Build(w, SN, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	_, repB, _, err := Run(base, cloud, dev, SimConfig(w, Baseline, smallOpts()))
	if err != nil {
		t.Fatal(err)
	}
	_, repS, _, err := Run(sn, cloud, dev, SimConfig(w, SN, smallOpts()))
	if err != nil {
		t.Fatal(err)
	}
	if repS.SampleNeighbor >= repB.SampleNeighbor {
		t.Fatalf("S+N sample+NS %v not faster than baseline %v", repS.SampleNeighbor, repB.SampleNeighbor)
	}
	if repS.Total >= repB.Total {
		t.Fatalf("S+N total %v not faster than baseline %v", repS.Total, repB.Total)
	}
	if repS.EnergyJ >= repB.EnergyJ {
		t.Fatalf("S+N energy %v J not lower than baseline %v J", repS.EnergyJ, repB.EnergyJ)
	}
}

func TestSNFBeatsOrMatchesSN(t *testing.T) {
	dev := edgesim.JetsonAGXXavier()
	w := smallWorkload(Workloads[5]) // W6: DGCNN(s), the paper's best +F case
	opts := smallOpts()
	opts.BaseWidth = 32 // wide enough for tensor cores to engage
	cloud, err := Frame(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	sn, err := Build(w, SN, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, repSN, _, err := Run(sn, cloud, dev, SimConfig(w, SN, opts))
	if err != nil {
		t.Fatal(err)
	}
	snf, err := Build(w, SNF, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, repSNF, _, err := Run(snf, cloud, dev, SimConfig(w, SNF, opts))
	if err != nil {
		t.Fatal(err)
	}
	if repSNF.Total > repSN.Total {
		t.Fatalf("S+N+F (%v) slower than S+N (%v)", repSNF.Total, repSN.Total)
	}
}

func TestFrameDatasets(t *testing.T) {
	for _, wl := range Workloads {
		w := smallWorkload(wl)
		cloud, err := Frame(w, 1)
		if err != nil {
			t.Fatalf("%s: %v", w.ID, err)
		}
		if cloud.Len() < w.Points {
			t.Fatalf("%s: %d points, want ≥ %d", w.ID, cloud.Len(), w.Points)
		}
		if w.Task == model.TaskSegmentation && cloud.Labels == nil {
			t.Fatalf("%s: segmentation frame lacks labels", w.ID)
		}
	}
	if _, err := Frame(Workload{Dataset: "nope"}, 1); err == nil {
		t.Fatal("unknown dataset: want error")
	}
}

func TestSimConfig(t *testing.T) {
	w, _ := WorkloadByID("W6")
	cfg := SimConfig(w, SNF, Options{})
	if !cfg.TensorCores || !cfg.Reuse || cfg.Batch != 14 {
		t.Fatalf("W6 SNF sim config = %+v", cfg)
	}
	cfg = SimConfig(w, Baseline, Options{})
	if cfg.TensorCores || cfg.Reuse {
		t.Fatalf("baseline sim config = %+v", cfg)
	}
	w1, _ := WorkloadByID("W1")
	cfg = SimConfig(w1, SN, Options{})
	if cfg.Reuse {
		t.Fatal("PointNet++ must not report reuse memory pressure")
	}
}

func TestDelayedAggregationTransform(t *testing.T) {
	tr := &model.Trace{}
	tr.Add(model.StageRecord{Stage: model.StageNeighbor, Layer: 0, Algo: "ball-query", N: 1024, Q: 256, K: 8})
	tr.Add(model.StageRecord{Stage: model.StageGroup, Layer: 0, Algo: "gather", Q: 256, K: 8, CIn: 16})
	tr.Add(model.StageRecord{Stage: model.StageFeature, Layer: 0, Algo: "shared-mlp", Q: 256 * 8, CIn: 16, COut: 64})
	da := DelayedAggregation(tr)
	if len(da.Records) != 3 {
		t.Fatalf("records = %d", len(da.Records))
	}
	var feat, group model.StageRecord
	for _, r := range da.Records {
		switch r.Stage {
		case model.StageFeature:
			feat = r
		case model.StageGroup:
			group = r
		}
	}
	if feat.Q != 256 {
		t.Fatalf("DA feature rows = %d, want 256 (per point, not per grouped row)", feat.Q)
	}
	if group.CIn != 64 {
		t.Fatalf("DA grouping width = %d, want the MLP output width 64", group.CIn)
	}
	// Shape check against §6.4: FC gets faster, grouping gets slower.
	dev := edgesim.JetsonAGXXavier()
	cfg := edgesim.Config{Batch: 32}
	base := dev.PriceTrace(tr, cfg)
	dar := dev.PriceTrace(da, cfg)
	var baseFeat, daFeat, baseGroup, daGroup float64
	for i := range base.Records {
		switch base.Records[i].Stage {
		case model.StageFeature:
			baseFeat += base.Records[i].Latency.Seconds()
			daFeat += dar.Records[i].Latency.Seconds()
		case model.StageGroup:
			baseGroup += base.Records[i].Latency.Seconds()
			daGroup += dar.Records[i].Latency.Seconds()
		}
	}
	if daFeat >= baseFeat {
		t.Fatalf("DA did not speed up feature compute: %v → %v", baseFeat, daFeat)
	}
	if daGroup <= baseGroup {
		t.Fatalf("DA did not slow down grouping: %v → %v", baseGroup, daGroup)
	}
}

func TestRunBatch(t *testing.T) {
	dev := edgesim.JetsonAGXXavier()
	w := smallWorkload(Workloads[2]) // DGCNN classification
	net, err := Build(w, SN, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	var frames []*geom.Cloud
	for i := int64(0); i < 3; i++ {
		f, err := Frame(w, 10+i)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	// Batch in cfg must be ignored (forced to 1): the frames are real.
	res, err := RunBatch(net, frames, dev, edgesim.Config{Batch: 99})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 3 || res.Total <= 0 || res.EnergyJ <= 0 {
		t.Fatalf("batch result %+v", res)
	}
	// Per-frame total must equal a single-frame run ×3 (same workload
	// shape, deterministic model).
	_, rep, _, err := Run(net, frames[0], dev, edgesim.Config{Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total < 2*rep.Total || res.Total > 4*rep.Total {
		t.Fatalf("aggregate %v vs single %v", res.Total, rep.Total)
	}
}

func TestConfigKindString(t *testing.T) {
	if Baseline.String() != "baseline" || SN.String() != "S+N" || SNF.String() != "S+N+F" {
		t.Fatal("config names wrong")
	}
	if ConfigKind(9).String() != "unknown" {
		t.Fatal("unknown config name")
	}
}
