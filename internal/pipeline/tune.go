package pipeline

import (
	"fmt"
	"time"

	"repro/internal/edgesim"
	"repro/internal/model"
)

// Adaptive window selection (§5.2.3: "the user can adaptively select proper
// search window size to accommodate the application requirement" and §6.3:
// accuracy-sensitive applications use a larger window, throughput-demanding
// ones a smaller one).

// TuneWindow returns the largest search window W (a multiple of the
// workload's k, up to maxMult·k) whose modelled sample+neighbor-search
// latency fits within budget on the device, together with that latency.
// It returns an error when even the pure index pick (W = k) misses the
// budget — the caller must then lower the point count or batch size.
func TuneWindow(dev *edgesim.Device, w Workload, opts Options, budget time.Duration, maxMult int) (int, time.Duration, error) {
	opts.defaults(w)
	if maxMult < 1 {
		maxMult = 8
	}
	frame, err := Frame(w, opts.Seed)
	if err != nil {
		return 0, 0, err
	}
	best := 0
	var bestLat time.Duration
	for mult := 1; mult <= maxMult; mult++ {
		o := opts
		o.WindowW = mult * w.K
		net, err := Build(w, SN, o)
		if err != nil {
			return 0, 0, err
		}
		trace := &model.Trace{}
		if _, err := net.Forward(frame, trace, false); err != nil {
			return 0, 0, err
		}
		rep := dev.PriceTrace(trace, SimConfig(w, SN, o))
		if rep.SampleNeighbor <= budget {
			best = o.WindowW
			bestLat = rep.SampleNeighbor
			continue
		}
		break
	}
	if best == 0 {
		return 0, 0, fmt.Errorf("pipeline: no window fits %v for %s (pure pick already exceeds the budget)", budget, w.ID)
	}
	return best, bestLat, nil
}
