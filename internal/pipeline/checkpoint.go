package pipeline

import (
	"fmt"

	"repro/internal/nn"
)

// SaveCheckpoint writes net's trainable parameters to path with the
// crash-safe checkpoint discipline (nn.WriteCheckpoint: per-parameter and
// whole-file CRC-32, temp file + fsync + rename). Safe to call between
// frames; the parameters are only read.
func SaveCheckpoint(path string, net Net) error {
	if net == nil {
		return fmt.Errorf("pipeline: checkpoint needs a net")
	}
	return nn.WriteCheckpoint(path, net.Params())
}

// LoadCheckpoint restores net's parameters from the checkpoint at path.
// The load is all-or-nothing: a corrupt or torn checkpoint (typed
// nn.ErrCheckpointCorrupt / nn.ErrCheckpointTorn) leaves the net untouched.
// Loading into replica 0 of a weight-sharing replica set (pipeline.Replicas)
// restores every replica at once — do it before serving starts.
func LoadCheckpoint(path string, net Net) error {
	if net == nil {
		return fmt.Errorf("pipeline: checkpoint needs a net")
	}
	return nn.ReadCheckpoint(path, net.Params())
}

// RebuildReplicaFromCheckpoint is the disaster-recovery sibling of
// RebuildReplica: instead of re-pointing the fresh net at in-memory shared
// weights — useless when the weights themselves are the casualty — it builds
// a fully private net and restores its parameters from the last good
// on-disk snapshot. The returned net shares nothing with the running fleet,
// so it is also the seed for rebuilding a replica set from scratch
// (Replicas around it, or nn.ShareParams against its params).
func RebuildReplicaFromCheckpoint(path string, w Workload, kind ConfigKind, opts Options) (Net, error) {
	net, err := Build(w, kind, opts)
	if err != nil {
		return nil, fmt.Errorf("pipeline: rebuild from checkpoint: %w", err)
	}
	if err := nn.ReadCheckpoint(path, net.Params()); err != nil {
		return nil, fmt.Errorf("pipeline: rebuild from checkpoint: %w", err)
	}
	return net, nil
}
