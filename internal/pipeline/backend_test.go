package pipeline

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/edgesim"
	"repro/internal/model"
	"repro/internal/tensor"
)

// Logit tolerances for the non-reference backends against the naive kernels
// on the golden workloads.
//
// The blocked backend preserves the naive per-cell accumulation order (one
// accumulator per output cell, k ascending), so it is bit-identical except
// for ±0 edge cases; 1e-5 is the documented contract, matching the tensor
// property tests.
//
// The int8 bounds are empirical across all six Table-1 workloads at golden
// scale in both configs (logit magnitudes are O(5–10) on these nets):
//
//   - PointNet++ (W1–W3): worst observed max-|Δlogit| ≈ 0.12 — 8-bit
//     per-channel quantization holds logits to ~1e-1.
//   - DGCNN (W4–W6): worst observed ≈ 2.5. The larger drift is structural,
//     not a bug: the EC edge features concatenate [center, neighbor−center],
//     and the difference half is small against the per-row activation scale
//     set by the absolute coordinates, so its relative quantization error is
//     high and compounds through the stacked EC modules.
//
// Both tolerances give ~2× headroom without masking a real regression (a
// broken scale shows up as O(10)–O(100) drift). The metric that actually
// matters — classification accuracy on trained weights — is pinned
// separately, to ≤2pp, by the int8 accuracy-envelope test in internal/train.
const (
	blockedLogitTol = 1e-5
	int8LogitTolPP  = 0.25
	int8LogitTolDGC = 4.0
)

// TestBackendNamesPinned pins the backend registry the serve ladder and the
// cmd -backend flags depend on: exactly these three, in sorted order.
func TestBackendNamesPinned(t *testing.T) {
	got := tensor.BackendNames()
	want := []string{tensor.BackendBlocked, tensor.BackendInt8, tensor.BackendNaive}
	if len(got) != len(want) {
		t.Fatalf("BackendNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BackendNames() = %v, want %v", got, want)
		}
	}
}

// TestBuildRejectsUnknownBackend pins the descriptive error the cmd flags
// surface for a typo'd -backend value.
func TestBuildRejectsUnknownBackend(t *testing.T) {
	w := goldenScale(Workloads[0])
	opts := goldenOptions()
	opts.Backend = "fp16"
	_, err := Build(w, Baseline, opts)
	if err == nil {
		t.Fatal("unknown backend accepted at Build")
	}
	for _, frag := range []string{"fp16", "registered:", tensor.BackendNaive, tensor.BackendBlocked, tensor.BackendInt8} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("error %q does not mention %q", err, frag)
		}
	}
}

// maxLogitDiff returns the largest element-wise |a−b| between two matrices of
// identical shape.
func maxLogitDiff(t *testing.T, a, b *tensor.Matrix) float64 {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols {
		t.Fatalf("logit shape %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	var max float64
	for i, v := range a.Data {
		d := float64(v - b.Data[i])
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}

// TestGoldenBackendParity runs every golden workload × config under each
// non-reference backend and compares eval logits against the naive build.
// Deterministic weight init from Options.Seed means two nets built with the
// same options hold identical weights, so any logit difference is purely the
// backend's kernels. Together with TestGoldenLogits (which pins the naive
// path to fixtures bit-for-bit) this is the backend-parity gate CI runs.
func TestGoldenBackendParity(t *testing.T) {
	for _, w := range Workloads {
		for _, kind := range []ConfigKind{Baseline, SN} {
			w, kind := goldenScale(w), kind
			int8Tol := int8LogitTolPP
			if w.Arch == ArchDGCNN {
				int8Tol = int8LogitTolDGC
			}
			tols := map[string]float64{
				tensor.BackendBlocked: blockedLogitTol,
				tensor.BackendInt8:    int8Tol,
			}
			t.Run(fmt.Sprintf("%s_%s", w.ID, kind), func(t *testing.T) {
				ref, err := Build(w, kind, goldenOptions())
				if err != nil {
					t.Fatal(err)
				}
				cloud, err := Frame(w, goldenFrameSeed)
				if err != nil {
					t.Fatal(err)
				}
				refOut, err := ref.Forward(cloud, nil, false)
				if err != nil {
					t.Fatal(err)
				}
				for _, name := range []string{tensor.BackendBlocked, tensor.BackendInt8} {
					opts := goldenOptions()
					opts.Backend = name
					net, err := Build(w, kind, opts)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					out, err := net.Forward(cloud, nil, false)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					d := maxLogitDiff(t, refOut.Logits, out.Logits)
					t.Logf("%s: max |Δlogit| = %g", name, d)
					if d > tols[name] {
						t.Fatalf("%s diverged from naive by %g (tolerance %g)", name, d, tols[name])
					}
					// Steady state: a second frame must not drift (the int8
					// weight cache and activation scratch are now warm).
					out2, err := net.Forward(cloud, nil, false)
					if err != nil {
						t.Fatalf("%s second frame: %v", name, err)
					}
					if d2 := maxLogitDiff(t, out.Logits, out2.Logits); d2 != 0 {
						t.Fatalf("%s: second frame drifted by %g from the first", name, d2)
					}
				}
			})
		}
	}
}

// Per-backend frame benchmarks on the Fig. 3 hot path — the numbers
// scripts/bench_backend.sh commits to BENCH_backend.json.

func benchFrameBackend(b *testing.B, backend string) {
	b.Helper()
	w := Workload{
		ID: "bench", Dataset: "S3DIS", Points: 512, Batch: 8,
		Arch: ArchPointNetPP, Task: model.TaskSegmentation, Classes: 8, K: 8,
	}
	opts := Options{BaseWidth: 8, Depth: 3, Modules: 3, Seed: 9, Backend: backend}
	net, err := Build(w, Baseline, opts)
	if err != nil {
		b.Fatal(err)
	}
	frame, err := Frame(w, 9)
	if err != nil {
		b.Fatal(err)
	}
	dev := edgesim.JetsonAGXXavier()
	cfg := SimConfig(w, Baseline, opts)
	if _, _, _, err := Run(net, frame, dev, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := Run(net, frame, dev, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineFrameBackendNaive(b *testing.B)   { benchFrameBackend(b, tensor.BackendNaive) }
func BenchmarkPipelineFrameBackendBlocked(b *testing.B) { benchFrameBackend(b, tensor.BackendBlocked) }
func BenchmarkPipelineFrameBackendInt8(b *testing.B)    { benchFrameBackend(b, tensor.BackendInt8) }
