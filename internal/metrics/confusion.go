package metrics

import (
	"fmt"
	"strings"
)

// Confusion is a class-by-class confusion matrix for segmentation /
// classification evaluation: rows are ground-truth classes, columns
// predictions.
type Confusion struct {
	Classes int
	Counts  []int64 // Classes × Classes, row-major
}

// NewConfusion allocates a matrix for the given class count.
func NewConfusion(classes int) *Confusion {
	return &Confusion{Classes: classes, Counts: make([]int64, classes*classes)}
}

// Add accumulates predictions against truth; labels < 0 in truth are
// ignored.
func (m *Confusion) Add(pred, truth []int32) error {
	if len(pred) != len(truth) {
		return fmt.Errorf("metrics: %d predictions for %d labels", len(pred), len(truth))
	}
	for i, p := range pred {
		t := truth[i]
		if t < 0 {
			continue
		}
		if p < 0 || int(p) >= m.Classes || int(t) >= m.Classes {
			return fmt.Errorf("metrics: label out of range (pred=%d truth=%d classes=%d)", p, t, m.Classes)
		}
		m.Counts[int(t)*m.Classes+int(p)]++
	}
	return nil
}

// At returns the count of truth-class t predicted as class p.
func (m *Confusion) At(t, p int) int64 { return m.Counts[t*m.Classes+p] }

// Total returns the number of accumulated (non-ignored) samples.
func (m *Confusion) Total() int64 {
	var s int64
	for _, c := range m.Counts {
		s += c
	}
	return s
}

// Accuracy returns the overall accuracy.
func (m *Confusion) Accuracy() float64 {
	total := m.Total()
	if total == 0 {
		return 0
	}
	var diag int64
	for c := 0; c < m.Classes; c++ {
		diag += m.At(c, c)
	}
	return float64(diag) / float64(total)
}

// IoU returns class c's intersection-over-union and whether the class
// appeared at all (in truth or prediction).
func (m *Confusion) IoU(c int) (float64, bool) {
	inter := m.At(c, c)
	var union int64
	for j := 0; j < m.Classes; j++ {
		union += m.At(c, j) // false negatives + tp
		if j != c {
			union += m.At(j, c) // false positives
		}
	}
	if union == 0 {
		return 0, false
	}
	return float64(inter) / float64(union), true
}

// MeanIoU averages IoU over classes present in the data.
func (m *Confusion) MeanIoU() float64 {
	var sum float64
	n := 0
	for c := 0; c < m.Classes; c++ {
		if iou, ok := m.IoU(c); ok {
			sum += iou
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// String renders the matrix with per-class IoU, suitable for experiment
// logs.
func (m *Confusion) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "confusion (%d classes, %d samples, acc %.3f, mIoU %.3f)\n",
		m.Classes, m.Total(), m.Accuracy(), m.MeanIoU())
	for t := 0; t < m.Classes; t++ {
		fmt.Fprintf(&b, "  T%-2d:", t)
		for p := 0; p < m.Classes; p++ {
			fmt.Fprintf(&b, " %6d", m.At(t, p))
		}
		if iou, ok := m.IoU(t); ok {
			fmt.Fprintf(&b, "  IoU %.3f", iou)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
