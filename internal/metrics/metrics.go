// Package metrics provides the evaluation metrics of the paper's
// experiments: classification accuracy and mean IoU for model quality,
// coverage radius and chamfer distance for sampling quality (the
// quantitative form of Fig. 5), and summary statistics.
package metrics

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// MeanIoU computes the class-averaged intersection-over-union of predicted
// vs. true labels. Classes absent from both prediction and ground truth are
// skipped.
func MeanIoU(pred, truth []int32, classes int) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("metrics: %d predictions for %d labels", len(pred), len(truth))
	}
	inter := make([]int, classes)
	union := make([]int, classes)
	for i, p := range pred {
		t := truth[i]
		if t < 0 {
			continue
		}
		if int(p) >= classes || int(t) >= classes || p < 0 {
			return 0, fmt.Errorf("metrics: label out of range (pred=%d truth=%d classes=%d)", p, t, classes)
		}
		if p == t {
			inter[p]++
			union[p]++
		} else {
			union[p]++
			union[t]++
		}
	}
	var sum float64
	seen := 0
	for c := 0; c < classes; c++ {
		if union[c] == 0 {
			continue
		}
		seen++
		sum += float64(inter[c]) / float64(union[c])
	}
	if seen == 0 {
		return 0, nil
	}
	return sum / float64(seen), nil
}

// OverallAccuracy is the fraction of points with the correct label (labels
// < 0 ignored).
func OverallAccuracy(pred, truth []int32) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("metrics: %d predictions for %d labels", len(pred), len(truth))
	}
	correct, counted := 0, 0
	for i, p := range pred {
		if truth[i] < 0 {
			continue
		}
		counted++
		if p == truth[i] {
			correct++
		}
	}
	if counted == 0 {
		return 0, nil
	}
	return float64(correct) / float64(counted), nil
}

// CoverageRadius measures sampling quality: the mean (and max) distance from
// every original point to its nearest sampled point. FPS minimizes the max
// (it is a greedy k-center); a good approximation should track it closely.
// This quantifies what Fig. 5 shows visually.
func CoverageRadius(cloud []geom.Point3, sampled []int) (mean, max float64, err error) {
	if len(sampled) == 0 {
		return 0, 0, fmt.Errorf("metrics: no sampled points")
	}
	pts := make([]geom.Point3, len(sampled))
	for i, s := range sampled {
		if s < 0 || s >= len(cloud) {
			return 0, 0, fmt.Errorf("metrics: sample index %d out of %d", s, len(cloud))
		}
		pts[i] = cloud[s]
	}
	var sum float64
	for _, p := range cloud {
		best := math.Inf(1)
		for _, q := range pts {
			if d := p.DistSq(q); d < best {
				best = d
			}
		}
		d := math.Sqrt(best)
		sum += d
		if d > max {
			max = d
		}
	}
	return sum / float64(len(cloud)), max, nil
}

// CoverageStats returns the full distribution of every original point's
// distance to its nearest sampled point. The standard deviation quantifies
// the paper's Fig. 5b "uneven distribution": density-biased samplers leave
// some regions much farther from any sample than others.
func CoverageStats(cloud []geom.Point3, sampled []int) (Summary, error) {
	if len(sampled) == 0 {
		return Summary{}, fmt.Errorf("metrics: no sampled points")
	}
	pts := make([]geom.Point3, len(sampled))
	for i, s := range sampled {
		if s < 0 || s >= len(cloud) {
			return Summary{}, fmt.Errorf("metrics: sample index %d out of %d", s, len(cloud))
		}
		pts[i] = cloud[s]
	}
	dists := make([]float64, len(cloud))
	for i, p := range cloud {
		best := math.Inf(1)
		for _, q := range pts {
			if d := p.DistSq(q); d < best {
				best = d
			}
		}
		dists[i] = math.Sqrt(best)
	}
	return Summarize(dists), nil
}

// ChamferDistance computes the symmetric chamfer distance between two point
// sets (mean nearest-neighbor distance in both directions). Used to compare
// a sampled subset against the original surface.
func ChamferDistance(a, b []geom.Point3) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, fmt.Errorf("metrics: chamfer distance of empty set")
	}
	d1 := meanNearest(a, b)
	d2 := meanNearest(b, a)
	return (d1 + d2) / 2, nil
}

func meanNearest(from, to []geom.Point3) float64 {
	var sum float64
	for _, p := range from {
		best := math.Inf(1)
		for _, q := range to {
			if d := p.DistSq(q); d < best {
				best = d
			}
		}
		sum += math.Sqrt(best)
	}
	return sum / float64(len(from))
}

// Summary holds basic statistics of a series.
type Summary struct {
	N              int
	Mean, Min, Max float64
	Std            float64
}

// Summarize computes summary statistics.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs {
		s.Mean += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean /= float64(len(xs))
	for _, x := range xs {
		d := x - s.Mean
		s.Std += d * d
	}
	s.Std = math.Sqrt(s.Std / float64(len(xs)))
	return s
}

// GeoMean computes the geometric mean of positive values (the conventional
// aggregate for speedups).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}
