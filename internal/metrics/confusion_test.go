package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestConfusionBasics(t *testing.T) {
	m := NewConfusion(3)
	if err := m.Add([]int32{0, 1, 1, 2}, []int32{0, 1, 0, 2}); err != nil {
		t.Fatal(err)
	}
	if m.Total() != 4 {
		t.Fatalf("total = %d", m.Total())
	}
	if m.At(0, 1) != 1 || m.At(0, 0) != 1 || m.At(1, 1) != 1 || m.At(2, 2) != 1 {
		t.Fatalf("counts = %v", m.Counts)
	}
	if math.Abs(m.Accuracy()-0.75) > 1e-12 {
		t.Fatalf("accuracy = %v", m.Accuracy())
	}
}

func TestConfusionIoUMatchesMeanIoU(t *testing.T) {
	pred := []int32{0, 0, 1, 1, 2}
	truth := []int32{0, 1, 1, 1, 2}
	m := NewConfusion(3)
	if err := m.Add(pred, truth); err != nil {
		t.Fatal(err)
	}
	want, err := MeanIoU(pred, truth, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.MeanIoU()-want) > 1e-12 {
		t.Fatalf("confusion mIoU %v vs MeanIoU %v", m.MeanIoU(), want)
	}
}

func TestConfusionIgnoresNegativeTruth(t *testing.T) {
	m := NewConfusion(2)
	if err := m.Add([]int32{0, 1}, []int32{0, -1}); err != nil {
		t.Fatal(err)
	}
	if m.Total() != 1 {
		t.Fatalf("total = %d", m.Total())
	}
}

func TestConfusionErrors(t *testing.T) {
	m := NewConfusion(2)
	if err := m.Add([]int32{0}, []int32{0, 1}); err == nil {
		t.Fatal("length mismatch: want error")
	}
	if err := m.Add([]int32{5}, []int32{0}); err == nil {
		t.Fatal("out-of-range prediction: want error")
	}
}

func TestConfusionAbsentClass(t *testing.T) {
	m := NewConfusion(3)
	if err := m.Add([]int32{0}, []int32{0}); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.IoU(2); ok {
		t.Fatal("absent class reported present")
	}
	if m.MeanIoU() != 1 {
		t.Fatalf("mIoU = %v", m.MeanIoU())
	}
}

func TestConfusionString(t *testing.T) {
	m := NewConfusion(2)
	_ = m.Add([]int32{0, 1}, []int32{0, 1})
	s := m.String()
	if !strings.Contains(s, "acc 1.000") || !strings.Contains(s, "IoU 1.000") {
		t.Fatalf("string output:\n%s", s)
	}
	if m2 := NewConfusion(2); m2.Accuracy() != 0 || m2.MeanIoU() != 0 {
		t.Fatal("empty matrix metrics nonzero")
	}
}
