package metrics

import (
	"sort"
	"sync"
	"time"
)

// LatencyWindow is a concurrency-safe sliding window of duration samples for
// online serving metrics: the last Capacity observations are retained in a
// ring buffer and summarized on demand (p50/p90/p99, mean, max). A sliding
// window — rather than an all-time histogram — is the right shape for a
// long-running server: the quantiles track the *current* load regime instead
// of being diluted by hours-old samples.
type LatencyWindow struct {
	mu      sync.Mutex
	samples []time.Duration
	next    int    // ring write cursor
	filled  int    // valid entries, ≤ len(samples)
	total   uint64 // all-time observation count
}

// DefaultLatencyWindow is the window capacity used when none is given.
const DefaultLatencyWindow = 1024

// NewLatencyWindow creates a window retaining the last capacity samples
// (DefaultLatencyWindow when capacity <= 0).
func NewLatencyWindow(capacity int) *LatencyWindow {
	if capacity <= 0 {
		capacity = DefaultLatencyWindow
	}
	return &LatencyWindow{samples: make([]time.Duration, capacity)}
}

// Observe records one duration sample. Safe for concurrent use.
func (w *LatencyWindow) Observe(d time.Duration) {
	w.mu.Lock()
	w.samples[w.next] = d
	w.next = (w.next + 1) % len(w.samples)
	if w.filled < len(w.samples) {
		w.filled++
	}
	w.total++
	w.mu.Unlock()
}

// LatencySnapshot summarizes a LatencyWindow at one instant. Quantiles use
// the nearest-rank convention over the retained window.
type LatencySnapshot struct {
	Count         uint64 // all-time observations
	Window        int    // samples the quantiles are computed over
	Mean          time.Duration
	P50, P90, P99 time.Duration
	Max           time.Duration
}

// Snapshot computes the current summary. Cost is O(window log window); callers
// poll it at reporting frequency, not per request.
func (w *LatencyWindow) Snapshot() LatencySnapshot {
	w.mu.Lock()
	s := LatencySnapshot{Count: w.total, Window: w.filled}
	buf := make([]time.Duration, w.filled)
	if w.filled < len(w.samples) {
		copy(buf, w.samples[:w.filled])
	} else {
		copy(buf, w.samples)
	}
	w.mu.Unlock()
	if len(buf) == 0 {
		return s
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	var sum time.Duration
	for _, d := range buf {
		sum += d
	}
	s.Mean = sum / time.Duration(len(buf))
	s.P50 = quantileDur(buf, 0.50)
	s.P90 = quantileDur(buf, 0.90)
	s.P99 = quantileDur(buf, 0.99)
	s.Max = buf[len(buf)-1]
	return s
}

// quantileDur returns the nearest-rank q-quantile of an ascending slice.
func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
