package metrics

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

func TestTenantWindowsCounts(t *testing.T) {
	tw := NewTenantWindows(16, 0)
	tw.Observe("a", 2*time.Millisecond)
	tw.Observe("a", 4*time.Millisecond)
	tw.Count("a", TenantCompleted)
	tw.Count("a", TenantCompleted)
	tw.Count("a", TenantShed)
	tw.Count("b", TenantFailed)
	tw.Count("a", TenantOutcome(99)) // out of range: ignored
	snap := tw.Snapshot()
	a := snap["a"]
	if a.Completed != 2 || a.Shed != 1 || a.Failed != 0 {
		t.Fatalf("tenant a: %+v", a)
	}
	if a.Latency.Count != 2 || a.Latency.Max < 4*time.Millisecond {
		t.Fatalf("tenant a latency: %+v", a.Latency)
	}
	if b := snap["b"]; b.Failed != 1 {
		t.Fatalf("tenant b: %+v", b)
	}
	if tw.Len() != 2 {
		t.Fatalf("len = %d", tw.Len())
	}
}

func TestTenantWindowsOverflow(t *testing.T) {
	tw := NewTenantWindows(8, 2)
	tw.Count("a", TenantCompleted)
	tw.Count("b", TenantCompleted)
	// Tenants past the cardinality cap aggregate under OverflowTenant.
	tw.Count("c", TenantShed)
	tw.Count("d", TenantShed)
	tw.Observe("e", time.Millisecond)
	if tw.Len() != 2 {
		t.Fatalf("len = %d, want cap 2", tw.Len())
	}
	snap := tw.Snapshot()
	ov, ok := snap[OverflowTenant]
	if !ok {
		t.Fatal("no overflow bucket in snapshot")
	}
	if ov.Shed != 2 || ov.Latency.Count != 1 {
		t.Fatalf("overflow: %+v", ov)
	}
	if _, ok := snap["c"]; ok {
		t.Fatal("capped tenant got a private entry")
	}
}

func TestTenantWindowsConcurrent(t *testing.T) {
	tw := NewTenantWindows(32, 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("t%d", (g*200+i)%100)
				tw.Observe(id, time.Duration(i)*time.Microsecond)
				tw.Count(id, TenantCompleted)
			}
		}(g)
	}
	wg.Wait()
	var total uint64
	for _, s := range tw.Snapshot() {
		total += s.Completed
	}
	if total != 1600 {
		t.Fatalf("completions = %d, want 1600", total)
	}
}

func TestJainFairness(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 1},
		{[]float64{0, 0, 0}, 1},
		{[]float64{5, 5, 5, 5}, 1},
		{[]float64{1, 0, 0, 0}, 0.25}, // one tenant starves the rest: 1/n
		{[]float64{1, 1, 0, 0}, 0.5},
	}
	for _, tc := range cases {
		if got := JainFairness(tc.xs); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("JainFairness(%v) = %g, want %g", tc.xs, got, tc.want)
		}
	}
	// Monotone: more even → higher index.
	if JainFairness([]float64{9, 1}) >= JainFairness([]float64{6, 4}) {
		t.Fatal("fairness not ordered by evenness")
	}
}
