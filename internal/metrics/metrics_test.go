package metrics

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestMeanIoU(t *testing.T) {
	pred := []int32{0, 0, 1, 1}
	truth := []int32{0, 1, 1, 1}
	// class 0: inter 1, union 2 → 0.5; class 1: inter 2, union 3 → 2/3.
	got, err := MeanIoU(pred, truth, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := (0.5 + 2.0/3) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("mIoU = %v, want %v", got, want)
	}
}

func TestMeanIoUPerfect(t *testing.T) {
	labels := []int32{0, 1, 2, 1}
	got, err := MeanIoU(labels, labels, 3)
	if err != nil || got != 1 {
		t.Fatalf("perfect mIoU = %v, err %v", got, err)
	}
}

func TestMeanIoUIgnoresNegativeTruth(t *testing.T) {
	got, err := MeanIoU([]int32{0, 1}, []int32{0, -1}, 2)
	if err != nil || got != 1 {
		t.Fatalf("mIoU = %v err %v", got, err)
	}
}

func TestMeanIoUErrors(t *testing.T) {
	if _, err := MeanIoU([]int32{0}, []int32{0, 1}, 2); err == nil {
		t.Fatal("length mismatch: want error")
	}
	if _, err := MeanIoU([]int32{5}, []int32{0}, 2); err == nil {
		t.Fatal("label out of range: want error")
	}
}

func TestOverallAccuracy(t *testing.T) {
	got, err := OverallAccuracy([]int32{0, 1, 1}, []int32{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("accuracy = %v", got)
	}
	if got, _ := OverallAccuracy(nil, nil); got != 0 {
		t.Fatal("empty accuracy nonzero")
	}
}

func TestCoverageRadius(t *testing.T) {
	pts := []geom.Point3{{X: 0}, {X: 1}, {X: 2}, {X: 3}}
	mean, max, err := CoverageRadius(pts, []int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Distances to nearest sample: 0, 1, 1, 0.
	if math.Abs(mean-0.5) > 1e-12 || math.Abs(max-1) > 1e-12 {
		t.Fatalf("coverage mean=%v max=%v", mean, max)
	}
	if _, _, err := CoverageRadius(pts, nil); err == nil {
		t.Fatal("no samples: want error")
	}
	if _, _, err := CoverageRadius(pts, []int{9}); err == nil {
		t.Fatal("bad index: want error")
	}
}

func TestChamferDistance(t *testing.T) {
	a := []geom.Point3{{X: 0}, {X: 2}}
	b := []geom.Point3{{X: 0}, {X: 2}}
	d, err := ChamferDistance(a, b)
	if err != nil || d != 0 {
		t.Fatalf("identical chamfer = %v err %v", d, err)
	}
	c := []geom.Point3{{X: 1}}
	d, err = ChamferDistance(a, c)
	if err != nil {
		t.Fatal(err)
	}
	// a→c: (1+1)/2 = 1; c→a: 1 → (1+1)/2 = 1.
	if math.Abs(d-1) > 1e-12 {
		t.Fatalf("chamfer = %v, want 1", d)
	}
	if _, err := ChamferDistance(nil, a); err == nil {
		t.Fatal("empty set: want error")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("std = %v", s.Std)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("empty summary")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean = %v, want 4", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatal("empty geomean")
	}
	if g := GeoMean([]float64{1, -1}); g != 0 {
		t.Fatal("negative value geomean")
	}
}
