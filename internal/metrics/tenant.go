package metrics

import (
	"sync"
	"time"
)

// Per-tenant serving metrics for the fleet layer: each tenant gets its own
// sliding latency window plus outcome counters, with bounded cardinality —
// a serving tier facing millions of tenant ids must not let the metrics map
// grow without limit, so past the cap all further unknown tenants aggregate
// into one overflow bucket under OverflowTenant.

// OverflowTenant is the snapshot key holding the aggregate of every tenant
// beyond the cardinality cap.
const OverflowTenant = "~other"

// DefaultTenantCardinality is the per-tenant window cap when none is given.
const DefaultTenantCardinality = 4096

// TenantOutcome classifies one counted request outcome.
type TenantOutcome int

const (
	// TenantCompleted counts frames served successfully.
	TenantCompleted TenantOutcome = iota
	// TenantShed counts frames dropped before reaching an engine (throttle,
	// priority shed, or full queues).
	TenantShed
	// TenantFailed counts frames that reached an engine and failed.
	TenantFailed
	numTenantOutcomes
)

// tenantEntry is one tenant's window and counters; guarded by TenantWindows.mu.
type tenantEntry struct {
	win    *LatencyWindow
	counts [numTenantOutcomes]uint64
}

// TenantWindows maps tenant ids to latency windows and outcome counters.
// Safe for concurrent use.
type TenantWindows struct {
	mu       sync.Mutex
	capacity int // per-window sample capacity
	maxT     int // tenant cardinality cap
	m        map[string]*tenantEntry
	overflow *tenantEntry
}

// NewTenantWindows builds the registry. capacity sizes each tenant's latency
// window (DefaultLatencyWindow when <= 0); maxTenants bounds cardinality
// (DefaultTenantCardinality when <= 0).
func NewTenantWindows(capacity, maxTenants int) *TenantWindows {
	if maxTenants <= 0 {
		maxTenants = DefaultTenantCardinality
	}
	return &TenantWindows{
		capacity: capacity,
		maxT:     maxTenants,
		m:        make(map[string]*tenantEntry),
	}
}

// entry returns the tenant's entry, creating it (or falling back to the
// overflow bucket) as needed. Caller holds mu.
func (t *TenantWindows) entry(tenant string) *tenantEntry {
	if e, ok := t.m[tenant]; ok {
		return e
	}
	if len(t.m) >= t.maxT {
		if t.overflow == nil {
			t.overflow = &tenantEntry{win: NewLatencyWindow(t.capacity)}
		}
		return t.overflow
	}
	e := &tenantEntry{win: NewLatencyWindow(t.capacity)}
	t.m[tenant] = e
	return e
}

// Observe records one completion latency for a tenant.
func (t *TenantWindows) Observe(tenant string, d time.Duration) {
	t.mu.Lock()
	e := t.entry(tenant)
	t.mu.Unlock()
	e.win.Observe(d)
}

// Count records one request outcome for a tenant.
func (t *TenantWindows) Count(tenant string, o TenantOutcome) {
	if o < 0 || o >= numTenantOutcomes {
		return
	}
	t.mu.Lock()
	t.entry(tenant).counts[o]++
	t.mu.Unlock()
}

// Len reports the number of tenants holding private windows.
func (t *TenantWindows) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// TenantSnapshot is one tenant's point-in-time metrics.
type TenantSnapshot struct {
	Completed uint64
	Shed      uint64
	Failed    uint64
	Latency   LatencySnapshot
}

// Snapshot returns every tenant's metrics; the overflow aggregate, if any
// traffic landed there, appears under OverflowTenant.
func (t *TenantWindows) Snapshot() map[string]TenantSnapshot {
	t.mu.Lock()
	entries := make(map[string]*tenantEntry, len(t.m)+1)
	for k, e := range t.m {
		entries[k] = e
	}
	if t.overflow != nil {
		entries[OverflowTenant] = t.overflow
	}
	t.mu.Unlock()
	out := make(map[string]TenantSnapshot, len(entries))
	for k, e := range entries {
		t.mu.Lock()
		counts := e.counts
		t.mu.Unlock()
		out[k] = TenantSnapshot{
			Completed: counts[TenantCompleted],
			Shed:      counts[TenantShed],
			Failed:    counts[TenantFailed],
			Latency:   e.win.Snapshot(),
		}
	}
	return out
}

// JainFairness is Jain's fairness index over per-tenant allocations:
// (Σx)² / (n·Σx²), 1 when every tenant gets an equal share, → 1/n as one
// tenant starves the rest. Zero-allocation tenants count; an empty or
// all-zero slice returns 1 (nothing to be unfair about).
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq <= 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}
