package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestLatencyWindowQuantiles(t *testing.T) {
	w := NewLatencyWindow(100)
	for i := 1; i <= 100; i++ {
		w.Observe(time.Duration(i) * time.Millisecond)
	}
	s := w.Snapshot()
	if s.Count != 100 || s.Window != 100 {
		t.Fatalf("count=%d window=%d, want 100/100", s.Count, s.Window)
	}
	if s.P50 != 50*time.Millisecond {
		t.Fatalf("p50 = %v, want 50ms", s.P50)
	}
	if s.P90 != 90*time.Millisecond {
		t.Fatalf("p90 = %v, want 90ms", s.P90)
	}
	if s.P99 != 99*time.Millisecond {
		t.Fatalf("p99 = %v, want 99ms", s.P99)
	}
	if s.Max != 100*time.Millisecond {
		t.Fatalf("max = %v, want 100ms", s.Max)
	}
	if s.Mean != 50500*time.Microsecond {
		t.Fatalf("mean = %v, want 50.5ms", s.Mean)
	}
}

func TestLatencyWindowSlides(t *testing.T) {
	w := NewLatencyWindow(4)
	for i := 1; i <= 10; i++ {
		w.Observe(time.Duration(i) * time.Second)
	}
	s := w.Snapshot()
	if s.Count != 10 {
		t.Fatalf("all-time count = %d, want 10", s.Count)
	}
	if s.Window != 4 {
		t.Fatalf("window = %d, want 4", s.Window)
	}
	// Only the last 4 samples (7..10s) remain.
	if s.P50 != 8*time.Second || s.Max != 10*time.Second {
		t.Fatalf("p50=%v max=%v, want 8s/10s", s.P50, s.Max)
	}
}

func TestLatencyWindowEmpty(t *testing.T) {
	s := NewLatencyWindow(0).Snapshot()
	if s.Count != 0 || s.Window != 0 || s.P99 != 0 || s.Mean != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
}

func TestLatencyWindowConcurrent(t *testing.T) {
	w := NewLatencyWindow(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				w.Observe(time.Duration(g*200+i) * time.Microsecond)
				if i%50 == 0 {
					w.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if s := w.Snapshot(); s.Count != 1600 || s.Window != 64 {
		t.Fatalf("count=%d window=%d, want 1600/64", s.Count, s.Window)
	}
}
