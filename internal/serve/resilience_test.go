package serve

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/edgesim"
	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/tensor"
)

// badCloud builds a 4-point cloud with one coordinate poisoned.
func badCloud(poison float64) *geom.Cloud {
	c := testCloud()
	c.Points[2].Y = poison
	return c
}

func TestAdmissionRejectsInvalidFrames(t *testing.T) {
	e := newStubEngine(t, nil, Config{MaxPoints: 64})
	defer e.Close()
	degenerate := geom.NewCloud(5, 0)
	for i := range degenerate.Points {
		degenerate.Points[i] = geom.Point3{X: 1, Y: 2, Z: 3}
	}
	badShape := testCloud()
	badShape.FeatDim = 2 // claims features it does not carry
	badFeat := geom.NewCloud(4, 1)
	for i := range badFeat.Points {
		badFeat.Points[i] = geom.Point3{X: float64(i), Y: 1, Z: 2}
	}
	badFeat.Feat[2] = float32(math.NaN())
	cases := []struct {
		name  string
		cloud *geom.Cloud
	}{
		{"nil", nil},
		{"empty", geom.NewCloud(0, 0)},
		{"oversized", geom.NewCloud(65, 0)},
		{"nan-coord", badCloud(math.NaN())},
		{"pos-inf-coord", badCloud(math.Inf(1))},
		{"neg-inf-coord", badCloud(math.Inf(-1))},
		{"degenerate-bbox", degenerate},
		{"shape-mismatch", badShape},
		{"nan-feature", badFeat},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := e.Submit(context.Background(), Request{Cloud: tc.cloud})
			if !errors.Is(err, ErrInvalidInput) {
				t.Fatalf("got %v, want ErrInvalidInput", err)
			}
		})
	}
	s := e.Stats()
	if s.Invalid != uint64(len(cases)) {
		t.Fatalf("Invalid = %d, want %d", s.Invalid, len(cases))
	}
	if s.Submitted != 0 || s.Completed != 0 {
		t.Fatalf("invalid frames reached the queue: %+v", s)
	}
	// A single point cannot have a degenerate box; it must still be served.
	one := geom.NewCloud(1, 0)
	if _, err := e.Submit(context.Background(), Request{Cloud: one}); err != nil {
		t.Fatalf("single-point cloud rejected: %v", err)
	}
}

func TestChaosPanicIsolationSerial(t *testing.T) {
	plan := &faultinject.Plan{Seed: 17, PanicFrac: 0.1}
	var rebuilds atomic.Uint64
	cfg := Config{
		MaxBatch:  1,
		PanicTrip: 1 << 30, // breaker off: this test isolates per-frame recovery
		Faults:    plan,
		Rebuild: func(worker, tier int) (pipeline.Net, error) {
			rebuilds.Add(1)
			return &stubNet{}, nil
		},
	}
	e := newStubEngine(t, nil, cfg)
	defer e.Close()
	cloud := testCloud()
	const frames = 200
	wantPanics := uint64(0)
	for i := 0; i < frames; i++ {
		// Serial submission: admission seq == i, so the plan predicts each
		// frame's fate exactly.
		want := plan.Frame(uint64(i)).Op
		res, err := e.Submit(context.Background(), Request{Cloud: cloud})
		if want == faultinject.OpPanic {
			wantPanics++
			if !errors.Is(err, ErrPanic) {
				t.Fatalf("frame %d: got %v, want ErrPanic", i, err)
			}
			if res.Err == nil {
				t.Fatalf("frame %d: result not annotated with the failure", i)
			}
		} else if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	if wantPanics == 0 {
		t.Fatal("plan injected no panics in 200 frames; test is vacuous")
	}
	s := e.Stats()
	if s.Panics != wantPanics || s.Quarantines != wantPanics || rebuilds.Load() != wantPanics {
		t.Fatalf("panics=%d quarantines=%d rebuilds=%d, want all %d", s.Panics, s.Quarantines, rebuilds.Load(), wantPanics)
	}
	if s.Completed != frames-wantPanics {
		t.Fatalf("completed=%d, want %d", s.Completed, frames-wantPanics)
	}
	if s.BreakerTrips != 0 {
		t.Fatalf("breaker tripped %d times with PanicTrip disabled", s.BreakerTrips)
	}
	if !strings.Contains(s.LastPanic, "faultinject: frame") {
		t.Fatalf("LastPanic missing injected panic value: %q", s.LastPanic)
	}
}

func TestChaosPanicIsolationConcurrent(t *testing.T) {
	const frames = 240
	plan := &faultinject.Plan{Seed: 99, PanicFrac: 0.1}
	// Count the plan's panic set over the seq domain [0, frames): with a
	// queue deep enough that nothing is ever rejected, every submission gets
	// a seq below frames and the total is deterministic even though the
	// seq→goroutine assignment is not.
	wantPanics := uint64(0)
	for s := uint64(0); s < frames; s++ {
		if plan.Frame(s).Op == faultinject.OpPanic {
			wantPanics++
		}
	}
	if wantPanics == 0 {
		t.Fatal("vacuous plan")
	}
	nets := []pipeline.Net{&stubNet{}, &stubNet{}, &stubNet{}, &stubNet{}}
	e, err := New(nets, nil, edgesim.Config{}, Config{
		QueueDepth: frames,
		PanicTrip:  1 << 30,
		Faults:     plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	cloud := testCloud()
	var wg sync.WaitGroup
	var okN, panicN, otherN atomic.Uint64
	for i := 0; i < frames; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := e.Submit(context.Background(), Request{Cloud: cloud})
			switch {
			case err == nil:
				okN.Add(1)
			case errors.Is(err, ErrPanic):
				panicN.Add(1)
			default:
				otherN.Add(1)
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if panicN.Load() != wantPanics || okN.Load() != frames-wantPanics || otherN.Load() != 0 {
		t.Fatalf("ok=%d panicked=%d other=%d, want %d/%d/0",
			okN.Load(), panicN.Load(), otherN.Load(), frames-wantPanics, wantPanics)
	}
	s := e.Stats()
	if s.Panics != wantPanics || s.Completed != frames-wantPanics {
		t.Fatalf("stats panics=%d completed=%d, want %d/%d", s.Panics, s.Completed, wantPanics, frames-wantPanics)
	}
	if s.Rejected != 0 {
		t.Fatalf("%d rejections skewed the seq domain", s.Rejected)
	}
}

func TestCircuitBreakerTripsAndRecovers(t *testing.T) {
	plan := &faultinject.Plan{Seed: 1, PanicFrames: []uint64{0, 1}}
	e := newStubEngine(t, nil, Config{
		MaxBatch:    1,
		PanicTrip:   2,
		BackoffBase: 50 * time.Millisecond,
		BackoffMax:  time.Second,
		Faults:      plan,
	})
	defer e.Close()
	cloud := testCloud()
	for i := 0; i < 2; i++ {
		if _, err := e.Submit(context.Background(), Request{Cloud: cloud}); !errors.Is(err, ErrPanic) {
			t.Fatalf("frame %d: got %v, want ErrPanic", i, err)
		}
	}
	// The second panic tripped the breaker; frame 2 must wait out the park
	// but then succeed on the recovered worker.
	start := time.Now()
	res, err := e.Submit(context.Background(), Request{Cloud: cloud})
	if err != nil {
		t.Fatalf("post-trip frame: %v", err)
	}
	if res.Output == nil {
		t.Fatal("post-trip frame returned no output")
	}
	// The first park is jittered into [25ms, 50ms) of the 50ms base
	// (breakerBackoff), so assert against the jitter floor with margin.
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("post-trip frame served in %v; breaker park (≥25ms jittered) not applied", elapsed)
	}
	s := e.Stats()
	if s.BreakerTrips != 1 || s.Panics != 2 {
		t.Fatalf("trips=%d panics=%d, want 1/2", s.BreakerTrips, s.Panics)
	}
}

// TestCloseDoesNotWaitOutBreakerPark is the drain-vs-parked-worker
// regression: Close must interrupt a breaker backoff immediately, serve
// what is queued, and return — not sleep the backoff out.
func TestCloseDoesNotWaitOutBreakerPark(t *testing.T) {
	plan := &faultinject.Plan{Seed: 1, PanicFrames: []uint64{0}}
	e := newStubEngine(t, nil, Config{
		QueueDepth:  4,
		MaxBatch:    1,
		PanicTrip:   1,
		BackoffBase: 30 * time.Second, // would dwarf the test timeout if awaited
		BackoffMax:  time.Minute,
		Faults:      plan,
	})
	cloud := testCloud()
	if _, err := e.Submit(context.Background(), Request{Cloud: cloud}); !errors.Is(err, ErrPanic) {
		t.Fatalf("fault frame: %v, want ErrPanic", err)
	}
	// The worker is now parked for 30s. Queue two frames behind the park.
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := e.Submit(context.Background(), Request{Cloud: cloud})
			errs <- err
		}()
	}
	waitUntil(t, "frames to queue behind the parked worker", func() bool {
		return e.Stats().QueueLen == 2
	})
	start := time.Now()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Close took %v; it must interrupt the breaker park", elapsed)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("queued frame lost across Close: %v", err)
		}
	}
	if s := e.Stats(); s.Completed != 2 {
		t.Fatalf("completed=%d, want 2", s.Completed)
	}
}

func TestLastResortRespawnsWorker(t *testing.T) {
	// A Rebuild hook that panics escapes runProtected (quarantine runs after
	// the frame barrier) and kills the worker goroutine; lastResort must
	// contain it and respawn the worker so the pool keeps serving.
	plan := &faultinject.Plan{Seed: 3, PanicFrames: []uint64{0}}
	e := newStubEngine(t, nil, Config{
		MaxBatch:  1,
		PanicTrip: 1 << 30,
		Faults:    plan,
		Rebuild: func(worker, tier int) (pipeline.Net, error) {
			panic("rebuild exploded")
		},
	})
	defer e.Close()
	cloud := testCloud()
	if _, err := e.Submit(context.Background(), Request{Cloud: cloud}); !errors.Is(err, ErrPanic) {
		t.Fatalf("fault frame: %v, want ErrPanic", err)
	}
	// The worker goroutine died in quarantine and was respawned; it must
	// still serve.
	var res Result
	var err error
	waitUntil(t, "respawned worker to serve", func() bool {
		res, err = e.Submit(context.Background(), Request{Cloud: cloud})
		return err == nil
	})
	if res.Output == nil {
		t.Fatal("respawned worker returned no output")
	}
	s := e.Stats()
	if s.Panics != 2 { // injected frame panic + rebuild panic
		t.Fatalf("panics=%d, want 2", s.Panics)
	}
	if !strings.Contains(s.LastPanic, "rebuild exploded") {
		t.Fatalf("LastPanic = %q, want the escaped rebuild panic", s.LastPanic)
	}
}

func TestDegradationLadderStepsDownAndRecovers(t *testing.T) {
	gate := make(chan struct{})
	tier1 := Tier{Name: "half-window", Nets: []pipeline.Net{&stubNet{gate: gate}}}
	e, err := New([]pipeline.Net{&stubNet{gate: gate}}, nil, edgesim.Config{}, Config{
		QueueDepth:    4,
		MaxBatch:      1,
		Degrade:       []Tier{tier1},
		HighWatermark: 0.5,  // steps down at queue length 2
		LowWatermark:  0.25, // calm at queue length ≤ 1
		Hysteresis:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	cloud := testCloud()
	var wg sync.WaitGroup
	tiers := make(chan int, 3)
	submit := func() {
		defer wg.Done()
		res, err := e.Submit(context.Background(), Request{Cloud: cloud})
		if err != nil {
			t.Errorf("submit: %v", err)
			tiers <- -1
			return
		}
		tiers <- res.Tier
	}
	// A occupies the worker at tier 0 (sampled before any pressure).
	wg.Add(1)
	go submit()
	waitUntil(t, "worker to pick up frame A", func() bool { return e.Stats().Batches == 1 })
	// B then C fill the queue to the high watermark; the crossing submit
	// steps the ladder down.
	wg.Add(1)
	go submit()
	waitUntil(t, "B to queue", func() bool { return e.Stats().QueueLen == 1 })
	wg.Add(1)
	go submit()
	waitUntil(t, "ladder to step down", func() bool { return e.Stats().StepDowns == 1 })
	if e.Stats().Tier != 1 {
		t.Fatalf("tier = %d after step-down, want 1", e.Stats().Tier)
	}
	for i := 0; i < 3; i++ {
		gate <- struct{}{}
	}
	wg.Wait()
	close(tiers)
	var got []int
	for tr := range tiers {
		got = append(got, tr)
	}
	// A ran at full fidelity; B and C were served degraded.
	zeros, ones := 0, 0
	for _, tr := range got {
		switch tr {
		case 0:
			zeros++
		case 1:
			ones++
		default:
			t.Fatalf("unexpected tier %d in %v", tr, got)
		}
	}
	if zeros != 1 || ones != 2 {
		t.Fatalf("tiers %v, want one full-fidelity and two degraded", got)
	}
	// Draining B and C left the queue calm for two consecutive batches —
	// hysteresis satisfied, ladder stepped back up.
	s := e.Stats()
	if s.Tier != 0 || s.StepUps != 1 {
		t.Fatalf("tier=%d stepUps=%d after drain, want 0/1", s.Tier, s.StepUps)
	}
	if s.Degraded[0] != 1 || s.Degraded[1] != 2 {
		t.Fatalf("Degraded = %v, want [1 2]", s.Degraded)
	}
	// Recovery is live: the next frame serves at full fidelity again.
	done := make(chan Result, 1)
	go func() {
		res, err := e.Submit(context.Background(), Request{Cloud: cloud})
		if err != nil {
			t.Errorf("post-recovery submit: %v", err)
		}
		done <- res
	}()
	gate <- struct{}{}
	if res := <-done; res.Tier != 0 {
		t.Fatalf("post-recovery tier = %d, want 0", res.Tier)
	}
}

func TestDelayAndStallInjection(t *testing.T) {
	const pause = 5 * time.Millisecond
	cloud := testCloud()
	for _, tc := range []struct {
		name string
		plan *faultinject.Plan
	}{
		{"delay", &faultinject.Plan{Seed: 5, DelayFrac: 1, Delay: pause}},
		{"stall", &faultinject.Plan{Seed: 5, StallFrac: 1, Stall: pause}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := newStubEngine(t, nil, Config{MaxBatch: 1, Faults: tc.plan})
			defer e.Close()
			res, err := e.Submit(context.Background(), Request{Cloud: cloud})
			if err != nil {
				t.Fatal(err)
			}
			if res.Total < pause {
				t.Fatalf("Total = %v, want ≥ %v (injected %s)", res.Total, pause, tc.name)
			}
		})
	}
}

func TestCorruptInjectionIsCaughtAtAdmission(t *testing.T) {
	e := newStubEngine(t, nil, Config{Faults: &faultinject.Plan{Seed: 8, CorruptFrac: 1}})
	defer e.Close()
	cloud := testCloud()
	orig := cloud.Clone()
	_, err := e.Submit(context.Background(), Request{Cloud: cloud})
	if !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("corrupted frame: %v, want ErrInvalidInput (admission must catch it)", err)
	}
	for i := range cloud.Points {
		if cloud.Points[i] != orig.Points[i] {
			t.Fatal("corrupt injection mutated the caller's cloud")
		}
	}
	s := e.Stats()
	if s.Invalid != 1 || s.Submitted != 0 || s.Panics != 0 {
		t.Fatalf("corrupted frame reached a worker: %+v", s)
	}
}

// strictStubNet panics if an invalid frame ever reaches Forward — the
// admission invariant the fuzz target leans on. The id field keeps distinct
// instances at distinct addresses (zero-size values would alias and trip
// New's exclusive-replica check).
type strictStubNet struct{ id int }

func (s *strictStubNet) Forward(cloud *geom.Cloud, trace *model.Trace, train bool) (*model.Output, error) {
	if cloud == nil || cloud.Len() == 0 {
		panic("admitted nil/empty cloud")
	}
	for _, p := range cloud.Points {
		if !p.IsFinite() {
			panic("admitted non-finite coordinates")
		}
	}
	if err := cloud.Validate(); err != nil {
		panic(err)
	}
	return &model.Output{Logits: tensor.New(1, 2)}, nil
}

func (s *strictStubNet) Backward(grad *tensor.Matrix) error { return nil }
func (s *strictStubNet) Params() []*nn.Param                { return nil }
