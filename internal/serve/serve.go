// Package serve is the concurrent batched inference engine: the layer that
// turns the one-frame-at-a-time pipeline of internal/pipeline into a
// sustained-traffic server, the deployment shape EdgePC targets (streaming
// frames on a constrained device, where queueing, deadlines and graceful
// overload behavior matter as much as per-frame latency).
//
// Architecture (DESIGN.md §9):
//
//   - A sharded worker pool: each worker goroutine owns one model replica
//     (weights shared read-only across replicas via nn.ShareParams — see
//     pipeline.Replicas) and, inside it, one long-lived tensor.Workspace, so
//     the zero-allocation steady state of the single-frame hot path holds
//     per goroutine with no cross-worker synchronization.
//   - A bounded submission queue with reject-on-full backpressure: Submit
//     never blocks the caller on admission — a full queue returns
//     ErrQueueFull immediately and the caller sheds or retries.
//   - Per-request deadlines: a frame whose deadline passed while queued is
//     dropped with ErrDeadline instead of wasting a worker on a stale result.
//   - An adaptive micro-batcher: a worker that dequeues a frame coalesces
//     whatever compatible frames (same Key) are already pending, up to
//     MaxBatch; if batch-mates were found — evidence of queued load — it
//     waits up to BatchWindow for stragglers. At low load frames run
//     immediately with zero added latency; under load batches grow and
//     amortize per-dispatch overhead.
//   - Graceful shutdown: Close stops admission, drains every queued frame
//     through the workers, and returns when all in-flight work is done.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/edgesim"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/pipeline"
)

// Engine errors returned by Submit.
var (
	// ErrClosed reports a Submit after Close started.
	ErrClosed = errors.New("serve: engine closed")
	// ErrQueueFull is the backpressure signal: the bounded submission queue
	// is at capacity and the frame was rejected without blocking.
	ErrQueueFull = errors.New("serve: submission queue full")
	// ErrDeadline reports a frame whose deadline expired before a worker
	// could run it.
	ErrDeadline = errors.New("serve: request deadline exceeded")
)

// Config tunes the engine. The zero value selects sane defaults for every
// field.
type Config struct {
	// QueueDepth bounds the submission queue; a full queue rejects with
	// ErrQueueFull. Default: 4× the worker count.
	QueueDepth int
	// MaxBatch caps how many frames one worker coalesces into a micro-batch.
	// Default 8; 1 disables batching.
	MaxBatch int
	// BatchWindow is the longest a worker waits for batch stragglers once at
	// least two frames are in hand. Default 500µs; negative disables the
	// wait (batches still form from already-pending frames).
	BatchWindow time.Duration
	// DefaultTimeout is applied to requests that carry no timeout of their
	// own. Zero means no deadline.
	DefaultTimeout time.Duration
	// LatencyWindow is the sample capacity of the latency quantile window
	// (metrics.DefaultLatencyWindow when zero).
	LatencyWindow int
}

func (c *Config) defaults(workers int) {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * workers
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 500 * time.Microsecond
	}
	if c.BatchWindow < 0 {
		c.BatchWindow = 0
	}
}

// Request is one frame submitted for inference.
type Request struct {
	// Cloud is the input frame. It must not be mutated until Submit returns:
	// the forward pass reads it concurrently with the caller.
	Cloud *geom.Cloud
	// Key is the batch-compatibility tag: only frames with equal keys share
	// a micro-batch (frames of the same model/config stream). Callers with a
	// single stream leave it empty.
	Key string
	// Timeout, when positive, bounds this request's total time in the
	// engine; zero inherits Config.DefaultTimeout.
	Timeout time.Duration
}

// Result is the outcome of one served frame.
type Result struct {
	// Output holds the logits, detached from the worker's workspace (valid
	// indefinitely). Nil when Err is set.
	Output *model.Output
	// Report is the modelled edge-device cost of the frame (zero when the
	// engine was built with a nil device).
	Report edgesim.Report
	// Err is the per-frame failure, also returned by Submit.
	Err error
	// Worker is the pool slot that ran the frame.
	Worker int
	// BatchSize is the number of frames in the micro-batch this frame rode
	// in.
	BatchSize int
	// Wait is the time from submission to the worker picking the frame up;
	// Total is submission to completion.
	Wait  time.Duration
	Total time.Duration
}

// request is the queued form of a Request.
type request struct {
	cloud    *geom.Cloud
	key      string
	ctx      context.Context
	deadline time.Time // zero: no deadline
	enq      time.Time
	reply    chan Result // buffered (cap 1): workers never block on delivery
}

// worker is one pool slot: a private net replica (shared weights, private
// workspace and caches), a reusable trace, and a reusable batch slice.
type worker struct {
	id    int
	net   pipeline.Net
	trace model.Trace
	batch []*request
	carry *request // dequeued frame with a mismatched key, runs next batch
}

// Engine is the concurrent batched inference engine. Create with New; all
// methods are safe for concurrent use.
type Engine struct {
	cfg     Config
	dev     *edgesim.Device
	sim     edgesim.Config
	workers int
	queue   chan *request

	mu     sync.RWMutex // guards closed against concurrent queue sends
	closed bool
	wg     sync.WaitGroup

	submitted atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	rejected  atomic.Uint64
	timedOut  atomic.Uint64
	canceled  atomic.Uint64
	batches   atomic.Uint64
	frames    atomic.Uint64
	latency   *metrics.LatencyWindow
}

// New starts an engine with one worker per net. The nets must be independent
// replicas (pipeline.Replicas builds weight-sharing ones); a single net must
// never be given twice — each worker assumes exclusive ownership of its
// replica's workspace and caches. dev may be nil to skip per-frame cost
// modelling.
func New(nets []pipeline.Net, dev *edgesim.Device, sim edgesim.Config, cfg Config) (*Engine, error) {
	if len(nets) == 0 {
		return nil, fmt.Errorf("serve: need at least one net replica")
	}
	for i, n := range nets {
		if n == nil {
			return nil, fmt.Errorf("serve: nil net replica %d", i)
		}
		for j := 0; j < i; j++ {
			if nets[j] == n {
				return nil, fmt.Errorf("serve: net replica %d duplicates replica %d (workers need exclusive replicas)", i, j)
			}
		}
	}
	cfg.defaults(len(nets))
	e := &Engine{
		cfg:     cfg,
		dev:     dev,
		sim:     sim,
		workers: len(nets),
		queue:   make(chan *request, cfg.QueueDepth),
		latency: metrics.NewLatencyWindow(cfg.LatencyWindow),
	}
	for i, n := range nets {
		w := &worker{id: i, net: n, batch: make([]*request, 0, cfg.MaxBatch)}
		e.wg.Add(1)
		go e.workerLoop(w)
	}
	return e, nil
}

// Submit enqueues one frame and waits for its result. Admission never
// blocks: a full queue returns ErrQueueFull immediately and a closed engine
// ErrClosed. The wait for the result is bounded by the request deadline (or
// ctx); cancelling ctx abandons the frame — a worker will still skip past it
// but no result is delivered.
func (e *Engine) Submit(ctx context.Context, req Request) (Result, error) {
	if req.Cloud == nil || req.Cloud.Len() == 0 {
		return Result{}, fmt.Errorf("serve: empty cloud")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	r := &request{
		cloud: req.Cloud,
		key:   req.Key,
		ctx:   ctx,
		enq:   time.Now(),
		reply: make(chan Result, 1),
	}
	timeout := req.Timeout
	if timeout <= 0 {
		timeout = e.cfg.DefaultTimeout
	}
	if timeout > 0 {
		r.deadline = r.enq.Add(timeout)
	}
	if dl, ok := ctx.Deadline(); ok && (r.deadline.IsZero() || dl.Before(r.deadline)) {
		r.deadline = dl
	}

	// The RLock pairs with Close's exclusive section: a send can only race
	// with close(queue) if a Submit could still see closed == false after
	// Close set it, which the lock excludes.
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return Result{}, ErrClosed
	}
	select {
	case e.queue <- r:
		e.mu.RUnlock()
	default:
		e.mu.RUnlock()
		e.rejected.Add(1)
		return Result{}, ErrQueueFull
	}
	e.submitted.Add(1)

	select {
	case res := <-r.reply:
		return res, res.Err
	case <-ctx.Done():
		e.canceled.Add(1)
		return Result{}, ctx.Err()
	}
}

// workerLoop is one pool goroutine: dequeue, coalesce, run, repeat until the
// queue is closed and drained.
func (e *Engine) workerLoop(w *worker) {
	defer e.wg.Done()
	for {
		first := w.carry
		w.carry = nil
		if first == nil {
			var ok bool
			first, ok = <-e.queue
			if !ok {
				return
			}
		}
		w.batch = append(w.batch[:0], first)
		e.coalesce(w)
		e.runBatch(w)
	}
}

// coalesce grows w.batch with compatible pending frames. Phase 1 drains
// whatever is immediately queued (no waiting). Phase 2 — only entered when
// phase 1 found batch-mates, the adaptivity rule — waits up to BatchWindow
// for stragglers. A frame with a different key ends the batch and is carried
// into the next one.
func (e *Engine) coalesce(w *worker) {
	key := w.batch[0].key
	for len(w.batch) < e.cfg.MaxBatch {
		select {
		case r, ok := <-e.queue:
			if !ok {
				return
			}
			if r.key != key {
				w.carry = r
				return
			}
			w.batch = append(w.batch, r)
		default:
			if len(w.batch) < 2 || e.cfg.BatchWindow <= 0 {
				return
			}
			e.coalesceWindow(w, key)
			return
		}
	}
}

// coalesceWindow is coalesce's phase 2: blocking receives under a shared
// BatchWindow timer.
func (e *Engine) coalesceWindow(w *worker, key string) {
	timer := time.NewTimer(e.cfg.BatchWindow)
	defer timer.Stop()
	for len(w.batch) < e.cfg.MaxBatch {
		select {
		case r, ok := <-e.queue:
			if !ok {
				return
			}
			if r.key != key {
				w.carry = r
				return
			}
			w.batch = append(w.batch, r)
		case <-timer.C:
			return
		}
	}
}

// runBatch executes every frame of the worker's batch in submission order.
// Frames run individually through the replica (the batch amortizes dispatch,
// not compute — each forward already parallelizes internally), so one bad
// frame fails alone.
//
//edgepc:hotpath
func (e *Engine) runBatch(w *worker) {
	n := len(w.batch)
	e.batches.Add(1)
	e.frames.Add(uint64(n))
	for i, r := range w.batch {
		e.runFrame(w, r, n)
		w.batch[i] = nil // release the request for GC; the slice is reused
	}
}

// runFrame is the per-frame worker hot loop: deadline/cancellation gate,
// then the reentrant pipeline entry point against the worker's private
// replica and trace. The steady-state allocation profile is the single-frame
// pipeline's (see BenchmarkServeSteadyState): the request, its reply channel
// and the detached Output header are the only serve-layer additions.
//
//edgepc:hotpath
func (e *Engine) runFrame(w *worker, r *request, batchSize int) {
	now := time.Now()
	if r.ctx.Err() != nil {
		// Submitter is gone (counted in canceled at Submit); deliver into
		// the buffered channel for the record and move on.
		r.reply <- Result{Err: r.ctx.Err(), Worker: w.id, BatchSize: batchSize}
		return
	}
	if !r.deadline.IsZero() && now.After(r.deadline) {
		e.timedOut.Add(1)
		e.finish(r, Result{Err: ErrDeadline, Worker: w.id, BatchSize: batchSize, Wait: now.Sub(r.enq)})
		return
	}
	rep, out, err := pipeline.RunInto(w.net, r.cloud, &w.trace, e.dev, e.sim)
	if err != nil {
		e.failed.Add(1)
		e.finish(r, Result{Err: fmt.Errorf("serve: worker %d: %w", w.id, err), Worker: w.id, BatchSize: batchSize, Wait: now.Sub(r.enq)})
		return
	}
	e.completed.Add(1)
	e.finish(r, Result{Output: out, Report: rep, Worker: w.id, BatchSize: batchSize, Wait: now.Sub(r.enq)})
}

// finish stamps the end-to-end latency, records it, and delivers the result
// (never blocking: the reply channel is buffered and read at most once).
//
//edgepc:hotpath
func (e *Engine) finish(r *request, res Result) {
	res.Total = time.Since(r.enq)
	e.latency.Observe(res.Total)
	r.reply <- res
}

// Close stops admission, drains every queued frame through the workers, and
// returns once all in-flight work has completed. Queued frames are still
// served (or dropped via their deadlines); new Submits fail with ErrClosed.
// A second Close returns ErrClosed.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	e.closed = true
	e.mu.Unlock()
	close(e.queue)
	e.wg.Wait()
	return nil
}

// Stats is a point-in-time snapshot of the engine's counters and latency
// distribution.
type Stats struct {
	Workers  int
	QueueLen int // frames currently queued
	QueueCap int

	Submitted uint64 // admitted frames
	Completed uint64 // frames served successfully
	Failed    uint64 // frames whose forward pass errored
	Rejected  uint64 // backpressure rejections (ErrQueueFull)
	TimedOut  uint64 // frames dropped at their deadline (ErrDeadline)
	Canceled  uint64 // submitters that abandoned via ctx

	Batches   uint64  // micro-batches executed
	Frames    uint64  // frames across all batches
	MeanBatch float64 // Frames / Batches

	Latency metrics.LatencySnapshot // end-to-end submit→completion
}

// Stats returns a snapshot; safe to call concurrently with serving.
func (e *Engine) Stats() Stats {
	s := Stats{
		Workers:   e.workers,
		QueueLen:  len(e.queue),
		QueueCap:  cap(e.queue),
		Submitted: e.submitted.Load(),
		Completed: e.completed.Load(),
		Failed:    e.failed.Load(),
		Rejected:  e.rejected.Load(),
		TimedOut:  e.timedOut.Load(),
		Canceled:  e.canceled.Load(),
		Batches:   e.batches.Load(),
		Frames:    e.frames.Load(),
		Latency:   e.latency.Snapshot(),
	}
	if s.Batches > 0 {
		s.MeanBatch = float64(s.Frames) / float64(s.Batches)
	}
	return s
}
