// Package serve is the concurrent batched inference engine: the layer that
// turns the one-frame-at-a-time pipeline of internal/pipeline into a
// sustained-traffic server, the deployment shape EdgePC targets (streaming
// frames on a constrained device, where queueing, deadlines and graceful
// overload behavior matter as much as per-frame latency).
//
// Architecture (DESIGN.md §9, fault model §11):
//
//   - A sharded worker pool: each worker goroutine owns one model replica
//     (weights shared read-only across replicas via nn.ShareParams — see
//     pipeline.Replicas) and, inside it, one long-lived tensor.Workspace, so
//     the zero-allocation steady state of the single-frame hot path holds
//     per goroutine with no cross-worker synchronization.
//   - A bounded submission queue with reject-on-full backpressure: Submit
//     never blocks the caller on admission — a full queue returns
//     ErrQueueFull immediately and the caller sheds or retries.
//   - Input admission: frames are validated at Submit (non-finite
//     coordinates, empty/oversized clouds, degenerate bounding boxes, shape
//     mismatches) and rejected with ErrInvalidInput before a worker is
//     burned — see admission.go.
//   - Per-request deadlines: a frame whose deadline passed while queued is
//     dropped with ErrDeadline instead of wasting a worker on a stale result.
//   - An adaptive micro-batcher: a worker that dequeues a frame coalesces
//     whatever compatible frames (same Key) are already pending, up to
//     MaxBatch; if batch-mates were found — evidence of queued load — it
//     waits up to BatchWindow for stragglers. At low load frames run
//     immediately with zero added latency; under load batches grow and
//     amortize per-dispatch overhead.
//   - Panic isolation: every frame runs under a recover wrapper; a panic
//     fails that one request with ErrPanic (stack captured in Stats), the
//     worker's replica is quarantined and rebuilt via Config.Rebuild, and
//     repeated panics trip a per-worker circuit breaker with exponential
//     backoff — see resilience.go.
//   - A stall watchdog: every worker stamps an atomic frame-start heartbeat;
//     a watchdog goroutine detects a worker wedged past Config.StallTimeout,
//     fails its in-flight batch with ErrStalled (exactly-once delivery via a
//     per-request CAS), counts the stall toward the circuit breaker, and
//     respawns the pool slot with rebuilt replicas — see watchdog.go.
//   - A degradation ladder: when queue depth crosses the high watermark the
//     engine steps down to cheaper approximation tiers (Config.Degrade,
//     built from pipeline.DegradeTiers) instead of rejecting, and steps back
//     up with hysteresis as load drains. Results carry the tier they were
//     served at.
//   - Graceful shutdown: Close stops admission, drains every queued frame
//     through the workers, and returns when all in-flight work is done — a
//     breaker-parked worker is woken immediately so Close never waits out a
//     backoff.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/edgesim"
	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/pipeline"
)

// Engine errors returned by Submit. ErrInvalidInput is declared in
// admission.go and ErrPanic in resilience.go.
var (
	// ErrClosed reports a Submit after Close started.
	ErrClosed = errors.New("serve: engine closed")
	// ErrQueueFull is the backpressure signal: the bounded submission queue
	// is at capacity and the frame was rejected without blocking.
	ErrQueueFull = errors.New("serve: submission queue full")
	// ErrDeadline reports a frame whose deadline expired before a worker
	// could run it.
	ErrDeadline = errors.New("serve: request deadline exceeded")
)

// Tier is one degraded rung of the serving ladder: a named set of cheaper
// replica nets, one per worker. pipeline.TieredReplicas builds weight-sharing
// rows ready to be wired here.
type Tier struct {
	// Name labels the tier in stats output (e.g. "W/2+budget/2").
	Name string
	// Nets holds one replica per worker, sharing weights with the primary
	// replicas but built with a cheaper approximation preset.
	Nets []pipeline.Net
}

// Config tunes the engine. The zero value selects sane defaults for every
// field.
type Config struct {
	// QueueDepth bounds the submission queue; a full queue rejects with
	// ErrQueueFull. Default: 4× the worker count.
	QueueDepth int
	// MaxBatch caps how many frames one worker coalesces into a micro-batch.
	// Default 8; 1 disables batching.
	MaxBatch int
	// BatchWindow is the longest a worker waits for batch stragglers once at
	// least two frames are in hand. Default 500µs; negative disables the
	// wait (batches still form from already-pending frames).
	BatchWindow time.Duration
	// DefaultTimeout is applied to requests that carry no timeout of their
	// own. Zero means no deadline.
	DefaultTimeout time.Duration
	// LatencyWindow is the sample capacity of the latency quantile window
	// (metrics.DefaultLatencyWindow when zero).
	LatencyWindow int

	// MaxPoints is the admission cap on cloud size; larger frames are
	// rejected with ErrInvalidInput. Default DefaultMaxPoints.
	MaxPoints int

	// Degrade is the degradation ladder: Degrade[i] serves tier i+1 (tier 0
	// is the full-fidelity replica set given to New). Empty disables
	// degradation — overload then rejects with ErrQueueFull as before.
	Degrade []Tier
	// HighWatermark is the queue-fill fraction at which the engine steps one
	// tier down. Default 0.75.
	HighWatermark float64
	// LowWatermark is the queue-fill fraction at or below which a batch
	// counts as calm; Hysteresis consecutive calm batches step one tier back
	// up. Default HighWatermark/3.
	LowWatermark float64
	// Hysteresis is the number of consecutive calm batches required before
	// stepping a tier back up. Default 4.
	Hysteresis int

	// PanicTrip is the number of consecutive panics on one worker that trip
	// its circuit breaker. Default 3.
	PanicTrip int
	// BackoffBase is the first breaker park duration; it doubles on every
	// consecutive trip up to BackoffMax, with seeded jitter spreading each
	// park across the upper half of its doubled value so workers tripped by
	// the same fault storm do not re-probe in lockstep. Defaults 100ms / 5s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BackoffJitterSeed seeds the deterministic breaker-backoff jitter;
	// fixed seeds reproduce exact park schedules. Default 1.
	BackoffJitterSeed uint64
	// StallTimeout arms the stall watchdog: a worker whose frame-start
	// heartbeat is older than this is declared wedged — its in-flight batch
	// fails with ErrStalled, the stall counts toward the worker's circuit
	// breaker, and the pool slot is respawned with replicas rebuilt through
	// Rebuild (without a Rebuild hook the batch still fails but the wedged
	// worker keeps its slot, since its replica cannot be replaced). Zero —
	// the default — disables the watchdog. See watchdog.go.
	StallTimeout time.Duration
	// Rebuild, when set, is called after a replica panics to build its
	// replacement (pipeline.RebuildReplica shares weights with the old set).
	// worker is the pool slot, tier the ladder rung that panicked. A nil
	// hook (or a failing rebuild) keeps the old replica: panics are still
	// isolated, but a corrupted workspace would persist.
	Rebuild func(worker, tier int) (pipeline.Net, error)

	// Faults, when non-nil, threads a deterministic fault-injection plan
	// through the engine's internals (chaos testing). Nil — the default —
	// costs one pointer check per frame.
	Faults *faultinject.Plan
}

func (c *Config) defaults(workers int) {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * workers
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 500 * time.Microsecond
	}
	if c.BatchWindow < 0 {
		c.BatchWindow = 0
	}
	if c.MaxPoints <= 0 {
		c.MaxPoints = DefaultMaxPoints
	}
	if c.HighWatermark <= 0 || c.HighWatermark > 1 {
		c.HighWatermark = 0.75
	}
	if c.LowWatermark <= 0 || c.LowWatermark >= c.HighWatermark {
		c.LowWatermark = c.HighWatermark / 3
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 4
	}
	if c.PanicTrip <= 0 {
		c.PanicTrip = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffMax < c.BackoffBase {
		c.BackoffMax = 5 * time.Second
		if c.BackoffMax < c.BackoffBase {
			c.BackoffMax = c.BackoffBase
		}
	}
	if c.BackoffJitterSeed == 0 {
		c.BackoffJitterSeed = 1
	}
	if c.StallTimeout < 0 {
		c.StallTimeout = 0
	}
}

// Request is one frame submitted for inference.
type Request struct {
	// Cloud is the input frame. It must not be mutated until Submit returns:
	// the forward pass reads it concurrently with the caller.
	Cloud *geom.Cloud
	// Key is the batch-compatibility tag: only frames with equal keys share
	// a micro-batch (frames of the same model/config stream). Callers with a
	// single stream leave it empty.
	Key string
	// Timeout, when positive, bounds this request's total time in the
	// engine; zero inherits Config.DefaultTimeout.
	Timeout time.Duration
}

// Result is the outcome of one served frame.
type Result struct {
	// Output holds the logits, detached from the worker's workspace (valid
	// indefinitely). Nil when Err is set.
	Output *model.Output
	// Report is the modelled edge-device cost of the frame (zero when the
	// engine was built with a nil device).
	Report edgesim.Report
	// Err is the per-frame failure, also returned by Submit.
	Err error
	// Worker is the pool slot that ran the frame.
	Worker int
	// BatchSize is the number of frames in the micro-batch this frame rode
	// in.
	BatchSize int
	// Tier is the degradation rung the frame was served at: 0 is full
	// fidelity, i ≥ 1 indexes Config.Degrade[i-1].
	Tier int
	// Wait is the time from submission to the worker picking the frame up;
	// Total is submission to completion.
	Wait  time.Duration
	Total time.Duration
}

// request is the queued form of a Request.
type request struct {
	cloud    *geom.Cloud
	key      string
	seq      uint64 // admission sequence number (fault-plan domain)
	ctx      context.Context
	deadline time.Time // zero: no deadline
	enq      time.Time
	reply    chan Result // buffered (cap 1): workers never block on delivery
	done     atomic.Bool // result delivered; CAS-claimed (see deliver)
}

// deliver claims the request and sends res, reporting whether this caller
// won the claim. Exactly one deliverer ever wins — the serving worker, the
// stall watchdog, or a recover path — which is what keeps the cap-1 reply
// channel from wedging and guarantees no request is double-completed when a
// watchdog fails a batch a zombie worker later finishes.
//
//edgepc:hotpath
func (r *request) deliver(res Result) bool {
	if r == nil || !r.done.CompareAndSwap(false, true) {
		return false
	}
	r.reply <- res
	return true
}

// worker is one goroutine incarnation of a pool slot: a private net replica
// per ladder tier (shared weights, private workspace and caches), a
// reusable trace, and a reusable batch slice. A respawn — lastResort after
// an escaped panic, or the stall watchdog deposing a wedged incarnation —
// builds a fresh worker for the slot, so deposed/beat/live state is never
// shared between the dying goroutine and its replacement.
type worker struct {
	id    int
	nets  []pipeline.Net // nets[tier]; index 0 is the full-fidelity replica
	trace model.Trace
	batch []*request
	carry *request // dequeued frame with a mismatched key, runs next batch

	// Circuit-breaker state. Written only by the owning goroutine (and the
	// constructor of a replacement incarnation); atomic because the stall
	// watchdog reads them to carry the streak across a depose-respawn.
	consec   atomic.Int32 // consecutive failed (panicked or stalled) frames
	trips    atomic.Int32 // consecutive breaker trips (backoff exponent)
	respawns atomic.Int32 // consecutive respawns of this slot's lineage

	pendingTrip bool // replacement must serve a breaker park before batch 1

	beat    atomic.Int64 // frame-start heartbeat (unix ns); 0 while idle
	deposed atomic.Bool  // incarnation claimed (watchdog or own exit); claimant runs wg.Done
	stalled atomic.Bool  // watchdog already failed the current batch in place
	liveMu  sync.Mutex   // guards live
	live    []*request   // in-flight batch published for the watchdog
}

// Engine is the concurrent batched inference engine. Create with New; all
// methods are safe for concurrent use.
type Engine struct {
	cfg     Config
	dev     *edgesim.Device
	sim     edgesim.Config
	workers int
	queue   chan *request
	closing chan struct{} // closed when Close starts; wakes parked workers
	faults  *faultinject.Plan

	numTiers int // 1 + len(cfg.Degrade)
	highN    int // queue length that steps the ladder down
	lowN     int // queue length at or below which a batch counts as calm

	mu     sync.RWMutex // guards closed against concurrent queue sends
	closed bool
	wg     sync.WaitGroup

	seq       atomic.Uint64 // admission sequence numbers
	submitted atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	rejected  atomic.Uint64
	timedOut  atomic.Uint64
	canceled  atomic.Uint64
	invalid   atomic.Uint64
	batches   atomic.Uint64
	frames    atomic.Uint64

	tier        atomic.Int32 // current ladder rung
	calm        atomic.Int32 // consecutive calm batches (hysteresis)
	stepDowns   atomic.Uint64
	stepUps     atomic.Uint64
	degraded    []atomic.Uint64 // completed frames per tier
	panics      atomic.Uint64
	quarantines atomic.Uint64
	trips       atomic.Uint64
	stalls      atomic.Uint64 // frames failed with ErrStalled by the watchdog
	respawns    atomic.Uint64 // worker respawns (lastResort + watchdog deposals)

	slots []atomic.Pointer[worker] // current incarnation per pool slot

	panicMu   sync.Mutex
	lastPanic string

	latency *metrics.LatencyWindow
}

// New starts an engine with one worker per net. The nets must be independent
// replicas (pipeline.Replicas builds weight-sharing ones); a single net must
// never be given twice — each worker assumes exclusive ownership of its
// replica's workspace and caches. The same holds across cfg.Degrade tiers:
// every tier needs one exclusive replica per worker
// (pipeline.TieredReplicas builds the whole matrix). dev may be nil to skip
// per-frame cost modelling.
func New(nets []pipeline.Net, dev *edgesim.Device, sim edgesim.Config, cfg Config) (*Engine, error) {
	if len(nets) == 0 {
		return nil, fmt.Errorf("serve: need at least one net replica")
	}
	all := make([]pipeline.Net, 0, len(nets)*(1+len(cfg.Degrade)))
	all = append(all, nets...)
	for t, tier := range cfg.Degrade {
		if len(tier.Nets) != len(nets) {
			return nil, fmt.Errorf("serve: degrade tier %d has %d nets for %d workers", t+1, len(tier.Nets), len(nets))
		}
		all = append(all, tier.Nets...)
	}
	for i, n := range all {
		if n == nil {
			return nil, fmt.Errorf("serve: nil net replica %d", i)
		}
		for j := 0; j < i; j++ {
			if all[j] == n {
				return nil, fmt.Errorf("serve: net replica %d duplicates replica %d (workers need exclusive replicas)", i, j)
			}
		}
	}
	cfg.defaults(len(nets))
	e := &Engine{
		cfg:      cfg,
		dev:      dev,
		sim:      sim,
		workers:  len(nets),
		queue:    make(chan *request, cfg.QueueDepth),
		closing:  make(chan struct{}),
		faults:   cfg.Faults,
		numTiers: 1 + len(cfg.Degrade),
		latency:  metrics.NewLatencyWindow(cfg.LatencyWindow),
	}
	e.degraded = make([]atomic.Uint64, e.numTiers)
	e.highN = int(cfg.HighWatermark*float64(cfg.QueueDepth) + 0.5)
	if e.highN < 1 {
		e.highN = 1
	}
	e.lowN = int(cfg.LowWatermark * float64(cfg.QueueDepth))
	e.slots = make([]atomic.Pointer[worker], len(nets))
	for i, n := range nets {
		tiers := make([]pipeline.Net, 1, e.numTiers)
		tiers[0] = n
		for _, t := range cfg.Degrade {
			tiers = append(tiers, t.Nets[i])
		}
		w := &worker{id: i, nets: tiers, batch: make([]*request, 0, cfg.MaxBatch)}
		e.slots[i].Store(w)
		e.wg.Add(1)
		go e.workerLoop(w)
	}
	if cfg.StallTimeout > 0 {
		e.wg.Add(1)
		go e.watchdog()
	}
	return e, nil
}

// TierName names a ladder rung for display: "full" for tier 0, the
// configured tier name (or "tier<N>") above.
func (e *Engine) TierName(t int) string {
	if t <= 0 {
		return "full"
	}
	if t <= len(e.cfg.Degrade) && e.cfg.Degrade[t-1].Name != "" {
		return e.cfg.Degrade[t-1].Name
	}
	return fmt.Sprintf("tier%d", t)
}

// QueueFill reports the submission queue's fill fraction in [0,1] — the
// pressure signal the fleet router's shed controller averages across
// engines. Safe for concurrent use; one channel read, no locks.
func (e *Engine) QueueFill() float64 {
	if cap(e.queue) == 0 {
		return 0
	}
	return float64(len(e.queue)) / float64(cap(e.queue))
}

// Submit enqueues one frame and waits for its result. Admission never
// blocks: an invalid frame returns ErrInvalidInput, a full queue
// ErrQueueFull, and a closed engine ErrClosed, all immediately. The wait for
// the result is bounded by the request deadline (or ctx); cancelling ctx
// abandons the frame — a worker will still skip past it but no result is
// delivered.
func (e *Engine) Submit(ctx context.Context, req Request) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	seq := e.seq.Add(1) - 1
	cloud := req.Cloud
	if e.faults != nil && cloud != nil {
		// Corrupt-input injection happens before admission on purpose: the
		// chaos tests assert that a poisoned frame is rejected here, never
		// handed to a worker.
		if d := e.faults.Frame(seq); d.Op == faultinject.OpCorrupt {
			cloud = faultinject.Corrupt(cloud, e.faults.Seed, seq)
		}
	}
	if err := validateFrame(cloud, e.cfg.MaxPoints); err != nil {
		e.invalid.Add(1)
		return Result{}, err
	}
	r := &request{
		cloud: cloud,
		key:   req.Key,
		seq:   seq,
		ctx:   ctx,
		enq:   time.Now(),
		reply: make(chan Result, 1),
	}
	timeout := req.Timeout
	if timeout <= 0 {
		timeout = e.cfg.DefaultTimeout
	}
	if timeout > 0 {
		r.deadline = r.enq.Add(timeout)
	}
	if dl, ok := ctx.Deadline(); ok && (r.deadline.IsZero() || dl.Before(r.deadline)) {
		r.deadline = dl
	}

	// The RLock pairs with Close's exclusive section: a send can only race
	// with close(queue) if a Submit could still see closed == false after
	// Close set it, which the lock excludes.
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return Result{}, ErrClosed
	}
	select {
	case e.queue <- r:
		e.mu.RUnlock()
	default:
		e.mu.RUnlock()
		e.rejected.Add(1)
		return Result{}, ErrQueueFull
	}
	e.submitted.Add(1)
	e.maybeStepDown()

	select {
	case res := <-r.reply:
		return res, res.Err
	case <-ctx.Done():
		e.canceled.Add(1)
		return Result{}, ctx.Err()
	}
}

// workerLoop is one pool goroutine: dequeue, coalesce, run, repeat until the
// queue is closed and drained. The leading deferred guard is the package
// invariant — no panic may escape a serve goroutine and kill the process —
// enforced statically by the gorecover analyzer:
//
//edgepc:goroutines-must-recover
func (e *Engine) workerLoop(w *worker) {
	defer e.lastResort(w) // recovers; also balances the incarnation's wg slot
	if w.pendingTrip {
		// This incarnation replaced one whose failure streak crossed
		// PanicTrip (stall deposals count like panics): serve the breaker
		// park before touching the queue.
		w.pendingTrip = false
		e.trip(w)
	}
	for {
		if w.deposed.Load() {
			// The watchdog declared this incarnation wedged, failed its
			// batch and respawned the slot. If we got here the stall
			// resolved late — bow out without touching the queue.
			return
		}
		first := w.carry
		w.carry = nil
		if first == nil {
			var ok bool
			first, ok = <-e.queue
			if !ok {
				return
			}
		}
		w.batch = append(w.batch[:0], first)
		e.coalesce(w)
		e.runBatch(w)
	}
}

// coalesce grows w.batch with compatible pending frames. Phase 1 drains
// whatever is immediately queued (no waiting). Phase 2 — only entered when
// phase 1 found batch-mates, the adaptivity rule — waits up to BatchWindow
// for stragglers. A frame with a different key ends the batch and is carried
// into the next one.
func (e *Engine) coalesce(w *worker) {
	key := w.batch[0].key
	for len(w.batch) < e.cfg.MaxBatch {
		select {
		case r, ok := <-e.queue:
			if !ok {
				return
			}
			if r.key != key {
				w.carry = r
				return
			}
			w.batch = append(w.batch, r)
		default:
			if len(w.batch) < 2 || e.cfg.BatchWindow <= 0 {
				return
			}
			e.coalesceWindow(w, key)
			return
		}
	}
}

// coalesceWindow is coalesce's phase 2: blocking receives under a shared
// BatchWindow timer.
func (e *Engine) coalesceWindow(w *worker, key string) {
	timer := time.NewTimer(e.cfg.BatchWindow)
	defer timer.Stop()
	for len(w.batch) < e.cfg.MaxBatch {
		select {
		case r, ok := <-e.queue:
			if !ok {
				return
			}
			if r.key != key {
				w.carry = r
				return
			}
			w.batch = append(w.batch, r)
		case <-timer.C:
			return
		}
	}
}

// runBatch executes every frame of the worker's batch in submission order.
// Frames run individually through the replica (the batch amortizes dispatch,
// not compute — each forward already parallelizes internally), so one bad
// frame fails alone. The serving tier is sampled once per batch; a panicked
// frame quarantines the replica before the next frame runs (resilience.go).
//
//edgepc:hotpath
func (e *Engine) runBatch(w *worker) {
	n := len(w.batch)
	e.batches.Add(1)
	e.frames.Add(uint64(n))
	tier := e.currentTier()
	// Publish the in-flight batch and start the heartbeat so the stall
	// watchdog can see (and fail) exactly these requests if we wedge. The
	// publish copies into a private slice under liveMu: the worker keeps
	// mutating w.batch lock-free on the hot path.
	w.stalled.Store(false)
	w.liveMu.Lock()
	w.live = append(w.live[:0], w.batch...)
	w.liveMu.Unlock()
	w.beat.Store(time.Now().UnixNano())
	if e.faults != nil {
		if d := e.faults.Frame(w.batch[0].seq); d.Op == faultinject.OpStall {
			time.Sleep(d.Sleep)
		}
	}
	for i, r := range w.batch {
		if w.deposed.Load() {
			// The watchdog already failed every published request and
			// respawned the slot; running the rest of the batch would be
			// wasted compute on a zombie.
			break
		}
		if e.runProtected(w, r, n, tier) {
			e.quarantine(w, tier)
			if w.consec.Add(1) >= int32(e.cfg.PanicTrip) {
				w.consec.Store(0)
				w.beat.Store(0) // a breaker park is not a stall
				e.trip(w)
				w.beat.Store(time.Now().UnixNano())
			}
		} else {
			w.consec.Store(0)
			w.trips.Store(0)
			w.respawns.Store(0)
		}
		w.batch[i] = nil // release the request for GC; the slice is reused
	}
	w.beat.Store(0)
	w.liveMu.Lock()
	w.live = w.live[:0]
	w.liveMu.Unlock()
	e.observeLoad()
}

// runFrame is the per-frame worker hot loop: deadline/cancellation gate,
// then the reentrant pipeline entry point against the worker's private
// replica and trace. The steady-state allocation profile is the single-frame
// pipeline's (see BenchmarkServeSteadyState): the request, its reply channel
// and the detached Output header are the only serve-layer additions.
//
//edgepc:hotpath
func (e *Engine) runFrame(w *worker, r *request, batchSize, tier int) {
	now := time.Now()
	w.beat.Store(now.UnixNano()) // frame-start heartbeat for the watchdog
	if r.ctx.Err() != nil {
		// Submitter is gone (counted in canceled at Submit); deliver into
		// the buffered channel for the record and move on.
		r.deliver(Result{Err: r.ctx.Err(), Worker: w.id, BatchSize: batchSize, Tier: tier})
		return
	}
	if !r.deadline.IsZero() && now.After(r.deadline) {
		if e.finish(r, Result{Err: ErrDeadline, Worker: w.id, BatchSize: batchSize, Tier: tier, Wait: now.Sub(r.enq)}) {
			e.timedOut.Add(1)
		}
		return
	}
	if e.faults != nil {
		switch d := e.faults.Frame(r.seq); d.Op {
		case faultinject.OpPanic:
			panic(fmt.Sprintf("faultinject: frame %d", r.seq))
		case faultinject.OpDelay:
			time.Sleep(d.Sleep)
		}
	}
	rep, out, err := pipeline.RunInto(w.nets[tier], r.cloud, &w.trace, e.dev, e.sim)
	if err != nil {
		if e.finish(r, Result{Err: fmt.Errorf("serve: worker %d: %w", w.id, err), Worker: w.id, BatchSize: batchSize, Tier: tier, Wait: now.Sub(r.enq)}) {
			e.failed.Add(1)
		}
		return
	}
	if e.finish(r, Result{Output: out, Report: rep, Worker: w.id, BatchSize: batchSize, Tier: tier, Wait: now.Sub(r.enq)}) {
		e.completed.Add(1)
		e.degraded[tier].Add(1)
	}
}

// finish stamps the end-to-end latency and delivers the result (never
// blocking: the reply channel is buffered and read at most once). It
// reports whether this caller won the delivery — counters must only move
// for the winner, so a zombie worker finishing a batch the watchdog
// already failed cannot double-count frames.
//
//edgepc:hotpath
func (e *Engine) finish(r *request, res Result) bool {
	res.Total = time.Since(r.enq)
	if !r.deliver(res) {
		return false
	}
	e.latency.Observe(res.Total)
	return true
}

// Close stops admission, wakes any breaker-parked worker, drains every
// queued frame through the workers, and returns once all in-flight work has
// completed. Queued frames are still served (or dropped via their
// deadlines); new Submits fail with ErrClosed. A second Close returns
// ErrClosed.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	e.closed = true
	e.mu.Unlock()
	close(e.closing) // interrupt breaker backoffs: drain must never wait one out
	close(e.queue)
	e.wg.Wait()
	return nil
}

// Stats is a point-in-time snapshot of the engine's counters and latency
// distribution.
type Stats struct {
	Workers  int
	QueueLen int // frames currently queued
	QueueCap int

	Submitted uint64 // admitted frames
	Completed uint64 // frames served successfully
	Failed    uint64 // frames whose forward pass errored
	Rejected  uint64 // backpressure rejections (ErrQueueFull)
	TimedOut  uint64 // frames dropped at their deadline (ErrDeadline)
	Canceled  uint64 // submitters that abandoned via ctx
	Invalid   uint64 // frames rejected at admission (ErrInvalidInput)

	Panics       uint64 // frames failed by a worker panic (ErrPanic)
	Quarantines  uint64 // replica quarantine events after panics
	BreakerTrips uint64 // circuit-breaker parks across all workers
	Stalls       uint64 // frames failed by the stall watchdog (ErrStalled)
	Respawns     uint64 // worker respawns (escaped panics + stall deposals)
	LastPanic    string // worker, value and stack of the most recent panic

	Tier      int      // current degradation tier (0 = full fidelity)
	StepDowns uint64   // ladder step-down events
	StepUps   uint64   // ladder step-up (recovery) events
	Degraded  []uint64 // completed frames per tier; index 0 = full fidelity

	Batches   uint64  // micro-batches executed
	Frames    uint64  // frames across all batches
	MeanBatch float64 // Frames / Batches

	Latency metrics.LatencySnapshot // end-to-end submit→completion
}

// Stats returns a snapshot; safe to call concurrently with serving.
func (e *Engine) Stats() Stats {
	s := Stats{
		Workers:      e.workers,
		QueueLen:     len(e.queue),
		QueueCap:     cap(e.queue),
		Submitted:    e.submitted.Load(),
		Completed:    e.completed.Load(),
		Failed:       e.failed.Load(),
		Rejected:     e.rejected.Load(),
		TimedOut:     e.timedOut.Load(),
		Canceled:     e.canceled.Load(),
		Invalid:      e.invalid.Load(),
		Panics:       e.panics.Load(),
		Quarantines:  e.quarantines.Load(),
		BreakerTrips: e.trips.Load(),
		Stalls:       e.stalls.Load(),
		Respawns:     e.respawns.Load(),
		Tier:         int(e.tier.Load()),
		StepDowns:    e.stepDowns.Load(),
		StepUps:      e.stepUps.Load(),
		Batches:      e.batches.Load(),
		Frames:       e.frames.Load(),
		Latency:      e.latency.Snapshot(),
	}
	s.Degraded = make([]uint64, e.numTiers)
	for i := range e.degraded {
		s.Degraded[i] = e.degraded[i].Load()
	}
	e.panicMu.Lock()
	s.LastPanic = e.lastPanic
	e.panicMu.Unlock()
	if s.Batches > 0 {
		s.MeanBatch = float64(s.Frames) / float64(s.Batches)
	}
	return s
}
