package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/edgesim"
	"repro/internal/pipeline"
)

// Router integration tests over stub-net fleets: affinity, QoS wiring,
// shed ordering (low-priority shed while high-priority keeps being served),
// spillover, and accounting conservation.

// newStubFleet builds n single-worker engines, each with its own gate
// channel (nil gates serve instantly), and a router over them.
func newStubFleet(t *testing.T, n int, gated bool, cfg Config, rcfg RouterConfig) (*Router, []chan struct{}) {
	t.Helper()
	gates := make([]chan struct{}, n)
	engines := make([]*Engine, n)
	for i := range engines {
		var gate chan struct{}
		if gated {
			gate = make(chan struct{})
		}
		gates[i] = gate
		e, err := New([]pipeline.Net{&stubNet{gate: gate}}, nil, edgesim.Config{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = e
	}
	rt, err := NewRouter(engines, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	// Cleanup (not a test-body defer): open every gate before closing the
	// router, so a mid-test Fatal can never deadlock Close behind a worker
	// parked in a gated Forward.
	t.Cleanup(func() {
		for _, g := range gates {
			if g == nil {
				continue
			}
			select {
			case <-g: // already closed by the test body
			default:
				close(g)
			}
		}
		rt.Close()
	})
	return rt, gates
}

// conserve asserts the router's accounting conservation law.
func conserve(t *testing.T, s RouterStats) {
	t.Helper()
	if err := s.Conservation(); err != nil {
		t.Fatal(err)
	}
}

func TestRouterServesAndRoutesByAffinity(t *testing.T) {
	rt, _ := newStubFleet(t, 4, false, Config{}, RouterConfig{})
	cloud := testCloud()
	const frames = 40
	for i := 0; i < frames; i++ {
		stream := fmt.Sprintf("stream-%d", i%8)
		want := rt.EngineFor(stream)
		res, err := rt.Submit(context.Background(), FleetRequest{
			Request: Request{Cloud: cloud},
			Tenant:  fmt.Sprintf("tenant-%d", i%3),
			Stream:  stream,
		})
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if res.Output == nil {
			t.Fatalf("frame %d: no output", i)
		}
		// With idle engines nothing spills: the owner serves its streams.
		if got := rt.EngineFor(stream); got != want {
			t.Fatalf("stream %q moved engines %d -> %d", stream, want, got)
		}
	}
	s := rt.Stats()
	conserve(t, s)
	if s.Completed != frames || s.Spills != 0 {
		t.Fatalf("completed=%d spills=%d, want %d/0", s.Completed, s.Spills, frames)
	}
	var engineTotal uint64
	for _, es := range s.EngineStats {
		engineTotal += es.Completed
	}
	if engineTotal != frames {
		t.Fatalf("engine completions sum %d, want %d", engineTotal, frames)
	}
	if len(s.Tenants) != 3 {
		t.Fatalf("tenant windows = %d, want 3", len(s.Tenants))
	}
}

func TestRouterTenantFallsBackAsRoutingKey(t *testing.T) {
	rt, _ := newStubFleet(t, 3, false, Config{}, RouterConfig{})
	// With no Stream, the tenant is the routing key.
	if _, err := rt.Submit(context.Background(), FleetRequest{
		Request: Request{Cloud: testCloud()},
		Tenant:  "solo",
	}); err != nil {
		t.Fatal(err)
	}
	owner := rt.EngineFor("solo")
	s := rt.Stats()
	if s.EngineStats[owner].Completed != 1 {
		t.Fatalf("tenant-keyed frame not served by owner %d", owner)
	}
}

func TestRouterQoSThrottles(t *testing.T) {
	clk := newFakeClock()
	qos := NewQoS(QoSConfig{
		Tenants: map[string]TenantLimit{"metered": {Rate: 1, Burst: 2}},
		Clock:   clk.Now,
	})
	rt, _ := newStubFleet(t, 2, false, Config{}, RouterConfig{QoS: qos, Clock: clk.Now})
	cloud := testCloud()
	var throttled int
	for i := 0; i < 3; i++ {
		_, err := rt.Submit(context.Background(), FleetRequest{Request: Request{Cloud: cloud}, Tenant: "metered"})
		if errors.Is(err, ErrThrottled) {
			throttled++
		} else if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	if throttled != 1 {
		t.Fatalf("throttled = %d of 3 at burst 2, want 1", throttled)
	}
	s := rt.Stats()
	conserve(t, s)
	if s.ShedThrottled != 1 || s.Completed != 2 || s.QoS.Throttled != 1 {
		t.Fatalf("stats: %+v", s)
	}
	if ts := s.Tenants["metered"]; ts.Completed != 2 || ts.Shed != 1 {
		t.Fatalf("tenant counters: %+v", ts)
	}
}

func TestRouterShedsLowPriorityWhileServingHigh(t *testing.T) {
	// The overload ordering story end to end: fill the fleet with
	// high-priority work past the shed watermark, then watch a low-priority
	// frame get shed by the fleet controller while every high-priority frame
	// is served once capacity frees up.
	qos := NewQoS(QoSConfig{
		Tenants: map[string]TenantLimit{
			"hi": {Priority: PriorityHigh}, // unlimited rate
			"lo": {Priority: PriorityLow},
		},
	})
	const inflight = 14 // 2 workers busy + 12 queued of 16 slots: fill 0.75
	rt, gates := newStubFleet(t, 2, true,
		Config{QueueDepth: 8, MaxBatch: 1},
		RouterConfig{QoS: qos})
	cloud := testCloud()
	var wg sync.WaitGroup
	errs := make([]error, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = rt.Submit(context.Background(), FleetRequest{
				Request: Request{Cloud: cloud},
				Tenant:  "hi",
				Stream:  fmt.Sprintf("cam-%d", i),
			})
		}(i)
	}
	waitUntil(t, "fleet queues to fill", func() bool {
		var submitted uint64
		for i := 0; i < rt.Engines(); i++ {
			submitted += rt.Engine(i).Stats().Submitted
		}
		return submitted == inflight
	})

	// Fleet mean fill is now 12/16 = 0.75, past the 0.55 shed watermark: the
	// low-priority frame is dropped before touching any queue...
	if _, err := rt.Submit(context.Background(), FleetRequest{Request: Request{Cloud: cloud}, Tenant: "lo"}); !errors.Is(err, ErrShed) {
		t.Fatalf("low-priority frame under pressure: %v, want ErrShed", err)
	}
	// ...while high-priority frames are still admitted (never shed).
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := rt.Submit(context.Background(), FleetRequest{
			Request: Request{Cloud: cloud}, Tenant: "hi", Stream: "cam-extra",
		})
		if err != nil {
			t.Errorf("high-priority frame under pressure: %v", err)
		}
	}()

	for _, g := range gates {
		close(g)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("high frame %d: %v", i, err)
		}
	}
	s := rt.Stats()
	conserve(t, s)
	if s.ShedOverload != 1 {
		t.Fatalf("shed overload = %d, want exactly the low frame", s.ShedOverload)
	}
	if s.Completed != inflight+1 {
		t.Fatalf("completed = %d, want all %d high frames", s.Completed, inflight+1)
	}
	if s.Shed.Level == 0 && s.Shed.Raises == 0 {
		t.Fatal("shed controller never engaged")
	}
	if ts := s.Tenants["hi"]; ts.Shed != 0 {
		t.Fatalf("high-priority tenant shed %d frames", ts.Shed)
	}
}

// pinStream finds a stream key owned by the wanted engine.
func pinStream(t *testing.T, rt *Router, engine int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("pin-%d", i)
		if rt.EngineFor(key) == engine {
			return key
		}
	}
	t.Fatal("no key found for engine")
	return ""
}

// fillEngine blocks the stream owner's worker and queue with background
// submits. It submits to the engine directly, not through the router: a
// router submit that races with an earlier filler still sitting in the
// depth-1 queue would spill to the successor instead of filling the owner.
func fillEngine(t *testing.T, rt *Router, stream string, n int, wg *sync.WaitGroup) {
	t.Helper()
	cloud := testCloud()
	eng := rt.Engine(rt.EngineFor(stream))
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				_, err := eng.Submit(context.Background(), Request{Cloud: cloud})
				if errors.Is(err, ErrQueueFull) {
					// Lost the enqueue race to a sibling filler: retry until
					// the worker+queue steady state absorbs every filler.
					time.Sleep(100 * time.Microsecond)
					continue
				}
				if err != nil {
					t.Errorf("filler: %v", err)
				}
				return
			}
		}()
	}
	waitUntil(t, "engine to fill", func() bool {
		return eng.QueueFill() >= 1
	})
}

func TestRouterSpillsToRingSuccessor(t *testing.T) {
	rt, gates := newStubFleet(t, 2, true, Config{QueueDepth: 1, MaxBatch: 1}, RouterConfig{})
	stream := pinStream(t, rt, 0)
	var wg sync.WaitGroup
	fillEngine(t, rt, stream, 2, &wg) // worker + depth-1 queue of engine 0
	// Engine 1 is idle: mean fill 0.5 stays under the shed watermark, and
	// the next frame for engine 0's stream spills to engine 1 and completes
	// even though its owner is saturated.
	close(gates[1])
	if _, err := rt.Submit(context.Background(), FleetRequest{
		Request: Request{Cloud: testCloud()}, Tenant: "t", Stream: stream,
	}); err != nil {
		t.Fatalf("spill frame: %v", err)
	}
	close(gates[0])
	wg.Wait()
	s := rt.Stats()
	conserve(t, s)
	if s.Spills == 0 {
		t.Fatal("no spill recorded")
	}
	if s.EngineStats[1].Completed == 0 {
		t.Fatal("successor engine served nothing")
	}
}

func TestRouterQueueFullWithoutSpill(t *testing.T) {
	rt, gates := newStubFleet(t, 2, true, Config{QueueDepth: 1, MaxBatch: 1}, RouterConfig{Spill: -1})
	stream := pinStream(t, rt, 0)
	var wg sync.WaitGroup
	fillEngine(t, rt, stream, 2, &wg)
	// Spillover disabled: the same overflow frame is shed as queue-full.
	if _, err := rt.Submit(context.Background(), FleetRequest{
		Request: Request{Cloud: testCloud()}, Tenant: "t", Stream: stream,
	}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow with spill disabled: %v, want ErrQueueFull", err)
	}
	for _, g := range gates {
		close(g)
	}
	wg.Wait()
	s := rt.Stats()
	conserve(t, s)
	if s.ShedQueueFull != 1 || s.Spills != 0 {
		t.Fatalf("shedQueueFull=%d spills=%d, want 1/0", s.ShedQueueFull, s.Spills)
	}
}

func TestRouterConstructionAndClose(t *testing.T) {
	if _, err := NewRouter(nil, RouterConfig{}); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if _, err := NewRouter([]*Engine{nil}, RouterConfig{}); err == nil {
		t.Fatal("nil engine accepted")
	}
	e := newStubEngine(t, nil, Config{})
	if _, err := NewRouter([]*Engine{e, e}, RouterConfig{}); err == nil {
		t.Fatal("duplicate engine accepted")
	}
	rt, err := NewRouter([]*Engine{e}, RouterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := rt.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second close: %v, want ErrClosed", err)
	}
	if _, err := rt.Submit(context.Background(), FleetRequest{Request: Request{Cloud: testCloud()}, Tenant: "t"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
}
