package serve

import (
	"fmt"
	"sort"
)

// Consistent-hash ring for the fleet router: tenant/stream keys map to
// engines through a ring of virtual nodes, so adding or removing an engine
// remaps only the key fraction that consistent hashing promises (~1/N on
// add; exactly the removed engine's keys on removal) instead of reshuffling
// the whole fleet. Stream affinity — equal keys always landing on the same
// engine — is what keeps a stream's frames hitting one engine's warm caches
// (ROADMAP item 3's StreamKey hook).

// DefaultVNodes is the virtual-node count per engine when a Ring or Router
// is built with zero. 128 vnodes bound the per-engine load imbalance over
// random keys to roughly ±25% of the mean in practice (see the quick
// property test, which documents and enforces a 2× ceiling).
const DefaultVNodes = 128

// Ring is an immutable consistent-hash ring over engine ids. Build with
// NewRing or NewRingOf; safe for concurrent use.
type Ring struct {
	hashes []uint64 // sorted vnode positions
	owner  []int32  // engine id owning hashes[i]
	ids    []int    // distinct engine ids on the ring
}

// NewRing builds a ring over engine ids 0..engines-1.
func NewRing(engines, vnodes int) (*Ring, error) {
	if engines < 1 {
		return nil, fmt.Errorf("serve: ring needs at least one engine")
	}
	ids := make([]int, engines)
	for i := range ids {
		ids[i] = i
	}
	return NewRingOf(ids, vnodes)
}

// NewRingOf builds a ring over an explicit engine id set — the form the
// remap properties are stated in: NewRingOf(ids minus e) is exactly the ring
// after engine e is removed, because a vnode's position depends only on its
// own (id, replica) pair.
func NewRingOf(ids []int, vnodes int) (*Ring, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("serve: ring needs at least one engine")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[int]bool, len(ids))
	r := &Ring{
		hashes: make([]uint64, 0, len(ids)*vnodes),
		owner:  make([]int32, 0, len(ids)*vnodes),
		ids:    append([]int(nil), ids...),
	}
	for _, id := range ids {
		if id < 0 {
			return nil, fmt.Errorf("serve: negative engine id %d", id)
		}
		if seen[id] {
			return nil, fmt.Errorf("serve: duplicate engine id %d", id)
		}
		seen[id] = true
		for v := 0; v < vnodes; v++ {
			r.hashes = append(r.hashes, vnodeHash(id, v))
			r.owner = append(r.owner, int32(id))
		}
	}
	// Sort positions; ties (astronomically rare) break on owner id so the
	// ring is deterministic regardless of construction order.
	idx := make([]int, len(r.hashes))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ha, hb := r.hashes[idx[a]], r.hashes[idx[b]]
		if ha != hb {
			return ha < hb
		}
		return r.owner[idx[a]] < r.owner[idx[b]]
	})
	hashes := make([]uint64, len(idx))
	owner := make([]int32, len(idx))
	for i, j := range idx {
		hashes[i] = r.hashes[j]
		owner[i] = r.owner[j]
	}
	r.hashes, r.owner = hashes, owner
	return r, nil
}

// Engines returns the distinct engine ids on the ring.
func (r *Ring) Engines() []int { return r.ids }

// Lookup maps a key to its owning engine: the first vnode clockwise of the
// key's hash.
func (r *Ring) Lookup(key string) int {
	return r.LookupHash(KeyHash(key))
}

// LookupHash is Lookup over a pre-computed key hash — the allocation-free
// form the loadgen simulator uses for integer tenant/stream ids.
func (r *Ring) LookupHash(h uint64) int {
	return int(r.owner[r.succ(h)])
}

// succ returns the index of the first vnode at or clockwise of h.
func (r *Ring) succ(h uint64) int {
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		return 0
	}
	return i
}

// Candidates appends, to buf[:0], up to max distinct engine ids in ring
// order starting at the key's owner — the router's spillover order: the
// owner first, then the engines that would inherit the key if the owner
// were removed. buf is reused to keep the per-request path allocation-free
// once warm.
func (r *Ring) Candidates(key string, max int, buf []int) []int {
	return r.CandidatesHash(KeyHash(key), max, buf)
}

// CandidatesHash is Candidates over a pre-computed key hash.
func (r *Ring) CandidatesHash(h uint64, max int, buf []int) []int {
	buf = buf[:0]
	if max <= 0 {
		return buf
	}
	if max > len(r.ids) {
		max = len(r.ids)
	}
	start := r.succ(h)
	for i := 0; i < len(r.hashes) && len(buf) < max; i++ {
		id := int(r.owner[(start+i)%len(r.hashes)])
		dup := false
		for _, b := range buf {
			if b == id {
				dup = true
				break
			}
		}
		if !dup {
			buf = append(buf, id)
		}
	}
	return buf
}

// KeyHash hashes a routing key (FNV-1a 64, finalized with SplitMix64 for
// avalanche on short keys). Inlined rather than hash/fnv to stay
// allocation-free on the submit path.
func KeyHash(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return mix64(h)
}

// vnodeHash positions replica v of engine id on the ring.
func vnodeHash(id, v int) uint64 {
	return mix64(uint64(id)<<32 | uint64(uint32(v)) ^ 0x9e3779b97f4a7c15)
}

// mix64 is the SplitMix64 finalizer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
