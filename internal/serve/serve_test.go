package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/edgesim"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/tensor"
)

// stubNet is a pipeline.Net whose Forward blocks on gate (when non-nil)
// until the test releases it — the lever that makes queue-full, deadline and
// batching scenarios deterministic instead of timing-dependent.
type stubNet struct {
	gate chan struct{}
}

func (s *stubNet) Forward(cloud *geom.Cloud, trace *model.Trace, train bool) (*model.Output, error) {
	if s.gate != nil {
		<-s.gate
	}
	return &model.Output{Logits: tensor.New(1, 2)}, nil
}

func (s *stubNet) Backward(grad *tensor.Matrix) error { return nil }
func (s *stubNet) Params() []*nn.Param                { return nil }

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// testCloud is a minimal valid frame for stub engines.
func testCloud() *geom.Cloud {
	c := geom.NewCloud(4, 0)
	for i := range c.Points {
		c.Points[i] = geom.Point3{X: float64(i), Y: 1, Z: 2}
	}
	return c
}

func newStubEngine(t *testing.T, gate chan struct{}, cfg Config) *Engine {
	t.Helper()
	e, err := New([]pipeline.Net{&stubNet{gate: gate}}, nil, edgesim.Config{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSubmitServes(t *testing.T) {
	e := newStubEngine(t, nil, Config{})
	defer e.Close()
	cloud := testCloud()
	for i := 0; i < 5; i++ {
		res, err := e.Submit(context.Background(), Request{Cloud: cloud})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if res.Output == nil || res.Output.Logits == nil {
			t.Fatalf("submit %d: no logits", i)
		}
		if res.Worker != 0 || res.BatchSize != 1 {
			t.Fatalf("submit %d: worker=%d batch=%d", i, res.Worker, res.BatchSize)
		}
		if res.Total < res.Wait || res.Total <= 0 {
			t.Fatalf("submit %d: total=%v wait=%v", i, res.Total, res.Wait)
		}
	}
	s := e.Stats()
	if s.Completed != 5 || s.Submitted != 5 || s.Latency.Count != 5 {
		t.Fatalf("stats: %+v", s)
	}
	if s.Workers != 1 {
		t.Fatalf("workers = %d", s.Workers)
	}
}

func TestSubmitEmptyCloud(t *testing.T) {
	e := newStubEngine(t, nil, Config{})
	defer e.Close()
	if _, err := e.Submit(context.Background(), Request{}); err == nil {
		t.Fatal("nil cloud accepted")
	}
	if _, err := e.Submit(context.Background(), Request{Cloud: geom.NewCloud(0, 0)}); err == nil {
		t.Fatal("empty cloud accepted")
	}
}

func TestBackpressureRejectsWhenFull(t *testing.T) {
	gate := make(chan struct{})
	e := newStubEngine(t, gate, Config{QueueDepth: 2, MaxBatch: 1})
	cloud := testCloud()
	var wg sync.WaitGroup
	results := make(chan error, 3)
	submit := func() {
		defer wg.Done()
		_, err := e.Submit(context.Background(), Request{Cloud: cloud})
		results <- err
	}
	// A occupies the worker (blocked in Forward).
	wg.Add(1)
	go submit()
	waitUntil(t, "worker to pick up frame A", func() bool { return e.Stats().Batches == 1 })
	// B and C fill the depth-2 queue.
	wg.Add(2)
	go submit()
	go submit()
	waitUntil(t, "queue to fill", func() bool { return e.Stats().QueueLen == 2 })
	// D must be rejected immediately, without blocking.
	start := time.Now()
	_, err := e.Submit(context.Background(), Request{Cloud: cloud})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: %v, want ErrQueueFull", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("rejection took %v; admission must not block", d)
	}
	for i := 0; i < 3; i++ {
		gate <- struct{}{}
	}
	wg.Wait()
	close(results)
	for err := range results {
		if err != nil {
			t.Fatalf("admitted frame failed: %v", err)
		}
	}
	s := e.Stats()
	if s.Rejected != 1 || s.Completed != 3 {
		t.Fatalf("rejected=%d completed=%d, want 1/3", s.Rejected, s.Completed)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlineDropsStaleFrame(t *testing.T) {
	gate := make(chan struct{})
	e := newStubEngine(t, gate, Config{QueueDepth: 4, MaxBatch: 1})
	cloud := testCloud()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := e.Submit(context.Background(), Request{Cloud: cloud}); err != nil {
			t.Errorf("frame A: %v", err)
		}
	}()
	waitUntil(t, "worker to pick up frame A", func() bool { return e.Stats().Batches == 1 })
	errB := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := e.Submit(context.Background(), Request{Cloud: cloud, Timeout: time.Millisecond})
		errB <- err
	}()
	waitUntil(t, "frame B to queue", func() bool { return e.Stats().QueueLen == 1 })
	time.Sleep(5 * time.Millisecond) // let B's deadline lapse while queued
	gate <- struct{}{}               // release A; B is dropped without running
	wg.Wait()
	if err := <-errB; !errors.Is(err, ErrDeadline) {
		t.Fatalf("frame B: %v, want ErrDeadline", err)
	}
	s := e.Stats()
	if s.TimedOut != 1 || s.Completed != 1 {
		t.Fatalf("timedOut=%d completed=%d, want 1/1", s.TimedOut, s.Completed)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestContextCancelAbandonsFrame(t *testing.T) {
	gate := make(chan struct{})
	e := newStubEngine(t, gate, Config{QueueDepth: 4, MaxBatch: 1})
	cloud := testCloud()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := e.Submit(context.Background(), Request{Cloud: cloud}); err != nil {
			t.Errorf("frame A: %v", err)
		}
	}()
	waitUntil(t, "worker to pick up frame A", func() bool { return e.Stats().Batches == 1 })
	ctx, cancel := context.WithCancel(context.Background())
	errB := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := e.Submit(ctx, Request{Cloud: cloud})
		errB <- err
	}()
	waitUntil(t, "frame B to queue", func() bool { return e.Stats().QueueLen == 1 })
	cancel()
	if err := <-errB; !errors.Is(err, context.Canceled) {
		t.Fatalf("frame B: %v, want context.Canceled", err)
	}
	gate <- struct{}{} // release A; worker then skips the abandoned B
	wg.Wait()
	if err := e.Close(); err != nil { // Close drains: worker has consumed B
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Canceled != 1 || s.Completed != 1 {
		t.Fatalf("canceled=%d completed=%d, want 1/1", s.Canceled, s.Completed)
	}
}

func TestMicroBatchCoalesces(t *testing.T) {
	gate := make(chan struct{})
	e := newStubEngine(t, gate, Config{QueueDepth: 8, MaxBatch: 4, BatchWindow: -1})
	cloud := testCloud()
	var wg sync.WaitGroup
	sizes := make(chan int, 4)
	submit := func() {
		defer wg.Done()
		res, err := e.Submit(context.Background(), Request{Cloud: cloud})
		if err != nil {
			t.Errorf("submit: %v", err)
			sizes <- -1
			return
		}
		sizes <- res.BatchSize
	}
	wg.Add(1)
	go submit() // A occupies the worker
	waitUntil(t, "worker to pick up frame A", func() bool { return e.Stats().Batches == 1 })
	wg.Add(3)
	go submit()
	go submit()
	go submit()
	waitUntil(t, "B,C,D to queue", func() bool { return e.Stats().QueueLen == 3 })
	for i := 0; i < 4; i++ {
		gate <- struct{}{}
	}
	wg.Wait()
	close(sizes)
	var got []int
	for s := range sizes {
		got = append(got, s)
	}
	// A ran alone; B, C and D were coalesced into one batch of 3.
	ones, threes := 0, 0
	for _, s := range got {
		switch s {
		case 1:
			ones++
		case 3:
			threes++
		default:
			t.Fatalf("unexpected batch size %d in %v", s, got)
		}
	}
	if ones != 1 || threes != 3 {
		t.Fatalf("batch sizes %v, want one 1 and three 3s", got)
	}
	s := e.Stats()
	if s.Batches != 2 || s.Frames != 4 || s.MeanBatch != 2 {
		t.Fatalf("batches=%d frames=%d mean=%v, want 2/4/2", s.Batches, s.Frames, s.MeanBatch)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestKeyMismatchSplitsBatch(t *testing.T) {
	gate := make(chan struct{})
	e := newStubEngine(t, gate, Config{QueueDepth: 8, MaxBatch: 4, BatchWindow: -1})
	cloud := testCloud()
	var wg sync.WaitGroup
	sizes := make(chan int, 4)
	submit := func(key string) {
		defer wg.Done()
		res, err := e.Submit(context.Background(), Request{Cloud: cloud, Key: key})
		if err != nil {
			t.Errorf("submit %q: %v", key, err)
			sizes <- -1
			return
		}
		sizes <- res.BatchSize
	}
	wg.Add(1)
	go submit("a") // occupies the worker
	waitUntil(t, "worker busy", func() bool { return e.Stats().Batches == 1 })
	// Queue a, then x, then a: the x boundary forces three separate batches
	// even though MaxBatch would fit them all.
	wg.Add(1)
	go submit("a")
	waitUntil(t, "first queued", func() bool { return e.Stats().QueueLen == 1 })
	wg.Add(1)
	go submit("x")
	waitUntil(t, "second queued", func() bool { return e.Stats().QueueLen == 2 })
	wg.Add(1)
	go submit("a")
	waitUntil(t, "third queued", func() bool { return e.Stats().QueueLen == 3 })
	for i := 0; i < 4; i++ {
		gate <- struct{}{}
	}
	wg.Wait()
	close(sizes)
	for s := range sizes {
		if s != 1 {
			t.Fatalf("batch size %d, want 1 (keys must never share a batch)", s)
		}
	}
	if s := e.Stats(); s.Batches != 4 || s.Frames != 4 {
		t.Fatalf("batches=%d frames=%d, want 4/4", s.Batches, s.Frames)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseDrainsAndRejectsNewWork(t *testing.T) {
	e := newStubEngine(t, nil, Config{QueueDepth: 16})
	cloud := testCloud()
	const n = 24
	var wg sync.WaitGroup
	var ok, closed, full atomic.Uint64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := e.Submit(context.Background(), Request{Cloud: cloud})
			switch {
			case err == nil:
				ok.Add(1)
			case errors.Is(err, ErrClosed):
				closed.Add(1)
			case errors.Is(err, ErrQueueFull):
				full.Add(1)
			default:
				t.Errorf("unexpected submit error: %v", err)
			}
		}()
	}
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if got := ok.Load() + closed.Load() + full.Load(); got != n {
		t.Fatalf("accounted %d of %d submits", got, n)
	}
	s := e.Stats()
	if s.Completed != ok.Load() {
		t.Fatalf("completed=%d, want %d", s.Completed, ok.Load())
	}
	if _, err := e.Submit(context.Background(), Request{Cloud: cloud}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close submit: %v, want ErrClosed", err)
	}
	if err := e.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second close: %v, want ErrClosed", err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, edgesim.Config{}, Config{}); err == nil {
		t.Fatal("empty replica list accepted")
	}
	if _, err := New([]pipeline.Net{nil}, nil, edgesim.Config{}, Config{}); err == nil {
		t.Fatal("nil replica accepted")
	}
	n := &stubNet{}
	if _, err := New([]pipeline.Net{n, n}, nil, edgesim.Config{}, Config{}); err == nil {
		t.Fatal("duplicate replica accepted")
	}
}
