package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Router is the fleet layer (DESIGN.md §13): it spreads tenant/stream keys
// across N engines with a consistent-hash ring, runs per-tenant QoS and
// fleet-wide priority shedding *before* any engine queue is touched, spills
// a frame to the next engines on the ring when its owner's queue is full,
// and quarantines an engine whose frames keep panicking (or stalling) so
// traffic re-routes around it. With a RetryPolicy/HedgePolicy (retry.go) the
// router also re-routes transient failures and hedges tail latency — both
// multiply *attempts*, not offers, so every Submit still terminates in
// exactly one accounting class and
//
//	Offered = Completed + Failed + ShedThrottled + ShedOverload + ShedQueueFull
//
// holds at all times — the conservation law the chaos tests assert (see
// RouterStats.Conservation). Retries/Hedges/HedgeWins ride alongside as
// attempt counters, with HedgeWins <= Hedges as the secondary invariant.

// RouterConfig tunes the fleet layer. The zero value selects defaults.
type RouterConfig struct {
	// VNodes is the virtual-node count per engine on the hash ring
	// (DefaultVNodes when zero).
	VNodes int
	// QoS, when non-nil, runs per-tenant token-bucket admission and supplies
	// each tenant's priority class. Nil admits everything at PriorityNormal.
	QoS *QoS
	// Shed configures the fleet shed controller (defaults documented there).
	Shed ShedConfig
	// Spill is how many additional ring successors are tried when an
	// engine's queue is full before the frame counts as shed. Default 1;
	// negative disables spillover.
	Spill int
	// FailThreshold is the number of consecutive panic-failures from one
	// engine that quarantine it. Default 3.
	FailThreshold int
	// Cooloff is how long a quarantined engine is skipped by routing before
	// it is probed again. Default 2s.
	Cooloff time.Duration
	// Retry, when non-nil, re-routes transient failures (panicked, stalled
	// or queue-full attempts) to further ring candidates under the request's
	// deadline budget. Nil — the default — keeps Submit single-attempt.
	Retry *RetryPolicy
	// Hedge, when non-nil, duplicates slow in-flight requests on the next
	// candidate after HedgePolicy.Delay. Nil disables hedging.
	Hedge *HedgePolicy
	// TenantWindowSize is the per-tenant latency window capacity
	// (metrics.DefaultLatencyWindow when zero) and TenantCardinality bounds
	// how many tenants get private windows/counters before overflow
	// aggregation (metrics.DefaultTenantCardinality when zero).
	TenantWindowSize  int
	TenantCardinality int
	// Clock injects a time source for quarantine bookkeeping; nil: time.Now.
	Clock Clock
}

func (c *RouterConfig) defaults() {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.Spill == 0 {
		c.Spill = 1
	}
	if c.Spill < 0 {
		c.Spill = 0
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.Cooloff <= 0 {
		c.Cooloff = 2 * time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
}

// FleetRequest is a Request plus the fleet routing identity.
type FleetRequest struct {
	Request
	// Tenant is the accounting and QoS identity: token bucket, priority
	// class, per-tenant latency window. Also the routing key when Stream is
	// empty.
	Tenant string
	// Stream, when set, is the routing key: all frames of one stream land on
	// the same engine (warm-cache affinity). Distinct streams of one tenant
	// may land on different engines.
	Stream string
}

// Router fans Submit calls out across a fleet of engines. Create with
// NewRouter; all methods are safe for concurrent use.
type Router struct {
	cfg     RouterConfig
	engines []*Engine
	ring    *Ring
	qos     *QoS
	shed    *ShedController
	now     Clock
	retry   *RetryPolicy // normalized private copy; nil when disabled
	hedge   *HedgePolicy // normalized private copy; nil when disabled
	seq     atomic.Uint64

	consecFail []atomic.Int32 // per-engine consecutive panic failures
	downUntil  []atomic.Int64 // per-engine quarantine deadline (unix ns)

	offered       atomic.Uint64
	completed     atomic.Uint64
	failed        atomic.Uint64
	shedThrottled atomic.Uint64
	shedOverload  atomic.Uint64
	shedQueueFull atomic.Uint64
	spills        atomic.Uint64
	quarantines   atomic.Uint64
	failOpen      atomic.Uint64
	retries       atomic.Uint64
	hedges        atomic.Uint64
	hedgeWins     atomic.Uint64
	stalls        atomic.Uint64

	latency *metrics.LatencyWindow
	tenants *metrics.TenantWindows

	bufPool sync.Pool // *[]int candidate buffers

	mu     sync.Mutex
	closed bool
}

// NewRouter builds the fleet layer over a set of running engines. The
// router takes ownership for Close; engines must not be shared between
// routers.
func NewRouter(engines []*Engine, cfg RouterConfig) (*Router, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("serve: router needs at least one engine")
	}
	for i, e := range engines {
		if e == nil {
			return nil, fmt.Errorf("serve: nil engine %d", i)
		}
		for j := 0; j < i; j++ {
			if engines[j] == e {
				return nil, fmt.Errorf("serve: engine %d duplicates engine %d", i, j)
			}
		}
	}
	cfg.defaults()
	ring, err := NewRing(len(engines), cfg.VNodes)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		cfg:        cfg,
		engines:    engines,
		ring:       ring,
		qos:        cfg.QoS,
		shed:       NewShedController(cfg.Shed),
		now:        cfg.Clock,
		consecFail: make([]atomic.Int32, len(engines)),
		downUntil:  make([]atomic.Int64, len(engines)),
		latency:    metrics.NewLatencyWindow(cfg.TenantWindowSize),
		tenants:    metrics.NewTenantWindows(cfg.TenantWindowSize, cfg.TenantCardinality),
	}
	if cfg.Retry != nil {
		p := *cfg.Retry
		p.normalize()
		rt.retry = &p
	}
	if cfg.Hedge != nil {
		p := *cfg.Hedge
		p.normalize()
		rt.hedge = &p
	}
	rt.bufPool.New = func() any {
		b := make([]int, 0, len(engines))
		return &b
	}
	return rt, nil
}

// Engines returns the fleet size.
func (rt *Router) Engines() int { return len(rt.engines) }

// Engine returns fleet member i, for per-engine stats inspection.
func (rt *Router) Engine(i int) *Engine { return rt.engines[i] }

// EngineFor reports which engine currently owns a routing key (quarantine
// and spillover ignored) — observability for tests and operators.
func (rt *Router) EngineFor(key string) int { return rt.ring.Lookup(key) }

// Quarantined reports whether engine i is currently quarantined.
func (rt *Router) Quarantined(i int) bool {
	return rt.downUntil[i].Load() > rt.now().UnixNano()
}

// fleetFill samples mean queue fill across non-quarantined engines; if the
// whole fleet is quarantined, across all of them.
func (rt *Router) fleetFill() float64 {
	var sum float64
	n := 0
	now := rt.now().UnixNano()
	for i, e := range rt.engines {
		if rt.downUntil[i].Load() > now {
			continue
		}
		sum += e.QueueFill()
		n++
	}
	if n == 0 {
		for _, e := range rt.engines {
			sum += e.QueueFill()
		}
		n = len(rt.engines)
	}
	return sum / float64(n)
}

// Submit routes one frame through QoS, the shed controller and the ring,
// and waits for its result like Engine.Submit. Error classes, all
// immediate except engine execution itself: ErrThrottled (tenant over
// rate), ErrShed (priority class shed under fleet overload), ErrQueueFull
// (owner and all spill candidates full), ErrClosed, plus every per-frame
// engine error (ErrInvalidInput, ErrDeadline, ErrPanic, ctx errors).
func (rt *Router) Submit(ctx context.Context, req FleetRequest) (Result, error) {
	rt.offered.Add(1)
	prio := PriorityNormal
	if rt.qos != nil {
		p, err := rt.qos.Admit(req.Tenant)
		if err != nil {
			rt.shedThrottled.Add(1)
			rt.tenants.Count(req.Tenant, metrics.TenantShed)
			return Result{}, err
		}
		prio = p
	}
	rt.shed.Observe(rt.fleetFill())
	if rt.shed.Sheds(prio) {
		rt.shedOverload.Add(1)
		rt.tenants.Count(req.Tenant, metrics.TenantShed)
		return Result{}, fmt.Errorf("%w: %s-priority tenant %q at shed level %d", ErrShed, prio, req.Tenant, rt.shed.Level())
	}
	key := req.Stream
	if key == "" {
		key = req.Tenant
	}
	want := 1 + rt.cfg.Spill
	if rt.retry != nil {
		want += rt.retry.Max // each re-attempt rotates one candidate further
	}
	if rt.hedge != nil {
		want++ // the hedge starts one past its attempt's primary
	}
	bufp := rt.bufPool.Get().(*[]int)
	cand := rt.ring.Candidates(key, want, *bufp)
	var res Result
	var err error
	if rt.retry == nil && rt.hedge == nil {
		// Fast path: single attempt, pooled buffer, zero extra allocations.
		res, err = rt.trySubmitFrom(ctx, cand, 0, len(cand), req)
		*bufp = cand[:0]
		rt.bufPool.Put(bufp)
	} else if rt.hedge == nil {
		// Retries are synchronous, so the pooled buffer stays ours.
		res, err = rt.submitSurvivable(ctx, cand, req, rt.seq.Add(1))
		*bufp = cand[:0]
		rt.bufPool.Put(bufp)
	} else {
		// A hedged loser can outlive Submit (it is cancelled, not joined), so
		// it must not share the pooled buffer with a future submission.
		own := make([]int, len(cand))
		copy(own, cand)
		*bufp = cand[:0]
		rt.bufPool.Put(bufp)
		res, err = rt.submitSurvivable(ctx, own, req, rt.seq.Add(1))
	}
	switch {
	case err == nil:
		rt.completed.Add(1)
		rt.latency.Observe(res.Total)
		rt.tenants.Observe(req.Tenant, res.Total)
		rt.tenants.Count(req.Tenant, metrics.TenantCompleted)
	case errors.Is(err, ErrQueueFull):
		rt.shedQueueFull.Add(1)
		rt.tenants.Count(req.Tenant, metrics.TenantShed)
	default:
		rt.failed.Add(1)
		rt.tenants.Count(req.Tenant, metrics.TenantFailed)
	}
	return res, err
}

// trySubmitFrom walks span candidate engines starting at ring position
// start (wrapping): quarantined engines are skipped (unless every walked
// candidate is quarantined, in which case the router fails open and uses
// the walk's first engine anyway — a fully-down fleet should surface engine
// errors, not mask them as sheds), and a full queue spills to the next
// candidate. The first engine that admits the frame decides the outcome.
// The default path walks from 0 over the whole candidate set; retry
// attempts rotate start so a re-attempt lands on fresh engines first.
func (rt *Router) trySubmitFrom(ctx context.Context, cand []int, start, span int, req FleetRequest) (Result, error) {
	now := rt.now().UnixNano()
	var res Result
	err := error(ErrQueueFull)
	tried := 0
	if span > len(cand) {
		span = len(cand)
	}
	first := cand[start%len(cand)]
	for i := 0; i < span; i++ {
		id := cand[(start+i)%len(cand)]
		if rt.downUntil[id].Load() > now {
			continue
		}
		if i > 0 {
			rt.spills.Add(1)
		}
		tried++
		res, err = rt.engines[id].Submit(ctx, req.Request)
		if errors.Is(err, ErrQueueFull) {
			continue
		}
		rt.noteOutcome(id, err)
		return res, err
	}
	if tried > 0 {
		return res, err
	}
	// Whole candidate set quarantined: fail open through the walk's first
	// engine so a fully-down fleet surfaces engine errors instead of
	// masking them.
	rt.failOpen.Add(1)
	res, err = rt.engines[first].Submit(ctx, req.Request)
	if !errors.Is(err, ErrQueueFull) {
		rt.noteOutcome(first, err)
	}
	return res, err
}

// noteOutcome updates an engine's health from one terminal result: a panic
// or stall failure counts toward quarantine (both say "this engine is
// sick"), anything else (success, deadline, invalid input, ctx
// cancellation) resets the streak — those are the frame's or caller's
// fault, not the engine's.
func (rt *Router) noteOutcome(id int, err error) {
	if err != nil && errors.Is(err, ErrStalled) {
		rt.stalls.Add(1)
	}
	if err == nil || (!errors.Is(err, ErrPanic) && !errors.Is(err, ErrStalled)) {
		rt.consecFail[id].Store(0)
		return
	}
	if int(rt.consecFail[id].Add(1)) < rt.cfg.FailThreshold {
		return
	}
	rt.consecFail[id].Store(0)
	rt.downUntil[id].Store(rt.now().Add(rt.cfg.Cooloff).UnixNano())
	rt.quarantines.Add(1)
}

// Close closes every engine in the fleet, draining their queues. Safe to
// call once; a second Close returns ErrClosed.
func (rt *Router) Close() error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return ErrClosed
	}
	rt.closed = true
	rt.mu.Unlock()
	var first error
	for _, e := range rt.engines {
		if err := e.Close(); err != nil && first == nil && !errors.Is(err, ErrClosed) {
			first = err
		}
	}
	return first
}

// RouterStats is a point-in-time snapshot of the fleet.
type RouterStats struct {
	Engines int

	Offered       uint64 // Submit calls
	Completed     uint64 // frames served successfully (any tier)
	Failed        uint64 // frames that reached an engine and failed
	ShedThrottled uint64 // dropped by tenant token buckets (ErrThrottled)
	ShedOverload  uint64 // dropped by the fleet shed controller (ErrShed)
	ShedQueueFull uint64 // owner and spill candidates all full (ErrQueueFull)
	Spills        uint64 // submissions routed past the key's owner
	Quarantines   uint64 // engine quarantine events
	FailOpen      uint64 // submissions with the whole candidate set down
	Retries       uint64 // re-attempts launched by the retry policy
	Hedges        uint64 // hedge attempts launched
	HedgeWins     uint64 // requests whose hedge finished first
	Stalls        uint64 // terminal attempts that failed with ErrStalled

	Shed        ShedStats
	QoS         QoSStats
	Quarantined []bool // per-engine quarantine state

	Latency metrics.LatencySnapshot           // fleet-wide completion latency
	Tenants map[string]metrics.TenantSnapshot // per-tenant windows + counters

	EngineStats []Stats // per-engine counters
}

// Conservation checks the router's accounting invariants on a quiescent
// snapshot (no Submit in flight): every offered request terminated in
// exactly one class, and the hedge counters are internally consistent.
// Retries and hedges are attempt counters — they multiply work, never
// offers — so they appear only in the secondary bounds.
func (s RouterStats) Conservation() error {
	terminal := s.Completed + s.Failed + s.ShedThrottled + s.ShedOverload + s.ShedQueueFull
	if s.Offered != terminal {
		return fmt.Errorf("serve: conservation violated: offered %d != completed %d + failed %d + shed %d/%d/%d = %d",
			s.Offered, s.Completed, s.Failed, s.ShedThrottled, s.ShedOverload, s.ShedQueueFull, terminal)
	}
	if s.HedgeWins > s.Hedges {
		return fmt.Errorf("serve: conservation violated: hedge wins %d > hedges launched %d", s.HedgeWins, s.Hedges)
	}
	return nil
}

// Stats snapshots the router and every engine.
func (rt *Router) Stats() RouterStats {
	s := RouterStats{
		Engines:       len(rt.engines),
		Offered:       rt.offered.Load(),
		Completed:     rt.completed.Load(),
		Failed:        rt.failed.Load(),
		ShedThrottled: rt.shedThrottled.Load(),
		ShedOverload:  rt.shedOverload.Load(),
		ShedQueueFull: rt.shedQueueFull.Load(),
		Spills:        rt.spills.Load(),
		Quarantines:   rt.quarantines.Load(),
		FailOpen:      rt.failOpen.Load(),
		Retries:       rt.retries.Load(),
		Hedges:        rt.hedges.Load(),
		HedgeWins:     rt.hedgeWins.Load(),
		Stalls:        rt.stalls.Load(),
		Shed:          rt.shed.Stats(),
		Latency:       rt.latency.Snapshot(),
		Tenants:       rt.tenants.Snapshot(),
	}
	if rt.qos != nil {
		s.QoS = rt.qos.Stats()
	}
	now := rt.now().UnixNano()
	s.Quarantined = make([]bool, len(rt.engines))
	s.EngineStats = make([]Stats, len(rt.engines))
	for i, e := range rt.engines {
		s.Quarantined[i] = rt.downUntil[i].Load() > now
		s.EngineStats[i] = e.Stats()
	}
	return s
}
