package serve

import (
	"testing"
	"testing/quick"
)

// Ring properties, checked with testing/quick over seeded key populations:
// affinity (equal keys → same engine), documented balance bound, and the
// consistent-hashing remap minimality on engine add/remove.

// keysFrom derives n pseudo-random key hashes from a seed.
func keysFrom(seed uint64, n int) []uint64 {
	out := make([]uint64, n)
	s := seed
	for i := range out {
		s += 0x9e3779b97f4a7c15
		x := s
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		out[i] = x ^ (x >> 31)
	}
	return out
}

func TestRingAffinityQuick(t *testing.T) {
	r, err := NewRing(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(key string) bool {
		a := r.Lookup(key)
		b := r.Lookup(key)
		return a == b && a == r.LookupHash(KeyHash(key)) && a >= 0 && a < 5
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRingBalanceQuick(t *testing.T) {
	// Documented bound (DefaultVNodes doc): with 128 vnodes per engine, no
	// engine owns more than 2× the mean share of a random key population.
	prop := func(seed uint64, eng uint8) bool {
		n := 2 + int(eng%9) // 2..10 engines
		r, err := NewRing(n, 0)
		if err != nil {
			return false
		}
		counts := make([]int, n)
		keys := keysFrom(seed, 4096)
		for _, h := range keys {
			counts[r.LookupHash(h)]++
		}
		mean := float64(len(keys)) / float64(n)
		for _, c := range counts {
			if float64(c) > 2*mean {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRingRemovalRemapsOnlyRemovedQuick(t *testing.T) {
	// Removing engine e remaps exactly e's keys: every key owned by a
	// surviving engine keeps its owner. Stated via NewRingOf — a vnode's
	// position depends only on its own (id, replica) pair.
	prop := func(seed uint64, eng, victim uint8) bool {
		n := 3 + int(eng%6) // 3..8 engines
		v := int(victim) % n
		full, err := NewRing(n, 0)
		if err != nil {
			return false
		}
		ids := make([]int, 0, n-1)
		for i := 0; i < n; i++ {
			if i != v {
				ids = append(ids, i)
			}
		}
		rest, err := NewRingOf(ids, 0)
		if err != nil {
			return false
		}
		for _, h := range keysFrom(seed, 2048) {
			before := full.LookupHash(h)
			after := rest.LookupHash(h)
			if before != v && after != before {
				return false // a survivor's key moved
			}
			if before == v && after == v {
				return false // the removed engine still owns keys
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRingAddRemapsOnlyToNewQuick(t *testing.T) {
	// Adding an engine only moves keys onto the new engine — never between
	// existing engines — and takes roughly a 1/(n+1) share.
	prop := func(seed uint64, eng uint8) bool {
		n := 2 + int(eng%7) // 2..8 engines before the add
		small, err := NewRing(n, 0)
		if err != nil {
			return false
		}
		big, err := NewRing(n+1, 0)
		if err != nil {
			return false
		}
		keys := keysFrom(seed, 4096)
		moved := 0
		for _, h := range keys {
			before := small.LookupHash(h)
			after := big.LookupHash(h)
			if after != before {
				if after != n {
					return false // moved to an old engine
				}
				moved++
			}
		}
		// The new engine's share: ~1/(n+1) of keys, within a generous 3×.
		return float64(moved) <= 3*float64(len(keys))/float64(n+1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRingCandidatesQuick(t *testing.T) {
	r, err := NewRing(6, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf []int
	prop := func(h uint64, max uint8) bool {
		m := int(max % 9) // 0..8, straddling the engine count
		buf = r.CandidatesHash(h, m, buf)
		want := m
		if want > 6 {
			want = 6
		}
		if len(buf) != want {
			return false
		}
		if m > 0 && buf[0] != r.LookupHash(h) {
			return false // owner must come first
		}
		seen := make(map[int]bool, len(buf))
		for _, id := range buf {
			if id < 0 || id >= 6 || seen[id] {
				return false
			}
			seen[id] = true
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRingRejectsBadIDs(t *testing.T) {
	if _, err := NewRingOf(nil, 0); err == nil {
		t.Fatal("empty id set accepted")
	}
	if _, err := NewRingOf([]int{0, 1, 1}, 0); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if _, err := NewRingOf([]int{-1}, 0); err == nil {
		t.Fatal("negative id accepted")
	}
	if _, err := NewRing(0, 0); err == nil {
		t.Fatal("zero engines accepted")
	}
}
