package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Tenant QoS: per-tenant token buckets and priority classes, the admission
// layer the fleet router runs *before* a frame reaches any engine queue
// (DESIGN.md §13). The ordering of the overload mechanisms is deliberate:
//
//	1. token bucket  — a tenant exceeding its contracted rate is throttled,
//	                   whatever the fleet load (isolation);
//	2. load shedding — under fleet-wide pressure, low-priority classes are
//	                   shed first (shed.go);
//	3. degradation   — only after shedding has trimmed the low classes does
//	                   the per-engine ladder cheapen high-priority tiers.
//
// All decisions are driven through an injectable Clock so tests (and the
// loadgen simulator) replay exact admit/reject sequences in virtual time
// with zero wall-clock sleeps.

// Clock abstracts time for the QoS layer and router. Production code leaves
// it nil (time.Now); tests and the loadgen simulator inject virtual clocks.
type Clock func() time.Time

// Priority is a tenant's service class. Lower values are more important:
// under fleet overload the shed controller drops the highest values first
// and PriorityHigh is never shed (the degradation ladder handles it).
type Priority uint8

const (
	// PriorityHigh is never load-shed; overload degrades it via the ladder.
	PriorityHigh Priority = iota
	// PriorityNormal is shed only at the deepest shed level.
	PriorityNormal
	// PriorityLow is the first class shed under fleet pressure.
	PriorityLow
	// NumPriorities is the number of service classes.
	NumPriorities = 3
)

var priorityNames = [NumPriorities]string{"high", "normal", "low"}

// String names the priority class.
func (p Priority) String() string {
	if int(p) < len(priorityNames) {
		return priorityNames[p]
	}
	return fmt.Sprintf("priority(%d)", uint8(p))
}

// ParsePriority maps a class name back to its Priority.
func ParsePriority(s string) (Priority, error) {
	for i, n := range priorityNames {
		if n == s {
			return Priority(i), nil
		}
	}
	return 0, fmt.Errorf("serve: unknown priority %q (want high, normal or low)", s)
}

// ErrThrottled reports a frame rejected by its tenant's token bucket: the
// tenant is over its contracted rate and spending burst credit it does not
// have. Match with errors.Is.
var ErrThrottled = errors.New("serve: tenant throttled")

// TenantLimit is one tenant's QoS contract.
type TenantLimit struct {
	// Rate is the sustained admission rate in frames/second. Zero or
	// negative means unlimited (the bucket never empties).
	Rate float64
	// Burst is the bucket capacity: how many frames a tenant may burst above
	// its sustained rate after idling. Defaults to max(Rate, 1).
	Burst float64
	// Priority is the tenant's service class for load shedding.
	Priority Priority
}

func (l TenantLimit) withDefaults() TenantLimit {
	if l.Burst <= 0 {
		l.Burst = l.Rate
		if l.Burst < 1 {
			l.Burst = 1
		}
	}
	return l
}

// QoSConfig configures the per-tenant admission layer.
type QoSConfig struct {
	// Default is the limit applied to tenants with no explicit entry and no
	// Classify hook.
	Default TenantLimit
	// Tenants holds explicit per-tenant contracts.
	Tenants map[string]TenantLimit
	// Classify, when non-nil, resolves the limit for a tenant seen for the
	// first time that has no Tenants entry — the hook that lets a caller
	// assign priority classes programmatically (hash-based class mixes in
	// the loadgen harness) without materializing a map of every tenant.
	Classify func(tenant string) TenantLimit
	// MaxTenants bounds bucket cardinality: once this many distinct tenants
	// hold buckets, further unknown tenants share one overflow bucket under
	// the Default limit, so an unbounded tenant-id space cannot exhaust
	// memory. Default 1 << 20.
	MaxTenants int
	// Clock injects a time source; nil means time.Now.
	Clock Clock
}

// bucket is one tenant's token bucket. Guarded by QoS.mu.
type bucket struct {
	limit  TenantLimit
	tokens float64
	last   time.Time
}

// QoS is the per-tenant admission layer: one token bucket per tenant,
// refilled continuously at the tenant's contracted rate, capped at its burst
// capacity. Safe for concurrent use.
type QoS struct {
	mu       sync.Mutex
	cfg      QoSConfig
	now      Clock
	buckets  map[string]*bucket
	overflow *bucket

	admitted  uint64
	throttled uint64
}

// NewQoS creates the admission layer. The zero QoSConfig admits everything
// (unlimited default rate) at PriorityNormal-equivalent default class.
func NewQoS(cfg QoSConfig) *QoS {
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = 1 << 20
	}
	now := cfg.Clock
	if now == nil {
		now = time.Now
	}
	return &QoS{cfg: cfg, now: now, buckets: make(map[string]*bucket)}
}

// resolve returns the limit contract for a tenant seen for the first time.
func (q *QoS) resolve(tenant string) TenantLimit {
	if l, ok := q.cfg.Tenants[tenant]; ok {
		return l.withDefaults()
	}
	if q.cfg.Classify != nil {
		return q.cfg.Classify(tenant).withDefaults()
	}
	return q.cfg.Default.withDefaults()
}

// Admit charges one frame to the tenant's bucket and returns the tenant's
// priority class. An empty bucket rejects with an error matching
// ErrThrottled; the frame never reaches a router or engine queue. A new
// tenant's bucket starts full (its burst credit is immediately spendable).
func (q *QoS) Admit(tenant string) (Priority, error) {
	now := q.now()
	q.mu.Lock()
	defer q.mu.Unlock()
	b, ok := q.buckets[tenant]
	if !ok {
		limit := q.resolve(tenant)
		if len(q.buckets) >= q.cfg.MaxTenants {
			if q.overflow == nil {
				def := q.cfg.Default.withDefaults()
				q.overflow = &bucket{limit: def, tokens: def.Burst, last: now}
			}
			b = q.overflow
		} else {
			b = &bucket{limit: limit, tokens: limit.Burst, last: now}
			q.buckets[tenant] = b
		}
	}
	if b.limit.Rate <= 0 { // unlimited contract
		q.admitted++
		return b.limit.Priority, nil
	}
	if el := now.Sub(b.last); el > 0 {
		b.tokens += el.Seconds() * b.limit.Rate
		if b.tokens > b.limit.Burst {
			b.tokens = b.limit.Burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		q.throttled++
		return b.limit.Priority, fmt.Errorf("%w: tenant %q over rate %.3g/s", ErrThrottled, tenant, b.limit.Rate)
	}
	b.tokens--
	q.admitted++
	return b.limit.Priority, nil
}

// Limit reports the contract a tenant resolves to (without creating its
// bucket), for display and tests.
func (q *QoS) Limit(tenant string) TenantLimit {
	q.mu.Lock()
	defer q.mu.Unlock()
	if b, ok := q.buckets[tenant]; ok {
		return b.limit
	}
	return q.resolve(tenant)
}

// QoSStats is a snapshot of the admission layer's counters.
type QoSStats struct {
	Admitted  uint64 // frames the buckets let through
	Throttled uint64 // frames rejected with ErrThrottled
	Tenants   int    // distinct tenants holding buckets
}

// Stats snapshots the counters.
func (q *QoS) Stats() QoSStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return QoSStats{Admitted: q.admitted, Throttled: q.throttled, Tenants: len(q.buckets)}
}
