package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"repro/internal/edgesim"
	"repro/internal/geom"
	"repro/internal/pipeline"
)

// cloudFromBytes decodes fuzz input into a cloud: byte 0 packs the point
// count (low bits) and feature width (high bits); the rest become raw
// float64 bit patterns, so NaN, ±Inf, subnormals and coincident points all
// fall out of the corpus naturally. Exhausted input reads as zeros, which
// yields coincident points — a degenerate box — on purpose.
func cloudFromBytes(data []byte) *geom.Cloud {
	if len(data) == 0 {
		return nil
	}
	n := int(data[0] & 0x3f)
	featDim := int(data[0] >> 6)
	c := geom.NewCloud(n, featDim)
	idx := 1
	next := func() float64 {
		var buf [8]byte
		for i := 0; i < 8 && idx < len(data); i++ {
			buf[i] = data[idx]
			idx++
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
	}
	for i := range c.Points {
		c.Points[i] = geom.Point3{X: next(), Y: next(), Z: next()}
	}
	for i := range c.Feat {
		c.Feat[i] = float32(next())
	}
	return c
}

// FuzzSubmitFrame drives Submit with arbitrary decoded frames against a
// replica that panics if an invalid one slips past admission. The invariants:
// Submit never panics the caller, never admits a frame validateFrame rejects,
// and never surfaces ErrPanic (the strict replica only panics on an
// admission breach).
func FuzzSubmitFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})                      // zero points
	f.Add([]byte{4})                      // 4 points, all zero → degenerate box
	f.Add([]byte{1})                      // single point: valid despite zero extent
	f.Add([]byte{0x42, 1, 2, 3, 4, 5, 6}) // 2 points + 1-wide features, short data
	nan := make([]byte, 1+3*8)
	nan[0] = 2
	binary.LittleEndian.PutUint64(nan[1:], math.Float64bits(math.NaN()))
	f.Add(nan)
	inf := make([]byte, 1+3*8)
	inf[0] = 3
	binary.LittleEndian.PutUint64(inf[1+8:], math.Float64bits(math.Inf(-1)))
	f.Add(inf)
	valid := make([]byte, 1+2*3*8)
	valid[0] = 2
	for i := 0; i < 6; i++ {
		binary.LittleEndian.PutUint64(valid[1+i*8:], math.Float64bits(float64(i)))
	}
	f.Add(valid)

	e, err := New([]pipeline.Net{&strictStubNet{id: 0}, &strictStubNet{id: 1}}, nil, edgesim.Config{}, Config{QueueDepth: 64})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { e.Close() })
	f.Fuzz(func(t *testing.T, data []byte) {
		c := cloudFromBytes(data)
		res, err := e.Submit(context.Background(), Request{Cloud: c})
		switch {
		case err == nil:
			if verr := validateFrame(c, DefaultMaxPoints); verr != nil {
				t.Fatalf("Submit admitted a frame validateFrame rejects: %v", verr)
			}
			if res.Output == nil {
				t.Fatal("served frame has no output")
			}
		case errors.Is(err, ErrPanic):
			t.Fatalf("invalid frame reached a worker: %v", err)
		case errors.Is(err, ErrInvalidInput), errors.Is(err, ErrQueueFull):
			// Expected rejection paths (queue-full only under parallel fuzzing).
		default:
			t.Fatalf("unexpected Submit error: %v", err)
		}
	})
}
