package serve

import (
	"context"
	"testing"

	"repro/internal/edgesim"
	"repro/internal/model"
	"repro/internal/pipeline"
)

// BenchmarkServeSteadyState measures per-frame allocations of a warm serving
// worker at the same model scale as the pipeline alloc benchmarks
// (BenchmarkPipelineFrameAllocs*), so the two columns are directly
// comparable: the serve layer must add only the request, its reply channel
// and the detached Output to the pipeline's steady-state count.
func BenchmarkServeSteadyState(b *testing.B) {
	w := pipeline.Workload{
		ID: "bench", Dataset: "S3DIS", Points: 512, Batch: 8,
		Arch: pipeline.ArchPointNetPP, Task: model.TaskSegmentation, Classes: 8, K: 8,
	}
	opts := pipeline.Options{BaseWidth: 8, Depth: 3, Seed: 9}
	nets, err := pipeline.Replicas(w, pipeline.Baseline, opts, 1)
	if err != nil {
		b.Fatal(err)
	}
	frame, err := pipeline.Frame(w, 9)
	if err != nil {
		b.Fatal(err)
	}
	dev := edgesim.JetsonAGXXavier()
	e, err := New(nets, dev, pipeline.SimConfig(w, pipeline.Baseline, opts), Config{QueueDepth: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()
	// Warm-up frame populates the worker's workspace.
	if _, err := e.Submit(ctx, Request{Cloud: frame}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Submit(ctx, Request{Cloud: frame}); err != nil {
			b.Fatal(err)
		}
	}
}
