package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/edgesim"
	"repro/internal/faultinject"
	"repro/internal/pipeline"
)

// Stall-storm chaos drills (run under -race in CI): 10% of frames wedge
// their worker far past StallTimeout and another 10% panic, concurrently.
// The survivability contract under that weather is exact accounting: every
// offered request terminates within its deadline budget with a result or a
// typed error — none lost (a Submit that never returns), none
// double-completed (a zombie's late result leaking past the watchdog's
// ErrStalled) — and the engine's own counters agree with the caller's view.

func TestChaosStallStorm(t *testing.T) {
	const (
		clients = 16
		perC    = 15
		frames  = clients * perC
	)
	e, err := New([]pipeline.Net{&stubNet{}}, nil, edgesim.Config{}, Config{
		MaxBatch:       1,
		QueueDepth:     frames + 8, // never ErrQueueFull: isolate stall/panic classes
		StallTimeout:   8 * time.Millisecond,
		PanicTrip:      100000, // no breaker parks: isolate the watchdog path
		DefaultTimeout: 5 * time.Second,
		Rebuild:        func(worker, tier int) (pipeline.Net, error) { return &stubNet{}, nil },
		Faults: &faultinject.Plan{
			Seed:      7,
			StallFrac: 0.10,
			Stall:     40 * time.Millisecond, // 5x the watchdog timeout: a genuine wedge
			PanicFrac: 0.10,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	var okN, panicN, stalledN, deadlineN atomic.Uint64
	cloud := testCloud()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perC; i++ {
				_, err := e.Submit(context.Background(), Request{Cloud: cloud})
				switch {
				case err == nil:
					okN.Add(1)
				case errors.Is(err, ErrPanic):
					panicN.Add(1)
				case errors.Is(err, ErrStalled):
					stalledN.Add(1)
				case errors.Is(err, ErrDeadline):
					deadlineN.Add(1)
				default:
					t.Errorf("client %d frame %d: untyped outcome %v", c, i, err)
				}
			}
		}(c)
	}
	wg.Wait()

	s := e.Stats()
	if total := okN.Load() + panicN.Load() + stalledN.Load() + deadlineN.Load(); total != frames {
		t.Fatalf("outcome classes sum to %d, want %d: a request was lost or double-counted", total, frames)
	}
	if okN.Load() != s.Completed {
		t.Fatalf("callers saw %d successes, engine completed %d: zombie result leaked or lost", okN.Load(), s.Completed)
	}
	if stalledN.Load() != s.Stalls {
		t.Fatalf("callers saw %d ErrStalled, engine counted %d", stalledN.Load(), s.Stalls)
	}
	if s.Stalls == 0 || panicN.Load() == 0 {
		t.Fatalf("storm too quiet (stalls=%d panics=%d); test is vacuous", s.Stalls, panicN.Load())
	}
	if s.Respawns == 0 {
		t.Fatal("no worker respawns: the watchdog never recovered a slot")
	}
	// Zombies that unstick may still panic after their batch was stall-failed,
	// so the panic counter bounds the caller-visible ErrPanic count from above.
	if s.Panics < panicN.Load() {
		t.Fatalf("engine counted %d panics, callers saw %d ErrPanic", s.Panics, panicN.Load())
	}
}

// TestFleetChaosStallStorm turns the same weather loose on a routed fleet
// with retries and hedging live: the conservation law must stay exact (via
// RouterStats.Conservation) while retries re-route around stalled and
// panicked attempts, and stalled attempts must feed the router's stall
// counter and quarantine streaks.
func TestFleetChaosStallStorm(t *testing.T) {
	const (
		fleet   = 3
		clients = 8
		perC    = 25
	)
	engines := make([]*Engine, fleet)
	for i := range engines {
		e, err := New([]pipeline.Net{&stubNet{}}, nil, edgesim.Config{}, Config{
			MaxBatch:     1,
			QueueDepth:   64,
			StallTimeout: 8 * time.Millisecond,
			PanicTrip:    100000,
			Rebuild:      func(worker, tier int) (pipeline.Net, error) { return &stubNet{}, nil },
			Faults: &faultinject.Plan{
				Seed:      uint64(11 + i), // decorrelated storms per engine
				StallFrac: 0.10,
				Stall:     40 * time.Millisecond,
				PanicFrac: 0.10,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = e
	}
	rt, err := NewRouter(engines, RouterConfig{
		Retry: &RetryPolicy{Max: 2, BackoffBase: 200 * time.Microsecond, BackoffMax: 2 * time.Millisecond},
		Hedge: &HedgePolicy{Delay: 2 * time.Millisecond, MaxFraction: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	var okN, errN atomic.Uint64
	cloud := testCloud()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perC; i++ {
				start := time.Now()
				_, err := rt.Submit(context.Background(), FleetRequest{
					Request: Request{Cloud: cloud, Timeout: 2 * time.Second},
					Tenant:  fmt.Sprintf("tenant-%d", c),
					Stream:  fmt.Sprintf("stream-%d-%d", c, i%4),
				})
				if took := time.Since(start); took > 4*time.Second {
					t.Errorf("client %d frame %d: took %v, past any deadline budget", c, i, took)
				}
				if err == nil {
					okN.Add(1)
					continue
				}
				errN.Add(1)
				if !errors.Is(err, ErrPanic) && !errors.Is(err, ErrStalled) &&
					!errors.Is(err, ErrDeadline) && !errors.Is(err, ErrQueueFull) {
					t.Errorf("client %d frame %d: untyped outcome %v", c, i, err)
				}
			}
		}(c)
	}
	wg.Wait()

	s := rt.Stats()
	conserve(t, s)
	if s.Offered != clients*perC {
		t.Fatalf("Offered = %d, want %d", s.Offered, clients*perC)
	}
	if s.Completed != okN.Load() {
		t.Fatalf("Completed = %d, callers saw %d", s.Completed, okN.Load())
	}
	if terminal := s.Failed + s.ShedThrottled + s.ShedOverload + s.ShedQueueFull; terminal != errN.Load() {
		t.Fatalf("error classes sum to %d, callers saw %d", terminal, errN.Load())
	}
	if s.Stalls == 0 {
		t.Fatal("no stalled attempts observed by the router; storm is vacuous")
	}
	if s.Retries == 0 {
		t.Fatal("no retries launched under the storm")
	}
	var respawns uint64
	for _, es := range s.EngineStats {
		respawns += es.Respawns
	}
	if respawns == 0 {
		t.Fatal("no worker respawns across the fleet")
	}
}
