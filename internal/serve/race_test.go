package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/edgesim"
	"repro/internal/pipeline"
)

// TestServeRaceStress hammers a real two-replica engine from many goroutines
// while deadlines fire and Close races with in-flight submissions. Its value
// is under `go test -race` (scripts/ci.sh runs it there): it sweeps the
// weight-sharing replicas, the workspace reuse inside each worker, the
// queue/close handshake and the atomic counters for data races.
func TestServeRaceStress(t *testing.T) {
	w, opts := serveWorkload()
	nets, err := pipeline.Replicas(w, pipeline.SN, opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A real device exercises PriceTrace concurrently from both workers
	// (read-only by contract — the race detector holds it to that).
	dev := edgesim.JetsonAGXXavier()
	e, err := New(nets, dev, pipeline.SimConfig(w, pipeline.SN, opts), Config{
		QueueDepth:  8,
		MaxBatch:    3,
		BatchWindow: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	frame, err := pipeline.Frame(w, 11)
	if err != nil {
		t.Fatal(err)
	}

	const (
		clients    = 6
		perClient  = 15
		totalTries = clients * perClient
	)
	var ok, full, closed, timedOut, canceled, other atomic.Uint64
	var done atomic.Uint64 // submissions finished, any outcome
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				req := Request{Cloud: frame}
				ctx := context.Background()
				switch {
				case i%7 == 3:
					// An already-lapsed deadline: the worker must drop it.
					req.Timeout = time.Nanosecond
				case i%7 == 5:
					// A context that dies while the frame is queued or running.
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, 50*time.Microsecond)
					defer cancel()
				}
				res, err := e.Submit(ctx, req)
				switch {
				case err == nil:
					if res.Output == nil || res.Output.Logits == nil {
						t.Errorf("client %d: ok result without logits", c)
					}
					ok.Add(1)
				case errors.Is(err, ErrQueueFull):
					full.Add(1)
				case errors.Is(err, ErrClosed):
					closed.Add(1)
				case errors.Is(err, ErrDeadline):
					timedOut.Add(1)
				case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
					canceled.Add(1)
				default:
					other.Add(1)
					t.Errorf("client %d: unexpected error %v", c, err)
				}
				done.Add(1)
			}
		}(c)
	}
	// Close mid-flight: roughly half the traffic should land after shutdown.
	for done.Load() < totalTries/2 {
		time.Sleep(100 * time.Microsecond)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if got := ok.Load() + full.Load() + closed.Load() + timedOut.Load() + canceled.Load() + other.Load(); got != totalTries {
		t.Fatalf("accounted %d of %d submissions", got, totalTries)
	}
	s := e.Stats()
	if s.Failed != 0 {
		t.Fatalf("%d frames failed in the forward pass", s.Failed)
	}
	if s.Completed != ok.Load() {
		t.Fatalf("stats completed=%d, callers saw %d", s.Completed, ok.Load())
	}
	if s.Completed+s.TimedOut > s.Submitted {
		t.Fatalf("served %d+%d frames but only %d admitted", s.Completed, s.TimedOut, s.Submitted)
	}
	if s.QueueLen != 0 {
		t.Fatalf("queue not drained after Close: %d", s.QueueLen)
	}
	t.Logf("ok=%d full=%d closed=%d deadline=%d ctx=%d; stats=%+v",
		ok.Load(), full.Load(), closed.Load(), timedOut.Load(), canceled.Load(), s)
}

// TestServeStubShutdownRace drives the pure engine machinery (stub nets, no
// model) with submitters racing Close directly — maximal pressure on the
// admission/close handshake without forward-pass time dominating.
func TestServeStubShutdownRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		e := newStubEngine(t, nil, Config{QueueDepth: 4, MaxBatch: 2})
		cloud := testCloud()
		var wg sync.WaitGroup
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					_, err := e.Submit(context.Background(), Request{Cloud: cloud})
					if err != nil && !errors.Is(err, ErrQueueFull) && !errors.Is(err, ErrClosed) {
						t.Errorf("unexpected error: %v", err)
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := e.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}()
		wg.Wait()
	}
}
