package serve

import (
	"errors"
	"fmt"
	"runtime/debug"
	"time"
)

// ErrPanic reports a frame whose forward pass panicked inside a worker. The
// panic is contained: the request fails with this error (wrapped with the
// panic value), the worker's replica is quarantined and rebuilt, and serving
// continues. The captured stack is available via Stats().LastPanic.
var ErrPanic = errors.New("serve: worker panicked")

// runProtected runs one frame under the panic barrier and reports whether it
// panicked. The recover guard is open-coded (a single deferred func literal,
// no closure state beyond the loop variables) so the steady-state no-panic
// path adds zero allocations to runFrame — the defer is stack-allocated.
//
//edgepc:hotpath
func (e *Engine) runProtected(w *worker, r *request, batchSize, tier int) (panicked bool) {
	defer func() {
		if v := recover(); v != nil {
			panicked = true
			e.panics.Add(1)
			e.notePanic(w.id, v)
			e.failRequest(w, r, batchSize, tier, fmt.Errorf("%w: worker %d: %v", ErrPanic, w.id, v))
		}
	}()
	e.runFrame(w, r, batchSize, tier)
	return false
}

// failRequest delivers a failure for a request that has not yet received a
// result. The deliver CAS makes it safe to call from recover paths and
// concurrently with the stall watchdog: whoever claims the request first
// wins, so the cap-1 reply channel can never wedge on a second send.
func (e *Engine) failRequest(w *worker, r *request, batchSize, tier int, err error) {
	if r == nil {
		return
	}
	r.deliver(Result{Err: err, Worker: w.id, BatchSize: batchSize, Tier: tier, Wait: time.Since(r.enq), Total: time.Since(r.enq)})
}

// notePanic records the most recent panic's worker, value and stack for
// Stats. Only the latest is kept: the counter says how many, the capture
// says what the last one looked like.
func (e *Engine) notePanic(workerID int, v any) {
	stack := debug.Stack()
	e.panicMu.Lock()
	e.lastPanic = fmt.Sprintf("worker %d: %v\n%s", workerID, v, stack)
	e.panicMu.Unlock()
}

// quarantine retires a worker's replica after a panic: a forward pass that
// died mid-frame may have left the replica's workspace views, layer caches
// or reuse cache in an inconsistent state, and the next frame would compute
// garbage (or panic again) on top of it. The replacement is rebuilt from the
// shared parameters via Config.Rebuild (pipeline.RebuildReplica); without a
// hook — or if the rebuild itself fails — the old replica stays, which is
// still safe for process liveness, just not for cache hygiene.
func (e *Engine) quarantine(w *worker, tier int) {
	e.quarantines.Add(1)
	if e.cfg.Rebuild == nil {
		return
	}
	n, err := e.cfg.Rebuild(w.id, tier)
	if err != nil || n == nil {
		return
	}
	w.nets[tier] = n
}

// trip parks the worker for the circuit-breaker backoff: PanicTrip
// consecutive failures mean the problem is not frame-local (poisoned
// weights, a deterministic bug, injected chaos), and hammering the replica
// with fresh requests at full rate just burns rebuilds. The park doubles
// per consecutive trip (BackoffBase up to BackoffMax) with seeded jitter —
// see breakerBackoff — and is interrupted immediately by Close so a
// draining engine never waits out a backoff.
func (e *Engine) trip(w *worker) {
	e.trips.Add(1)
	d := breakerBackoff(e.cfg.BackoffBase, e.cfg.BackoffMax, int(w.trips.Load()), e.cfg.BackoffJitterSeed, w.id)
	w.trips.Add(1)
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-e.closing:
	}
}

// breakerBackoff is the park duration for a worker's trip-th consecutive
// breaker trip: base<<trip capped at max, then deterministically jittered
// into [d/2, d) by a SplitMix64 hash of (seed, worker, trip). Pure doubling
// would release every worker tripped by one fault storm at the same
// instant — a synchronized re-probe herd that re-trips in lockstep; the
// jitter decorrelates the herd while a fixed seed keeps the exact schedule
// reproducible in tests.
func breakerBackoff(base, max time.Duration, trip int, seed uint64, worker int) time.Duration {
	shift := trip
	if shift > 20 {
		shift = 20
	}
	d := base << shift
	if d <= 0 || d > max {
		d = max
	}
	h := mix64(seed ^ uint64(worker+1)*0x9e3779b97f4a7c15 ^ uint64(trip+1)*0xda942042e4dd58b5)
	half := d / 2
	return half + time.Duration(float64(h>>11)/(1<<53)*float64(half))
}

// maxRespawns bounds worker resurrection (lastResort and the stall
// watchdog alike): a slot lineage that re-dies this many times in a row —
// the streak resets on any clean frame — has a failure the recover
// wrappers cannot contain, and respawning it forever would spin.
const maxRespawns = 8

// lastResort is the outermost guard on a worker goroutine: runProtected
// contains per-frame panics, so any panic arriving here escaped the
// engine's own machinery (a panic in coalesce, the batcher, or the
// resilience code itself). It fails the batch in flight, then respawns the
// pool slot with a fresh worker incarnation so the pool keeps its capacity
// — bounded by maxRespawns to avoid a crash-loop. Deliberately minimal: no
// rebuild, no breaker, just "do not take the process down and do not lose
// requests".
//
// It is also every incarnation's exit path: the deposed CAS decides who
// balances the goroutine's wg slot. If the stall watchdog already claimed
// (deposed) this incarnation, it also ran wg.Done on its behalf — Close
// must never wait on a wedged goroutine — and respawned the slot, so a
// late-unsticking zombie must do nothing here, especially not respawn a
// second worker into the slot.
func (e *Engine) lastResort(w *worker) {
	v := recover()
	if !w.deposed.CompareAndSwap(false, true) {
		return // deposed by the watchdog: slot already released + respawned
	}
	defer e.wg.Done()
	if v == nil {
		return
	}
	e.panics.Add(1)
	e.notePanic(w.id, v)
	err := fmt.Errorf("%w: worker %d (outside frame execution): %v", ErrPanic, w.id, v)
	for i, r := range w.batch {
		if r != nil {
			e.failRequest(w, r, len(w.batch), int(e.tier.Load()), err)
			w.batch[i] = nil
		}
	}
	if int(w.respawns.Load()) >= maxRespawns {
		e.slots[w.id].CompareAndSwap(w, nil) // retire the slot for the watchdog
		return
	}
	// Fresh incarnation: same replicas (no rebuild here), fresh
	// deposed/heartbeat state, breaker streak carried over.
	nw := &worker{id: w.id, nets: w.nets, trace: w.trace, batch: make([]*request, 0, e.cfg.MaxBatch)}
	nw.consec.Store(w.consec.Load())
	nw.trips.Store(w.trips.Load())
	nw.respawns.Store(w.respawns.Load() + 1)
	e.respawns.Add(1)
	e.slots[w.id].Store(nw)
	e.wg.Add(1)
	go e.workerLoop(nw)
}

// currentTier loads the ladder position, clamped to the configured rungs.
//
//edgepc:hotpath
func (e *Engine) currentTier() int {
	t := int(e.tier.Load())
	if t < 0 {
		return 0
	}
	if t >= e.numTiers {
		return e.numTiers - 1
	}
	return t
}

// maybeStepDown runs on the Submit path after every successful enqueue:
// when the queue has filled past the high watermark the engine steps one
// tier down so workers start draining faster, instead of letting the next
// submitter hit ErrQueueFull. The CAS keeps concurrent submitters from
// double-stepping past the pressure they jointly observed.
func (e *Engine) maybeStepDown() {
	if e.numTiers == 1 {
		return
	}
	if len(e.queue) < e.highN {
		return
	}
	t := e.tier.Load()
	if int(t) >= e.numTiers-1 {
		return
	}
	if e.tier.CompareAndSwap(t, t+1) {
		e.stepDowns.Add(1)
		e.calm.Store(0)
	}
}

// observeLoad runs on the worker path after every batch: Hysteresis
// consecutive observations of a queue at or below the low watermark step
// one tier back up. The hysteresis gap (lowN well under highN plus the
// consecutive-calm requirement) keeps the ladder from oscillating when load
// hovers at a watermark.
func (e *Engine) observeLoad() {
	if e.numTiers == 1 {
		return
	}
	if len(e.queue) > e.lowN {
		e.calm.Store(0)
		return
	}
	t := e.tier.Load()
	if t == 0 {
		return
	}
	if int(e.calm.Add(1)) < e.cfg.Hysteresis {
		return
	}
	if e.tier.CompareAndSwap(t, t-1) {
		e.stepUps.Add(1)
	}
	e.calm.Store(0)
}
