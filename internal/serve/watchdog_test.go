package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/pipeline"
)

// TestStallWatchdogDetectsAndRespawns wedges the only worker on a gated
// forward pass and asserts the full recovery contract: the in-flight request
// fails with ErrStalled within the watchdog's detection window, the slot is
// respawned through Rebuild, and the next request completes on the
// replacement while the zombie goroutine stays parked on the gate.
func TestStallWatchdogDetectsAndRespawns(t *testing.T) {
	gate := make(chan struct{})
	t.Cleanup(func() { close(gate) }) // unstick the zombie after Close
	e := newStubEngine(t, gate, Config{
		MaxBatch:     1,
		StallTimeout: 10 * time.Millisecond,
		Rebuild:      func(worker, tier int) (pipeline.Net, error) { return &stubNet{}, nil },
	})
	defer e.Close()
	cloud := testCloud()

	start := time.Now()
	_, err := e.Submit(context.Background(), Request{Cloud: cloud})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("wedged frame: err = %v, want ErrStalled", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("stall detection took %v; watchdog not sweeping", waited)
	}

	// The replacement worker carries the slot: an ungated replica serves.
	res, err := e.Submit(context.Background(), Request{Cloud: cloud})
	if err != nil {
		t.Fatalf("post-respawn frame: %v", err)
	}
	if res.Output == nil {
		t.Fatal("post-respawn frame: no output")
	}

	s := e.Stats()
	if s.Stalls != 1 {
		t.Fatalf("Stalls = %d, want 1", s.Stalls)
	}
	if s.Respawns != 1 {
		t.Fatalf("Respawns = %d, want 1", s.Respawns)
	}
	if s.Completed != 1 {
		t.Fatalf("Completed = %d, want 1 (stalled frame must not double-complete)", s.Completed)
	}
}

// TestStallWithoutRebuildFailsBatchInPlace covers the degraded watchdog mode:
// with no Rebuild hook the wedged replica cannot be replaced, but the
// in-flight batch must still fail with ErrStalled so callers are never
// wedged. Once the worker unsticks on its own it keeps serving — no respawn.
func TestStallWithoutRebuildFailsBatchInPlace(t *testing.T) {
	gate := make(chan struct{})
	e := newStubEngine(t, gate, Config{
		MaxBatch:     1,
		StallTimeout: 10 * time.Millisecond,
	})
	defer e.Close()
	cloud := testCloud()

	_, err := e.Submit(context.Background(), Request{Cloud: cloud})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("wedged frame: err = %v, want ErrStalled", err)
	}

	close(gate) // the worker unsticks; its late result must be discarded
	res, err := e.Submit(context.Background(), Request{Cloud: cloud})
	if err != nil {
		t.Fatalf("post-unstick frame: %v", err)
	}
	if res.Output == nil {
		t.Fatal("post-unstick frame: no output")
	}

	s := e.Stats()
	if s.Stalls != 1 {
		t.Fatalf("Stalls = %d, want 1", s.Stalls)
	}
	if s.Respawns != 0 {
		t.Fatalf("Respawns = %d, want 0 (no Rebuild hook, no respawn)", s.Respawns)
	}
	if s.Completed != 1 {
		t.Fatalf("Completed = %d, want 1 (late unstick must not double-count)", s.Completed)
	}
}

// TestStallCountsTowardBreaker drives two injected stalls (faultinject
// StallFrames) through a PanicTrip=2 engine and asserts stalls feed the same
// circuit breaker as panics: the second replacement inherits the streak and
// parks before its first batch, after which serving resumes.
func TestStallCountsTowardBreaker(t *testing.T) {
	e := newStubEngine(t, nil, Config{
		MaxBatch:     1,
		StallTimeout: 6 * time.Millisecond,
		PanicTrip:    2,
		BackoffBase:  20 * time.Millisecond,
		BackoffMax:   100 * time.Millisecond,
		Rebuild:      func(worker, tier int) (pipeline.Net, error) { return &stubNet{}, nil },
		Faults: &faultinject.Plan{
			StallFrames: []uint64{0, 1},
			Stall:       time.Second, // far past StallTimeout: a genuine wedge
		},
	})
	defer e.Close()
	cloud := testCloud()

	for i := 0; i < 2; i++ {
		if _, err := e.Submit(context.Background(), Request{Cloud: cloud}); !errors.Is(err, ErrStalled) {
			t.Fatalf("stalled frame %d: err = %v, want ErrStalled", i, err)
		}
	}
	// Frame 2 is clean; it waits out the inherited breaker park, then serves.
	res, err := e.Submit(context.Background(), Request{Cloud: cloud})
	if err != nil {
		t.Fatalf("post-park frame: %v", err)
	}
	if res.Output == nil {
		t.Fatal("post-park frame: no output")
	}

	s := e.Stats()
	if s.Stalls != 2 {
		t.Fatalf("Stalls = %d, want 2", s.Stalls)
	}
	if s.Respawns != 2 {
		t.Fatalf("Respawns = %d, want 2", s.Respawns)
	}
	if s.BreakerTrips < 1 {
		t.Fatalf("BreakerTrips = %d, want >= 1 (stall streak must trip the breaker)", s.BreakerTrips)
	}
}

// TestBreakerBackoffJitterPinned pins the seeded breaker jitter: the exact
// park schedule for a fixed (seed, worker) must never drift across
// refactors, every park must land in [d/2, d) of its un-jittered doubling,
// and distinct workers must decorrelate.
func TestBreakerBackoffJitterPinned(t *testing.T) {
	const (
		base = 100 * time.Millisecond
		max  = 5 * time.Second
		seed = uint64(1)
	)
	want := []time.Duration{ // worker 0, trips 0..5 — regenerate only on a deliberate schedule change
		53824454,
		198394749,
		308675001,
		679941820,
		1338092046,
		1786401717,
	}
	for trip, w := range want {
		got := breakerBackoff(base, max, trip, seed, 0)
		if got != w {
			t.Fatalf("trip %d: backoff = %d, want pinned %d", trip, got, w)
		}
	}
	// Bounds: every jittered park lies in [d/2, d) of the capped doubling.
	for worker := 0; worker < 4; worker++ {
		for trip := 0; trip < 10; trip++ {
			d := base << min(trip, 20)
			if d <= 0 || d > max {
				d = max
			}
			got := breakerBackoff(base, max, trip, seed, worker)
			if got < d/2 || got >= d {
				t.Fatalf("worker %d trip %d: backoff %v outside [%v, %v)", worker, trip, got, d/2, d)
			}
			if again := breakerBackoff(base, max, trip, seed, worker); again != got {
				t.Fatalf("worker %d trip %d: non-deterministic backoff %v != %v", worker, trip, again, got)
			}
		}
	}
	if breakerBackoff(base, max, 0, seed, 1) == breakerBackoff(base, max, 0, seed, 0) {
		t.Fatal("workers 0 and 1 share a park schedule; jitter must decorrelate workers")
	}
}
