package serve

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/pipeline"
)

// ErrStalled reports a frame abandoned by the stall watchdog: its worker
// was stuck on one frame past Config.StallTimeout (a wedged forward pass, a
// hung allocator, injected faultinject.OpStall chaos), so the batch was
// failed in place rather than letting the requests — and, with a Rebuild
// hook, the pool slot — wedge forever. Stalls count toward the same
// circuit breaker as panics.
var ErrStalled = errors.New("serve: worker stalled")

// watchdog is the engine's stall detector, armed by Config.StallTimeout > 0:
// it periodically sweeps the pool slots and deposes any worker whose
// frame-start heartbeat is older than StallTimeout. Sweeps run at a quarter
// of the timeout so detection latency stays within ~1.25× StallTimeout.
// The leading deferred guard is the package invariant — no panic may escape
// a serve goroutine — enforced statically by the gorecover analyzer:
//
//edgepc:goroutines-must-recover
func (e *Engine) watchdog() {
	defer e.watchdogRecover()
	defer e.wg.Done()
	tick := e.cfg.StallTimeout / 4
	if tick <= 0 {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-e.closing:
			return
		case <-ticker.C:
		}
		cutoff := time.Now().Add(-e.cfg.StallTimeout).UnixNano()
		for i := range e.slots {
			w := e.slots[i].Load()
			if w == nil {
				continue // slot retired (respawn budget exhausted)
			}
			if b := w.beat.Load(); b == 0 || b > cutoff {
				continue // idle or making progress
			}
			e.depose(w)
		}
	}
}

// watchdogRecover is the watchdog goroutine's recover guard: a panic in the
// sweep must not kill the process. The watchdog itself dies (stall
// detection stops), which is the lesser failure; the capture shows up in
// Stats().LastPanic like any other contained panic.
func (e *Engine) watchdogRecover() {
	if v := recover(); v != nil {
		e.panics.Add(1)
		e.notePanic(-1, v)
	}
}

// depose handles one wedged incarnation. With a Rebuild hook the slot is
// fully recovered: claim the incarnation (the deposed CAS — the same claim
// its own exit path uses, so exactly one side wins), fail its published
// batch with ErrStalled, release its wg slot on its behalf (Close must
// never wait out a goroutine that may be stuck forever), and respawn the
// slot with freshly rebuilt replicas — the wedged ones are unrecoverable,
// still pinned by the zombie goroutine. The stall counts toward the circuit
// breaker exactly like a panic streak: the replacement inherits the
// consecutive-failure count and parks before its first batch once the
// streak crosses PanicTrip.
//
// Without a Rebuild hook the replicas cannot be replaced, so the watchdog
// only fails the batch in place (once per batch, via the stalled latch) and
// leaves the worker to unstick on its own — requests are unblocked either
// way, which is the contract that matters.
func (e *Engine) depose(w *worker) {
	if e.cfg.Rebuild == nil {
		if w.stalled.CompareAndSwap(false, true) {
			e.failStalledBatch(w)
		}
		return
	}
	if !w.deposed.CompareAndSwap(false, true) {
		return // the incarnation exited (or was claimed) concurrently
	}
	e.failStalledBatch(w)
	replaced := false
	if int(w.respawns.Load()) < maxRespawns {
		nets := make([]pipeline.Net, len(w.nets))
		ok := true
		for t := range nets {
			n, err := e.cfg.Rebuild(w.id, t)
			if err != nil || n == nil {
				ok = false
				break
			}
			nets[t] = n
		}
		if ok {
			nw := &worker{id: w.id, nets: nets, batch: make([]*request, 0, e.cfg.MaxBatch)}
			nw.consec.Store(w.consec.Load() + 1)
			nw.trips.Store(w.trips.Load())
			nw.respawns.Store(w.respawns.Load() + 1)
			if nw.consec.Load() >= int32(e.cfg.PanicTrip) {
				nw.consec.Store(0)
				nw.pendingTrip = true
			}
			e.respawns.Add(1)
			e.slots[w.id].Store(nw)
			e.wg.Add(1)
			go e.workerLoop(nw)
			replaced = true
		}
	}
	if !replaced {
		// Respawn budget exhausted or rebuild failed: retire the slot. The
		// remaining workers carry the pool; a retired slot stays visible in
		// Stats via the respawn/stall counters.
		e.slots[w.id].CompareAndSwap(w, nil)
	}
	e.wg.Done() // release the wedged incarnation's slot
}

// failStalledBatch fails every request the wedged worker published for its
// current batch. Delivery goes through the per-request CAS, so a zombie
// that unsticks mid-loop cannot double-complete anything and the stall
// counter moves only for requests this call actually claimed.
func (e *Engine) failStalledBatch(w *worker) {
	err := fmt.Errorf("%w: worker %d stuck past %v", ErrStalled, w.id, e.cfg.StallTimeout)
	tier := e.currentTier()
	w.liveMu.Lock()
	n := len(w.live)
	for _, r := range w.live {
		if r == nil {
			continue
		}
		if r.deliver(Result{Err: err, Worker: w.id, BatchSize: n, Tier: tier, Wait: time.Since(r.enq), Total: time.Since(r.enq)}) {
			e.stalls.Add(1)
		}
	}
	w.liveMu.Unlock()
}
