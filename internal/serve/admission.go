package serve

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
)

// ErrInvalidInput reports a frame rejected at admission, before any worker
// touched it: nil/empty/oversized clouds, inconsistent feature/label shapes,
// non-finite coordinates or features, and degenerate (zero-extent) bounding
// boxes. Wrapped errors carry the specific cause; match with
// errors.Is(err, ErrInvalidInput).
var ErrInvalidInput = errors.New("serve: invalid input")

// DefaultMaxPoints is the admission cap on points per frame when
// Config.MaxPoints is unset — far above every Table 1 workload (≤ 8192) but
// low enough to stop a malformed length from committing gigabytes of
// workspace.
const DefaultMaxPoints = 1 << 20

// validateFrame is the admission gate: every check a worker would otherwise
// trip over (NaN poisoning the Morton encoder and every distance compare,
// zero-extent boxes degenerating the structurizer grid, shape mismatches
// indexing out of bounds) runs here on the submitter's goroutine, so a bad
// frame costs its caller a scan instead of burning a worker replica. The
// valid path allocates nothing.
func validateFrame(c *geom.Cloud, maxPoints int) error {
	if c == nil {
		return fmt.Errorf("%w: nil cloud", ErrInvalidInput)
	}
	n := c.Len()
	if n == 0 {
		return fmt.Errorf("%w: empty cloud", ErrInvalidInput)
	}
	if n > maxPoints {
		return fmt.Errorf("%w: %d points exceeds cap %d", ErrInvalidInput, n, maxPoints)
	}
	if err := c.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidInput, err)
	}
	min, max := c.Points[0], c.Points[0]
	for i, p := range c.Points {
		if !p.IsFinite() {
			return fmt.Errorf("%w: non-finite coordinates at point %d", ErrInvalidInput, i)
		}
		min.X = math.Min(min.X, p.X)
		min.Y = math.Min(min.Y, p.Y)
		min.Z = math.Min(min.Z, p.Z)
		max.X = math.Max(max.X, p.X)
		max.Y = math.Max(max.Y, p.Y)
		max.Z = math.Max(max.Z, p.Z)
	}
	if n > 1 && !(max.X > min.X || max.Y > min.Y || max.Z > min.Z) {
		return fmt.Errorf("%w: degenerate bounding box (%d coincident points)", ErrInvalidInput, n)
	}
	for i, f := range c.Feat {
		v := float64(f)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: non-finite feature value at index %d", ErrInvalidInput, i)
		}
	}
	return nil
}
