package serve

import "testing"

// Shed controller state-machine tests: exact level transitions for exact
// observation sequences. Pure virtual — the controller has no clock.

func TestShedLevelsDropLowestFirst(t *testing.T) {
	s := NewShedController(ShedConfig{})
	if s.Level() != 0 || s.Sheds(PriorityLow) {
		t.Fatal("fresh controller sheds")
	}
	s.Observe(0.6) // above the 0.55 default high watermark
	if s.Level() != 1 {
		t.Fatalf("level = %d after one hot sample, want 1", s.Level())
	}
	if !s.Sheds(PriorityLow) || s.Sheds(PriorityNormal) || s.Sheds(PriorityHigh) {
		t.Fatal("level 1 must shed exactly the low class")
	}
	s.Observe(0.9)
	if s.Level() != 2 {
		t.Fatalf("level = %d, want 2", s.Level())
	}
	if !s.Sheds(PriorityLow) || !s.Sheds(PriorityNormal) || s.Sheds(PriorityHigh) {
		t.Fatal("level 2 must shed low+normal, never high")
	}
	// MaxLevel default NumPriorities-1: further pressure cannot shed high.
	for i := 0; i < 10; i++ {
		s.Observe(1.0)
	}
	if s.Level() != 2 || s.Sheds(PriorityHigh) {
		t.Fatalf("level = %d sheds-high=%v; high must never shed", s.Level(), s.Sheds(PriorityHigh))
	}
	if st := s.Stats(); st.Raises != 2 || st.Drops != 0 {
		t.Fatalf("stats = %+v, want 2 raises 0 drops", st)
	}
}

func TestShedHysteresisRecovery(t *testing.T) {
	s := NewShedController(ShedConfig{HighWatermark: 0.5, LowWatermark: 0.1, Hysteresis: 3})
	s.Observe(0.6)
	s.Observe(0.6)
	if s.Level() != 2 {
		t.Fatalf("level = %d, want 2", s.Level())
	}
	// Mid-band samples (above low, below high) are neither hot nor calm:
	// they reset the calm streak and hold the level.
	s.Observe(0.05)
	s.Observe(0.05)
	s.Observe(0.3) // resets calm
	s.Observe(0.05)
	s.Observe(0.05)
	if s.Level() != 2 {
		t.Fatalf("level dropped after interrupted calm streak: %d", s.Level())
	}
	s.Observe(0.05) // third consecutive calm sample: drop one class
	if s.Level() != 1 {
		t.Fatalf("level = %d after full calm streak, want 1", s.Level())
	}
	s.Observe(0.0)
	s.Observe(0.0)
	s.Observe(0.0)
	if s.Level() != 0 {
		t.Fatalf("level = %d, want full recovery", s.Level())
	}
	s.Observe(0.0) // already at 0: calm samples are no-ops
	if st := s.Stats(); st.Raises != 2 || st.Drops != 2 {
		t.Fatalf("stats = %+v, want 2 raises 2 drops", st)
	}
}

func TestShedEngagesBelowLadderWatermark(t *testing.T) {
	// The non-fighting invariant (DESIGN.md §13): the default shed high
	// watermark sits below the engine ladder's 0.75 step-down watermark, so
	// fleet shedding of low classes engages before any engine degrades
	// high-priority work.
	s := NewShedController(ShedConfig{})
	s.Observe(0.6) // hot for the shed controller...
	if s.Level() != 1 {
		t.Fatal("0.6 fill must engage shedding")
	}
	var cfg Config
	cfg.defaults(1)
	if cfg.HighWatermark <= 0.6 {
		t.Fatalf("ladder watermark %.2f not above shed onset 0.6; mechanisms would fight", cfg.HighWatermark)
	}
}
