package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/edgesim"
	"repro/internal/faultinject"
	"repro/internal/pipeline"
)

// newMixedFleet builds one single-worker engine per config (ungated stubs)
// and a router over them — for survivability tests where engines must fail
// differently (one panicking replica, healthy successors).
func newMixedFleet(t *testing.T, cfgs []Config, rcfg RouterConfig) *Router {
	t.Helper()
	engines := make([]*Engine, len(cfgs))
	for i, c := range cfgs {
		e, err := New([]pipeline.Net{&stubNet{}}, nil, edgesim.Config{}, c)
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = e
	}
	rt, err := NewRouter(engines, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	return rt
}

// TestRetryReRoutesPanicToNextCandidate pins a stream to an engine whose
// every frame panics and asserts the retry policy re-routes the re-attempt
// to the ring successor instead of hammering the failed owner: the request
// completes, counted once, with exactly one retry.
func TestRetryReRoutesPanicToNextCandidate(t *testing.T) {
	rt := newMixedFleet(t,
		[]Config{
			{MaxBatch: 1, PanicTrip: 100, Faults: &faultinject.Plan{Seed: 3, PanicFrac: 1}},
			{MaxBatch: 1},
		},
		RouterConfig{
			Spill: -1, // isolate retry re-routing from spillover
			Retry: &RetryPolicy{Max: 2, BackoffBase: 200 * time.Microsecond, BackoffMax: time.Millisecond},
		})
	stream := pinStream(t, rt, 0)
	res, err := rt.Submit(context.Background(), FleetRequest{
		Request: Request{Cloud: testCloud()}, Tenant: "t", Stream: stream,
	})
	if err != nil {
		t.Fatalf("retried frame: %v", err)
	}
	if res.Output == nil {
		t.Fatal("retried frame: no output")
	}
	s := rt.Stats()
	conserve(t, s)
	if s.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", s.Retries)
	}
	if s.Completed != 1 || s.Failed != 0 {
		t.Fatalf("completed/failed = %d/%d, want 1/0", s.Completed, s.Failed)
	}
	if s.EngineStats[1].Completed != 1 {
		t.Fatal("re-attempt did not land on the ring successor")
	}
}

// TestRetryRespectsDeadlineBudget gives a hopeless request (every engine
// attempt panics) a 30ms budget against 20ms-doubling backoffs: the policy
// must stop retrying the moment the next backoff would cross the remaining
// budget, returning the transient error promptly instead of burning the
// full Max=5 schedule.
func TestRetryRespectsDeadlineBudget(t *testing.T) {
	rt := newMixedFleet(t,
		[]Config{{MaxBatch: 1, PanicTrip: 100, Faults: &faultinject.Plan{Seed: 3, PanicFrac: 1}}},
		RouterConfig{Retry: &RetryPolicy{Max: 5, BackoffBase: 20 * time.Millisecond, BackoffMax: 40 * time.Millisecond}})
	start := time.Now()
	_, err := rt.Submit(context.Background(), FleetRequest{
		Request: Request{Cloud: testCloud(), Timeout: 30 * time.Millisecond}, Tenant: "t",
	})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v, want the transient ErrPanic the budget cut off", err)
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("submit took %v; retries ran past the 30ms budget", elapsed)
	}
	s := rt.Stats()
	conserve(t, s)
	if s.Retries < 1 || s.Retries >= 5 {
		t.Fatalf("Retries = %d, want in [1, 5): some retries within budget, never the full schedule", s.Retries)
	}
	if s.Failed != 1 {
		t.Fatalf("Failed = %d, want 1", s.Failed)
	}
}

// TestRetryNeverRetriesTerminalErrors: invalid input is the frame's fault —
// no engine will ever accept it, so the retry policy must not spend budget
// on it.
func TestRetryNeverRetriesTerminalErrors(t *testing.T) {
	rt := newMixedFleet(t, []Config{{MaxBatch: 1}},
		RouterConfig{Retry: &RetryPolicy{Max: 3, BackoffBase: time.Millisecond}})
	_, err := rt.Submit(context.Background(), FleetRequest{Tenant: "t"}) // nil cloud
	if !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("err = %v, want ErrInvalidInput", err)
	}
	s := rt.Stats()
	conserve(t, s)
	if s.Retries != 0 {
		t.Fatalf("Retries = %d, want 0 (terminal error retried)", s.Retries)
	}
}

// TestHedgeWinsOnWedgedOwner wedges a stream's owner (gated forward, no
// watchdog) and asserts the hedge saves the request: after the hedge delay
// the duplicate lands on the ring successor, its result wins, the wedged
// primary is cancelled, and the request counts completed exactly once.
func TestHedgeWinsOnWedgedOwner(t *testing.T) {
	rt, gates := newStubFleet(t, 2, true, Config{MaxBatch: 1},
		RouterConfig{Spill: -1, Hedge: &HedgePolicy{Delay: 2 * time.Millisecond, MaxFraction: 1}})
	stream := pinStream(t, rt, 0)
	close(gates[1]) // successor serves instantly; owner stays wedged
	res, err := rt.Submit(context.Background(), FleetRequest{
		Request: Request{Cloud: testCloud()}, Tenant: "t", Stream: stream,
	})
	if err != nil {
		t.Fatalf("hedged frame: %v", err)
	}
	if res.Output == nil {
		t.Fatal("hedged frame: no output")
	}
	s := rt.Stats()
	conserve(t, s)
	if s.Hedges != 1 || s.HedgeWins != 1 {
		t.Fatalf("hedges/wins = %d/%d, want 1/1", s.Hedges, s.HedgeWins)
	}
	if s.Completed != 1 {
		t.Fatalf("Completed = %d, want exactly 1 (no double-complete)", s.Completed)
	}
	if s.EngineStats[1].Completed != 1 {
		t.Fatal("hedge did not land on the ring successor")
	}
}

// TestHedgeBudgetAndShedDisengage pins canHedge's two gates: the
// MaxFraction budget over offered traffic, and the hard disengage while the
// fleet shed controller is at any non-zero level.
func TestHedgeBudgetAndShedDisengage(t *testing.T) {
	rt, _ := newStubFleet(t, 2, false, Config{},
		RouterConfig{Hedge: &HedgePolicy{Delay: time.Millisecond}}) // MaxFraction defaults to 0.05
	rt.offered.Add(10) // budget 0.05*10 = 0.5 < 1: first hedge denied
	if rt.canHedge() {
		t.Fatal("hedge allowed past MaxFraction budget")
	}
	rt.offered.Add(10) // budget 0.05*20 = 1.0: first hedge allowed
	if !rt.canHedge() {
		t.Fatal("hedge denied within MaxFraction budget")
	}
	rt.shed.Observe(1.0) // crosses the high watermark: shed level 1
	if rt.shed.Level() == 0 {
		t.Fatal("shed controller did not engage")
	}
	if rt.canHedge() {
		t.Fatal("hedge allowed while the shed controller is engaged")
	}
}

// TestRouterSurvivabilityConcurrentConservation is the satellite accounting
// test: concurrent tenants over a panicking fleet with retries and hedging
// both live. Every offered request must terminate in exactly one class —
// the conservation law plus the hedge bound, checked by
// RouterStats.Conservation — and the caller-observed outcome tallies must
// equal the router's own counters.
func TestRouterSurvivabilityConcurrentConservation(t *testing.T) {
	const (
		goroutines = 8
		perG       = 25
	)
	cfg := Config{MaxBatch: 1, QueueDepth: 64, PanicTrip: 1000,
		Faults: &faultinject.Plan{Seed: 5, PanicFrac: 0.08}}
	rt := newMixedFleet(t, []Config{cfg, cfg, cfg}, RouterConfig{
		Retry: &RetryPolicy{Max: 2, BackoffBase: 200 * time.Microsecond, BackoffMax: 2 * time.Millisecond},
		Hedge: &HedgePolicy{Delay: time.Millisecond, MaxFraction: 0.2},
	})
	var ok, failed atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cloud := testCloud()
			for i := 0; i < perG; i++ {
				_, err := rt.Submit(context.Background(), FleetRequest{
					Request: Request{Cloud: cloud, Timeout: 2 * time.Second},
					Tenant:  fmt.Sprintf("tenant-%d", g),
					Stream:  fmt.Sprintf("stream-%d-%d", g, i%5),
				})
				if err == nil {
					ok.Add(1)
				} else {
					failed.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	s := rt.Stats()
	conserve(t, s)
	if s.Offered != goroutines*perG {
		t.Fatalf("Offered = %d, want %d", s.Offered, goroutines*perG)
	}
	if s.Completed != ok.Load() {
		t.Fatalf("Completed = %d, caller saw %d successes", s.Completed, ok.Load())
	}
	if terminal := s.Failed + s.ShedThrottled + s.ShedOverload + s.ShedQueueFull; terminal != failed.Load() {
		t.Fatalf("error classes sum to %d, caller saw %d failures", terminal, failed.Load())
	}
}
