package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/edgesim"
	"repro/internal/faultinject"
	"repro/internal/pipeline"
)

// Fleet chaos drill (run under -race in CI): one engine of a four-engine
// fleet panic-storms on every frame. The router must quarantine it, re-route
// its streams to the survivors, keep the accounting conservation law exact,
// and keep serving the healthy tenants with bounded latency.

func TestFleetChaosPanicStorm(t *testing.T) {
	const (
		fleet   = 4
		victim  = 1
		clients = 8
		frames  = 25 // per client
	)
	// A pinned clock makes the quarantine permanent for the test's duration:
	// downUntil = now + cooloff never expires when now never advances.
	pinned := time.Unix(2000, 0)
	clock := func() time.Time { return pinned }

	engines := make([]*Engine, fleet)
	for i := range engines {
		cfg := Config{QueueDepth: 64, BackoffBase: time.Millisecond, BackoffMax: time.Millisecond}
		if i == victim {
			cfg.Faults = &faultinject.Plan{Seed: 7, PanicFrac: 1} // every frame panics
		}
		e, err := New([]pipeline.Net{&stubNet{}}, nil, edgesim.Config{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = e
	}
	rt, err := NewRouter(engines, RouterConfig{Clock: clock, FailThreshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// Phase 1 — the storm: concurrent clients spread streams over the whole
	// ring, so a quarter of them route into the panicking engine until the
	// router's streak counter trips.
	cloud := testCloud()
	var wg sync.WaitGroup
	var panicked, served int64
	var mu sync.Mutex
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < frames; i++ {
				_, err := rt.Submit(context.Background(), FleetRequest{
					Request: Request{Cloud: cloud},
					Tenant:  fmt.Sprintf("tenant-%d", c),
					Stream:  fmt.Sprintf("client-%d-stream-%d", c, i),
				})
				mu.Lock()
				switch {
				case err == nil:
					served++
				case errors.Is(err, ErrPanic):
					panicked++
				default:
					t.Errorf("client %d frame %d: unexpected %v", c, i, err)
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	s := rt.Stats()
	conserve(t, s)
	if !rt.Quarantined(victim) || !s.Quarantined[victim] {
		t.Fatal("panic-storming engine not quarantined")
	}
	for i := 0; i < fleet; i++ {
		if i != victim && s.Quarantined[i] {
			t.Fatalf("healthy engine %d quarantined", i)
		}
	}
	if s.Quarantines == 0 {
		t.Fatal("no quarantine event recorded")
	}
	if panicked == 0 {
		t.Fatal("storm injected no panics; test is vacuous")
	}
	if uint64(panicked) != s.Failed || uint64(served) != s.Completed {
		t.Fatalf("client view (%d ok, %d panicked) disagrees with router (%d, %d)",
			served, panicked, s.Completed, s.Failed)
	}

	// Phase 2 — re-route: streams owned by the quarantined engine must now be
	// served by survivors, and the victim must see no new frames.
	beforeVictim := s.EngineStats[victim].Submitted
	rerouted := 0
	for i := 0; rerouted < 10 && i < 10000; i++ {
		stream := fmt.Sprintf("rehomed-%d", i)
		if rt.EngineFor(stream) != victim {
			continue
		}
		rerouted++
		if _, err := rt.Submit(context.Background(), FleetRequest{
			Request: Request{Cloud: cloud}, Tenant: "rehomed", Stream: stream,
		}); err != nil {
			t.Fatalf("re-routed frame %d: %v", rerouted, err)
		}
	}
	if rerouted == 0 {
		t.Fatal("no streams owned by victim found")
	}
	s = rt.Stats()
	conserve(t, s)
	if s.EngineStats[victim].Submitted != beforeVictim {
		t.Fatalf("quarantined engine still receiving frames: %d -> %d",
			beforeVictim, s.EngineStats[victim].Submitted)
	}
	if ts := s.Tenants["rehomed"]; ts.Completed != uint64(rerouted) || ts.Failed != 0 {
		t.Fatalf("rehomed tenant: %+v, want %d clean completions", ts, rerouted)
	}
	// Healthy-tenant latency stays bounded through the storm: stub engines
	// serve in microseconds, so a 1s p99 ceiling catches any stall by orders
	// of magnitude.
	if s.Latency.P99 <= 0 || s.Latency.P99 > time.Second {
		t.Fatalf("fleet p99 = %v, want bounded (0, 1s]", s.Latency.P99)
	}
}
