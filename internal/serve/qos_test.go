package serve

import (
	"errors"
	"testing"
	"time"
)

// The QoS tests drive the token buckets entirely on a fake clock: exact
// admit/reject sequences at exact virtual instants, zero wall-clock sleeps.
// Durations are chosen binary-exact (250ms = 0.25s) so refill arithmetic
// has no float rounding to hide behind.

// fakeClock is a manually-advanced time source.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1000, 0)}
}

func (c *fakeClock) Now() time.Time          { return c.t }
func (c *fakeClock) Advance(d time.Duration) { c.t = c.t.Add(d) }

// admitSeq runs n Admit calls at the current instant and returns the
// outcome pattern, 'A' for admitted, 'R' for rejected.
func admitSeq(t *testing.T, q *QoS, tenant string, n int) string {
	t.Helper()
	out := make([]byte, n)
	for i := range out {
		_, err := q.Admit(tenant)
		switch {
		case err == nil:
			out[i] = 'A'
		case errors.Is(err, ErrThrottled):
			out[i] = 'R'
		default:
			t.Fatalf("admit %d: unexpected error %v", i, err)
		}
	}
	return string(out)
}

func TestQoSExactAdmitSequence(t *testing.T) {
	clk := newFakeClock()
	q := NewQoS(QoSConfig{
		Tenants: map[string]TenantLimit{"t": {Rate: 2, Burst: 3}},
		Clock:   clk.Now,
	})
	// A new bucket starts full: the 3-frame burst is spendable immediately,
	// the 4th frame at the same instant is throttled.
	if got := admitSeq(t, q, "t", 4); got != "AAAR" {
		t.Fatalf("burst drain = %q, want AAAR", got)
	}
	// 500ms at 2/s refills exactly 1 token: one admit, then reject again.
	clk.Advance(500 * time.Millisecond)
	if got := admitSeq(t, q, "t", 2); got != "AR" {
		t.Fatalf("after 500ms = %q, want AR", got)
	}
	// 250ms refills 0.5 tokens — not a whole frame, still throttled.
	clk.Advance(250 * time.Millisecond)
	if got := admitSeq(t, q, "t", 1); got != "R" {
		t.Fatalf("after +250ms = %q, want R", got)
	}
	// Another 250ms completes the token. Fractional credit must survive the
	// rejected probe above.
	clk.Advance(250 * time.Millisecond)
	if got := admitSeq(t, q, "t", 2); got != "AR" {
		t.Fatalf("after +500ms total = %q, want AR", got)
	}
	s := q.Stats()
	if s.Admitted != 5 || s.Throttled != 4 || s.Tenants != 1 {
		t.Fatalf("stats = %+v, want 5 admitted / 4 throttled / 1 tenant", s)
	}
}

func TestQoSRefillBoundary(t *testing.T) {
	clk := newFakeClock()
	q := NewQoS(QoSConfig{
		Tenants: map[string]TenantLimit{"t": {Rate: 4, Burst: 1}},
		Clock:   clk.Now,
	})
	if got := admitSeq(t, q, "t", 2); got != "AR" {
		t.Fatalf("drain = %q, want AR", got)
	}
	// One token takes exactly 250ms at 4/s. One nanosecond short: reject.
	clk.Advance(250*time.Millisecond - time.Nanosecond)
	if got := admitSeq(t, q, "t", 1); got != "R" {
		t.Fatalf("1ns before boundary = %q, want R", got)
	}
	clk.Advance(time.Nanosecond)
	if got := admitSeq(t, q, "t", 2); got != "AR" {
		t.Fatalf("at boundary = %q, want AR", got)
	}
}

func TestQoSBurstCreditCapped(t *testing.T) {
	clk := newFakeClock()
	q := NewQoS(QoSConfig{
		Tenants: map[string]TenantLimit{"t": {Rate: 1, Burst: 5}},
		Clock:   clk.Now,
	})
	if got := admitSeq(t, q, "t", 6); got != "AAAAAR" {
		t.Fatalf("initial burst = %q, want AAAAAR", got)
	}
	// A long idle refills to the cap, not beyond: an hour at 1/s still
	// yields exactly 5 burst frames.
	clk.Advance(time.Hour)
	if got := admitSeq(t, q, "t", 6); got != "AAAAAR" {
		t.Fatalf("after idle hour = %q, want AAAAAR", got)
	}
}

func TestQoSSustainedRate(t *testing.T) {
	clk := newFakeClock()
	q := NewQoS(QoSConfig{
		Tenants: map[string]TenantLimit{"t": {Rate: 8, Burst: 1}},
		Clock:   clk.Now,
	})
	// Paced exactly at the contracted rate, every frame admits, forever.
	for i := 0; i < 64; i++ {
		if _, err := q.Admit("t"); err != nil {
			t.Fatalf("paced frame %d throttled: %v", i, err)
		}
		clk.Advance(125 * time.Millisecond)
	}
	// Paced at twice the rate, exactly every other frame admits once the
	// burst credit is gone.
	got := ""
	for i := 0; i < 8; i++ {
		got += admitSeq(t, q, "t", 1)
		clk.Advance(62500 * time.Microsecond)
	}
	if got != "ARARARAR" {
		t.Fatalf("2x pace = %q, want ARARARAR", got)
	}
}

func TestQoSUnlimitedAndPriority(t *testing.T) {
	clk := newFakeClock()
	q := NewQoS(QoSConfig{
		Tenants: map[string]TenantLimit{
			"free": {Rate: 0, Priority: PriorityHigh}, // unlimited
			"slow": {Rate: 0.001, Burst: 1, Priority: PriorityLow},
		},
		Clock: clk.Now,
	})
	for i := 0; i < 1000; i++ {
		p, err := q.Admit("free")
		if err != nil || p != PriorityHigh {
			t.Fatalf("unlimited tenant frame %d: p=%v err=%v", i, p, err)
		}
	}
	// The priority class comes back even on a throttled admit — the router
	// needs it for shed accounting.
	if _, err := q.Admit("slow"); err != nil {
		t.Fatalf("slow burst frame: %v", err)
	}
	p, err := q.Admit("slow")
	if !errors.Is(err, ErrThrottled) || p != PriorityLow {
		t.Fatalf("throttled admit: p=%v err=%v, want PriorityLow + ErrThrottled", p, err)
	}
}

func TestQoSOverflowBucket(t *testing.T) {
	clk := newFakeClock()
	q := NewQoS(QoSConfig{
		Default:    TenantLimit{Rate: 1, Burst: 1},
		MaxTenants: 2,
		Clock:      clk.Now,
	})
	// Two tenants get private buckets.
	if got := admitSeq(t, q, "a", 1) + admitSeq(t, q, "b", 1); got != "AA" {
		t.Fatalf("private buckets = %q, want AA", got)
	}
	// Every further tenant shares one overflow bucket: c spends its single
	// token and d — a different tenant — finds it empty.
	if got := admitSeq(t, q, "c", 1); got != "A" {
		t.Fatalf("overflow first = %q, want A", got)
	}
	if got := admitSeq(t, q, "d", 1); got != "R" {
		t.Fatalf("overflow second tenant = %q, want R (shared bucket)", got)
	}
	if s := q.Stats(); s.Tenants != 2 {
		t.Fatalf("tenants = %d, want cardinality capped at 2", s.Tenants)
	}
}

func TestQoSClassifyHook(t *testing.T) {
	q := NewQoS(QoSConfig{
		Default: TenantLimit{Priority: PriorityLow},
		Classify: func(tenant string) TenantLimit {
			if tenant == "vip" {
				return TenantLimit{Priority: PriorityHigh}
			}
			return TenantLimit{Priority: PriorityNormal}
		},
		Clock: newFakeClock().Now,
	})
	if p, _ := q.Admit("vip"); p != PriorityHigh {
		t.Fatalf("vip class = %v, want high", p)
	}
	if p, _ := q.Admit("anyone"); p != PriorityNormal {
		t.Fatalf("default class = %v, want normal from hook", p)
	}
	if l := q.Limit("vip"); l.Priority != PriorityHigh {
		t.Fatalf("Limit(vip) = %+v", l)
	}
}

func TestPriorityRoundTrip(t *testing.T) {
	for p := Priority(0); p < NumPriorities; p++ {
		got, err := ParsePriority(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v: got %v err %v", p, got, err)
		}
	}
	if _, err := ParsePriority("bogus"); err == nil {
		t.Fatal("bogus priority parsed")
	}
}
