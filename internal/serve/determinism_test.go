package serve

import (
	"context"
	"math"
	"sync"
	"testing"

	"repro/internal/edgesim"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/tensor"
)

// serveWorkload is a laptop-scale PointNet++ segmentation row for serve tests
// (small cloud, shallow net — fast enough to run many frames under -race).
func serveWorkload() (pipeline.Workload, pipeline.Options) {
	w := pipeline.Workload{
		ID: "serve-test", Dataset: "S3DIS", Points: 128, Batch: 1,
		Arch: pipeline.ArchPointNetPP, Task: model.TaskSegmentation, Classes: 8, K: 4,
	}
	return w, pipeline.Options{BaseWidth: 8, Depth: 2, Seed: 7}
}

func sameBits(a, b *tensor.Matrix) bool {
	if a == nil || b == nil || a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Float32bits(a.Data[i]) != math.Float32bits(b.Data[i]) {
			return false
		}
	}
	return true
}

// TestServeDeterministicLogits is the engine-level determinism guarantee: the
// same frame served by any worker of the pool yields bit-identical logits.
// Weight sharing (pipeline.Replicas), deterministic parallel chunking
// (parallel.ForWorkers) and the Morton sort's stable tie-break together make
// the forward pass a pure function of (weights, frame).
func TestServeDeterministicLogits(t *testing.T) {
	w, opts := serveWorkload()
	// S+N covers the Morton structurize/sample/window path, not just baseline.
	nets, err := pipeline.Replicas(w, pipeline.SN, opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := pipeline.Frame(w, 11)
	if err != nil {
		t.Fatal(err)
	}

	// Replica-level: two weight-sharing nets, same frame, same bits.
	_, _, outA, err := pipeline.Run(nets[0], frame, nil, edgesim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, _, outB, err := pipeline.Run(nets[1], frame, nil, edgesim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameBits(outA.Logits, outB.Logits) {
		t.Fatal("replica logits differ for the same frame")
	}
	for i := range outA.Perm {
		if outA.Perm[i] != outB.Perm[i] {
			t.Fatalf("replica perms differ at %d", i)
		}
	}

	// Engine-level: many concurrent submissions of the frame land on both
	// workers; every result must match the reference bits.
	e, err := New(nets, nil, edgesim.Config{}, Config{QueueDepth: 16, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	outs := make([]*model.Output, n)
	workers := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := e.Submit(context.Background(), Request{Cloud: frame})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			outs[i], workers[i] = res.Output, res.Worker
		}(i)
	}
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for i, out := range outs {
		if out == nil {
			t.Fatalf("result %d missing", i)
		}
		if !sameBits(outA.Logits, out.Logits) {
			t.Fatalf("result %d (worker %d): logits differ from reference", i, workers[i])
		}
		seen[workers[i]]++
	}
	t.Logf("frames per worker: %v", seen)
}
