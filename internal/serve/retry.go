package serve

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// This file is the router's survivability layer (DESIGN.md §15): deadline-
// budgeted retries and tail-latency hedging. Both are *attempt* multipliers —
// one offered request still terminates in exactly one accounting class, so
// the conservation law Offered = Completed + Failed + Sheds is untouched;
// Retries/Hedges/HedgeWins are separate attempt counters bounded by it
// (HedgeWins <= Hedges, and hedges are capped to a fraction of Offered).

// RetryPolicy re-routes transient failures (ErrPanic, ErrStalled, and
// ErrQueueFull after spill exhaustion) to the next ring candidate after a
// seeded exponential backoff. Retries never outlive the request's deadline
// budget: a retry whose backoff would cross the remaining budget is not
// attempted, and each attempt's engine timeout is clipped to the remainder.
// Non-transient outcomes — ErrInvalidInput, ErrDeadline, the shed classes,
// ctx cancellation — are the frame's or caller's fault and never retried.
type RetryPolicy struct {
	// Max is the number of re-attempts after the first (default 2).
	Max int
	// BackoffBase is the first retry's backoff; it doubles per attempt up to
	// BackoffMax, jittered into [d/2, d) like the worker circuit breaker.
	// Defaults 1ms / 50ms.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed fixes the jitter schedule (default 1): a fixed seed makes retry
	// timing reproducible in tests.
	Seed uint64
}

func (p *RetryPolicy) normalize() {
	if p.Max <= 0 {
		p.Max = 2
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = time.Millisecond
	}
	if p.BackoffMax < p.BackoffBase {
		p.BackoffMax = 50 * time.Millisecond
		if p.BackoffMax < p.BackoffBase {
			p.BackoffMax = p.BackoffBase
		}
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
}

// HedgePolicy duplicates a slow in-flight request on the next ring candidate
// after Delay; the first result wins and the loser is cancelled. Hedging
// trades bounded extra load for tail latency, so it is budgeted (MaxFraction
// of offered traffic) and disengages entirely while the fleet shed
// controller is shedding — a hedge under overload is fuel on the fire.
type HedgePolicy struct {
	// Delay is how long the primary attempt may run before a hedge launches.
	// Zero derives it from the router's observed p99 completion latency; a
	// cold window (no samples yet) hedges nothing.
	Delay time.Duration
	// MaxFraction caps launched hedges as a fraction of offered requests
	// (default 0.05, clamped to [0, 1]).
	MaxFraction float64
}

func (p *HedgePolicy) normalize() {
	if p.MaxFraction <= 0 {
		p.MaxFraction = 0.05
	}
	if p.MaxFraction > 1 {
		p.MaxFraction = 1
	}
}

// retryable reports whether a failed attempt may be re-routed: only
// failures that say "this engine, right now" — a panicked or stalled worker,
// or a full queue — can succeed elsewhere. Everything else is terminal.
func retryable(err error) bool {
	return errors.Is(err, ErrPanic) || errors.Is(err, ErrStalled) || errors.Is(err, ErrQueueFull)
}

// attemptOutcome is one attempt's terminal result, raced over a buffered
// channel when hedging is live.
type attemptOutcome struct {
	res    Result
	err    error
	hedged bool
}

// submitSurvivable is Submit's slow path, taken only when a RetryPolicy or
// HedgePolicy is configured: up to 1+Retry.Max attempts, each rotated one
// candidate further along the ring than the last so a retry never hammers
// the engine that just failed it, each spanning the usual 1+Spill spillover
// window, each individually hedgeable. seq is the per-submission jitter key.
func (rt *Router) submitSurvivable(ctx context.Context, cand []int, req FleetRequest, seq uint64) (Result, error) {
	var deadline time.Time
	if req.Timeout > 0 {
		deadline = time.Now().Add(req.Timeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	attempts := 1
	if rt.retry != nil {
		attempts += rt.retry.Max
	}
	span := 1 + rt.cfg.Spill
	var res Result
	var err error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			d := retryBackoff(rt.retry, a-1, seq)
			if !deadline.IsZero() && time.Until(deadline) <= d {
				return res, err // budget exhausted: the last failure stands
			}
			timer := time.NewTimer(d)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return res, err
			}
			timer.Stop()
			rt.retries.Add(1)
		}
		areq := req
		if !deadline.IsZero() {
			rem := time.Until(deadline)
			if rem <= 0 {
				return res, err
			}
			areq.Timeout = rem
		}
		res, err = rt.attempt(ctx, cand, a, span, areq)
		if err == nil || !retryable(err) {
			return res, err
		}
	}
	return res, err
}

// attempt runs one (possibly hedged) attempt starting at ring candidate
// `start`. Without a live hedge window this is a plain synchronous walk —
// no goroutines, no channel.
func (rt *Router) attempt(ctx context.Context, cand []int, start, span int, req FleetRequest) (Result, error) {
	delay := rt.hedgeDelay()
	if delay <= 0 || len(cand) < 2 || !rt.canHedge() {
		return rt.trySubmitFrom(ctx, cand, start, span, req)
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel() // the loser is cancelled the moment a winner returns
	ch := make(chan attemptOutcome, 2)
	go rt.runAttempt(cctx, cand, start, span, req, ch, false)
	timer := time.NewTimer(delay)
	defer timer.Stop()
	pending := 1
	var firstRes Result
	var firstErr error
	haveErr := false
	for {
		select {
		case out := <-ch:
			pending--
			if out.err == nil {
				if out.hedged {
					rt.hedgeWins.Add(1)
				}
				return out.res, nil
			}
			if !haveErr {
				firstRes, firstErr, haveErr = out.res, out.err, true
			}
			if pending == 0 {
				return firstRes, firstErr
			}
		case <-timer.C:
			// The primary is slow: duplicate it one candidate further along,
			// re-checking the budget at launch time (shed level and the
			// hedge-fraction cap may have moved since Submit admitted us).
			if pending == 1 && rt.canHedge() {
				rt.hedges.Add(1)
				pending++
				go rt.runAttempt(cctx, cand, start+1, span, req, ch, true)
			}
		}
	}
}

// runAttempt is the goroutine body for one raced attempt. The leading
// deferred guard keeps a panicking attempt from taking the process down
// (package invariant, enforced by the gorecover analyzer); the buffered
// channel (cap 2 for 2 attempts) means the send never blocks, so a loser
// finishing after the winner just parks its outcome and exits.
func (rt *Router) runAttempt(ctx context.Context, cand []int, start, span int, req FleetRequest, ch chan<- attemptOutcome, hedged bool) {
	defer rt.recoverAttempt(ch, hedged)
	res, err := rt.trySubmitFrom(ctx, cand, start, span, req)
	ch <- attemptOutcome{res: res, err: err, hedged: hedged}
}

// recoverAttempt converts a panicking attempt into an ErrPanic outcome so
// the racing side of attempt() always hears back.
func (rt *Router) recoverAttempt(ch chan<- attemptOutcome, hedged bool) {
	if v := recover(); v != nil {
		ch <- attemptOutcome{err: fmt.Errorf("%w: router attempt: %v", ErrPanic, v), hedged: hedged}
	}
}

// hedgeDelay resolves the hedge trigger: the configured delay, or the
// fleet's observed p99 completion latency when unset. Zero (hedging off, or
// a cold latency window) disables hedging for this attempt.
func (rt *Router) hedgeDelay() time.Duration {
	if rt.hedge == nil {
		return 0
	}
	if rt.hedge.Delay > 0 {
		return rt.hedge.Delay
	}
	snap := rt.latency.Snapshot()
	if snap.Window == 0 {
		return 0
	}
	return snap.P99
}

// canHedge gates hedge launches: never while the shed controller is
// engaged, and never past the MaxFraction budget of offered traffic.
func (rt *Router) canHedge() bool {
	if rt.shed.Level() > 0 {
		return false
	}
	return float64(rt.hedges.Load()+1) <= rt.hedge.MaxFraction*float64(rt.offered.Load())
}

// retryBackoff is the jittered exponential backoff before re-attempt
// `attempt` (0-based) of submission seq: base<<attempt capped at max, then
// seeded into [d/2, d) — the same decorrelation scheme as breakerBackoff,
// keyed per-submission so concurrent retry storms spread out.
func retryBackoff(p *RetryPolicy, attempt int, seq uint64) time.Duration {
	shift := attempt
	if shift > 20 {
		shift = 20
	}
	d := p.BackoffBase << shift
	if d <= 0 || d > p.BackoffMax {
		d = p.BackoffMax
	}
	h := mix64(p.Seed ^ seq*0x9e3779b97f4a7c15 ^ uint64(attempt+1)*0xda942042e4dd58b5)
	half := d / 2
	return half + time.Duration(float64(h>>11)/(1<<53)*float64(half))
}
