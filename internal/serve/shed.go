package serve

import (
	"errors"
	"sync/atomic"
)

// Cross-engine load shedding (DESIGN.md §13): a hysteresis controller over
// *fleet* queue pressure that drops whole priority classes, lowest first,
// before any engine's degradation ladder has to cheapen high-priority
// traffic. The two mechanisms are kept from fighting by construction:
//
//   - the shed high watermark (default 0.55) sits well below the ladder's
//     (default 0.75), so as load rises the fleet sheds low-priority frames
//     first and only degrades if pressure keeps climbing;
//   - both controllers carry their own hysteresis (consecutive-calm
//     requirements against watermarks separated by a wide gap), so neither
//     oscillates when load hovers near a threshold, and a shed step-down
//     does not immediately re-trigger a ladder step-up or vice versa.
//
// The controller is a pure state machine over observed fill fractions — no
// clock, no goroutines — so the fleet router and the loadgen simulator
// drive the identical code.

// ErrShed reports a frame dropped by the fleet shed controller: its
// priority class is currently shed under overload. Match with errors.Is.
var ErrShed = errors.New("serve: load shed")

// ShedConfig tunes the fleet shed controller. The zero value selects the
// defaults documented on each field.
type ShedConfig struct {
	// HighWatermark is the fleet mean queue-fill fraction at which the
	// controller sheds one more priority class. Default 0.55 — deliberately
	// below the engine ladder's 0.75 so shedding engages first.
	HighWatermark float64
	// LowWatermark is the fill fraction at or below which an observation
	// counts as calm. Default HighWatermark/4.
	LowWatermark float64
	// Hysteresis is the number of consecutive calm observations required to
	// un-shed one class. Default 8.
	Hysteresis int
	// MaxLevel caps the shed depth. Default (and maximum) NumPriorities-1:
	// the top class is never shed — overload degrades it via the ladder
	// instead of dropping it.
	MaxLevel int
}

func (c *ShedConfig) defaults() {
	if c.HighWatermark <= 0 || c.HighWatermark > 1 {
		c.HighWatermark = 0.55
	}
	if c.LowWatermark <= 0 || c.LowWatermark >= c.HighWatermark {
		c.LowWatermark = c.HighWatermark / 4
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 8
	}
	if c.MaxLevel <= 0 || c.MaxLevel > NumPriorities-1 {
		c.MaxLevel = NumPriorities - 1
	}
}

// ShedController is the fleet-level shed state machine. Level 0 sheds
// nothing; level L sheds the L lowest priority classes. Safe for concurrent
// use (atomic level/calm state, same CAS discipline as the engine ladder).
type ShedController struct {
	cfg   ShedConfig
	level atomic.Int32
	calm  atomic.Int32

	raises atomic.Uint64
	drops  atomic.Uint64
}

// NewShedController builds a controller; zero config selects defaults.
func NewShedController(cfg ShedConfig) *ShedController {
	cfg.defaults()
	return &ShedController{cfg: cfg}
}

// Observe feeds one fleet fill sample (mean queued/capacity over healthy
// engines, in [0,1]) into the state machine. Crossing the high watermark
// raises the shed level one class immediately; Hysteresis consecutive
// samples at or below the low watermark lower it one class.
func (s *ShedController) Observe(fill float64) {
	if fill >= s.cfg.HighWatermark {
		s.calm.Store(0)
		l := s.level.Load()
		if int(l) >= s.cfg.MaxLevel {
			return
		}
		if s.level.CompareAndSwap(l, l+1) {
			s.raises.Add(1)
		}
		return
	}
	if fill > s.cfg.LowWatermark {
		s.calm.Store(0)
		return
	}
	l := s.level.Load()
	if l == 0 {
		return
	}
	if int(s.calm.Add(1)) < s.cfg.Hysteresis {
		return
	}
	if s.level.CompareAndSwap(l, l-1) {
		s.drops.Add(1)
	}
	s.calm.Store(0)
}

// Level returns the current shed depth: the number of priority classes,
// lowest first, currently being dropped.
func (s *ShedController) Level() int { return int(s.level.Load()) }

// Sheds reports whether priority class p is dropped at the current level.
// Classes are shed lowest-priority-first: level 1 sheds PriorityLow, level
// 2 adds PriorityNormal; PriorityHigh is only shed if MaxLevel was raised
// to NumPriorities (it is not, by default).
func (s *ShedController) Sheds(p Priority) bool {
	return int(p) >= NumPriorities-int(s.level.Load())
}

// ShedStats snapshots the controller.
type ShedStats struct {
	Level  int    // current shed depth in classes
	Raises uint64 // level increments (shed onset events)
	Drops  uint64 // level decrements (recovery events)
}

// Stats snapshots the controller's counters.
func (s *ShedController) Stats() ShedStats {
	return ShedStats{Level: int(s.level.Load()), Raises: s.raises.Load(), Drops: s.drops.Load()}
}
