// Package compress implements a Morton-code point-cloud codec — the
// companion application of the paper's structurization insight (its §6.4
// cites the authors' MICRO'22 work on Morton-based edge PC compression
// as evidence that the Z-curve captures PC spatial locality efficiently).
//
// The codec quantizes points onto the same voxel grid the EdgePC encoder
// uses, sorts the Morton codes, and stores first-order deltas as varints:
// spatial locality makes consecutive sorted codes close, so deltas are
// small and varints short. Decoding reproduces voxel centers — a lossy
// round trip with per-axis error bounded by half the grid size.
//
// Layout (little-endian):
//
//	magic   [4]byte  "EPCZ"
//	version byte     1
//	bits    byte     bits per axis (1..21)
//	min     3×float64
//	grid    float64  voxel edge r
//	count   uvarint  number of points
//	deltas  count × uvarint (first value is the first code itself)
package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/morton"
)

var magic = [4]byte{'E', 'P', 'C', 'Z'}

const version = 1

// Options configures encoding.
type Options struct {
	// BitsPerAxis sets the quantization resolution (default 10, matching
	// the paper's a = 32 pick: ⌊32/3⌋ bits per axis). Error per axis is
	// bounded by r/2 with r = maxdim / 2^bits.
	BitsPerAxis int
}

// ErrCorrupt reports undecodable input.
var ErrCorrupt = errors.New("compress: corrupt or truncated data")

// Encode compresses the cloud's geometry. Features and labels are not
// encoded (the codec is a geometry transport, as in the cited work).
func Encode(c *geom.Cloud, opts Options) ([]byte, error) {
	if c.Len() == 0 {
		return nil, fmt.Errorf("compress: empty cloud")
	}
	bits := opts.BitsPerAxis
	if bits == 0 {
		bits = 10
	}
	if bits < 1 || bits > morton.MaxBitsPerAxis {
		return nil, fmt.Errorf("compress: bits per axis %d out of [1, %d]", bits, morton.MaxBitsPerAxis)
	}
	bounds := c.Bounds()
	enc, err := morton.NewEncoder(bounds, 3*bits)
	if err != nil {
		return nil, err
	}
	codes := enc.EncodeCloud(c, nil)
	perm := morton.Order(codes)
	sorted := morton.SortedCodes(codes, perm)

	out := make([]byte, 0, 4+1+1+4*8+binary.MaxVarintLen64*(c.Len()+1))
	out = append(out, magic[:]...)
	out = append(out, version, byte(bits))
	for _, v := range []float64{enc.Min.X, enc.Min.Y, enc.Min.Z, enc.R} {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
	}
	out = binary.AppendUvarint(out, uint64(c.Len()))
	prev := uint64(0)
	for _, code := range sorted {
		out = binary.AppendUvarint(out, code-prev)
		prev = code
	}
	return out, nil
}

// Decode reconstructs the voxel-center point cloud.
func Decode(data []byte) (*geom.Cloud, error) {
	if len(data) < 4+1+1+4*8+1 {
		return nil, fmt.Errorf("%w: %d bytes", ErrCorrupt, len(data))
	}
	if [4]byte(data[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if data[4] != version {
		return nil, fmt.Errorf("compress: unsupported version %d", data[4])
	}
	bits := int(data[5])
	if bits < 1 || bits > morton.MaxBitsPerAxis {
		return nil, fmt.Errorf("%w: bits per axis %d", ErrCorrupt, bits)
	}
	off := 6
	fields := make([]float64, 4)
	for i := range fields {
		fields[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		off += 8
	}
	min := geom.Point3{X: fields[0], Y: fields[1], Z: fields[2]}
	r := fields[3]
	if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
		return nil, fmt.Errorf("%w: grid size %v", ErrCorrupt, r)
	}
	count, n := binary.Uvarint(data[off:])
	// Each point needs at least one delta byte, so the declared count can
	// never legitimately exceed the remaining payload size — reject forged
	// headers before allocating anything.
	if n <= 0 || count == 0 || count > uint64(len(data)-off-n) {
		return nil, fmt.Errorf("%w: count", ErrCorrupt)
	}
	off += n

	cloud := geom.NewCloud(int(count), 0)
	code := uint64(0)
	maxCode := uint64(1)<<(3*uint(bits)) - 1
	for i := 0; i < int(count); i++ {
		delta, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return nil, fmt.Errorf("%w: delta %d of %d", ErrCorrupt, i, count)
		}
		off += n
		code += delta
		if code > maxCode {
			return nil, fmt.Errorf("%w: code overflow at point %d", ErrCorrupt, i)
		}
		x, y, z := morton.Decode3(code)
		cloud.Points[i] = geom.Point3{
			X: min.X + (float64(x)+0.5)*r,
			Y: min.Y + (float64(y)+0.5)*r,
			Z: min.Z + (float64(z)+0.5)*r,
		}
	}
	return cloud, nil
}

// MaxError returns the worst-case reconstruction distance for a cloud with
// the given bounds at the given resolution: half the voxel diagonal.
func MaxError(bounds geom.AABB, bitsPerAxis int) float64 {
	r := bounds.MaxDim() / float64(uint64(1)<<uint(bitsPerAxis))
	return r * math.Sqrt(3) / 2
}

// RawSize returns the uncompressed geometry size used for ratio reporting:
// three float32 coordinates per point, the dense on-device layout.
func RawSize(n int) int { return n * 12 }
