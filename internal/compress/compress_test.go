package compress

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestRoundtripErrorBound(t *testing.T) {
	cloud := geom.GenerateShape(geom.ShapeBlob, geom.ShapeOptions{N: 2000, DensitySkew: 0.5, Seed: 3})
	for _, bits := range []int{8, 10, 12} {
		data, err := Encode(cloud, Options{BitsPerAxis: bits})
		if err != nil {
			t.Fatal(err)
		}
		back, err := Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		if back.Len() != cloud.Len() {
			t.Fatalf("bits=%d: %d points, want %d", bits, back.Len(), cloud.Len())
		}
		bound := MaxError(cloud.Bounds(), bits) + 1e-9
		// Every original point must have a decoded point within the bound.
		// Decoded points are sorted by Morton code, original are not, so
		// check nearest.
		for i, p := range cloud.Points {
			best := math.Inf(1)
			for _, q := range back.Points {
				if d := p.DistSq(q); d < best {
					best = d
				}
			}
			if math.Sqrt(best) > bound {
				t.Fatalf("bits=%d: point %d error %v > bound %v", bits, i, math.Sqrt(best), bound)
			}
		}
	}
}

func TestCompressionRatio(t *testing.T) {
	cloud := geom.GenerateScene(geom.SceneOptions{N: 8192, Seed: 5})
	data, err := Encode(cloud, Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw := RawSize(cloud.Len())
	if len(data) >= raw {
		t.Fatalf("no compression: %d bytes vs raw %d", len(data), raw)
	}
	ratio := float64(raw) / float64(len(data))
	if ratio < 2 {
		t.Fatalf("ratio %.2f, want ≥ 2 for a dense scene (Morton deltas should be short)", ratio)
	}
	t.Logf("scene ratio %.2f (%d → %d bytes)", ratio, raw, len(data))
}

func TestDecodedCloudIsMortonSorted(t *testing.T) {
	// The codec emits points in Morton order — downstream EdgePC pipelines
	// can skip the sort entirely (decode-side structurization for free).
	cloud := geom.GenerateShape(geom.ShapeTorus, geom.ShapeOptions{N: 500, Seed: 7})
	data, err := Encode(cloud, Options{})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	// Re-encode the decoded points and verify non-decreasing codes.
	data2, err := Encode(back, Options{})
	if err != nil {
		t.Fatal(err)
	}
	back2, err := Decode(data2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range back.Points {
		if back.Points[i].Dist(back2.Points[i]) > MaxError(back.Bounds(), 10)+1e-9 {
			t.Fatalf("double roundtrip drifted at %d", i)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := Encode(geom.NewCloud(0, 0), Options{}); err == nil {
		t.Fatal("empty cloud: want error")
	}
	c := geom.GenerateShape(geom.ShapeBox, geom.ShapeOptions{N: 10, Seed: 1})
	if _, err := Encode(c, Options{BitsPerAxis: 22}); err == nil {
		t.Fatal("22 bits: want error")
	}
	if _, err := Encode(c, Options{BitsPerAxis: -1}); err == nil {
		t.Fatal("negative bits: want error")
	}
}

func TestDecodeErrors(t *testing.T) {
	c := geom.GenerateShape(geom.ShapeBox, geom.ShapeOptions{N: 50, Seed: 2})
	data, err := Encode(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"short":     data[:10],
		"bad magic": append([]byte("NOPE"), data[4:]...),
		"truncated": data[:len(data)-3],
		"version":   append(append([]byte{}, data[:4]...), append([]byte{99}, data[5:]...)...),
		"zero bits": append(append([]byte{}, data[:5]...), append([]byte{0}, data[6:]...)...),
	}
	for name, bad := range cases {
		if _, err := Decode(bad); err == nil {
			t.Fatalf("%s: want error", name)
		}
	}
}

func TestRoundtripProperty(t *testing.T) {
	f := func(seed int64, kindRaw uint8) bool {
		kind := geom.ShapeKind(int(kindRaw) % int(geom.NumShapeKinds))
		cloud := geom.GenerateShape(kind, geom.ShapeOptions{N: 120, Noise: 0.01, Seed: seed})
		data, err := Encode(cloud, Options{})
		if err != nil {
			return false
		}
		back, err := Decode(data)
		if err != nil {
			return false
		}
		return back.Len() == cloud.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxError(t *testing.T) {
	b := geom.AABB{Max: geom.Point3{X: 8, Y: 1, Z: 1}}
	got := MaxError(b, 3) // r = 8/8 = 1 → error = √3/2
	if math.Abs(got-math.Sqrt(3)/2) > 1e-12 {
		t.Fatalf("MaxError = %v", got)
	}
}
