package compress

import (
	"testing"

	"repro/internal/geom"
)

// FuzzDecode: arbitrary bytes fed to the codec must error cleanly — no
// panic, and no gigabyte allocation from a forged count field.
func FuzzDecode(f *testing.F) {
	c := geom.GenerateShape(geom.ShapeTorus, geom.ShapeOptions{N: 20, Seed: 1})
	valid, err := Encode(c, Options{})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("EPCZ"))
	f.Fuzz(func(t *testing.T, data []byte) {
		cloud, err := Decode(data)
		if err != nil {
			return
		}
		if cloud == nil || cloud.Len() == 0 {
			t.Fatal("decode succeeded with empty cloud")
		}
		for _, p := range cloud.Points {
			if !p.IsFinite() {
				t.Fatal("decode produced non-finite point")
			}
		}
	})
}
