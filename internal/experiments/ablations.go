package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/edgesim"
	"repro/internal/model"
	"repro/internal/morton"
	"repro/internal/neighbor"
	"repro/internal/pipeline"
)

func init() {
	register("ablation-reuse", "Ablation: DGCNN neighbor-index reuse distance", runAblationReuse)
	register("ablation-sort", "Ablation: radix vs comparison sort for Morton codes", runAblationSort)
}

// runAblationReuse sweeps the reuse distance (§5.2.3: the paper uses 1) and
// reports the modelled neighbor-search latency alongside the staleness of
// the reused indexes — the FNR of the reused graph against the exact
// feature-space graph each layer would have computed.
func runAblationReuse(cfg RunConfig) (*Result, error) {
	cfg.defaults()
	w, err := pipeline.WorkloadByID("W5") // DGCNN(s) on S3DIS-like frames
	if err != nil {
		return nil, err
	}
	opts := pipeline.Options{Seed: cfg.Seed, Backend: cfg.Backend}
	if cfg.Quick {
		w.Points = 256
		opts.BaseWidth = 4
		opts.Modules = 3
	}
	frame, err := pipeline.Frame(w, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rows := [][]string{{"Reuse distance", "NS layers computed", "NS+reuse ms", "Reused-graph FNR", "Buffer KB"}}
	for _, dist := range []int{0, 1, 2} {
		o := opts
		o.ReuseDistance = dist
		if dist == 0 {
			// Options treats 0 as "default"; force no reuse via -1 marker.
			o.ReuseDistance = -1
		}
		net, err := pipeline.Build(w, pipeline.SN, o)
		if err != nil {
			return nil, err
		}
		_, rep, _, err := pipeline.Run(net, frame, cfg.Device, pipeline.SimConfig(w, pipeline.SN, o))
		if err != nil {
			return nil, err
		}
		var nsLat time.Duration
		computed := 0
		for _, r := range rep.Records {
			if r.Stage != model.StageNeighbor {
				continue
			}
			nsLat += r.Latency
			if !r.Reused {
				computed++
			}
		}
		// Staleness of the graph a reused layer inherits: layer 0's
		// Morton-window coordinate graph versus the exact coordinate kNN
		// graph it stands in for.
		staleness := 0.0
		if dist > 0 {
			staleness, err = windowFNR(frame, neighbor.BruteKNN{}, w.K, 2*w.K, 0)
			if err != nil {
				return nil, err
			}
		}
		buffer := 0
		if dist > 0 {
			buffer = frame.Len() * w.K * 4 / 1024
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", dist), fmt.Sprintf("%d/%d", computed, countNS(rep)),
			ms(nsLat), pct(staleness), fmt.Sprintf("%d", buffer),
		})
	}
	return &Result{
		ID:    "ablation-reuse",
		Title: "Ablation: reuse distance vs neighbor-search cost vs reused-graph staleness",
		Table: table(rows),
		Notes: "Distance 1 (the paper's pick) halves the computed searches for a moderate " +
			"staleness; distance 2 saves little more while compounding stale graphs. The buffer " +
			"column is the extra memory the higher DRAM power (1.35 -> 1.63 W) pays for.",
	}, nil
}

func countNS(rep edgesim.Report) int {
	n := 0
	for _, r := range rep.Records {
		if r.Stage == model.StageNeighbor {
			n++
		}
	}
	return n
}

func runAblationSort(cfg RunConfig) (*Result, error) {
	cfg.defaults()
	sizes := []int{8192, 65536}
	if cfg.Quick {
		sizes = []int{2048}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rows := [][]string{{"N codes", "Radix ms (measured)", "sort.SliceStable ms (measured)", "Radix speedup"}}
	for _, n := range sizes {
		codes := make([]uint64, n)
		for i := range codes {
			codes[i] = uint64(rng.Int63()) & ((1 << 30) - 1)
		}
		start := time.Now()
		_ = morton.RadixOrder(codes)
		radix := time.Since(start)
		start = time.Now()
		_ = morton.StdOrder(codes)
		std := time.Since(start)
		rows = append(rows, []string{
			fmt.Sprintf("%d", n), ms(radix), ms(std), ratio(std, radix),
		})
	}
	return &Result{
		ID:    "ablation-sort",
		Title: "Ablation: LSD radix sort vs comparison sort on 30-bit Morton codes (host wall-clock)",
		Table: table(rows),
		Notes: "The sort dominates Algorithm 1's O(N log N) term; fixed-width radix passes beat " +
			"the comparison sort and map naturally onto GPU prefix-sum implementations.",
	}, nil
}
