package experiments

import (
	"fmt"
	"time"

	"repro/internal/model"
	"repro/internal/pipeline"
)

func init() {
	register("stages", "Stage-graph span breakdown (Fig. 3 at per-node granularity)", runStages)
}

// stagesFrames is how many frames each configuration averages over; the first
// frame is run but excluded from the summary (cold workspace).
const stagesFrames = 3

// runStages prints the Graph executor's per-node span breakdown for one
// representative workload per architecture under Baseline and S+N: every
// graph node (SA/FP/EC modules, fuse, embed, pool, head) with its span time
// and the sample/neighbor/group/feature split the span brackets. This is the
// instrumentation view behind Fig. 3: the critical first modules dominate,
// and the S+N columns show the Morton variants shrinking exactly those spans.
func runStages(cfg RunConfig) (*Result, error) {
	cfg.defaults()
	rows := [][]string{{"Workload", "Config", "Node", "Layer", "Span ms", "Sample ms", "Neighbor ms", "Feature ms"}}
	for _, id := range []string{"W1", "W3"} {
		wl, err := pipeline.WorkloadByID(id)
		if err != nil {
			return nil, err
		}
		w, opts := workloadScale(wl, cfg)
		for _, kind := range []pipeline.ConfigKind{pipeline.Baseline, pipeline.SN} {
			sums, err := collectSpans(cfg, w, kind, opts)
			if err != nil {
				return nil, err
			}
			for _, s := range sums {
				layer := "-"
				if s.Layer >= 0 {
					layer = fmt.Sprintf("%d", s.Layer)
				}
				rows = append(rows, []string{
					w.ID, kind.String(), s.Node, layer,
					fmt.Sprintf("%.3f", s.Ms.Mean),
					ms(s.ByStage[model.StageSample] / time.Duration(max(1, s.Frames))),
					ms(s.ByStage[model.StageNeighbor] / time.Duration(max(1, s.Frames))),
					ms(s.ByStage[model.StageFeature] / time.Duration(max(1, s.Frames))),
				})
			}
		}
	}
	return &Result{
		ID:    "stages",
		Title: "Stage-graph span breakdown (Fig. 3 at per-node granularity)",
		Table: table(rows),
		Notes: "expect the layer-0 modules to carry the sample+neighbor cost and the S+N rows to shrink exactly those spans (morton-pick / morton-window); feature time is unchanged by S+N.",
	}, nil
}

// collectSpans runs a workload/config a few frames and summarizes the spans
// of the warm frames.
func collectSpans(cfg RunConfig, w pipeline.Workload, kind pipeline.ConfigKind, opts pipeline.Options) ([]model.SpanSummary, error) {
	net, err := pipeline.NewNet(w, kind, opts)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", w.ID, kind, err)
	}
	frame, err := pipeline.Frame(w, cfg.Seed)
	if err != nil {
		return nil, err
	}
	var traces []*model.Trace
	for i := 0; i < stagesFrames+1; i++ {
		tr, _, _, err := pipeline.Run(net, frame, cfg.Device, pipeline.SimConfig(w, kind, opts))
		if err != nil {
			return nil, fmt.Errorf("%s/%s frame %d: %w", w.ID, kind, i, err)
		}
		if i > 0 { // skip the cold-workspace frame
			traces = append(traces, tr)
		}
	}
	return model.SummarizeSpans(traces), nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
