package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/parallel"
	"repro/internal/sample"
)

func init() {
	register("fps", "Large-scale sampling: bucketed pruned FPS quality vs. latency", runFPS)
}

// runFPS measures the coverage-radius-vs-latency curve of the bucketed
// Morton-FPS sampler against the two extremes the paper describes: exact FPS
// (best coverage, O(nN) serial) and pure Morton stride (cheapest, uneven
// under density skew). This is the regime the paper's benches never reach —
// 100k and 1M point clouds — where exact FPS is seconds per frame and the
// quality knob buys it back. scripts/bench_fps.sh converts the table to
// BENCH_fps.json.
func runFPS(cfg RunConfig) (*Result, error) {
	cfg.defaults()
	sizes := []int{100_000, 1_000_000}
	n := 4096
	if cfg.Quick {
		sizes = []int{20_000, 50_000}
		n = 512
	}
	rows := [][]string{{"N", "Sampler", "Quality", "CoverRadius", "RadiusVsFPS", "Measured ms", "Speedup"}}
	for _, N := range sizes {
		// Density-skewed blob: the case where stride sampling visibly
		// under-covers sparse regions and FPS-style refinement pays off.
		cloud := geom.GenerateShape(geom.ShapeBlob, geom.ShapeOptions{
			N: N, Noise: 0.02, DensitySkew: 0.6, Seed: cfg.Seed,
		})

		start := time.Now()
		selExact, err := sample.FPS{}.Sample(cloud, n)
		if err != nil {
			return nil, fmt.Errorf("fps exact N=%d: %w", N, err)
		}
		exactDur := time.Since(start)
		rExact := parCoverRadius(cloud.Points, selExact)
		rows = append(rows, []string{
			fmt.Sprintf("%d", N), "fps(exact)", "-",
			fmt.Sprintf("%.4f", rExact), "1.000", ms(exactDur), "1.00x",
		})

		for _, q := range []float64{1, 0.9, 0.5, 0.25} {
			bs := &core.BucketSampler{Frac: q}
			start = time.Now()
			sel, err := bs.Sample(cloud, n)
			if err != nil {
				return nil, fmt.Errorf("bucketfps q=%v N=%d: %w", q, N, err)
			}
			dur := time.Since(start)
			r := parCoverRadius(cloud.Points, sel)
			rows = append(rows, []string{
				fmt.Sprintf("%d", N), "bucketfps", fmt.Sprintf("%.2f", q),
				fmt.Sprintf("%.4f", r), fmt.Sprintf("%.3f", r/rExact),
				ms(dur), ratio(exactDur, dur),
			})
		}

		start = time.Now()
		selStride, err := core.MortonSampler{}.Sample(cloud, n)
		if err != nil {
			return nil, fmt.Errorf("morton stride N=%d: %w", N, err)
		}
		strideDur := time.Since(start)
		rStride := parCoverRadius(cloud.Points, selStride)
		rows = append(rows, []string{
			fmt.Sprintf("%d", N), "morton-stride", "0.00",
			fmt.Sprintf("%.4f", rStride), fmt.Sprintf("%.3f", rStride/rExact),
			ms(strideDur), ratio(exactDur, strideDur),
		})
	}
	return &Result{
		ID:    "fps",
		Title: "Large-scale sampling: coverage radius vs. latency, exact FPS / bucketed FPS / stride",
		Table: table(rows),
		Notes: "Expected shape: bucketfps at quality ≥0.9 stays within a few percent of exact FPS's " +
			"coverage radius at ≥10x lower latency (pruning + lazy per-bucket updates over the Morton " +
			"order); lowering quality slides toward morton-stride's latency and coverage. " +
			"Timings include the structurization pass the bucketed/stride samplers run internally.",
	}, nil
}

// parCoverRadius is coverRadius (max distance of any point to the sampled
// set) parallelized over the cloud — the quick-mode serial version in
// metrics.CoverageStats is too slow for 1M-point clouds.
func parCoverRadius(pts []geom.Point3, sel []int) float64 {
	selPts := make([]geom.Point3, len(sel))
	for i, s := range sel {
		selPts[i] = pts[s]
	}
	maxes := make([]float64, parallel.Workers(len(pts)))
	parallel.ForWorkers(len(pts), func(w, lo, hi int) {
		worst := 0.0
		for i := lo; i < hi; i++ {
			best := math.Inf(1)
			for _, sp := range selPts {
				if d := pts[i].DistSq(sp); d < best {
					best = d
				}
			}
			if best > worst {
				worst = best
			}
		}
		maxes[w] = worst
	})
	worst := 0.0
	for _, m := range maxes {
		if m > worst {
			worst = m
		}
	}
	return math.Sqrt(worst)
}
