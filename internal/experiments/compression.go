package experiments

import (
	"fmt"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/pipeline"
)

func init() {
	register("compression", "Extension: Morton delta codec on the workload frames", runCompression)
}

// runCompression exercises the Morton-codec extension (the paper's cited
// companion direction [68]) on each workload's frames: compression ratio,
// bounded reconstruction error, and the decode-side bonus — output already
// Morton-ordered, so the EdgePC structurization pass is free.
func runCompression(cfg RunConfig) (*Result, error) {
	cfg.defaults()
	rows := [][]string{{"Source", "Points", "Raw B", "Encoded B", "Ratio", "Max err bound"}}
	sources := []struct {
		name  string
		cloud *geom.Cloud
	}{}
	bunny := geom.SyntheticBunny(cfg.Seed)
	if cfg.Quick {
		bunny.Points = bunny.Points[:4000]
	}
	sources = append(sources, struct {
		name  string
		cloud *geom.Cloud
	}{"bunny", bunny})
	for _, id := range []string{"W1", "W3", "W5"} {
		w, err := pipeline.WorkloadByID(id)
		if err != nil {
			return nil, err
		}
		if cfg.Quick {
			w.Points = 512
		}
		frame, err := pipeline.Frame(w, cfg.Seed)
		if err != nil {
			return nil, err
		}
		sources = append(sources, struct {
			name  string
			cloud *geom.Cloud
		}{id + "/" + w.Dataset, frame})
	}
	for _, src := range sources {
		data, err := compress.Encode(src.cloud, compress.Options{})
		if err != nil {
			return nil, err
		}
		back, err := compress.Decode(data)
		if err != nil {
			return nil, err
		}
		// Decode-side structurization must be a no-op reorder.
		s, err := core.Structurize(back, core.StructurizeOptions{})
		if err != nil {
			return nil, err
		}
		for j := 1; j < len(s.Codes); j++ {
			if s.Codes[j-1] > s.Codes[j] {
				return nil, fmt.Errorf("compression: decoded cloud not Morton-ordered")
			}
		}
		raw := compress.RawSize(src.cloud.Len())
		rows = append(rows, []string{
			src.name,
			fmt.Sprintf("%d", src.cloud.Len()),
			fmt.Sprintf("%d", raw),
			fmt.Sprintf("%d", len(data)),
			fmt.Sprintf("%.2fx", float64(raw)/float64(len(data))),
			fmt.Sprintf("%.4g", compress.MaxError(src.cloud.Bounds(), 10)),
		})
	}
	return &Result{
		ID:    "compression",
		Title: "Extension: Morton delta codec (ratio vs float32 geometry, 10 bits/axis)",
		Table: table(rows),
		Notes: "Not a paper figure — the codec extension built on the same structurization " +
			"(the paper cites the authors' MICRO'22 Morton compression work as motivation). " +
			"Decoded clouds come out Morton-ordered, so EdgePC's sort stage is free after decode.",
	}, nil
}
