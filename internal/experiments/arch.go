package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/edgesim"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/neighbor"
	"repro/internal/pipeline"
	"repro/internal/tensor"
)

func init() {
	register("sec541", "Sec. 5.4.1: tensor-core utilization and the feature merge/split transform", runSec541)
	register("sec542", "Sec. 5.4.2: sorted-index grouping data-movement study", runSec542)
}

func runSec541(cfg RunConfig) (*Result, error) {
	cfg.defaults()
	dev := cfg.Device
	tc := edgesim.Config{Batch: 1, TensorCores: true}

	// Part 1 — the paper's profiled conv shapes: reshaping 32x1000x12x32
	// (12 input channels: tensor cores idle) into 32x100x120x32 (120
	// channels: 40% utilization) keeps the FLOPs but cuts latency.
	orig := model.StageRecord{Stage: model.StageFeature, Algo: "shared-mlp", Q: 32 * 1000 * 32, CIn: 12, COut: 64}
	resh := model.StageRecord{Stage: model.StageFeature, Algo: "shared-mlp", Q: 32 * 100 * 32, CIn: 120, COut: 64}
	rows := [][]string{{"Conv shape", "TC util", "Modelled ms", "Paper ms"}}
	rows = append(rows,
		[]string{"32x1000x12x32 * 12x64", pct(dev.TensorCoreUtilization(12)), ms(dev.StageLatency(orig, tc)), "40.4 (0% util)"},
		[]string{"32x100x120x32 * 120x64", pct(dev.TensorCoreUtilization(120)), ms(dev.StageLatency(resh, tc)), "18.3 (40% util)"},
	)

	// Part 2 — the merge/split approximation behind the reshape: merging t
	// Morton-adjacent points' features widens the channel dimension; the
	// shared conv result is split back by assignment. The approximation
	// error is small exactly because Morton neighbors are spatial
	// neighbors; on randomly ordered points the same transform is much
	// worse.
	t := 4
	mortonErr, rawErr, err := mergeSplitError(cfg, t)
	if err != nil {
		return nil, err
	}
	rows = append(rows,
		[]string{fmt.Sprintf("merge/split t=%d, Morton order", t), "-", fmt.Sprintf("rel err %.3f", mortonErr), "-"},
		[]string{fmt.Sprintf("merge/split t=%d, raw order", t), "-", fmt.Sprintf("rel err %.3f", rawErr), "-"},
	)
	return &Result{
		ID:    "sec541",
		Title: "Sec. 5.4.1: tensor-core channel threshold and the Morton merge/split transform",
		Table: table(rows),
		Notes: "Paper shape: same FLOPs, wider channels -> tensor cores engage and latency drops " +
			"(2.2x on their hardware). The merge/split approximation that enables the reshape is " +
			"only benign on Morton-ordered points: its error on raw order is several times larger.",
	}, nil
}

// mergeSplitError measures the relative error of replacing per-point linear
// features with the shared feature of t-point groups, under Morton vs raw
// ordering.
func mergeSplitError(cfg RunConfig, t int) (mortonErr, rawErr float64, err error) {
	n := 4096
	if cfg.Quick {
		n = 512
	}
	frame := geom.GenerateScene(geom.SceneOptions{N: n, Seed: cfg.Seed + 3})
	s, err := core.Structurize(frame, core.StructurizeOptions{})
	if err != nil {
		return 0, 0, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 5))
	w := tensor.New(3, 8)
	for i := range w.Data {
		w.Data[i] = float32(rng.NormFloat64())
	}
	calc := func(pts []geom.Point3) float64 {
		m := tensor.New(len(pts)-len(pts)%t, 3)
		for i := 0; i < m.Rows; i++ {
			m.Row(i)[0] = float32(pts[i].X)
			m.Row(i)[1] = float32(pts[i].Y)
			m.Row(i)[2] = float32(pts[i].Z)
		}
		direct, err := tensor.MatMul(m, w)
		if err != nil {
			return math.NaN()
		}
		var num, den float64
		for g := 0; g < direct.Rows/t; g++ {
			// Shared group output = conv of the mean feature (what the
			// split-by-averaging yields for a linear layer).
			mean := make([]float32, direct.Cols)
			for j := 0; j < t; j++ {
				for c, v := range direct.Row(g*t + j) {
					mean[c] += v / float32(t)
				}
			}
			for j := 0; j < t; j++ {
				for c, v := range direct.Row(g*t + j) {
					d := float64(v - mean[c])
					num += d * d
					den += float64(v) * float64(v)
				}
			}
		}
		return math.Sqrt(num / den)
	}
	return calc(s.Cloud.Points), calc(frame.Points), nil
}

func runSec542(cfg RunConfig) (*Result, error) {
	cfg.defaults()
	w, err := pipeline.WorkloadByID("W1")
	if err != nil {
		return nil, err
	}
	if cfg.Quick {
		w.Points = 512
	}
	frame, err := pipeline.Frame(w, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// A real neighbor-index matrix from the baseline pipeline's first SA
	// module shape: queries = N/4 FPS... brute kNN suffices here, the index
	// statistics are what matters.
	k := w.K
	nOut := frame.Len() / 4
	queries := frame.Points[:nOut]
	nbr, err := neighbor.BruteKNN{}.Search(frame.Points, queries, k)
	if err != nil {
		return nil, err
	}
	gapBefore := meanAdjacentGap(nbr, k)
	sorted := make([]int, len(nbr))
	copy(sorted, nbr)
	for q := 0; q < nOut; q++ {
		row := sorted[q*k : (q+1)*k]
		sort.Ints(row)
	}
	gapAfter := meanAdjacentGap(sorted, k)

	rec := model.StageRecord{Stage: model.StageGroup, Algo: "gather", Q: nOut, K: k, CIn: 64}
	simCfg := edgesim.Config{Batch: w.Batch}
	base := cfg.Device.StageLatency(rec, simCfg)
	opt := cfg.Device.StageLatency(rec, edgesim.Config{Batch: w.Batch, SortedGrouping: true})

	rows := [][]string{{"Metric", "Unsorted rows", "Sorted rows", "Paper"}}
	rows = append(rows,
		[]string{"mean adjacent index gap", fmt.Sprintf("%.0f", gapBefore), fmt.Sprintf("%.0f", gapAfter), "-"},
		[]string{"modelled grouping latency", ms(base), ms(opt), "-25.7% DRAM, -53.9% L2 traffic"},
	)
	return &Result{
		ID:    "sec542",
		Title: "Sec. 5.4.2: sorting each neighbor-index row improves gather locality",
		Table: table(rows),
		Notes: "Paper shape: with ascending indexes per row, threads gathering the same rows " +
			"coalesce — measured 53.9% less L2 and 25.7% less DRAM traffic; the cost model " +
			"charges the DRAM reduction. The adjacent-gap statistic shows why: sorted rows step " +
			"through memory in much smaller strides.",
	}, nil
}

// meanAdjacentGap averages |idx[j+1]-idx[j]| within each k-wide row: a proxy
// for the stride pattern the gather kernel issues.
func meanAdjacentGap(nbr []int, k int) float64 {
	if k < 2 {
		return 0
	}
	var sum float64
	count := 0
	for q := 0; q < len(nbr)/k; q++ {
		row := nbr[q*k : (q+1)*k]
		for j := 1; j < k; j++ {
			d := row[j] - row[j-1]
			if d < 0 {
				d = -d
			}
			sum += float64(d)
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}
