package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/edgesim"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/sample"
)

func init() {
	register("fig5", "Fig. 5: sampling quality on the Bunny model", runFig5)
	register("fig9", "Fig. 9: per-layer down/up-sample latency in PointNet++(s)", runFig9)
}

// runFig5 quantifies what the paper shows visually: FPS on raw data and
// uniform sampling on Morton-structurized data both cover the model well,
// while uniform sampling on raw data leaves regions empty. The paper's §4.2
// latency anchor (FPS 81.7 ms vs uniform ≈1 ms on a 40 256-point Bunny) is
// reproduced with the device model.
func runFig5(cfg RunConfig) (*Result, error) {
	cfg.defaults()
	bunny := geom.SyntheticBunny(cfg.Seed)
	n := 1024
	if cfg.Quick {
		bunny.Points = bunny.Points[:4000]
		n = 128
	}
	N := bunny.Len()

	type method struct {
		name string
		sel  func() ([]int, error)
		rec  model.StageRecord
	}
	methods := []method{
		{
			name: "FPS on raw PC (baseline)",
			sel:  func() ([]int, error) { return sample.FPS{}.Sample(bunny, n) },
			rec:  model.StageRecord{Stage: model.StageSample, Algo: "fps", N: N, Q: n},
		},
		{
			name: "uniform on raw PC",
			sel:  func() ([]int, error) { return sample.Uniform{}.Sample(bunny, n) },
			rec:  model.StageRecord{Stage: model.StageSample, Algo: "uniform", N: N, Q: n},
		},
		{
			name: "uniform on Morton-sorted PC (EdgePC)",
			sel:  func() ([]int, error) { return core.MortonSampler{}.Sample(bunny, n) },
			rec:  model.StageRecord{Stage: model.StageSample, Algo: "morton", N: N, Q: n},
		},
		{
			name: "random on raw PC",
			sel:  func() ([]int, error) { return sample.Random{Seed: cfg.Seed}.Sample(bunny, n) },
			rec:  model.StageRecord{Stage: model.StageSample, Algo: "random", N: N, Q: n},
		},
		{
			name: "voxel grid",
			sel:  func() ([]int, error) { return sample.Grid{}.Sample(bunny, n) },
			rec:  model.StageRecord{Stage: model.StageSample, Algo: "grid", N: N, Q: n},
		},
	}

	rows := [][]string{{"Sampler", "CoverMean", "CoverStd", "CoverMax", "Chamfer", "Modelled ms", "Measured ms"}}
	simCfg := edgesim.Config{Batch: 1}
	for _, m := range methods {
		start := time.Now()
		sel, err := m.sel()
		if err != nil {
			return nil, fmt.Errorf("fig5 %s: %w", m.name, err)
		}
		wall := time.Since(start)
		cover, err := metrics.CoverageStats(bunny.Points, sel)
		if err != nil {
			return nil, err
		}
		mean, max := cover.Mean, cover.Max
		sub := make([]geom.Point3, len(sel))
		for i, s := range sel {
			sub[i] = bunny.Points[s]
		}
		chamfer, err := metrics.ChamferDistance(bunny.Points, sub)
		if err != nil {
			return nil, err
		}
		lat := cfg.Device.StageLatency(m.rec, simCfg)
		rows = append(rows, []string{
			m.name,
			fmt.Sprintf("%.4f", mean), fmt.Sprintf("%.4f", cover.Std), fmt.Sprintf("%.4f", max),
			fmt.Sprintf("%.4f", chamfer),
			ms(lat), ms(wall),
		})
	}
	return &Result{
		ID:    "fig5",
		Title: "Fig. 5 (quantified): sampling quality and cost on the Bunny stand-in",
		Table: table(rows),
		Notes: "Paper shape: FPS and Morton-uniform both cover the model (similar coverage radii), " +
			"raw-uniform/random leave dense+empty regions (larger CoverMax); FPS is ~80x slower than " +
			"uniform on the modelled device (paper anchors: 81.7 ms vs ~1 ms).",
	}, nil
}

// runFig9 regenerates the per-layer sampling-latency bars: the first SA
// module's down-sampling and the last FP module's up-sampling dominate, and
// those are the two layers EdgePC optimizes (paper: 10.6× and 5.2×).
func runFig9(cfg RunConfig) (*Result, error) {
	cfg.defaults()
	w, err := pipeline.WorkloadByID("W2") // PointNet++(s) on ScanNet
	if err != nil {
		return nil, err
	}
	opts := pipeline.Options{Seed: cfg.Seed, Backend: cfg.Backend}
	if cfg.Quick {
		w.Points = 512
		opts.BaseWidth = 4
	}
	frame, err := pipeline.Frame(w, cfg.Seed)
	if err != nil {
		return nil, err
	}
	traces := map[pipeline.ConfigKind]*model.Trace{}
	for _, kind := range []pipeline.ConfigKind{pipeline.Baseline, pipeline.SN} {
		net, err := pipeline.Build(w, kind, opts)
		if err != nil {
			return nil, err
		}
		tr, _, _, err := pipeline.Run(net, frame, cfg.Device, pipeline.SimConfig(w, kind, opts))
		if err != nil {
			return nil, err
		}
		traces[kind] = tr
	}
	simB := pipeline.SimConfig(w, pipeline.Baseline, opts)
	simS := pipeline.SimConfig(w, pipeline.SN, opts)
	base := cfg.Device.PriceTrace(traces[pipeline.Baseline], simB)
	edge := cfg.Device.PriceTrace(traces[pipeline.SN], simS)

	rows := [][]string{{"Layer", "Baseline ms", "EdgePC ms", "Speedup"}}
	baseDS := base.LayerStage(model.StageSample)
	edgeDS := edge.LayerStage(model.StageSample)
	// The one-time Morton encode + sort is charged to the first optimized
	// down-sampling layer, mirroring how the paper's Fig. 9 yellow bar
	// accounts for the structurization it depends on.
	edgeDS[0] += edge.ByStage[model.StageStructurize]
	for l := 0; l < 4; l++ {
		rows = append(rows, []string{
			fmt.Sprintf("down-sample SA%d", l+1),
			ms(baseDS[l]), ms(edgeDS[l]), ratio(baseDS[l], edgeDS[l]),
		})
	}
	baseUS := base.LayerStage(model.StageInterp)
	edgeUS := edge.LayerStage(model.StageInterp)
	for l := 0; l < 4; l++ {
		rows = append(rows, []string{
			fmt.Sprintf("up-sample FP%d", l+1),
			ms(baseUS[l]), ms(edgeUS[l]), ratio(baseUS[l], edgeUS[l]),
		})
	}
	return &Result{
		ID:    "fig9",
		Title: "Fig. 9: per-layer sampling latency, PointNet++(s) on ScanNet-like frames",
		Table: table(rows),
		Notes: "Paper shape: SA1 down-sampling and FP4 up-sampling dominate; EdgePC accelerates " +
			"exactly those two (paper: 10.6x and 5.2x). Non-optimized layers are unchanged.",
	}, nil
}
