package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/edgesim"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/neighbor"
	"repro/internal/pipeline"
	"repro/internal/sample"
)

func init() {
	register("fig6", "Fig. 6: false neighbor ratio of pure index selection", runFig6)
	register("fig11", "Fig. 11: per-module NS speedup vs false neighbor ratio", runFig11)
	register("fig15a", "Fig. 15a: FNR and NS speedup vs search window size", runFig15a)
	register("ablation-bits", "Ablation: Morton code width vs FNR and memory", runAblationBits)
}

// ballRadiusFor estimates a ball-query radius that captures ≈k neighbors: the
// median k-th nearest-neighbor distance over a query sample.
func ballRadiusFor(pts []geom.Point3, k int) (float64, error) {
	step := len(pts) / 64
	if step < 1 {
		step = 1
	}
	var queries []geom.Point3
	for i := 0; i < len(pts); i += step {
		queries = append(queries, pts[i])
	}
	nbr, err := neighbor.BruteKNN{}.Search(pts, queries, k)
	if err != nil {
		return 0, err
	}
	kth := make([]float64, 0, len(queries))
	for q := range queries {
		worst := 0.0
		for j := 0; j < k; j++ {
			if d := queries[q].DistSq(pts[nbr[q*k+j]]); d > worst {
				worst = d
			}
		}
		kth = append(kth, worst)
	}
	sort.Float64s(kth)
	med := kth[len(kth)/2]
	if med <= 0 {
		med = 1e-6
	}
	return math.Sqrt(med), nil
}

// windowFNR computes the FNR of the Morton index-window searcher against an
// exact reference over all points of a cloud. For W > k the window searcher
// excludes the query itself (Fig. 10b semantics), so the exact reference
// must exclude it too or every query would carry a built-in 1/k error.
func windowFNR(cloud *geom.Cloud, exact neighbor.Searcher, k, w, bits int) (float64, error) {
	s, err := core.Structurize(cloud, core.StructurizeOptions{TotalBits: bits})
	if err != nil {
		return 0, err
	}
	pos := make([]int, s.Len())
	for i := range pos {
		pos[i] = i
	}
	approx, err := core.WindowSearcher{W: w}.SearchPositions(s.Cloud.Points, pos, k)
	if err != nil {
		return 0, err
	}
	var ref []int
	if w > k {
		ref, err = neighbor.KNNExcludingSelf(s.Cloud.Points, pos, k)
	} else {
		ref, err = exact.Search(s.Cloud.Points, s.Cloud.Points, k)
	}
	if err != nil {
		return 0, err
	}
	return neighbor.FalseNeighborRatio(approx, ref, k)
}

func runFig6(cfg RunConfig) (*Result, error) {
	cfg.defaults()
	rows := [][]string{{"Config", "k", "FNR (index pick)"}}
	minFNR := 1.0
	for _, wl := range pipeline.Workloads {
		w := wl
		if cfg.Quick {
			w.Points = 512
		}
		frame, err := pipeline.Frame(w, cfg.Seed)
		if err != nil {
			return nil, err
		}
		k := w.K
		r, err := ballRadiusFor(frame.Points, k)
		if err != nil {
			return nil, err
		}
		for _, searcher := range []neighbor.Searcher{neighbor.BruteKNN{}, neighbor.BallQuery{R: r}} {
			fnr, err := windowFNR(frame, searcher, k, k, 0)
			if err != nil {
				return nil, err
			}
			if fnr < minFNR {
				minFNR = fnr
			}
			rows = append(rows, []string{
				fmt.Sprintf("%s/%s vs %s", w.ID, w.Dataset, searcher.Name()),
				fmt.Sprintf("%d", k), pct(fnr),
			})
		}
	}
	return &Result{
		ID:    "fig6",
		Title: "Fig. 6: false neighbor ratio of pure index selection (W = k) per dataset × searcher",
		Table: table(rows),
		Notes: fmt.Sprintf("Paper shape: pure index selection has substantial but workable FNR, "+
			"as low as 23%% in the best configuration (this run's best: %s). Widening the window "+
			"drives it toward 5%% (Fig. 15a).", pct(minFNR)),
	}, nil
}

func runFig11(cfg RunConfig) (*Result, error) {
	cfg.defaults()
	w, err := pipeline.WorkloadByID("W2")
	if err != nil {
		return nil, err
	}
	if cfg.Quick {
		w.Points = 512
	}
	frame, err := pipeline.Frame(w, cfg.Seed)
	if err != nil {
		return nil, err
	}
	k := w.K
	window := 2 * k
	simCfg := edgesim.Config{Batch: w.Batch}

	rows := [][]string{{"Module", "N", "Q", "FNR", "Baseline NS ms", "EdgePC NS ms", "Speedup"}}
	pts := frame.Points
	for layer := 0; layer < 4; layer++ {
		nOut := len(pts) / 4
		if nOut < k {
			nOut = k
		}
		sel, err := sample.FPSIndexes(pts, nOut, 0)
		if err != nil {
			return nil, err
		}
		queries := make([]geom.Point3, nOut)
		for i, s := range sel {
			queries[i] = pts[s]
		}
		// FNR of the window searcher at this level.
		lvCloud := &geom.Cloud{Points: pts}
		s, err := core.Structurize(lvCloud, core.StructurizeOptions{})
		if err != nil {
			return nil, err
		}
		inv := make([]int, len(pts))
		for p, orig := range s.Perm {
			inv[orig] = p
		}
		qpos := make([]int, nOut)
		for i, idx := range sel {
			qpos[i] = inv[idx]
		}
		approx, err := core.WindowSearcher{W: window}.SearchPositions(s.Cloud.Points, qpos, k)
		if err != nil {
			return nil, err
		}
		exact, err := neighbor.KNNExcludingSelf(s.Cloud.Points, qpos, k)
		if err != nil {
			return nil, err
		}
		fnr, err := neighbor.FalseNeighborRatio(approx, exact, k)
		if err != nil {
			return nil, err
		}
		// Modelled latencies. Layer 0 reuses the sampler's Morton codes; the
		// deeper layers must re-structurize their level first (§5.2.3).
		baseLat := cfg.Device.StageLatency(model.StageRecord{
			Stage: model.StageNeighbor, Algo: "ball-query", N: len(pts), Q: nOut, K: k,
		}, simCfg)
		edgeLat := cfg.Device.StageLatency(model.StageRecord{
			Stage: model.StageNeighbor, Algo: "morton-window", N: len(pts), Q: nOut, K: k, W: window,
		}, simCfg)
		if layer > 0 {
			edgeLat += cfg.Device.StageLatency(model.StageRecord{
				Stage: model.StageStructurize, Algo: "morton", N: len(pts),
			}, simCfg)
		}
		rows = append(rows, []string{
			fmt.Sprintf("SA%d", layer+1),
			fmt.Sprintf("%d", len(pts)), fmt.Sprintf("%d", nOut),
			pct(fnr), ms(baseLat), ms(edgeLat), ratio(baseLat, edgeLat),
		})
		// Descend to the next level (baseline FPS order, as in the paper's
		// setting where only layer 1 is Morton-optimized).
		pts = queries
	}
	return &Result{
		ID:    "fig11",
		Title: "Fig. 11: window searcher speedup vs FNR across the 4 PointNet++ modules",
		Table: table(rows),
		Notes: "Paper shape: module 1 combines the largest speedup with the lowest FNR (it reuses " +
			"the sampler's Morton codes for free and searches the densest level); deeper modules " +
			"gain less and err more, so EdgePC optimizes only the first.",
	}, nil
}

func selectPoints(pts []geom.Point3, pos []int) []geom.Point3 {
	out := make([]geom.Point3, len(pos))
	for i, p := range pos {
		out[i] = pts[p]
	}
	return out
}

func runFig15a(cfg RunConfig) (*Result, error) {
	cfg.defaults()
	w, err := pipeline.WorkloadByID("W2")
	if err != nil {
		return nil, err
	}
	if cfg.Quick {
		w.Points = 512
	}
	frame, err := pipeline.Frame(w, cfg.Seed)
	if err != nil {
		return nil, err
	}
	k := w.K
	simCfg := edgesim.Config{Batch: w.Batch}
	baseLat := cfg.Device.StageLatency(model.StageRecord{
		Stage: model.StageNeighbor, Algo: "knn-brute", N: frame.Len(), Q: frame.Len(), K: k,
	}, simCfg)

	rows := [][]string{{"Window", "FNR", "NS latency ms", "NS speedup"}}
	for _, mult := range []int{1, 2, 4, 8, 16, 32} {
		wdw := mult * k
		if wdw > frame.Len() {
			break
		}
		fnr, err := windowFNR(frame, neighbor.BruteKNN{}, k, wdw, 0)
		if err != nil {
			return nil, err
		}
		lat := cfg.Device.StageLatency(model.StageRecord{
			Stage: model.StageNeighbor, Algo: "morton-window", N: frame.Len(), Q: frame.Len(), K: k, W: wdw,
		}, simCfg)
		rows = append(rows, []string{
			fmt.Sprintf("%dk", mult), pct(fnr), ms(lat), ratio(baseLat, lat),
		})
	}
	return &Result{
		ID:    "fig15a",
		Title: "Fig. 15a: search window size vs false neighbor ratio vs NS speedup",
		Table: table(rows),
		Notes: "Paper shape: FNR falls monotonically with the window (toward ~5%) while the " +
			"speedup over the O(N^2) baseline shrinks — the accuracy/latency dial of §5.2.3.",
	}, nil
}

func runAblationBits(cfg RunConfig) (*Result, error) {
	cfg.defaults()
	w, err := pipeline.WorkloadByID("W2")
	if err != nil {
		return nil, err
	}
	if cfg.Quick {
		w.Points = 512
	}
	frame, err := pipeline.Frame(w, cfg.Seed)
	if err != nil {
		return nil, err
	}
	k := w.K
	rows := [][]string{{"Total bits a", "Bits/axis", "FNR (W=2k)", "Code bytes/frame"}}
	for _, bits := range []int{12, 18, 24, 30, 33, 45, 63} {
		fnr, err := windowFNR(frame, neighbor.BruteKNN{}, k, 2*k, bits)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", bits), fmt.Sprintf("%d", bits/3),
			pct(fnr), fmt.Sprintf("%d", frame.Len()*((bits+7)/8)),
		})
	}
	return &Result{
		ID:    "ablation-bits",
		Title: "Ablation: Morton code width a vs false neighbor ratio vs memory (the paper's a = 32 pick)",
		Table: table(rows),
		Notes: "Paper shape (§6.1.3): FNR improves as a grows toward 32 bits and flattens beyond, " +
			"while code storage grows linearly — a = 32 balances the two.",
	}, nil
}
