package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/pipeline"
)

func init() {
	register("validate", "Extension: cost model vs host wall-clock rank correlation", runValidate)
}

// runValidate cross-checks the substitution at the heart of this
// reproduction: if the edgesim cost model orders pipeline stages the same
// way real execution does, conclusions drawn from modelled latency shapes
// transfer. For every stage record of baseline and S+N runs we pair the
// modelled latency with the measured Go wall time and report Spearman rank
// correlation (host CPU ≠ edge GPU, so *rank* agreement — which stages
// dominate — is the meaningful criterion, not absolute or linear fit).
// latPair is one (modelled, measured) stage-latency observation.
type latPair struct {
	modelled, measured float64
}

func runValidate(cfg RunConfig) (*Result, error) {
	cfg.defaults()
	var pairs []latPair
	rows := [][]string{{"Workload/config", "Stages", "Spearman rho"}}
	for _, id := range []string{"W2", "W5"} {
		w, err := pipeline.WorkloadByID(id)
		if err != nil {
			return nil, err
		}
		w, opts := workloadScale(w, cfg)
		if !cfg.Quick {
			// Moderate scale: large enough for stable timings, small
			// enough to run in seconds.
			w.Points = 2048
		}
		for _, kind := range []pipeline.ConfigKind{pipeline.Baseline, pipeline.SN} {
			net, err := pipeline.Build(w, kind, opts)
			if err != nil {
				return nil, err
			}
			frame, err := pipeline.Frame(w, cfg.Seed)
			if err != nil {
				return nil, err
			}
			trace, rep, _, err := pipeline.Run(net, frame, cfg.Device, pipeline.SimConfig(w, kind, opts))
			if err != nil {
				return nil, err
			}
			var local []latPair
			for i, r := range trace.Records {
				if r.Dur < 10*time.Microsecond {
					continue // below timer resolution noise floor
				}
				local = append(local, latPair{
					modelled: rep.Records[i].Latency.Seconds(),
					measured: r.Dur.Seconds(),
				})
			}
			rho := spearman(local)
			pairs = append(pairs, local...)
			rows = append(rows, []string{
				fmt.Sprintf("%s/%s", w.ID, kind), fmt.Sprintf("%d", len(local)), fmt.Sprintf("%.3f", rho),
			})
		}
	}
	rows = append(rows, []string{"pooled", fmt.Sprintf("%d", len(pairs)), fmt.Sprintf("%.3f", spearman(pairs))})
	return &Result{
		ID:    "validate",
		Title: "Extension: does the device model rank stages like real execution?",
		Table: table(rows),
		Notes: "Spearman rho near 1 means the cost model and the host agree on which stages " +
			"dominate — the property the latency-shape claims rest on. Absolute times differ by " +
			"design (the model prices a Jetson GPU; measurement is a host CPU).",
	}, nil
}

// spearman computes the Spearman rank correlation of the pairs.
func spearman(pairs []latPair) float64 {
	n := len(pairs)
	if n < 3 {
		return 0
	}
	rankOf := func(key func(int) float64) []float64 {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return key(idx[a]) < key(idx[b]) })
		ranks := make([]float64, n)
		for r, i := range idx {
			ranks[i] = float64(r)
		}
		return ranks
	}
	ra := rankOf(func(i int) float64 { return pairs[i].modelled })
	rb := rankOf(func(i int) float64 { return pairs[i].measured })
	var meanA, meanB float64
	for i := 0; i < n; i++ {
		meanA += ra[i]
		meanB += rb[i]
	}
	meanA /= float64(n)
	meanB /= float64(n)
	var cov, varA, varB float64
	for i := 0; i < n; i++ {
		da, db := ra[i]-meanA, rb[i]-meanB
		cov += da * db
		varA += da * da
		varB += db * db
	}
	if varA == 0 || varB == 0 {
		return 0
	}
	return cov / math.Sqrt(varA*varB)
}
