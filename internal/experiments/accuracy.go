package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/train"
)

func init() {
	register("fig14", "Fig. 14: accuracy of baseline vs EdgePC (with and without retraining)", runFig14)
	register("fig15b", "Fig. 15b: accuracy and speedup vs number of optimized layers", runFig15b)
}

// fiveCls is a 5-class shape-classification task (the laptop-scale stand-in
// for ModelNet40 in the accuracy experiments — distinct families, uneven
// sampling density).
type fiveCls struct {
	items, points int
	seed          int64
}

func (d *fiveCls) Len() int     { return d.items }
func (d *fiveCls) Classes() int { return 5 }
func (d *fiveCls) Name() string { return "five-cls" }
func (d *fiveCls) At(i int) (*dataset.Sample, error) {
	kind := geom.ShapeKind(i % 5) // sphere, torus, box, cylinder, cone
	c := geom.GenerateShape(kind, geom.ShapeOptions{
		N: d.points, Noise: 0.02, DensitySkew: 0.5, Seed: d.seed + int64(i),
	})
	return &dataset.Sample{Cloud: c, Label: int32(i % 5)}, nil
}

// copyParams copies trained weights between two architecturally identical
// networks (the strategies differ, the parameter shapes do not) — this is
// how "EdgePC without retraining" is evaluated.
func copyParams(dst, src pipeline.Net) error {
	dp, sp := dst.Params(), src.Params()
	if len(dp) != len(sp) {
		return fmt.Errorf("experiments: param count mismatch %d vs %d", len(dp), len(sp))
	}
	for i := range dp {
		if len(dp[i].Value.Data) != len(sp[i].Value.Data) {
			return fmt.Errorf("experiments: param %s shape mismatch", dp[i].Name)
		}
		copy(dp[i].Value.Data, sp[i].Value.Data)
	}
	return nil
}

func runFig14(cfg RunConfig) (*Result, error) {
	cfg.defaults()
	ds := &fiveCls{items: 100, points: 256, seed: cfg.Seed + 100}
	epochs := 10
	modOpts := pipeline.Options{BaseWidth: 12, Modules: 3, Seed: cfg.Seed, Backend: cfg.Backend}
	if cfg.Quick {
		ds.items, ds.points, epochs = 20, 96, 2
		modOpts.BaseWidth = 6
	}
	w := pipeline.Workload{
		Arch: pipeline.ArchDGCNN, Task: model.TaskClassification,
		Classes: ds.Classes(), K: 6,
	}
	trainIdx, testIdx := dataset.Split(ds.Len(), 0.2)
	tc := train.Config{Epochs: epochs, LR: 2e-3, BatchSize: 5, Seed: cfg.Seed, KeepBest: true}

	// 1. Baseline: SOTA pipeline, trained from scratch.
	baseNet, err := pipeline.Build(w, pipeline.Baseline, modOpts)
	if err != nil {
		return nil, err
	}
	baseRes, err := train.Run(baseNet, ds, trainIdx, testIdx, tc)
	if err != nil {
		return nil, err
	}

	// 2. EdgePC without retraining: baseline weights, approximate pipeline.
	naiveNet, err := pipeline.Build(w, pipeline.SN, modOpts)
	if err != nil {
		return nil, err
	}
	if err := copyParams(naiveNet, baseNet); err != nil {
		return nil, err
	}
	naiveAcc, _, err := train.Evaluate(naiveNet, ds, testIdx)
	if err != nil {
		return nil, err
	}

	// 3. EdgePC retrained: the approximations stay in the training loop
	// (§5.3), starting from the baseline weights as the paper's retraining
	// does.
	retrainNet, err := pipeline.Build(w, pipeline.SN, modOpts)
	if err != nil {
		return nil, err
	}
	if err := copyParams(retrainNet, baseNet); err != nil {
		return nil, err
	}
	retrainRes, err := train.Run(retrainNet, ds, trainIdx, testIdx, tc)
	if err != nil {
		return nil, err
	}

	rows := [][]string{
		{"Configuration", "Test accuracy", "Drop vs baseline"},
		{"baseline (FPS + exact kNN)", pct(baseRes.TestAcc), "-"},
		{"EdgePC, pretrained weights (no retrain)", pct(naiveAcc), pct(baseRes.TestAcc - naiveAcc)},
		{"EdgePC, retrained with approximations", pct(retrainRes.TestAcc), pct(baseRes.TestAcc - retrainRes.TestAcc)},
	}
	return &Result{
		ID:    "fig14",
		Title: "Fig. 14a: accuracy — baseline vs EdgePC without and with retraining (DGCNN classification)",
		Table: table(rows),
		Notes: "Paper shape: dropping the approximations into a pretrained model costs accuracy; " +
			"retraining with the approximations in the loop recovers it to within ~2% of baseline.",
	}, nil
}

func runFig15b(cfg RunConfig) (*Result, error) {
	cfg.defaults()
	ds := dataset.NewPartSegmentation(48, cfg.Seed+7)
	ds.Points = 256
	epochs := 12
	depth := 4
	if cfg.Quick {
		ds.Items, ds.Points, epochs, depth = 6, 96, 1, 2
	}
	w := pipeline.Workload{
		ID: "fig15b", Dataset: "ShapeNet", Points: ds.Points, Batch: 32,
		Arch: pipeline.ArchPointNetPP, Task: model.TaskSegmentation,
		Classes: ds.Classes(), K: 6,
	}
	trainIdx, testIdx := dataset.Split(ds.Len(), 0.25)
	tc := train.Config{Epochs: epochs, LR: 2e-3, BatchSize: 4, Seed: cfg.Seed}

	rows := [][]string{{"Optimized layers", "Test accuracy", "SMP+NS speedup"}}
	var baseSN float64
	for layers := 0; layers <= depth; layers++ {
		opts := pipeline.Options{BaseWidth: 6, Depth: depth, MortonLayers: layers, Seed: cfg.Seed, Backend: cfg.Backend}
		kind := pipeline.SN
		if layers == 0 {
			kind = pipeline.Baseline
		}
		net, err := pipeline.Build(w, kind, opts)
		if err != nil {
			return nil, err
		}
		res, err := train.Run(net, ds, trainIdx, testIdx, tc)
		if err != nil {
			return nil, err
		}
		// Modelled SMP+NS latency at the Table-1 point count for this layer
		// choice (the accuracy runs above use the reduced training scale).
		simW := w
		if !cfg.Quick {
			simW.Points = 2048
		}
		rep, err := runWorkload(cfg, simW, kind, opts)
		if err != nil {
			return nil, err
		}
		sn := rep.SampleNeighbor.Seconds()
		if layers == 0 {
			baseSN = sn
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", layers), pct(res.TestAcc), fmt.Sprintf("%.2fx", baseSN/sn),
		})
	}
	return &Result{
		ID:    "fig15b",
		Title: "Fig. 15b: number of Morton-optimized layers vs accuracy vs SMP+NS speedup",
		Table: table(rows),
		Notes: "Paper shape: optimizing only the first SA/FP pair already buys most of the " +
			"speedup (2.9x at 1.2% accuracy cost); optimizing deeper layers adds little speed " +
			"and hurts accuracy (their levels are sparser, so false neighbors multiply).",
	}, nil
}
