package experiments

import (
	"strconv"

	"repro/internal/pipeline"
)

func init() {
	register("table1", "Table 1: workloads", runTable1)
	register("table2", "Table 2: qualitative comparison with prior works", runTable2)
}

func runTable1(cfg RunConfig) (*Result, error) {
	rows := [][]string{{"Workload", "Model", "Dataset (substitute)", "#Points/Batch-elem", "Batch", "Task"}}
	for _, w := range pipeline.Workloads {
		task := "Semantic Segmentation"
		switch {
		case w.ID == "W3":
			task = "Classification"
		case w.ID == "W4":
			task = "Part Segmentation"
		}
		rows = append(rows, []string{
			w.ID, w.Model, w.Dataset + " (synthetic)", strconv.Itoa(w.Points), strconv.Itoa(w.Batch), task,
		})
	}
	return &Result{
		ID:    "table1",
		Title: "Table 1: workloads used in this work",
		Table: table(rows),
		Notes: "Datasets are deterministic synthetic stand-ins (see DESIGN.md §2); " +
			"point counts and batch sizes match the paper (ScanNet batches use the stated average of 14).",
	}, nil
}

func runTable2(cfg RunConfig) (*Result, error) {
	rows := [][]string{
		{"System", "Accuracy", "Generality", "No HW design overhead"},
		{"Crescent [17]", "yes", "yes", "no"},
		{"PointAcc [35]", "yes", "yes", "no"},
		{"Point-X [71]", "yes", "no (graph CNNs only)", "no"},
		{"EdgePC (this repo)", "yes (retrained, ≤2% drop)", "yes", "yes (commodity GPU)"},
	}
	return &Result{
		ID:    "table2",
		Title: "Table 2: qualitative comparison",
		Table: table(rows),
		Notes: "Static reproduction of the paper's qualitative claims (§6.4).",
	}, nil
}
