// Package experiments regenerates every table and figure of the paper's
// evaluation (§3 Fig. 3, §4 Figs. 5–6, §5 Figs. 9/11 and the §5.4 studies,
// §6 Table 1, Figs. 13–15, the §6.4 comparisons and Table 2). Each runner
// produces a formatted table plus commentary comparing the measured shape
// against the paper's reported numbers; cmd/edgepc-bench prints them and
// EXPERIMENTS.md records a reference run.
package experiments

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/edgesim"
)

// RunConfig parameterizes an experiment run.
type RunConfig struct {
	// Device prices stage traces; defaults to the Jetson AGX Xavier model.
	Device *edgesim.Device
	// Quick shrinks workloads so the whole suite finishes in seconds —
	// used by tests; the bench binary runs full scale.
	Quick bool
	// Seed drives all synthetic data.
	Seed int64
	// Backend names the tensor compute backend model-building experiments run
	// their inference kernels on ("" or tensor.BackendNaive for the reference
	// scalar loops; tensor.BackendBlocked / tensor.BackendInt8 for the tiled
	// and quantized kernels). Experiments that never build a network ignore
	// it.
	Backend string
}

func (c *RunConfig) defaults() {
	if c.Device == nil {
		c.Device = edgesim.JetsonAGXXavier()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Result is one regenerated table/figure.
type Result struct {
	ID    string
	Title string
	Table string // formatted rows, ready to print
	Notes string // paper expectation vs. this run
}

// Runner regenerates one experiment.
type Runner func(cfg RunConfig) (*Result, error)

// Experiment pairs a runner with its identity.
type Experiment struct {
	ID    string
	Title string
	Run   Runner
}

// registry is populated by the experiment files' init functions.
var registry []Experiment

func register(id, title string, run Runner) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns every registered experiment in a stable curated order.
func All() []Experiment {
	order := map[string]int{}
	for i, id := range []string{
		"table1", "fig3", "fig5", "fig6", "fig9", "fig11",
		"fig13", "fig14", "fig15a", "fig15b",
		"sec541", "sec542", "memory", "sec64", "table2",
		"ablation-bits", "ablation-reuse", "ablation-sort", "compression", "devices", "fps", "stages", "validate",
	} {
		order[id] = i
	}
	out := append([]Experiment(nil), registry...)
	sort.SliceStable(out, func(a, b int) bool {
		oa, oka := order[out[a].ID]
		ob, okb := order[out[b].ID]
		if oka && okb {
			return oa < ob
		}
		if oka != okb {
			return oka
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// table renders rows with aligned columns. The first row is the header.
func table(rows [][]string) string {
	var buf bytes.Buffer
	w := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	for i, row := range rows {
		fmt.Fprintln(w, strings.Join(row, "\t"))
		if i == 0 {
			under := make([]string, len(row))
			for j, h := range row {
				under[j] = strings.Repeat("-", len(h))
			}
			fmt.Fprintln(w, strings.Join(under, "\t"))
		}
	}
	w.Flush()
	return buf.String()
}

// ms formats a duration in milliseconds.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d)/float64(time.Millisecond))
}

// ratio formats a speedup.
func ratio(base, opt time.Duration) string {
	if opt <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", float64(base)/float64(opt))
}

func pct(v float64) string {
	return fmt.Sprintf("%.1f%%", 100*v)
}
