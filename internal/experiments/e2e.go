package experiments

import (
	"fmt"

	"repro/internal/edgesim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/pipeline"
)

func init() {
	register("fig3", "Fig. 3: latency breakdown of the baseline pipelines", runFig3)
	register("fig13", "Fig. 13: speedups and energy savings across W1-W6", runFig13)
	register("sec64", "Sec. 6.4: comparison with Mesorasi delayed aggregation", runSec64)
	register("memory", "Sec. 5.2.3: memory overhead accounting", runMemory)
}

// workloadScale shrinks the per-frame point counts and widths for Quick runs
// while preserving the structure.
func workloadScale(w pipeline.Workload, cfg RunConfig) (pipeline.Workload, pipeline.Options) {
	// Width 32 keeps the feature-compute share of the baseline pipelines in
	// the paper's 38–80% band (the paper's networks are wider still, but
	// pure-Go execution has to finish; the cost model prices the actual
	// channel widths the models run).
	opts := pipeline.Options{Seed: 11, BaseWidth: 32, Backend: cfg.Backend}
	if cfg.Quick {
		w.Points = 256
		opts.BaseWidth = 4
		opts.Depth = 2
		opts.Modules = 3
	}
	return w, opts
}

// runWorkload builds, runs and prices one workload under one configuration.
func runWorkload(cfg RunConfig, w pipeline.Workload, kind pipeline.ConfigKind, opts pipeline.Options) (edgesim.Report, error) {
	net, err := pipeline.Build(w, kind, opts)
	if err != nil {
		return edgesim.Report{}, fmt.Errorf("%s/%s: %w", w.ID, kind, err)
	}
	frame, err := pipeline.Frame(w, cfg.Seed)
	if err != nil {
		return edgesim.Report{}, err
	}
	_, rep, _, err := pipeline.Run(net, frame, cfg.Device, pipeline.SimConfig(w, kind, opts))
	if err != nil {
		return edgesim.Report{}, fmt.Errorf("%s/%s: %w", w.ID, kind, err)
	}
	return rep, nil
}

func runFig3(cfg RunConfig) (*Result, error) {
	cfg.defaults()
	rows := [][]string{{"Workload", "Sample+NS ms", "Feature ms", "Total ms", "Sample+NS share"}}
	lo, hi := 1.0, 0.0
	for _, wl := range pipeline.Workloads {
		w, opts := workloadScale(wl, cfg)
		rep, err := runWorkload(cfg, w, pipeline.Baseline, opts)
		if err != nil {
			return nil, err
		}
		share := rep.SampleNeighbor.Seconds() / rep.Total.Seconds()
		if share < lo {
			lo = share
		}
		if share > hi {
			hi = share
		}
		rows = append(rows, []string{
			w.ID + " " + w.Model,
			ms(rep.SampleNeighbor), ms(rep.Feature), ms(rep.Total), pct(share),
		})
	}
	// Control: vanilla PointNet has no sampling/neighbor stages — the
	// bottleneck the paper attacks exists only in hierarchical models.
	ctrlRep, err := runVanillaControl(cfg)
	if err != nil {
		return nil, err
	}
	rows = append(rows, []string{
		"(control) PointNet-vanilla",
		ms(ctrlRep.SampleNeighbor), ms(ctrlRep.Feature), ms(ctrlRep.Total),
		pct(ctrlRep.SampleNeighbor.Seconds() / ctrlRep.Total.Seconds()),
	})
	return &Result{
		ID:    "fig3",
		Title: "Fig. 3: baseline latency breakdown (sample & neighbor search vs feature compute)",
		Table: table(rows),
		Notes: fmt.Sprintf("Paper shape: sample+NS takes 38%%-80%% of end-to-end latency, growing "+
			"with point count (ScanNet 8192 at the top). This run spans %s-%s.", pct(lo), pct(hi)),
	}, nil
}

// runVanillaControl prices one vanilla-PointNet frame (ModelNet-like shape).
func runVanillaControl(cfg RunConfig) (edgesim.Report, error) {
	points := 1024
	width := 32
	if cfg.Quick {
		points, width = 256, 4
	}
	net, err := model.NewPointNetVanilla(model.PointNetConfig{Classes: 10, BaseWidth: width, Seed: cfg.Seed})
	if err != nil {
		return edgesim.Report{}, err
	}
	w, err := pipeline.WorkloadByID("W3")
	if err != nil {
		return edgesim.Report{}, err
	}
	w.Points = points
	frame, err := pipeline.Frame(w, cfg.Seed)
	if err != nil {
		return edgesim.Report{}, err
	}
	trace := &model.Trace{}
	if _, err := net.Forward(frame, trace, false); err != nil {
		return edgesim.Report{}, err
	}
	return cfg.Device.PriceTrace(trace, edgesim.Config{Batch: w.Batch}), nil
}

func runFig13(cfg RunConfig) (*Result, error) {
	cfg.defaults()
	rows := [][]string{{
		"Workload", "SMP+NS speedup", "E2E speedup (S+N)", "E2E speedup (S+N+F)",
		"Energy saving (S+N)", "Energy saving (S+N+F)",
	}}
	var snSpeed, e2eSpeed, e2eSpeedF, savings []float64
	for _, wl := range pipeline.Workloads {
		w, opts := workloadScale(wl, cfg)
		base, err := runWorkload(cfg, w, pipeline.Baseline, opts)
		if err != nil {
			return nil, err
		}
		sn, err := runWorkload(cfg, w, pipeline.SN, opts)
		if err != nil {
			return nil, err
		}
		snf, err := runWorkload(cfg, w, pipeline.SNF, opts)
		if err != nil {
			return nil, err
		}
		sSN := base.SampleNeighbor.Seconds() / sn.SampleNeighbor.Seconds()
		sE2E := base.Total.Seconds() / sn.Total.Seconds()
		sE2EF := base.Total.Seconds() / snf.Total.Seconds()
		save := 1 - sn.EnergyJ/base.EnergyJ
		saveF := 1 - snf.EnergyJ/base.EnergyJ
		snSpeed = append(snSpeed, sSN)
		e2eSpeed = append(e2eSpeed, sE2E)
		e2eSpeedF = append(e2eSpeedF, sE2EF)
		savings = append(savings, save)
		rows = append(rows, []string{
			w.ID,
			fmt.Sprintf("%.2fx", sSN), fmt.Sprintf("%.2fx", sE2E), fmt.Sprintf("%.2fx", sE2EF),
			pct(save), pct(saveF),
		})
	}
	rows = append(rows, []string{
		"geomean",
		fmt.Sprintf("%.2fx", metrics.GeoMean(snSpeed)),
		fmt.Sprintf("%.2fx", metrics.GeoMean(e2eSpeed)),
		fmt.Sprintf("%.2fx", metrics.GeoMean(e2eSpeedF)),
		pct(mean(savings)), "",
	})
	return &Result{
		ID:    "fig13",
		Title: "Fig. 13: sample+NS speedup (a), E2E speedup (b) and energy saving (c), W1-W6",
		Table: table(rows),
		Notes: "Paper shape: SMP+NS avg 3.68x (W1 5.21x > W2 3.44x because W1's batch of 32 " +
			"amortizes better than W2's 14); E2E avg 1.55x, up to 2.25x with tensor cores (W6); " +
			"energy saving avg 33% (+13% more from tensor cores); DGCNN savings trail their " +
			"speedups because the reuse buffer raises memory power.",
	}, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func runSec64(cfg RunConfig) (*Result, error) {
	cfg.defaults()
	w, err := pipeline.WorkloadByID("W1") // PointNet++ on S3DIS, the paper's DA testbed
	if err != nil {
		return nil, err
	}
	w, opts := workloadScale(w, cfg)
	net, err := pipeline.Build(w, pipeline.Baseline, opts)
	if err != nil {
		return nil, err
	}
	frame, err := pipeline.Frame(w, cfg.Seed)
	if err != nil {
		return nil, err
	}
	simCfg := pipeline.SimConfig(w, pipeline.Baseline, opts)
	baseTrace, baseRep, _, err := pipeline.Run(net, frame, cfg.Device, simCfg)
	if err != nil {
		return nil, err
	}
	daRep := cfg.Device.PriceTrace(pipeline.DelayedAggregation(baseTrace), simCfg)
	edgeRep, err := runWorkload(cfg, w, pipeline.SN, opts)
	if err != nil {
		return nil, err
	}

	sumStage := func(rep edgesim.Report, stage model.StageKind) float64 {
		var s float64
		for _, r := range rep.Records {
			if r.Stage == stage {
				s += r.Latency.Seconds()
			}
		}
		return s
	}
	baseFC := sumStage(baseRep, model.StageFeature)
	daFC := sumStage(daRep, model.StageFeature)
	baseGrp := sumStage(baseRep, model.StageGroup)
	daGrp := sumStage(daRep, model.StageGroup)

	rows := [][]string{{"Metric", "This run", "Paper"}}
	rows = append(rows,
		[]string{"DA feature-compute speedup", fmt.Sprintf("%.2fx", baseFC/daFC), "2.1x (88.2 -> 42.2 ms)"},
		[]string{"DA grouping slowdown", fmt.Sprintf("%.2fx", daGrp/baseGrp), "2.73x"},
		[]string{"DA E2E speedup", fmt.Sprintf("%.2fx", baseRep.Total.Seconds()/daRep.Total.Seconds()), "1.12x"},
		[]string{"EdgePC (S+N) E2E speedup", fmt.Sprintf("%.2fx", baseRep.Total.Seconds()/edgeRep.Total.Seconds()), "1.55x avg"},
	)
	return &Result{
		ID:    "sec64",
		Title: "Sec. 6.4: Mesorasi delayed aggregation vs EdgePC on PointNet++/S3DIS",
		Table: table(rows),
		Notes: "Paper shape: DA accelerates feature compute but inflates grouping and leaves " +
			"sampling untouched, capping its E2E gain well below EdgePC's.",
	}, nil
}

func runMemory(cfg RunConfig) (*Result, error) {
	cfg.defaults()
	rows := [][]string{{"Workload", "Morton codes/frame", "Reuse buffer/frame", "Paper bound"}}
	for _, w := range pipeline.Workloads {
		mortonB := w.Points * 4 // 32-bit codes
		reuseB := 0
		if w.Arch == pipeline.ArchDGCNN {
			reuseB = w.Points * w.K * 4
		}
		rows = append(rows, []string{
			w.ID,
			fmt.Sprintf("%d KB", mortonB/1024),
			fmt.Sprintf("%d KB", reuseB/1024),
			"<=32 KB codes, <=160 KB reuse",
		})
	}
	return &Result{
		ID:    "memory",
		Title: "Sec. 5.2.3: per-frame memory overhead of the Morton codes and reuse buffer",
		Table: table(rows),
		Notes: "32-bit codes for 8192 points are exactly the paper's 32 KB; the reuse buffer is " +
			"N*k*4 bytes (the paper's 160 KB corresponds to its k=20 grouping at n=2048).",
	}, nil
}
