package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "fig3", "fig5", "fig6", "fig9", "fig11",
		"fig13", "fig14", "fig15a", "fig15b",
		"sec541", "sec542", "memory", "sec64", "table2",
		"ablation-bits", "ablation-reuse", "ablation-sort", "compression", "devices", "fps", "stages", "validate",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Fatalf("order[%d] = %s, want %s", i, all[i].ID, id)
		}
	}
	if _, err := ByID("fig13"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id: want error")
	}
}

// TestAllExperimentsRunQuick executes every registered experiment in Quick
// mode — the integration test of the whole harness.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment suite still takes a few seconds")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(RunConfig{Quick: true, Seed: 3})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if res.ID != e.ID {
				t.Fatalf("result id %q for experiment %q", res.ID, e.ID)
			}
			if !strings.Contains(res.Table, "\n") || len(res.Table) < 20 {
				t.Fatalf("%s: implausible table:\n%s", e.ID, res.Table)
			}
			if res.Notes == "" {
				t.Fatalf("%s: missing notes", e.ID)
			}
			lines := strings.Split(strings.TrimSpace(res.Table), "\n")
			if len(lines) < 3 { // header + underline + ≥1 data row
				t.Fatalf("%s: table has no data rows:\n%s", e.ID, res.Table)
			}
		})
	}
}

func TestTableFormatting(t *testing.T) {
	out := table([][]string{{"A", "BB"}, {"1", "2"}})
	if !strings.Contains(out, "A") || !strings.Contains(out, "--") {
		t.Fatalf("table output:\n%s", out)
	}
}
