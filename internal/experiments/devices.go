package experiments

import (
	"fmt"

	"repro/internal/edgesim"
	"repro/internal/pipeline"
)

func init() {
	register("devices", "Extension: EdgePC across edge-device tiers", runDevices)
}

// runDevices prices the W2 pipeline (PointNet++ on ScanNet-like frames)
// across three device tiers. The paper evaluates one board (AGX Xavier);
// the cost model makes the tier question answerable: does the optimization
// matter more or less as the device weakens? (More: the bottleneck stages
// are compute-bound, so weaker parts spend proportionally longer in them,
// and real-time deadlines arrive sooner.)
func runDevices(cfg RunConfig) (*Result, error) {
	cfg.defaults()
	w, err := pipeline.WorkloadByID("W2")
	if err != nil {
		return nil, err
	}
	w, opts := workloadScale(w, cfg)
	// Run the pipelines once; the traces are device-independent.
	frame, err := pipeline.Frame(w, cfg.Seed)
	if err != nil {
		return nil, err
	}
	baseNet, err := pipeline.Build(w, pipeline.Baseline, opts)
	if err != nil {
		return nil, err
	}
	snNet, err := pipeline.Build(w, pipeline.SN, opts)
	if err != nil {
		return nil, err
	}
	baseTrace, _, _, err := pipeline.Run(baseNet, frame, cfg.Device, pipeline.SimConfig(w, pipeline.Baseline, opts))
	if err != nil {
		return nil, err
	}
	snTrace, _, _, err := pipeline.Run(snNet, frame, cfg.Device, pipeline.SimConfig(w, pipeline.SN, opts))
	if err != nil {
		return nil, err
	}

	devices := []*edgesim.Device{
		edgesim.JetsonNano(),
		edgesim.JetsonAGXXavier(),
		edgesim.JetsonOrinNX(),
	}
	rows := [][]string{{"Device", "Baseline E2E ms", "EdgePC E2E ms", "Speedup", "Energy saving", "30Hz deadline"}}
	for _, dev := range devices {
		base := dev.PriceTrace(baseTrace, pipeline.SimConfig(w, pipeline.Baseline, opts))
		sn := dev.PriceTrace(snTrace, pipeline.SimConfig(w, pipeline.SN, opts))
		deadline := "both ok"
		const budgetMS = 33.0
		baseMS := base.Total.Seconds() * 1e3
		snMS := sn.Total.Seconds() * 1e3
		switch {
		case snMS > budgetMS:
			deadline = "both miss"
		case baseMS > budgetMS:
			deadline = "only EdgePC"
		}
		rows = append(rows, []string{
			dev.Name,
			ms(base.Total), ms(sn.Total),
			fmt.Sprintf("%.2fx", base.Total.Seconds()/sn.Total.Seconds()),
			pct(1 - sn.EnergyJ/base.EnergyJ),
			deadline,
		})
	}
	return &Result{
		ID:    "devices",
		Title: "Extension: W2 (PointNet++/ScanNet) across device tiers",
		Table: table(rows),
		Notes: "Not a paper figure — the tier sweep the cost model enables. The speedup ratio is " +
			"similar across tiers (the bottleneck is structural); what changes is where the 30 Hz " +
			"frame budget becomes holdable — EdgePC moves that boundary a full device tier down " +
			"(at this workload scale, the fastest tier holds 30 Hz only with EdgePC).",
	}, nil
}
