package core

import (
	"repro/internal/geom"
	"repro/internal/neighbor"
)

// EstimateNormalsWindow computes PCA surface normals using the Morton
// index-window searcher instead of exact k-NN — normals in O(N·W) instead of
// O(N²), in the same spirit as the paper's neighbor-search approximation:
// the neighborhood only needs to be *representative* for the covariance to
// point the right way, so false neighbors that are still nearby barely move
// the estimate (quantified in the tests: window normals agree with exact
// normals to a few degrees on smooth surfaces).
func EstimateNormalsWindow(s *Structurized, k, w int) ([]geom.Point3, error) {
	pos := make([]int, s.Len())
	for i := range pos {
		pos[i] = i
	}
	nbr, err := WindowSearcher{W: w}.SearchPositions(s.Cloud.Points, pos, k)
	if err != nil {
		return nil, err
	}
	return neighbor.NormalsFromNeighbors(s.Cloud.Points, nbr, k)
}
