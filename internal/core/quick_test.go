package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/sample"
)

// latticeCloud builds n points with distinct integer coordinates in [0,32)³.
// With TotalBits=30 the structurize grid has 1024 cells per axis over a span
// of at most 31 units, so distinct integer coordinates land in distinct
// voxels — distinct Morton codes, hence a unique sorted order. That is the
// precondition for exact permutation invariance: equal codes tie-break by
// input position, which an input permutation would perturb.
func latticeCloud(rng *rand.Rand, n int) *geom.Cloud {
	seen := make(map[[3]int]bool, n)
	c := geom.NewCloud(n, 0)
	for i := 0; i < n; {
		key := [3]int{rng.Intn(32), rng.Intn(32), rng.Intn(32)}
		if seen[key] {
			continue
		}
		seen[key] = true
		c.Points[i] = geom.Point3{X: float64(key[0]), Y: float64(key[1]), Z: float64(key[2])}
		i++
	}
	return c
}

// TestQuickWindowPermutationInvariance: after Morton structurization, the
// W=k index-window neighbor sets are invariant to the order the points
// arrived in — the property that makes the approximate searcher usable on
// unordered sensor streams.
func TestQuickWindowPermutationInvariance(t *testing.T) {
	prop := func(seed int64, kRaw, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + int(kRaw)%6      // 2..7
		n := k + 2 + int(nRaw)%24 // enough points for a window
		c := latticeCloud(rng, n)
		shuf := geom.NewCloud(n, 0)
		for i, p := range rng.Perm(n) {
			shuf.Points[p] = c.Points[i]
		}
		opts := StructurizeOptions{TotalBits: 30}
		sA, errA := Structurize(c, opts)
		sB, errB := Structurize(shuf, opts)
		if errA != nil || errB != nil {
			return false
		}
		// Distinct codes: both orders must sort to the same sequence.
		for i := range sA.Cloud.Points {
			if sA.Cloud.Points[i] != sB.Cloud.Points[i] {
				return false
			}
		}
		// W = k is the pure index pick — no distance ties to worry about.
		w := WindowSearcher{W: k}
		nbrA, errA := w.SearchAll(sA.Cloud.Points, k)
		nbrB, errB := w.SearchAll(sB.Cloud.Points, k)
		if errA != nil || errB != nil || len(nbrA) != len(nbrB) {
			return false
		}
		for i := range nbrA {
			if sA.Cloud.Points[nbrA[i]] != sB.Cloud.Points[nbrB[i]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMortonInterpWeights: for any structurized cloud and any uniform
// sample set, every interpolation target gets min(3, candidates) in-range
// source ranks with non-negative weights summing to 1 — the invariant the FP
// feature mix relies on (a weight sum ≠ 1 would rescale features).
func TestQuickMortonInterpWeights(t *testing.T) {
	prop := func(seed int64, nRaw, mRaw, candRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + int(nRaw)%60
		m := 1 + int(mRaw)%n
		cand := int(candRaw) % 7 // 0 exercises the default of 4
		c := latticeCloud(rng, n)
		s, err := Structurize(c, StructurizeOptions{TotalBits: 30})
		if err != nil {
			return false
		}
		samplePos := sample.UniformIndexes(n, m)
		plan, err := MortonInterp{Candidates: cand}.PlanStructurized(s.Cloud.Points, samplePos)
		if err != nil {
			return false
		}
		k := plan.K
		if k < 1 || k > 3 || len(plan.Indexes) != n*k || len(plan.Weights) != n*k {
			return false
		}
		for tgt := 0; tgt < n; tgt++ {
			total := 0.0
			for i := 0; i < k; i++ {
				w := plan.Weights[tgt*k+i]
				if w < 0 || math.IsNaN(w) {
					return false
				}
				total += w
				if idx := plan.Indexes[tgt*k+i]; idx < 0 || idx >= m {
					return false
				}
			}
			if math.Abs(total-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
