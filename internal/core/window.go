package core

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/neighbor"
	"repro/internal/parallel"
)

// WindowSearcher is the paper's index-based neighbor searcher (§5.2.2): on a
// structurized cloud, the neighbors of the point at position p are taken from
// the window of positions {p−W/2, …, p, …, p+W/2}.
//
// With W == k the k window members are returned directly — zero distance
// computations, the pure index pick of §4.3 (Fig. 10(b) uses W = k+1). With
// W > k the k nearest-by-distance points inside the window are selected,
// costing O(W) per query instead of the SOTA's O(N); the window size trades
// false-neighbor ratio against speed (Fig. 15a).
type WindowSearcher struct {
	// W is the search window size, clamped to [k, N]. Zero means W = k
	// (pure index selection).
	W int
}

// Name returns the algorithm name used in reports.
func (w WindowSearcher) Name() string { return "morton-window" }

// SearchPositions finds k neighbors for each query, where queries are given
// as *positions into the structurized order* of points. The result is flat
// (query-major) and holds positions into points — the same index space the
// grouping stage consumes.
func (w WindowSearcher) SearchPositions(points []geom.Point3, queryPos []int, k int) ([]int, error) {
	n := len(points)
	if n == 0 {
		return nil, neighbor.ErrNoPoints
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("%w: k=%d with %d points", neighbor.ErrBadK, k, n)
	}
	win := w.W
	if win < k {
		win = k
	}
	if win > n {
		win = n
	}
	out := make([]int, len(queryPos)*k)
	if win == k {
		// Pure index pick: the k consecutive positions centered on the query.
		parallel.ForChunks(len(queryPos), func(lo, hi int) {
			for q := lo; q < hi; q++ {
				start := clampWindow(queryPos[q], k, n)
				row := out[q*k : (q+1)*k]
				for j := range row {
					row[j] = start + j
				}
			}
		})
		return out, nil
	}
	// Windowed exact-within-window: rank the W candidates by distance. The
	// query point itself is excluded, matching the paper's Fig. 10(b)
	// worked example (W = k+1 around P2 selects P1, P4 and P0, not P2) —
	// spending a neighbor slot on the zero-distance self would waste it.
	parallel.ForChunks(len(queryPos), func(lo, hi int) {
		idx := make([]int, k)
		d := make([]float64, k)
		for q := lo; q < hi; q++ {
			pos := queryPos[q]
			start := clampWindow(pos, win, n)
			topKWindow(points[pos], points, start, start+win, pos, idx, d)
			copy(out[q*k:(q+1)*k], idx)
		}
	})
	return out, nil
}

// clampWindow returns the start of a window of the given size centered on pos
// and fully contained in [0, n).
func clampWindow(pos, size, n int) int {
	start := pos - size/2
	if start < 0 {
		start = 0
	}
	if start+size > n {
		start = n - size
	}
	return start
}

// topKWindow fills idx/d with the k nearest points to p among positions
// [lo, hi) of points (skipping position self), ascending by distance.
func topKWindow(p geom.Point3, points []geom.Point3, lo, hi, self int, idx []int, d []float64) {
	k := len(idx)
	const inf = 1e300
	for i := range d {
		d[i] = inf
		idx[i] = -1
	}
	for s := lo; s < hi; s++ {
		if s == self {
			continue
		}
		dist := p.DistSq(points[s])
		if dist >= d[k-1] {
			continue
		}
		j := k - 1
		for j > 0 && d[j-1] > dist {
			d[j] = d[j-1]
			idx[j] = idx[j-1]
			j--
		}
		d[j] = dist
		idx[j] = s
	}
}

// SearchAll finds k neighbors for every point of the structurized cloud (the
// DGCNN case, where every point is a query).
func (w WindowSearcher) SearchAll(points []geom.Point3, k int) ([]int, error) {
	pos := make([]int, len(points))
	for i := range pos {
		pos[i] = i
	}
	return w.SearchPositions(points, pos, k)
}

// StructurizedSearcher adapts WindowSearcher to the neighbor.Searcher
// interface for query sets that are a *subset of the candidate points in
// structurized order*. It locates each query's position by exact coordinate
// match against the candidate order — O(1) when QueryPositions is provided,
// otherwise via a prepass map. It exists so the approximate searcher can be
// dropped into harnesses written against neighbor.Searcher.
type StructurizedSearcher struct {
	Window WindowSearcher
	// QueryPositions, when non-nil, gives the structurized position of each
	// query and skips coordinate matching.
	QueryPositions []int
}

// Name implements neighbor.Searcher.
func (s StructurizedSearcher) Name() string { return "morton-window" }

// Search implements neighbor.Searcher.
func (s StructurizedSearcher) Search(points, queries []geom.Point3, k int) ([]int, error) {
	pos := s.QueryPositions
	if pos == nil {
		index := make(map[geom.Point3]int, len(points))
		for i := len(points) - 1; i >= 0; i-- {
			index[points[i]] = i // earliest occurrence wins
		}
		pos = make([]int, len(queries))
		for i, q := range queries {
			p, ok := index[q]
			if !ok {
				return nil, fmt.Errorf("%w: query %d not among candidate points", ErrNotStructurized, i)
			}
			pos[i] = p
		}
	} else if len(pos) != len(queries) {
		return nil, fmt.Errorf("core: %d query positions for %d queries", len(pos), len(queries))
	}
	return s.Window.SearchPositions(points, pos, k)
}
