package core

import (
	"testing"

	"repro/internal/geom"
)

func TestStreamerMatchesOneShot(t *testing.T) {
	frame := geom.GenerateScene(geom.SceneOptions{N: 400, Seed: 8})
	bounds := frame.Bounds()
	st, err := NewStreamer(bounds, 0)
	if err != nil {
		t.Fatal(err)
	}
	// One-shot structurize with the same reference bounds.
	ref, err := Structurize(frame, StructurizeOptions{Bounds: &bounds})
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := st.Structurize(frame.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Len() != ref.Len() {
		t.Fatal("length mismatch")
	}
	for j := range ref.Perm {
		if ref.Perm[j] != streamed.Perm[j] {
			t.Fatalf("permutation differs at %d", j)
		}
		if ref.Codes[j] != streamed.Codes[j] {
			t.Fatalf("codes differ at %d", j)
		}
	}
}

func TestStreamerCrossFrameCodesComparable(t *testing.T) {
	// Two frames of the same scene must voxelize identically for shared
	// coordinates — the property per-frame bounds would break.
	bounds := geom.AABB{Min: geom.Point3{}, Max: geom.Point3{X: 6, Y: 5, Z: 3}}
	st, err := NewStreamer(bounds, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := geom.Point3{X: 1.5, Y: 2.5, Z: 0.5}
	frameA := geom.NewCloud(0, 0)
	frameA.Points = []geom.Point3{p, {X: 5, Y: 4, Z: 2}}
	frameB := geom.NewCloud(0, 0)
	frameB.Points = []geom.Point3{{X: 0.1, Y: 0.1, Z: 0.1}, p}
	sa, err := st.Structurize(frameA)
	if err != nil {
		t.Fatal(err)
	}
	codeA := sa.Codes[positionOf(t, sa, p)]
	sb, err := st.Structurize(frameB)
	if err != nil {
		t.Fatal(err)
	}
	codeB := sb.Codes[positionOf(t, sb, p)]
	if codeA != codeB {
		t.Fatalf("same point coded differently across frames: %d vs %d", codeA, codeB)
	}
}

func positionOf(t *testing.T, s *Structurized, p geom.Point3) int {
	t.Helper()
	for j, q := range s.Cloud.Points {
		if q == p {
			return j
		}
	}
	t.Fatalf("point %v not found", p)
	return -1
}

func TestStreamerOutOfBoundsClamps(t *testing.T) {
	bounds := geom.AABB{Min: geom.Point3{}, Max: geom.Point3{X: 1, Y: 1, Z: 1}}
	st, err := NewStreamer(bounds, 0)
	if err != nil {
		t.Fatal(err)
	}
	frame := geom.NewCloud(0, 0)
	frame.Points = []geom.Point3{{X: 0.5, Y: 0.5, Z: 0.5}, {X: 99, Y: 99, Z: 99}}
	s, err := st.Structurize(frame)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatal("straggler dropped instead of clamped")
	}
}

func TestStreamerRejectsInvalid(t *testing.T) {
	if _, err := NewStreamer(geom.EmptyAABB(), 0); err == nil {
		t.Fatal("empty bounds: want error")
	}
	bounds := geom.AABB{Max: geom.Point3{X: 1, Y: 1, Z: 1}}
	st, err := NewStreamer(bounds, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Structurize(geom.NewCloud(0, 0)); err != nil {
		// empty frame must error
	} else {
		t.Fatal("empty frame: want error")
	}
}

func TestStreamerSteadyStateAllocations(t *testing.T) {
	bounds := geom.AABB{Min: geom.Point3{}, Max: geom.Point3{X: 6, Y: 5, Z: 3}}
	st, err := NewStreamer(bounds, 0)
	if err != nil {
		t.Fatal(err)
	}
	frame := geom.GenerateScene(geom.SceneOptions{N: 2000, Seed: 2})
	// Warm up buffers.
	if _, err := st.Structurize(frame); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := st.Structurize(frame); err != nil {
			t.Fatal(err)
		}
	})
	// The permutation + Structurized view + sorted-codes copy are returned
	// to the caller and necessarily allocate; the encode buffer must not.
	// Radix sort allocates its perm/buf pair per call. Budget generously
	// but catch O(N)-per-field regressions (≈10 allocations today).
	if allocs > 40 {
		t.Fatalf("steady-state allocations = %v, want ≤ 40", allocs)
	}
}
