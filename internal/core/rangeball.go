package core

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/morton"
	"repro/internal/neighbor"
	"repro/internal/parallel"
)

// RangeBall is the *exact* Morton-accelerated ball query: the approach of
// the grid-based prior works the paper positions itself against (§3.2 —
// cuNSearch, FRNN, fixed-radius GPU search). For each query it walks only
// the Z-curve runs intersecting the ball's voxel bounding box (BigMin range
// search over the sorted codes) and distance-filters the candidates.
//
// Contrast with WindowSearcher: RangeBall returns exactly the SOTA ball
// query's results at O(runs·log N + candidates) per query, while the window
// searcher returns an approximation at a fixed O(W). Having both makes the
// paper's accuracy/latency argument testable in one codebase.
type RangeBall struct {
	// R is the ball radius.
	R float64
}

// Name identifies the algorithm in reports.
func (RangeBall) Name() string { return "ball-morton-range" }

// SearchStructurized finds up to k in-ball neighbors for each query position
// of the structurized cloud, padding like the SOTA ball query (repeat first
// hit; nearest candidate when the ball is empty). Results are positions into
// s.Cloud.Points.
func (rb RangeBall) SearchStructurized(s *Structurized, queryPos []int, k int) ([]int, error) {
	n := s.Len()
	if n == 0 {
		return nil, neighbor.ErrNoPoints
	}
	if k < 1 {
		return nil, fmt.Errorf("%w: k=%d", neighbor.ErrBadK, k)
	}
	if rb.R <= 0 || math.IsNaN(rb.R) {
		return nil, fmt.Errorf("core: range ball needs positive radius, got %v", rb.R)
	}
	enc := s.Encoder
	maxVoxel := uint32(1)<<uint(enc.BitsPerAxis) - 1
	pts := s.Cloud.Points
	r2 := rb.R * rb.R
	out := make([]int, len(queryPos)*k)
	parallel.ForChunks(len(queryPos), func(lo, hi int) {
		found := make([]int, 0, k)
		for qi := lo; qi < hi; qi++ {
			pos := queryPos[qi]
			q := pts[pos]
			zmin := enc.Code(geom.Point3{X: q.X - rb.R, Y: q.Y - rb.R, Z: q.Z - rb.R})
			zmax := enc.Code(geom.Point3{X: q.X + rb.R, Y: q.Y + rb.R, Z: q.Z + rb.R})
			_ = maxVoxel
			found = found[:0]
			nearest, nearestD := -1, math.Inf(1)
			morton.RangeQuery(s.Codes, zmin, zmax, func(j int) bool {
				d := q.DistSq(pts[j])
				if d < nearestD {
					nearest, nearestD = j, d
				}
				if d <= r2 {
					found = append(found, j)
				}
				return len(found) < k
			})
			if len(found) == 0 {
				if nearest < 0 {
					// The box held no candidates at all; fall back to the
					// query's own position (always a valid index).
					nearest = pos
				}
				found = append(found, nearest)
			}
			row := out[qi*k : (qi+1)*k]
			copied := copy(row, found)
			for i := copied; i < k; i++ {
				row[i] = found[0]
			}
		}
	})
	return out, nil
}
