package core

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/neighbor"
)

func TestWindowNormalsAgreeWithExact(t *testing.T) {
	// The approximate-neighbor normal estimator must agree with the exact
	// one on a smooth surface — the normals analogue of the paper's claim
	// that false-but-nearby neighbors carry almost the same information.
	cloud := geom.GenerateShape(geom.ShapeSphere, geom.ShapeOptions{N: 1500, Seed: 9})
	s, err := Structurize(cloud, StructurizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const k = 10
	exact, err := neighbor.EstimateNormals(s.Cloud.Points, k)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := EstimateNormalsWindow(s, k, 4*k)
	if err != nil {
		t.Fatal(err)
	}
	var sumAbsCos float64
	for i := range exact {
		sumAbsCos += math.Abs(exact[i].Dot(approx[i]))
	}
	mean := sumAbsCos / float64(len(exact))
	if mean < 0.95 {
		t.Fatalf("window normals agree |cos| = %.4f with exact, want ≥ 0.95", mean)
	}
}

func TestWindowNormalsErrors(t *testing.T) {
	cloud := geom.GenerateShape(geom.ShapeSphere, geom.ShapeOptions{N: 20, Seed: 1})
	s, err := Structurize(cloud, StructurizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EstimateNormalsWindow(s, 0, 8); err == nil {
		t.Fatal("k=0: want error")
	}
}
