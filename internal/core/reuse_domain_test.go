package core

import (
	"strings"
	"testing"
)

// TestForLayerInDomains covers the domain-aware reuse path PointNet++ uses:
// each layer's indexes live in their own domain, so reuse must project
// through the supplied adapt callback rather than returning the raw cache.
func TestForLayerInDomains(t *testing.T) {
	c := NewReuseCache(ReusePolicy{Distance: 1})
	computes := 0
	compute := func(res []int) func() ([]int, error) {
		return func() ([]int, error) { computes++; return res, nil }
	}

	// Layer 0 computes in domain 0.
	r0, ran, err := c.ForLayerIn(0, 2, 0, nil, compute([]int{1, 2, 3, 4}))
	if err != nil || !ran || computes != 1 {
		t.Fatalf("layer 0: ran=%v computes=%d err=%v", ran, computes, err)
	}

	// Layer 1, different domain, with an adapt: projected reuse, no search.
	adapted := []int{9, 9}
	r1, ran, err := c.ForLayerIn(1, 2, 1, func(prev ReuseEntry) ([]int, error) {
		if prev.Domain != 0 || prev.K != 2 || len(prev.Nbr) != len(r0) {
			t.Fatalf("adapt saw entry %+v", prev)
		}
		return adapted, nil
	}, compute(nil))
	if err != nil || ran || computes != 1 {
		t.Fatalf("layer 1: ran=%v computes=%d err=%v", ran, computes, err)
	}
	if &r1[0] != &adapted[0] {
		t.Fatal("layer 1 did not return the adapted result")
	}

	// Layer 1 again in the same domain: straight cache hit of the projection.
	r1b, ran, err := c.ForLayerIn(1, 2, 1, nil, compute(nil))
	if err != nil || ran || &r1b[0] != &adapted[0] {
		t.Fatalf("repeat reuse: ran=%v err=%v", ran, err)
	}

	// Same-domain reuse with a mismatched k is a hard error, not silent reuse.
	if _, _, err := c.ForLayerIn(1, 3, 1, nil, compute(nil)); err == nil {
		t.Fatal("k mismatch: want error")
	}

	// Domain mismatch with no adapt falls back to a real search.
	_, ran, err = c.ForLayerIn(1, 2, 2, nil, compute([]int{5, 6}))
	if err != nil || !ran || computes != 2 {
		t.Fatalf("no-adapt fallback: ran=%v computes=%d err=%v", ran, computes, err)
	}

	// Reset forgets the cache: a reuse layer with nothing cached computes.
	c.Reset()
	_, ran, err = c.ForLayerIn(1, 2, 1, nil, compute([]int{7, 8}))
	if err != nil || !ran || computes != 3 {
		t.Fatalf("post-reset: ran=%v computes=%d err=%v", ran, computes, err)
	}
}

func TestProjectNeighbors(t *testing.T) {
	// Grandparent level had 8 points; parent kept {0, 2, 5, 7} (ascending,
	// the Morton-sampling invariant). The cached entry holds, per parent
	// point, its k=3 neighbors as grandparent indexes.
	posInParent := []int{0, 2, 5, 7}
	prev := ReuseEntry{
		K:      3,
		Domain: 0,
		Nbr: []int{
			0, 2, 1, // parent 0: grandparent neighbors 0,2 survive → 0,1
			2, 3, 5, // parent 1: 2,5 survive → 1,2
			5, 4, 6, // parent 2: only 5 survives → 2
			7, 0, 2, // parent 3: all survive → 3,0,1
		},
	}
	sel := []int{1, 3} // current queries, as parent indexes
	got, err := ProjectNeighbors(prev, sel, posInParent, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{
		1, 2, // query 0 = parent 1
		3, 0, // query 1 = parent 3 (truncated to k=2)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("projection = %v, want %v", got, want)
		}
	}

	// A query whose neighbors were all dropped pads with itself.
	prev2 := ReuseEntry{K: 1, Nbr: []int{4, 4, 4, 4}}
	got, err = ProjectNeighbors(prev2, []int{2}, posInParent, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 || got[1] != 2 {
		t.Fatalf("self padding = %v, want [2 2]", got)
	}

	// Shape validation.
	if _, err := ProjectNeighbors(ReuseEntry{K: 3, Nbr: []int{1}}, sel, posInParent, 2); err == nil ||
		!strings.Contains(err.Error(), "cached neighbors") {
		t.Fatalf("bad shape: err=%v", err)
	}
	if _, err := ProjectNeighbors(prev, []int{99}, posInParent, 2); err == nil {
		t.Fatal("out-of-range query: want error")
	}
}
