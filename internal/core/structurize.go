// Package core implements the EdgePC contribution (§4–§5 of the paper):
// Morton-code structurization of raw point clouds and the two approximation
// techniques it enables —
//
//   - index-based uniform sampling (down- and up-sampling) that "skips" the
//     O(nN) farthest-point-sampling stage (§5.1), and
//   - index-window neighbor search that "skips" the O(N²) ball-query / k-NN
//     stage (§5.2), optionally reusing neighbor indexes across consecutive
//     network modules (§5.2.3).
//
// The substrates it builds on are packages morton (encoding/sorting), geom
// (cloud types), sample and neighbor (the SOTA baselines being approximated).
package core

import (
	"errors"
	"fmt"

	"repro/internal/geom"
	"repro/internal/morton"
)

// ErrNotStructurized reports use of an index-based operation on data that has
// not been Morton-ordered.
var ErrNotStructurized = errors.New("core: operation requires structurized cloud")

// StructurizeOptions configures the Morton structurization pass.
type StructurizeOptions struct {
	// TotalBits is the Morton code width a (default: morton.DefaultTotalBits
	// = 32, the paper's pick). Larger widths reduce false neighbors at the
	// cost of Na/8 bytes of code storage per frame.
	TotalBits int
	// GridSize overrides the derived grid size r (> 0 to take effect). When
	// zero, r = D / 2^⌊a/3⌋ with D the bounding-box max dimension.
	GridSize float64
	// Bounds overrides the cloud's own bounding box — useful for streams of
	// frames that share a fixed reference volume.
	Bounds *geom.AABB
	// UseStdSort selects the comparison sort instead of the default radix
	// sort (exposed for the sort ablation).
	UseStdSort bool
}

// Structurized is a point cloud re-ordered by Morton code together with the
// bookkeeping needed by the index-based operations: the permutation back to
// original indexes and the sorted codes.
type Structurized struct {
	// Cloud holds the points in Morton order. Position j in this cloud is
	// the point with the j-th smallest Morton code.
	Cloud *geom.Cloud
	// Perm maps structurized position → original index (the paper's
	// I' = [i_0, …, i_{N-1}]).
	Perm []int
	// Codes are the Morton codes in sorted (structurized) order.
	Codes []uint64
	// Encoder is the voxelizer used, retained so later pipeline stages can
	// reuse the codes "without any extra overhead" (§5.2.3).
	Encoder *morton.Encoder
}

// Len returns the number of points.
func (s *Structurized) Len() int { return s.Cloud.Len() }

// OriginalIndexes maps a slice of structurized positions to original cloud
// indexes.
func (s *Structurized) OriginalIndexes(positions []int) []int {
	out := make([]int, len(positions))
	for i, p := range positions {
		out[i] = s.Perm[p]
	}
	return out
}

// Runs partitions the structurized order into contiguous buckets of equal
// Morton-code prefixes, aiming for roughly target buckets. It descends the
// prefix width (octree level) in 3-bit steps until the number of prefix runs
// reaches target, then splits any run longer than ~2·N/target so a few huge
// voxels cannot defeat bucket-level pruning. The result is bucket offsets
// 0 = off[0] < … < off[M] = N, directly usable as sample.BucketFPS.Buckets —
// prefix-aligned buckets have tight AABBs, which is what makes the
// distance-bound pruning effective.
func (s *Structurized) Runs(target int) []int {
	N := s.Len()
	if target < 1 {
		target = 1
	}
	if target > N {
		target = N
	}
	shift := s.Encoder.TotalBits()
	for shift > 0 {
		shift -= 3
		if countPrefixRuns(s.Codes, shift) >= target {
			break
		}
	}
	maxLen := 2*N/target + 1
	off := []int{0}
	runStart := 0
	for i := 1; i <= N; i++ {
		if i < N && s.Codes[i]>>shift == s.Codes[runStart]>>shift {
			continue
		}
		// Run [runStart, i): emit, splitting over-long runs evenly.
		if run := i - runStart; run > maxLen {
			pieces := (run + maxLen - 1) / maxLen
			for p := 1; p < pieces; p++ {
				off = append(off, runStart+p*run/pieces)
			}
		}
		off = append(off, i)
		runStart = i
	}
	return off
}

func countPrefixRuns(codes []uint64, shift int) int {
	runs := 0
	for i := range codes {
		if i == 0 || codes[i]>>shift != codes[i-1]>>shift {
			runs++
		}
	}
	return runs
}

// MemoryOverheadBytes returns the extra storage the structurization carries:
// the Morton codes at the encoder's width (§5.1.3's Na/8 accounting). The
// permutation is not counted because the SOTA pipeline also materializes
// sample index arrays of the same size.
func (s *Structurized) MemoryOverheadBytes() int {
	return s.Encoder.MemoryBytes(s.Len())
}

// Structurize re-orders a copy of the cloud by Morton code. The input cloud
// is not modified. Complexity: O(N) fully parallel encoding + O(N log N)
// sorting (Algorithm 1 without the final sampling step).
func Structurize(c *geom.Cloud, opts StructurizeOptions) (*Structurized, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if c.Len() == 0 {
		return nil, fmt.Errorf("core: cannot structurize empty cloud")
	}
	enc, err := newEncoder(c, opts)
	if err != nil {
		return nil, err
	}
	codes := enc.EncodeCloud(c, nil)
	var perm []int
	if opts.UseStdSort {
		perm = morton.StdOrder(codes)
	} else {
		perm = morton.Order(codes)
	}
	out := c.Clone()
	if err := out.Permute(perm); err != nil {
		return nil, err
	}
	return &Structurized{
		Cloud:   out,
		Perm:    perm,
		Codes:   morton.SortedCodes(codes, perm),
		Encoder: enc,
	}, nil
}

func newEncoder(c *geom.Cloud, opts StructurizeOptions) (*morton.Encoder, error) {
	bits := opts.TotalBits
	if bits == 0 {
		bits = morton.DefaultTotalBits
	}
	bounds := c.Bounds()
	if opts.Bounds != nil {
		bounds = *opts.Bounds
	}
	if opts.GridSize > 0 {
		return morton.NewEncoderWithGrid(bounds.Min, opts.GridSize, bits/3)
	}
	return morton.NewEncoder(bounds, bits)
}
