package core

import (
	"fmt"
	"sort"
)

// Neighbor-index reuse (§5.2.3): in DGCNN, all EdgeConv modules operate on
// the same point set, and "during the propagation of the CNN model, the
// neighborhood of points would not vary much across consecutive layers". With
// reuse distance 1, layer 2 reuses layer 1's neighbor indexes, layer 3
// recomputes (with the SOTA searcher over feature-space distances), layer 4
// reuses layer 3's, and so on — halving the neighbor-search work at the cost
// of caching one n×k index array (the paper's ≤160 KB per batch).

// ReusePolicy decides, per layer, whether neighbor indexes are recomputed or
// reused from the most recent computing layer.
type ReusePolicy struct {
	// Distance is the number of consecutive layers served by one computed
	// result minus one: 0 disables reuse (every layer computes); 1 is the
	// paper's setting (compute, reuse, compute, reuse, …); 2 computes every
	// third layer.
	Distance int
}

// Computes reports whether the given layer (0-based) must run its own
// neighbor search under this policy. Layer 0 always computes.
func (r ReusePolicy) Computes(layer int) bool {
	if r.Distance <= 0 || layer <= 0 {
		return true
	}
	return layer%(r.Distance+1) == 0
}

// ComputedLayers returns how many of nLayers run a real neighbor search.
func (r ReusePolicy) ComputedLayers(nLayers int) int {
	count := 0
	for l := 0; l < nLayers; l++ {
		if r.Computes(l) {
			count++
		}
	}
	return count
}

// ReuseBufferBytes returns the memory held to carry neighbor indexes between
// layers: one int32 per (query, neighbor) entry when reuse is enabled
// (§5.2.3 accounts up to 160 KB per batch for the reused search data).
func (r ReusePolicy) ReuseBufferBytes(queries, k int) int {
	if r.Distance <= 0 {
		return 0
	}
	return queries * k * 4
}

// ReuseEntry is a cached neighbor-search result: the flat query-major index
// array, the neighbors per query it was computed with, and the index domain
// its values refer to. For DGCNN every EdgeConv layer shares one point set,
// so the domain never changes; for PointNet++ each SA module indexes its own
// (down-sampled) parent level, so reusing across layers requires projecting
// the cached indexes into the new domain first.
type ReuseEntry struct {
	Nbr    []int
	K      int
	Domain int
}

// ReuseCache carries neighbor results across layers under a policy.
// The zero value is not ready; use NewReuseCache.
type ReuseCache struct {
	policy ReusePolicy
	last   ReuseEntry
	valid  bool
}

// NewReuseCache creates a cache applying the given policy.
func NewReuseCache(policy ReusePolicy) *ReuseCache {
	return &ReuseCache{policy: policy}
}

// Reset forgets the cached result so the cache can serve a new frame.
func (c *ReuseCache) Reset() {
	c.last = ReuseEntry{}
	c.valid = false
}

// ForLayer returns the neighbor indexes for the given layer: if the policy
// says this layer computes, compute() is invoked and its result cached;
// otherwise the cached result is returned. It reports whether a real search
// ran. All layers share index domain 0 (the DGCNN shape, where every
// EdgeConv sees the same point set).
func (c *ReuseCache) ForLayer(layer, k int, compute func() ([]int, error)) ([]int, bool, error) {
	return c.ForLayerIn(layer, k, 0, nil, compute)
}

// ForLayerIn is the domain-aware form of ForLayer for hierarchical networks
// whose layers index different point sets (PointNet++ SA modules index their
// own parent level). domain identifies the point set the layer's indexes
// refer to. When the cached entry lives in a different domain, adapt — if
// non-nil — projects it into the current one and the projected result is
// cached in the new domain (so a reuse distance of 2 projects hop by hop);
// a nil adapt falls back to a real search. It reports whether a real search
// ran (false on any reuse, projected or not).
func (c *ReuseCache) ForLayerIn(layer, k, domain int, adapt func(ReuseEntry) ([]int, error), compute func() ([]int, error)) ([]int, bool, error) {
	if !c.policy.Computes(layer) && c.valid {
		if c.last.Domain == domain {
			if k != c.last.K {
				return nil, false, fmt.Errorf("core: reuse with k=%d but cached k=%d", k, c.last.K)
			}
			return c.last.Nbr, false, nil
		}
		if adapt != nil {
			res, err := adapt(c.last)
			if err != nil {
				return nil, false, fmt.Errorf("core: reuse projection: %w", err)
			}
			c.last = ReuseEntry{Nbr: res, K: k, Domain: domain}
			return res, false, nil
		}
		// No way to carry the cached result into this domain: search.
	}
	res, err := compute()
	if err != nil {
		return nil, true, err
	}
	c.last = ReuseEntry{Nbr: res, K: k, Domain: domain}
	c.valid = true
	return res, true, nil
}

// ProjectNeighbors carries a cached neighbor result one level down a
// sampling hierarchy (§5.2.3 generalized to PointNet++): prev holds, for
// every point of the current parent level, the neighbors that point had in
// the grandparent level (it was a query there). sel lists the current
// queries as parent-level indexes, and posInParent maps each parent-level
// index to its grandparent-level index (ascending — the Morton-sampling
// invariant). Cached neighbors that survived sampling are remapped into
// parent-level indexes; slots whose neighbor was dropped pad with the query
// itself, so every query keeps exactly k neighbors.
func ProjectNeighbors(prev ReuseEntry, sel, posInParent []int, k int) ([]int, error) {
	if prev.K <= 0 || len(prev.Nbr) != len(posInParent)*prev.K {
		return nil, fmt.Errorf("core: cached neighbors cover %d entries, parent level needs %d×%d", len(prev.Nbr), len(posInParent), prev.K)
	}
	out := make([]int, len(sel)*k)
	for q, s := range sel {
		if s < 0 || s >= len(posInParent) {
			return nil, fmt.Errorf("core: query %d selects parent index %d of %d", q, s, len(posInParent))
		}
		row := prev.Nbr[s*prev.K : (s+1)*prev.K]
		dst := out[q*k : (q+1)*k]
		cnt := 0
		for _, v := range row {
			if cnt == k {
				break
			}
			// posInParent is ascending, so the grandparent index v maps to at
			// most one surviving parent position.
			p := sort.SearchInts(posInParent, v)
			if p < len(posInParent) && posInParent[p] == v {
				dst[cnt] = p
				cnt++
			}
		}
		for ; cnt < k; cnt++ {
			dst[cnt] = s // self-neighbor padding
		}
	}
	return out, nil
}
