package core

import "fmt"

// Neighbor-index reuse (§5.2.3): in DGCNN, all EdgeConv modules operate on
// the same point set, and "during the propagation of the CNN model, the
// neighborhood of points would not vary much across consecutive layers". With
// reuse distance 1, layer 2 reuses layer 1's neighbor indexes, layer 3
// recomputes (with the SOTA searcher over feature-space distances), layer 4
// reuses layer 3's, and so on — halving the neighbor-search work at the cost
// of caching one n×k index array (the paper's ≤160 KB per batch).

// ReusePolicy decides, per layer, whether neighbor indexes are recomputed or
// reused from the most recent computing layer.
type ReusePolicy struct {
	// Distance is the number of consecutive layers served by one computed
	// result minus one: 0 disables reuse (every layer computes); 1 is the
	// paper's setting (compute, reuse, compute, reuse, …); 2 computes every
	// third layer.
	Distance int
}

// Computes reports whether the given layer (0-based) must run its own
// neighbor search under this policy. Layer 0 always computes.
func (r ReusePolicy) Computes(layer int) bool {
	if r.Distance <= 0 || layer <= 0 {
		return true
	}
	return layer%(r.Distance+1) == 0
}

// ComputedLayers returns how many of nLayers run a real neighbor search.
func (r ReusePolicy) ComputedLayers(nLayers int) int {
	count := 0
	for l := 0; l < nLayers; l++ {
		if r.Computes(l) {
			count++
		}
	}
	return count
}

// ReuseBufferBytes returns the memory held to carry neighbor indexes between
// layers: one int32 per (query, neighbor) entry when reuse is enabled
// (§5.2.3 accounts up to 160 KB per batch for the reused search data).
func (r ReusePolicy) ReuseBufferBytes(queries, k int) int {
	if r.Distance <= 0 {
		return 0
	}
	return queries * k * 4
}

// ReuseCache carries neighbor results across layers under a policy.
// The zero value is not ready; use NewReuseCache.
type ReuseCache struct {
	policy ReusePolicy
	last   []int
	lastK  int
}

// NewReuseCache creates a cache applying the given policy.
func NewReuseCache(policy ReusePolicy) *ReuseCache {
	return &ReuseCache{policy: policy}
}

// ForLayer returns the neighbor indexes for the given layer: if the policy
// says this layer computes, compute() is invoked and its result cached;
// otherwise the cached result is returned. It reports whether a real search
// ran.
func (c *ReuseCache) ForLayer(layer, k int, compute func() ([]int, error)) ([]int, bool, error) {
	if c.policy.Computes(layer) || c.last == nil {
		res, err := compute()
		if err != nil {
			return nil, true, err
		}
		c.last, c.lastK = res, k
		return res, true, nil
	}
	if k != c.lastK {
		return nil, false, fmt.Errorf("core: reuse with k=%d but cached k=%d", k, c.lastK)
	}
	return c.last, false, nil
}
