package core

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/neighbor"
)

// Host wall-clock comparison of the neighbor-search design space on one
// structurized frame: the EdgePC window approximation vs the two exact
// Morton searchers (BigMin scan, linear octree) vs brute force.

func benchStructurized(b *testing.B, n int) (*Structurized, []int) {
	b.Helper()
	cloud := geom.GenerateScene(geom.SceneOptions{N: n, Seed: 77})
	s, err := Structurize(cloud, StructurizeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	pos := make([]int, s.Len())
	for i := range pos {
		pos[i] = i
	}
	return s, pos
}

func BenchmarkSearchWindowPure(b *testing.B) {
	s, pos := benchStructurized(b, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (WindowSearcher{}).SearchPositions(s.Cloud.Points, pos, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchWindowW32(b *testing.B) {
	s, pos := benchStructurized(b, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (WindowSearcher{W: 32}).SearchPositions(s.Cloud.Points, pos, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchRangeBall(b *testing.B) {
	s, pos := benchStructurized(b, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (RangeBall{R: 0.3}).SearchStructurized(s, pos, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchOctreeBall(b *testing.B) {
	s, pos := benchStructurized(b, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (OctreeBall{R: 0.3}).SearchStructurized(s, pos, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchBruteBall(b *testing.B) {
	s, pos := benchStructurized(b, 4096)
	_ = pos
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (neighbor.BallQuery{R: 0.3}).Search(s.Cloud.Points, s.Cloud.Points, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNormalsWindow(b *testing.B) {
	s, _ := benchStructurized(b, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateNormalsWindow(s, 10, 40); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNormalsExact(b *testing.B) {
	s, _ := benchStructurized(b, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := neighbor.EstimateNormals(s.Cloud.Points, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamerStructurize(b *testing.B) {
	cloud := geom.GenerateScene(geom.SceneOptions{N: 8192, Seed: 5})
	st, err := NewStreamer(cloud.Bounds(), 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Structurize(cloud); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(cloud.Len() * 24))
}

func BenchmarkOneShotStructurize(b *testing.B) {
	cloud := geom.GenerateScene(geom.SceneOptions{N: 8192, Seed: 5})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Structurize(cloud, StructurizeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(cloud.Len() * 24))
}
