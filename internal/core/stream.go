package core

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/morton"
)

// Streamer structurizes a sequence of frames that share a reference volume —
// the paper's streaming settings (LiDAR at 10–30 Hz, AR/VR volumetric video),
// where per-frame bounding-box computation would make codes incomparable
// across frames and per-frame allocation would churn memory on a small
// device.
//
// The encoder is fixed at construction (reference bounds + code width); the
// code buffer and permutation scratch are reused across frames. Points
// outside the reference volume clamp to its boundary voxels, so occasional
// stragglers degrade gracefully instead of failing the frame.
type Streamer struct {
	enc   *morton.Encoder
	codes []uint64
}

// NewStreamer builds a streamer for frames inside bounds using totalBits
// (0 = the default 32-bit codes).
func NewStreamer(bounds geom.AABB, totalBits int) (*Streamer, error) {
	if !bounds.IsValid() {
		return nil, fmt.Errorf("core: streamer needs a valid reference bounding box")
	}
	if totalBits == 0 {
		totalBits = morton.DefaultTotalBits
	}
	enc, err := morton.NewEncoder(bounds, totalBits)
	if err != nil {
		return nil, err
	}
	return &Streamer{enc: enc}, nil
}

// Encoder exposes the shared encoder (e.g. for RangeBall queries against
// streamed frames).
func (st *Streamer) Encoder() *morton.Encoder { return st.enc }

// Structurize Morton-orders one frame in place (unlike the one-shot
// Structurize, which copies): the cloud's own storage is permuted, and the
// returned view shares it. Codes and permutation buffers are reused across
// calls, so the steady state allocates only the per-frame permutation the
// caller receives.
func (st *Streamer) Structurize(frame *geom.Cloud) (*Structurized, error) {
	if err := frame.Validate(); err != nil {
		return nil, err
	}
	if frame.Len() == 0 {
		return nil, fmt.Errorf("core: cannot structurize empty frame")
	}
	st.codes = st.enc.EncodeCloud(frame, st.codes)
	perm := morton.Order(st.codes)
	if err := frame.Permute(perm); err != nil {
		return nil, err
	}
	return &Structurized{
		Cloud:   frame,
		Perm:    perm,
		Codes:   morton.SortedCodes(st.codes, perm),
		Encoder: st.enc,
	}, nil
}
