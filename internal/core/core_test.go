package core

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/neighbor"
)

// fig8Cloud is the paper's 5-point worked example (Fig. 8 / Fig. 10).
func fig8Cloud() *geom.Cloud {
	c := geom.NewCloud(0, 0)
	c.Points = []geom.Point3{
		{X: 3, Y: 6, Z: 2}, // P0
		{X: 1, Y: 3, Z: 1}, // P1
		{X: 4, Y: 3, Z: 2}, // P2
		{X: 0, Y: 0, Z: 0}, // P3
		{X: 5, Y: 1, Z: 0}, // P4
	}
	return c
}

func TestPaperWorkedExampleFig8bMortonSampler(t *testing.T) {
	// Fig. 8(b): Morton codes {185,23,114,0,67} (r=1), sorted index array
	// {3,1,4,2,0}, uniform sampling picks P3, P4, P0 — "exactly the same
	// points" as FPS.
	sel, err := MortonSampler{Options: StructurizeOptions{GridSize: 1, TotalBits: 30}}.Sample(fig8Cloud(), 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 4, 0}
	for i := range want {
		if sel[i] != want[i] {
			t.Fatalf("Morton sample = %v, want %v", sel, want)
		}
	}
}

func TestPaperWorkedExampleGridSize4(t *testing.T) {
	// With r=4 the sorted indexes become {1,3,2,4,0} and the sampled points
	// are {1, 2, 0} — the sub-optimal case the paper warns about.
	sel, err := MortonSampler{Options: StructurizeOptions{GridSize: 4, TotalBits: 30}}.Sample(fig8Cloud(), 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 0}
	for i := range want {
		if sel[i] != want[i] {
			t.Fatalf("Morton sample (r=4) = %v, want %v", sel, want)
		}
	}
}

func TestPaperWorkedExampleFig10bWindow(t *testing.T) {
	// Fig. 10(b): on the structurized order {P3,P1,P4,P2,P0}, the W=k+1=4
	// window around P2 (position 3) selects P1, P4 and P0 as its 3
	// neighbors.
	s, err := Structurize(fig8Cloud(), StructurizeOptions{GridSize: 1, TotalBits: 30})
	if err != nil {
		t.Fatal(err)
	}
	// P2's structurized position.
	pos := -1
	for j, orig := range s.Perm {
		if orig == 2 {
			pos = j
		}
	}
	if pos != 3 {
		t.Fatalf("P2 at position %d, want 3", pos)
	}
	ws := WindowSearcher{W: 4}
	nbr, err := ws.SearchPositions(s.Cloud.Points, []int{pos}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Map back to original indexes.
	got := make([]int, 3)
	for i, p := range nbr {
		got[i] = s.Perm[p]
	}
	sort.Ints(got)
	want := []int{0, 1, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("window neighbors = %v, want %v", got, want)
		}
	}
}

func TestStructurizeInvariants(t *testing.T) {
	cloud := geom.GenerateShape(geom.ShapeBlob, geom.ShapeOptions{N: 500, DensitySkew: 0.7, Seed: 9})
	cloud.Labels = make([]int32, cloud.Len())
	for i := range cloud.Labels {
		cloud.Labels[i] = int32(i % 7)
	}
	s, err := Structurize(cloud, StructurizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != cloud.Len() {
		t.Fatalf("length changed: %d → %d", cloud.Len(), s.Len())
	}
	// Codes must be sorted.
	for j := 1; j < len(s.Codes); j++ {
		if s.Codes[j-1] > s.Codes[j] {
			t.Fatal("codes not sorted")
		}
	}
	// Perm must be a permutation, and carry points + labels consistently.
	seen := make([]bool, cloud.Len())
	for j, orig := range s.Perm {
		if seen[orig] {
			t.Fatal("perm not a permutation")
		}
		seen[orig] = true
		if s.Cloud.Points[j] != cloud.Points[orig] {
			t.Fatal("points not permuted consistently")
		}
		if s.Cloud.Labels[j] != cloud.Labels[orig] {
			t.Fatal("labels not permuted consistently")
		}
	}
	// Input untouched.
	if &cloud.Points[0] == &s.Cloud.Points[0] {
		t.Fatal("structurize aliased the input")
	}
	// Default 32-bit codes → 4 bytes per point overhead.
	if got := s.MemoryOverheadBytes(); got != cloud.Len()*4 {
		t.Fatalf("memory overhead = %d, want %d", got, cloud.Len()*4)
	}
}

func TestStructurizeStdSortMatchesRadix(t *testing.T) {
	cloud := geom.GenerateShape(geom.ShapeTorus, geom.ShapeOptions{N: 300, Seed: 2})
	a, err := Structurize(cloud, StructurizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Structurize(cloud, StructurizeOptions{UseStdSort: true})
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Perm {
		if a.Perm[j] != b.Perm[j] {
			t.Fatal("radix and std sorts disagree")
		}
	}
}

func TestStructurizeEmptyAndInvalid(t *testing.T) {
	if _, err := Structurize(geom.NewCloud(0, 0), StructurizeOptions{}); err == nil {
		t.Fatal("empty cloud: want error")
	}
	bad := geom.NewCloud(2, 1)
	bad.Feat = bad.Feat[:1]
	if _, err := Structurize(bad, StructurizeOptions{}); err == nil {
		t.Fatal("invalid cloud: want error")
	}
}

func TestSampleStructurizedMatchesSampler(t *testing.T) {
	cloud := geom.GenerateShape(geom.ShapeHelix, geom.ShapeOptions{N: 200, Seed: 5})
	s, err := Structurize(cloud, StructurizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := SampleStructurized(s, 20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MortonSampler{}.Sample(cloud, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("paths disagree: %v vs %v", a, b)
		}
	}
}

func TestMortonSamplerErrors(t *testing.T) {
	cloud := fig8Cloud()
	if _, err := (MortonSampler{}).Sample(cloud, 0); err == nil {
		t.Fatal("n=0: want error")
	}
	if _, err := (MortonSampler{}).Sample(cloud, 9); err == nil {
		t.Fatal("n>N: want error")
	}
}

func TestWindowSearcherPureIndexPick(t *testing.T) {
	pts := make([]geom.Point3, 10)
	for i := range pts {
		pts[i] = geom.Point3{X: float64(i)}
	}
	ws := WindowSearcher{} // W = k
	nbr, err := ws.SearchPositions(pts, []int{5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Centered window: positions {4,5,6}.
	want := []int{4, 5, 6}
	for i := range want {
		if nbr[i] != want[i] {
			t.Fatalf("index pick = %v, want %v", nbr, want)
		}
	}
	// Boundary clamping.
	nbr, err = ws.SearchPositions(pts, []int{0, 9}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if nbr[0] != 0 || nbr[1] != 1 || nbr[2] != 2 {
		t.Fatalf("left clamp = %v", nbr[:3])
	}
	if nbr[3] != 7 || nbr[4] != 8 || nbr[5] != 9 {
		t.Fatalf("right clamp = %v", nbr[3:])
	}
}

func TestWindowSearcherExactWithinWindow(t *testing.T) {
	// W > k ranks by true distance inside the window.
	pts := []geom.Point3{{X: 0}, {X: 10}, {X: 1}, {X: 11}, {X: 2}}
	ws := WindowSearcher{W: 5}
	nbr, err := ws.SearchPositions(pts, []int{0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(nbr)
	// Self (position 0) is excluded; the three closest others are x=1, 2, 10.
	want := []int{1, 2, 4}
	for i := range want {
		if nbr[i] != want[i] {
			t.Fatalf("windowed = %v, want %v", nbr, want)
		}
	}
}

func TestWindowFullWidthMatchesExactKNN(t *testing.T) {
	// Property: with W = N the window searcher is exact k-NN → FNR = 0.
	cloud := geom.GenerateShape(geom.ShapeBlob, geom.ShapeOptions{N: 150, Seed: 6})
	s, err := Structurize(cloud, StructurizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	k := 4
	pos := make([]int, s.Len())
	for i := range pos {
		pos[i] = i
	}
	approx, err := WindowSearcher{W: s.Len()}.SearchPositions(s.Cloud.Points, pos, k)
	if err != nil {
		t.Fatal(err)
	}
	exact := exactKNNNoSelf(t, s.Cloud.Points, k)
	// Compare by distance multiset (ties may resolve differently).
	for q := 0; q < s.Len(); q++ {
		ga := sortedDists(s.Cloud.Points, q, approx[q*k:(q+1)*k])
		ge := sortedDists(s.Cloud.Points, q, exact[q*k:(q+1)*k])
		for j := range ga {
			if math.Abs(ga[j]-ge[j]) > 1e-9 {
				t.Fatalf("query %d: %v vs %v", q, ga, ge)
			}
		}
	}
}

// exactKNNNoSelf returns each point's k nearest *other* points (the windowed
// searcher excludes the query itself, so its reference must too).
func exactKNNNoSelf(t *testing.T, pts []geom.Point3, k int) []int {
	t.Helper()
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	out, err := neighbor.KNNExcludingSelf(pts, idx, k)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func sortedDists(pts []geom.Point3, q int, idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, n := range idx {
		out[i] = pts[q].DistSq(pts[n])
	}
	sort.Float64s(out)
	return out
}

func TestWindowSearcherErrors(t *testing.T) {
	pts := fig8Cloud().Points
	ws := WindowSearcher{}
	if _, err := ws.SearchPositions(nil, []int{0}, 1); err == nil {
		t.Fatal("empty points: want error")
	}
	if _, err := ws.SearchPositions(pts, []int{0}, 0); err == nil {
		t.Fatal("k=0: want error")
	}
	if _, err := ws.SearchPositions(pts, []int{0}, 9); err == nil {
		t.Fatal("k>N: want error")
	}
}

func TestWindowFNRDecreasesWithW(t *testing.T) {
	// The Fig. 15a trend: FNR is non-increasing as the window grows.
	cloud := geom.GenerateShape(geom.ShapeBlob, geom.ShapeOptions{N: 400, DensitySkew: 0.6, Seed: 8})
	s, err := Structurize(cloud, StructurizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	k := 6
	pos := make([]int, s.Len())
	for i := range pos {
		pos[i] = i
	}
	exact := exactKNNNoSelf(t, s.Cloud.Points, k)
	prev := 1.1
	for _, w := range []int{2 * k, 4 * k, 16 * k, s.Len()} {
		approx, err := WindowSearcher{W: w}.SearchPositions(s.Cloud.Points, pos, k)
		if err != nil {
			t.Fatal(err)
		}
		fnr, err := neighbor.FalseNeighborRatio(approx, exact, k)
		if err != nil {
			t.Fatal(err)
		}
		if fnr > prev+0.02 { // small tolerance: ties can flip
			t.Fatalf("FNR rose from %v to %v at W=%d", prev, fnr, w)
		}
		prev = fnr
	}
	if prev > 1e-9 {
		t.Fatalf("FNR at W=N is %v, want 0", prev)
	}
}

func TestStructurizedSearcherMatchesWindow(t *testing.T) {
	cloud := geom.GenerateShape(geom.ShapeTorus, geom.ShapeOptions{N: 100, Seed: 12})
	s, err := Structurize(cloud, StructurizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	queries := s.Cloud.Points[10:20]
	ss := StructurizedSearcher{Window: WindowSearcher{W: 8}}
	got, err := ss.Search(s.Cloud.Points, queries, 4)
	if err != nil {
		t.Fatal(err)
	}
	pos := []int{10, 11, 12, 13, 14, 15, 16, 17, 18, 19}
	want, err := WindowSearcher{W: 8}.SearchPositions(s.Cloud.Points, pos, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("adapter disagrees at %d", i)
		}
	}
	// Unknown query point errors.
	if _, err := ss.Search(s.Cloud.Points, []geom.Point3{{X: 1e9}}, 2); err == nil {
		t.Fatal("foreign query: want error")
	}
}

func TestMortonInterpPlan(t *testing.T) {
	cloud := geom.GenerateShape(geom.ShapeBlob, geom.ShapeOptions{N: 256, Seed: 3})
	s, err := Structurize(cloud, StructurizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	samplePos := SamplePositions(s.Len(), 32)
	plan, err := MortonInterp{}.PlanStructurized(s.Cloud.Points, samplePos)
	if err != nil {
		t.Fatal(err)
	}
	if plan.K != 3 || plan.Targets() != s.Len() {
		t.Fatalf("plan shape K=%d targets=%d", plan.K, plan.Targets())
	}
	for ti := 0; ti < plan.Targets(); ti++ {
		var sum float64
		for j := 0; j < plan.K; j++ {
			w := plan.Weights[ti*plan.K+j]
			if w < 0 {
				t.Fatalf("negative weight")
			}
			sum += w
			if r := plan.Indexes[ti*plan.K+j]; r < 0 || r >= len(samplePos) {
				t.Fatalf("sample rank %d out of range", r)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("weights sum %v", sum)
		}
	}
	// A sampled point interpolates (almost) purely from itself.
	ti := samplePos[5]
	found := false
	for j := 0; j < plan.K; j++ {
		if plan.Indexes[ti*plan.K+j] == 5 && plan.Weights[ti*plan.K+j] > 0.99 {
			found = true
		}
	}
	if !found {
		t.Fatal("sampled point does not dominate its own interpolation")
	}
}

func TestMortonInterpErrors(t *testing.T) {
	pts := fig8Cloud().Points
	if _, err := (MortonInterp{}).PlanStructurized(pts, nil); err == nil {
		t.Fatal("no samples: want error")
	}
	if _, err := (MortonInterp{}).PlanStructurized(pts, []int{3, 1}); err == nil {
		t.Fatal("unsorted positions: want error")
	}
}

func TestReusePolicy(t *testing.T) {
	cases := []struct {
		dist  int
		wants []bool // computes for layers 0..5
	}{
		{0, []bool{true, true, true, true, true, true}},
		{1, []bool{true, false, true, false, true, false}},
		{2, []bool{true, false, false, true, false, false}},
	}
	for _, c := range cases {
		p := ReusePolicy{Distance: c.dist}
		for l, want := range c.wants {
			if got := p.Computes(l); got != want {
				t.Fatalf("dist=%d layer=%d: Computes=%v, want %v", c.dist, l, got, want)
			}
		}
	}
	if got := (ReusePolicy{Distance: 1}).ComputedLayers(4); got != 2 {
		t.Fatalf("ComputedLayers = %d, want 2", got)
	}
	if b := (ReusePolicy{Distance: 1}).ReuseBufferBytes(1024, 8); b != 1024*8*4 {
		t.Fatalf("ReuseBufferBytes = %d", b)
	}
	if b := (ReusePolicy{}).ReuseBufferBytes(1024, 8); b != 0 {
		t.Fatalf("no-reuse buffer = %d, want 0", b)
	}
}

func TestReuseCache(t *testing.T) {
	c := NewReuseCache(ReusePolicy{Distance: 1})
	calls := 0
	compute := func() ([]int, error) { calls++; return []int{1, 2, 3}, nil }
	r0, computed, err := c.ForLayer(0, 3, compute)
	if err != nil || !computed || calls != 1 {
		t.Fatalf("layer 0: computed=%v calls=%d err=%v", computed, calls, err)
	}
	r1, computed, err := c.ForLayer(1, 3, compute)
	if err != nil || computed || calls != 1 {
		t.Fatalf("layer 1 should reuse: computed=%v calls=%d err=%v", computed, calls, err)
	}
	if &r0[0] != &r1[0] {
		t.Fatal("reuse returned a different slice")
	}
	_, computed, _ = c.ForLayer(2, 3, compute)
	if !computed || calls != 2 {
		t.Fatalf("layer 2 should recompute: calls=%d", calls)
	}
	// k mismatch on a reuse layer errors.
	if _, _, err := c.ForLayer(3, 5, compute); err == nil {
		t.Fatal("k mismatch: want error")
	}
}

func TestSamplePositionsSubsetStaysSorted(t *testing.T) {
	// Sampling a Morton-sorted level yields ascending positions — the
	// property that lets deeper modules keep using index-based operations.
	f := func(total uint16, n uint8) bool {
		tt := int(total%500) + 2
		nn := int(n)%tt + 1
		pos := SamplePositions(tt, nn)
		return sort.IntsAreSorted(pos)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
