package core

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/sample"
)

// Morton-based up-sampling (§5.1.2, "Optimizing Up-sampling"): because the
// sampled points sit at known evenly spaced positions of the Morton order,
// the (approximately) closest samples to any full-resolution point are the
// few samples whose positions bracket it. Instead of searching all n samples
// (O(n) per target, the SOTA ThreeNN), we examine only `Candidates` bracketing
// samples and pick the 3 closest — an O(n)-fold reduction.
//
// Note: the paper's formula lists the candidate set as {j'−2·step, j'−step,
// j'+step, j'+2·step} with j' = j − j%step, which excludes the sampled
// position j' itself even though it is by construction among the closest.
// We read that as a typo and use the four bracketing sample *ranks*
// {m−1, m, m+1, m+2} around the target (m = rank of the nearest sample at or
// below the target position), which preserves the intended semantics: a
// constant-size candidate set of stride-adjacent samples.

// MortonInterp plans feature interpolation from samples at known structurized
// positions back to all points of the structurized cloud.
type MortonInterp struct {
	// Candidates is the number of bracketing samples examined per target
	// (default 4, the paper's choice). The best min(3, Candidates) are kept.
	Candidates int
}

// Name identifies the interpolator in reports.
func (MortonInterp) Name() string { return "morton-interp" }

// PlanStructurized builds an interpolation plan for every point of the
// structurized cloud (targets = positions 0…N−1) from the samples at
// samplePos (ascending structurized positions, as produced by
// SamplePositions). Plan indexes refer to sample *ranks* (0…n−1), matching
// the row order of the sampled feature matrix.
func (mi MortonInterp) PlanStructurized(points []geom.Point3, samplePos []int) (*sample.InterpPlan, error) {
	n := len(samplePos)
	if n == 0 {
		return nil, sample.ErrNoSources
	}
	if !sort.IntsAreSorted(samplePos) {
		return nil, fmt.Errorf("core: sample positions must be ascending")
	}
	cand := mi.Candidates
	if cand <= 0 {
		cand = 4
	}
	if cand > n {
		cand = n
	}
	k := 3
	if k > cand {
		k = cand
	}
	plan := &sample.InterpPlan{
		K:       k,
		Indexes: make([]int, len(points)*k),
		Weights: make([]float64, len(points)*k),
	}
	N := len(points)
	idx := make([]int, k)
	d := make([]float64, k)
	for j := 0; j < N; j++ {
		// Rank of the last sample at or below position j.
		m := sort.SearchInts(samplePos, j+1) - 1
		lo := m - (cand-1)/2
		if lo < 0 {
			lo = 0
		}
		if lo+cand > n {
			lo = n - cand
		}
		bestOfCandidates(points[j], points, samplePos, lo, lo+cand, idx, d)
		fillPlanWeights(plan, j, idx, d)
	}
	return plan, nil
}

// bestOfCandidates fills idx/d with the k nearest samples (by true distance)
// among sample ranks [lo, hi).
func bestOfCandidates(p geom.Point3, points []geom.Point3, samplePos []int, lo, hi int, idx []int, d []float64) {
	k := len(idx)
	const inf = 1e300
	for i := range d {
		d[i] = inf
		idx[i] = -1
	}
	for r := lo; r < hi; r++ {
		dist := p.DistSq(points[samplePos[r]])
		if dist >= d[k-1] {
			continue
		}
		j := k - 1
		for j > 0 && d[j-1] > dist {
			d[j] = d[j-1]
			idx[j] = idx[j-1]
			j--
		}
		d[j] = dist
		idx[j] = r
	}
}

// fillPlanWeights writes normalized inverse-distance weights (the PointNet++
// FP convention) for target t.
func fillPlanWeights(plan *sample.InterpPlan, t int, idx []int, d []float64) {
	k := plan.K
	base := t * k
	const eps = 1e-10
	total := 0.0
	for i := 0; i < k; i++ {
		plan.Indexes[base+i] = idx[i]
		w := 1.0 / (d[i] + eps)
		plan.Weights[base+i] = w
		total += w
	}
	for i := 0; i < k; i++ {
		plan.Weights[base+i] /= total
	}
}
