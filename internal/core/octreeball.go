package core

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/morton"
	"repro/internal/neighbor"
	"repro/internal/parallel"
)

// OctreeBall is the third exact searcher in the design space: a linear
// octree (built for free over the already-sorted Morton codes) answers ball
// queries by pruning whole subtrees against the ball's voxel box. Same
// results as RangeBall and the brute ball query; different traversal
// structure — the one the hardware prior works (PointAcc, Crescent)
// accelerate.
type OctreeBall struct {
	R float64
	// MaxDepth bounds the tree depth (0 = the encoder's bits per axis;
	// shallower trees trade pruning precision for smaller node lists).
	MaxDepth int
}

// Name identifies the algorithm in reports.
func (OctreeBall) Name() string { return "ball-morton-octree" }

// SearchStructurized finds up to k in-ball neighbors per query position,
// with the SOTA ball query's padding semantics. Results are positions into
// s.Cloud.Points.
func (ob OctreeBall) SearchStructurized(s *Structurized, queryPos []int, k int) ([]int, error) {
	n := s.Len()
	if n == 0 {
		return nil, neighbor.ErrNoPoints
	}
	if k < 1 {
		return nil, fmt.Errorf("%w: k=%d", neighbor.ErrBadK, k)
	}
	if ob.R <= 0 || math.IsNaN(ob.R) {
		return nil, fmt.Errorf("core: octree ball needs positive radius, got %v", ob.R)
	}
	tree, err := morton.NewOctree(s.Codes, s.Encoder.BitsPerAxis, ob.MaxDepth)
	if err != nil {
		return nil, err
	}
	enc := s.Encoder
	pts := s.Cloud.Points
	r2 := ob.R * ob.R
	out := make([]int, len(queryPos)*k)
	parallel.ForChunks(len(queryPos), func(lo, hi int) {
		found := make([]int, 0, k)
		for qi := lo; qi < hi; qi++ {
			pos := queryPos[qi]
			q := pts[pos]
			zmin := enc.Code(geom.Point3{X: q.X - ob.R, Y: q.Y - ob.R, Z: q.Z - ob.R})
			zmax := enc.Code(geom.Point3{X: q.X + ob.R, Y: q.Y + ob.R, Z: q.Z + ob.R})
			found = found[:0]
			nearest, nearestD := pos, math.Inf(1)
			tree.VisitBox(zmin, zmax, func(runLo, runHi int) bool {
				for j := runLo; j < runHi; j++ {
					d := q.DistSq(pts[j])
					if d < nearestD {
						nearest, nearestD = j, d
					}
					if d <= r2 {
						found = append(found, j)
						if len(found) == k {
							return false
						}
					}
				}
				return true
			})
			if len(found) == 0 {
				found = append(found, nearest)
			}
			row := out[qi*k : (qi+1)*k]
			copied := copy(row, found)
			for i := copied; i < k; i++ {
				row[i] = found[0]
			}
		}
	})
	return out, nil
}
