package core

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/sample"
)

// MortonSampler is the paper's Algorithm 1: generate Morton codes (fully
// parallel), sort them, and uniformly sample the re-ordered points with an
// even index stride. It approximates farthest point sampling at
// O(N log N) total cost with no serial dependency between picks.
//
// It implements sample.Sampler on raw clouds (performing the structurization
// internally and returning *original* indexes, exactly as Algorithm 1's
// S = S ∪ {p_i_index}); when the cloud is already structurized, use
// SamplePositions to skip the re-encoding.
type MortonSampler struct {
	// Options configure the internal structurization pass.
	Options StructurizeOptions
}

// Name implements sample.Sampler.
func (MortonSampler) Name() string { return "morton" }

// Sample implements sample.Sampler: it returns n original-cloud indexes
// uniformly spread along the Morton order.
func (m MortonSampler) Sample(c *geom.Cloud, n int) ([]int, error) {
	if n < 1 || n > c.Len() {
		return nil, fmt.Errorf("%w: n=%d with %d points", sample.ErrBadCount, n, c.Len())
	}
	s, err := Structurize(c, m.Options)
	if err != nil {
		return nil, err
	}
	return s.OriginalIndexes(SamplePositions(s.Len(), n)), nil
}

// SamplePositions returns the n structurized positions the Morton sampler
// picks from a cloud of the given size: evenly spaced positions covering both
// ends of the Morton order (Fig. 8(b): sampling 3 of 5 points picks sorted
// positions {0, 2, 4}).
func SamplePositions(total, n int) []int {
	return sample.UniformIndexes(total, n)
}

// SampleStructurized samples n points from an already-structurized cloud and
// returns their original indexes. The per-call cost is O(n), fully parallel —
// the stage the paper accelerates 10.6× (Fig. 9, first SA module).
func SampleStructurized(s *Structurized, n int) ([]int, error) {
	if n < 1 || n > s.Len() {
		return nil, fmt.Errorf("%w: n=%d with %d points", sample.ErrBadCount, n, s.Len())
	}
	return s.OriginalIndexes(SamplePositions(s.Len(), n)), nil
}

// BucketSampler runs sample.BucketFPS over the Morton order: it structurizes
// the cloud, aligns the FPS buckets with Morton prefix runs (Structurized.Runs)
// so bucket AABBs are tight, and maps the picks back to original indexes. It
// is the middle ground between MortonSampler (pure stride) and exact FPS —
// Frac interpolates between them.
type BucketSampler struct {
	// Frac is the sample.BucketFPS quality knob in [0,1].
	Frac float64
	// Options configure the internal structurization pass.
	Options StructurizeOptions
	// Target is the desired bucket count for Runs; 0 derives ≈√N buckets.
	Target int

	b sample.BucketFPS
}

// Name implements sample.Sampler.
func (*BucketSampler) Name() string { return "bucketfps" }

// Sample implements sample.Sampler: structurize, bucketed FPS over the Morton
// order, map back to original indexes.
func (s *BucketSampler) Sample(c *geom.Cloud, n int) ([]int, error) {
	if n < 1 || n > c.Len() {
		return nil, fmt.Errorf("%w: n=%d with %d points", sample.ErrBadCount, n, c.Len())
	}
	st, err := Structurize(c, s.Options)
	if err != nil {
		return nil, err
	}
	return s.SampleStructurized(st, n)
}

// SampleStructurized samples n points from an already-structurized cloud,
// returning original indexes and skipping the re-encoding (mirroring
// SampleStructurized for the stride sampler).
func (s *BucketSampler) SampleStructurized(st *Structurized, n int) ([]int, error) {
	if n < 1 || n > st.Len() {
		return nil, fmt.Errorf("%w: n=%d with %d points", sample.ErrBadCount, n, st.Len())
	}
	target := s.Target
	if target == 0 {
		s.b.Buckets = nil // BucketFPS derives ≈√N equal-width buckets
	} else {
		s.b.Buckets = st.Runs(target)
	}
	s.b.Frac = s.Frac
	pos, err := s.b.SampleIndexes(st.Cloud.Points, n)
	if err != nil {
		return nil, err
	}
	return st.OriginalIndexes(pos), nil
}
