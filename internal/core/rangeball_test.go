package core

import (
	"math"
	"sort"
	"testing"

	"repro/internal/geom"
)

func TestRangeBallMatchesBruteForce(t *testing.T) {
	cloud := geom.GenerateShape(geom.ShapeBlob, geom.ShapeOptions{N: 600, DensitySkew: 0.6, Seed: 17})
	s, err := Structurize(cloud, StructurizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const r = 0.25
	const k = 64 // large enough that padding rarely truncates real hits
	queryPos := []int{0, 7, 99, 300, 599}
	got, err := RangeBall{R: r}.SearchStructurized(s, queryPos, k)
	if err != nil {
		t.Fatal(err)
	}
	pts := s.Cloud.Points
	for qi, pos := range queryPos {
		// Brute-force in-ball set.
		want := map[int]bool{}
		for j, p := range pts {
			if pts[pos].DistSq(p) <= r*r {
				want[j] = true
			}
		}
		gotSet := map[int]bool{}
		for _, j := range got[qi*k : (qi+1)*k] {
			gotSet[j] = true
		}
		if len(want) <= k {
			// Exact: every in-ball point must be found (padding repeats
			// are fine) and nothing outside the ball returned.
			for j := range want {
				if !gotSet[j] {
					t.Fatalf("query %d: in-ball point %d missed", pos, j)
				}
			}
			for j := range gotSet {
				if !want[j] {
					t.Fatalf("query %d: out-of-ball point %d returned (d=%v)",
						pos, j, math.Sqrt(pts[pos].DistSq(pts[j])))
				}
			}
		} else {
			// Truncated: all returned points must at least be in the ball.
			for j := range gotSet {
				if !want[j] {
					t.Fatalf("query %d: out-of-ball point %d returned", pos, j)
				}
			}
		}
	}
}

func TestRangeBallEmptyBallFallsBack(t *testing.T) {
	cloud := geom.NewCloud(0, 0)
	cloud.Points = []geom.Point3{{X: 0}, {X: 100}}
	s, err := Structurize(cloud, StructurizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RangeBall{R: 0.001}.SearchStructurized(s, []int{0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range got {
		// Fallback: the nearest candidate inside the (tiny) box — the
		// query itself.
		if j != 0 {
			t.Fatalf("fallback returned %v", got)
		}
	}
}

func TestRangeBallErrors(t *testing.T) {
	cloud := geom.GenerateShape(geom.ShapeSphere, geom.ShapeOptions{N: 10, Seed: 1})
	s, err := Structurize(cloud, StructurizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (RangeBall{R: 0}).SearchStructurized(s, []int{0}, 2); err == nil {
		t.Fatal("zero radius: want error")
	}
	if _, err := (RangeBall{R: 1}).SearchStructurized(s, []int{0}, 0); err == nil {
		t.Fatal("k=0: want error")
	}
}

func TestRangeBallVsWindowAccuracy(t *testing.T) {
	// The design-space contrast the two searchers embody: RangeBall is
	// exact (0 false neighbors w.r.t. the ball definition); the window
	// searcher misses some true neighbors but touches a fixed candidate
	// count.
	cloud := geom.GenerateShape(geom.ShapeTorus, geom.ShapeOptions{N: 500, Seed: 23})
	s, err := Structurize(cloud, StructurizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const r = 0.3
	const k = 8
	pos := make([]int, 50)
	for i := range pos {
		pos[i] = i * 10
	}
	exact, err := RangeBall{R: r}.SearchStructurized(s, pos, k)
	if err != nil {
		t.Fatal(err)
	}
	// Every exact hit must truly be within r (or a padded duplicate).
	for qi, p := range pos {
		row := exact[qi*k : (qi+1)*k]
		seen := map[int]bool{}
		for _, j := range row {
			if seen[j] {
				continue
			}
			seen[j] = true
			if d := s.Cloud.Points[p].Dist(s.Cloud.Points[j]); d > r+1e-9 {
				t.Fatalf("range ball returned point at distance %v > %v", d, r)
			}
		}
	}
	// Window results are a subset of nearby positions by construction.
	approx, err := WindowSearcher{W: 4 * k}.SearchPositions(s.Cloud.Points, pos, k)
	if err != nil {
		t.Fatal(err)
	}
	for qi, p := range pos {
		row := append([]int(nil), approx[qi*k:(qi+1)*k]...)
		sort.Ints(row)
		// The window is clamped to the sequence bounds, exactly as the
		// searcher clamps it.
		start := p - 2*k
		if start < 0 {
			start = 0
		}
		if start+4*k > s.Len() {
			start = s.Len() - 4*k
		}
		for _, j := range row {
			if j < start || j >= start+4*k {
				t.Fatalf("window hit %d outside the clamped W=%d window [%d,%d) of query %d",
					j, 4*k, start, start+4*k, p)
			}
		}
	}
}
