package core

import (
	"sort"
	"testing"

	"repro/internal/geom"
)

func TestOctreeBallMatchesRangeBall(t *testing.T) {
	cloud := geom.GenerateShape(geom.ShapeBlob, geom.ShapeOptions{N: 700, DensitySkew: 0.5, Seed: 31})
	s, err := Structurize(cloud, StructurizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const r = 0.3
	const k = 48
	var pos []int
	for p := 0; p < s.Len(); p += 37 {
		pos = append(pos, p)
	}
	a, err := OctreeBall{R: r}.SearchStructurized(s, pos, k)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RangeBall{R: r}.SearchStructurized(s, pos, k)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the *sets* per query (visit order differs; both truncate at
	// k, so only compare fully when below k distinct results).
	for qi := range pos {
		sa := distinct(a[qi*k : (qi+1)*k])
		sb := distinct(b[qi*k : (qi+1)*k])
		if len(sa) < k && len(sb) < k {
			if len(sa) != len(sb) {
				t.Fatalf("query %d: octree %d hits vs range %d", pos[qi], len(sa), len(sb))
			}
			for i := range sa {
				if sa[i] != sb[i] {
					t.Fatalf("query %d: sets differ: %v vs %v", pos[qi], sa, sb)
				}
			}
		}
	}
}

func distinct(row []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, v := range row {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

func TestOctreeBallShallowDepthStillExact(t *testing.T) {
	cloud := geom.GenerateShape(geom.ShapeTorus, geom.ShapeOptions{N: 300, Seed: 7})
	s, err := Structurize(cloud, StructurizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const r = 0.4
	const k = 64
	pos := []int{0, 100, 299}
	deep, err := OctreeBall{R: r}.SearchStructurized(s, pos, k)
	if err != nil {
		t.Fatal(err)
	}
	shallow, err := OctreeBall{R: r, MaxDepth: 3}.SearchStructurized(s, pos, k)
	if err != nil {
		t.Fatal(err)
	}
	for qi := range pos {
		a := distinct(deep[qi*k : (qi+1)*k])
		b := distinct(shallow[qi*k : (qi+1)*k])
		if len(a) < k && len(b) < k {
			if len(a) != len(b) {
				t.Fatalf("depth changed the exact result: %d vs %d hits", len(a), len(b))
			}
		}
	}
}

func TestOctreeBallErrors(t *testing.T) {
	cloud := geom.GenerateShape(geom.ShapeSphere, geom.ShapeOptions{N: 20, Seed: 2})
	s, err := Structurize(cloud, StructurizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (OctreeBall{R: 0}).SearchStructurized(s, []int{0}, 2); err == nil {
		t.Fatal("zero radius: want error")
	}
	if _, err := (OctreeBall{R: 1}).SearchStructurized(s, []int{0}, 0); err == nil {
		t.Fatal("k=0: want error")
	}
}
