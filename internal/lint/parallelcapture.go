package lint

import (
	"go/ast"
	"go/types"
)

// ParallelCapture guards the goroutine-parallel kernels: a closure handed to
// parallel.For / ForChunks / ForWorkers (or launched with a bare go
// statement) runs concurrently with its siblings, so a plain write to a
// variable captured from the enclosing scope is a data race. The safe idioms
// are a worker-local variable declared inside the closure, or the per-worker
// slot pattern (parallel.ForWorkers with writes indexed by the worker/chunk
// parameters — see tensor.MatMulATInto and morton.radixOrderParallel).
//
// The check flags direct writes to captured identifiers (x = …, x += …, x++,
// and range re-binding `for x = range`). Writes through index or pointer
// expressions are assumed to follow the per-slot idiom and are not analyzed.
var ParallelCapture = &Analyzer{
	Name: "parallelcapture",
	Doc:  "closures run on parallel workers must not write variables captured from the enclosing scope",
	Run:  runParallelCapture,
}

func runParallelCapture(p *Pass) {
	parallelPath := p.ModPath + "/internal/parallel"
	for _, pkg := range p.Targets {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					obj := calleeFunc(pkg.Info, n)
					if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != parallelPath {
						return true
					}
					switch obj.Name() {
					case "For", "ForChunks", "ForWorkers":
						for _, arg := range n.Args {
							if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
								checkCapturedWrites(p, pkg, lit, "parallel."+obj.Name())
							}
						}
					}
				case *ast.GoStmt:
					if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
						checkCapturedWrites(p, pkg, lit, "go statement")
					}
				}
				return true
			})
		}
	}
}

// checkCapturedWrites reports assignments inside lit whose target is an
// identifier defined outside lit (a captured, worker-shared variable).
func checkCapturedWrites(p *Pass, pkg *Package, lit *ast.FuncLit, context string) {
	info := pkg.Info

	// Everything defined within the closure — parameters, named results, and
	// local declarations — is worker-private.
	local := map[types.Object]bool{}
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				local[obj] = true
			}
		}
		return true
	})

	flag := func(id *ast.Ident) {
		obj := info.Uses[id]
		if obj == nil || local[obj] {
			return
		}
		if _, ok := obj.(*types.Var); !ok {
			return
		}
		p.Reportf(id.Pos(), "closure passed to %s writes captured variable %s shared across workers; use a worker-local or the per-worker slot idiom (parallel.ForWorkers)", context, id.Name)
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// With := every LHS identifier is either a fresh definition
			// (Defs, local) or a rebinding (Uses) — both resolve correctly
			// through flag, so := and = share one path.
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					flag(id)
				}
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				flag(id)
			}
		case *ast.RangeStmt:
			if n.Tok.String() == "=" {
				if id, ok := ast.Unparen(n.Key).(*ast.Ident); ok {
					flag(id)
				}
				if n.Value != nil {
					if id, ok := ast.Unparen(n.Value).(*ast.Ident); ok {
						flag(id)
					}
				}
			}
		}
		return true
	})
}
