// Package lint is edgepc-lint: a repo-specific static-analysis suite built on
// the standard library's go/ast, go/parser, and go/types (no external
// dependencies, matching the module's pure-Go constraint).
//
// The analyzers enforce the sharp-edged invariants the zero-allocation
// inference hot path relies on — invariants the compiler cannot check and
// runtime panics only catch when the offending path executes:
//
//   - hotpathalloc: functions annotated //edgepc:hotpath (and everything they
//     statically call within the module) must not call the allocating tensor
//     wrappers, and the annotated functions themselves must not make or grow
//     slices.
//   - workspacepair: tensor.Workspace buffers must be Put back or handed to
//     the caller, never parked in a struct field or silently dropped.
//   - parallelcapture: closures run on goroutine workers must not write
//     variables shared across workers.
//   - intoalias: statically visible dst/src aliasing and constant shape
//     mismatches in *Into kernel calls.
//   - floateq: ==/!= on floating-point operands (exact-zero sentinel and
//     sparsity-skip comparisons are exempt).
//   - gorecover: in packages marked //edgepc:goroutines-must-recover, every
//     goroutine body must install a deferred recover guard before any other
//     statement (panic isolation for the serving layer).
//
// Four analyzers are interprocedural, built on the shared call-graph +
// forward-dataflow engine (callgraph.go, dataflow.go):
//
//   - lockpair: sync.Mutex/RWMutex Lock must be Unlocked on every return
//     path, defer-aware, RLock/RUnlock matched separately from the write
//     side, lock/unlock helper pairs tracked across function boundaries.
//   - wgbalance: WaitGroup Add/Done must balance per loop iteration and
//     across the goroutine spawn boundary (Done inside the spawned closure
//     counts; Add inside one races with Wait and is reported).
//   - chanlife: no send or close on a channel after a statically reachable
//     close; no receive on a local channel nothing can send to or close.
//   - ctxflow: serve-layer functions must thread their Context/Plan/deadline
//     parameters to blocking callees instead of substituting
//     context.Background()/nil or dropping them.
//
// The escapegate subpackage adds a compiler-backed static allocation gate:
// it parses `go build -gcflags='-m -m'` output and fails when a
// //edgepc:hotpath function gains a heap escape (see scripts/escape_gate.sh).
//
// A finding is suppressed by the directive
//
//	//edgepc:lint-ignore <analyzer> <reason>
//
// placed on the reported line or on the line directly above it. The reason is
// mandatory: suppressions double as documentation of every deliberate
// exception to an invariant. See DESIGN.md §7.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Directives recognized in comments.
const (
	// HotPathDirective marks a function (via its doc comment) as part of the
	// steady-state inference hot path checked by hotpathalloc.
	HotPathDirective = "//edgepc:hotpath"
	// IgnoreDirective suppresses one analyzer on one line:
	// //edgepc:lint-ignore <analyzer> <reason>.
	IgnoreDirective = "//edgepc:lint-ignore"
)

// Diagnostic is one finding, printed as file:line:col: [analyzer] message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic in the driver's output form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check over a set of packages.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries everything one analyzer run needs. Targets are the packages
// diagnostics may be reported against; Module additionally holds every
// in-module dependency that was loaded, so whole-module analyses (the
// hotpathalloc call graph) can traverse beyond the lint targets.
type Pass struct {
	Fset    *token.FileSet
	ModPath string
	Targets []*Package
	Module  []*Package

	analyzer    *Analyzer
	targetFiles map[string]bool
	diags       *[]Diagnostic
	cg          *cgHolder
}

// Reportf records a finding at pos. Findings outside the target packages are
// dropped: an analyzer may discover a violation while traversing a dependency
// that is not being linted.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if !p.targetFiles[position.Filename] {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{Pos: position, Analyzer: p.analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{HotPathAlloc, WorkspacePair, ParallelCapture, IntoAlias, FloatEq, GoRecover, LockPair, WGBalance, ChanLife, CtxFlow}
}

// Run executes the analyzers over the target packages and returns the
// surviving diagnostics sorted by position. The loader supplies the shared
// FileSet, the module path, and every module package loaded so far, so
// whole-module analyses (the hotpathalloc call graph) can traverse beyond the
// lint targets. Diagnostics on lines covered by a matching
// //edgepc:lint-ignore directive are dropped; malformed or unknown-analyzer
// directives are themselves reported so a typo cannot silently disable a
// suppression.
func Run(loader *Loader, targets []*Package, analyzers []*Analyzer) []Diagnostic {
	fset := loader.Fset
	targetFiles := map[string]bool{}
	for _, pkg := range targets {
		for _, f := range pkg.Files {
			targetFiles[fset.Position(f.Pos()).Filename] = true
		}
	}
	var diags []Diagnostic
	holder := &cgHolder{} // one shared call graph across the suite
	module := loader.Module()
	for _, a := range analyzers {
		pass := &Pass{
			Fset:        fset,
			ModPath:     loader.ModulePath(),
			Targets:     targets,
			Module:      module,
			analyzer:    a,
			targetFiles: targetFiles,
			diags:       &diags,
			cg:          holder,
		}
		a.Run(pass)
	}
	ignores, malformed := collectIgnores(fset, targets, analyzers)
	kept := diags[:0]
	for _, d := range diags {
		key := ignoreKey{file: d.Pos.Filename, analyzer: d.Analyzer}
		if ig := ignores[key]; ig != nil {
			if use, ok := ig[d.Pos.Line]; ok {
				use.used = true
				continue
			}
			if use, ok := ig[d.Pos.Line-1]; ok {
				use.used = true
				continue
			}
		}
		kept = append(kept, d)
	}
	diags = append(kept, malformed...)
	// A suppression that matched no finding is dead documentation: either the
	// violation was fixed (delete the directive) or the directive is on the
	// wrong line (move it).
	for key, ig := range ignores {
		for _, use := range ig {
			if !use.used {
				diags = append(diags, Diagnostic{
					Pos:      use.pos,
					Analyzer: "lint",
					Message:  fmt.Sprintf("stale lint-ignore: no %s finding on this line or the next; delete the suppression", key.analyzer),
				})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

type ignoreKey struct {
	file     string
	analyzer string
}

// ignoreUse tracks one well-formed suppression directive: its position for
// stale reporting and whether any diagnostic actually matched it.
type ignoreUse struct {
	pos  token.Position
	used bool
}

// collectIgnores gathers //edgepc:lint-ignore directives from the target
// packages, keyed by (file, analyzer) → directive line → usage record.
// Directives missing an analyzer name, missing a reason, or naming an unknown
// analyzer are returned as diagnostics instead of being honored.
func collectIgnores(fset *token.FileSet, targets []*Package, analyzers []*Analyzer) (map[ignoreKey]map[int]*ignoreUse, []Diagnostic) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	ignores := map[ignoreKey]map[int]*ignoreUse{}
	var malformed []Diagnostic
	for _, pkg := range targets {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, IgnoreDirective)
					if !ok {
						continue
					}
					pos := fset.Position(c.Pos())
					fields := strings.Fields(rest)
					switch {
					case len(fields) == 0:
						malformed = append(malformed, Diagnostic{Pos: pos, Analyzer: "lint", Message: "lint-ignore directive names no analyzer"})
					case !known[fields[0]]:
						malformed = append(malformed, Diagnostic{Pos: pos, Analyzer: "lint", Message: fmt.Sprintf("lint-ignore names unknown analyzer %q", fields[0])})
					case len(fields) == 1:
						malformed = append(malformed, Diagnostic{Pos: pos, Analyzer: "lint", Message: fmt.Sprintf("lint-ignore %s gives no reason; suppressions must be documented", fields[0])})
					default:
						key := ignoreKey{file: pos.Filename, analyzer: fields[0]}
						if ignores[key] == nil {
							ignores[key] = map[int]*ignoreUse{}
						}
						ignores[key][pos.Line] = &ignoreUse{pos: pos}
					}
				}
			}
		}
	}
	return ignores, malformed
}

// hasDirective reports whether a function's doc comment carries the given
// directive (alone on a line, optionally followed by explanatory text).
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}
