// Package lint is edgepc-lint: a repo-specific static-analysis suite built on
// the standard library's go/ast, go/parser, and go/types (no external
// dependencies, matching the module's pure-Go constraint).
//
// The analyzers enforce the sharp-edged invariants the zero-allocation
// inference hot path relies on — invariants the compiler cannot check and
// runtime panics only catch when the offending path executes:
//
//   - hotpathalloc: functions annotated //edgepc:hotpath (and everything they
//     statically call within the module) must not call the allocating tensor
//     wrappers, and the annotated functions themselves must not make or grow
//     slices.
//   - workspacepair: tensor.Workspace buffers must be Put back or handed to
//     the caller, never parked in a struct field or silently dropped.
//   - parallelcapture: closures run on goroutine workers must not write
//     variables shared across workers.
//   - intoalias: statically visible dst/src aliasing and constant shape
//     mismatches in *Into kernel calls.
//   - floateq: ==/!= on floating-point operands (exact-zero sentinel and
//     sparsity-skip comparisons are exempt).
//   - gorecover: in packages marked //edgepc:goroutines-must-recover, every
//     goroutine body must install a deferred recover guard before any other
//     statement (panic isolation for the serving layer).
//
// A finding is suppressed by the directive
//
//	//edgepc:lint-ignore <analyzer> <reason>
//
// placed on the reported line or on the line directly above it. The reason is
// mandatory: suppressions double as documentation of every deliberate
// exception to an invariant. See DESIGN.md §7.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Directives recognized in comments.
const (
	// HotPathDirective marks a function (via its doc comment) as part of the
	// steady-state inference hot path checked by hotpathalloc.
	HotPathDirective = "//edgepc:hotpath"
	// IgnoreDirective suppresses one analyzer on one line:
	// //edgepc:lint-ignore <analyzer> <reason>.
	IgnoreDirective = "//edgepc:lint-ignore"
)

// Diagnostic is one finding, printed as file:line:col: [analyzer] message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic in the driver's output form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check over a set of packages.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries everything one analyzer run needs. Targets are the packages
// diagnostics may be reported against; Module additionally holds every
// in-module dependency that was loaded, so whole-module analyses (the
// hotpathalloc call graph) can traverse beyond the lint targets.
type Pass struct {
	Fset    *token.FileSet
	ModPath string
	Targets []*Package
	Module  []*Package

	analyzer    *Analyzer
	targetFiles map[string]bool
	diags       *[]Diagnostic
}

// Reportf records a finding at pos. Findings outside the target packages are
// dropped: an analyzer may discover a violation while traversing a dependency
// that is not being linted.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if !p.targetFiles[position.Filename] {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{Pos: position, Analyzer: p.analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{HotPathAlloc, WorkspacePair, ParallelCapture, IntoAlias, FloatEq, GoRecover}
}

// Run executes the analyzers over the target packages and returns the
// surviving diagnostics sorted by position. The loader supplies the shared
// FileSet, the module path, and every module package loaded so far, so
// whole-module analyses (the hotpathalloc call graph) can traverse beyond the
// lint targets. Diagnostics on lines covered by a matching
// //edgepc:lint-ignore directive are dropped; malformed or unknown-analyzer
// directives are themselves reported so a typo cannot silently disable a
// suppression.
func Run(loader *Loader, targets []*Package, analyzers []*Analyzer) []Diagnostic {
	fset := loader.Fset
	targetFiles := map[string]bool{}
	for _, pkg := range targets {
		for _, f := range pkg.Files {
			targetFiles[fset.Position(f.Pos()).Filename] = true
		}
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Fset:        fset,
			ModPath:     loader.ModulePath(),
			Targets:     targets,
			Module:      loader.Module(),
			analyzer:    a,
			targetFiles: targetFiles,
			diags:       &diags,
		}
		a.Run(pass)
	}
	ignores, malformed := collectIgnores(fset, targets, analyzers)
	kept := diags[:0]
	for _, d := range diags {
		key := ignoreKey{file: d.Pos.Filename, analyzer: d.Analyzer}
		if lines := ignores[key]; lines[d.Pos.Line] || lines[d.Pos.Line-1] {
			continue
		}
		kept = append(kept, d)
	}
	diags = append(kept, malformed...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

type ignoreKey struct {
	file     string
	analyzer string
}

// collectIgnores gathers //edgepc:lint-ignore directives from the target
// packages, keyed by (file, analyzer) → set of directive lines. Directives
// missing an analyzer name, missing a reason, or naming an unknown analyzer
// are returned as diagnostics instead of being honored.
func collectIgnores(fset *token.FileSet, targets []*Package, analyzers []*Analyzer) (map[ignoreKey]map[int]bool, []Diagnostic) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	ignores := map[ignoreKey]map[int]bool{}
	var malformed []Diagnostic
	for _, pkg := range targets {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, IgnoreDirective)
					if !ok {
						continue
					}
					pos := fset.Position(c.Pos())
					fields := strings.Fields(rest)
					switch {
					case len(fields) == 0:
						malformed = append(malformed, Diagnostic{Pos: pos, Analyzer: "lint", Message: "lint-ignore directive names no analyzer"})
					case !known[fields[0]]:
						malformed = append(malformed, Diagnostic{Pos: pos, Analyzer: "lint", Message: fmt.Sprintf("lint-ignore names unknown analyzer %q", fields[0])})
					case len(fields) == 1:
						malformed = append(malformed, Diagnostic{Pos: pos, Analyzer: "lint", Message: fmt.Sprintf("lint-ignore %s gives no reason; suppressions must be documented", fields[0])})
					default:
						key := ignoreKey{file: pos.Filename, analyzer: fields[0]}
						if ignores[key] == nil {
							ignores[key] = map[int]bool{}
						}
						ignores[key][pos.Line] = true
					}
				}
			}
		}
	}
	return ignores, malformed
}

// hasDirective reports whether a function's doc comment carries the given
// directive (alone on a line, optionally followed by explanatory text).
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}
