package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the whole-module call-graph half of the lint engine (the
// forward-dataflow half lives in dataflow.go). It gives every analyzer the
// same three capabilities hotpathalloc bootstrapped in PR 2, now shared:
//
//   - a deterministic graph of every declared module function with statically
//     resolved call edges (package-level functions and methods on concrete
//     receivers; interface dispatch and function values are not resolved),
//   - `go` spawn sites resolved the same way, kept separate from synchronous
//     edges because concurrency analyzers treat the two differently, and
//   - a bounded fixed-point driver for per-function summaries, so facts like
//     "this helper releases its receiver's mutex" or "this callee may block"
//     propagate across call chains (serve → pipeline → model → tensor)
//     instead of stopping at function boundaries.

// cgEdge is one resolved call (or spawn) site.
type cgEdge struct {
	callee *cgNode
	call   *ast.CallExpr
}

// cgNode is one declared module function in the shared call graph.
type cgNode struct {
	obj  *types.Func
	decl *ast.FuncDecl
	pkg  *Package

	out    []cgEdge // synchronous static calls into module code
	spawns []cgEdge // `go f(...)` / `go x.m(...)` sites resolved to module code

	// paramSlot maps the receiver and parameter objects of this function to
	// summary slots: the receiver is slot -1, parameter i is slot i. Summaries
	// are keyed by slot so they can be rebased onto the caller's arguments.
	paramSlot map[types.Object]int
}

// callGraph is the module-wide static call graph, built once per lint Run and
// shared by every analyzer that asks for it.
type callGraph struct {
	nodes  map[*types.Func]*cgNode
	byDecl map[*ast.FuncDecl]*cgNode
	order  []*cgNode // deterministic: sorted by declaration position
}

// cgHolder memoizes one callGraph across the analyzers of a single Run.
type cgHolder struct {
	graph *callGraph
}

// callGraph returns the memoized whole-module call graph, building it on
// first use.
func (p *Pass) callGraph() *callGraph {
	if p.cg == nil {
		p.cg = &cgHolder{}
	}
	if p.cg.graph == nil {
		p.cg.graph = buildCallGraph(p.Module)
	}
	return p.cg.graph
}

// buildCallGraph indexes every declared function with a body across the
// module packages and resolves its static call and spawn edges.
func buildCallGraph(module []*Package) *callGraph {
	g := &callGraph{nodes: map[*types.Func]*cgNode{}, byDecl: map[*ast.FuncDecl]*cgNode{}}
	for _, pkg := range module {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &cgNode{obj: obj, decl: fd, pkg: pkg, paramSlot: map[types.Object]int{}}
				if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
					if o := pkg.Info.Defs[fd.Recv.List[0].Names[0]]; o != nil {
						n.paramSlot[o] = -1
					}
				}
				slot := 0
				for _, field := range fd.Type.Params.List {
					if len(field.Names) == 0 {
						slot++ // unnamed parameter still occupies a slot
						continue
					}
					for _, name := range field.Names {
						if o := pkg.Info.Defs[name]; o != nil {
							n.paramSlot[o] = slot
						}
						slot++
					}
				}
				g.nodes[obj] = n
				g.byDecl[fd] = n
				g.order = append(g.order, n)
			}
		}
	}
	sort.Slice(g.order, func(i, j int) bool { return g.order[i].obj.Pos() < g.order[j].obj.Pos() })
	for _, n := range g.order {
		g.resolveEdges(n)
	}
	return g
}

// resolveEdges walks one function body (closures included — a call made from
// a closure still happens under the enclosing function's dynamic extent) and
// records module-internal call and spawn edges.
func (g *callGraph) resolveEdges(n *cgNode) {
	info := n.pkg.Info
	spawnCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.GoStmt:
			spawnCalls[node.Call] = true
		case *ast.CallExpr:
			obj := calleeFunc(info, node)
			if obj == nil {
				return true
			}
			callee, ok := g.nodes[obj]
			if !ok {
				return true
			}
			if spawnCalls[node] {
				n.spawns = append(n.spawns, cgEdge{callee: callee, call: node})
			} else {
				n.out = append(n.out, cgEdge{callee: callee, call: node})
			}
		}
		return true
	})
}

// nodeOf returns the graph node for a statically resolved callee of call, or
// nil when the call does not resolve to a declared module function.
func (g *callGraph) nodeOf(info *types.Info, call *ast.CallExpr) *cgNode {
	obj := calleeFunc(info, call)
	if obj == nil {
		return nil
	}
	return g.nodes[obj]
}

// maxFixpointRounds bounds summary propagation. Mutually recursive functions
// whose summaries keep changing past this many rounds are treated as unknown
// by the analyzers (conservative silence), never looped on forever.
const maxFixpointRounds = 8

// fixpoint drives per-function summary computation to a fixed point: compute
// is invoked over every node (in deterministic order) until one full round
// changes nothing or maxFixpointRounds is reached. compute reports whether
// the node's summary changed. The return value is true when the summaries
// converged.
func (g *callGraph) fixpoint(compute func(*cgNode) bool) bool {
	for round := 0; round < maxFixpointRounds; round++ {
		changed := false
		for _, n := range g.order {
			if compute(n) {
				changed = true
			}
		}
		if !changed {
			return true
		}
	}
	return false
}

// blockingFuncs computes, to a fixed point over the call graph, the set of
// module functions that may block the calling goroutine: a channel send or
// receive, a select with no default, a range over a channel, or a call to one
// of the blocking standard-library primitives (WaitGroup.Wait, Cond.Wait,
// Mutex/RWMutex Lock and RLock, time.Sleep). Spawned goroutine bodies do not
// make the spawner blocking. The result over-approximates: a function that
// only conditionally blocks is still reported as blocking.
func (g *callGraph) blockingFuncs() map[*cgNode]bool {
	blocking := map[*cgNode]bool{}
	for _, n := range g.order {
		if directlyBlocks(n) {
			blocking[n] = true
		}
	}
	g.fixpoint(func(n *cgNode) bool {
		if blocking[n] {
			return false
		}
		for _, e := range n.out {
			if blocking[e.callee] {
				blocking[n] = true
				return true
			}
		}
		return false
	})
	return blocking
}

// directlyBlocks reports whether n's own body (goroutine bodies excluded)
// contains a blocking operation.
func directlyBlocks(n *cgNode) bool {
	info := n.pkg.Info
	blocks := false
	var skip func(ast.Node) bool
	skip = func(node ast.Node) bool {
		if blocks {
			return false
		}
		switch node := node.(type) {
		case *ast.GoStmt:
			return false // the spawned body blocks its own goroutine
		case *ast.SendStmt:
			blocks = true
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				blocks = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(node.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					blocks = true
				}
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range node.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				blocks = true
			}
		case *ast.CallExpr:
			if f := calleeFunc(info, node); f != nil && isBlockingStdCall(f) {
				blocks = true
			}
		}
		return !blocks
	}
	ast.Inspect(n.decl.Body, skip)
	return blocks
}

// isBlockingStdCall recognizes the blocking standard-library calls the
// engine's blocking summary seeds from.
func isBlockingStdCall(f *types.Func) bool {
	pkg := f.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "sync":
		switch recvTypeName(f) {
		case "WaitGroup", "Cond":
			return f.Name() == "Wait"
		case "Mutex", "RWMutex":
			return f.Name() == "Lock" || f.Name() == "RLock"
		}
	case "time":
		return f.Name() == "Sleep"
	}
	return false
}

// recvTypeName returns the name of a method's receiver type ("" for
// package-level functions), pointer receivers dereferenced.
func recvTypeName(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if pt, ok := t.(*types.Pointer); ok {
		t = pt.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
