// Package gorecover_clean spawns every goroutine behind a deferred recover
// guard, in each of the accepted shapes.
//
//edgepc:goroutines-must-recover
package gorecover_clean

// InlineGuard: the canonical open-coded guard.
func InlineGuard(work func()) {
	go func() {
		defer func() {
			if v := recover(); v != nil {
				_ = v
			}
		}()
		work()
	}()
}

// guard is a shared recovery helper called via defer.
func guard() {
	if v := recover(); v != nil {
		_ = v
	}
}

// HelperGuard defers a named same-package function that recovers.
func HelperGuard(work func()) {
	go func() {
		defer guard()
		work()
	}()
}

// worker is a named goroutine body with its own leading guard.
func worker(ch chan int) {
	defer guard()
	for range ch {
	}
}

// NamedGuarded spawns the guarded named function.
func NamedGuarded(ch chan int) {
	go worker(ch)
}

// MultiDefer installs bookkeeping defers around the guard; any guard within
// the leading defer run counts.
func MultiDefer(work func(), done chan struct{}) {
	go func() {
		defer close(done)
		defer guard()
		work()
	}()
}
