// Package lockpair_bad exercises the lockpair analyzer's violation shapes:
// a lock leaked on one return path, a self-deadlock, an unlock of a lock
// that is not held, the read side of an RWMutex, and the same leak routed
// through a lock()/unlock() helper pair (interprocedural summaries).
package lockpair_bad

import (
	"errors"
	"sync"
)

var errFail = errors.New("fail")

type counter struct {
	mu sync.Mutex
	n  int
}

// LeakOnError locks, then returns early on the failure path without
// unlocking.
func (c *counter) LeakOnError(fail bool) int {
	c.mu.Lock() // want `c\.mu\.Lock is released on 1 return path\(s\) but still held on 1 other\(s\)`
	if fail {
		return -1
	}
	c.n++
	c.mu.Unlock()
	return c.n
}

// DoubleLock deadlocks against itself and then over-releases.
func (c *counter) DoubleLock() {
	c.mu.Lock()
	c.mu.Lock() // want `second c\.mu\.Lock without an intervening Unlock`
	c.mu.Unlock()
	c.mu.Unlock() // want `c\.mu\.Unlock but the lock was already released`
}

// UnlockedUnlock releases a local mutex that was never acquired.
func UnlockedUnlock() {
	var mu sync.Mutex
	mu.Unlock() // want `mu\.Unlock but no Lock is held`
}

type table struct {
	mu sync.RWMutex
	m  map[string]int
}

// ReadLeak leaks the read lock on the fast path; the read side is matched
// separately from Lock/Unlock.
func (t *table) ReadLeak(k string, fast bool) int {
	t.mu.RLock() // want `t\.mu\.RLock is released on 1 return path\(s\) but still held on 1 other\(s\)`
	if fast {
		return 0
	}
	v := t.m[k]
	t.mu.RUnlock()
	return v
}

// BareRUnlock releases a read lock that is not held.
func BareRUnlock() {
	var mu sync.RWMutex
	mu.RUnlock() // want `mu\.RUnlock but no RLock is held`
}

type guarded struct {
	mu sync.Mutex
}

func (g *guarded) lock()   { g.mu.Lock() }
func (g *guarded) unlock() { g.mu.Unlock() }

// HelperLeak acquires through the helper pair and leaks on the error path —
// the summaries see through lock()/unlock() exactly as through the direct
// calls.
func (g *guarded) HelperLeak(fail bool) error {
	g.lock() // want `g\.mu\.Lock is released on 1 return path\(s\) but still held on 1 other\(s\)`
	if fail {
		return errFail
	}
	g.unlock()
	return nil
}

// HelperDeadlock re-enters through the helper while already holding the lock.
func (g *guarded) HelperDeadlock() {
	g.lock()
	g.lock() // want `lock acquires g\.mu, which is already held on this path \(deadlock\)`
	g.unlock()
}
