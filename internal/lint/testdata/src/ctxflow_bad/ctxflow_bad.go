// Package serve (fixture ctxflow_bad) exercises the ctxflow analyzer, which
// applies to packages named "serve": dropping a held context by minting a
// fresh one at a blocking call, substituting nil, passing a zero deadline,
// and taking a deadline-carrying parameter without ever consulting it.
package serve

import (
	"context"
	"time"
)

// waitReady blocks on its context.
func waitReady(ctx context.Context) {
	<-ctx.Done()
}

// deadlineWait blocks and honors its deadline.
func deadlineWait(deadline time.Time, ch chan int) {
	if deadline.IsZero() {
		<-ch
	}
}

// BadSubstitute holds a context but mints a fresh one for the blocking call.
func BadSubstitute(ctx context.Context) {
	_ = ctx.Err()
	waitReady(context.Background()) // want `passes context\.Background\(\) to blocking callee ctxflow_bad\.waitReady instead of threading context\.Context ctx`
}

// BadTODO is the same drop via context.TODO.
func BadTODO(ctx context.Context) {
	_ = ctx.Err()
	waitReady(context.TODO()) // want `passes context\.TODO\(\) to blocking callee ctxflow_bad\.waitReady instead of threading context\.Context ctx`
}

// BadZeroDeadline erases the deadline it was handed.
func BadZeroDeadline(deadline time.Time, ch chan int) {
	_ = deadline.IsZero()
	deadlineWait(time.Time{}, ch) // want `passes a zero time\.Time to blocking callee ctxflow_bad\.deadlineWait instead of threading deadline deadline`
}

// BadUnused blocks without ever consulting the context it demands.
func BadUnused(ctx context.Context, ch chan int) int { // want `ctxflow_bad\.BadUnused takes context\.Context ctx but never consults or forwards it`
	return <-ch
}
