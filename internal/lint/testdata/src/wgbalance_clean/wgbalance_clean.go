// Package wgbalance_clean holds compliant WaitGroup patterns: Add before the
// go statement with Done deferred inside the spawned closure, per-iteration
// balance in fan-out loops, Done routed through a module helper (summaries),
// bulk Add(n) with consumer-loop Dones (unknown multiplicity stays silent),
// and a WaitGroup handed to unresolvable code (also silent).
package wgbalance_clean

import "sync"

func work() {}

// Classic is the canonical spawn pattern.
func Classic() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// FanOut balances one Add against one deferred Done per iteration.
func FanOut(jobs []int) {
	var wg sync.WaitGroup
	for range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

func signalDone(wg *sync.WaitGroup) {
	defer wg.Done()
	work()
}

// SpawnHelper spawns a named module function whose summary carries the Done.
func SpawnHelper() {
	var wg sync.WaitGroup
	wg.Add(1)
	go signalDone(&wg)
	wg.Wait()
}

// BulkConsumers adds up front and lets each consumer Done per drained job;
// the loop's surplus Dones make the multiplicity dynamic, which is silence,
// not a report.
func BulkConsumers(jobs chan int) {
	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func() {
			for range jobs {
			}
			wg.Done()
		}()
	}
	wg.Wait()
}

// Escaped hands the WaitGroup to code the call graph cannot resolve; its
// balance is unknown and unreported.
func Escaped(run func(*sync.WaitGroup)) {
	var wg sync.WaitGroup
	wg.Add(1)
	run(&wg)
	wg.Wait()
}
