// Package hotpath_clean is the clean counterpart of hotpath_bad:
// workspace-served buffers, *Into kernels, the capacity-reusing append idiom,
// and a documented suppression.
package hotpath_clean

import (
	"repro/internal/tensor"
)

// Frame allocates nothing: the activation comes from the workspace and the
// product is computed in place.
//
//edgepc:hotpath
func Frame(ws *tensor.Workspace, x, w *tensor.Matrix) (*tensor.Matrix, error) {
	y := ws.Get(x.Rows, w.Cols)
	if err := tensor.MatMulInto(y, x, w); err != nil {
		ws.Put(y)
		return nil, err
	}
	return y, nil
}

// Reuse appends into recycled capacity, which hotpathalloc allows.
//
//edgepc:hotpath
func Reuse(buf []int, n int) []int {
	buf = append(buf[:0], n)
	return buf
}

// Detach clones deliberately; the suppression documents why.
//
//edgepc:hotpath
func Detach(ws *tensor.Workspace, logits *tensor.Matrix) *tensor.Matrix {
	if ws.Owns(logits) {
		//edgepc:lint-ignore hotpathalloc the result must outlive the frame
		logits = logits.Clone()
	}
	return logits
}

// stage mirrors the model package's Stage interface; the executor below and
// the implementation each carry their own annotation because interface
// dispatch is not traversed.
type stage interface {
	Forward(ws *tensor.Workspace, x *tensor.Matrix) (*tensor.Matrix, error)
}

type mulStage struct{ w *tensor.Matrix }

// Forward serves its output from the workspace: clean under its own
// annotation.
//
//edgepc:hotpath
func (s mulStage) Forward(ws *tensor.Workspace, x *tensor.Matrix) (*tensor.Matrix, error) {
	y := ws.Get(x.Rows, s.w.Cols)
	if err := tensor.MatMulInto(y, x, s.w); err != nil {
		ws.Put(y)
		return nil, err
	}
	ws.Put(x)
	return y, nil
}

// Exec is the clean executor shape: interface dispatch over annotated
// stages, with the level slice reusing its capacity across frames.
//
//edgepc:hotpath
func Exec(ws *tensor.Workspace, stages []stage, levels []*tensor.Matrix, x *tensor.Matrix) ([]*tensor.Matrix, error) {
	levels = levels[:0]
	for _, s := range stages {
		y, err := s.Forward(ws, x)
		if err != nil {
			return nil, err
		}
		levels = append(levels[:0], y)
		x = y
	}
	return levels, nil
}
