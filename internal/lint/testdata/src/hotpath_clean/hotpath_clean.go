// Package hotpath_clean is the clean counterpart of hotpath_bad:
// workspace-served buffers, *Into kernels, the capacity-reusing append idiom,
// and a documented suppression.
package hotpath_clean

import (
	"repro/internal/tensor"
)

// Frame allocates nothing: the activation comes from the workspace and the
// product is computed in place.
//
//edgepc:hotpath
func Frame(ws *tensor.Workspace, x, w *tensor.Matrix) (*tensor.Matrix, error) {
	y := ws.Get(x.Rows, w.Cols)
	if err := tensor.MatMulInto(y, x, w); err != nil {
		ws.Put(y)
		return nil, err
	}
	return y, nil
}

// Reuse appends into recycled capacity, which hotpathalloc allows.
//
//edgepc:hotpath
func Reuse(buf []int, n int) []int {
	buf = append(buf[:0], n)
	return buf
}

// Detach clones deliberately; the suppression documents why.
//
//edgepc:hotpath
func Detach(ws *tensor.Workspace, logits *tensor.Matrix) *tensor.Matrix {
	if ws.Owns(logits) {
		//edgepc:lint-ignore hotpathalloc the result must outlive the frame
		logits = logits.Clone()
	}
	return logits
}
