// Package ignore_stale pairs a live suppression with a dead one: the first
// matches a real floateq finding and is honored silently; the second matches
// nothing and is reported as stale documentation.
package ignore_stale

// Compare has a real finding, deliberately suppressed: not stale.
func Compare(a, b float64) bool {
	//edgepc:lint-ignore floateq exact sentinel comparison is intentional here
	return a == b
}

// Scale is innocent; the suppression below covers nothing.
func Scale(a float64) float64 {
	//edgepc:lint-ignore floateq legacy comparison, since removed // want `stale lint-ignore: no floateq finding on this line or the next`
	return a * 2
}
