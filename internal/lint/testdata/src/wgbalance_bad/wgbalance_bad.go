// Package wgbalance_bad exercises the wgbalance analyzer's violation shapes:
// an Add with no reachable Done, an Add placed inside the spawned goroutine
// (racing with Wait), a per-iteration leak in a loop, and a Done with no Add.
package wgbalance_bad

import "sync"

func work() {}

// MissingDone spawns a worker that never signals completion.
func MissingDone() {
	var wg sync.WaitGroup
	wg.Add(1) // want `WaitGroup wg: 1 Add\(s\) but 0 Done\(s\) are statically reachable; Wait will never return`
	go func() {
		work()
	}()
	wg.Wait()
}

// AddInGoroutine increments the counter from inside the spawned body: Wait
// may run before the goroutine is scheduled and observe zero.
func AddInGoroutine() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want `WaitGroup wg\.Add inside a spawned goroutine races with Wait`
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// LoopLeak adds once per iteration but nothing ever calls Done.
func LoopLeak(jobs []int) {
	var wg sync.WaitGroup
	for range jobs {
		wg.Add(1) // want `WaitGroup wg gains 1 Add\(s\) but only 0 Done\(s\) per iteration`
		go work()
	}
	wg.Wait()
}

// ExtraDone decrements a counter that was never incremented.
func ExtraDone() {
	var wg sync.WaitGroup
	wg.Done() // want `WaitGroup wg: 0 Add\(s\) but 1 Done\(s\) are statically reachable; Wait will panic on a negative counter`
	wg.Wait()
}
