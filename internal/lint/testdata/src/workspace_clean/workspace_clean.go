// Package workspace_clean follows the Workspace ownership contract: every
// Get is Put back, returned, packed into a result, or covered by a frame
// Reset.
package workspace_clean

import (
	"repro/internal/tensor"
)

type result struct {
	logits *tensor.Matrix
}

// Paired Gets and Puts within one frame, LIFO.
func Paired(ws *tensor.Workspace) {
	a := ws.Get(4, 4)
	b := ws.Get(4, 4)
	ws.Put(b)
	ws.Put(a)
}

// Handed returns the buffer; the caller owns it now.
func Handed(ws *tensor.Workspace) *tensor.Matrix {
	out := ws.Get(4, 4)
	return out
}

// Packed hands the buffer onward inside a composite literal.
func Packed(ws *tensor.Workspace) result {
	out := ws.Get(4, 4)
	return result{logits: out}
}

// FrameDriver Resets the workspace, so per-buffer pairing does not apply.
func FrameDriver(ws *tensor.Workspace) {
	ws.Reset()
	tmp := ws.Get(8, 8)
	tmp.Data[0] = 1
}
