// Package chanlife_clean holds compliant channel lifecycles: send-then-close
// producer, close on one branch only (maybe-closed joins stay silent), a
// spawned producer feeding a local channel, a select receive with a default,
// and a channel handed to code outside the static call graph.
package chanlife_clean

// Producer sends everything, then closes, then drains.
func Producer(n int) int {
	ch := make(chan int, n)
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	sum := 0
	for v := range ch {
		sum += v
	}
	return sum
}

// CloseOnSignal closes on the stop path only; the send runs on the other
// path, where the channel is definitely open.
func CloseOnSignal(ch chan int, stop bool) {
	if stop {
		close(ch)
		return
	}
	ch <- 1
}

// FanIn spawns a producer for its local channel: the closure's send is
// visible, so the receive is not a dead block.
func FanIn() int {
	ch := make(chan int)
	go func() { ch <- 1 }()
	return <-ch
}

// PollLocal receives inside a select with a default: never a guaranteed
// block, even though nothing sends.
func PollLocal() int {
	ch := make(chan int, 1)
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}

// Escaped hands its channel to an unresolvable callee; lifecycle unknown,
// nothing reported.
func Escaped(feed func(chan int)) int {
	ch := make(chan int)
	feed(ch)
	return <-ch
}
