// Package intoalias_clean calls the *Into kernels with distinct buffers and
// agreeing shapes.
package intoalias_clean

import (
	"repro/internal/tensor"
)

// Product computes a 4x5 product into an exactly sized destination.
func Product() error {
	a := tensor.New(4, 3)
	b := tensor.New(3, 5)
	out := tensor.New(4, 5)
	return tensor.MatMulInto(out, a, b)
}

// Fuse concatenates into an exactly sized workspace buffer.
func Fuse(ws *tensor.Workspace) error {
	a := ws.Get(4, 2)
	b := ws.Get(4, 3)
	out := ws.Get(4, 5)
	err := tensor.ConcatInto(out, a, b)
	ws.Put(out)
	ws.Put(b)
	ws.Put(a)
	return err
}

// Unknown dimensions are left to the kernels' runtime checks.
func Unknown(out, a, b *tensor.Matrix) error {
	return tensor.MatMulBTInto(out, a, b)
}

// BackendProduct dispatches a correctly shaped product through the backend
// interface.
func BackendProduct(be tensor.Backend) error {
	a := tensor.New(4, 3)
	b := tensor.New(3, 5)
	out := tensor.New(4, 5)
	return be.MatMulInto(out, a, b)
}

// BackendUnknown leaves runtime-shaped backend calls to the kernels' checks.
func BackendUnknown(be tensor.Backend, out, a, b *tensor.Matrix) error {
	return be.MatMulBTInto(out, a, b)
}
