// Package hotpath_bad exercises hotpathalloc: annotated functions and their
// static callees calling allocating tensor kernels, plus make and growing
// append directly on the hot path.
package hotpath_bad

import (
	"repro/internal/tensor"
)

// Frame is an annotated hot-path root with direct violations.
//
//edgepc:hotpath
func Frame(x, w *tensor.Matrix) (*tensor.Matrix, error) {
	y, err := tensor.MatMul(x, w) // want `tensor\.MatMul allocates on a //edgepc:hotpath function`
	if err != nil {
		return nil, err
	}
	scratch := make([]float32, y.Rows) // want `make allocates on a //edgepc:hotpath function`
	_ = scratch
	return helper(y)
}

// helper is not annotated itself but is statically reachable from Frame, so
// its allocating call is reported against the root.
func helper(y *tensor.Matrix) (*tensor.Matrix, error) {
	return tensor.Concat(y, y) // want `tensor\.Concat allocates and is reachable from //edgepc:hotpath function hotpath_bad\.Frame`
}

// Grow demonstrates the growing-append and Clone findings.
//
//edgepc:hotpath
func Grow(dst []int, y *tensor.Matrix) []int {
	dst = append(dst, y.Rows) // want `append may grow its backing array`
	_ = y.Clone()             // want `tensor\.Clone allocates on a //edgepc:hotpath function`
	return dst
}
