// Package hotpath_bad exercises hotpathalloc: annotated functions and their
// static callees calling allocating tensor kernels, plus make and growing
// append directly on the hot path.
package hotpath_bad

import (
	"repro/internal/tensor"
)

// Frame is an annotated hot-path root with direct violations.
//
//edgepc:hotpath
func Frame(x, w *tensor.Matrix) (*tensor.Matrix, error) {
	y, err := tensor.MatMul(x, w) // want `tensor\.MatMul allocates on a //edgepc:hotpath function`
	if err != nil {
		return nil, err
	}
	scratch := make([]float32, y.Rows) // want `make allocates on a //edgepc:hotpath function`
	_ = scratch
	return helper(y)
}

// helper is not annotated itself but is statically reachable from Frame, so
// its allocating call is reported against the root.
func helper(y *tensor.Matrix) (*tensor.Matrix, error) {
	return tensor.Concat(y, y) // want `tensor\.Concat allocates and is reachable from //edgepc:hotpath function hotpath_bad\.Frame`
}

// Grow demonstrates the growing-append and Clone findings.
//
//edgepc:hotpath
func Grow(dst []int, y *tensor.Matrix) []int {
	dst = append(dst, y.Rows) // want `append may grow its backing array`
	_ = y.Clone()             // want `tensor\.Clone allocates on a //edgepc:hotpath function`
	return dst
}

// stage mimics the model package's Stage interface: the executor dispatches
// through it, which the analyzer deliberately does not traverse — so each
// implementation must carry (and is checked under) its own annotation.
type stage interface {
	Forward(x *tensor.Matrix) (*tensor.Matrix, error)
}

type allocStage struct{}

// Forward is annotated per the executor contract; its allocating kernel is a
// direct finding here, independent of any caller.
//
//edgepc:hotpath
func (s allocStage) Forward(x *tensor.Matrix) (*tensor.Matrix, error) {
	return tensor.MatMul(x, x) // want `tensor\.MatMul allocates on a //edgepc:hotpath function`
}

// Exec dispatches through the interface: nothing to report at the call site,
// the per-implementation annotations carry the contract.
//
//edgepc:hotpath
func Exec(stages []stage, x *tensor.Matrix) (*tensor.Matrix, error) {
	for _, s := range stages {
		y, err := s.Forward(x)
		if err != nil {
			return nil, err
		}
		x = y
	}
	return x, nil
}
