// Package intoalias_bad aliases *Into destinations with their sources and
// mismatches compile-time-constant shapes.
package intoalias_bad

import (
	"repro/internal/tensor"
)

// Alias reuses an input as the destination.
func Alias(a, b *tensor.Matrix) error {
	return tensor.MatMulInto(a, a, b) // want `MatMulInto destination a aliases an input`
}

// GatherSelf gathers a matrix into itself.
func GatherSelf(m *tensor.Matrix, idx []int) error {
	return tensor.GatherInto(m, m, idx) // want `GatherInto destination m aliases an input`
}

// Shapes gets the constant dimensions wrong.
func Shapes() error {
	a := tensor.New(4, 3)
	b := tensor.New(3, 5)
	out := tensor.New(4, 4)
	if err := tensor.MatMulInto(out, a, b); err != nil { // want `MatMulInto destination is 4x4 but the product is 4x5`
		return err
	}
	c := tensor.New(2, 3)
	d := tensor.New(4, 3)
	dst := tensor.New(2, 3)
	return tensor.MatMulInto(dst, c, d) // want `MatMulInto inputs have incompatible shapes 2x3 and 4x3`
}

// ConcatShapes sizes the fused buffer one column short.
func ConcatShapes(ws *tensor.Workspace) error {
	a := ws.Get(4, 2)
	b := ws.Get(4, 3)
	out := ws.Get(4, 4)
	err := tensor.ConcatInto(out, a, b) // want `ConcatInto destination is 4x4 but \[a\|b\] is 4x5`
	ws.Put(out)
	ws.Put(b)
	ws.Put(a)
	return err
}

// BackendAlias dispatches through the tensor.Backend interface; the analyzer
// resolves the interface method to its declaring package, so backend calls
// are checked exactly like the package-level kernels.
func BackendAlias(be tensor.Backend, a, b *tensor.Matrix) error {
	return be.MatMulInto(a, a, b) // want `MatMulInto destination a aliases an input`
}

// BackendShapes mismatches constant shapes through a backend value.
func BackendShapes(be tensor.Backend) error {
	a := tensor.New(4, 3)
	b := tensor.New(3, 5)
	out := tensor.New(4, 4)
	if err := be.MatMulInto(out, a, b); err != nil { // want `MatMulInto destination is 4x4 but the product is 4x5`
		return err
	}
	c := tensor.New(4, 2)
	d := tensor.New(4, 3)
	fused := tensor.New(4, 4)
	return be.ConcatInto(fused, c, d) // want `ConcatInto destination is 4x4 but \[a\|b\] is 4x5`
}
