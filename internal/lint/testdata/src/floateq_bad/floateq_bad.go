// Package floateq_bad compares floating-point values exactly. The
// zero-sentinel comparison and the suppressed comparison are negative cases:
// they must stay quiet.
package floateq_bad

// Converged compares two floats with ==.
func Converged(loss, prev float64) bool {
	return loss == prev // want `floating-point == comparison`
}

// Changed compares with !=.
func Changed(a, b float32) bool {
	return a != b // want `floating-point != comparison`
}

// SparsitySkip is the exempt zero-sentinel idiom: not flagged.
func SparsitySkip(av float32) bool {
	return av == 0
}

// Ignored documents an exact comparison; the suppression keeps it quiet.
func Ignored(a, b float64) bool {
	//edgepc:lint-ignore floateq golden bit-identity check
	return a == b
}
