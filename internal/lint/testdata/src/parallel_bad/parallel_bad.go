// Package parallel_bad writes variables captured from the enclosing scope
// inside closures that run concurrently.
package parallel_bad

import (
	"repro/internal/parallel"
)

// Sum races: every worker writes the same captured accumulator.
func Sum(xs []float32) float32 {
	var total float32
	parallel.For(len(xs), func(i int) {
		total += xs[i] // want `closure passed to parallel\.For writes captured variable total`
	})
	return total
}

// Count races on a captured counter via ++.
func Count(n int) int {
	count := 0
	parallel.ForChunks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			count++ // want `closure passed to parallel\.ForChunks writes captured variable count`
		}
	})
	return count
}

// Last races through a bare go statement.
func Last(xs []int) int {
	last := 0
	done := make(chan struct{})
	go func() {
		for _, x := range xs {
			last = x // want `closure passed to go statement writes captured variable last`
		}
		close(done)
	}()
	<-done
	return last
}
