// Package floateq_clean compares floats through tolerances, zero sentinels,
// or not at all.
package floateq_clean

import "math"

// Close compares with a tolerance.
func Close(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

// ZeroDefault is the exempt zero-means-default config sentinel.
func ZeroDefault(v float64) float64 {
	if v == 0 {
		return 0.5
	}
	return v
}

// Ints are not floats.
func Ints(a, b int) bool {
	return a == b
}
