// Package ignore_bad holds malformed suppression directives. The runner
// reports each one instead of honoring it, so the comparisons below still
// fire — a typo cannot silently disable a check.
package ignore_bad

// BadDirectives carries one malformed directive per failure mode.
func BadDirectives(a, b float64) bool {
	//edgepc:lint-ignore
	x := a == b
	//edgepc:lint-ignore nosuch disable everything
	y := a != b
	//edgepc:lint-ignore floateq
	return x && y && a == b
}
