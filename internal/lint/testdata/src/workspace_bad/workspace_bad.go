// Package workspace_bad violates the tensor.Workspace ownership contract:
// leaked, escaped, and discarded Get results.
package workspace_bad

import (
	"repro/internal/tensor"
)

// Holder outlives a frame.
type Holder struct {
	buf *tensor.Matrix
}

var global *tensor.Matrix

// Leak gets a buffer and neither Puts nor hands it onward.
func Leak(ws *tensor.Workspace) {
	tmp := ws.Get(4, 4) // want `workspace buffer tmp is neither Put nor handed onward`
	tmp.Data[0] = 1
}

// Escape parks a workspace buffer in a struct field.
func Escape(ws *tensor.Workspace, h *Holder) {
	buf := ws.Get(4, 4)
	h.buf = buf // want `workspace buffer buf stored in h\.buf`
	ws.Put(buf)
}

// Park stores a workspace buffer in a package variable.
func Park(ws *tensor.Workspace) {
	global = ws.Get(4, 4) // want `Workspace\.Get result stored in package variable global`
}

// Discard drops the Get result entirely.
func Discard(ws *tensor.Workspace) {
	ws.Get(2, 2) // want `Workspace\.Get result discarded`
}
