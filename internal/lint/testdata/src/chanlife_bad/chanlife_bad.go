// Package chanlife_bad exercises the chanlife analyzer's violation shapes:
// send after a definite close, double close (direct and through a helper
// whose summary closes the channel), and a receive on a local channel that
// nothing can ever send to or close.
package chanlife_bad

// SendAfterClose sends on a channel every path has already closed.
func SendAfterClose() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1 // want `send on ch, which is closed on every path reaching here`
}

// DoubleClose closes the same channel twice in sequence.
func DoubleClose(done chan struct{}) {
	close(done)
	close(done) // want `close of done, which is already closed on every path reaching here`
}

type pipe struct {
	out chan int
}

func (p *pipe) shutdown() {
	close(p.out)
}

// DoubleViaHelper closes through the helper, then again directly — the
// helper's summary marks p.out closed at the call site.
func DoubleViaHelper(p *pipe) {
	p.shutdown()
	close(p.out) // want `close of p\.out, which is already closed on every path reaching here`
}

// RecvForever receives on a channel that never escapes this function and has
// no sender and no close anywhere in it.
func RecvForever() {
	ch := make(chan int)
	<-ch // want `receive on ch blocks forever`
}

// RangeForever ranges over the same kind of dead channel.
func RangeForever() int {
	ch := make(chan int)
	n := 0
	for v := range ch { // want `receive on ch blocks forever`
		n += v
	}
	return n
}
