// Package serve (fixture ctxflow_clean) holds compliant deadline threading:
// forwarding the held context, deriving a child context, entry points that
// own no deadline and may mint one, and non-blocking functions that are free
// to ignore their context.
package serve

import (
	"context"
	"time"
)

func waitDone(ctx context.Context) {
	<-ctx.Done()
}

func deadlineWait(deadline time.Time, ch chan int) {
	if deadline.IsZero() {
		<-ch
	}
}

// GoodThread forwards its context to the blocking callee.
func GoodThread(ctx context.Context) {
	waitDone(ctx)
}

// GoodDerived threads a derived child context.
func GoodDerived(ctx context.Context) {
	child, cancel := context.WithCancel(ctx)
	defer cancel()
	waitDone(child)
}

// GoodDeadline passes its own deadline through.
func GoodDeadline(deadline time.Time, ch chan int) {
	deadlineWait(deadline, ch)
}

// Root owns no deadline: minting a fresh context here is legitimate.
func Root() {
	waitDone(context.Background())
}

// NonBlocking never blocks, so its unused context is not a dropped deadline.
func NonBlocking(ctx context.Context) int {
	return 1
}
