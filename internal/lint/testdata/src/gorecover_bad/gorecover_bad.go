// Package gorecover_bad spawns goroutines without recover guards in a
// package that promises panic isolation.
//
//edgepc:goroutines-must-recover
package gorecover_bad

// Unguarded spawns an inline body with no deferred recover at all.
func Unguarded(work func()) {
	go func() { // want `goroutine body the function literal must install a deferred recover guard`
		work()
	}()
}

// loop has a defer, but it never recovers.
func loop(ch chan int) {
	defer close(ch)
	for range ch {
	}
}

// NamedUnguarded spawns a named function whose leading defer does not
// recover.
func NamedUnguarded(ch chan int) {
	go loop(ch) // want `goroutine body loop must install a deferred recover guard`
}

// LateGuard installs the recover only after real work has started: the first
// statement can already panic with nothing deferred.
func LateGuard(work func()) {
	go func() { // want `goroutine body the function literal must install a deferred recover guard`
		work()
		defer func() { recover() }()
		work()
	}()
}

// NestedRecover recovers inside a nested literal, which the spec makes a
// no-op for the goroutine's frame.
func NestedRecover(work func()) {
	go func() { // want `goroutine body the function literal must install a deferred recover guard`
		defer func() {
			cleanup := func() { recover() }
			cleanup()
		}()
		work()
	}()
}

// Opaque spawns a function value the analyzer cannot resolve to a body.
func Opaque(work func()) {
	go work() // want `cannot be resolved to a body in this package`
}
