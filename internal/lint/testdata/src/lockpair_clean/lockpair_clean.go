// Package lockpair_clean holds compliant locking patterns the lockpair
// analyzer must stay silent on: defer-unlock (direct and via func literal),
// branch-balanced unlocks, early return before acquisition, the helper-pair
// idiom, TryLock's conditional acquisition, and read-side counting.
package lockpair_clean

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

// DeferUnlock is the canonical pattern: every return path releases.
func (c *counter) DeferUnlock(fail bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fail {
		return -1
	}
	c.n++
	return c.n
}

// DeferLiteral releases through a deferred func literal.
func (c *counter) DeferLiteral() {
	c.mu.Lock()
	defer func() {
		c.n++
		c.mu.Unlock()
	}()
	c.n++
}

// BranchBalanced unlocks explicitly on both paths.
func (c *counter) BranchBalanced(fail bool) int {
	c.mu.Lock()
	if fail {
		c.mu.Unlock()
		return -1
	}
	c.n++
	c.mu.Unlock()
	return c.n
}

// EarlyReturn exits before acquiring: no lock is held on that path.
func (c *counter) EarlyReturn(skip bool) {
	if skip {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// TryLock acquires conditionally; the analyzer cannot pair it statically and
// stays silent.
func (c *counter) TryLock() bool {
	if c.mu.TryLock() {
		c.n++
		c.mu.Unlock()
		return true
	}
	return false
}

type guarded struct {
	mu sync.Mutex
	v  int
}

func (g *guarded) lock()   { g.mu.Lock() }
func (g *guarded) unlock() { g.mu.Unlock() }

// HelperPair uses the lock()/unlock() helpers with defer — the summaries
// release on every path.
func (g *guarded) HelperPair(fail bool) int {
	g.lock()
	defer g.unlock()
	if fail {
		return -1
	}
	g.v++
	return g.v
}

type table struct {
	mu sync.RWMutex
	m  map[string]int
}

// Read holds the read lock across the lookup; the write side is untouched.
func (t *table) Read(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

// NestedRead takes the read lock twice (legal for RWMutex) and releases both.
func (t *table) NestedRead(k string) int {
	t.mu.RLock()
	t.mu.RLock()
	v := t.m[k]
	t.mu.RUnlock()
	t.mu.RUnlock()
	return v
}

// WriteThenRead switches sides in sequence.
func (t *table) WriteThenRead(k string, v int) int {
	t.mu.Lock()
	t.m[k] = v
	t.mu.Unlock()
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}
