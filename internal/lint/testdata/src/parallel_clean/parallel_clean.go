// Package parallel_clean uses the safe concurrency idioms: index-addressed
// writes, worker-local state, and the per-worker slot reduction.
package parallel_clean

import (
	"repro/internal/parallel"
)

// Fill writes only through the loop index — each iteration owns its slot.
func Fill(dst []float32) {
	parallel.For(len(dst), func(i int) {
		dst[i] = float32(i)
	})
}

// Sum reduces with a per-worker slot and a serial combine.
func Sum(xs []float32) float32 {
	partial := make([]float32, parallel.Workers(len(xs)))
	parallel.ForWorkers(len(xs), func(w, lo, hi int) {
		var local float32
		for _, v := range xs[lo:hi] {
			local += v
		}
		partial[w] = local
	})
	var total float32
	for _, v := range partial {
		total += v
	}
	return total
}
