// Package gorecover_unmarked never opted into the invariant: unguarded
// goroutines are ordinary Go here and must not be flagged.
package gorecover_unmarked

// Unguarded is fine outside a marked package.
func Unguarded(work func()) {
	go func() {
		work()
	}()
}
