// Package typeerr parses but deliberately fails type checking; load_test.go
// asserts the loader surfaces this as a typed *LoadError (kind type).
package typeerr

func Mismatched() int {
	return "not an int"
}
