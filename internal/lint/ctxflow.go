package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces deadline threading in the serving layer: a function in a
// package named "serve" that takes a cancellation- or deadline-carrying
// parameter — a context.Context, a *faultinject.Plan, or a time.Time whose
// name mentions "deadline" — must not drop it:
//
//   - passing context.Background(), context.TODO(), nil, or a zero composite
//     literal to a module callee that may block (per the call graph's
//     blocking fixpoint) and accepts the same kind of value is reported:
//     the callee would wait forever while the caller's deadline expires;
//   - a named parameter of such a kind that the function never reads or
//     forwards at all, in a function that itself may block, is reported as a
//     dropped deadline.
//
// May-block is the engine's over-approximation (channel operations, select
// without default, WaitGroup/Cond Wait, Mutex/RWMutex Lock, time.Sleep,
// transitively through module calls). The check stays silent on functions
// that cannot block: dropping a context on a pure computation is harmless.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "serve-layer functions must thread their Context/Plan/deadline to blocking callees, not replace it with Background/TODO/nil or silently drop it",
	Run:  runCtxFlow,
}

// ctxKind classifies deadline-carrying parameter types.
type ctxKind int

const (
	ctxNone     ctxKind = iota
	ctxContext          // context.Context
	ctxPlan             // *faultinject.Plan
	ctxDeadline         // time.Time named *deadline*
)

func (k ctxKind) String() string {
	switch k {
	case ctxContext:
		return "context.Context"
	case ctxPlan:
		return "*faultinject.Plan"
	case ctxDeadline:
		return "deadline"
	}
	return "none"
}

// ctxKindOf classifies one parameter by type (and, for time.Time, by name).
func ctxKindOf(t types.Type, name string) ctxKind {
	if pt, ok := t.(*types.Pointer); ok {
		if named, ok := pt.Elem().(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "Plan" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "faultinject") {
				return ctxPlan
			}
		}
		return ctxNone
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ctxNone
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ctxNone
	}
	switch {
	case obj.Name() == "Context" && obj.Pkg().Path() == "context":
		return ctxContext
	case obj.Name() == "Time" && obj.Pkg().Path() == "time" && strings.Contains(strings.ToLower(name), "deadline"):
		return ctxDeadline
	}
	return ctxNone
}

func runCtxFlow(p *Pass) {
	g := p.callGraph()
	blocking := g.blockingFuncs()
	for _, n := range g.order {
		if n.pkg.Types.Name() != "serve" {
			continue
		}
		params := ctxParams(n)
		if len(params) == 0 {
			continue
		}
		checkCtxSubstitution(p, g, n, blocking, params)
		checkCtxUnused(p, n, blocking, params)
	}
}

// ctxParam is one deadline-carrying parameter of the function under check.
type ctxParam struct {
	obj  types.Object
	kind ctxKind
}

func ctxParams(n *cgNode) []ctxParam {
	var out []ctxParam
	for _, field := range n.decl.Type.Params.List {
		for _, name := range field.Names {
			obj := n.pkg.Info.Defs[name]
			if obj == nil || name.Name == "_" {
				continue
			}
			if k := ctxKindOf(obj.Type(), name.Name); k != ctxNone {
				out = append(out, ctxParam{obj: obj, kind: k})
			}
		}
	}
	return out
}

// checkCtxSubstitution reports arguments that replace the caller's deadline
// with a fresh/empty one at a call into a module function that may block.
func checkCtxSubstitution(p *Pass, g *callGraph, n *cgNode, blocking map[*cgNode]bool, params []ctxParam) {
	info := n.pkg.Info
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := g.nodeOf(info, call)
		if callee == nil || !blocking[callee] || call.Ellipsis.IsValid() {
			return true
		}
		sig, ok := callee.obj.Type().(*types.Signature)
		if !ok || sig.Variadic() {
			return true
		}
		for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
			pv := sig.Params().At(i)
			kind := ctxKindOf(pv.Type(), pv.Name())
			if kind == ctxNone {
				continue
			}
			held := holdsKind(params, kind)
			if held == nil {
				continue
			}
			if form := dropForm(info, call.Args[i], kind); form != "" {
				p.Reportf(call.Args[i].Pos(), "passes %s to blocking callee %s instead of threading %s %s", form, funcName(callee.obj), held.kind, held.obj.Name())
			}
		}
		return true
	})
}

func holdsKind(params []ctxParam, k ctxKind) *ctxParam {
	for i := range params {
		if params[i].kind == k {
			return &params[i]
		}
	}
	return nil
}

// dropForm recognizes the argument shapes that discard a deadline: fresh
// contexts, nil, and zero composite literals. Anything else — the parameter
// itself, a derived context, a computed deadline — is accepted.
func dropForm(info *types.Info, arg ast.Expr, kind ctxKind) string {
	switch e := ast.Unparen(arg).(type) {
	case *ast.CallExpr:
		f := calleeFunc(info, e)
		if f != nil && f.Pkg() != nil && f.Pkg().Path() == "context" && (f.Name() == "Background" || f.Name() == "TODO") {
			return "context." + f.Name() + "()"
		}
	case *ast.Ident:
		if e.Name == "nil" && info.Uses[e] == nil && info.Defs[e] == nil {
			return "nil"
		}
	case *ast.CompositeLit:
		if len(e.Elts) == 0 && kind == ctxDeadline {
			return "a zero time.Time"
		}
	case *ast.UnaryExpr:
		if cl, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok && len(cl.Elts) == 0 && kind == ctxPlan {
			return "an empty Plan"
		}
	}
	return ""
}

// checkCtxUnused reports a deadline-carrying parameter that a may-block
// function neither reads nor forwards.
func checkCtxUnused(p *Pass, n *cgNode, blocking map[*cgNode]bool, params []ctxParam) {
	if !blocking[n] {
		return
	}
	used := map[types.Object]bool{}
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		if id, ok := node.(*ast.Ident); ok {
			if obj := n.pkg.Info.Uses[id]; obj != nil {
				used[obj] = true
			}
		}
		return true
	})
	for _, cp := range params {
		if !used[cp.obj] {
			p.Reportf(cp.obj.Pos(), "%s takes %s %s but never consults or forwards it on a path that may block; thread it or drop the parameter", funcName(n.obj), cp.kind, cp.obj.Name())
		}
	}
}
