package lint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// brokenLoader builds a private loader per test: failed loads must not
// pollute the suite-shared fixture loader, and nothing below may panic.
func brokenLoader(t *testing.T) *Loader {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// wantLoadError asserts err is a *LoadError of the given kind.
func wantLoadError(t *testing.T, err error, kind LoadErrorKind) *LoadError {
	t.Helper()
	if err == nil {
		t.Fatalf("load succeeded, want *LoadError kind %q", kind)
	}
	var le *LoadError
	if !errors.As(err, &le) {
		t.Fatalf("error is %T (%v), want *LoadError", err, err)
	}
	if le.Kind != kind {
		t.Fatalf("LoadError kind = %q (%v), want %q", le.Kind, le, kind)
	}
	if le.Unwrap() == nil {
		t.Errorf("LoadError has no underlying cause: %v", le)
	}
	return le
}

func TestLoadSyntaxError(t *testing.T) {
	// The unparseable file is generated at test time rather than committed:
	// a checked-in syntax error would fail the repo-wide gofmt gate in ci.sh.
	l := brokenLoader(t)
	dir, err := os.MkdirTemp(l.Root(), "lint-syntaxerr-")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	src := "package syntaxerr\n\nfunc Broken( {\n"
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = l.LoadDir(dir)
	wantLoadError(t, err, LoadParse)
}

func TestLoadTypeError(t *testing.T) {
	l := brokenLoader(t)
	_, err := l.LoadDir(filepath.Join("testdata", "broken", "typeerr"))
	le := wantLoadError(t, err, LoadType)
	if le.Path == "" {
		t.Errorf("type error carries no package path: %v", le)
	}
}

func TestLoadOutsideModule(t *testing.T) {
	l := brokenLoader(t)
	_, err := l.LoadDir(t.TempDir())
	wantLoadError(t, err, LoadOutsideModule)
}

func TestLoadNoGoFiles(t *testing.T) {
	l := brokenLoader(t)
	dir, err := os.MkdirTemp(l.Root(), "lint-empty-")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	_, err = l.LoadDir(dir)
	wantLoadError(t, err, LoadNoFiles)
}

// TestLoadBrokenNeverCached asserts a failed package is retryable: the
// loader does not cache the failure or the partial package.
func TestLoadBrokenNeverCached(t *testing.T) {
	l := brokenLoader(t)
	dir := filepath.Join("testdata", "broken", "typeerr")
	if _, err := l.LoadDir(dir); err == nil {
		t.Fatal("first load succeeded unexpectedly")
	}
	for _, p := range l.Module() {
		if filepath.Base(p.Dir) == "typeerr" {
			t.Fatalf("broken package was cached: %+v", p)
		}
	}
	if _, err := l.LoadDir(dir); err == nil {
		t.Fatal("second load succeeded unexpectedly")
	}
}
