package lint

import (
	"go/ast"
	"go/types"
)

// RecoverDirective opts a package into the gorecover check: place it in any
// comment of the package (conventionally next to the worker-loop it
// protects) and every go statement in that package must spawn a body whose
// first statements install a deferred recover guard.
const RecoverDirective = "//edgepc:goroutines-must-recover"

// GoRecover enforces the serving-layer liveness invariant: a panic escaping
// any goroutine kills the whole process, so in packages that promise panic
// isolation (marked with //edgepc:goroutines-must-recover) every goroutine
// body must begin with deferred statements, at least one of which recovers —
// either an inline `defer func() { recover() ... }()` or a deferred call to
// a same-package function that calls recover directly. recover only works
// when called by the deferred function itself (Go spec), so the check
// demands a direct call, not one buried in a nested function literal.
var GoRecover = &Analyzer{
	Name: "gorecover",
	Doc:  "goroutines spawned in packages marked " + RecoverDirective + " must install a deferred recover guard before any other statement",
	Run:  runGoRecover,
}

func runGoRecover(p *Pass) {
	for _, pkg := range p.Targets {
		if !packageOptsIntoRecover(pkg) {
			continue
		}
		decls := map[types.Object]*ast.FuncDecl{}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Name != nil {
					if obj := pkg.Info.Defs[fd.Name]; obj != nil {
						decls[obj] = fd
					}
				}
			}
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				body, name := goroutineBody(pkg, decls, g)
				if body == nil {
					p.Reportf(g.Pos(), "go statement spawns %s, which cannot be resolved to a body in this package; spawn a package-local function that installs a deferred recover guard", name)
					return true
				}
				if !leadingRecoverGuard(pkg, decls, body) {
					p.Reportf(g.Pos(), "goroutine body %s must install a deferred recover guard before any other statement", name)
				}
				return true
			})
		}
	}
}

// packageOptsIntoRecover reports whether any comment in the package carries
// RecoverDirective.
func packageOptsIntoRecover(pkg *Package) bool {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			if hasDirective(cg, RecoverDirective) {
				return true
			}
		}
	}
	return false
}

// goroutineBody resolves the body a go statement will run: an inline
// function literal, or the declaration of a same-package function or
// concrete method. Unresolvable targets (other packages, interface methods,
// function values) return nil.
func goroutineBody(pkg *Package, decls map[types.Object]*ast.FuncDecl, g *ast.GoStmt) (*ast.BlockStmt, string) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body, "the function literal"
	}
	f := calleeFunc(pkg.Info, g.Call)
	if f == nil {
		return nil, "a function value"
	}
	if fd := decls[f]; fd != nil && fd.Body != nil {
		return fd.Body, f.Name()
	}
	return nil, f.FullName()
}

// leadingRecoverGuard reports whether the body starts with a run of defer
// statements of which at least one recovers. Scanning stops at the first
// non-defer statement: a guard installed after real work has begun leaves a
// window where a panic escapes.
func leadingRecoverGuard(pkg *Package, decls map[types.Object]*ast.FuncDecl, body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		ds, ok := stmt.(*ast.DeferStmt)
		if !ok {
			return false
		}
		if deferRecovers(pkg, decls, ds) {
			return true
		}
	}
	return false
}

// deferRecovers reports whether one defer statement is a recover guard: the
// deferred function — an inline literal or a resolvable same-package
// function — calls the recover builtin directly.
func deferRecovers(pkg *Package, decls map[types.Object]*ast.FuncDecl, ds *ast.DeferStmt) bool {
	if lit, ok := ast.Unparen(ds.Call.Fun).(*ast.FuncLit); ok {
		return callsRecoverDirectly(pkg.Info, lit.Body)
	}
	f := calleeFunc(pkg.Info, ds.Call)
	if f == nil {
		return false
	}
	fd := decls[f]
	return fd != nil && fd.Body != nil && callsRecoverDirectly(pkg.Info, fd.Body)
}

// callsRecoverDirectly reports whether the body calls recover() outside any
// nested function literal — the only position where recover stops a panic
// (a nested literal is a different function, whose recover is a no-op for
// the deferred frame).
func callsRecoverDirectly(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "recover" {
			found = true
			return false
		}
		return true
	})
	return found
}
