package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// IntoAlias catches the statically decidable misuses of the *Into kernels:
// a destination expression that is syntactically identical to one of the
// inputs (the kernels reject shared backing arrays at runtime, but only for
// the buffer-start alias a Workspace misuse produces), and shape mismatches
// between destinations and inputs whose dimensions are compile-time
// constants (buffers obtained from tensor.New or Workspace.Get with literal
// sizes, as fixture and test code writes them). Dimensions that are runtime
// expressions are not analyzed — those remain the kernels' runtime checks.
var IntoAlias = &Analyzer{
	Name: "intoalias",
	Doc:  "*Into kernel calls must not alias dst with a src and constant shapes must agree",
	Run:  runIntoAlias,
}

type dims struct {
	rows, cols int
	known      bool
}

func runIntoAlias(p *Pass) {
	tensorPath := p.ModPath + "/internal/tensor"
	for _, pkg := range p.Targets {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkIntoCalls(p, pkg, fd, tensorPath)
			}
		}
	}
}

func checkIntoCalls(p *Pass, pkg *Package, fd *ast.FuncDecl, tensorPath string) {
	info := pkg.Info

	// Pass 1: track locals bound to tensor.New(r, c) or Workspace.Get(r, c)
	// with constant arguments. A variable assigned more than once becomes
	// unknown — the tracking is deliberately conservative.
	shapes := map[*types.Var]dims{}
	assigned := map[*types.Var]int{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj, _ := info.Defs[id].(*types.Var)
			if obj == nil {
				obj, _ = info.Uses[id].(*types.Var)
			}
			if obj == nil {
				continue
			}
			assigned[obj]++
			if assigned[obj] > 1 {
				shapes[obj] = dims{}
				continue
			}
			if d, ok := allocDims(info, rhs, tensorPath); ok {
				shapes[obj] = d
			}
		}
		return true
	})

	dimsOf := func(e ast.Expr) dims {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return dims{}
		}
		obj, _ := info.Uses[id].(*types.Var)
		if obj == nil {
			return dims{}
		}
		return shapes[obj]
	}

	// Pass 2: check every *Into call.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeFunc(info, call)
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != tensorPath {
			return true
		}
		switch obj.Name() {
		case "MatMulInto", "MatMulBTInto", "MatMulATInto":
			if len(call.Args) != 3 {
				return true
			}
			out, a, b := call.Args[0], call.Args[1], call.Args[2]
			reportAlias(p, call, obj.Name(), out, a, b)
			od, ad, bd := dimsOf(out), dimsOf(a), dimsOf(b)
			if !od.known || !ad.known || !bd.known {
				return true
			}
			var wantR, wantC int
			var inner bool
			switch obj.Name() {
			case "MatMulInto": // a·b: (m×k)·(k×n)
				inner = ad.cols == bd.rows
				wantR, wantC = ad.rows, bd.cols
			case "MatMulBTInto": // a·bᵀ: (m×k)·(n×k)ᵀ
				inner = ad.cols == bd.cols
				wantR, wantC = ad.rows, bd.rows
			case "MatMulATInto": // aᵀ·b: (k×m)ᵀ·(k×n)
				inner = ad.rows == bd.rows
				wantR, wantC = ad.cols, bd.cols
			}
			if !inner {
				p.Reportf(call.Pos(), "%s inputs have incompatible shapes %dx%d and %dx%d", obj.Name(), ad.rows, ad.cols, bd.rows, bd.cols)
				return true
			}
			if od.rows != wantR || od.cols != wantC {
				p.Reportf(call.Pos(), "%s destination is %dx%d but the product is %dx%d", obj.Name(), od.rows, od.cols, wantR, wantC)
			}
		case "ConcatInto":
			if len(call.Args) != 3 {
				return true
			}
			out, a, b := call.Args[0], call.Args[1], call.Args[2]
			reportAlias(p, call, obj.Name(), out, a, b)
			od, ad, bd := dimsOf(out), dimsOf(a), dimsOf(b)
			if !od.known || !ad.known || !bd.known {
				return true
			}
			if ad.rows != bd.rows {
				p.Reportf(call.Pos(), "ConcatInto inputs have %d and %d rows", ad.rows, bd.rows)
				return true
			}
			if od.rows != ad.rows || od.cols != ad.cols+bd.cols {
				p.Reportf(call.Pos(), "ConcatInto destination is %dx%d but [a|b] is %dx%d", od.rows, od.cols, ad.rows, ad.cols+bd.cols)
			}
		case "GatherInto":
			if len(call.Args) != 3 {
				return true
			}
			out, src := call.Args[0], call.Args[1]
			reportAlias(p, call, obj.Name(), out, src)
			od, sd := dimsOf(out), dimsOf(src)
			if od.known && sd.known && od.cols != sd.cols {
				p.Reportf(call.Pos(), "GatherInto destination has %d columns but the source has %d", od.cols, sd.cols)
			}
		case "MaxPoolGroupsInto":
			if len(call.Args) != 4 {
				return true
			}
			out, grouped := call.Args[0], call.Args[2]
			reportAlias(p, call, obj.Name(), out, grouped)
			od, gd := dimsOf(out), dimsOf(grouped)
			k, kKnown := constInt(info, call.Args[3])
			if !od.known || !gd.known || !kKnown || k <= 0 {
				return true
			}
			if gd.rows%k != 0 {
				p.Reportf(call.Pos(), "MaxPoolGroupsInto cannot pool %d rows in groups of %d", gd.rows, k)
				return true
			}
			if od.rows != gd.rows/k || od.cols != gd.cols {
				p.Reportf(call.Pos(), "MaxPoolGroupsInto destination is %dx%d but pooling %dx%d by %d gives %dx%d", od.rows, od.cols, gd.rows, gd.cols, k, gd.rows/k, gd.cols)
			}
		}
		return true
	})
}

// reportAlias flags src arguments syntactically identical to dst.
func reportAlias(p *Pass, call *ast.CallExpr, kernel string, dst ast.Expr, srcs ...ast.Expr) {
	ds := types.ExprString(ast.Unparen(dst))
	for _, src := range srcs {
		if types.ExprString(ast.Unparen(src)) == ds {
			p.Reportf(call.Pos(), "%s destination %s aliases an input; *Into kernels require dst and src to be distinct buffers", kernel, ds)
			return
		}
	}
}

// allocDims extracts constant dimensions from tensor.New(r, c) or
// Workspace.Get(r, c).
func allocDims(info *types.Info, e ast.Expr, tensorPath string) (dims, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return dims{}, false
	}
	obj := calleeFunc(info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != tensorPath {
		return dims{}, false
	}
	if obj.Name() != "New" && !(obj.Name() == "Get" && workspaceMethodCall(info, call, tensorPath, "Get")) {
		return dims{}, false
	}
	r, rok := constInt(info, call.Args[0])
	c, cok := constInt(info, call.Args[1])
	if !rok || !cok {
		return dims{}, false
	}
	return dims{rows: r, cols: c, known: true}, true
}

// constInt evaluates e as a compile-time integer constant.
func constInt(info *types.Info, e ast.Expr) (int, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, ok := constant.Int64Val(tv.Value)
	return int(v), ok
}
