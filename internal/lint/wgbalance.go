package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// WGBalance checks sync.WaitGroup accounting across the goroutine spawn
// boundary: every Add must be matched by a Done that is statically reachable
// — directly, deferred, inside a spawned closure, or inside a spawned module
// function whose summary the call graph provides. Loop bodies are balanced
// per iteration (an Add in a loop needs its Done in the same iteration's
// reach, because the iteration count is not statically known), and an Add
// placed lexically inside a spawned goroutine is reported as a race with
// Wait regardless of balance.
//
// The analysis is deliberately one-sided to stay quiet on correct code:
//
//   - counts are only compared when every Add uses a constant argument and
//     the WaitGroup never escapes to code the call graph cannot see (function
//     values, interface calls, address-taken in non-call position);
//   - a loop whose body has more Dones than Adds (the consumer-loop idiom)
//     makes the WaitGroup's multiplicity unknown instead of reporting;
//   - recursion that keeps summaries growing saturates and degrades to
//     unknown.
//
// The serve engine's respawn chain (workerLoop → deferred lastResort →
// Add + go workerLoop) is exactly such a saturating cycle: it degrades to
// unknown, which is the truth — its balance argument is temporal, not
// structural.
var WGBalance = &Analyzer{
	Name: "wgbalance",
	Doc:  "sync.WaitGroup Add/Done must balance per loop iteration and across the goroutine spawn boundary; Add inside a spawned goroutine races with Wait",
	Run:  runWGBalance,
}

// wgSat is the saturation ceiling for Add/Done counts; past it a count means
// "many" and comparisons degrade to balanced (under-reporting, never noise).
const wgSat = 8

// wgTally accumulates one WaitGroup's events inside one region.
type wgTally struct {
	adds, dones int
	unknown     bool
	addPos      token.Pos // first Add (or Done) site, for reporting
	waits       int
}

func (t *wgTally) note(pos token.Pos) {
	if !t.addPos.IsValid() {
		t.addPos = pos
	}
}

func satAdd(a, b int) int {
	if s := a + b; s < wgSat {
		return s
	}
	return wgSat
}

// wgSummary is a function's net WaitGroup effect per parameter/receiver slot.
type wgSummary map[slotKey]*wgTally

func wgSummaryEqual(a, b wgSummary) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || av.adds != bv.adds || av.dones != bv.dones || av.unknown != bv.unknown {
			return false
		}
	}
	return true
}

// wgMaxRounds bounds the summary fixpoint. Counts saturate at wgSat and
// unknown is monotone, so the system converges; the cap is a backstop, after
// which still-changing nodes are poisoned to unknown.
const wgMaxRounds = 32

func runWGBalance(p *Pass) {
	g := p.callGraph()
	summaries := map[*cgNode]wgSummary{}
	compute := func(n *cgNode) bool {
		s := &wgScan{p: p, g: g, n: n, summaries: summaries}
		body := s.region(n.decl.Body.List, false)
		next := s.summarize(body)
		if wgSummaryEqual(summaries[n], next) {
			return false
		}
		summaries[n] = next
		return true
	}
	converged := false
	for round := 0; round < wgMaxRounds && !converged; round++ {
		converged = true
		for _, n := range g.order {
			if compute(n) {
				converged = false
			}
		}
	}
	if !converged {
		for _, sum := range summaries {
			for _, t := range sum {
				t.unknown = true
			}
		}
	}
	for _, n := range g.order {
		s := &wgScan{p: p, g: g, n: n, summaries: summaries, report: true}
		body := s.region(n.decl.Body.List, false)
		s.checkFunction(body)
	}
}

// wgScan walks one function, building per-region tallies.
type wgScan struct {
	p         *Pass
	g         *callGraph
	n         *cgNode
	summaries map[*cgNode]wgSummary
	report    bool
}

type wgRegion map[refKey]*wgTally

func (s *wgScan) tally(r wgRegion, k refKey) *wgTally {
	t := r[k]
	if t == nil {
		t = &wgTally{}
		r[k] = t
	}
	return t
}

// region scans a statement list, recursing into branches (same region) and
// loops (subregions checked per iteration). inGo marks that the statements
// run inside a spawned goroutine body: Adds there are reported as races.
func (s *wgScan) region(stmts []ast.Stmt, inGo bool) wgRegion {
	r := wgRegion{}
	for _, st := range stmts {
		s.stmt(r, st, inGo)
	}
	return r
}

func (s *wgScan) stmt(r wgRegion, st ast.Stmt, inGo bool) {
	switch st := st.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, x := range st.List {
			s.stmt(r, x, inGo)
		}
	case *ast.LabeledStmt:
		s.stmt(r, st.Stmt, inGo)
	case *ast.IfStmt:
		s.stmt(r, st.Init, inGo)
		s.expr(r, st.Cond, inGo)
		s.stmt(r, st.Body, inGo)
		s.stmt(r, st.Else, inGo)
	case *ast.SwitchStmt:
		s.stmt(r, st.Init, inGo)
		s.expr(r, st.Tag, inGo)
		s.stmt(r, st.Body, inGo)
	case *ast.TypeSwitchStmt:
		s.stmt(r, st.Init, inGo)
		s.stmt(r, st.Assign, inGo)
		s.stmt(r, st.Body, inGo)
	case *ast.SelectStmt:
		s.stmt(r, st.Body, inGo)
	case *ast.CaseClause:
		for _, e := range st.List {
			s.expr(r, e, inGo)
		}
		for _, x := range st.Body {
			s.stmt(r, x, inGo)
		}
	case *ast.CommClause:
		s.stmt(r, st.Comm, inGo)
		for _, x := range st.Body {
			s.stmt(r, x, inGo)
		}
	case *ast.ForStmt:
		s.stmt(r, st.Init, inGo)
		s.expr(r, st.Cond, inGo)
		s.loop(r, st.Body.List, st.For, inGo)
		s.stmt(r, st.Post, inGo)
	case *ast.RangeStmt:
		s.expr(r, st.X, inGo)
		s.loop(r, st.Body.List, st.For, inGo)
	case *ast.GoStmt:
		s.spawn(r, st, inGo)
	case *ast.DeferStmt:
		// A deferred Done/helper runs at function exit but exactly once per
		// execution of this defer statement, so it tallies in its lexical
		// region — pairing `wg.Add(1)` with `defer wg.Done()` per iteration.
		s.callExpr(r, st.Call, inGo)
	case *ast.ExprStmt:
		s.expr(r, st.X, inGo)
	case *ast.SendStmt:
		s.expr(r, st.Chan, inGo)
		s.expr(r, st.Value, inGo)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			s.expr(r, e, inGo)
		}
		for _, e := range st.Lhs {
			s.expr(r, e, inGo)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.expr(r, e, inGo)
		}
	case *ast.IncDecStmt:
		s.expr(r, st.X, inGo)
	case *ast.DeclStmt:
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				s.expr(r, e, inGo)
				return false
			}
			return true
		})
	case *ast.BranchStmt, *ast.EmptyStmt:
	default:
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				s.expr(r, e, inGo)
				return false
			}
			return true
		})
	}
}

// loop scans a loop body as its own region, reports per-iteration Add leaks,
// and folds the verdict into the parent region.
func (s *wgScan) loop(parent wgRegion, body []ast.Stmt, pos token.Pos, inGo bool) {
	sub := s.region(body, inGo)
	for _, k := range wgKeysSorted(sub) {
		t := sub[k]
		pt := s.tally(parent, k)
		pt.note(t.addPos)
		pt.waits += t.waits
		switch {
		case t.unknown:
			pt.unknown = true
		case t.adds > t.dones:
			if s.report {
				at := t.addPos
				if !at.IsValid() {
					at = pos
				}
				s.p.Reportf(at, "WaitGroup %s gains %d Add(s) but only %d Done(s) per iteration of this loop; Wait will never return", k, t.adds, t.dones)
			}
			// Reported; contribute nothing so the function-level check does
			// not double-report.
		case t.dones > t.adds:
			// Consumer-loop idiom (Done per received job): the multiplicity
			// is the queue length, not a static count.
			pt.unknown = true
		}
	}
}

// spawn folds a goroutine body into the spawning region: its Dones count
// toward the spawn site's balance (that is the entire point of a WaitGroup),
// its Adds are a race with Wait and are reported.
func (s *wgScan) spawn(r wgRegion, g *ast.GoStmt, inGo bool) {
	for _, a := range g.Call.Args {
		s.expr(r, a, inGo)
	}
	if lit := funcLitOf(g.Call); lit != nil {
		sub := s.region(lit.Body.List, true)
		s.foldSpawned(r, sub, g.Pos())
		return
	}
	if callee := s.g.nodeOf(s.n.pkg.Info, g.Call); callee != nil {
		s.applySummary(r, g.Call, callee, true)
		return
	}
	// Unresolved spawn target: any WaitGroup passed to it is out of sight.
	s.escapeArgs(r, g.Call)
}

// foldSpawned merges a spawned closure's region into the parent: its Dones
// count toward the spawn site's balance; its Adds were already reported by
// the in-goroutine scan and poison the key to unknown.
func (s *wgScan) foldSpawned(r wgRegion, sub wgRegion, at token.Pos) {
	for _, k := range wgKeysSorted(sub) {
		t := sub[k]
		pt := s.tally(r, k)
		pt.note(at)
		if t.adds > 0 || t.unknown {
			pt.unknown = true
		}
		pt.dones = satAdd(pt.dones, t.dones)
	}
}

func (s *wgScan) callExpr(r wgRegion, call *ast.CallExpr, inGo bool) {
	for _, a := range call.Args {
		s.expr(r, a, inGo)
	}
	f := calleeFunc(s.n.pkg.Info, call)
	if f != nil && f.Pkg() != nil && f.Pkg().Path() == "sync" && recvTypeName(f) == "WaitGroup" {
		s.wgMethod(r, call, f, inGo)
		return
	}
	if f != nil {
		if callee := s.g.nodes[f]; callee != nil {
			s.applySummary(r, call, callee, false)
			return
		}
	}
	s.escapeArgs(r, call)
}

// wgMethod tallies one Add/Done/Wait call.
func (s *wgScan) wgMethod(r wgRegion, call *ast.CallExpr, f *types.Func, inGo bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	k, ok := keyOf(s.n.pkg.Info, sel.X)
	if !ok {
		return
	}
	t := s.tally(r, k)
	t.note(call.Pos())
	switch f.Name() {
	case "Add":
		n, known := constIntArg(s.n.pkg.Info, call, 0)
		switch {
		case !known:
			t.unknown = true
		case n >= 0:
			t.adds = satAdd(t.adds, n)
			if inGo && s.report && n > 0 {
				s.p.Reportf(call.Pos(), "WaitGroup %s.Add inside a spawned goroutine races with Wait; call Add before the go statement", k)
			}
			if inGo {
				t.unknown = true
			}
		default:
			t.dones = satAdd(t.dones, -n)
		}
	case "Done":
		t.dones = satAdd(t.dones, 1)
	case "Wait":
		t.waits++
	}
}

// applySummary folds a module callee's WaitGroup summary into the caller's
// region. At a spawn site the callee's Adds cannot be ordered against the
// caller's Wait, so they poison the key to unknown instead of counting.
func (s *wgScan) applySummary(r wgRegion, call *ast.CallExpr, callee *cgNode, spawned bool) {
	sum := s.summaries[callee]
	for sk, t := range sum {
		k, ok := rebase(s.n.pkg.Info, call, sk)
		if !ok {
			// The argument feeding this slot has no stable identity; whatever
			// WaitGroup flows there is out of sight.
			s.escapeArgs(r, call)
			continue
		}
		pt := s.tally(r, k)
		pt.note(call.Pos())
		if t.unknown {
			pt.unknown = true
		}
		pt.dones = satAdd(pt.dones, t.dones)
		if spawned && t.adds > 0 {
			pt.unknown = true
		} else {
			pt.adds = satAdd(pt.adds, t.adds)
		}
	}
	// A WaitGroup handed to a callee with no summary entry for it is
	// untouched by that callee — nothing to fold.
}

// expr scans an expression for WaitGroup escapes and nested calls. A func
// literal that is neither spawned nor immediately called makes every
// WaitGroup it mentions unknown (its execution count is out of reach).
func (s *wgScan) expr(r wgRegion, e ast.Expr, inGo bool) {
	if e == nil {
		return
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if lit := funcLitOf(e); lit != nil {
			// Immediately invoked literal: same region.
			for _, a := range e.Args {
				s.expr(r, a, inGo)
			}
			for _, st := range lit.Body.List {
				s.stmt(r, st, inGo)
			}
			return
		}
		s.callExpr(r, e, inGo)
	case *ast.FuncLit:
		s.markEscapes(r, e)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if k, ok := keyOf(s.n.pkg.Info, e.X); ok && s.isWaitGroupKey(e.X) {
				// Address taken outside a resolvable call: out of sight.
				s.tally(r, k).unknown = true
				s.tally(r, k).note(e.Pos())
			}
			return
		}
		s.expr(r, e.X, inGo)
	case *ast.BinaryExpr:
		s.expr(r, e.X, inGo)
		s.expr(r, e.Y, inGo)
	case *ast.StarExpr:
		s.expr(r, e.X, inGo)
	case *ast.IndexExpr:
		s.expr(r, e.X, inGo)
		s.expr(r, e.Index, inGo)
	case *ast.SliceExpr:
		s.expr(r, e.X, inGo)
		s.expr(r, e.Low, inGo)
		s.expr(r, e.High, inGo)
		s.expr(r, e.Max, inGo)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			s.expr(r, el, inGo)
		}
	case *ast.KeyValueExpr:
		s.expr(r, e.Value, inGo)
	case *ast.SelectorExpr, *ast.Ident, *ast.BasicLit, *ast.TypeAssertExpr:
	}
}

// escapeArgs marks every WaitGroup reachable from a call's arguments (or
// receiver) as unknown: the callee is outside the static call graph.
func (s *wgScan) escapeArgs(r wgRegion, call *ast.CallExpr) {
	mark := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			x, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			if s.isWaitGroupKey(x) {
				if k, ok := keyOf(s.n.pkg.Info, x); ok {
					s.tally(r, k).unknown = true
					s.tally(r, k).note(x.Pos())
				}
			}
			return true
		})
	}
	for _, a := range call.Args {
		mark(a)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		mark(sel.X)
	}
}

// markEscapes poisons every WaitGroup mentioned inside a stray func literal.
func (s *wgScan) markEscapes(r wgRegion, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		x, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if s.isWaitGroupKey(x) {
			if k, ok := keyOf(s.n.pkg.Info, x); ok {
				s.tally(r, k).unknown = true
				s.tally(r, k).note(x.Pos())
			}
		}
		return true
	})
}

// isWaitGroupKey reports whether e denotes a sync.WaitGroup (or pointer to
// one) with a stable identity.
func (s *wgScan) isWaitGroupKey(e ast.Expr) bool {
	t := s.n.pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	if pt, ok := t.(*types.Pointer); ok {
		t = pt.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "WaitGroup" && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync"
}

// summarize extracts the parameter/receiver-rooted tallies as the function's
// summary.
func (s *wgScan) summarize(body wgRegion) wgSummary {
	out := wgSummary{}
	for _, k := range wgKeysSorted(body) {
		sk, ok := slotKeyOf(s.n, k)
		if !ok {
			continue
		}
		t := body[k]
		out[sk] = &wgTally{adds: t.adds, dones: t.dones, unknown: t.unknown}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// checkFunction reports function-level imbalance for locally declared
// WaitGroups: if the counts are fully known and Adds exceed Dones, a Wait
// hangs; parameter- and receiver-rooted groups are judged by callers through
// the summary instead.
func (s *wgScan) checkFunction(body wgRegion) {
	for _, k := range wgKeysSorted(body) {
		t := body[k]
		if t.unknown {
			continue
		}
		if _, isParam := s.n.paramSlot[k.root]; isParam {
			continue
		}
		if k.root.Pos() < s.n.decl.Pos() || k.root.Pos() > s.n.decl.End() {
			continue // package-level WaitGroup: cross-function by design
		}
		if t.adds != t.dones {
			s.p.Reportf(t.addPos, "WaitGroup %s: %d Add(s) but %d Done(s) are statically reachable; Wait will %s", k, t.adds, t.dones,
				verdict(t.adds > t.dones))
		}
	}
}

func verdict(hangs bool) string {
	if hangs {
		return "never return"
	}
	return "panic on a negative counter"
}

func constIntArg(info *types.Info, call *ast.CallExpr, i int) (int, bool) {
	if i >= len(call.Args) {
		return 0, false
	}
	tv, ok := info.Types[call.Args[i]]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	if !exact {
		return 0, false
	}
	return int(v), true
}

func wgKeysSorted(r wgRegion) []refKey {
	keys := make([]refKey, 0, len(r))
	for k := range r {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].root.Pos() != keys[j].root.Pos() {
			return keys[i].root.Pos() < keys[j].root.Pos()
		}
		return keys[i].path < keys[j].path
	})
	return keys
}
