package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands. After a parallel
// reduction or an approximate Morton path, exact float equality is almost
// always a latent bug — the repo's tests compare through tolerance helpers
// instead. Two idioms are exempt:
//
//   - comparison against an exact-zero constant: the kernels' sparsity skip
//     (av == 0) and the config convention that zero means "use the default"
//     are both intentional exact tests;
//   - test files, which are not loaded by the linter at all.
//
// Intentional exact equality elsewhere (golden bit-identity checks) carries
// an //edgepc:lint-ignore floateq directive with its justification.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "==/!= on floating-point operands outside zero-sentinel comparisons",
	Run:  runFloatEq,
}

func runFloatEq(p *Pass) {
	for _, pkg := range p.Targets {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if !isFloat(pkg.Info, be.X) && !isFloat(pkg.Info, be.Y) {
					return true
				}
				if isZeroConst(pkg.Info, be.X) || isZeroConst(pkg.Info, be.Y) {
					return true
				}
				p.Reportf(be.OpPos, "floating-point %s comparison; use a tolerance, or document exact equality with an //edgepc:lint-ignore floateq directive", be.Op)
				return true
			})
		}
	}
}

// isFloat reports whether e has floating-point type (including untyped float
// constants).
func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isZeroConst reports whether e is a compile-time constant equal to zero.
func isZeroConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
