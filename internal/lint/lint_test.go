package lint

import (
	"strings"
	"testing"
)

func TestHotPathAlloc(t *testing.T) {
	runFixture(t, "hotpath_bad", HotPathAlloc)
	runFixture(t, "hotpath_clean", HotPathAlloc)
}

func TestWorkspacePair(t *testing.T) {
	runFixture(t, "workspace_bad", WorkspacePair)
	runFixture(t, "workspace_clean", WorkspacePair)
}

func TestParallelCapture(t *testing.T) {
	runFixture(t, "parallel_bad", ParallelCapture)
	runFixture(t, "parallel_clean", ParallelCapture)
}

func TestIntoAlias(t *testing.T) {
	runFixture(t, "intoalias_bad", IntoAlias)
	runFixture(t, "intoalias_clean", IntoAlias)
}

func TestFloatEq(t *testing.T) {
	runFixture(t, "floateq_bad", FloatEq)
	runFixture(t, "floateq_clean", FloatEq)
}

func TestGoRecover(t *testing.T) {
	runFixture(t, "gorecover_bad", GoRecover)
	runFixture(t, "gorecover_clean", GoRecover)
	runFixture(t, "gorecover_unmarked", GoRecover)
}

func TestLockPair(t *testing.T) {
	runFixture(t, "lockpair_bad", LockPair)
	runFixture(t, "lockpair_clean", LockPair)
}

func TestWGBalance(t *testing.T) {
	runFixture(t, "wgbalance_bad", WGBalance)
	runFixture(t, "wgbalance_clean", WGBalance)
}

func TestChanLife(t *testing.T) {
	runFixture(t, "chanlife_bad", ChanLife)
	runFixture(t, "chanlife_clean", ChanLife)
}

func TestCtxFlow(t *testing.T) {
	runFixture(t, "ctxflow_bad", CtxFlow)
	runFixture(t, "ctxflow_clean", CtxFlow)
}

// TestStaleIgnores asserts the stale-suppression satellite: a directive that
// matches a finding is honored silently, one that matches nothing is itself
// a diagnostic.
func TestStaleIgnores(t *testing.T) {
	runFixture(t, "ignore_stale", FloatEq)
}

// TestMalformedIgnores asserts that broken suppression directives are
// reported as [lint] diagnostics and do NOT suppress the findings they sit
// above: three malformed directives, three live floateq findings.
func TestMalformedIgnores(t *testing.T) {
	l, pkg := loadFixture(t, "ignore_bad")
	diags := Run(l, []*Package{pkg}, []*Analyzer{FloatEq})
	var lintCount, floatCount int
	for _, d := range diags {
		switch d.Analyzer {
		case "lint":
			lintCount++
		case "floateq":
			floatCount++
		default:
			t.Errorf("unexpected analyzer %q: %s", d.Analyzer, d)
		}
	}
	if lintCount != 3 {
		t.Errorf("got %d [lint] directive diagnostics, want 3", lintCount)
	}
	if floatCount != 3 {
		t.Errorf("got %d floateq diagnostics, want 3 (malformed directives must not suppress)", floatCount)
	}
	var sawNoAnalyzer, sawUnknown, sawNoReason bool
	for _, d := range diags {
		if d.Analyzer != "lint" {
			continue
		}
		switch {
		case strings.Contains(d.Message, "names no analyzer"):
			sawNoAnalyzer = true
		case strings.Contains(d.Message, "unknown analyzer"):
			sawUnknown = true
		case strings.Contains(d.Message, "gives no reason"):
			sawNoReason = true
		}
	}
	if !sawNoAnalyzer || !sawUnknown || !sawNoReason {
		t.Errorf("missing a malformed-directive variant: no-analyzer=%v unknown=%v no-reason=%v", sawNoAnalyzer, sawUnknown, sawNoReason)
	}
}

// TestSuiteMetadata guards the analyzer registry: unique non-empty names
// (they key suppression directives) and documented purposes.
func TestSuiteMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing name, doc, or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) < 10 {
		t.Errorf("suite has %d analyzers, want at least 10", len(seen))
	}
}

// TestRealTreeSpotCheck runs the full suite over two load-bearing production
// packages; the tree is kept clean by scripts/ci.sh, so any diagnostic here
// is a regression in either the code or the analyzers.
func TestRealTreeSpotCheck(t *testing.T) {
	l := fixtureLoader(t)
	var targets []*Package
	for _, dir := range []string{"internal/tensor", "internal/morton"} {
		pkg, err := l.LoadDir(l.Root() + "/" + dir)
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
		targets = append(targets, pkg)
	}
	for _, d := range Run(l, targets, All()) {
		t.Errorf("unexpected diagnostic on the production tree: %s", d)
	}
}
