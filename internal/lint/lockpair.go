package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockPair enforces lock/unlock discipline on sync.Mutex and sync.RWMutex
// through the dataflow engine: every Lock must be released on every return
// path (directly, via defer — including defer func literals — or by a callee
// whose summary releases it), RLock/RUnlock are matched separately from the
// write side, double Lock without an intervening Unlock is reported as a
// self-deadlock, and Unlock of a lock not held on the path is reported for
// locally declared mutexes.
//
// Interprocedural behavior: a module function whose every return path leaves
// a receiver- or parameter-rooted mutex held gets a "+1" summary; one that
// releases a caller-held mutex gets a "-1" summary. Summaries are propagated
// to a fixed point over the whole-module call graph, so the classic
// lock()/unlock() helper-pair idiom is tracked across function boundaries —
// lockpair sees through `s.lock(); defer s.unlock()` exactly as it sees
// through `s.mu.Lock(); defer s.mu.Unlock()`.
//
// Paths that end in panic are not treated as returns: the deferred unlocks
// still replay, but a lock held where a goroutine dies is a different
// failure (gorecover's domain), not a leak on a live path. TryLock poisons
// the lock's state to "unknown" — conditional acquisition cannot be paired
// statically — which silences, never false-positives.
var LockPair = &Analyzer{
	Name: "lockpair",
	Doc:  "sync.Mutex/RWMutex Lock must be Unlocked on all return paths (defer-aware, RLock matched separately, summaries cross function boundaries)",
	Run:  runLockPair,
}

// Lattice values for the write side of a mutex. The read side uses counts:
// lockEntry, or lockReadBase+n for n RLocks currently held on the path.
const (
	lockEntry    int8 = 0   // function entry / never touched on this path
	lockHeld     int8 = 1   // locked by this function on this path
	lockReleased int8 = 2   // released on this path (by us, or a caller's lock handed back)
	lockReadBase int8 = 20  // read side: lockReadBase+n encodes n held RLocks
	lockReadMax  int8 = 110 // read-count saturation
)

// readSuffix distinguishes the read-side key of an RWMutex from the write
// side: e.mu tracks Lock/Unlock, e.mu+readSuffix tracks RLock/RUnlock.
const readSuffix = "\x00r"

// lockSummary is one function's net effect per parameter/receiver-rooted
// mutex: +1 locks it on every return path, -1 releases a caller-held lock.
type lockSummary map[slotKey]int8

func runLockPair(p *Pass) {
	g := p.callGraph()
	summaries := map[*cgNode]lockSummary{}
	converged := g.fixpoint(func(n *cgNode) bool {
		lf := newLockFlow(p, g, n, summaries, false)
		walkFlow(n.pkg.Info, n.decl, lf)
		next := lf.summary()
		if lockSummaryEqual(summaries[n], next) {
			return false
		}
		summaries[n] = next
		return true
	})
	if !converged {
		// Mutually recursive lockers that never stabilized: drop every summary
		// rather than report from half-propagated facts.
		summaries = map[*cgNode]lockSummary{}
	}
	for _, n := range g.order {
		lf := newLockFlow(p, g, n, summaries, true)
		walkFlow(n.pkg.Info, n.decl, lf)
		lf.reportExits()
	}
}

func lockSummaryEqual(a, b lockSummary) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// lockExit is one recorded return point.
type lockExit struct {
	st  absState
	pos token.Pos
}

// lockFlow is the dataflow client for one function.
type lockFlow struct {
	p         *Pass
	g         *callGraph
	n         *cgNode
	summaries map[*cgNode]lockSummary
	report    bool

	lockPos       map[refKey]token.Pos // latest acquisition site per key
	entryReleased map[refKey]bool      // Unlock hit a caller-held (entry) lock
	exits         []lockExit
}

func newLockFlow(p *Pass, g *callGraph, n *cgNode, summaries map[*cgNode]lockSummary, report bool) *lockFlow {
	return &lockFlow{
		p: p, g: g, n: n, summaries: summaries, report: report,
		lockPos:       map[refKey]token.Pos{},
		entryReleased: map[refKey]bool{},
	}
}

func (lf *lockFlow) joinVal(a, b int8) int8 {
	if a == flowTop || b == flowTop {
		return flowTop
	}
	// entry and released both mean "not held here"; released wins so the
	// exit check sees a consistent not-held pair.
	if (a == lockEntry && b == lockReleased) || (a == lockReleased && b == lockEntry) {
		return lockReleased
	}
	if (a == lockEntry && b == lockReadBase) || (a == lockReadBase && b == lockEntry) {
		return lockReadBase
	}
	return flowTop
}

func (lf *lockFlow) send(absState, *ast.SendStmt)  {}
func (lf *lockFlow) recv(absState, *ast.UnaryExpr) {}
func (lf *lockFlow) spawn(absState, *ast.GoStmt)   {}

func (lf *lockFlow) exit(st absState, pos token.Pos) {
	lf.exits = append(lf.exits, lockExit{st: st.clone(), pos: pos})
}

// localRoot reports whether k is rooted at a variable declared inside this
// function (as opposed to a parameter, receiver, or package-level variable).
func (lf *lockFlow) localRoot(k refKey) bool {
	if _, isParam := lf.n.paramSlot[k.root]; isParam {
		return false
	}
	return k.root.Pos() >= lf.n.decl.Pos() && k.root.Pos() <= lf.n.decl.End()
}

func (lf *lockFlow) call(st absState, call *ast.CallExpr, deferred bool) {
	f := calleeFunc(lf.n.pkg.Info, call)
	if f == nil {
		return
	}
	if f.Pkg() != nil && f.Pkg().Path() == "sync" {
		lf.syncCall(st, call, f)
		return
	}
	callee := lf.g.nodes[f]
	if callee == nil {
		return
	}
	sum := lf.summaries[callee]
	for sk, net := range sum {
		k, ok := rebase(lf.n.pkg.Info, call, sk)
		if !ok {
			continue
		}
		switch {
		case net > 0:
			if st[k] == lockHeld && lf.report {
				lf.p.Reportf(call.Pos(), "%s acquires %s, which is already held on this path (deadlock)", funcName(f), k)
			}
			if st[k] != flowTop {
				st[k] = lockHeld
				lf.lockPos[k] = call.Pos()
			}
		case net < 0:
			switch st[k] {
			case lockHeld:
				st[k] = lockReleased
			case lockReleased:
				if lf.report {
					lf.p.Reportf(call.Pos(), "%s releases %s, which was already released on this path", funcName(f), k)
				}
			case lockEntry:
				st[k] = lockReleased
				lf.noteEntryRelease(k)
			}
		}
	}
}

// syncCall applies one sync.Mutex / sync.RWMutex method to the state.
func (lf *lockFlow) syncCall(st absState, call *ast.CallExpr, f *types.Func) {
	recv := recvTypeName(f)
	if recv != "Mutex" && recv != "RWMutex" {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	k, ok := keyOf(lf.n.pkg.Info, sel.X)
	if !ok {
		return
	}
	rk := refKey{root: k.root, path: k.path + readSuffix}
	switch f.Name() {
	case "Lock":
		if st[k] == lockHeld && lf.report {
			lf.p.Reportf(call.Pos(), "second %s.Lock without an intervening Unlock on this path (self-deadlock)", k)
		}
		if st[k] != flowTop {
			st[k] = lockHeld
			lf.lockPos[k] = call.Pos()
		}
	case "Unlock":
		switch st[k] {
		case lockHeld:
			st[k] = lockReleased
		case lockReleased:
			if lf.report {
				lf.p.Reportf(call.Pos(), "%s.Unlock but the lock was already released on this path", k)
			}
		case lockEntry:
			if lf.localRoot(k) {
				if lf.report {
					lf.p.Reportf(call.Pos(), "%s.Unlock but no Lock is held on this path", k)
				}
			} else {
				// Releasing a lock the caller holds: a legitimate unlock
				// helper. Recorded for this function's summary.
				st[k] = lockReleased
				lf.noteEntryRelease(k)
			}
		}
	case "RLock":
		switch {
		case st[rk] == flowTop:
		case st[rk] == lockEntry:
			st[rk] = lockReadBase + 1
			lf.lockPos[rk] = call.Pos()
		case st[rk] >= lockReadBase && st[rk] < lockReadMax:
			st[rk]++
			lf.lockPos[rk] = call.Pos()
		}
	case "RUnlock":
		switch {
		case st[rk] == flowTop:
		case st[rk] > lockReadBase && st[rk] <= lockReadMax:
			st[rk]--
		case st[rk] == lockReadBase:
			if lf.report {
				lf.p.Reportf(call.Pos(), "%s.RUnlock but no RLock is held on this path", k)
			}
		case st[rk] == lockEntry:
			if lf.localRoot(k) {
				if lf.report {
					lf.p.Reportf(call.Pos(), "%s.RUnlock but no RLock is held on this path", k)
				}
			} else {
				// Caller-held read lock being released; tolerated, not
				// summarized (read-side handoff is rare enough not to model).
				st[rk] = lockReadBase
			}
		}
	case "TryLock":
		st[k] = flowTop
	case "TryRLock":
		st[rk] = flowTop
	}
}

func (lf *lockFlow) noteEntryRelease(k refKey) {
	if !lf.localRoot(k) {
		lf.entryReleased[k] = true
	}
}

// summary derives this function's net lock effect: +1 for a key held at
// every return, -1 for a caller-held key released on every return.
func (lf *lockFlow) summary() lockSummary {
	if len(lf.exits) == 0 {
		return nil
	}
	out := lockSummary{}
	for _, k := range lf.exitKeys() {
		sk, ok := slotKeyOf(lf.n, k)
		if !ok {
			continue
		}
		held, notheld, unknown := lf.classifyExits(k)
		switch {
		case unknown > 0:
		case held == len(lf.exits):
			out[sk] = 1
		case lf.entryReleased[k] && notheld == len(lf.exits):
			out[sk] = -1
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// exitKeys returns every key observed in any exit state, deterministically.
func (lf *lockFlow) exitKeys() []refKey {
	union := absState{}
	for _, e := range lf.exits {
		for k, v := range e.st {
			if v != lockEntry {
				union[k] = 1
			}
		}
	}
	return union.keysSorted()
}

// classifyExits counts, across return paths, where k is held, not held, or
// unknown. Read-side keys count any positive RLock depth as held.
func (lf *lockFlow) classifyExits(k refKey) (held, notheld, unknown int) {
	for _, e := range lf.exits {
		switch v := e.st[k]; {
		case v == lockHeld || v > lockReadBase:
			held++
		case v == lockEntry || v == lockReleased || v == lockReadBase:
			notheld++
		default:
			unknown++
		}
	}
	return
}

// reportExits fires the core diagnostic: a lock held on some return paths
// but not others. (Held on all paths is a summary — the lock() helper idiom
// — and never reported; the caller's own exits are checked instead.)
func (lf *lockFlow) reportExits() {
	if len(lf.exits) < 2 {
		return
	}
	for _, k := range lf.exitKeys() {
		held, notheld, unknown := lf.classifyExits(k)
		if unknown > 0 || held == 0 || notheld == 0 {
			continue
		}
		pos := lf.lockPos[k]
		if !pos.IsValid() {
			pos = lf.exits[0].pos
		}
		name := k
		verb := "Lock"
		if len(k.path) >= len(readSuffix) && k.path[len(k.path)-len(readSuffix):] == readSuffix {
			name = refKey{root: k.root, path: k.path[:len(k.path)-len(readSuffix)]}
			verb = "RLock"
		}
		lf.p.Reportf(pos, "%s.%s is released on %d return path(s) but still held on %d other(s); unlock on every path or use defer", name, verb, notheld, held)
	}
}
