package escapegate

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestParseDiagnostics checks the -m -m quirks: the with-colon/without-colon
// duplicate collapses to one escape, indented flow explanations are skipped,
// and informational lines (leaking param, does not escape) are not escapes.
func TestParseDiagnostics(t *testing.T) {
	input := strings.Join([]string{
		"internal/model/level.go:10:6: can inline wsGet",
		"internal/model/level.go:42:13: make([]float32, n) escapes to heap:",
		"internal/model/level.go:42:13:   flow: {heap} = &{storage for make([]float32, n)}:",
		"internal/model/level.go:42:13:     from make([]float32, n) (spill) at level.go:42:13",
		"internal/model/level.go:42:13: make([]float32, n) escapes to heap",
		"internal/model/level.go:50:20: leaking param: pts to result ~r0 level=0",
		"internal/model/level.go:51:7: q does not escape",
		"internal/morton/sort.go:77:2: moved to heap: buf:",
		"internal/morton/sort.go:77:2: moved to heap: buf",
		"\tflow: buf = &buf:",
	}, "\n")
	escs, err := ParseDiagnostics(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(escs) != 2 {
		t.Fatalf("got %d escapes, want 2: %+v", len(escs), escs)
	}
	if escs[0].File != "internal/model/level.go" || escs[0].Line != 42 || escs[0].Message != "make([]float32, n) escapes to heap" {
		t.Errorf("escape 0 = %+v", escs[0])
	}
	if escs[1].File != "internal/morton/sort.go" || escs[1].Line != 77 || escs[1].Message != "moved to heap: buf" {
		t.Errorf("escape 1 = %+v", escs[1])
	}
}

// TestRegionsAndAssign scans a synthetic tree for hotpath spans and checks
// that only escapes inside them are attributed.
func TestRegionsAndAssign(t *testing.T) {
	dir := t.TempDir()
	src := `package p

//edgepc:hotpath
func Hot(n int) []int {
	s := make([]int, n)
	return s
}

func Cold(n int) []int {
	return make([]int, n)
}
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// A testdata subdirectory must be skipped even if it parses.
	if err := os.MkdirAll(filepath.Join(dir, "testdata"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "testdata", "x.go"), []byte("package broken\n//edgepc:hotpath\nfunc ???"), 0o644); err != nil {
		t.Fatal(err)
	}
	regions, err := HotpathRegions(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 1 || regions[0].Func != "Hot" || regions[0].File != "p.go" {
		t.Fatalf("regions = %+v, want one region for Hot in p.go", regions)
	}
	escapes := []Escape{
		{File: "p.go", Line: 5, Message: "make([]int, n) escapes to heap"},  // inside Hot
		{File: "p.go", Line: 10, Message: "make([]int, n) escapes to heap"}, // inside Cold
	}
	findings := Assign(regions, escapes)
	if len(findings) != 1 || findings[0].Region.Func != "Hot" || findings[0].Escape.Line != 5 {
		t.Fatalf("findings = %+v, want exactly the Hot escape", findings)
	}
}

// TestCheckTwoWayRatchet covers all three verdicts: within baseline is
// clean, above baseline fails, and a baselined escape the compiler no longer
// reports fails as stale.
func TestCheckTwoWayRatchet(t *testing.T) {
	baseline := []Entry{
		{File: "a.go", Func: "F", Count: 2, Message: "x escapes to heap"},
		{File: "b.go", Func: "G", Count: 1, Message: "moved to heap: y"},
	}
	// Identical current: clean.
	if v := Check(baseline, baseline); len(v) != 0 {
		t.Fatalf("identical current/baseline should be clean, got %+v", v)
	}
	// New class + grown count + stale entry: three violations.
	current := []Entry{
		{File: "a.go", Func: "F", Count: 3, Message: "x escapes to heap"}, // grew
		{File: "c.go", Func: "H", Count: 1, Message: "z escapes to heap"}, // new
	}
	v := Check(current, baseline)
	if len(v) != 3 {
		t.Fatalf("got %d violations, want 3 (grown, new, stale): %+v", len(v), v)
	}
	var grown, fresh, stale bool
	for _, x := range v {
		switch {
		case strings.Contains(x.Why, "grew"):
			grown = true
		case strings.Contains(x.Why, "new heap escape"):
			fresh = true
		case strings.Contains(x.Why, "stale baseline"):
			stale = true
		}
	}
	if !grown || !fresh || !stale {
		t.Errorf("missing a verdict: grown=%v new=%v stale=%v (%+v)", grown, fresh, stale, v)
	}
}

// TestBaselineRoundTrip writes and reloads a baseline file.
func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.txt")
	entries := []Entry{
		{File: "a.go", Func: "(*T).M", Count: 2, Message: "x escapes to heap"},
		{File: "b.go", Func: "G", Count: 1, Message: "moved to heap: y"},
	}
	if err := WriteBaseline(path, entries); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("round trip lost entries: %+v", got)
	}
	for i := range entries {
		if got[i] != entries[i] {
			t.Errorf("entry %d: got %+v, want %+v", i, got[i], entries[i])
		}
	}
	// Missing file is an empty baseline, not an error.
	if got, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.txt")); err != nil || got != nil {
		t.Errorf("missing baseline: got %+v, %v; want nil, nil", got, err)
	}
}

// TestGateEndToEnd is the negative test the gate exists for: a real module
// with a deliberate heap escape in a //edgepc:hotpath function must fail
// against an empty baseline, pass against a baseline written from itself,
// and fail stale once the escape is fixed but the baseline still lists it.
func TestGateEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module escapetest\n\ngo 1.21\n")
	write("hot.go", `package escapetest

//edgepc:hotpath
func Hot() *int {
	x := 42
	return &x
}
`)
	build := func() []Escape {
		t.Helper()
		cmd := exec.Command("go", "build", "-gcflags=-m -m", "./...")
		cmd.Dir = dir
		stderr, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("go build: %v\n%s", err, stderr)
		}
		escs, err := ParseDiagnostics(strings.NewReader(string(stderr)))
		if err != nil {
			t.Fatal(err)
		}
		return escs
	}
	regions, err := HotpathRegions(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 1 || regions[0].Func != "Hot" {
		t.Fatalf("regions = %+v", regions)
	}
	current := Summarize(Assign(regions, build()))
	if len(current) == 0 {
		t.Fatal("compiler reported no escape for &x returned from Hot; the parser or attribution is broken")
	}

	// Empty baseline: the deliberate escape must fail the gate.
	violations := Check(current, nil)
	if len(violations) == 0 {
		t.Fatal("gate passed a brand-new hotpath escape")
	}
	for _, v := range violations {
		if !strings.Contains(v.Why, "new heap escape") {
			t.Errorf("unexpected verdict: %+v", v)
		}
	}

	// Baseline written from the current state: gate must pass.
	if v := Check(current, current); len(v) != 0 {
		t.Fatalf("gate failed against its own baseline: %+v", v)
	}

	// Escape fixed, baseline still lists it: stale, must fail.
	write("hot.go", `package escapetest

//edgepc:hotpath
func Hot() int {
	x := 42
	return x
}
`)
	fixed := Summarize(Assign(regions, build()))
	v := Check(fixed, current)
	if len(v) == 0 {
		t.Fatal("gate passed with a stale baseline entry")
	}
	for _, x := range v {
		if !strings.Contains(x.Why, "stale baseline") {
			t.Errorf("unexpected verdict: %+v", x)
		}
	}
}
