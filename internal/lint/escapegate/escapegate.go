// Package escapegate is the compiler-backed static allocation gate: it
// parses the escape-analysis diagnostics `go build -gcflags='-m -m'` emits
// and fails when a //edgepc:hotpath function gains a heap escape.
//
// The benchmark allocs/op ceiling (scripts/ci.sh) catches a regression as a
// number; this gate catches it as a file:line the moment it is introduced,
// whether or not a benchmark happens to exercise the path. The two are
// complementary and both run in CI.
//
// Mechanics: the compiler prints one diagnostic per escaping value
// ("escapes to heap", "moved to heap"). With `-m -m` each site is printed
// twice — once with a trailing colon followed by an indented flow
// explanation, once bare — so the parser dedupes by position and normalized
// message. Escapes are attributed to the //edgepc:hotpath functions whose
// source span contains them (regions come from a parse-only scan, no type
// checking needed). The committed baseline records the escapes that are
// accepted today, keyed by (file, function, message, count) — deliberately
// line-number-free so unrelated edits shifting lines do not churn it. The
// gate is a two-way ratchet: a new escape fails, and a baseline entry the
// compiler no longer reports also fails (run scripts/escape_gate.sh -update
// to shrink the baseline and lock in the improvement).
package escapegate

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// HotPathDirective mirrors lint.HotPathDirective; escapegate is parse-only
// and keeps no dependency on the type-checked analyzer framework.
const HotPathDirective = "//edgepc:hotpath"

// Region is the source span of one //edgepc:hotpath function.
type Region struct {
	File      string // module-root-relative, slash-separated
	Func      string // display name, e.g. (*Engine).runBatch or FarthestPoint
	StartLine int
	EndLine   int
}

// HotpathRegions scans every non-test .go file under root (skipping
// testdata, vendor, hidden, and underscore directories) and returns the
// spans of all functions annotated //edgepc:hotpath.
func HotpathRegions(root string) ([]Region, error) {
	var regions []Region
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("escapegate: parsing %s: %w", path, err)
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasHotpathDirective(fd.Doc) {
				continue
			}
			regions = append(regions, Region{
				File:      rel,
				Func:      funcDisplayName(fd),
				StartLine: fset.Position(fd.Pos()).Line,
				EndLine:   fset.Position(fd.End()).Line,
			})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(regions, func(i, j int) bool {
		if regions[i].File != regions[j].File {
			return regions[i].File < regions[j].File
		}
		return regions[i].StartLine < regions[j].StartLine
	})
	return regions, nil
}

func hasHotpathDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == HotPathDirective || strings.HasPrefix(c.Text, HotPathDirective+" ") {
			return true
		}
	}
	return false
}

// funcDisplayName renders a declaration as (*T).name, (T).name, or name.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	ptr := ""
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
		ptr = "*"
	}
	// Strip type parameters on generic receivers.
	switch x := t.(type) {
	case *ast.IndexExpr:
		t = x.X
	case *ast.IndexListExpr:
		t = x.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return "(" + ptr + id.Name + ")." + fd.Name.Name
	}
	return fd.Name.Name
}

// Escape is one deduplicated heap-escape diagnostic.
type Escape struct {
	File    string // as printed by the compiler: module-root-relative
	Line    int
	Message string // normalized: no trailing colon
}

var diagRE = regexp.MustCompile(`^([^\s:][^:]*\.go):(\d+):(?:\d+:)? (.*)$`)

// ParseDiagnostics extracts heap escapes from `go build -gcflags='-m -m'`
// stderr. Indented flow-explanation lines are skipped; "leaking param" and
// "does not escape" diagnostics are informational, not escapes; the
// duplicate with-colon/without-colon pair `-m -m` prints collapses to one.
func ParseDiagnostics(r io.Reader) ([]Escape, error) {
	type key struct {
		file string
		line int
		msg  string
	}
	seen := map[key]bool{}
	var escapes []Escape
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || line[0] == ' ' || line[0] == '\t' {
			continue // flow explanation emitted under a with-colon diagnostic
		}
		m := diagRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := strings.TrimSuffix(strings.TrimSpace(m[3]), ":")
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		ln, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		k := key{file: path.Clean(filepath.ToSlash(m[1])), line: ln, msg: msg}
		if seen[k] {
			continue
		}
		seen[k] = true
		escapes = append(escapes, Escape{File: k.file, Line: ln, Message: msg})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("escapegate: reading diagnostics: %w", err)
	}
	sort.Slice(escapes, func(i, j int) bool {
		if escapes[i].File != escapes[j].File {
			return escapes[i].File < escapes[j].File
		}
		if escapes[i].Line != escapes[j].Line {
			return escapes[i].Line < escapes[j].Line
		}
		return escapes[i].Message < escapes[j].Message
	})
	return escapes, nil
}

// Finding is one escape attributed to a hotpath region.
type Finding struct {
	Region Region
	Escape Escape
}

// Assign attributes escapes to the hotpath regions containing them; escapes
// outside every region are dropped (allocating cold paths are fine).
func Assign(regions []Region, escapes []Escape) []Finding {
	var out []Finding
	for _, e := range escapes {
		for _, r := range regions {
			if e.File == r.File && e.Line >= r.StartLine && e.Line <= r.EndLine {
				out = append(out, Finding{Region: r, Escape: e})
				break
			}
		}
	}
	return out
}

// Entry is one baseline line: a (file, function, message) class of accepted
// escapes and how many of them that function has. Line numbers are omitted
// on purpose: unrelated edits move lines, not escapes.
type Entry struct {
	File    string
	Func    string
	Count   int
	Message string
}

func (e Entry) String() string {
	return fmt.Sprintf("%s\t%s\t%d\t%s", e.File, e.Func, e.Count, e.Message)
}

// Summarize aggregates findings into baseline entries.
func Summarize(findings []Finding) []Entry {
	type key struct {
		file, fn, msg string
	}
	counts := map[key]int{}
	for _, f := range findings {
		counts[key{f.Region.File, f.Region.Func, f.Escape.Message}]++
	}
	var out []Entry
	for k, c := range counts {
		out = append(out, Entry{File: k.file, Func: k.fn, Count: c, Message: k.msg})
	}
	sortEntries(out)
	return out
}

func sortEntries(entries []Entry) {
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		return a.Message < b.Message
	})
}

// LoadBaseline reads a baseline file; a missing file is an empty baseline.
// Blank lines and #-comments are skipped.
func LoadBaseline(path string) ([]Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []Entry
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 4)
		if len(parts) != 4 {
			return nil, fmt.Errorf("escapegate: %s:%d: want file<TAB>func<TAB>count<TAB>message, got %q", path, i+1, line)
		}
		n, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("escapegate: %s:%d: bad count %q", path, i+1, parts[2])
		}
		out = append(out, Entry{File: parts[0], Func: parts[1], Count: n, Message: parts[3]})
	}
	sortEntries(out)
	return out, nil
}

// WriteBaseline writes entries in the format LoadBaseline reads.
func WriteBaseline(path string, entries []Entry) error {
	var b strings.Builder
	b.WriteString("# edgepc escape-gate baseline: accepted heap escapes in //edgepc:hotpath functions.\n")
	b.WriteString("# One class per line: file<TAB>func<TAB>count<TAB>compiler message.\n")
	b.WriteString("# Regenerate with scripts/escape_gate.sh -update.\n")
	for _, e := range entries {
		b.WriteString(e.String())
		b.WriteString("\n")
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// Violation is one gate failure with a human explanation.
type Violation struct {
	Entry Entry
	Why   string
}

// Check compares current escapes against the baseline, two-way: an escape
// class above its baselined count is a regression; a baselined class the
// compiler no longer reports is stale and must be removed so the improvement
// is locked in.
func Check(current, baseline []Entry) []Violation {
	type key struct {
		file, fn, msg string
	}
	base := map[key]int{}
	for _, e := range baseline {
		base[key{e.File, e.Func, e.Message}] += e.Count
	}
	cur := map[key]int{}
	for _, e := range current {
		cur[key{e.File, e.Func, e.Message}] += e.Count
	}
	var out []Violation
	seenCur := map[key]bool{}
	for _, e := range current {
		k := key{e.File, e.Func, e.Message}
		if seenCur[k] {
			continue
		}
		seenCur[k] = true
		if cur[k] > base[k] {
			why := "new heap escape in a hotpath function"
			if base[k] > 0 {
				why = fmt.Sprintf("escape count grew: baseline %d, now %d", base[k], cur[k])
			}
			out = append(out, Violation{Entry: Entry{File: e.File, Func: e.Func, Count: cur[k], Message: e.Message}, Why: why})
		}
	}
	seenBase := map[key]bool{}
	for _, e := range baseline {
		k := key{e.File, e.Func, e.Message}
		if seenBase[k] {
			continue
		}
		seenBase[k] = true
		if cur[k] < base[k] {
			out = append(out, Violation{Entry: e, Why: fmt.Sprintf("stale baseline entry: compiler now reports %d (baseline %d); run scripts/escape_gate.sh -update to lock in the improvement", cur[k], base[k])})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Entry, out[j].Entry
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		return a.Message < b.Message
	})
	return out
}
