package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotPathAlloc enforces the zero-allocation contract of //edgepc:hotpath
// functions: neither the annotated function nor anything it statically calls
// within the module may invoke an allocating tensor kernel (the wrappers that
// have *Into counterparts, plus tensor.New and Matrix.Clone), and the
// annotated function itself must not make new slices or grow one with append.
//
// Call-graph notes: calls are resolved statically through go/types, following
// package-level functions and methods on concrete receivers across package
// boundaries. Interface dispatch and function values are not resolved — which
// is why the layer Forwards behind the nn.Layer interface carry their own
// //edgepc:hotpath annotations instead of relying on traversal through
// nn.Sequential. Calls nested in closures belong to the enclosing declared
// function. Banned functions are reported at the call site and never
// descended into; make/append are only checked directly inside annotated
// functions (dependency helpers may stage buffers — the tensor invariants are
// what must hold transitively).
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "//edgepc:hotpath functions (and their static module callees) must not call allocating tensor kernels, make, or growing append",
	Run:  runHotPathAlloc,
}

// bannedTensorFuncs are the repro/internal/tensor functions and methods that
// allocate their result. Every one of them has a workspace-friendly
// counterpart (*Into kernels, Workspace.Get) or is inference-irrelevant
// (backward-pass helpers). FromSlice is deliberately absent: it wraps an
// existing backing slice without copying.
var bannedTensorFuncs = map[string]bool{
	"MatMul":          true,
	"MatMulBT":        true,
	"MatMulAT":        true,
	"Gather":          true,
	"Concat":          true,
	"MaxPoolGroups":   true,
	"MaxPoolBackward": true,
	"SplitCols":       true,
	"New":             true,
	"Clone":           true,
}

// funcNode is one declared module function in the hotpathalloc call graph.
type funcNode struct {
	obj       *types.Func
	decl      *ast.FuncDecl
	pkg       *Package
	annotated bool
	callees   []*types.Func // resolved static calls into module code
	banned    []bannedCall  // direct calls to allocating tensor kernels
}

type bannedCall struct {
	pos  token.Pos
	name string // e.g. tensor.MatMul
}

func runHotPathAlloc(p *Pass) {
	tensorPath := p.ModPath + "/internal/tensor"
	nodes := map[*types.Func]*funcNode{}
	var order []*funcNode // deterministic iteration for root scanning
	for _, pkg := range p.Module {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &funcNode{obj: obj, decl: fd, pkg: pkg, annotated: hasDirective(fd.Doc, HotPathDirective)}
				nodes[obj] = n
				order = append(order, n)
			}
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].obj.Pos() < order[j].obj.Pos() })

	for _, n := range order {
		collectCalls(p, n, tensorPath)
	}

	// Breadth-first reachability from the annotated roots; each reachable
	// function reports its banned calls once, tagged with the root that first
	// reached it.
	type item struct {
		node *funcNode
		root *funcNode
	}
	visited := map[*funcNode]*funcNode{} // node → root that reached it
	var queue []item
	for _, n := range order {
		if n.annotated {
			visited[n] = n
			queue = append(queue, item{n, n})
		}
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		n, root := it.node, it.root
		for _, b := range n.banned {
			if n == root {
				p.Reportf(b.pos, "%s allocates on a //edgepc:hotpath function; use its *Into/workspace form", b.name)
			} else {
				p.Reportf(b.pos, "%s allocates and is reachable from //edgepc:hotpath function %s", b.name, funcName(root.obj))
			}
		}
		for _, callee := range n.callees {
			cn, ok := nodes[callee]
			if !ok {
				continue
			}
			if _, seen := visited[cn]; seen {
				continue
			}
			visited[cn] = root
			queue = append(queue, item{cn, root})
		}
	}

	// make/append are checked only directly inside annotated functions.
	for _, n := range order {
		if !n.annotated {
			continue
		}
		checkMakeAppend(p, n)
	}
}

// collectCalls walks one function body (closures included) resolving every
// call: banned tensor kernels are recorded for reporting, other module
// functions become call-graph edges.
func collectCalls(p *Pass, n *funcNode, tensorPath string) {
	info := n.pkg.Info
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeFunc(info, call)
		if obj == nil {
			return true
		}
		if pkg := obj.Pkg(); pkg != nil && pkg.Path() == tensorPath && bannedTensorFuncs[obj.Name()] {
			n.banned = append(n.banned, bannedCall{pos: call.Pos(), name: "tensor." + obj.Name()})
			return true
		}
		n.callees = append(n.callees, obj)
		return true
	})
}

// calleeFunc resolves a call expression to its static *types.Func: a
// package-level function, or a method on a concrete receiver. Interface
// methods, builtins, conversions, and function values return nil — the
// resulting object would not correspond to a declared body.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// checkMakeAppend reports make calls and growing appends directly inside an
// annotated function. append over a zero-length reslice of an existing buffer
// (x = append(buf[:0], ...)) reuses capacity and is allowed.
func checkMakeAppend(p *Pass, n *funcNode) {
	info := n.pkg.Info
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		switch id.Name {
		case "make":
			p.Reportf(call.Pos(), "make allocates on a //edgepc:hotpath function; reuse a buffer or serve it from the workspace")
		case "append":
			if len(call.Args) > 0 && isZeroReslice(call.Args[0]) {
				return true
			}
			p.Reportf(call.Pos(), "append may grow its backing array on a //edgepc:hotpath function; preallocate or append to buf[:0]")
		}
		return true
	})
}

// isZeroReslice reports whether e has the form x[:0] (capacity-reuse idiom).
func isZeroReslice(e ast.Expr) bool {
	s, ok := ast.Unparen(e).(*ast.SliceExpr)
	if !ok || s.Low != nil || s.High == nil {
		return false
	}
	lit, ok := s.High.(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == "0"
}

// funcName renders a function object as pkg.Func or pkg.(*Recv).Method for
// diagnostics.
func funcName(f *types.Func) string {
	name := f.Name()
	sig := f.Type().(*types.Signature)
	pkg := ""
	if f.Pkg() != nil {
		parts := strings.Split(f.Pkg().Path(), "/")
		pkg = parts[len(parts)-1] + "."
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		ptr := ""
		if pt, ok := t.(*types.Pointer); ok {
			t = pt.Elem()
			ptr = "*"
		}
		if named, ok := t.(*types.Named); ok {
			return pkg + "(" + ptr + named.Obj().Name() + ")." + name
		}
	}
	return pkg + name
}
