package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadErrorKind classifies loader failures so callers (and tests) can tell a
// broken input from a misconfigured invocation without string matching.
type LoadErrorKind string

const (
	// LoadParse: a source file does not parse.
	LoadParse LoadErrorKind = "parse"
	// LoadType: the package parses but does not type-check.
	LoadType LoadErrorKind = "type"
	// LoadOutsideModule: the requested directory is not inside the module.
	LoadOutsideModule LoadErrorKind = "outside-module"
	// LoadNoFiles: the directory holds no non-test Go files.
	LoadNoFiles LoadErrorKind = "no-files"
	// LoadIO: the directory cannot be read.
	LoadIO LoadErrorKind = "io"
)

// LoadError is the typed error every loader failure surfaces: which package
// (or directory) failed, how, and the underlying cause. The loader returns
// errors, never panics, on broken input — a syntax error, a type error, or a
// path outside the module all come back as *LoadError.
type LoadError struct {
	Path string // import path, or directory when no path could be derived
	Kind LoadErrorKind
	Err  error
}

func (e *LoadError) Error() string {
	return fmt.Sprintf("lint: loading %s (%s): %v", e.Path, e.Kind, e.Err)
}

func (e *LoadError) Unwrap() error { return e.Err }

// Package is one type-checked module package: its syntax trees plus the type
// information the analyzers consult. Only packages inside this module are
// loaded from source; standard-library dependencies are imported through the
// stdlib source importer and carry no syntax.
type Package struct {
	Path  string // import path, e.g. repro/internal/tensor
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of a single module using only the
// standard library (go/parser + go/types + go/importer): module-internal
// imports are resolved from source, everything else is delegated to the
// GOROOT source importer. All packages share one FileSet so positions are
// comparable across the whole module.
type Loader struct {
	Fset    *token.FileSet
	root    string // module root (directory containing go.mod)
	modPath string // module path from go.mod
	std     types.Importer
	pkgs    map[string]*Package // loaded module packages, by import path
}

// NewLoader creates a loader for the module rooted at root (the directory
// holding go.mod).
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: %s is not a module root: %w", root, err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		root:    abs,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
	}, nil
}

// ModulePath returns the module path declared in go.mod.
func (l *Loader) ModulePath() string { return l.modPath }

// Root returns the absolute module root directory.
func (l *Loader) Root() string { return l.root }

// Module returns every module package loaded so far (targets and their
// in-module dependencies), in deterministic path order.
func (l *Loader) Module() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// importPathFor maps a directory inside the module to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", &LoadError{Path: dir, Kind: LoadOutsideModule, Err: fmt.Errorf("%s is outside module %s", dir, l.root)}
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// dirFor maps a module import path back to its directory.
func (l *Loader) dirFor(path string) string {
	if path == l.modPath {
		return l.root
	}
	return filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.modPath+"/")))
}

// LoadDir parses and type-checks the package in dir (non-test files only).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.importPathFor(abs)
	if err != nil {
		return nil, err
	}
	return l.load(path, abs)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, &LoadError{Path: path, Kind: LoadIO, Err: err}
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, &LoadError{Path: path, Kind: LoadNoFiles, Err: fmt.Errorf("no Go files in %s", dir)}
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, &LoadError{Path: path, Kind: LoadParse, Err: err}
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, &LoadError{Path: path, Kind: LoadType, Err: err}
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// Import implements types.Importer: module-internal paths load from source,
// everything else goes to the standard-library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		p, err := l.load(path, l.dirFor(path))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// LoadPatterns expands go-style package patterns relative to the module root
// and loads each matched package. Supported forms: "./...", "dir/...", and
// plain directories ("./internal/tensor", "internal/tensor"). The recursive
// walk skips testdata, hidden, and vendor directories; naming such a
// directory explicitly still loads it (that is how the fixture smoke test
// lints a testdata package).
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var out []*Package
	seen := map[string]bool{}
	add := func(dir string) error {
		p, err := l.LoadDir(dir)
		if err != nil {
			return err
		}
		if !seen[p.Path] {
			seen[p.Path] = true
			out = append(out, p)
		}
		return nil
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		} else if pat == "..." {
			recursive = true
			pat = "."
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(l.root, dir)
		}
		if !recursive {
			if err := add(dir); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				return add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		abs = parent
	}
}
