package lint

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The fixture loader is shared across tests: the stdlib source importer's
// cost is paid once and every fixture package joins one FileSet, so the whole
// suite type-checks each dependency a single time.
var (
	loaderOnce sync.Once
	loaderVal  *Loader
	loaderErr  error
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := FindModuleRoot(".")
		if err != nil {
			loaderErr = err
			return
		}
		loaderVal, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("building fixture loader: %v", loaderErr)
	}
	return loaderVal
}

// loadFixture type-checks internal/lint/testdata/src/<name>.
func loadFixture(t *testing.T, name string) (*Loader, *Package) {
	t.Helper()
	l := fixtureLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return l, pkg
}

// want is one expectation parsed from a trailing `// want "regex"` (or
// backquoted) comment in a fixture file.
type want struct {
	line    int
	pattern string
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("// want (\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*$")

// collectWants scans a fixture package's comments for want expectations.
func collectWants(t *testing.T, l *Loader, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat := m[1]
				if strings.HasPrefix(pat, "`") {
					pat = strings.Trim(pat, "`")
				} else {
					var err error
					pat, err = strconv.Unquote(pat)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", l.Fset.Position(c.Pos()), m[1], err)
					}
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", l.Fset.Position(c.Pos()), pat, err)
				}
				wants = append(wants, &want{line: l.Fset.Position(c.Pos()).Line, pattern: pat, re: re})
			}
		}
	}
	return wants
}

// runFixture runs the given analyzers over one fixture package and checks the
// diagnostics against its want comments: every diagnostic must match an
// as-yet-unmatched want on its own line, and every want must be consumed.
// Clean fixtures simply carry no wants, so any diagnostic is a failure.
func runFixture(t *testing.T, name string, analyzers ...*Analyzer) {
	t.Helper()
	l, pkg := loadFixture(t, name)
	wants := collectWants(t, l, pkg)
	diags := Run(l, []*Package{pkg}, analyzers)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.line == d.Pos.Line && !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", name, d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", name, w.line, w.pattern)
		}
	}
}
