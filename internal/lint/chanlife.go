package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ChanLife checks channel lifecycle discipline through the dataflow engine:
//
//   - a send or close on a channel that a statically reachable close has
//     already closed on the same path is reported (send panics, double close
//     panics). Closes propagate interprocedurally: a module function that
//     closes a parameter- or receiver-rooted channel on every return path
//     gets a summary, and callers see the channel as closed after the call —
//     `e.shutdown()` closes `e.jobs` exactly like `close(e.jobs)` does.
//   - a receive (or range) on a locally created channel that nothing can
//     ever send to or close — the channel never escapes the function and has
//     no send and no close anywhere in its body, closures included — is
//     reported as a guaranteed block.
//
// Both checks report only definite facts: a channel that is closed on one
// branch but not the other joins to "maybe closed", which stays silent, and
// a channel that escapes into code the engine cannot see is never reported.
var ChanLife = &Analyzer{
	Name: "chanlife",
	Doc:  "no send/close on a channel after a statically reachable close; no receive on a local channel nothing can send to or close",
	Run:  runChanLife,
}

// Channel lattice: entry/open is 0, definitely closed is 1, flowTop is the
// maybe-closed join of conflicting paths.
const (
	chanOpen   int8 = 0
	chanClosed int8 = 1
)

// chanSummary marks the parameter/receiver-rooted channels a function closes
// on every return path.
type chanSummary map[slotKey]bool

func chanSummaryEqual(a, b chanSummary) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func runChanLife(p *Pass) {
	g := p.callGraph()
	summaries := map[*cgNode]chanSummary{}
	converged := g.fixpoint(func(n *cgNode) bool {
		cf := newChanFlow(p, g, n, summaries, false)
		walkFlow(n.pkg.Info, n.decl, cf)
		next := cf.summary()
		if chanSummaryEqual(summaries[n], next) {
			return false
		}
		summaries[n] = next
		return true
	})
	if !converged {
		summaries = map[*cgNode]chanSummary{}
	}
	for _, n := range g.order {
		cf := newChanFlow(p, g, n, summaries, true)
		walkFlow(n.pkg.Info, n.decl, cf)
		checkRecvForever(p, n)
	}
}

// chanFlow is the dataflow client tracking definite closes.
type chanFlow struct {
	p         *Pass
	g         *callGraph
	n         *cgNode
	summaries map[*cgNode]chanSummary
	report    bool
	exits     []absState
}

func newChanFlow(p *Pass, g *callGraph, n *cgNode, summaries map[*cgNode]chanSummary, report bool) *chanFlow {
	return &chanFlow{p: p, g: g, n: n, summaries: summaries, report: report}
}

func (cf *chanFlow) joinVal(a, b int8) int8 { return flowTop }

func (cf *chanFlow) recv(absState, *ast.UnaryExpr) {}
func (cf *chanFlow) spawn(absState, *ast.GoStmt)   {}

func (cf *chanFlow) exit(st absState, pos token.Pos) {
	cf.exits = append(cf.exits, st.clone())
}

func (cf *chanFlow) send(st absState, s *ast.SendStmt) {
	k, ok := keyOf(cf.n.pkg.Info, s.Chan)
	if !ok {
		return
	}
	if st[k] == chanClosed && cf.report {
		cf.p.Reportf(s.Arrow, "send on %s, which is closed on every path reaching here (send on closed channel panics)", k)
	}
}

func (cf *chanFlow) call(st absState, call *ast.CallExpr, deferred bool) {
	info := cf.n.pkg.Info
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) == 1 {
			k, ok := keyOf(info, call.Args[0])
			if !ok {
				return
			}
			if st[k] == chanClosed && cf.report {
				cf.p.Reportf(call.Pos(), "close of %s, which is already closed on every path reaching here (double close panics)", k)
			}
			if st[k] != flowTop {
				st[k] = chanClosed
			}
			return
		}
	}
	f := calleeFunc(info, call)
	if f == nil {
		return
	}
	callee := cf.g.nodes[f]
	if callee == nil {
		return
	}
	for sk := range cf.summaries[callee] {
		k, ok := rebase(info, call, sk)
		if !ok {
			continue
		}
		if st[k] == chanClosed && cf.report {
			cf.p.Reportf(call.Pos(), "%s closes %s, which is already closed on every path reaching here (double close panics)", funcName(f), k)
		}
		if st[k] != flowTop {
			st[k] = chanClosed
		}
	}
}

// summary reports the parameter/receiver channels closed on every exit.
func (cf *chanFlow) summary() chanSummary {
	if len(cf.exits) == 0 {
		return nil
	}
	out := chanSummary{}
	union := absState{}
	for _, e := range cf.exits {
		for k, v := range e {
			if v != chanOpen {
				union[k] = 1
			}
		}
	}
	for _, k := range union.keysSorted() {
		sk, ok := slotKeyOf(cf.n, k)
		if !ok {
			continue
		}
		closedEverywhere := true
		for _, e := range cf.exits {
			if e[k] != chanClosed {
				closedEverywhere = false
				break
			}
		}
		if closedEverywhere {
			out[sk] = true
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// checkRecvForever finds locally created channels that are received from but
// that nothing in the function — closures and spawned goroutines included —
// ever sends to or closes, and that never escape to code that could. Such a
// receive blocks its goroutine forever.
func checkRecvForever(p *Pass, n *cgNode) {
	info := n.pkg.Info
	type chanUse struct {
		sends, closes int
		escaped       bool
		recvPos       token.Pos // first definitely blocking receive
	}
	uses := map[*types.Var]*chanUse{}

	// Locally created channels: `ch := make(chan T, ...)` or var with a make
	// initializer, where ch is declared inside this function.
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		as, ok := node.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			v, ok := info.Defs[id].(*types.Var)
			if !ok {
				continue
			}
			if _, isChan := v.Type().Underlying().(*types.Chan); !isChan {
				continue
			}
			if call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); ok {
				if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && fid.Name == "make" {
					if _, isBuiltin := info.Uses[fid].(*types.Builtin); isBuiltin {
						uses[v] = &chanUse{}
					}
				}
			}
		}
		return true
	})
	if len(uses) == 0 {
		return
	}

	parents := parentMap(n.decl.Body)
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		u := uses[v]
		if u == nil {
			return true
		}
		// Climb out of parens to the semantically relevant parent.
		var child ast.Node = id
		par := parents[child]
		for {
			pe, ok := par.(*ast.ParenExpr)
			if !ok {
				break
			}
			child = pe
			par = parents[child]
		}
		switch par := par.(type) {
		case *ast.SendStmt:
			if par.Chan == child {
				u.sends++
			} else {
				u.escaped = true // the channel value itself sent somewhere
			}
		case *ast.UnaryExpr:
			if par.Op == token.ARROW {
				if !insideSelect(parents, par) && !u.recvPos.IsValid() {
					u.recvPos = par.Pos()
				}
			} else {
				u.escaped = true // &ch and friends
			}
		case *ast.RangeStmt:
			if par.X == child {
				if !u.recvPos.IsValid() {
					u.recvPos = par.For
				}
			} else {
				u.escaped = true
			}
		case *ast.CallExpr:
			name := builtinName(info, par)
			switch {
			case name == "close":
				u.closes++
			case name == "len" || name == "cap":
				// neutral
			default:
				u.escaped = true // handed to code we cannot see
			}
		case *ast.AssignStmt:
			// Appearing in an assignment other than its own definition means
			// aliasing or reassignment; give up on it.
			defining := false
			if par.Tok == token.DEFINE {
				for _, l := range par.Lhs {
					if l == child {
						defining = info.Defs[id] != nil
					}
				}
			}
			if !defining {
				u.escaped = true
			}
		default:
			u.escaped = true
		}
		return true
	})

	for v, u := range uses {
		if u.escaped || u.sends > 0 || u.closes > 0 || !u.recvPos.IsValid() {
			continue
		}
		p.Reportf(u.recvPos, "receive on %s blocks forever: the channel never escapes this function and nothing sends to or closes it", v.Name())
	}
}

// parentMap records each node's parent within root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// insideSelect reports whether n sits in a select communication clause (where
// a receive does not necessarily block this path alone).
func insideSelect(parents map[ast.Node]ast.Node, n ast.Node) bool {
	for p := parents[n]; p != nil; p = parents[p] {
		switch p.(type) {
		case *ast.CommClause:
			return true
		case *ast.FuncLit:
			return false
		}
	}
	return false
}

// builtinName returns the name of the builtin a call invokes, or "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return ""
	}
	return id.Name
}
