package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WorkspacePair enforces the tensor.Workspace ownership contract (DESIGN.md
// §6): a buffer obtained from Get lives at most one frame, so within a
// function each Get result must either be released (Workspace.Put, the model
// package's wsPut helper, or a frame-level Reset) or handed onward (returned,
// possibly inside a composite literal, or assigned into another binding that
// the caller manages). Two things are violations:
//
//   - a Get result stored into a struct field, package variable, or element
//     of a non-local container — workspace buffers must not outlive the frame;
//   - a Get result that is used only in place (or not at all) and never Put
//     or handed onward — a leak that silently defers reclamation to the next
//     frame Reset.
//
// The check is flow-insensitive by design: error-return paths that skip a Put
// are NOT flagged, because the frame driver's Reset at the start of the next
// frame is the documented backstop for abandoned frames.
var WorkspacePair = &Analyzer{
	Name: "workspacepair",
	Doc:  "every tensor.Workspace.Get must be Put, returned, or handed onward; buffers must not escape the frame",
	Run:  runWorkspacePair,
}

func runWorkspacePair(p *Pass) {
	tensorPath := p.ModPath + "/internal/tensor"
	for _, pkg := range p.Targets {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkWorkspaceFunc(p, pkg, fd, tensorPath)
			}
		}
	}
}

// workspaceMethodCall reports whether call invokes the named method on a
// *tensor.Workspace receiver.
func workspaceMethodCall(info *types.Info, call *ast.CallExpr, tensorPath, method string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	f, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || f.Name() != method {
		return false
	}
	sig := f.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if pt, ok := t.(*types.Pointer); ok {
		t = pt.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Workspace" && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == tensorPath
}

// releasingCall reports whether call is a release of a workspace buffer: the
// Workspace.Put method or the repo's wsPut(ws, m) guard helper.
func releasingCall(info *types.Info, call *ast.CallExpr, tensorPath string) bool {
	if workspaceMethodCall(info, call, tensorPath, "Put") {
		return true
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "wsPut" {
		return true
	}
	return false
}

func checkWorkspaceFunc(p *Pass, pkg *Package, fd *ast.FuncDecl, tensorPath string) {
	info := pkg.Info

	// A function that Resets the workspace is a frame driver: every
	// outstanding buffer is reclaimed wholesale, so per-buffer pairing does
	// not apply.
	resets := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && workspaceMethodCall(info, call, tensorPath, "Reset") {
			resets = true
		}
		return !resets
	})

	type buffer struct {
		obj      *types.Var
		getPos   token.Pos
		released bool // Put / wsPut
		handed   bool // returned or re-assigned into a caller-visible binding
	}
	var buffers []*buffer
	byObj := map[*types.Var]*buffer{}

	// Pass 1: find Get calls and how their results are bound.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !workspaceMethodCall(info, call, tensorPath, "Get") {
					continue
				}
				lhs := ast.Unparen(n.Lhs[i])
				id, ok := lhs.(*ast.Ident)
				if !ok {
					p.Reportf(call.Pos(), "Workspace.Get result stored in %s: workspace buffers live at most one frame and must stay in locals", types.ExprString(lhs))
					continue
				}
				if id.Name == "_" {
					p.Reportf(call.Pos(), "Workspace.Get result discarded: the buffer can never be Put")
					continue
				}
				obj, _ := info.Defs[id].(*types.Var)
				if obj == nil {
					obj, _ = info.Uses[id].(*types.Var)
				}
				if obj == nil || obj.Parent() == nil || obj.Parent() == obj.Pkg().Scope() {
					p.Reportf(call.Pos(), "Workspace.Get result stored in package variable %s: workspace buffers live at most one frame", id.Name)
					continue
				}
				if existing, ok := byObj[obj]; ok {
					// Rebinding the same variable to a fresh buffer: judge
					// each Get by the variable's overall fate.
					_ = existing
					continue
				}
				b := &buffer{obj: obj, getPos: call.Pos()}
				buffers = append(buffers, b)
				byObj[obj] = b
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && workspaceMethodCall(info, call, tensorPath, "Get") {
				p.Reportf(call.Pos(), "Workspace.Get result discarded: the buffer can never be Put")
			}
		}
		return true
	})
	if len(buffers) == 0 || resets {
		return
	}

	// useOf resolves an expression to a tracked buffer when it is a bare
	// reference to one.
	useOf := func(e ast.Expr) *buffer {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		obj, _ := info.Uses[id].(*types.Var)
		if obj == nil {
			return nil
		}
		return byObj[obj]
	}
	// mentions reports every tracked buffer referenced anywhere inside e.
	mentions := func(e ast.Node) []*buffer {
		var out []*buffer
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj, _ := info.Uses[id].(*types.Var); obj != nil {
					if b := byObj[obj]; b != nil {
						out = append(out, b)
					}
				}
			}
			return true
		})
		return out
	}
	// handedBy reports the buffers an assignment RHS hands onward: the bare
	// buffer itself, or a buffer packed into a composite literal. Merely
	// reading a field or calling a method does not transfer ownership.
	handedBy := func(rhs ast.Expr) []*buffer {
		if b := useOf(rhs); b != nil {
			return []*buffer{b}
		}
		var out []*buffer
		ast.Inspect(rhs, func(n ast.Node) bool {
			if lit, ok := n.(*ast.CompositeLit); ok {
				out = append(out, mentions(lit)...)
			}
			return true
		})
		return out
	}

	// Pass 2: classify every subsequent use.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if releasingCall(info, n, tensorPath) {
				for _, arg := range n.Args {
					if b := useOf(arg); b != nil {
						b.released = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				for _, b := range mentions(res) {
					b.handed = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				// A fresh Get is the binding itself, not a hand-off.
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && workspaceMethodCall(info, call, tensorPath, "Get") {
					continue
				}
				for _, b := range handedBy(rhs) {
					if i < len(n.Lhs) {
						if lhs := ast.Unparen(n.Lhs[i]); escapesFrame(info, lhs) {
							p.Reportf(n.Pos(), "workspace buffer %s stored in %s: workspace buffers live at most one frame", b.obj.Name(), types.ExprString(lhs))
						}
					}
					b.handed = true
				}
			}
		case *ast.SendStmt:
			for _, b := range mentions(n.Value) {
				p.Reportf(n.Pos(), "workspace buffer %s sent on a channel: workspace buffers live at most one frame and are not goroutine-safe", b.obj.Name())
			}
		}
		return true
	})

	for _, b := range buffers {
		if !b.released && !b.handed {
			p.Reportf(b.getPos, "workspace buffer %s is neither Put nor handed onward: leaked until the next frame Reset", b.obj.Name())
		}
	}
}

// escapesFrame reports whether an assignment target outlives the current
// call frame: a struct field, a package-level variable, or an element of a
// container reached through either.
func escapesFrame(info *types.Info, lhs ast.Expr) bool {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		obj, _ := info.Uses[lhs].(*types.Var)
		if obj == nil {
			obj, _ = info.Defs[lhs].(*types.Var)
		}
		return obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
	case *ast.SelectorExpr:
		// A field store (x.f = buf). Selections of locals' fields still
		// escape when the struct itself is heap-shared; treat every field
		// store as an escape — the idiomatic hot path keeps buffers in plain
		// locals.
		if sel, ok := info.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
			return true
		}
		// Package-qualified identifier (pkg.Var = buf).
		if obj, ok := info.Uses[lhs.Sel].(*types.Var); ok {
			return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
		}
		return false
	case *ast.IndexExpr:
		return escapesFrame(info, ast.Unparen(lhs.X))
	case *ast.StarExpr:
		return false // writes through a pointer parameter are the caller's concern
	}
	return false
}
