package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the forward-dataflow half of the lint engine: a structured
// abstract interpreter over function bodies. A client analyzer supplies a
// small per-location lattice (int8 values plus a join) and transfer hooks for
// the events it cares about (calls, channel sends/receives, goroutine
// spawns); the walker supplies everything control-flow:
//
//   - statements execute in source order; branch states are cloned at
//     if/switch/select and joined at the merge point,
//   - loops are approximated as zero-or-one iterations (the body is analyzed
//     once from the loop-entry state and joined with it), with break and
//     continue landing where they land; `for {}` without a condition only
//     exits through break or return,
//   - defers are recorded in registration order and replayed last-in-first-out
//     at every exit point — a deferred func literal's body is walked inline at
//     exit time, so `defer func() { mu.Unlock() }()` releases exactly like
//     `defer mu.Unlock()`,
//   - return paths invoke the client's exit hook after defers; panic paths
//     terminate without an exit event (held locks on a dying goroutine are a
//     different failure than a leaked lock on a live one),
//   - goroutine bodies are NOT inlined into the spawning flow — they run
//     concurrently; the spawn hook receives the site and the client decides
//     what it means.
//
// The abstract state maps refKeys — root variable plus selector path, the
// engine's name for "a storage location we can identify statically" — to
// lattice values. Anything without a stable identity (index expressions,
// call results) is simply not tracked.

// refKey names a storage location: the local variable mu is {obj(mu), ""},
// s.mu is {obj(s), ".mu"}, e.cfg.Faults is {obj(e), ".cfg.Faults"}. Pointer
// indirection is transparent: (*p).mu and p.mu are the same location.
type refKey struct {
	root types.Object
	path string
}

// String renders the key for diagnostics, e.g. "e.mu" or "wg".
func (k refKey) String() string {
	if k.root == nil {
		return "<nil>" + k.path
	}
	return k.root.Name() + k.path
}

// keyOf resolves an expression to a refKey. ok is false for expressions
// without a stable static identity (calls, index expressions, literals).
func keyOf(info *types.Info, e ast.Expr) (refKey, bool) {
	path := ""
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			if v, ok := obj.(*types.Var); ok {
				return refKey{root: v, path: path}, true
			}
			return refKey{}, false
		case *ast.SelectorExpr:
			// A package-qualified identifier (pkg.Var) selects from a package
			// name, not a value; resolve the selection to its object directly.
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					if v, ok := info.Uses[x.Sel].(*types.Var); ok {
						return refKey{root: v, path: path}, true
					}
					return refKey{}, false
				}
			}
			path = "." + x.Sel.Name + path
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return refKey{}, false
			}
			e = x.X
		default:
			return refKey{}, false
		}
	}
}

// flowTop is the lattice's "conflicting paths" element. Clients must treat it
// as absorbing in their join.
const flowTop int8 = 127

// absState is the abstract state at one program point: tracked locations to
// lattice values. A nil absState marks an unreachable point.
type absState map[refKey]int8

func (s absState) clone() absState {
	if s == nil {
		return nil
	}
	c := make(absState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// keysSorted returns the state's keys in deterministic order (by declaration
// position, then path) so clients can iterate reproducibly.
func (s absState) keysSorted() []refKey {
	keys := make([]refKey, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].root.Pos() != keys[j].root.Pos() {
			return keys[i].root.Pos() < keys[j].root.Pos()
		}
		return keys[i].path < keys[j].path
	})
	return keys
}

// flowClient is the analyzer half of the dataflow engine. Hooks mutate the
// state in place; the walker owns cloning and joining.
type flowClient interface {
	// call fires for every call expression in execution order. deferred is
	// true when the call is a replayed `defer f(...)` at an exit point.
	call(st absState, call *ast.CallExpr, deferred bool)
	// send fires for every channel send statement.
	send(st absState, s *ast.SendStmt)
	// recv fires for every receive expression (<-ch).
	recv(st absState, u *ast.UnaryExpr)
	// spawn fires for every go statement; the spawned body is not walked.
	spawn(st absState, g *ast.GoStmt)
	// exit fires at every function exit (returns and fall-off), after defers.
	exit(st absState, pos token.Pos)
	// joinVal merges the lattice values of one location across two paths.
	// It is only called with a != b; flowTop must be absorbing.
	joinVal(a, b int8) int8
}

// flowWalker drives one function's walk.
type flowWalker struct {
	info   *types.Info
	client flowClient
	defers []*ast.CallExpr // registered defer sites, in registration order
	depth  int             // deferred-literal nesting guard
}

// breakable is one enclosing construct a break/continue can target.
type breakable struct {
	label   string
	isLoop  bool
	breakSt absState // join of states flowing out via break
	contSt  absState // join of states flowing out via continue (loops only)
}

// walkFlow runs the client over one declared function body.
func walkFlow(info *types.Info, decl *ast.FuncDecl, client flowClient) {
	w := &flowWalker{info: info, client: client}
	st := w.stmts(absState{}, decl.Body.List, nil, "")
	if st != nil {
		w.applyDefersAndExit(st, decl.Body.Rbrace)
	}
}

// join merges two path states; nil marks an unreachable path.
func (w *flowWalker) join(a, b absState) absState {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := a
	for k, bv := range b {
		av, ok := out[k]
		switch {
		case !ok:
			// Absent means lattice bottom (0): join with the client.
			if bv != 0 {
				out[k] = w.client.joinVal(0, bv)
			}
		case av != bv:
			out[k] = w.client.joinVal(av, bv)
		}
	}
	for k, av := range out {
		if _, ok := b[k]; !ok && av != 0 {
			out[k] = w.client.joinVal(av, 0)
		}
	}
	return out
}

// stmts walks a statement list under the innermost breakable stack entry.
func (w *flowWalker) stmts(st absState, list []ast.Stmt, stack []*breakable, label string) absState {
	for _, s := range list {
		if st == nil {
			return nil
		}
		st = w.stmt(st, s, stack, label)
		label = ""
	}
	return st
}

// stmt walks one statement and returns the fall-through state (nil when
// control cannot fall through).
func (w *flowWalker) stmt(st absState, s ast.Stmt, stack []*breakable, label string) absState {
	if st == nil || s == nil {
		return st
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.stmts(st, s.List, stack, "")
	case *ast.LabeledStmt:
		return w.stmt(st, s.Stmt, stack, s.Label.Name)
	case *ast.ExprStmt:
		w.expr(st, s.X)
		if isPanicCall(w.info, s.X) {
			w.applyDefers(st.clone())
			return nil // the panic path dies without an exit event
		}
		return st
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(st, e)
		}
		for _, e := range s.Lhs {
			w.expr(st, e)
		}
		return st
	case *ast.DeclStmt, *ast.EmptyStmt:
		if ds, ok := s.(*ast.DeclStmt); ok {
			ast.Inspect(ds, func(n ast.Node) bool {
				if e, ok := n.(ast.Expr); ok {
					w.expr(st, e)
					return false
				}
				return true
			})
		}
		return st
	case *ast.IncDecStmt:
		w.expr(st, s.X)
		return st
	case *ast.SendStmt:
		w.expr(st, s.Chan)
		w.expr(st, s.Value)
		w.client.send(st, s)
		return st
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			w.expr(st, a)
		}
		w.client.spawn(st, s)
		return st
	case *ast.DeferStmt:
		for _, a := range s.Call.Args {
			w.expr(st, a)
		}
		w.defers = append(w.defers, s.Call)
		return st
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(st, e)
		}
		w.applyDefersAndExit(st.clone(), s.Pos())
		return nil
	case *ast.BranchStmt:
		return w.branch(st, s, stack)
	case *ast.IfStmt:
		st = w.stmt(st, s.Init, stack, "")
		if st == nil {
			return nil
		}
		w.expr(st, s.Cond)
		thenSt := w.stmts(st.clone(), s.Body.List, stack, "")
		elseSt := st
		if s.Else != nil {
			elseSt = w.stmt(st.clone(), s.Else, stack, "")
		}
		return w.join(thenSt, elseSt)
	case *ast.ForStmt:
		st = w.stmt(st, s.Init, stack, "")
		if st == nil {
			return nil
		}
		w.expr(st, s.Cond)
		br := &breakable{label: label, isLoop: true}
		bodySt := w.stmts(st.clone(), s.Body.List, append(stack, br), "")
		bodySt = w.join(bodySt, br.contSt)
		if bodySt != nil && s.Post != nil {
			bodySt = w.stmt(bodySt, s.Post, stack, "")
		}
		if s.Cond == nil {
			// `for { ... }` exits only via break (or return, already handled).
			return br.breakSt
		}
		return w.join(w.join(st, bodySt), br.breakSt)
	case *ast.RangeStmt:
		w.expr(st, s.X)
		br := &breakable{label: label, isLoop: true}
		bodySt := w.stmts(st.clone(), s.Body.List, append(stack, br), "")
		bodySt = w.join(bodySt, br.contSt)
		return w.join(w.join(st, bodySt), br.breakSt)
	case *ast.SwitchStmt:
		st = w.stmt(st, s.Init, stack, "")
		if st == nil {
			return nil
		}
		w.expr(st, s.Tag)
		return w.switchBody(st, s.Body.List, stack, label, nil)
	case *ast.TypeSwitchStmt:
		st = w.stmt(st, s.Init, stack, "")
		if st == nil {
			return nil
		}
		st = w.stmt(st, s.Assign, stack, "")
		return w.switchBody(st, s.Body.List, stack, label, nil)
	case *ast.SelectStmt:
		return w.selectStmt(st, s, stack, label)
	default:
		return st
	}
}

// branch handles break/continue/goto/fallthrough. goto and fallthrough are
// approximated as path ends (conservative: no exit event, no report).
func (w *flowWalker) branch(st absState, s *ast.BranchStmt, stack []*breakable) absState {
	target := func(needLoop bool) *breakable {
		for i := len(stack) - 1; i >= 0; i-- {
			b := stack[i]
			if needLoop && !b.isLoop {
				continue
			}
			if s.Label == nil || b.label == s.Label.Name {
				return b
			}
		}
		return nil
	}
	switch s.Tok {
	case token.BREAK:
		if b := target(false); b != nil {
			b.breakSt = w.join(b.breakSt, st.clone())
		}
	case token.CONTINUE:
		if b := target(true); b != nil {
			b.contSt = w.join(b.contSt, st.clone())
		}
	}
	return nil
}

// switchBody joins the case-clause states; a switch without a default also
// joins the entry state (no case may match).
func (w *flowWalker) switchBody(st absState, clauses []ast.Stmt, stack []*breakable, label string, after absState) absState {
	br := &breakable{label: label}
	hasDefault := false
	for _, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		cst := st.clone()
		for _, e := range cc.List {
			w.expr(cst, e)
		}
		after = w.join(after, w.stmts(cst, cc.Body, append(stack, br), ""))
	}
	if !hasDefault {
		after = w.join(after, st)
	}
	return w.join(after, br.breakSt)
}

// selectStmt walks each communication clause from the entry state and joins.
// A select with no clauses blocks forever (unreachable fall-through).
func (w *flowWalker) selectStmt(st absState, s *ast.SelectStmt, stack []*breakable, label string) absState {
	if len(s.Body.List) == 0 {
		return nil
	}
	br := &breakable{label: label}
	var after absState
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		cst := st.clone()
		if cc.Comm != nil {
			cst = w.stmt(cst, cc.Comm, stack, "")
		}
		after = w.join(after, w.stmts(cst, cc.Body, append(stack, br), ""))
	}
	return w.join(after, br.breakSt)
}

// expr fires client events for the calls and receives inside one expression,
// in preorder. Function-literal bodies are skipped: a closure's effects
// happen when it runs, not where it is written (deferred literals are walked
// at exit by applyDefers; spawned literals belong to the spawn hook).
func (w *flowWalker) expr(st absState, e ast.Expr) {
	if e == nil || st == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			w.client.call(st, n, false)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.client.recv(st, n)
			}
		}
		return true
	})
}

// applyDefersAndExit replays the registered defers LIFO onto st and fires the
// exit hook.
func (w *flowWalker) applyDefersAndExit(st absState, pos token.Pos) {
	w.applyDefers(st)
	w.client.exit(st, pos)
}

// applyDefers replays deferred calls last-in-first-out. Conditionally
// registered defers are approximated as always registered (the standard
// approximation; a conditional defer-unlock joins to flowTop at the exit
// either way). A deferred func literal is walked inline: its body's events
// fire at exit time against the exit state.
func (w *flowWalker) applyDefers(st absState) {
	for i := len(w.defers) - 1; i >= 0; i-- {
		d := w.defers[i]
		if lit, ok := ast.Unparen(d.Fun).(*ast.FuncLit); ok {
			if w.depth < 4 { // defensive: deferred literals deferring literals
				sub := &flowWalker{info: w.info, client: &exitMuted{w.client}, depth: w.depth + 1}
				if out := sub.stmts(st, lit.Body.List, nil, ""); out != nil {
					sub.applyDefers(out)
				}
			}
			continue
		}
		w.client.call(st, d, true)
	}
}

// exitMuted wraps a client so that returns inside a deferred func literal do
// not fire the outer function's exit hook.
type exitMuted struct{ flowClient }

func (exitMuted) exit(absState, token.Pos) {}

// isPanicCall reports whether e is a direct call to the builtin panic.
func isPanicCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// funcLitOf returns the func literal spawned or called by call, if any.
func funcLitOf(call *ast.CallExpr) *ast.FuncLit {
	lit, _ := ast.Unparen(call.Fun).(*ast.FuncLit)
	return lit
}

// pathJoin concatenates two selector paths.
func pathJoin(a, b string) string {
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	return a + b
}

// slotKey keys a function summary entry: slot -1 is the receiver, slot i ≥ 0
// is parameter i; path is the selector chain below it.
type slotKey struct {
	slot int
	path string
}

// slotKeyOf maps a refKey rooted at one of n's parameters (or receiver) to
// its summary slot form; ok is false for keys rooted elsewhere (locals,
// globals — those do not survive the function boundary).
func slotKeyOf(n *cgNode, k refKey) (slotKey, bool) {
	slot, ok := n.paramSlot[k.root]
	if !ok {
		return slotKey{}, false
	}
	return slotKey{slot: slot, path: k.path}, true
}

// rebase maps a callee summary key onto the caller's state through one call
// site: the receiver slot comes from the selector base, parameter slots from
// the argument list. ok is false when the argument has no stable identity or
// the call shape does not line up (variadic spread, method values).
func rebase(info *types.Info, call *ast.CallExpr, sk slotKey) (refKey, bool) {
	var arg ast.Expr
	if sk.slot == -1 {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return refKey{}, false
		}
		arg = sel.X
	} else {
		if sk.slot >= len(call.Args) || call.Ellipsis.IsValid() {
			return refKey{}, false
		}
		arg = call.Args[sk.slot]
	}
	k, ok := keyOf(info, arg)
	if !ok {
		return refKey{}, false
	}
	return refKey{root: k.root, path: pathJoin(k.path, sk.path)}, true
}

// describeSlot renders a summary slot for diagnostics relative to a callee,
// e.g. "(*Engine).lock's receiver field .mu".
func describeSlot(sk slotKey) string {
	base := "receiver"
	if sk.slot >= 0 {
		base = "parameter"
	}
	if sk.path == "" {
		return base
	}
	return base + " " + strings.TrimPrefix(sk.path, ".")
}
