// Package geom provides the basic geometric types for point-cloud analytics:
// points, axis-aligned bounding boxes, and point clouds with optional
// per-point features and labels.
//
// A Cloud is the unit of data that flows through the EdgePC pipeline. Raw
// clouds are unordered and unevenly sampled; the morton package reorders them
// into a "structurized" form on which index-based sampling and neighbor
// search become meaningful.
package geom

import (
	"errors"
	"fmt"
	"math"
)

// Point3 is a point in 3-D space. Coordinates are float64 at the geometry
// layer for numerical robustness; the neural-network layers use float32.
type Point3 struct {
	X, Y, Z float64
}

// Add returns p + q.
func (p Point3) Add(q Point3) Point3 { return Point3{p.X + q.X, p.Y + q.Y, p.Z + q.Z} }

// Sub returns p - q.
func (p Point3) Sub(q Point3) Point3 { return Point3{p.X - q.X, p.Y - q.Y, p.Z - q.Z} }

// Scale returns p scaled by s.
func (p Point3) Scale(s float64) Point3 { return Point3{p.X * s, p.Y * s, p.Z * s} }

// Dot returns the dot product p·q.
func (p Point3) Dot(q Point3) float64 { return p.X*q.X + p.Y*q.Y + p.Z*q.Z }

// Norm returns the Euclidean length of p.
func (p Point3) Norm() float64 { return math.Sqrt(p.Dot(p)) }

// DistSq returns the squared Euclidean distance between p and q. Squared
// distances are used throughout the samplers and searchers to avoid sqrt in
// inner loops (comparisons are order-preserving).
func (p Point3) DistSq(q Point3) float64 {
	dx, dy, dz := p.X-q.X, p.Y-q.Y, p.Z-q.Z
	return dx*dx + dy*dy + dz*dz
}

// Dist returns the Euclidean distance between p and q.
func (p Point3) Dist(q Point3) float64 { return math.Sqrt(p.DistSq(q)) }

// IsFinite reports whether all coordinates are finite numbers.
func (p Point3) IsFinite() bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) &&
		!math.IsNaN(p.Y) && !math.IsInf(p.Y, 0) &&
		!math.IsNaN(p.Z) && !math.IsInf(p.Z, 0)
}

// AABB is an axis-aligned bounding box.
type AABB struct {
	Min, Max Point3
}

// EmptyAABB returns a box that contains nothing; extending it with any point
// yields a box containing exactly that point.
func EmptyAABB() AABB {
	inf := math.Inf(1)
	return AABB{Min: Point3{inf, inf, inf}, Max: Point3{-inf, -inf, -inf}}
}

// Extend grows the box to include p.
func (b *AABB) Extend(p Point3) {
	b.Min.X = math.Min(b.Min.X, p.X)
	b.Min.Y = math.Min(b.Min.Y, p.Y)
	b.Min.Z = math.Min(b.Min.Z, p.Z)
	b.Max.X = math.Max(b.Max.X, p.X)
	b.Max.Y = math.Max(b.Max.Y, p.Y)
	b.Max.Z = math.Max(b.Max.Z, p.Z)
}

// Size returns the box extents along each axis.
func (b AABB) Size() Point3 { return b.Max.Sub(b.Min) }

// MaxDim returns the longest extent of the box (the paper's D, the dimension
// of the point cloud's bounding box, which fixes grid_size r = D / 2^⌊a/3⌋).
func (b AABB) MaxDim() float64 {
	s := b.Size()
	return math.Max(s.X, math.Max(s.Y, s.Z))
}

// Contains reports whether p lies inside the closed box.
func (b AABB) Contains(p Point3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// IsValid reports whether the box has non-negative extent on every axis.
func (b AABB) IsValid() bool {
	return b.Min.X <= b.Max.X && b.Min.Y <= b.Max.Y && b.Min.Z <= b.Max.Z
}

// Cloud is a point cloud: N points, an optional dense feature matrix
// (N × FeatDim, row-major), and optional per-point integer labels.
//
// The zero Cloud is an empty cloud ready to be appended to.
type Cloud struct {
	Points  []Point3
	Feat    []float32 // len = len(Points) * FeatDim; nil if FeatDim == 0
	FeatDim int
	Labels  []int32 // nil or len = len(Points)
}

// ErrShape reports an inconsistency between a cloud's points, features and
// labels.
var ErrShape = errors.New("geom: inconsistent cloud shape")

// NewCloud allocates a cloud of n points with featDim features per point.
func NewCloud(n, featDim int) *Cloud {
	c := &Cloud{
		Points:  make([]Point3, n),
		FeatDim: featDim,
	}
	if featDim > 0 {
		c.Feat = make([]float32, n*featDim)
	}
	return c
}

// Len returns the number of points.
func (c *Cloud) Len() int { return len(c.Points) }

// Validate checks the internal shape invariants.
func (c *Cloud) Validate() error {
	n := len(c.Points)
	if c.FeatDim < 0 {
		return fmt.Errorf("%w: negative FeatDim %d", ErrShape, c.FeatDim)
	}
	if c.FeatDim == 0 && len(c.Feat) != 0 {
		return fmt.Errorf("%w: FeatDim=0 but %d feature values", ErrShape, len(c.Feat))
	}
	if c.FeatDim > 0 && len(c.Feat) != n*c.FeatDim {
		return fmt.Errorf("%w: want %d feature values, have %d", ErrShape, n*c.FeatDim, len(c.Feat))
	}
	if c.Labels != nil && len(c.Labels) != n {
		return fmt.Errorf("%w: %d labels for %d points", ErrShape, len(c.Labels), n)
	}
	return nil
}

// FeatureRow returns the feature vector of point i as a sub-slice of the
// cloud's feature storage (not a copy).
func (c *Cloud) FeatureRow(i int) []float32 {
	if c.FeatDim == 0 {
		return nil
	}
	return c.Feat[i*c.FeatDim : (i+1)*c.FeatDim]
}

// Bounds returns the axis-aligned bounding box of the cloud. An empty cloud
// returns the empty box.
func (c *Cloud) Bounds() AABB {
	b := EmptyAABB()
	for _, p := range c.Points {
		b.Extend(p)
	}
	return b
}

// Select returns a new cloud containing the points at the given indexes, in
// order, carrying features and labels along. Indexes may repeat.
func (c *Cloud) Select(idx []int) *Cloud {
	out := NewCloud(len(idx), c.FeatDim)
	if c.Labels != nil {
		out.Labels = make([]int32, len(idx))
	}
	for j, i := range idx {
		out.Points[j] = c.Points[i]
		if c.FeatDim > 0 {
			copy(out.FeatureRow(j), c.FeatureRow(i))
		}
		if c.Labels != nil {
			out.Labels[j] = c.Labels[i]
		}
	}
	return out
}

// Permute reorders the cloud in place so that new position j holds what was
// at perm[j]. perm must be a permutation of [0, N).
func (c *Cloud) Permute(perm []int) error {
	n := len(c.Points)
	if len(perm) != n {
		return fmt.Errorf("%w: permutation length %d for %d points", ErrShape, len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			return fmt.Errorf("%w: invalid permutation", ErrShape)
		}
		seen[p] = true
	}
	pts := make([]Point3, n)
	for j, i := range perm {
		pts[j] = c.Points[i]
	}
	c.Points = pts
	if c.FeatDim > 0 {
		feat := make([]float32, len(c.Feat))
		for j, i := range perm {
			copy(feat[j*c.FeatDim:(j+1)*c.FeatDim], c.Feat[i*c.FeatDim:(i+1)*c.FeatDim])
		}
		c.Feat = feat
	}
	if c.Labels != nil {
		lab := make([]int32, n)
		for j, i := range perm {
			lab[j] = c.Labels[i]
		}
		c.Labels = lab
	}
	return nil
}

// Clone returns a deep copy of the cloud.
func (c *Cloud) Clone() *Cloud {
	out := &Cloud{FeatDim: c.FeatDim}
	out.Points = append([]Point3(nil), c.Points...)
	if c.Feat != nil {
		out.Feat = append([]float32(nil), c.Feat...)
	}
	if c.Labels != nil {
		out.Labels = append([]int32(nil), c.Labels...)
	}
	return out
}

// DropNonFinite removes points with NaN/Inf coordinates (LiDAR returns can
// contain invalid samples), keeping features and labels aligned. It returns
// the number of points removed.
func (c *Cloud) DropNonFinite() int {
	n := len(c.Points)
	keep := make([]int, 0, n)
	for i, p := range c.Points {
		if p.IsFinite() {
			keep = append(keep, i)
		}
	}
	if len(keep) == n {
		return 0
	}
	clean := c.Select(keep)
	*c = *clean
	return n - len(keep)
}
