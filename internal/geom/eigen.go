package geom

import "math"

// Symmetric3 is a symmetric 3×3 matrix stored by its six distinct entries —
// enough linear algebra for covariance analysis (normal estimation).
type Symmetric3 struct {
	XX, XY, XZ, YY, YZ, ZZ float64
}

// Covariance3 accumulates the covariance matrix of a point set about its
// centroid.
func Covariance3(pts []Point3) Symmetric3 {
	if len(pts) == 0 {
		return Symmetric3{}
	}
	var c Point3
	for _, p := range pts {
		c = c.Add(p)
	}
	c = c.Scale(1 / float64(len(pts)))
	var m Symmetric3
	for _, p := range pts {
		d := p.Sub(c)
		m.XX += d.X * d.X
		m.XY += d.X * d.Y
		m.XZ += d.X * d.Z
		m.YY += d.Y * d.Y
		m.YZ += d.Y * d.Z
		m.ZZ += d.Z * d.Z
	}
	inv := 1 / float64(len(pts))
	m.XX *= inv
	m.XY *= inv
	m.XZ *= inv
	m.YY *= inv
	m.YZ *= inv
	m.ZZ *= inv
	return m
}

// EigenSmallest returns the unit eigenvector of the smallest eigenvalue via
// cyclic Jacobi rotations — the surface normal direction when the matrix is
// a local covariance. Degenerate inputs (zero matrix) return the Z axis.
func (m Symmetric3) EigenSmallest() Point3 {
	// Dense working copy a and accumulated rotations v.
	a := [3][3]float64{
		{m.XX, m.XY, m.XZ},
		{m.XY, m.YY, m.YZ},
		{m.XZ, m.YZ, m.ZZ},
	}
	v := [3][3]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	for sweep := 0; sweep < 32; sweep++ {
		off := a[0][1]*a[0][1] + a[0][2]*a[0][2] + a[1][2]*a[1][2]
		if off < 1e-24 {
			break
		}
		for p := 0; p < 2; p++ {
			for q := p + 1; q < 3; q++ {
				if math.Abs(a[p][q]) < 1e-18 {
					continue
				}
				theta := (a[q][q] - a[p][p]) / (2 * a[p][q])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < 3; k++ {
					akp, akq := a[k][p], a[k][q]
					a[k][p] = c*akp - s*akq
					a[k][q] = s*akp + c*akq
				}
				for k := 0; k < 3; k++ {
					apk, aqk := a[p][k], a[q][k]
					a[p][k] = c*apk - s*aqk
					a[q][k] = s*apk + c*aqk
				}
				for k := 0; k < 3; k++ {
					vkp, vkq := v[k][p], v[k][q]
					v[k][p] = c*vkp - s*vkq
					v[k][q] = s*vkp + c*vkq
				}
			}
		}
	}
	best := 0
	for i := 1; i < 3; i++ {
		if a[i][i] < a[best][best] {
			best = i
		}
	}
	n := Point3{v[0][best], v[1][best], v[2][best]}
	if l := n.Norm(); l > 1e-12 {
		return n.Scale(1 / l)
	}
	return Point3{Z: 1}
}
