package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPoint3Arithmetic(t *testing.T) {
	p := Point3{1, 2, 3}
	q := Point3{4, 5, 6}
	if got := p.Add(q); got != (Point3{5, 7, 9}) {
		t.Fatalf("Add = %v", got)
	}
	if got := q.Sub(p); got != (Point3{3, 3, 3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point3{2, 4, 6}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
}

func TestDistSqMatchesDist(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		// Keep values in a sane range to avoid overflow-to-Inf noise.
		clamp := func(v float64) float64 { return math.Mod(v, 1e6) }
		p := Point3{clamp(ax), clamp(ay), clamp(az)}
		q := Point3{clamp(bx), clamp(by), clamp(bz)}
		d := p.Dist(q)
		return math.Abs(d*d-p.DistSq(q)) <= 1e-6*(1+p.DistSq(q))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIsFinite(t *testing.T) {
	if !(Point3{1, 2, 3}).IsFinite() {
		t.Fatal("finite point reported non-finite")
	}
	bad := []Point3{
		{math.NaN(), 0, 0},
		{0, math.Inf(1), 0},
		{0, 0, math.Inf(-1)},
	}
	for _, p := range bad {
		if p.IsFinite() {
			t.Fatalf("%v reported finite", p)
		}
	}
}

func TestAABBExtend(t *testing.T) {
	b := EmptyAABB()
	if b.IsValid() {
		t.Fatal("empty box is valid")
	}
	b.Extend(Point3{1, 2, 3})
	b.Extend(Point3{-1, 5, 0})
	if !b.IsValid() {
		t.Fatal("extended box invalid")
	}
	if b.Min != (Point3{-1, 2, 0}) || b.Max != (Point3{1, 5, 3}) {
		t.Fatalf("bounds = %v", b)
	}
	if b.MaxDim() != 3 {
		t.Fatalf("MaxDim = %v, want 3", b.MaxDim())
	}
	if !b.Contains(Point3{0, 3, 1}) {
		t.Fatal("Contains(inside) = false")
	}
	if b.Contains(Point3{2, 3, 1}) {
		t.Fatal("Contains(outside) = true")
	}
}

func TestCloudValidate(t *testing.T) {
	c := NewCloud(3, 2)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.Feat = c.Feat[:5]
	if err := c.Validate(); err == nil {
		t.Fatal("truncated features: want error")
	}
	c = NewCloud(3, 0)
	c.Labels = make([]int32, 2)
	if err := c.Validate(); err == nil {
		t.Fatal("short labels: want error")
	}
}

func TestCloudSelect(t *testing.T) {
	c := NewCloud(4, 2)
	for i := range c.Points {
		c.Points[i] = Point3{X: float64(i)}
		c.FeatureRow(i)[0] = float32(i)
		c.FeatureRow(i)[1] = float32(i * 10)
	}
	c.Labels = []int32{0, 1, 2, 3}
	out := c.Select([]int{3, 1, 1})
	if out.Len() != 3 {
		t.Fatalf("Len = %d", out.Len())
	}
	if out.Points[0].X != 3 || out.Points[1].X != 1 || out.Points[2].X != 1 {
		t.Fatalf("points = %v", out.Points)
	}
	if out.FeatureRow(0)[1] != 30 {
		t.Fatalf("features not carried: %v", out.FeatureRow(0))
	}
	if out.Labels[0] != 3 {
		t.Fatalf("labels not carried: %v", out.Labels)
	}
}

func TestCloudPermute(t *testing.T) {
	c := NewCloud(3, 1)
	for i := range c.Points {
		c.Points[i] = Point3{X: float64(i)}
		c.FeatureRow(i)[0] = float32(i)
	}
	c.Labels = []int32{10, 11, 12}
	if err := c.Permute([]int{2, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if c.Points[0].X != 2 || c.Points[1].X != 0 || c.Points[2].X != 1 {
		t.Fatalf("points = %v", c.Points)
	}
	if c.Feat[0] != 2 || c.Labels[0] != 12 {
		t.Fatal("features/labels not permuted together")
	}
}

func TestCloudPermuteRejectsInvalid(t *testing.T) {
	c := NewCloud(3, 0)
	if err := c.Permute([]int{0, 1}); err == nil {
		t.Fatal("short permutation: want error")
	}
	if err := c.Permute([]int{0, 0, 1}); err == nil {
		t.Fatal("duplicate permutation: want error")
	}
	if err := c.Permute([]int{0, 1, 5}); err == nil {
		t.Fatal("out-of-range permutation: want error")
	}
}

func TestCloudClone(t *testing.T) {
	c := NewCloud(2, 1)
	c.Labels = []int32{1, 2}
	d := c.Clone()
	d.Points[0].X = 99
	d.Feat[0] = 7
	d.Labels[0] = 9
	if c.Points[0].X == 99 || c.Feat[0] == 7 || c.Labels[0] == 9 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestDropNonFinite(t *testing.T) {
	c := NewCloud(4, 1)
	c.Points[1].X = math.NaN()
	c.Points[3].Y = math.Inf(1)
	c.Labels = []int32{0, 1, 2, 3}
	for i := range c.Points {
		c.FeatureRow(i)[0] = float32(i)
	}
	removed := c.DropNonFinite()
	if removed != 2 || c.Len() != 2 {
		t.Fatalf("removed %d, len %d", removed, c.Len())
	}
	if c.Labels[1] != 2 || c.FeatureRow(1)[0] != 2 {
		t.Fatal("labels/features misaligned after drop")
	}
	if c.DropNonFinite() != 0 {
		t.Fatal("second pass removed points")
	}
}

func TestBoundsEmptyCloud(t *testing.T) {
	c := NewCloud(0, 0)
	if c.Bounds().IsValid() {
		t.Fatal("empty cloud bounds should be invalid")
	}
}
