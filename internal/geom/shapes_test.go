package geom

import (
	"math"
	"testing"
)

func TestGenerateShapeCountsAndFiniteness(t *testing.T) {
	for kind := ShapeKind(0); kind < NumShapeKinds; kind++ {
		c := GenerateShape(kind, ShapeOptions{N: 200, Noise: 0.01, DensitySkew: 0.5, Seed: int64(kind)})
		if c.Len() != 200 {
			t.Fatalf("%v: %d points", kind, c.Len())
		}
		for i, p := range c.Points {
			if !p.IsFinite() {
				t.Fatalf("%v: point %d not finite: %v", kind, i, p)
			}
		}
	}
}

func TestGenerateShapeDeterministic(t *testing.T) {
	a := GenerateShape(ShapeTorus, ShapeOptions{N: 50, Seed: 42})
	b := GenerateShape(ShapeTorus, ShapeOptions{N: 50, Seed: 42})
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatal("same seed produced different shapes")
		}
	}
	c := GenerateShape(ShapeTorus, ShapeOptions{N: 50, Seed: 43})
	same := true
	for i := range a.Points {
		if a.Points[i] != c.Points[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical shapes")
	}
}

func TestShapeKindString(t *testing.T) {
	if ShapeSphere.String() != "sphere" || ShapeShell.String() != "shell" {
		t.Fatal("shape names wrong")
	}
	if ShapeKind(99).String() != "unknown" {
		t.Fatal("out-of-range kind should be unknown")
	}
}

func TestSpherePointsOnUnitSphere(t *testing.T) {
	c := GenerateShape(ShapeSphere, ShapeOptions{N: 500, Seed: 1})
	for _, p := range c.Points {
		if math.Abs(p.Norm()-1) > 1e-9 {
			t.Fatalf("sphere point at radius %v", p.Norm())
		}
	}
}

func TestDensitySkewClustersPoints(t *testing.T) {
	// With strong skew, points crowd near the u≈0 end of the
	// parameterization: the spread of theta should shrink.
	even := GenerateShape(ShapeCylinder, ShapeOptions{N: 2000, Seed: 5})
	skewed := GenerateShape(ShapeCylinder, ShapeOptions{N: 2000, DensitySkew: 1, Seed: 5})
	// Count points with x > 0.9 (theta near 0): the skewed cloud should
	// have clearly more.
	count := func(c *Cloud) int {
		n := 0
		for _, p := range c.Points {
			if p.X > 0.9 {
				n++
			}
		}
		return n
	}
	if count(skewed) <= count(even) {
		t.Fatalf("skewed cloud not clustered: %d vs %d near theta=0", count(skewed), count(even))
	}
}

func TestSyntheticBunnyPointCount(t *testing.T) {
	b := SyntheticBunny(1)
	if b.Len() != 40256 {
		t.Fatalf("bunny has %d points, want 40256 (Stanford Bunny size)", b.Len())
	}
	for _, p := range b.Points {
		if !p.IsFinite() {
			t.Fatal("bunny point not finite")
		}
	}
}

func TestGenerateSceneLabelsAndBudget(t *testing.T) {
	c := GenerateScene(SceneOptions{N: 3000, Seed: 9})
	if c.Len() < 3000 {
		t.Fatalf("scene has %d points, want ≥ 3000", c.Len())
	}
	if len(c.Labels) != c.Len() {
		t.Fatalf("%d labels for %d points", len(c.Labels), c.Len())
	}
	seen := map[int32]int{}
	for _, l := range c.Labels {
		if l < 0 || l >= NumSceneClasses {
			t.Fatalf("label %d out of range", l)
		}
		seen[l]++
	}
	// Structure and furniture classes must all appear in a default room.
	for _, must := range []int32{ClassFloor, ClassWall, ClassClutter} {
		if seen[must] == 0 {
			t.Fatalf("class %s absent from scene", SceneClassName(must))
		}
	}
}

func TestSceneClassName(t *testing.T) {
	if SceneClassName(ClassSofa) != "sofa" {
		t.Fatal("wrong class name")
	}
	if SceneClassName(-1) != "unknown" || SceneClassName(99) != "unknown" {
		t.Fatal("out-of-range label should be unknown")
	}
}

func TestScenePointsInsideRoom(t *testing.T) {
	opts := SceneOptions{N: 2000, RoomW: 4, RoomD: 3, RoomH: 2.5, Seed: 3}
	c := GenerateScene(opts)
	for i, p := range c.Points {
		// Clutter jitter may poke slightly outside; allow a small margin.
		const eps = 0.5
		if p.X < -eps || p.X > opts.RoomW+eps || p.Y < -eps || p.Y > opts.RoomD+eps || p.Z < -eps || p.Z > opts.RoomH+eps {
			t.Fatalf("point %d at %v escapes the room", i, p)
		}
	}
}
