package geom

import (
	"math"
	"math/rand"
)

// Training-time geometric augmentation — the standard point-cloud recipe
// (random Z rotation, anisotropic scale, Gaussian jitter) used when
// retraining the networks. Augmentation matters doubly under EdgePC: the
// Morton grid is axis-aligned, so rotations change which points share voxels
// and teach the network not to overfit one structurization.

// RotateZ rotates the cloud in place around the Z axis by angle radians.
func (c *Cloud) RotateZ(angle float64) {
	s, cos := math.Sin(angle), math.Cos(angle)
	for i, p := range c.Points {
		c.Points[i] = Point3{
			X: p.X*cos - p.Y*s,
			Y: p.X*s + p.Y*cos,
			Z: p.Z,
		}
	}
}

// Scale scales the cloud in place about the origin.
func (c *Cloud) Scale(sx, sy, sz float64) {
	for i, p := range c.Points {
		c.Points[i] = Point3{X: p.X * sx, Y: p.Y * sy, Z: p.Z * sz}
	}
}

// Translate shifts the cloud in place.
func (c *Cloud) Translate(d Point3) {
	for i, p := range c.Points {
		c.Points[i] = p.Add(d)
	}
}

// Jitter adds independent Gaussian noise with the given standard deviation
// to every coordinate, clipped at ±3σ (the PointNet recipe).
func (c *Cloud) Jitter(sigma float64, rng *rand.Rand) {
	if sigma <= 0 {
		return
	}
	clip := 3 * sigma
	n := func() float64 {
		v := rng.NormFloat64() * sigma
		if v > clip {
			return clip
		}
		if v < -clip {
			return -clip
		}
		return v
	}
	for i, p := range c.Points {
		c.Points[i] = Point3{X: p.X + n(), Y: p.Y + n(), Z: p.Z + n()}
	}
}

// AugmentOptions parameterizes DefaultAugment.
type AugmentOptions struct {
	RotateZ     bool    // random rotation in [0, 2π)
	ScaleLo     float64 // uniform scale range (0 disables; typical 0.8–1.25)
	ScaleHi     float64
	JitterSigma float64 // Gaussian jitter stddev (typical 0.01 of unit size)
}

// DefaultAugmentOptions returns the standard recipe.
func DefaultAugmentOptions() AugmentOptions {
	return AugmentOptions{RotateZ: true, ScaleLo: 0.8, ScaleHi: 1.25, JitterSigma: 0.01}
}

// Augment returns an augmented deep copy of the cloud.
func Augment(c *Cloud, opts AugmentOptions, rng *rand.Rand) *Cloud {
	out := c.Clone()
	if opts.RotateZ {
		out.RotateZ(rng.Float64() * 2 * math.Pi)
	}
	if opts.ScaleHi > opts.ScaleLo && opts.ScaleLo > 0 {
		s := opts.ScaleLo + rng.Float64()*(opts.ScaleHi-opts.ScaleLo)
		out.Scale(s, s, s)
	}
	out.Jitter(opts.JitterSigma, rng)
	return out
}
