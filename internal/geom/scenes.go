package geom

import (
	"math"
	"math/rand"
)

// Indoor-scene synthesis: the stand-in for S3DIS and ScanNet. A scene is a
// room (floor, ceiling, four walls) populated with furniture primitives, each
// point labelled with its semantic class. Scanner-style density falloff with
// distance from a virtual sensor gives the uneven sampling the paper's
// experiments rely on.

// Semantic classes for the synthetic indoor scenes.
const (
	ClassFloor int32 = iota
	ClassCeiling
	ClassWall
	ClassTable
	ClassChair
	ClassSofa
	ClassShelf
	ClassClutter
	NumSceneClasses
)

var sceneClassNames = [...]string{
	"floor", "ceiling", "wall", "table", "chair", "sofa", "shelf", "clutter",
}

// SceneClassName returns the semantic class name for a label.
func SceneClassName(label int32) string {
	if label < 0 || int(label) >= len(sceneClassNames) {
		return "unknown"
	}
	return sceneClassNames[label]
}

// SceneOptions controls indoor-scene synthesis.
type SceneOptions struct {
	N         int     // total points in the scene
	RoomW     float64 // room width (m); default 6
	RoomD     float64 // room depth (m); default 5
	RoomH     float64 // room height (m); default 3
	Furniture int     // number of furniture pieces; default 6
	// Intensity attaches a one-channel per-point reflectance feature
	// (material-dependent base + noise), the stand-in for the RGB channels
	// real S3DIS scans carry.
	Intensity bool
	Seed      int64
}

func (o *SceneOptions) defaults() {
	if o.RoomW == 0 {
		o.RoomW = 6
	}
	if o.RoomD == 0 {
		o.RoomD = 5
	}
	if o.RoomH == 0 {
		o.RoomH = 3
	}
	if o.Furniture == 0 {
		o.Furniture = 6
	}
}

// GenerateScene synthesizes a labelled indoor scene with n points.
func GenerateScene(opts SceneOptions) *Cloud {
	opts.defaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	c := NewCloud(0, 0)
	c.Labels = []int32{}

	// Budget: 45% structure (floor/ceiling/walls), 45% furniture, 10% clutter.
	structureN := opts.N * 45 / 100
	furnitureN := opts.N * 45 / 100
	clutterN := opts.N - structureN - furnitureN

	sensor := Point3{opts.RoomW / 2, opts.RoomD / 2, 1.5}

	addStructure(c, rng, opts, structureN, sensor)
	addFurniture(c, rng, opts, furnitureN, sensor)
	addClutter(c, rng, opts, clutterN)
	if opts.Intensity {
		attachIntensity(c, rng)
	}
	return c
}

// classReflectance is the material-dependent base intensity per semantic
// class (painted ceiling bright, upholstery dark).
var classReflectance = [NumSceneClasses]float32{
	ClassFloor:   0.75,
	ClassCeiling: 0.90,
	ClassWall:    0.60,
	ClassTable:   0.45,
	ClassChair:   0.35,
	ClassSofa:    0.25,
	ClassShelf:   0.50,
	ClassClutter: 0.15,
}

func attachIntensity(c *Cloud, rng *rand.Rand) {
	c.FeatDim = 1
	c.Feat = make([]float32, c.Len())
	for i, label := range c.Labels {
		v := classReflectance[label] + float32(rng.NormFloat64())*0.05
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		c.Feat[i] = v
	}
}

// densityKeep implements scanner-style density falloff: points far from the
// sensor are kept with lower probability, so near surfaces are oversampled.
func densityKeep(rng *rand.Rand, p, sensor Point3) bool {
	d := p.Dist(sensor)
	keep := 1.0 / (1.0 + 0.15*d*d)
	return rng.Float64() < keep
}

func appendLabeled(c *Cloud, p Point3, label int32) {
	c.Points = append(c.Points, p)
	c.Labels = append(c.Labels, label)
}

func addStructure(c *Cloud, rng *rand.Rand, opts SceneOptions, budget int, sensor Point3) {
	for len(c.Points) < budget {
		surf := rng.Intn(6)
		var p Point3
		var label int32
		u, v := rng.Float64(), rng.Float64()
		switch surf {
		case 0: // floor
			p, label = Point3{u * opts.RoomW, v * opts.RoomD, 0}, ClassFloor
		case 1: // ceiling
			p, label = Point3{u * opts.RoomW, v * opts.RoomD, opts.RoomH}, ClassCeiling
		case 2:
			p, label = Point3{0, u * opts.RoomD, v * opts.RoomH}, ClassWall
		case 3:
			p, label = Point3{opts.RoomW, u * opts.RoomD, v * opts.RoomH}, ClassWall
		case 4:
			p, label = Point3{u * opts.RoomW, 0, v * opts.RoomH}, ClassWall
		default:
			p, label = Point3{u * opts.RoomW, opts.RoomD, v * opts.RoomH}, ClassWall
		}
		if densityKeep(rng, p, sensor) {
			appendLabeled(c, p, label)
		}
	}
}

type furnitureSpec struct {
	label int32
	// size ranges (w, d, h)
	wMin, wMax, dMin, dMax, hMin, hMax float64
}

var furnitureSpecs = []furnitureSpec{
	{ClassTable, 0.8, 1.6, 0.6, 1.0, 0.7, 0.8},
	{ClassChair, 0.4, 0.5, 0.4, 0.5, 0.8, 1.0},
	{ClassSofa, 1.4, 2.2, 0.8, 1.0, 0.7, 0.9},
	{ClassShelf, 0.8, 1.2, 0.3, 0.4, 1.6, 2.2},
}

func addFurniture(c *Cloud, rng *rand.Rand, opts SceneOptions, budget int, sensor Point3) {
	start := len(c.Points)
	perPiece := budget / opts.Furniture
	for f := 0; f < opts.Furniture; f++ {
		spec := furnitureSpecs[rng.Intn(len(furnitureSpecs))]
		w := spec.wMin + rng.Float64()*(spec.wMax-spec.wMin)
		d := spec.dMin + rng.Float64()*(spec.dMax-spec.dMin)
		h := spec.hMin + rng.Float64()*(spec.hMax-spec.hMin)
		ox := rng.Float64() * (opts.RoomW - w)
		oy := rng.Float64() * (opts.RoomD - d)
		count := 0
		for count < perPiece && len(c.Points)-start < budget {
			p := boxSurfacePoint(rng, ox, oy, 0, w, d, h)
			if densityKeep(rng, p, sensor) {
				appendLabeled(c, p, spec.label)
				count++
			}
		}
	}
	// Fill any rounding remainder with table points.
	for len(c.Points)-start < budget {
		appendLabeled(c, Point3{rng.Float64() * opts.RoomW, rng.Float64() * opts.RoomD, 0.75}, ClassTable)
	}
}

// boxSurfacePoint samples the surface of an axis-aligned box with origin
// (ox,oy,oz) and extents (w,d,h).
func boxSurfacePoint(rng *rand.Rand, ox, oy, oz, w, d, h float64) Point3 {
	// Choose a face weighted by area.
	areas := [6]float64{w * d, w * d, w * h, w * h, d * h, d * h}
	total := 0.0
	for _, a := range areas {
		total += a
	}
	pick := rng.Float64() * total
	face := 0
	for pick > areas[face] && face < 5 {
		pick -= areas[face]
		face++
	}
	u, v := rng.Float64(), rng.Float64()
	switch face {
	case 0:
		return Point3{ox + u*w, oy + v*d, oz}
	case 1:
		return Point3{ox + u*w, oy + v*d, oz + h}
	case 2:
		return Point3{ox + u*w, oy, oz + v*h}
	case 3:
		return Point3{ox + u*w, oy + d, oz + v*h}
	case 4:
		return Point3{ox, oy + u*d, oz + v*h}
	default:
		return Point3{ox + w, oy + u*d, oz + v*h}
	}
}

func addClutter(c *Cloud, rng *rand.Rand, opts SceneOptions, budget int) {
	for i := 0; i < budget; i++ {
		// Small dense clusters at random heights — books, lamps, bags.
		cx := rng.Float64() * opts.RoomW
		cy := rng.Float64() * opts.RoomD
		cz := rng.Float64() * opts.RoomH * 0.6
		p := Point3{
			cx + rng.NormFloat64()*0.08,
			cy + rng.NormFloat64()*0.08,
			cz + math.Abs(rng.NormFloat64()*0.08),
		}
		appendLabeled(c, p, ClassClutter)
	}
}
