package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestRotateZPreservesNormsAndZ(t *testing.T) {
	c := GenerateShape(ShapeBlob, ShapeOptions{N: 100, Seed: 1})
	orig := c.Clone()
	c.RotateZ(math.Pi / 3)
	for i, p := range c.Points {
		o := orig.Points[i]
		if math.Abs(p.Z-o.Z) > 1e-12 {
			t.Fatalf("rotation changed Z at %d", i)
		}
		rBefore := math.Hypot(o.X, o.Y)
		rAfter := math.Hypot(p.X, p.Y)
		if math.Abs(rBefore-rAfter) > 1e-9 {
			t.Fatalf("rotation changed XY radius at %d: %v vs %v", i, rBefore, rAfter)
		}
	}
}

func TestRotateZFullCircle(t *testing.T) {
	c := GenerateShape(ShapeTorus, ShapeOptions{N: 50, Seed: 2})
	orig := c.Clone()
	c.RotateZ(2 * math.Pi)
	for i := range c.Points {
		if c.Points[i].Dist(orig.Points[i]) > 1e-9 {
			t.Fatalf("2π rotation moved point %d", i)
		}
	}
}

func TestScaleAndTranslate(t *testing.T) {
	c := NewCloud(1, 0)
	c.Points[0] = Point3{1, 2, 3}
	c.Scale(2, 3, 4)
	if c.Points[0] != (Point3{2, 6, 12}) {
		t.Fatalf("scale = %v", c.Points[0])
	}
	c.Translate(Point3{-1, -1, -1})
	if c.Points[0] != (Point3{1, 5, 11}) {
		t.Fatalf("translate = %v", c.Points[0])
	}
}

func TestJitterBoundedAndZeroSigmaNoop(t *testing.T) {
	c := GenerateShape(ShapeSphere, ShapeOptions{N: 500, Seed: 3})
	orig := c.Clone()
	rng := rand.New(rand.NewSource(4))
	c.Jitter(0, rng)
	for i := range c.Points {
		if c.Points[i] != orig.Points[i] {
			t.Fatal("sigma=0 jitter moved points")
		}
	}
	const sigma = 0.02
	c.Jitter(sigma, rng)
	moved := 0
	for i := range c.Points {
		d := c.Points[i].Sub(orig.Points[i])
		for _, v := range []float64{d.X, d.Y, d.Z} {
			if math.Abs(v) > 3*sigma+1e-12 {
				t.Fatalf("jitter exceeded clip: %v", v)
			}
			if v != 0 {
				moved++
			}
		}
	}
	if moved == 0 {
		t.Fatal("jitter moved nothing")
	}
}

func TestAugmentIsACopy(t *testing.T) {
	c := GenerateShape(ShapeBox, ShapeOptions{N: 60, Seed: 5})
	c.Labels = make([]int32, 60)
	orig := c.Clone()
	rng := rand.New(rand.NewSource(6))
	a := Augment(c, DefaultAugmentOptions(), rng)
	for i := range c.Points {
		if c.Points[i] != orig.Points[i] {
			t.Fatal("Augment mutated the input")
		}
	}
	if a.Len() != c.Len() || len(a.Labels) != len(c.Labels) {
		t.Fatal("Augment changed shape")
	}
	different := false
	for i := range a.Points {
		if a.Points[i] != c.Points[i] {
			different = true
			break
		}
	}
	if !different {
		t.Fatal("Augment returned identical points")
	}
}
