package geom

import (
	"math"
	"math/rand"
)

// The procedural generators below stand in for the paper's datasets
// (ModelNet40, ShapeNet, S3DIS, ScanNet, Stanford Bunny). Each produces a
// surface sampled with deliberately *uneven* density — the property that
// makes raw uniform index sampling fail (Fig. 4b) and that the Morton
// structurization repairs (Fig. 4c).

// ShapeKind enumerates the procedural shape families. They double as class
// labels in the synthetic classification dataset.
type ShapeKind int

// Shape families. The order is the class-label order of the synthetic
// classification dataset.
const (
	ShapeSphere ShapeKind = iota
	ShapeTorus
	ShapeBox
	ShapeCylinder
	ShapeCone
	ShapePlane
	ShapeHelix
	ShapeBlob
	ShapeCross
	ShapeShell
	NumShapeKinds
)

var shapeNames = [...]string{
	"sphere", "torus", "box", "cylinder", "cone",
	"plane", "helix", "blob", "cross", "shell",
}

// String returns the shape family name.
func (k ShapeKind) String() string {
	if k < 0 || int(k) >= len(shapeNames) {
		return "unknown"
	}
	return shapeNames[k]
}

// ShapeOptions controls procedural shape synthesis.
type ShapeOptions struct {
	N           int     // number of points
	Noise       float64 // Gaussian surface noise stddev (fraction of unit size)
	DensitySkew float64 // 0 = even sampling; 1 = strongly clustered sampling
	Seed        int64
}

// GenerateShape samples n points from the surface of the given shape family.
// DensitySkew warps the surface parameterization so that some regions are
// sampled much more densely than others, mimicking real scans.
func GenerateShape(kind ShapeKind, opts ShapeOptions) *Cloud {
	rng := rand.New(rand.NewSource(opts.Seed))
	c := NewCloud(opts.N, 0)
	for i := 0; i < opts.N; i++ {
		u, v := warp(rng.Float64(), opts.DensitySkew), rng.Float64()
		var p Point3
		switch kind {
		case ShapeSphere:
			p = spherePoint(u, v)
		case ShapeTorus:
			p = torusPoint(u, v, 0.35)
		case ShapeBox:
			p = boxPoint(rng)
		case ShapeCylinder:
			p = cylinderPoint(u, v)
		case ShapeCone:
			p = conePoint(u, v)
		case ShapePlane:
			p = Point3{u*2 - 1, v*2 - 1, 0}
		case ShapeHelix:
			p = helixPoint(u, v)
		case ShapeBlob:
			p = blobPoint(u, v, 3, 0.3)
		case ShapeCross:
			p = crossPoint(rng)
		case ShapeShell:
			p = shellPoint(u, v)
		default:
			p = spherePoint(u, v)
		}
		if opts.Noise > 0 {
			p.X += rng.NormFloat64() * opts.Noise
			p.Y += rng.NormFloat64() * opts.Noise
			p.Z += rng.NormFloat64() * opts.Noise
		}
		c.Points[i] = p
	}
	return c
}

// warp skews a uniform parameter toward 0 so that low-parameter regions of
// the surface receive disproportionately many samples.
func warp(u, skew float64) float64 {
	if skew <= 0 {
		return u
	}
	return math.Pow(u, 1+3*skew)
}

func spherePoint(u, v float64) Point3 {
	theta := 2 * math.Pi * u
	phi := math.Acos(2*v - 1)
	return Point3{
		math.Sin(phi) * math.Cos(theta),
		math.Sin(phi) * math.Sin(theta),
		math.Cos(phi),
	}
}

func torusPoint(u, v, minor float64) Point3 {
	theta := 2 * math.Pi * u
	phi := 2 * math.Pi * v
	r := 1 + minor*math.Cos(phi)
	return Point3{r * math.Cos(theta), r * math.Sin(theta), minor * math.Sin(phi)}
}

func boxPoint(rng *rand.Rand) Point3 {
	// Pick a face, then a point on it.
	face := rng.Intn(6)
	a, b := rng.Float64()*2-1, rng.Float64()*2-1
	switch face {
	case 0:
		return Point3{1, a, b}
	case 1:
		return Point3{-1, a, b}
	case 2:
		return Point3{a, 1, b}
	case 3:
		return Point3{a, -1, b}
	case 4:
		return Point3{a, b, 1}
	default:
		return Point3{a, b, -1}
	}
}

func cylinderPoint(u, v float64) Point3 {
	theta := 2 * math.Pi * u
	return Point3{math.Cos(theta), math.Sin(theta), v*2 - 1}
}

func conePoint(u, v float64) Point3 {
	theta := 2 * math.Pi * u
	r := 1 - v
	return Point3{r * math.Cos(theta), r * math.Sin(theta), v*2 - 1}
}

func helixPoint(u, v float64) Point3 {
	t := u * 4 * math.Pi
	r := 0.15
	// Tube around a helical spine.
	phi := 2 * math.Pi * v
	cx, cy := math.Cos(t), math.Sin(t)
	return Point3{
		cx + r*math.Cos(phi)*cx,
		cy + r*math.Cos(phi)*cy,
		t/(2*math.Pi) - 1 + r*math.Sin(phi),
	}
}

// blobPoint samples a lobed, organic closed surface (a sphere whose radius is
// modulated by spherical harmonics-like lobes). With lobes=3 it reads as a
// lumpy organic model — our stand-in for scanned organic meshes like the
// Stanford Bunny.
func blobPoint(u, v float64, lobes int, depth float64) Point3 {
	theta := 2 * math.Pi * u
	phi := math.Acos(2*v - 1)
	r := 1 + depth*math.Sin(float64(lobes)*theta)*math.Sin(float64(lobes)*phi)
	return Point3{
		r * math.Sin(phi) * math.Cos(theta),
		r * math.Sin(phi) * math.Sin(theta),
		r * math.Cos(phi),
	}
}

func crossPoint(rng *rand.Rand) Point3 {
	// Two perpendicular slabs.
	a, b := rng.Float64()*2-1, rng.Float64()*0.4-0.2
	if rng.Intn(2) == 0 {
		return Point3{a, b, rng.Float64()*0.4 - 0.2}
	}
	return Point3{b, a, rng.Float64()*0.4 - 0.2}
}

func shellPoint(u, v float64) Point3 {
	// Half-open spherical shell (like a bowl).
	theta := 2 * math.Pi * u
	phi := math.Acos(v) // upper hemisphere only
	return Point3{
		math.Sin(phi) * math.Cos(theta),
		math.Sin(phi) * math.Sin(theta),
		math.Cos(phi) - 0.5,
	}
}

// SyntheticBunny generates an organic, unevenly sampled model with the same
// point count as the Stanford Bunny (40 256 points). It substitutes for the
// Bunny in the Fig. 5 sampling-quality experiment: what that experiment needs
// is a curved organic surface with strong density variation, which the lobed
// blob with density skew provides.
func SyntheticBunny(seed int64) *Cloud {
	const bunnyPoints = 40256
	body := GenerateShape(ShapeBlob, ShapeOptions{N: bunnyPoints * 3 / 4, Noise: 0.01, DensitySkew: 0.8, Seed: seed})
	// "Ears": two elongated lobes on top, densely sampled (scanners
	// oversample small features).
	ears := GenerateShape(ShapeCylinder, ShapeOptions{N: bunnyPoints / 4, Noise: 0.01, DensitySkew: 0.2, Seed: seed + 1})
	rng := rand.New(rand.NewSource(seed + 2))
	for i := range ears.Points {
		p := ears.Points[i]
		side := 1.0
		if rng.Intn(2) == 0 {
			side = -1.0
		}
		ears.Points[i] = Point3{p.X*0.15 + side*0.35, p.Y * 0.15, p.Z*0.5 + 1.2}
	}
	out := NewCloud(0, 0)
	out.Points = append(out.Points, body.Points...)
	out.Points = append(out.Points, ears.Points...)
	return out
}
