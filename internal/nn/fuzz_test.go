package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// fuzzNet builds the fixed network shape every FuzzLoadParams input is decoded
// into (the format ties a stream to a network layout, so the layout is part of
// the target).
func fuzzNet(seed int64) []*Param {
	return NewSharedMLP("f", []int{3, 4}, rand.New(rand.NewSource(seed))).Params()
}

// FuzzLoadParams: LoadParams must reject arbitrary bytes with an error, never
// a panic or an unbounded allocation, and any stream it accepts must be a
// stable round-trip: re-encoding the decoded values and decoding again
// reproduces the same bits (decode∘encode is the identity on decoded state).
func FuzzLoadParams(f *testing.F) {
	var buf bytes.Buffer
	if err := SaveParams(&buf, fuzzNet(1)); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(append([]byte{}, valid...))                // well-formed stream
	f.Add(append([]byte{}, valid[:9]...))            // truncated after header
	f.Add(append([]byte{}, valid[:len(valid)-3]...)) // truncated mid-data
	bad := append([]byte{}, valid...)
	bad[0] = 'X'
	f.Add(bad) // bad magic
	ver := append([]byte{}, valid...)
	ver[4] = 9
	f.Add(ver)            // unsupported version
	f.Add([]byte{})       // empty
	f.Add([]byte("EPNN")) // magic only

	f.Fuzz(func(t *testing.T, data []byte) {
		dst := fuzzNet(2)
		if err := LoadParams(bytes.NewReader(data), dst); err != nil {
			return // rejected cleanly — the only requirement for bad input
		}
		var out bytes.Buffer
		if err := SaveParams(&out, dst); err != nil {
			t.Fatalf("re-encode of accepted stream: %v", err)
		}
		dst2 := fuzzNet(3)
		if err := LoadParams(bytes.NewReader(out.Bytes()), dst2); err != nil {
			t.Fatalf("re-decode of re-encoded stream: %v", err)
		}
		for i, p := range dst {
			q := dst2[i]
			for j := range p.Value.Data {
				if math.Float32bits(p.Value.Data[j]) != math.Float32bits(q.Value.Data[j]) {
					t.Fatalf("round-trip changed %s[%d]: %x != %x",
						p.Name, j, math.Float32bits(p.Value.Data[j]), math.Float32bits(q.Value.Data[j]))
				}
			}
		}
	})
}
