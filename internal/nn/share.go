package nn

import "fmt"

// ShareParams re-points every parameter of dst at the corresponding value
// matrix of src, so the two networks read the same weight memory. It is the
// mechanism behind concurrent serving replicas (internal/serve): each worker
// goroutine owns a private network — private workspace, private layer caches,
// private BatchNorm running statistics — while the heavyweight weights exist
// once per process and are never written on the inference path (eval Forward
// only reads Param.Value; Dropout is the identity and BatchNorm normalizes
// with the current input's statistics).
//
// Gradients stay private: a replica can still be trained independently after
// sharing, though doing so while other replicas serve would race — sharing is
// for read-only deployment, and callers that retrain must rebuild replicas.
//
// Parameters are matched positionally and must agree in name and shape —
// sharing across differently constructed networks is an error, not silent
// corruption. On error dst is left untouched.
func ShareParams(dst, src []*Param) error {
	if len(dst) != len(src) {
		return fmt.Errorf("nn: share %d parameters into %d", len(src), len(dst))
	}
	for i, d := range dst {
		s := src[i]
		if d.Name != s.Name {
			return fmt.Errorf("nn: parameter %d is %q in dst, %q in src", i, d.Name, s.Name)
		}
		if d.Value.Rows != s.Value.Rows || d.Value.Cols != s.Value.Cols {
			return fmt.Errorf("nn: %s is %dx%d in dst, %dx%d in src",
				d.Name, d.Value.Rows, d.Value.Cols, s.Value.Rows, s.Value.Cols)
		}
	}
	for i := range dst {
		dst[i].Value = src[i].Value
	}
	return nil
}
