package nn

import (
	"math"

	"repro/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	Step(params []*Param)
}

// ZeroGrads clears all parameter gradients.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// SGD is stochastic gradient descent with optional momentum and weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity map[*Param]*tensor.Matrix
}

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	if s.velocity == nil {
		s.velocity = make(map[*Param]*tensor.Matrix)
	}
	for _, p := range params {
		g := p.Grad.Data
		w := p.Value.Data
		if s.WeightDecay > 0 {
			wd := float32(s.WeightDecay)
			for i := range g {
				g[i] += wd * w[i]
			}
		}
		if s.Momentum > 0 {
			v := s.velocity[p]
			if v == nil {
				v = tensor.New(p.Value.Rows, p.Value.Cols)
				s.velocity[p] = v
			}
			mu, lr := float32(s.Momentum), float32(s.LR)
			for i := range w {
				v.Data[i] = mu*v.Data[i] + g[i]
				w[i] -= lr * v.Data[i]
			}
		} else {
			lr := float32(s.LR)
			for i := range w {
				w[i] -= lr * g[i]
			}
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba 2015).
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64

	t int
	m map[*Param]*tensor.Matrix
	v map[*Param]*tensor.Matrix
}

// NewAdam creates an Adam optimizer with the usual defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	if a.m == nil {
		a.m = make(map[*Param]*tensor.Matrix)
		a.v = make(map[*Param]*tensor.Matrix)
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, v := a.m[p], a.v[p]
		if m == nil {
			m = tensor.New(p.Value.Rows, p.Value.Cols)
			v = tensor.New(p.Value.Rows, p.Value.Cols)
			a.m[p], a.v[p] = m, v
		}
		b1, b2 := float32(a.Beta1), float32(a.Beta2)
		for i, g := range p.Grad.Data {
			m.Data[i] = b1*m.Data[i] + (1-b1)*g
			v.Data[i] = b2*v.Data[i] + (1-b2)*g*g
			mh := float64(m.Data[i]) / bc1
			vh := float64(v.Data[i]) / bc2
			p.Value.Data[i] -= float32(a.LR * mh / (math.Sqrt(vh) + a.Eps))
		}
	}
}
