package nn

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
)

// Crash-safe checkpoints: the corruption-detecting sibling of the plain
// SaveParams/LoadParams stream. A checkpoint survives the two failure modes
// plain parameter files do not: a torn write (process or machine dies
// mid-write, leaving a prefix on disk) and silent byte corruption (bad
// sector, truncated copy, bit rot). Format (little-endian):
//
//	magic   [4]byte "EPCK"
//	version byte    1
//	count   uvarint
//	per parameter:
//	  nameLen uvarint, name bytes
//	  rows, cols uvarint
//	  rows×cols float32 (IEEE-754 bits, little-endian)
//	  crc32   uint32 — CRC-32 (IEEE) of this parameter's encoded bytes
//	trailer:
//	  crc32   uint32 — CRC-32 (IEEE) of every preceding byte
//
// The per-parameter checksums localize damage ("which tensor is bad"), the
// whole-file checksum catches anything between records, and CRC-32 detects
// every single-bit flip by construction. The file wrappers write through a
// temp file, fsync, and rename, so a reader only ever observes the previous
// checkpoint or the complete new one — never a prefix.

var checkpointMagic = [4]byte{'E', 'P', 'C', 'K'}

const checkpointVersion = 1

// Checkpoint errors. Both wrap every decode failure so callers can treat
// "restore from an older snapshot" uniformly with errors.Is.
var (
	// ErrCheckpointCorrupt reports a checkpoint whose bytes fail validation:
	// a checksum mismatch, a malformed header, or a stream that does not
	// match the network it is being loaded into.
	ErrCheckpointCorrupt = errors.New("nn: checkpoint corrupt")
	// ErrCheckpointTorn reports a checkpoint that ends mid-structure — the
	// signature of an interrupted write that bypassed the atomic rename
	// discipline (or a truncated copy).
	ErrCheckpointTorn = errors.New("nn: checkpoint torn (truncated)")
)

// WriteCheckpointTo encodes the parameters' values as a checkpoint stream.
// Most callers want WriteCheckpoint, which adds the temp-file+rename
// discipline; the io.Writer form exists for tests and in-memory use.
func WriteCheckpointTo(w io.Writer, params []*Param) error {
	bw := bufio.NewWriter(w)
	fileCRC := crc32.NewIEEE()
	out := io.MultiWriter(bw, fileCRC)
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(dst io.Writer, v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := dst.Write(scratch[:n])
		return err
	}
	if _, err := out.Write(checkpointMagic[:]); err != nil {
		return err
	}
	if _, err := out.Write([]byte{checkpointVersion}); err != nil {
		return err
	}
	if err := writeUvarint(out, uint64(len(params))); err != nil {
		return err
	}
	var crcb [4]byte
	for _, p := range params {
		paramCRC := crc32.NewIEEE()
		rec := io.MultiWriter(out, paramCRC)
		if err := writeUvarint(rec, uint64(len(p.Name))); err != nil {
			return err
		}
		if _, err := io.WriteString(rec, p.Name); err != nil {
			return err
		}
		if err := writeUvarint(rec, uint64(p.Value.Rows)); err != nil {
			return err
		}
		if err := writeUvarint(rec, uint64(p.Value.Cols)); err != nil {
			return err
		}
		var b [4]byte
		for _, v := range p.Value.Data {
			binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
			if _, err := rec.Write(b[:]); err != nil {
				return err
			}
		}
		binary.LittleEndian.PutUint32(crcb[:], paramCRC.Sum32())
		if _, err := out.Write(crcb[:]); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint32(crcb[:], fileCRC.Sum32())
	if _, err := bw.Write(crcb[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// crcReader feeds every byte it yields through the file checksum and,
// when inside a parameter record, the per-parameter checksum too. It
// implements io.ByteReader so uvarint decoding checksums correctly.
type crcReader struct {
	r     *bufio.Reader
	file  hash.Hash32
	param hash.Hash32 // nil outside a parameter record
}

func (c *crcReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err != nil {
		return 0, err
	}
	one := [1]byte{b}
	c.file.Write(one[:])
	if c.param != nil {
		c.param.Write(one[:])
	}
	return b, nil
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		c.file.Write(p[:n])
		if c.param != nil {
			c.param.Write(p[:n])
		}
	}
	return n, err
}

// ReadCheckpointFrom decodes a checkpoint stream into params, verifying the
// per-parameter and whole-file checksums and that names and shapes match the
// network in order. The load is all-or-nothing: params are only written
// after the entire stream — trailer included — has validated, so a corrupt
// or torn checkpoint never leaves the network half-restored. Every failure
// wraps ErrCheckpointCorrupt or ErrCheckpointTorn.
func ReadCheckpointFrom(r io.Reader, params []*Param) error {
	cr := &crcReader{r: bufio.NewReader(r), file: crc32.NewIEEE()}
	torn := func(what string, err error) error {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("%w: %s", ErrCheckpointTorn, what)
		}
		return fmt.Errorf("%w: %s: %v", ErrCheckpointCorrupt, what, err)
	}
	var magic [4]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return torn("magic", err)
	}
	if magic != checkpointMagic {
		return fmt.Errorf("%w: bad magic %q", ErrCheckpointCorrupt, magic[:])
	}
	version, err := cr.ReadByte()
	if err != nil {
		return torn("version", err)
	}
	if version != checkpointVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrCheckpointCorrupt, version)
	}
	count, err := binary.ReadUvarint(cr)
	if err != nil {
		return torn("count", err)
	}
	if int(count) != len(params) {
		return fmt.Errorf("%w: checkpoint has %d parameters, network has %d", ErrCheckpointCorrupt, count, len(params))
	}
	// Decode into scratch first; install only after the trailer validates.
	restored := make([][]float32, len(params))
	for pi, p := range params {
		cr.param = crc32.NewIEEE()
		nameLen, err := binary.ReadUvarint(cr)
		if err != nil || nameLen > 4096 {
			return torn("name length", errOr(err))
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(cr, name); err != nil {
			return torn("name", err)
		}
		rows, err := binary.ReadUvarint(cr)
		if err != nil {
			return torn("rows", err)
		}
		cols, err := binary.ReadUvarint(cr)
		if err != nil {
			return torn("cols", err)
		}
		// Shape gate before the data read bounds the allocation by the
		// network's own tensor sizes, whatever the stream claims.
		if string(name) != p.Name {
			return fmt.Errorf("%w: parameter %q in checkpoint, %q in network", ErrCheckpointCorrupt, name, p.Name)
		}
		if int(rows) != p.Value.Rows || int(cols) != p.Value.Cols {
			return fmt.Errorf("%w: %s is %dx%d in checkpoint, %dx%d in network",
				ErrCheckpointCorrupt, p.Name, rows, cols, p.Value.Rows, p.Value.Cols)
		}
		buf := make([]byte, 4*rows*cols)
		if _, err := io.ReadFull(cr, buf); err != nil {
			return torn(p.Name+" data", err)
		}
		want := cr.param.Sum32()
		cr.param = nil
		var crcb [4]byte
		if _, err := io.ReadFull(cr, crcb[:]); err != nil {
			return torn(p.Name+" checksum", err)
		}
		if got := binary.LittleEndian.Uint32(crcb[:]); got != want {
			return fmt.Errorf("%w: %s checksum mismatch (stored %08x, computed %08x)", ErrCheckpointCorrupt, p.Name, got, want)
		}
		vals := make([]float32, rows*cols)
		for i := range vals {
			vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
		restored[pi] = vals
	}
	want := cr.file.Sum32()
	var crcb [4]byte
	if _, err := io.ReadFull(cr.r, crcb[:]); err != nil {
		return torn("trailer", err)
	}
	if got := binary.LittleEndian.Uint32(crcb[:]); got != want {
		return fmt.Errorf("%w: file checksum mismatch (stored %08x, computed %08x)", ErrCheckpointCorrupt, got, want)
	}
	if _, err := cr.r.ReadByte(); err != io.EOF {
		return fmt.Errorf("%w: trailing bytes after trailer", ErrCheckpointCorrupt)
	}
	for pi, p := range params {
		copy(p.Value.Data, restored[pi])
	}
	return nil
}

// errOr turns a nil error from a bounds check into a descriptive one so the
// torn/corrupt classifier always has something to wrap.
func errOr(err error) error {
	if err != nil {
		return err
	}
	return errors.New("out of bounds")
}

// WriteCheckpoint writes the parameters to path with the crash-safe
// discipline: encode into a temp file in the same directory, fsync it,
// rename it over path, then fsync the directory (best effort). A crash at
// any point leaves either the previous checkpoint or the complete new one.
func WriteCheckpoint(path string, params []*Param) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("nn: checkpoint %s: %w", path, err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = WriteCheckpointTo(f, params); err != nil {
		return fmt.Errorf("nn: checkpoint %s: %w", path, err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("nn: checkpoint %s: sync: %w", path, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("nn: checkpoint %s: close: %w", path, err)
	}
	if err = os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("nn: checkpoint %s: rename: %w", path, err)
	}
	if d, derr := os.Open(dir); derr == nil {
		d.Sync() // directory entry durability; best effort by design
		d.Close()
	}
	return nil
}

// ReadCheckpoint loads the checkpoint at path into params (all-or-nothing;
// see ReadCheckpointFrom for the validation and error contract).
func ReadCheckpoint(path string, params []*Param) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("nn: checkpoint %s: %w", path, err)
	}
	defer f.Close()
	if err := ReadCheckpointFrom(f, params); err != nil {
		return fmt.Errorf("nn: checkpoint %s: %w", path, err)
	}
	return nil
}
