// Package nn is a small neural-network library with explicit forward and
// backward passes over tensor.Matrix activations. It exists because
// reproducing EdgePC's accuracy experiments requires *retraining* the
// point-cloud CNNs with the Morton approximations in the loop (§5.3) — a
// pretrained-weights path would not exercise the paper's central claim that
// retraining recovers the accuracy lost to approximate sampling and false
// neighbors.
//
// Activations are (items × channels) matrices; a "shared MLP" (the 1×1
// convolution of PointNet-family networks) is therefore an ordinary Linear
// layer applied to every point row independently.
package nn

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Param is a trainable parameter with its gradient accumulator.
type Param struct {
	Name  string
	Value *tensor.Matrix
	Grad  *tensor.Matrix
}

// NewParam allocates a parameter and its gradient of the given shape.
func NewParam(name string, rows, cols int) *Param {
	return &Param{Name: name, Value: tensor.New(rows, cols), Grad: tensor.New(rows, cols)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is a differentiable computation. Backward must be called with the
// gradient of the loss w.r.t. the layer's most recent Forward output and
// returns the gradient w.r.t. that Forward's input, accumulating parameter
// gradients along the way.
type Layer interface {
	Forward(x *tensor.Matrix, train bool) (*tensor.Matrix, error)
	Backward(grad *tensor.Matrix) (*tensor.Matrix, error)
	Params() []*Param
}

// WorkspaceUser is implemented by layers that can serve inference
// (train=false) activations from a shared tensor.Workspace instead of
// allocating fresh matrices. Workspace mode never changes numerics and never
// touches the training path: a layer with a workspace set still allocates in
// Forward(x, true) because training caches activations across the whole
// forward pass, while workspace buffers live at most one frame.
type WorkspaceUser interface {
	SetWorkspace(ws *tensor.Workspace)
}

// AttachWorkspace sets ws on every given layer that supports
// workspace-backed inference (Sequential recurses into its children).
func AttachWorkspace(ws *tensor.Workspace, layers ...Layer) {
	for _, l := range layers {
		if u, ok := l.(WorkspaceUser); ok {
			u.SetWorkspace(ws)
		}
	}
}

// BackendUser is implemented by layers that dispatch their inference kernels
// through a tensor.Backend. Like workspace mode, the backend only governs the
// eval path: Forward(x, true) always runs the exact reference kernels, so
// training numerics are identical whatever backend the net will serve with.
// A nil backend means the reference (naive) kernels.
type BackendUser interface {
	SetBackend(be tensor.Backend)
}

// AttachBackend sets be on every given layer that supports backend-dispatched
// inference (Sequential recurses into its children).
func AttachBackend(be tensor.Backend, layers ...Layer) {
	for _, l := range layers {
		if u, ok := l.(BackendUser); ok {
			u.SetBackend(be)
		}
	}
}

// InitHe fills the parameter with He-normal values scaled by the fan-in
// (suitable ahead of ReLU).
func InitHe(p *Param, fanIn int, rng *rand.Rand) {
	std := math.Sqrt(2.0 / float64(fanIn))
	for i := range p.Value.Data {
		p.Value.Data[i] = float32(rng.NormFloat64() * std)
	}
}

// InitXavier fills the parameter with Xavier-uniform values.
func InitXavier(p *Param, fanIn, fanOut int, rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range p.Value.Data {
		p.Value.Data[i] = float32((rng.Float64()*2 - 1) * limit)
	}
}

// CollectParams gathers the parameters of several layers.
func CollectParams(layers ...Layer) []*Param {
	var out []*Param
	for _, l := range layers {
		out = append(out, l.Params()...)
	}
	return out
}
