package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Linear is a fully connected layer y = x·W + b. Applied to a (points ×
// channels) activation it is the PointNet-family "shared MLP" / 1×1
// convolution: every point row is transformed by the same weights.
type Linear struct {
	W, B *Param
	x    *tensor.Matrix // cached input for backward
	ws   *tensor.Workspace
	be   tensor.Backend
}

// NewLinear creates a Linear layer with He initialization.
func NewLinear(name string, in, out int, rng *rand.Rand) *Linear {
	l := &Linear{
		W: NewParam(name+".W", in, out),
		B: NewParam(name+".b", 1, out),
	}
	InitHe(l.W, in, rng)
	return l
}

// SetWorkspace implements WorkspaceUser.
func (l *Linear) SetWorkspace(ws *tensor.Workspace) { l.ws = ws }

// SetBackend implements BackendUser: eval-mode matmuls dispatch through be.
func (l *Linear) SetBackend(be tensor.Backend) { l.be = be }

// backend resolves the layer's compute backend, defaulting to the reference
// kernels.
func (l *Linear) backend() tensor.Backend {
	if l.be != nil {
		return l.be
	}
	return tensor.Naive()
}

// Forward implements Layer. The x·W product is the layer's compute kernel and
// the one place the backend choice matters: the eval path dispatches it
// through the configured tensor.Backend (blocked tiles it, int8 quantizes and
// dequantizes on exit), while the bias add stays an exact float32 row op in
// every backend — the dequantized stage boundary.
//
//edgepc:hotpath
func (l *Linear) Forward(x *tensor.Matrix, train bool) (*tensor.Matrix, error) {
	if train {
		l.x = x
	}
	var y *tensor.Matrix
	var err error
	if !train && l.ws != nil {
		y = l.ws.Get(x.Rows, l.W.Value.Cols)
		err = l.backend().MatMulInto(y, x, l.W.Value)
	} else {
		//edgepc:lint-ignore hotpathalloc training / no-workspace fallback; the eval branch above uses MatMulInto
		y, err = tensor.MatMul(x, l.W.Value)
	}
	if err != nil {
		return nil, fmt.Errorf("linear %s: %w", l.W.Name, err)
	}
	if err := l.backend().AddBiasRows(y, l.B.Value.Data); err != nil {
		return nil, err
	}
	return y, nil
}

// Backward implements Layer.
func (l *Linear) Backward(grad *tensor.Matrix) (*tensor.Matrix, error) {
	if l.x == nil {
		return nil, fmt.Errorf("linear %s: backward before forward(train)", l.W.Name)
	}
	dW, err := tensor.MatMulAT(l.x, grad)
	if err != nil {
		return nil, err
	}
	for i, v := range dW.Data {
		l.W.Grad.Data[i] += v
	}
	for r := 0; r < grad.Rows; r++ {
		row := grad.Row(r)
		for c, v := range row {
			l.B.Grad.Data[c] += v
		}
	}
	dx, err := tensor.MatMulBT(grad, l.W.Value)
	if err != nil {
		return nil, err
	}
	return dx, nil
}

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool
	ws   *tensor.Workspace
}

// SetWorkspace implements WorkspaceUser.
func (r *ReLU) SetWorkspace(ws *tensor.Workspace) { r.ws = ws }

// Forward implements Layer.
//
//edgepc:hotpath
func (r *ReLU) Forward(x *tensor.Matrix, train bool) (*tensor.Matrix, error) {
	if !train && r.ws != nil {
		// Inference workspace mode: rectify workspace-owned inputs in place
		// (the previous layer's output is dead once we consume it); copy
		// caller-owned inputs into a workspace buffer first.
		out := x
		if !r.ws.Owns(x) {
			out = r.ws.Get(x.Rows, x.Cols)
			copy(out.Data, x.Data)
		}
		for i, v := range out.Data {
			if v <= 0 {
				out.Data[i] = 0
			}
		}
		return out, nil
	}
	//edgepc:lint-ignore hotpathalloc training / no-workspace fallback; the eval branch above rectifies in place
	out := x.Clone()
	if train {
		if cap(r.mask) < len(out.Data) {
			//edgepc:lint-ignore hotpathalloc train-only mask buffer with a cap-guarded grow
			r.mask = make([]bool, len(out.Data))
		}
		r.mask = r.mask[:len(out.Data)]
	}
	for i, v := range out.Data {
		pass := v > 0
		if !pass {
			out.Data[i] = 0
		}
		if train {
			r.mask[i] = pass
		}
	}
	return out, nil
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Matrix) (*tensor.Matrix, error) {
	if len(r.mask) != len(grad.Data) {
		return nil, fmt.Errorf("relu: backward shape mismatch")
	}
	out := grad.Clone()
	for i := range out.Data {
		if !r.mask[i] {
			out.Data[i] = 0
		}
	}
	return out, nil
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// BatchNorm normalizes each channel over the row (point) dimension, with
// learnable scale/shift.
//
// Because this library processes one cloud at a time (the row dimension is
// *points of one cloud*, not a batch of independent clouds), inference also
// normalizes with the current input's statistics whenever it has more than
// one row — per-cloud (instance) normalization, the consistent counterpart
// of what training computes. A single-row input (e.g. a globally pooled
// classification feature) falls back to the running statistics.
type BatchNorm struct {
	Gamma, Beta             *Param
	RunningMean, RunningVar []float32
	Momentum                float32
	Eps                     float32

	// Backward caches.
	xhat   *tensor.Matrix
	invStd []float32

	ws *tensor.Workspace
}

// SetWorkspace implements WorkspaceUser.
func (bn *BatchNorm) SetWorkspace(ws *tensor.Workspace) { bn.ws = ws }

// NewBatchNorm creates a BatchNorm over `channels` columns.
func NewBatchNorm(name string, channels int) *BatchNorm {
	bn := &BatchNorm{
		Gamma:       NewParam(name+".gamma", 1, channels),
		Beta:        NewParam(name+".beta", 1, channels),
		RunningMean: make([]float32, channels),
		RunningVar:  make([]float32, channels),
		Momentum:    0.1,
		Eps:         1e-5,
	}
	for i := range bn.Gamma.Value.Data {
		bn.Gamma.Value.Data[i] = 1
		bn.RunningVar[i] = 1
	}
	return bn
}

// Forward implements Layer.
func (bn *BatchNorm) Forward(x *tensor.Matrix, train bool) (*tensor.Matrix, error) {
	c := x.Cols
	if c != len(bn.RunningMean) {
		return nil, fmt.Errorf("batchnorm %s: %d channels, expected %d", bn.Gamma.Name, c, len(bn.RunningMean))
	}
	if !train && bn.ws != nil {
		return bn.forwardWS(x)
	}
	out := tensor.New(x.Rows, c)
	if !train && x.Rows == 1 {
		for r := 0; r < x.Rows; r++ {
			xr, or := x.Row(r), out.Row(r)
			for j := 0; j < c; j++ {
				inv := 1 / float32(math.Sqrt(float64(bn.RunningVar[j]+bn.Eps)))
				or[j] = bn.Gamma.Value.Data[j]*(xr[j]-bn.RunningMean[j])*inv + bn.Beta.Value.Data[j]
			}
		}
		return out, nil
	}
	n := float32(x.Rows)
	mean := make([]float32, c)
	variance := make([]float32, c)
	for r := 0; r < x.Rows; r++ {
		for j, v := range x.Row(r) {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= n
	}
	for r := 0; r < x.Rows; r++ {
		for j, v := range x.Row(r) {
			d := v - mean[j]
			variance[j] += d * d
		}
	}
	for j := range variance {
		variance[j] /= n
	}
	invStd := make([]float32, c)
	for j := range invStd {
		invStd[j] = 1 / float32(math.Sqrt(float64(variance[j]+bn.Eps)))
	}
	xhat := tensor.New(x.Rows, c)
	for r := 0; r < x.Rows; r++ {
		xr, hr, or := x.Row(r), xhat.Row(r), out.Row(r)
		for j := 0; j < c; j++ {
			h := (xr[j] - mean[j]) * invStd[j]
			hr[j] = h
			or[j] = bn.Gamma.Value.Data[j]*h + bn.Beta.Value.Data[j]
		}
	}
	if train {
		bn.invStd = invStd
		bn.xhat = xhat
		for j := 0; j < c; j++ {
			bn.RunningMean[j] = (1-bn.Momentum)*bn.RunningMean[j] + bn.Momentum*mean[j]
			bn.RunningVar[j] = (1-bn.Momentum)*bn.RunningVar[j] + bn.Momentum*variance[j]
		}
	}
	return out, nil
}

// forwardWS is the inference path backed by the workspace: same statistics
// and per-element arithmetic as the allocating path (bit-identical output),
// but activations and scratch come from the workspace and x̂ is never
// materialized (no backward pass will consume it).
//
//edgepc:hotpath
func (bn *BatchNorm) forwardWS(x *tensor.Matrix) (*tensor.Matrix, error) {
	c := x.Cols
	out := bn.ws.Get(x.Rows, c)
	if x.Rows == 1 {
		xr, or := x.Row(0), out.Row(0)
		for j := 0; j < c; j++ {
			inv := 1 / float32(math.Sqrt(float64(bn.RunningVar[j]+bn.Eps)))
			or[j] = bn.Gamma.Value.Data[j]*(xr[j]-bn.RunningMean[j])*inv + bn.Beta.Value.Data[j]
		}
		return out, nil
	}
	n := float32(x.Rows)
	stats := bn.ws.Get(3, c) // rows: mean, variance, invStd
	mean, variance, invStd := stats.Row(0), stats.Row(1), stats.Row(2)
	for j := 0; j < c; j++ {
		mean[j] = 0
		variance[j] = 0
	}
	for r := 0; r < x.Rows; r++ {
		for j, v := range x.Row(r) {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= n
	}
	for r := 0; r < x.Rows; r++ {
		for j, v := range x.Row(r) {
			d := v - mean[j]
			variance[j] += d * d
		}
	}
	for j := range variance {
		variance[j] /= n
	}
	for j := range invStd {
		invStd[j] = 1 / float32(math.Sqrt(float64(variance[j]+bn.Eps)))
	}
	for r := 0; r < x.Rows; r++ {
		xr, or := x.Row(r), out.Row(r)
		for j := 0; j < c; j++ {
			h := (xr[j] - mean[j]) * invStd[j]
			or[j] = bn.Gamma.Value.Data[j]*h + bn.Beta.Value.Data[j]
		}
	}
	bn.ws.Put(stats)
	return out, nil
}

// Backward implements Layer.
func (bn *BatchNorm) Backward(grad *tensor.Matrix) (*tensor.Matrix, error) {
	if bn.xhat == nil || grad.Rows != bn.xhat.Rows || grad.Cols != bn.xhat.Cols {
		return nil, fmt.Errorf("batchnorm %s: backward before forward(train)", bn.Gamma.Name)
	}
	c := grad.Cols
	n := float32(grad.Rows)
	sumG := make([]float32, c)
	sumGH := make([]float32, c)
	for r := 0; r < grad.Rows; r++ {
		gr, hr := grad.Row(r), bn.xhat.Row(r)
		for j := 0; j < c; j++ {
			sumG[j] += gr[j]
			sumGH[j] += gr[j] * hr[j]
		}
	}
	for j := 0; j < c; j++ {
		bn.Beta.Grad.Data[j] += sumG[j]
		bn.Gamma.Grad.Data[j] += sumGH[j]
	}
	out := tensor.New(grad.Rows, c)
	for r := 0; r < grad.Rows; r++ {
		gr, hr, or := grad.Row(r), bn.xhat.Row(r), out.Row(r)
		for j := 0; j < c; j++ {
			g := bn.Gamma.Value.Data[j]
			or[j] = g * bn.invStd[j] / n * (n*gr[j] - sumG[j] - hr[j]*sumGH[j])
		}
	}
	return out, nil
}

// Params implements Layer.
func (bn *BatchNorm) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// Dropout zeroes activations with probability P during training, scaling the
// survivors by 1/(1−P); it is the identity during inference.
type Dropout struct {
	P    float64
	Rng  *rand.Rand
	mask []bool
}

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Matrix, train bool) (*tensor.Matrix, error) {
	if !train || d.P <= 0 {
		d.mask = nil
		return x, nil
	}
	if d.Rng == nil {
		d.Rng = rand.New(rand.NewSource(1))
	}
	out := x.Clone()
	if cap(d.mask) < len(out.Data) {
		d.mask = make([]bool, len(out.Data))
	}
	d.mask = d.mask[:len(out.Data)]
	scale := float32(1 / (1 - d.P))
	for i := range out.Data {
		if d.Rng.Float64() < d.P {
			out.Data[i] = 0
			d.mask[i] = false
		} else {
			out.Data[i] *= scale
			d.mask[i] = true
		}
	}
	return out, nil
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Matrix) (*tensor.Matrix, error) {
	if d.mask == nil {
		return grad, nil
	}
	if len(d.mask) != len(grad.Data) {
		return nil, fmt.Errorf("dropout: backward shape mismatch")
	}
	out := grad.Clone()
	scale := float32(1 / (1 - d.P))
	for i := range out.Data {
		if d.mask[i] {
			out.Data[i] *= scale
		} else {
			out.Data[i] = 0
		}
	}
	return out, nil
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// Sequential chains layers.
type Sequential struct {
	Layers []Layer

	ws *tensor.Workspace
}

// NewSequential builds a chain.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// SetWorkspace implements WorkspaceUser, recursing into every child layer
// that supports workspace-backed inference.
func (s *Sequential) SetWorkspace(ws *tensor.Workspace) {
	s.ws = ws
	AttachWorkspace(ws, s.Layers...)
}

// SetBackend implements BackendUser, recursing into every child layer that
// dispatches kernels through a backend.
func (s *Sequential) SetBackend(be tensor.Backend) {
	AttachBackend(be, s.Layers...)
}

// Forward implements Layer.
//
//edgepc:hotpath
func (s *Sequential) Forward(x *tensor.Matrix, train bool) (*tensor.Matrix, error) {
	cur := x
	for i, l := range s.Layers {
		y, err := l.Forward(cur, train)
		if err != nil {
			return nil, err
		}
		// Workspace inference: the intermediate produced by layer i-1 is
		// dead once layer i has consumed it, so recycle it eagerly. The
		// chain input (i == 0) belongs to the caller; layers that return
		// their input (in-place ReLU, eval Dropout) keep it alive.
		if !train && s.ws != nil && i > 0 && y != cur && s.ws.Owns(cur) {
			s.ws.Put(cur)
		}
		cur = y
	}
	return cur, nil
}

// Backward implements Layer.
func (s *Sequential) Backward(grad *tensor.Matrix) (*tensor.Matrix, error) {
	var err error
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad, err = s.Layers[i].Backward(grad)
		if err != nil {
			return nil, err
		}
	}
	return grad, nil
}

// Params implements Layer.
func (s *Sequential) Params() []*Param { return CollectParams(s.Layers...) }

// NewSharedMLP builds the PointNet-family per-point MLP block: a stack of
// Linear → BatchNorm → ReLU for each requested width. dims[0] is the input
// width.
func NewSharedMLP(name string, dims []int, rng *rand.Rand) *Sequential {
	var layers []Layer
	for i := 1; i < len(dims); i++ {
		layers = append(layers,
			NewLinear(fmt.Sprintf("%s.%d", name, i-1), dims[i-1], dims[i], rng),
			NewBatchNorm(fmt.Sprintf("%s.%d.bn", name, i-1), dims[i]),
			&ReLU{},
		)
	}
	return NewSequential(layers...)
}
