package nn

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestSaveLoadRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := NewSequential(
		NewLinear("a", 3, 5, rng),
		NewBatchNorm("a.bn", 5),
		NewLinear("b", 5, 2, rng),
	)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	dst := NewSequential(
		NewLinear("a", 3, 5, rand.New(rand.NewSource(99))),
		NewBatchNorm("a.bn", 5),
		NewLinear("b", 5, 2, rand.New(rand.NewSource(98))),
	)
	if err := LoadParams(&buf, dst.Params()); err != nil {
		t.Fatal(err)
	}
	sp, dp := src.Params(), dst.Params()
	for i := range sp {
		for j, v := range sp[i].Value.Data {
			if dp[i].Value.Data[j] != v {
				t.Fatalf("param %s[%d] = %v, want %v", dp[i].Name, j, dp[i].Value.Data[j], v)
			}
		}
	}
}

func TestLoadParamsShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := NewLinear("a", 3, 5, rng)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	wrongShape := NewLinear("a", 3, 6, rng)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), wrongShape.Params()); err == nil {
		t.Fatal("shape mismatch: want error")
	}
	wrongName := NewLinear("z", 3, 5, rng)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), wrongName.Params()); err == nil {
		t.Fatal("name mismatch: want error")
	}
	wrongCount := NewSequential(NewLinear("a", 3, 5, rng), NewLinear("b", 5, 5, rng))
	if err := LoadParams(bytes.NewReader(buf.Bytes()), wrongCount.Params()); err == nil {
		t.Fatal("count mismatch: want error")
	}
}

func TestLoadParamsCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := NewLinear("a", 3, 5, rng)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("XXXX"), data[4:]...),
		"version":   append(append([]byte{}, data[:4]...), append([]byte{9}, data[5:]...)...),
		"truncated": data[:len(data)-5],
	}
	for name, bad := range cases {
		if err := LoadParams(bytes.NewReader(bad), src.Params()); err == nil {
			t.Fatalf("%s: want error", name)
		}
	}
}
