package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// CrossEntropy computes softmax cross-entropy over the rows of logits
// against integer labels, returning the mean loss and the gradient w.r.t.
// logits (already divided by the row count). A label of -1 marks an ignored
// row (contributes neither loss nor gradient).
func CrossEntropy(logits *tensor.Matrix, labels []int32) (float64, *tensor.Matrix, error) {
	if logits.Rows != len(labels) {
		return 0, nil, fmt.Errorf("nn: %d logit rows for %d labels", logits.Rows, len(labels))
	}
	grad := tensor.New(logits.Rows, logits.Cols)
	var loss float64
	counted := 0
	for r := 0; r < logits.Rows; r++ {
		lab := labels[r]
		if lab < 0 {
			continue
		}
		if int(lab) >= logits.Cols {
			return 0, nil, fmt.Errorf("nn: label %d out of %d classes", lab, logits.Cols)
		}
		counted++
		row := logits.Row(r)
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxV))
		}
		logSum := math.Log(sum) + float64(maxV)
		loss += logSum - float64(row[lab])
		gr := grad.Row(r)
		for c, v := range row {
			p := math.Exp(float64(v-maxV)) / sum
			gr[c] = float32(p)
			_ = v
		}
		gr[lab] -= 1
	}
	if counted == 0 {
		return 0, grad, nil
	}
	inv := float32(1.0 / float64(counted))
	for i := range grad.Data {
		grad.Data[i] *= inv
	}
	return loss / float64(counted), grad, nil
}

// Accuracy returns the fraction of rows whose argmax matches the label,
// ignoring rows labelled -1.
func Accuracy(logits *tensor.Matrix, labels []int32) float64 {
	correct, counted := 0, 0
	for r := 0; r < logits.Rows; r++ {
		if labels[r] < 0 {
			continue
		}
		counted++
		if Argmax(logits.Row(r)) == int(labels[r]) {
			correct++
		}
	}
	if counted == 0 {
		return 0
	}
	return float64(correct) / float64(counted)
}

// Argmax returns the index of the largest element of row.
func Argmax(row []float32) int {
	best, bestV := 0, row[0]
	for i, v := range row[1:] {
		if v > bestV {
			best, bestV = i+1, v
		}
	}
	return best
}
