package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestMergeSplitShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := &MergeSplit{T: 4, Inner: NewLinear("inner", 4*3, 5, rng)}
	x := tensor.New(12, 3)
	y, err := m.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if y.Rows != 12 || y.Cols != 5 {
		t.Fatalf("output %dx%d, want 12x5", y.Rows, y.Cols)
	}
	// All rows of a group are identical (split-by-replication).
	for g := 0; g < 3; g++ {
		base := y.Row(g * 4)
		for j := 1; j < 4; j++ {
			row := y.Row(g*4 + j)
			for c := range base {
				if row[c] != base[c] {
					t.Fatalf("group %d rows differ", g)
				}
			}
		}
	}
}

func TestMergeSplitGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	layer := &MergeSplit{T: 2, Inner: NewLinear("inner", 2*3, 4, rng)}
	checkLayerGradients(t, layer, 6, 3, 3, 1e-2)
}

func TestMergeSplitErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := &MergeSplit{T: 4, Inner: NewLinear("inner", 4*3, 5, rng)}
	if _, err := m.Forward(tensor.New(10, 3), false); err == nil {
		t.Fatal("10 rows with T=4: want error")
	}
	if _, err := m.Backward(tensor.New(12, 5)); err == nil {
		t.Fatal("backward before forward: want error")
	}
	bad := &MergeSplit{T: 0, Inner: NewLinear("inner", 3, 5, rng)}
	if _, err := bad.Forward(tensor.New(4, 3), false); err == nil {
		t.Fatal("T=0: want error")
	}
}

func TestMergeSplitWidensChannels(t *testing.T) {
	// The purpose of the transform: the inner layer sees T× the channels
	// over 1/T the rows — the §5.4.1 reshape with identical FLOPs.
	probe := &probeLayer{}
	m := &MergeSplit{T: 4, Inner: probe}
	if _, err := m.Forward(tensor.New(32, 12), false); err != nil {
		t.Fatal(err)
	}
	if probe.rows != 8 || probe.cols != 48 {
		t.Fatalf("inner saw %dx%d, want 8x48", probe.rows, probe.cols)
	}
}

type probeLayer struct{ rows, cols int }

func (p *probeLayer) Forward(x *tensor.Matrix, train bool) (*tensor.Matrix, error) {
	p.rows, p.cols = x.Rows, x.Cols
	return x, nil
}
func (p *probeLayer) Backward(g *tensor.Matrix) (*tensor.Matrix, error) { return g, nil }
func (p *probeLayer) Params() []*Param                                  { return nil }
