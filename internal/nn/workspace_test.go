package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func randInput(rng *rand.Rand, rows, cols int) *tensor.Matrix {
	m := tensor.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

// TestSharedMLPWorkspaceBitIdentical runs the same eval forward with and
// without a workspace attached: workspace mode must not change a single bit,
// and a warm second frame must be served entirely from recycled buffers.
func TestSharedMLPWorkspaceBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	mlp := NewSharedMLP("t", []int{6, 8, 4}, rng)
	x := randInput(rng, 40, 6)

	want, err := mlp.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	want = want.Clone()

	ws := tensor.NewWorkspace()
	AttachWorkspace(ws, mlp)
	ws.Reset()
	got, err := mlp.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("workspace-mode forward differs from allocating forward")
	}

	// Second frame: same shapes, so zero workspace misses — and identical
	// output even though the buffers are recycled.
	cold := ws.Stats().Misses
	ws.Reset()
	got2, err := mlp.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Equal(want) {
		t.Fatal("second workspace frame differs")
	}
	if warm := ws.Stats().Misses; warm != cold {
		t.Fatalf("steady-state frame allocated: %d misses, was %d", warm, cold)
	}

	// The input is the caller's; the workspace must never claim it.
	if ws.Owns(x) {
		t.Fatal("workspace claims the caller's input")
	}
}

// TestHeadWorkspaceSingleRow exercises BatchNorm's rows==1 running-stats eval
// path (the classification head) under a workspace.
func TestHeadWorkspaceSingleRow(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	head := NewSequential(
		NewLinear("h.0", 5, 8, rng),
		NewBatchNorm("h.0.bn", 8),
		&ReLU{},
		&Dropout{P: 0.5, Rng: rand.New(rand.NewSource(33))},
		NewLinear("h.1", 8, 3, rng),
	)
	x := randInput(rng, 1, 5)
	want, err := head.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	want = want.Clone()

	ws := tensor.NewWorkspace()
	AttachWorkspace(ws, head)
	for frame := 0; frame < 3; frame++ {
		ws.Reset()
		got, err := head.Forward(x, false)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("frame %d: single-row workspace forward differs", frame)
		}
	}
}

// TestWorkspaceTrainingPathUnaffected checks that a layer with a workspace
// attached still allocates normally in training mode (training caches
// activations across the forward pass, so workspace reuse would corrupt the
// backward pass).
func TestWorkspaceTrainingPathUnaffected(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	mlp := NewSharedMLP("t", []int{4, 6}, rng)
	ws := tensor.NewWorkspace()
	AttachWorkspace(ws, mlp)
	x := randInput(rng, 10, 4)
	if _, err := mlp.Forward(x, true); err != nil {
		t.Fatal(err)
	}
	if st := ws.Stats(); st.Gets != 0 {
		t.Fatalf("training forward touched the workspace: %+v", st)
	}
}
