package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// MergeSplit implements the paper's §5.4.1 feature-merging transform: to
// push a narrow-channel shared MLP over the tensor-core engagement
// threshold, the features of T consecutive (Morton-adjacent, hence spatially
// close) points are concatenated into one row of T·C channels, the inner
// layer runs on N/T such rows, and the result is split back by assigning the
// group output to each of its T points.
//
// The transform keeps the FLOP count while multiplying the channel width by
// T and dividing the row count by T; its approximation error is small
// exactly when consecutive rows are spatially coherent — i.e. after Morton
// structurization (quantified in the sec541 experiment).
type MergeSplit struct {
	T     int
	Inner Layer

	rows int // cached input row count for backward
}

// Forward implements Layer. The input row count must be divisible by T.
func (m *MergeSplit) Forward(x *tensor.Matrix, train bool) (*tensor.Matrix, error) {
	if m.T < 1 {
		return nil, fmt.Errorf("nn: merge factor %d", m.T)
	}
	if x.Rows%m.T != 0 {
		return nil, fmt.Errorf("nn: %d rows not divisible by merge factor %d", x.Rows, m.T)
	}
	groups := x.Rows / m.T
	// Rows are contiguous in memory, so merging T consecutive rows into one
	// wider row is a pure reshape.
	merged := &tensor.Matrix{Rows: groups, Cols: x.Cols * m.T, Data: x.Data}
	y, err := m.Inner.Forward(merged, train)
	if err != nil {
		return nil, err
	}
	if train {
		m.rows = x.Rows
	}
	// Split by replication: every point of a group receives the group's
	// output (the paper's "split the convolution result back ... e.g., by
	// averaging" — replication is the adjoint-consistent choice for the
	// forward direction; averaging appears in the backward pass).
	out := tensor.New(x.Rows, y.Cols)
	for g := 0; g < groups; g++ {
		src := y.Row(g)
		for j := 0; j < m.T; j++ {
			copy(out.Row(g*m.T+j), src)
		}
	}
	return out, nil
}

// Backward implements Layer.
func (m *MergeSplit) Backward(grad *tensor.Matrix) (*tensor.Matrix, error) {
	if m.rows == 0 || grad.Rows != m.rows {
		return nil, fmt.Errorf("nn: merge-split backward before forward(train)")
	}
	groups := grad.Rows / m.T
	// Adjoint of replication: sum the group's gradients.
	summed := tensor.New(groups, grad.Cols)
	for g := 0; g < groups; g++ {
		dst := summed.Row(g)
		for j := 0; j < m.T; j++ {
			for c, v := range grad.Row(g*m.T + j) {
				dst[c] += v
			}
		}
	}
	gIn, err := m.Inner.Backward(summed)
	if err != nil {
		return nil, err
	}
	// Adjoint of the merge reshape: reinterpret the wide rows as T rows.
	return &tensor.Matrix{Rows: m.rows, Cols: gIn.Cols / m.T, Data: gIn.Data}, nil
}

// Params implements Layer.
func (m *MergeSplit) Params() []*Param { return m.Inner.Params() }
