package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestShareParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewSharedMLP("m", []int{4, 8, 8}, rng)
	b := NewSharedMLP("m", []int{4, 8, 8}, rand.New(rand.NewSource(2)))
	pa, pb := a.Params(), b.Params()
	if err := ShareParams(pb, pa); err != nil {
		t.Fatal(err)
	}
	for i := range pa {
		if pb[i].Value != pa[i].Value {
			t.Fatalf("parameter %s not shared", pa[i].Name)
		}
		if pb[i].Grad == pa[i].Grad {
			t.Fatalf("parameter %s gradient must stay private", pa[i].Name)
		}
	}
	// A write through one replica's view is seen by the other (same memory).
	pa[0].Value.Data[0] = 42
	if pb[0].Value.Data[0] != 42 {
		t.Fatal("shared value write not visible through the replica")
	}
}

func TestShareParamsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	wrongName := NewSharedMLP("x", []int{4, 8}, rng)
	wrongShape := NewSharedMLP("m", []int{4, 6}, rng)
	short := NewSharedMLP("m", []int{4, 8, 8}, rng)
	for name, other := range map[string]*Sequential{
		"name": wrongName, "shape": wrongShape, "count": short,
	} {
		dst := NewSharedMLP("m", []int{4, 8}, rng).Params()
		orig := make([]*tensor.Matrix, len(dst))
		for i, p := range dst {
			orig[i] = p.Value
		}
		if err := ShareParams(dst, other.Params()); err == nil {
			t.Fatalf("%s mismatch not detected", name)
		}
		for i, p := range dst {
			if orig[i] != p.Value {
				t.Fatalf("%s mismatch mutated dst before failing", name)
			}
		}
	}
}
