package nn

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// ckptNet builds a small deterministic parameter set for checkpoint tests.
func ckptNet(seed int64) []*Param {
	return NewSharedMLP("c", []int{3, 4}, rand.New(rand.NewSource(seed))).Params()
}

func sameBits(t *testing.T, a, b []*Param) {
	t.Helper()
	for i, p := range a {
		q := b[i]
		for j := range p.Value.Data {
			if math.Float32bits(p.Value.Data[j]) != math.Float32bits(q.Value.Data[j]) {
				t.Fatalf("%s[%d]: %x != %x", p.Name, j, math.Float32bits(p.Value.Data[j]), math.Float32bits(q.Value.Data[j]))
			}
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	src := ckptNet(1)
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := WriteCheckpoint(path, src); err != nil {
		t.Fatal(err)
	}
	dst := ckptNet(2)
	if err := ReadCheckpoint(path, dst); err != nil {
		t.Fatal(err)
	}
	sameBits(t, src, dst)
	// No temp files may survive a successful write.
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestCheckpointOverwriteIsAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")
	first := ckptNet(1)
	if err := WriteCheckpoint(path, first); err != nil {
		t.Fatal(err)
	}
	second := ckptNet(7)
	if err := WriteCheckpoint(path, second); err != nil {
		t.Fatal(err)
	}
	dst := ckptNet(2)
	if err := ReadCheckpoint(path, dst); err != nil {
		t.Fatal(err)
	}
	sameBits(t, second, dst)
}

func TestCheckpointWriteFailureKeepsOld(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")
	good := ckptNet(1)
	if err := WriteCheckpoint(path, good); err != nil {
		t.Fatal(err)
	}
	// A write into a nonexistent directory must fail loudly and leave the
	// previous checkpoint untouched.
	bad := filepath.Join(t.TempDir(), "no", "such", "dir", "model.ckpt")
	if err := WriteCheckpoint(bad, good); err == nil {
		t.Fatal("write into missing directory succeeded")
	}
	dst := ckptNet(2)
	if err := ReadCheckpoint(path, dst); err != nil {
		t.Fatal(err)
	}
	sameBits(t, good, dst)
}

// TestCheckpointBitFlipDetected is the exhaustive corruption property: every
// single-bit flip anywhere in a valid checkpoint must be rejected with a
// typed error (CRC-32 detects all 1-bit errors; header damage is caught by
// the magic/version/count validation, which also wraps ErrCheckpointCorrupt).
func TestCheckpointBitFlipDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCheckpointTo(&buf, ckptNet(1)); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	flipped := make([]byte, len(valid))
	for bit := 0; bit < len(valid)*8; bit++ {
		copy(flipped, valid)
		flipped[bit/8] ^= 1 << (bit % 8)
		err := ReadCheckpointFrom(bytes.NewReader(flipped), ckptNet(2))
		if err == nil {
			t.Fatalf("bit flip at %d (byte %d) went undetected", bit, bit/8)
		}
		if !errors.Is(err, ErrCheckpointCorrupt) && !errors.Is(err, ErrCheckpointTorn) {
			t.Fatalf("bit flip at %d: untyped error %v", bit, err)
		}
	}
}

// TestCheckpointTruncationDetected: every proper prefix of a valid checkpoint
// must be rejected with a typed error — the torn-write signature.
func TestCheckpointTruncationDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCheckpointTo(&buf, ckptNet(1)); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	for n := 0; n < len(valid); n++ {
		err := ReadCheckpointFrom(bytes.NewReader(valid[:n]), ckptNet(2))
		if err == nil {
			t.Fatalf("truncation to %d of %d bytes went undetected", n, len(valid))
		}
		if !errors.Is(err, ErrCheckpointCorrupt) && !errors.Is(err, ErrCheckpointTorn) {
			t.Fatalf("truncation to %d: untyped error %v", n, err)
		}
	}
	// Trailing garbage after the trailer is corruption too.
	err := ReadCheckpointFrom(bytes.NewReader(append(append([]byte{}, valid...), 0)), ckptNet(2))
	if !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("trailing byte: got %v", err)
	}
}

// TestCheckpointPartialLoadNeverApplied: a checkpoint whose last parameter is
// corrupt must not modify any parameter of the destination network, even the
// ones whose records validated individually (all-or-nothing contract).
func TestCheckpointPartialLoadNeverApplied(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCheckpointTo(&buf, ckptNet(1)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-6] ^= 0x10 // damage inside the final parameter/trailer region
	dst := ckptNet(2)
	before := ckptNet(2)
	if err := ReadCheckpointFrom(bytes.NewReader(data), dst); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
	sameBits(t, before, dst)
}

func TestCheckpointWrongNetworkRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCheckpointTo(&buf, ckptNet(1)); err != nil {
		t.Fatal(err)
	}
	other := NewSharedMLP("other", []int{3, 4}, rand.New(rand.NewSource(3))).Params()
	err := ReadCheckpointFrom(bytes.NewReader(buf.Bytes()), other)
	if !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("wrong-network load: got %v", err)
	}
}

// FuzzReadCheckpoint mirrors FuzzLoadParams: the decoder must reject
// arbitrary bytes with a typed error, never a panic or unbounded allocation,
// and any stream it accepts must round-trip bit-exactly through
// WriteCheckpointTo∘ReadCheckpointFrom.
func FuzzReadCheckpoint(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteCheckpointTo(&buf, ckptNet(1)); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(append([]byte{}, valid...))                // well-formed checkpoint
	f.Add(append([]byte{}, valid[:9]...))            // truncated after header
	f.Add(append([]byte{}, valid[:len(valid)-3]...)) // truncated inside the trailer
	bad := append([]byte{}, valid...)
	bad[0] = 'X'
	f.Add(bad) // bad magic
	ver := append([]byte{}, valid...)
	ver[4] = 9
	f.Add(ver) // unsupported version
	flip := append([]byte{}, valid...)
	flip[len(flip)/2] ^= 0x01
	f.Add(flip)           // mid-stream bit flip
	f.Add([]byte{})       // empty
	f.Add([]byte("EPCK")) // magic only

	f.Fuzz(func(t *testing.T, data []byte) {
		dst := ckptNet(2)
		if err := ReadCheckpointFrom(bytes.NewReader(data), dst); err != nil {
			if !errors.Is(err, ErrCheckpointCorrupt) && !errors.Is(err, ErrCheckpointTorn) {
				t.Fatalf("untyped rejection: %v", err)
			}
			return
		}
		var out bytes.Buffer
		if err := WriteCheckpointTo(&out, dst); err != nil {
			t.Fatalf("re-encode of accepted checkpoint: %v", err)
		}
		dst2 := ckptNet(3)
		if err := ReadCheckpointFrom(bytes.NewReader(out.Bytes()), dst2); err != nil {
			t.Fatalf("re-decode of re-encoded checkpoint: %v", err)
		}
		for i, p := range dst {
			q := dst2[i]
			for j := range p.Value.Data {
				if math.Float32bits(p.Value.Data[j]) != math.Float32bits(q.Value.Data[j]) {
					t.Fatalf("round-trip changed %s[%d]: %x != %x",
						p.Name, j, math.Float32bits(p.Value.Data[j]), math.Float32bits(q.Value.Data[j]))
				}
			}
		}
	})
}
