package nn

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Parameter serialization: a minimal, versioned binary format so trained
// models survive process restarts (train once with cmd/edgepc-train, deploy
// into the inference pipeline). Format (little-endian):
//
//	magic   [4]byte "EPNN"
//	version byte    1
//	count   uvarint
//	per parameter:
//	  nameLen uvarint, name bytes
//	  rows, cols uvarint
//	  rows×cols float32 (IEEE-754 bits, little-endian)

var paramMagic = [4]byte{'E', 'P', 'N', 'N'}

const paramVersion = 1

// ErrFormat reports an undecodable or mismatched parameter stream.
var ErrFormat = errors.New("nn: bad parameter stream")

// SaveParams writes the parameters' values (not gradients) to w.
func SaveParams(w io.Writer, params []*Param) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(paramMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(paramVersion); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	if err := writeUvarint(uint64(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := writeUvarint(uint64(len(p.Name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(p.Name); err != nil {
			return err
		}
		if err := writeUvarint(uint64(p.Value.Rows)); err != nil {
			return err
		}
		if err := writeUvarint(uint64(p.Value.Cols)); err != nil {
			return err
		}
		var b [4]byte
		for _, v := range p.Value.Data {
			binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
			if _, err := bw.Write(b[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadParams reads a stream written by SaveParams into params, verifying
// that names and shapes match in order — loading into a differently
// constructed network is an error, not silent corruption.
func LoadParams(r io.Reader, params []*Param) error {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if magic != paramMagic {
		return fmt.Errorf("%w: bad magic", ErrFormat)
	}
	version, err := br.ReadByte()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if version != paramVersion {
		return fmt.Errorf("nn: unsupported parameter version %d", version)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("%w: count: %v", ErrFormat, err)
	}
	if int(count) != len(params) {
		return fmt.Errorf("%w: stream has %d parameters, network has %d", ErrFormat, count, len(params))
	}
	for _, p := range params {
		nameLen, err := binary.ReadUvarint(br)
		if err != nil || nameLen > 4096 {
			return fmt.Errorf("%w: name length", ErrFormat)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return fmt.Errorf("%w: name: %v", ErrFormat, err)
		}
		if string(name) != p.Name {
			return fmt.Errorf("%w: parameter %q in stream, %q in network", ErrFormat, name, p.Name)
		}
		rows, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("%w: rows: %v", ErrFormat, err)
		}
		cols, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("%w: cols: %v", ErrFormat, err)
		}
		if int(rows) != p.Value.Rows || int(cols) != p.Value.Cols {
			return fmt.Errorf("%w: %s is %dx%d in stream, %dx%d in network",
				ErrFormat, p.Name, rows, cols, p.Value.Rows, p.Value.Cols)
		}
		buf := make([]byte, 4*rows*cols)
		if _, err := io.ReadFull(br, buf); err != nil {
			return fmt.Errorf("%w: %s data: %v", ErrFormat, p.Name, err)
		}
		for i := range p.Value.Data {
			p.Value.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
	}
	return nil
}
