package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// numericGrad estimates d(loss)/d(x[i]) by central differences, where loss is
// computed by f on a fresh forward pass.
func numericGrad(f func() float64, v *float32, eps float32) float64 {
	orig := *v
	*v = orig + eps
	up := f()
	*v = orig - eps
	down := f()
	*v = orig
	return (up - down) / float64(2*eps)
}

// scalarLoss reduces a matrix to Σ w_i·y_i with fixed pseudo-random weights,
// giving a deterministic scalar objective for gradient checking.
func scalarLoss(m *tensor.Matrix, weights []float32) float64 {
	var s float64
	for i, v := range m.Data {
		s += float64(weights[i]) * float64(v)
	}
	return s
}

// checkLayerGradients verifies both input and parameter gradients of a layer
// against finite differences.
func checkLayerGradients(t *testing.T, layer Layer, rows, cols int, seed int64, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(rows, cols)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	// Probe forward once to learn the output shape.
	y0, err := layer.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float32, len(y0.Data))
	for i := range w {
		w[i] = float32(rng.NormFloat64())
	}
	forward := func() float64 {
		y, err := layer.Forward(x, true)
		if err != nil {
			t.Fatal(err)
		}
		return scalarLoss(y, w)
	}
	// Analytic gradients: one forward + backward with dL/dy = w.
	y, err := layer.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	grad := tensor.New(y.Rows, y.Cols)
	copy(grad.Data, w)
	for _, p := range layer.Params() {
		p.ZeroGrad()
	}
	dx, err := layer.Backward(grad)
	if err != nil {
		t.Fatal(err)
	}
	// Check input gradient.
	for i := 0; i < len(x.Data); i += 1 + len(x.Data)/8 {
		num := numericGrad(forward, &x.Data[i], 1e-2)
		got := float64(dx.Data[i])
		if math.Abs(num-got) > tol*(1+math.Abs(num)) {
			t.Fatalf("input grad [%d]: analytic %v vs numeric %v", i, got, num)
		}
	}
	// Check parameter gradients. Note: each forward() call accumulates into
	// p.Grad, but we saved analytic grads first.
	analytic := map[*Param][]float32{}
	for _, p := range layer.Params() {
		analytic[p] = append([]float32(nil), p.Grad.Data...)
	}
	for _, p := range layer.Params() {
		for i := 0; i < len(p.Value.Data); i += 1 + len(p.Value.Data)/6 {
			num := numericGrad(forward, &p.Value.Data[i], 1e-2)
			got := float64(analytic[p][i])
			if math.Abs(num-got) > tol*(1+math.Abs(num)) {
				t.Fatalf("param %s grad [%d]: analytic %v vs numeric %v", p.Name, i, got, num)
			}
		}
	}
}

func TestLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	checkLayerGradients(t, NewLinear("l", 4, 3, rng), 5, 4, 2, 1e-2)
}

func TestReLUGradients(t *testing.T) {
	checkLayerGradients(t, &ReLU{}, 6, 4, 3, 1e-2)
}

func TestBatchNormGradients(t *testing.T) {
	checkLayerGradients(t, NewBatchNorm("bn", 3), 8, 3, 4, 5e-2)
}

func TestSequentialGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	seq := NewSequential(
		NewLinear("a", 4, 6, rng),
		NewBatchNorm("a.bn", 6),
		&ReLU{},
		NewLinear("b", 6, 2, rng),
	)
	checkLayerGradients(t, seq, 7, 4, 6, 5e-2)
}

func TestSharedMLPStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mlp := NewSharedMLP("m", []int{3, 8, 16}, rng)
	// 2 blocks × (Linear + BN + ReLU) = 6 layers; params = 2×(W+b+γ+β) = 8.
	if len(mlp.Layers) != 6 {
		t.Fatalf("layers = %d, want 6", len(mlp.Layers))
	}
	if len(mlp.Params()) != 8 {
		t.Fatalf("params = %d, want 8", len(mlp.Params()))
	}
	x := tensor.New(5, 3)
	y, err := mlp.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if y.Rows != 5 || y.Cols != 16 {
		t.Fatalf("output %dx%d, want 5x16", y.Rows, y.Cols)
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	d := &Dropout{P: 0.5, Rng: rand.New(rand.NewSource(2))}
	x := tensor.New(10, 10)
	for i := range x.Data {
		x.Data[i] = 1
	}
	yEval, err := d.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if !yEval.Equal(x) {
		t.Fatal("eval dropout must be identity")
	}
	yTrain, err := d.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for _, v := range yTrain.Data {
		switch v {
		case 0:
			zeros++
		case 2: // 1 / (1-0.5)
		default:
			t.Fatalf("unexpected dropout value %v", v)
		}
	}
	if zeros == 0 || zeros == len(yTrain.Data) {
		t.Fatalf("dropout zeroed %d of %d", zeros, len(yTrain.Data))
	}
	// Backward masks the same entries.
	g := tensor.New(10, 10)
	for i := range g.Data {
		g.Data[i] = 1
	}
	back, err := d.Backward(g)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range yTrain.Data {
		if (v == 0) != (back.Data[i] == 0) {
			t.Fatal("backward mask mismatch")
		}
	}
}

func TestBatchNormRunningStats(t *testing.T) {
	bn := NewBatchNorm("bn", 1)
	x := tensor.New(100, 1)
	rng := rand.New(rand.NewSource(3))
	for i := range x.Data {
		x.Data[i] = float32(5 + 2*rng.NormFloat64())
	}
	for it := 0; it < 200; it++ {
		if _, err := bn.Forward(x, true); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(float64(bn.RunningMean[0])-5) > 0.5 {
		t.Fatalf("running mean = %v, want ≈5", bn.RunningMean[0])
	}
	if math.Abs(float64(bn.RunningVar[0])-4) > 1.5 {
		t.Fatalf("running var = %v, want ≈4", bn.RunningVar[0])
	}
	// Eval output is standardized around (x−5)/2.
	y, err := bn.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if y.Rows != 100 {
		t.Fatal("eval shape wrong")
	}
}

func TestCrossEntropy(t *testing.T) {
	logits, _ := tensor.FromSlice(2, 3, []float32{10, 0, 0, 0, 10, 0})
	loss, grad, err := CrossEntropy(logits, []int32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if loss > 1e-3 {
		t.Fatalf("confident correct loss = %v", loss)
	}
	if grad.Rows != 2 || grad.Cols != 3 {
		t.Fatal("grad shape")
	}
	// Wrong label → large loss, gradient pushes toward the label.
	loss2, grad2, err := CrossEntropy(logits, []int32{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if loss2 < 1 {
		t.Fatalf("wrong-label loss = %v", loss2)
	}
	if grad2.At(0, 1) >= 0 {
		t.Fatal("gradient does not favor the true class")
	}
}

func TestCrossEntropyGradientNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	logits := tensor.New(3, 4)
	for i := range logits.Data {
		logits.Data[i] = float32(rng.NormFloat64())
	}
	labels := []int32{2, 0, 3}
	_, grad, err := CrossEntropy(logits, labels)
	if err != nil {
		t.Fatal(err)
	}
	for i := range logits.Data {
		num := numericGrad(func() float64 {
			l, _, _ := CrossEntropy(logits, labels)
			return l
		}, &logits.Data[i], 1e-3)
		if math.Abs(num-float64(grad.Data[i])) > 1e-2 {
			t.Fatalf("grad[%d]: analytic %v vs numeric %v", i, grad.Data[i], num)
		}
	}
}

func TestCrossEntropyIgnoreLabel(t *testing.T) {
	logits, _ := tensor.FromSlice(2, 2, []float32{5, 0, 0, 5})
	loss, grad, err := CrossEntropy(logits, []int32{0, -1})
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.1 {
		t.Fatalf("loss = %v", loss)
	}
	for _, v := range grad.Row(1) {
		if v != 0 {
			t.Fatal("ignored row received gradient")
		}
	}
	// All ignored.
	loss, grad, err = CrossEntropy(logits, []int32{-1, -1})
	if err != nil || loss != 0 {
		t.Fatalf("all-ignored: loss=%v err=%v", loss, err)
	}
	_ = grad
}

func TestCrossEntropyErrors(t *testing.T) {
	logits := tensor.New(2, 2)
	if _, _, err := CrossEntropy(logits, []int32{0}); err == nil {
		t.Fatal("label count mismatch: want error")
	}
	if _, _, err := CrossEntropy(logits, []int32{0, 5}); err == nil {
		t.Fatal("label out of range: want error")
	}
}

func TestAccuracyAndArgmax(t *testing.T) {
	logits, _ := tensor.FromSlice(3, 2, []float32{1, 0, 0, 1, 1, 0})
	if got := Accuracy(logits, []int32{0, 1, 1}); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("accuracy = %v", got)
	}
	if got := Accuracy(logits, []int32{-1, -1, -1}); got != 0 {
		t.Fatalf("all-ignored accuracy = %v", got)
	}
	if Argmax([]float32{3, 1, 7, 2}) != 2 {
		t.Fatal("argmax wrong")
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	// Minimize ||w - target||² with gradients fed manually.
	p := NewParam("w", 1, 3)
	target := []float32{1, -2, 3}
	opt := &SGD{LR: 0.1, Momentum: 0.9}
	for it := 0; it < 200; it++ {
		p.ZeroGrad()
		for i := range p.Grad.Data {
			p.Grad.Data[i] = 2 * (p.Value.Data[i] - target[i])
		}
		opt.Step([]*Param{p})
	}
	for i, tgt := range target {
		if math.Abs(float64(p.Value.Data[i]-tgt)) > 1e-3 {
			t.Fatalf("SGD w[%d] = %v, want %v", i, p.Value.Data[i], tgt)
		}
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	p := NewParam("w", 1, 3)
	target := []float32{0.5, -1.5, 2.5}
	opt := NewAdam(0.05)
	for it := 0; it < 500; it++ {
		p.ZeroGrad()
		for i := range p.Grad.Data {
			p.Grad.Data[i] = 2 * (p.Value.Data[i] - target[i])
		}
		opt.Step([]*Param{p})
	}
	for i, tgt := range target {
		if math.Abs(float64(p.Value.Data[i]-tgt)) > 1e-2 {
			t.Fatalf("Adam w[%d] = %v, want %v", i, p.Value.Data[i], tgt)
		}
	}
}

func TestSGDWeightDecayShrinks(t *testing.T) {
	p := NewParam("w", 1, 1)
	p.Value.Data[0] = 1
	opt := &SGD{LR: 0.1, WeightDecay: 0.5}
	p.ZeroGrad()
	opt.Step([]*Param{p})
	if p.Value.Data[0] >= 1 {
		t.Fatalf("weight decay did not shrink: %v", p.Value.Data[0])
	}
}

func TestInitializers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := NewParam("w", 64, 64)
	InitHe(p, 64, rng)
	var sumSq float64
	for _, v := range p.Value.Data {
		sumSq += float64(v) * float64(v)
	}
	variance := sumSq / float64(len(p.Value.Data))
	if variance < 0.01 || variance > 0.1 { // expect ≈ 2/64 ≈ 0.031
		t.Fatalf("He variance = %v", variance)
	}
	InitXavier(p, 64, 64, rng)
	limit := math.Sqrt(6.0 / 128)
	for _, v := range p.Value.Data {
		if float64(v) > limit || float64(v) < -limit {
			t.Fatalf("Xavier value %v beyond limit %v", v, limit)
		}
	}
}
