package faultinject

import (
	"testing"
	"time"

	"repro/internal/geom"
)

func TestNilAndZeroPlansAreInert(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Active() {
		t.Fatal("nil plan reports active")
	}
	for seq := uint64(0); seq < 100; seq++ {
		if d := nilPlan.Frame(seq); d.Op != OpNone {
			t.Fatalf("nil plan injected %v at %d", d.Op, seq)
		}
	}
	zero := &Plan{Seed: 7}
	if zero.Active() {
		t.Fatal("zero plan reports active")
	}
	for seq := uint64(0); seq < 100; seq++ {
		if d := zero.Frame(seq); d.Op != OpNone {
			t.Fatalf("zero plan injected %v at %d", d.Op, seq)
		}
	}
}

func TestFrameIsDeterministic(t *testing.T) {
	mk := func(seed uint64) *Plan {
		return &Plan{Seed: seed, PanicFrac: 0.1, CorruptFrac: 0.1, StallFrac: 0.1, DelayFrac: 0.1}
	}
	a, b := mk(42), mk(42)
	differentSeed := mk(43)
	diff := 0
	for seq := uint64(0); seq < 2000; seq++ {
		da, db := a.Frame(seq), b.Frame(seq)
		if da != db {
			t.Fatalf("same plan disagrees at %d: %v vs %v", seq, da, db)
		}
		if da != differentSeed.Frame(seq) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("changing the seed changed no decision in 2000 frames")
	}
}

func TestFractionsApproximatelyHold(t *testing.T) {
	p := &Plan{Seed: 9, PanicFrac: 0.25}
	const n = 20000
	hits := 0
	for seq := uint64(0); seq < n; seq++ {
		if p.Frame(seq).Op == OpPanic {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.2 || frac > 0.3 {
		t.Fatalf("PanicFrac 0.25 hit %.3f of frames", frac)
	}
}

func TestPanicFramesAndPriority(t *testing.T) {
	// Every class at fraction 1: panic must win the priority order, and the
	// explicit frame list must fire even with PanicFrac 0.
	p := &Plan{Seed: 1, CorruptFrac: 1, StallFrac: 1, DelayFrac: 1, PanicFrames: []uint64{3}}
	if d := p.Frame(3); d.Op != OpPanic {
		t.Fatalf("explicit panic frame got %v", d.Op)
	}
	if d := p.Frame(4); d.Op != OpCorrupt {
		t.Fatalf("corrupt should outrank stall/delay, got %v", d.Op)
	}
	all := &Plan{Seed: 1, PanicFrac: 1, CorruptFrac: 1, StallFrac: 1, DelayFrac: 1}
	if d := all.Frame(11); d.Op != OpPanic {
		t.Fatalf("panic should win all draws, got %v", d.Op)
	}
}

func TestSleepDefaults(t *testing.T) {
	p := &Plan{Seed: 2, StallFrac: 1}
	if d := p.Frame(0); d.Op != OpStall || d.Sleep != DefaultStall {
		t.Fatalf("stall decision %+v, want default %v", d, DefaultStall)
	}
	p = &Plan{Seed: 2, DelayFrac: 1, Delay: 3 * time.Millisecond}
	if d := p.Frame(0); d.Op != OpDelay || d.Sleep != 3*time.Millisecond {
		t.Fatalf("delay decision %+v", d)
	}
}

func TestCorruptClonesAndPoisons(t *testing.T) {
	c := geom.NewCloud(8, 2)
	for i := range c.Points {
		c.Points[i] = geom.Point3{X: float64(i), Y: 1, Z: 2}
	}
	orig := c.Clone()
	bad := Corrupt(c, 7, 3)
	if bad == c {
		t.Fatal("Corrupt returned the original cloud")
	}
	// Original untouched.
	for i := range c.Points {
		if c.Points[i] != orig.Points[i] {
			t.Fatalf("Corrupt mutated the caller's cloud at %d", i)
		}
	}
	finite := 0
	for _, p := range bad.Points {
		if p.IsFinite() {
			finite++
		}
	}
	if finite != len(bad.Points)-1 {
		t.Fatalf("%d finite points of %d, want exactly one poisoned", finite, len(bad.Points))
	}
	// Deterministic in (seed, seq).
	again := Corrupt(c, 7, 3)
	for i := range bad.Points {
		a, b := bad.Points[i], again.Points[i]
		if (a.IsFinite() != b.IsFinite()) || (a.IsFinite() && a != b) {
			t.Fatalf("corruption not deterministic at %d", i)
		}
	}
	if other := Corrupt(c, 7, 4); func() bool {
		for i := range other.Points {
			of, bf := other.Points[i].IsFinite(), bad.Points[i].IsFinite()
			if of != bf {
				return false
			}
		}
		return true
	}() {
		t.Log("seq 3 and 4 poisoned the same site (possible, just unlikely)")
	}
	if empty := Corrupt(geom.NewCloud(0, 0), 1, 1); empty.Len() != 0 {
		t.Fatal("empty cloud corruption grew points")
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{OpNone: "none", OpPanic: "panic", OpCorrupt: "corrupt", OpStall: "stall", OpDelay: "delay"} {
		if op.String() != want {
			t.Fatalf("Op(%d).String() = %q, want %q", op, op.String(), want)
		}
	}
}
