// Package faultinject provides deterministic, seed-driven fault plans for
// chaos-testing the serving engine (internal/serve).
//
// A Plan maps a frame sequence number to at most one fault Decision — panic,
// input corruption, worker stall, or added delay — using a pure hash of
// (seed, sequence, fault class). The same plan therefore produces the same
// fault schedule on every run, which is what lets the chaos tests assert
// exact per-frame outcomes ("frame 17 panics, frame 18 completes") instead of
// statistical ones, and lets a failure found under `-race` be replayed
// bit-for-bit.
//
// The zero Plan (and a nil *Plan) injects nothing: production code threads a
// plan pointer unconditionally and pays one nil check per frame, no
// allocations and no locks.
package faultinject

import (
	"fmt"
	"math"
	"time"

	"repro/internal/geom"
)

// Op is the kind of fault injected into one frame.
type Op uint8

// The fault taxonomy (DESIGN.md §11). At most one op fires per frame;
// when several classes draw the same frame the priority is
// panic > corrupt > stall > delay.
const (
	// OpNone leaves the frame alone.
	OpNone Op = iota
	// OpPanic makes the worker panic mid-frame, inside the forward pass —
	// the fault the recover/quarantine machinery must contain.
	OpPanic
	// OpCorrupt poisons the input before admission (a NaN/Inf coordinate is
	// written into a clone of the cloud), so the frame must be rejected by
	// input validation, never run.
	OpCorrupt
	// OpStall freezes the worker for Decision.Sleep before it processes the
	// batch holding this frame — a hung replica; other workers absorb load.
	OpStall
	// OpDelay adds Decision.Sleep to this frame's forward pass — a slow
	// frame that pushes queue depth up and exercises deadlines and the
	// degradation ladder.
	OpDelay
)

var opNames = [...]string{"none", "panic", "corrupt", "stall", "delay"}

// String names the op.
func (o Op) String() string {
	if int(o) >= len(opNames) {
		return fmt.Sprintf("op(%d)", uint8(o))
	}
	return opNames[o]
}

// Decision is the fault (if any) scheduled for one frame.
type Decision struct {
	Op    Op
	Sleep time.Duration // for OpStall and OpDelay
}

// Default sleep durations applied when a fraction is set but its duration is
// left zero.
const (
	DefaultStall = 5 * time.Millisecond
	DefaultDelay = 500 * time.Microsecond
)

// Plan is a deterministic fault schedule over frame sequence numbers. Each
// fraction is the probability (under the seeded hash) that a frame draws that
// fault class; PanicFrames additionally forces panics on explicit frames.
// Plans are immutable once handed to an engine and safe for concurrent use.
type Plan struct {
	Seed uint64

	// PanicFrac injects worker panics into this fraction of frames.
	PanicFrac float64
	// PanicFrames forces OpPanic on these exact sequence numbers,
	// independent of PanicFrac (deterministic single-fault scenarios).
	PanicFrames []uint64

	// CorruptFrac poisons this fraction of inputs before admission.
	CorruptFrac float64

	// StallFrac freezes the worker for Stall before this fraction of frames.
	StallFrac float64
	// StallFrames forces OpStall on these exact sequence numbers,
	// independent of StallFrac (deterministic single-stall scenarios for the
	// watchdog tests). Panic and corrupt draws still take priority.
	StallFrames []uint64
	Stall       time.Duration // zero: DefaultStall

	// DelayFrac slows this fraction of frames by Delay.
	DelayFrac float64
	Delay     time.Duration // zero: DefaultDelay
}

// Active reports whether the plan can inject any fault at all.
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	return p.PanicFrac > 0 || len(p.PanicFrames) > 0 || p.CorruptFrac > 0 ||
		p.StallFrac > 0 || len(p.StallFrames) > 0 || p.DelayFrac > 0
}

// Frame returns the fault scheduled for frame seq. It is nil-safe,
// allocation-free, and pure: the same (plan, seq) always returns the same
// Decision.
func (p *Plan) Frame(seq uint64) Decision {
	if p == nil {
		return Decision{}
	}
	for _, f := range p.PanicFrames {
		if f == seq {
			return Decision{Op: OpPanic}
		}
	}
	if p.PanicFrac > 0 && p.draw(seq, 1) < p.PanicFrac {
		return Decision{Op: OpPanic}
	}
	if p.CorruptFrac > 0 && p.draw(seq, 2) < p.CorruptFrac {
		return Decision{Op: OpCorrupt}
	}
	for _, f := range p.StallFrames {
		if f == seq {
			return Decision{Op: OpStall, Sleep: defaultDur(p.Stall, DefaultStall)}
		}
	}
	if p.StallFrac > 0 && p.draw(seq, 3) < p.StallFrac {
		return Decision{Op: OpStall, Sleep: defaultDur(p.Stall, DefaultStall)}
	}
	if p.DelayFrac > 0 && p.draw(seq, 4) < p.DelayFrac {
		return Decision{Op: OpDelay, Sleep: defaultDur(p.Delay, DefaultDelay)}
	}
	return Decision{}
}

func defaultDur(d, def time.Duration) time.Duration {
	if d <= 0 {
		return def
	}
	return d
}

// draw maps (seed, seq, class) to a uniform float in [0, 1).
func (p *Plan) draw(seq, class uint64) float64 {
	h := mix(mix(p.Seed^class*0xda942042e4dd58b5) ^ seq)
	return float64(h>>11) * (1.0 / (1 << 53))
}

// mix is the SplitMix64 finalizer: a cheap, well-distributed 64-bit hash.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Corrupt returns a poisoned deep copy of the cloud: one seeded coordinate is
// replaced with NaN or ±Inf. The original is never touched (callers of Submit
// own their clouds), and the corruption site is deterministic in (seed, seq),
// so admission tests can assert exactly which frame was rejected and why.
func Corrupt(c *geom.Cloud, seed, seq uint64) *geom.Cloud {
	out := c.Clone()
	n := out.Len()
	if n == 0 {
		return out
	}
	h := mix(seed ^ mix(seq))
	var v float64
	switch (h >> 32) % 3 {
	case 0:
		v = math.NaN()
	case 1:
		v = math.Inf(1)
	default:
		v = math.Inf(-1)
	}
	p := &out.Points[h%uint64(n)]
	switch (h >> 40) % 3 {
	case 0:
		p.X = v
	case 1:
		p.Y = v
	default:
		p.Z = v
	}
	return out
}
