package neighbor

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/parallel"
)

// KDTree is a median-split k-d tree over the candidate points: the classical
// O(N log N) neighbor-search structure (the paper's footnote 1 and the
// subject of Crescent's memory-irregularity analysis). Build once per
// candidate set, then answer k-NN or radius queries.
//
// Stored as a flat node array (children at implicit offsets recorded per
// node) so traversal is pointer-free.
type KDTree struct {
	pts   []geom.Point3
	nodes []kdNode
	root  int
}

type kdNode struct {
	point       int // index into pts
	axis        int8
	left, right int32 // node indexes; -1 if absent
}

// NewKDTree builds a tree over points. The points slice is retained (not
// copied); callers must not mutate it while the tree is in use.
func NewKDTree(points []geom.Point3) *KDTree {
	t := &KDTree{pts: points}
	if len(points) == 0 {
		t.root = -1
		return t
	}
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	t.nodes = make([]kdNode, 0, len(points))
	t.root = t.build(idx, 0)
	return t
}

func coord(p geom.Point3, axis int8) float64 {
	switch axis {
	case 0:
		return p.X
	case 1:
		return p.Y
	default:
		return p.Z
	}
}

func (t *KDTree) build(idx []int, depth int) int {
	if len(idx) == 0 {
		return -1
	}
	axis := int8(depth % 3)
	sort.Slice(idx, func(a, b int) bool {
		return coord(t.pts[idx[a]], axis) < coord(t.pts[idx[b]], axis)
	})
	mid := len(idx) / 2
	node := kdNode{point: idx[mid], axis: axis}
	me := len(t.nodes)
	t.nodes = append(t.nodes, node)
	left := t.build(idx[:mid], depth+1)
	right := t.build(idx[mid+1:], depth+1)
	t.nodes[me].left = int32(left)
	t.nodes[me].right = int32(right)
	return me
}

// Len returns the number of indexed points.
func (t *KDTree) Len() int { return len(t.pts) }

// KNN returns the k nearest indexed points to p, ascending by distance.
func (t *KDTree) KNN(p geom.Point3, k int) []int {
	if k > len(t.pts) {
		k = len(t.pts)
	}
	if k <= 0 || t.root < 0 {
		return nil
	}
	idx := make([]int, k)
	d := make([]float64, k)
	for i := range d {
		d[i] = inf
		idx[i] = -1
	}
	t.knn(t.root, p, idx, d)
	return idx
}

func (t *KDTree) knn(node int, p geom.Point3, idx []int, d []float64) {
	if node < 0 {
		return
	}
	n := &t.nodes[node]
	dist := p.DistSq(t.pts[n.point])
	k := len(idx)
	if dist < d[k-1] {
		j := k - 1
		for j > 0 && d[j-1] > dist {
			d[j] = d[j-1]
			idx[j] = idx[j-1]
			j--
		}
		d[j] = dist
		idx[j] = n.point
	}
	delta := coord(p, n.axis) - coord(t.pts[n.point], n.axis)
	near, far := int(n.left), int(n.right)
	if delta > 0 {
		near, far = far, near
	}
	t.knn(near, p, idx, d)
	if delta*delta < d[k-1] {
		t.knn(far, p, idx, d)
	}
}

// Radius returns up to maxCount indexed points within radius r of p, in
// traversal order. maxCount ≤ 0 means unlimited.
func (t *KDTree) Radius(p geom.Point3, r float64, maxCount int) []int {
	if t.root < 0 || r <= 0 {
		return nil
	}
	var out []int
	t.radius(t.root, p, r*r, r, maxCount, &out)
	return out
}

func (t *KDTree) radius(node int, p geom.Point3, r2, r float64, maxCount int, out *[]int) {
	if node < 0 || (maxCount > 0 && len(*out) >= maxCount) {
		return
	}
	n := &t.nodes[node]
	if p.DistSq(t.pts[n.point]) <= r2 {
		*out = append(*out, n.point)
	}
	delta := coord(p, n.axis) - coord(t.pts[n.point], n.axis)
	near, far := int(n.left), int(n.right)
	if delta > 0 {
		near, far = far, near
	}
	t.radius(near, p, r2, r, maxCount, out)
	if delta < 0 {
		delta = -delta
	}
	if delta <= r {
		t.radius(far, p, r2, r, maxCount, out)
	}
}

// KDTreeKNN adapts KDTree to the Searcher interface, rebuilding the tree per
// candidate set (the build cost is part of what the paper charges kd-tree
// approaches with).
type KDTreeKNN struct{}

// Name implements Searcher.
func (KDTreeKNN) Name() string { return "knn-kdtree" }

// Search implements Searcher.
func (KDTreeKNN) Search(points, queries []geom.Point3, k int) ([]int, error) {
	if err := checkSearch(points, k); err != nil {
		return nil, err
	}
	tree := NewKDTree(points)
	out := make([]int, len(queries)*k)
	parallel.ForChunks(len(queries), func(lo, hi int) {
		for q := lo; q < hi; q++ {
			writePadded(out[q*k:(q+1)*k], tree.KNN(queries[q], k))
		}
	})
	return out, nil
}

// KDTreeBall adapts KDTree radius search to the Searcher interface.
type KDTreeBall struct {
	R float64
}

// Name implements Searcher.
func (KDTreeBall) Name() string { return "ball-kdtree" }

// Search implements Searcher.
func (b KDTreeBall) Search(points, queries []geom.Point3, k int) ([]int, error) {
	if err := checkSearch(points, k); err != nil {
		return nil, err
	}
	tree := NewKDTree(points)
	out := make([]int, len(queries)*k)
	parallel.ForChunks(len(queries), func(lo, hi int) {
		for q := lo; q < hi; q++ {
			found := tree.Radius(queries[q], b.R, k)
			if len(found) == 0 {
				found = tree.KNN(queries[q], 1)
			}
			writePadded(out[q*k:(q+1)*k], found)
		}
	})
	return out, nil
}
