package neighbor

import "fmt"

// FalseNeighborRatio computes the paper's Fig. 6 metric: the fraction of
// neighbors picked by an approximate scheme that are *not* identified as
// neighbors by the exact (SOTA) scheme, averaged over queries. Both inputs
// are flat q×k index arrays as produced by Searcher.Search. Duplicate indexes
// inside one query's exact set (ball-query padding) are counted once.
func FalseNeighborRatio(approx, exact []int, k int) (float64, error) {
	if k <= 0 {
		return 0, fmt.Errorf("%w: k=%d", ErrBadK, k)
	}
	if len(approx) != len(exact) || len(approx)%k != 0 {
		return 0, fmt.Errorf("neighbor: mismatched result shapes: %d vs %d (k=%d)",
			len(approx), len(exact), k)
	}
	q := len(approx) / k
	if q == 0 {
		return 0, nil
	}
	falseTotal := 0
	set := make(map[int]struct{}, k)
	for i := 0; i < q; i++ {
		for j := range set {
			delete(set, j)
		}
		for _, e := range exact[i*k : (i+1)*k] {
			set[e] = struct{}{}
		}
		for _, a := range approx[i*k : (i+1)*k] {
			if _, ok := set[a]; !ok {
				falseTotal++
			}
		}
	}
	return float64(falseTotal) / float64(q*k), nil
}

// RecallAtK computes the complementary metric: the fraction of exact
// neighbors that the approximate scheme recovered.
func RecallAtK(approx, exact []int, k int) (float64, error) {
	fnr, err := FalseNeighborRatio(exact, approx, k)
	if err != nil {
		return 0, err
	}
	return 1 - fnr, nil
}
