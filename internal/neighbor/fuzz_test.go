package neighbor

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// FuzzGridSearch throws arbitrary point/query counts, k, cell sizes and radii
// at the grid searcher. Contract under fuzz: either an error (never a panic),
// or a result of exactly len(queries)*k indexes, each a valid position into
// points. Cell size and radius are clamped to a sane band — a degenerate cell
// (1e-30) would make ring enumeration astronomically large, which is a
// configuration error, not a search bug.
func FuzzGridSearch(f *testing.F) {
	f.Add(int64(1), uint8(12), uint8(5), uint8(3), float32(0), float32(0))
	f.Add(int64(2), uint8(40), uint8(8), uint8(8), float32(1.5), float32(0))
	f.Add(int64(3), uint8(0), uint8(4), uint8(2), float32(0.5), float32(0))  // no points
	f.Add(int64(4), uint8(6), uint8(0), uint8(3), float32(2), float32(1))    // no queries, ball mode
	f.Add(int64(5), uint8(3), uint8(3), uint8(5), float32(0.5), float32(0))  // k > N
	f.Add(int64(6), uint8(30), uint8(6), uint8(4), float32(4), float32(3.5)) // coarse ball

	f.Fuzz(func(t *testing.T, seed int64, nRaw, qRaw, kRaw uint8, cellRaw, rRaw float32) {
		nPts := int(nRaw) % 65
		nQ := int(qRaw) % 17
		k := int(kRaw) % 17
		cell := float64(cellRaw)
		if math.IsNaN(cell) || math.IsInf(cell, 0) || cell < 0 {
			cell = 0
		}
		if cell > 0 {
			cell = 0.5 + math.Mod(cell, 4) // [0.5, 4.5): bounded ring counts
		}
		r := float64(rRaw)
		if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
			r = 0
		}
		if r > 0 {
			r = math.Mod(r, 4) // ball radius [0, 4)
		}
		rng := rand.New(rand.NewSource(seed))
		coord := func() float64 { return float64(rng.Intn(256))/8 - 16 } // [-16, 16)
		points := make([]geom.Point3, nPts)
		for i := range points {
			points[i] = geom.Point3{X: coord(), Y: coord(), Z: coord()}
		}
		queries := make([]geom.Point3, nQ)
		for i := range queries {
			queries[i] = geom.Point3{X: coord(), Y: coord(), Z: coord()}
		}
		out, err := GridSearch{CellSize: cell, R: r}.Search(points, queries, k)
		if err != nil {
			return // invalid configuration rejected cleanly
		}
		if len(out) != nQ*k {
			t.Fatalf("got %d indexes for %d queries × k=%d", len(out), nQ, k)
		}
		for i, idx := range out {
			if idx < 0 || idx >= nPts {
				t.Fatalf("result %d: index %d out of range [0,%d)", i, idx, nPts)
			}
		}
	})
}
