package neighbor

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/parallel"
)

// EstimateNormals computes a unit surface normal per point as the smallest
// covariance eigenvector of its k-neighborhood (the classical PCA normal
// estimator) using exact k-NN. Normal signs are ambiguous by construction;
// each is oriented to point away from the neighborhood centroid's side of
// the cloud centroid (consistent for convex-ish surfaces; callers needing a
// globally consistent orientation should propagate signs themselves).
func EstimateNormals(points []geom.Point3, k int) ([]geom.Point3, error) {
	if err := checkSearch(points, k); err != nil {
		return nil, err
	}
	if k < 3 {
		return nil, fmt.Errorf("neighbor: normal estimation needs k ≥ 3, got %d", k)
	}
	nbr, err := BruteKNN{}.Search(points, points, k)
	if err != nil {
		return nil, err
	}
	return NormalsFromNeighbors(points, nbr, k)
}

// NormalsFromNeighbors computes PCA normals from a precomputed flat q×k
// neighbor result over the same point set — this is where an approximate
// searcher (e.g. the Morton window) plugs in.
func NormalsFromNeighbors(points []geom.Point3, nbr []int, k int) ([]geom.Point3, error) {
	if len(nbr) != len(points)*k {
		return nil, fmt.Errorf("neighbor: %d neighbor entries for %d points × k=%d", len(nbr), len(points), k)
	}
	centroid := geom.Point3{}
	for _, p := range points {
		centroid = centroid.Add(p)
	}
	centroid = centroid.Scale(1 / float64(len(points)))

	normals := make([]geom.Point3, len(points))
	parallel.ForChunks(len(points), func(lo, hi int) {
		hood := make([]geom.Point3, 0, k)
		for i := lo; i < hi; i++ {
			hood = hood[:0]
			for _, j := range nbr[i*k : (i+1)*k] {
				hood = append(hood, points[j])
			}
			n := geom.Covariance3(hood).EigenSmallest()
			// Orient outward relative to the cloud centroid.
			if n.Dot(points[i].Sub(centroid)) < 0 {
				n = n.Scale(-1)
			}
			normals[i] = n
		}
	})
	return normals, nil
}
