// Package neighbor provides neighbor-search algorithms for point clouds: the
// state-of-the-art baselines (ball query, k-NN, kd-tree, uniform grid) that
// PointNet++ and DGCNN use to build local neighborhoods.
//
// Brute-force ball query and k-NN cost O(N) per query — O(N²) per frame —
// which the paper identifies as the second pipeline bottleneck (§5.2.1).
// kd-trees lower the asymptotic complexity to O(N log N) but serialize badly
// on parallel hardware (the paper's footnote 1); uniform grids (cuNSearch /
// FRNN style) are the strongest classical competitor. EdgePC's index-window
// approximation lives in package core.
package neighbor

import (
	"errors"
	"fmt"

	"repro/internal/geom"
	"repro/internal/parallel"
)

// Common search errors.
var (
	ErrNoPoints = errors.New("neighbor: empty point set")
	ErrBadK     = errors.New("neighbor: invalid neighbor count")
)

// Searcher finds, for every query point, the indexes of k neighbors among the
// candidate points. Results are returned flat: neighbor j of query q is at
// out[q*k+j]. Every implementation returns exactly k indexes per query,
// padding (by repeating the nearest / first found) when fewer candidates
// qualify — the padding convention of the PointNet++ reference CUDA kernels.
type Searcher interface {
	Search(points, queries []geom.Point3, k int) ([]int, error)
	Name() string
}

func checkSearch(points []geom.Point3, k int) error {
	if len(points) == 0 {
		return ErrNoPoints
	}
	if k < 1 {
		return fmt.Errorf("%w: k=%d", ErrBadK, k)
	}
	return nil
}

// BruteKNN is exhaustive k-nearest-neighbor search: O(N) per query with a
// small insertion-sorted top-k buffer.
type BruteKNN struct{}

// Name implements Searcher.
func (BruteKNN) Name() string { return "knn-brute" }

// Search implements Searcher.
func (BruteKNN) Search(points, queries []geom.Point3, k int) ([]int, error) {
	if err := checkSearch(points, k); err != nil {
		return nil, err
	}
	kk := k
	if kk > len(points) {
		kk = len(points)
	}
	out := make([]int, len(queries)*k)
	parallel.ForChunks(len(queries), func(lo, hi int) {
		idx := make([]int, kk)
		d := make([]float64, kk)
		for q := lo; q < hi; q++ {
			topK(queries[q], points, idx, d)
			writePadded(out[q*k:(q+1)*k], idx)
		}
	})
	return out, nil
}

// topK fills idx/d with the k nearest points to p, ascending by distance.
func topK(p geom.Point3, points []geom.Point3, idx []int, d []float64) {
	k := len(idx)
	for i := range d {
		d[i] = inf
		idx[i] = -1
	}
	for s := range points {
		dist := p.DistSq(points[s])
		if dist >= d[k-1] {
			continue
		}
		j := k - 1
		for j > 0 && d[j-1] > dist {
			d[j] = d[j-1]
			idx[j] = idx[j-1]
			j--
		}
		d[j] = dist
		idx[j] = s
	}
}

const inf = 1e300

// writePadded copies found into dst, repeating the first element to fill any
// remaining slots.
func writePadded(dst []int, found []int) {
	n := copy(dst, found)
	if n == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	for i := n; i < len(dst); i++ {
		dst[i] = found[0]
	}
}

// KNNExcludingSelf returns, for each query given as an index into points,
// its k nearest *other* points (exhaustive search with k+1 and the self hit
// dropped). This is the exact reference for approximate searchers that
// exclude the query point, like the Morton window searcher with W > k.
func KNNExcludingSelf(points []geom.Point3, queryIdx []int, k int) ([]int, error) {
	if err := checkSearch(points, k); err != nil {
		return nil, err
	}
	queries := make([]geom.Point3, len(queryIdx))
	for i, q := range queryIdx {
		if q < 0 || q >= len(points) {
			return nil, fmt.Errorf("neighbor: query index %d out of %d points", q, len(points))
		}
		queries[i] = points[q]
	}
	full, err := BruteKNN{}.Search(points, queries, k+1)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(queryIdx)*k)
	for qi, self := range queryIdx {
		row := full[qi*(k+1) : (qi+1)*(k+1)]
		j := 0
		for _, n := range row {
			if n == self {
				continue
			}
			if j < k {
				out[qi*k+j] = n
				j++
			}
		}
		// Self never appeared (it was beyond the k+1 nearest among
		// duplicates): drop the farthest entry instead.
		for ; j < k; j++ {
			out[qi*k+j] = row[k]
		}
	}
	return out, nil
}

// BallQuery is the PointNet++ grouping primitive: for each query it returns
// the first k candidate points lying inside the ball of radius R around the
// query, padding with the first hit. If the ball is empty, the nearest
// candidate is used so downstream grouping always has valid indexes.
type BallQuery struct {
	R float64
}

// Name implements Searcher.
func (BallQuery) Name() string { return "ball-query" }

// Search implements Searcher.
func (b BallQuery) Search(points, queries []geom.Point3, k int) ([]int, error) {
	if err := checkSearch(points, k); err != nil {
		return nil, err
	}
	if b.R <= 0 {
		return nil, fmt.Errorf("neighbor: ball query needs positive radius, got %v", b.R)
	}
	r2 := b.R * b.R
	out := make([]int, len(queries)*k)
	parallel.ForChunks(len(queries), func(lo, hi int) {
		found := make([]int, 0, k)
		for q := lo; q < hi; q++ {
			found = found[:0]
			p := queries[q]
			nearest, nearestD := 0, inf
			for s := range points {
				dist := p.DistSq(points[s])
				if dist < nearestD {
					nearest, nearestD = s, dist
				}
				if dist <= r2 {
					found = append(found, s)
					if len(found) == k {
						break
					}
				}
			}
			if len(found) == 0 {
				found = append(found, nearest)
			}
			writePadded(out[q*k:(q+1)*k], found)
		}
	})
	return out, nil
}
