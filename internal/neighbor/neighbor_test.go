package neighbor

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// fig10Points is the cloud of the paper's Fig. 10 worked example (same five
// points as Fig. 8).
func fig10Points() []geom.Point3 {
	return []geom.Point3{
		{X: 3, Y: 6, Z: 2}, // P0
		{X: 1, Y: 3, Z: 1}, // P1
		{X: 4, Y: 3, Z: 2}, // P2
		{X: 0, Y: 0, Z: 0}, // P3
		{X: 5, Y: 1, Z: 0}, // P4
	}
}

func TestPaperWorkedExampleFig10aBallQuery(t *testing.T) {
	// Fig. 10(a): searching 3 neighbors of P2 with (squared) radius 11
	// returns P0, P1 and P4 (squared distances 10, 10, 9 ≤ 11; P3 at 29 is
	// outside). The query point itself (distance 0) also qualifies, so with
	// k=4 the ball contains {P0, P1, P2, P4}.
	pts := fig10Points()
	out, err := BallQuery{R: math.Sqrt(11)}.Search(pts, []geom.Point3{pts[2]}, 4)
	if err != nil {
		t.Fatal(err)
	}
	got := append([]int(nil), out...)
	sort.Ints(got)
	want := []int{0, 1, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ball query = %v, want %v", got, want)
		}
	}
}

func TestBruteKNNExactOrder(t *testing.T) {
	pts := fig10Points()
	out, err := BruteKNN{}.Search(pts, []geom.Point3{pts[2]}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Ascending by distance from P2: P2 (0), P4 (9), then P0/P1 (both 10).
	if out[0] != 2 || out[1] != 4 {
		t.Fatalf("kNN order = %v", out)
	}
	rest := []int{out[2], out[3]}
	sort.Ints(rest)
	if rest[0] != 0 || rest[1] != 1 {
		t.Fatalf("kNN tail = %v, want {0,1}", rest)
	}
}

func TestSearchersAgreeOnKNN(t *testing.T) {
	cloud := geom.GenerateShape(geom.ShapeBlob, geom.ShapeOptions{N: 300, DensitySkew: 0.6, Seed: 21})
	queries := cloud.Points[:40]
	k := 5
	exact, err := BruteKNN{}.Search(cloud.Points, queries, k)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Searcher{KDTreeKNN{}, GridSearch{}} {
		got, err := s.Search(cloud.Points, queries, k)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		assertSameNeighborSets(t, s.Name(), cloud.Points, queries, got, exact, k)
	}
}

// assertSameNeighborSets compares by distance multisets (ties may be broken
// differently by different searchers).
func assertSameNeighborSets(t *testing.T, name string, pts, queries []geom.Point3, got, want []int, k int) {
	t.Helper()
	for q := range queries {
		gd := distSet(pts, queries[q], got[q*k:(q+1)*k])
		wd := distSet(pts, queries[q], want[q*k:(q+1)*k])
		for i := range gd {
			if math.Abs(gd[i]-wd[i]) > 1e-9 {
				t.Fatalf("%s: query %d distance multiset %v != %v", name, q, gd, wd)
			}
		}
	}
}

func distSet(pts []geom.Point3, q geom.Point3, idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, n := range idx {
		out[i] = q.DistSq(pts[n])
	}
	sort.Float64s(out)
	return out
}

func TestBallQueryPadding(t *testing.T) {
	pts := []geom.Point3{{X: 0}, {X: 100}}
	// Radius covers only the first point; k=3 must pad with it.
	out, err := BallQuery{R: 1}.Search(pts, []geom.Point3{{X: 0.1}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range out {
		if n != 0 {
			t.Fatalf("padding picked %v, want all 0", out)
		}
	}
}

func TestBallQueryEmptyBallFallsBackToNearest(t *testing.T) {
	pts := []geom.Point3{{X: 5}, {X: 50}}
	out, err := BallQuery{R: 0.001}.Search(pts, []geom.Point3{{X: 0}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range out {
		if n != 0 {
			t.Fatalf("fallback = %v, want nearest point 0", out)
		}
	}
}

func TestSearchErrors(t *testing.T) {
	pts := fig10Points()
	if _, err := (BruteKNN{}).Search(nil, pts, 1); err == nil {
		t.Fatal("empty points: want error")
	}
	if _, err := (BruteKNN{}).Search(pts, pts, 0); err == nil {
		t.Fatal("k=0: want error")
	}
	if _, err := (BallQuery{R: -1}).Search(pts, pts, 1); err == nil {
		t.Fatal("negative radius: want error")
	}
}

func TestKNNWithKLargerThanN(t *testing.T) {
	pts := fig10Points()
	out, err := BruteKNN{}.Search(pts, []geom.Point3{pts[0]}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 8 {
		t.Fatalf("len = %d, want 8 (padded)", len(out))
	}
	seen := map[int]bool{}
	for _, n := range out {
		seen[n] = true
	}
	if len(seen) != 5 {
		t.Fatalf("padded result covers %d distinct points, want 5", len(seen))
	}
}

func TestKDTreeKNNProperty(t *testing.T) {
	f := func(seed int64) bool {
		c := geom.GenerateShape(geom.ShapeTorus, geom.ShapeOptions{N: 120, Seed: seed})
		tree := NewKDTree(c.Points)
		q := c.Points[7]
		got := tree.KNN(q, 4)
		exact, _ := BruteKNN{}.Search(c.Points, []geom.Point3{q}, 4)
		gd := distSet(c.Points, q, got)
		wd := distSet(c.Points, q, exact)
		for i := range gd {
			if math.Abs(gd[i]-wd[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestKDTreeRadius(t *testing.T) {
	pts := fig10Points()
	tree := NewKDTree(pts)
	got := tree.Radius(pts[2], math.Sqrt(11), 0)
	sort.Ints(got)
	want := []int{0, 1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("radius = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("radius = %v, want %v", got, want)
		}
	}
	// maxCount truncates.
	if got := tree.Radius(pts[2], math.Sqrt(11), 2); len(got) != 2 {
		t.Fatalf("maxCount ignored: %v", got)
	}
}

func TestKDTreeEmpty(t *testing.T) {
	tree := NewKDTree(nil)
	if got := tree.KNN(geom.Point3{}, 3); got != nil {
		t.Fatalf("empty tree KNN = %v", got)
	}
	if got := tree.Radius(geom.Point3{}, 1, 0); got != nil {
		t.Fatalf("empty tree Radius = %v", got)
	}
}

func TestGridSearchBallSemantics(t *testing.T) {
	pts := fig10Points()
	out, err := GridSearch{R: math.Sqrt(11)}.Search(pts, []geom.Point3{pts[2]}, 4)
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(out)
	want := []int{0, 1, 2, 4}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("grid ball = %v, want %v", out, want)
		}
	}
}

func TestGridSearchFarQueryFallsBack(t *testing.T) {
	pts := []geom.Point3{{X: 0}, {X: 1}}
	out, err := GridSearch{R: 0.1}.Search(pts, []geom.Point3{{X: 500}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 {
		t.Fatalf("far query fallback = %v, want nearest (1)", out)
	}
}

func TestDuplicatePointsHandled(t *testing.T) {
	pts := []geom.Point3{{X: 1}, {X: 1}, {X: 1}, {X: 2}}
	for _, s := range []Searcher{BruteKNN{}, KDTreeKNN{}, GridSearch{}} {
		out, err := s.Search(pts, []geom.Point3{{X: 1}}, 3)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		for _, n := range out {
			if pts[n].X != 1 {
				t.Fatalf("%s picked the far point among duplicates: %v", s.Name(), out)
			}
		}
	}
}

func TestKNNExcludingSelf(t *testing.T) {
	pts := fig10Points()
	out, err := KNNExcludingSelf(pts, []int{2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// P2's nearest others: P4 (9), then P0/P1 (both 10).
	if out[0] != 4 {
		t.Fatalf("nearest other = %d, want 4", out[0])
	}
	for _, n := range out {
		if n == 2 {
			t.Fatalf("self returned: %v", out)
		}
	}
	if _, err := KNNExcludingSelf(pts, []int{9}, 2); err == nil {
		t.Fatal("out-of-range query index: want error")
	}
	if _, err := KNNExcludingSelf(nil, []int{0}, 2); err == nil {
		t.Fatal("empty points: want error")
	}
}

func TestKNNExcludingSelfWithDuplicates(t *testing.T) {
	// Self among many zero-distance duplicates must still be excluded and
	// the row padded validly.
	pts := []geom.Point3{{X: 1}, {X: 1}, {X: 1}, {X: 1}, {X: 2}}
	out, err := KNNExcludingSelf(pts, []int{0, 1, 2, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for qi, self := range []int{0, 1, 2, 3} {
		for _, n := range out[qi*2 : (qi+1)*2] {
			if n == self {
				t.Fatalf("query %d returned itself", self)
			}
			if n < 0 || n >= len(pts) {
				t.Fatalf("query %d returned invalid %d", self, n)
			}
		}
	}
}

func TestFalseNeighborRatio(t *testing.T) {
	exact := []int{1, 2, 3, 4, 5, 6}
	approx := []int{1, 2, 9, 4, 8, 7} // 1 wrong of 3, then 2 wrong of 3
	fnr, err := FalseNeighborRatio(approx, exact, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fnr-0.5) > 1e-12 {
		t.Fatalf("FNR = %v, want 0.5", fnr)
	}
	if fnr, _ := FalseNeighborRatio(exact, exact, 3); fnr != 0 {
		t.Fatalf("self FNR = %v, want 0", fnr)
	}
}

func TestFalseNeighborRatioErrors(t *testing.T) {
	if _, err := FalseNeighborRatio([]int{1}, []int{1, 2}, 1); err == nil {
		t.Fatal("length mismatch: want error")
	}
	if _, err := FalseNeighborRatio([]int{1, 2}, []int{1, 2}, 0); err == nil {
		t.Fatal("k=0: want error")
	}
	if _, err := FalseNeighborRatio([]int{1, 2, 3}, []int{1, 2, 3}, 2); err == nil {
		t.Fatal("non-divisible length: want error")
	}
}

func TestRecallAtK(t *testing.T) {
	exact := []int{1, 2, 3}
	approx := []int{1, 2, 9}
	r, err := RecallAtK(approx, exact, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-2.0/3) > 1e-12 {
		t.Fatalf("recall = %v, want 2/3", r)
	}
}
