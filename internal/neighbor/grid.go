package neighbor

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/parallel"
)

// GridSearch is a uniform-grid ("cell list") searcher in the style of
// cuNSearch/FRNN (the paper's §3.2 "grid-based solution strategies"): points
// are hashed into cubic cells of side CellSize; a k-NN query inspects the
// query's cell ring by ring, stopping once the k-th best distance is closed
// out; a radius query inspects the ⌈R/cell⌉ ring. Exact results, much better
// average complexity than brute force, but with data-dependent control flow —
// the property that motivates the paper's fixed-window approximation.
type GridSearch struct {
	// CellSize is the cell edge. If 0, a heuristic (targeting ~2 points per
	// cell) is used per Search call.
	CellSize float64
	// R, when positive, makes Search behave as a fixed-radius query (ball
	// query semantics); otherwise Search is exact k-NN.
	R float64
}

// Name implements Searcher.
func (g GridSearch) Name() string {
	if g.R > 0 {
		return "ball-grid"
	}
	return "knn-grid"
}

type grid struct {
	min   geom.Point3
	cell  float64
	dims  [3]int
	cells map[int64][]int32
}

func buildGrid(points []geom.Point3, cellSize float64) *grid {
	b := geom.EmptyAABB()
	for _, p := range points {
		b.Extend(p)
	}
	if cellSize <= 0 {
		// Target roughly 2 points per occupied cell for a surface-like cloud.
		d := b.MaxDim()
		if d <= 0 {
			d = 1
		}
		cellsPerAxis := math.Cbrt(float64(len(points)) / 2)
		if cellsPerAxis < 1 {
			cellsPerAxis = 1
		}
		cellSize = d / cellsPerAxis
	}
	g := &grid{min: b.Min, cell: cellSize, cells: make(map[int64][]int32)}
	size := b.Size()
	g.dims[0] = int(size.X/cellSize) + 1
	g.dims[1] = int(size.Y/cellSize) + 1
	g.dims[2] = int(size.Z/cellSize) + 1
	for i, p := range points {
		key := g.key(g.coords(p))
		g.cells[key] = append(g.cells[key], int32(i))
	}
	return g
}

func (g *grid) coords(p geom.Point3) [3]int {
	c := [3]int{
		int((p.X - g.min.X) / g.cell),
		int((p.Y - g.min.Y) / g.cell),
		int((p.Z - g.min.Z) / g.cell),
	}
	for a := 0; a < 3; a++ {
		if c[a] < 0 {
			c[a] = 0
		}
		if c[a] >= g.dims[a] {
			c[a] = g.dims[a] - 1
		}
	}
	return c
}

func (g *grid) key(c [3]int) int64 {
	return int64(c[0]) + int64(g.dims[0])*(int64(c[1])+int64(g.dims[1])*int64(c[2]))
}

// ring visits all points in cells at Chebyshev distance exactly `ring` from
// center, calling visit for each point index.
func (g *grid) ring(center [3]int, ring int, visit func(i int32)) {
	lo := [3]int{center[0] - ring, center[1] - ring, center[2] - ring}
	hi := [3]int{center[0] + ring, center[1] + ring, center[2] + ring}
	for x := lo[0]; x <= hi[0]; x++ {
		if x < 0 || x >= g.dims[0] {
			continue
		}
		for y := lo[1]; y <= hi[1]; y++ {
			if y < 0 || y >= g.dims[1] {
				continue
			}
			for z := lo[2]; z <= hi[2]; z++ {
				if z < 0 || z >= g.dims[2] {
					continue
				}
				// Only the shell, not the interior.
				if ring > 0 && x != lo[0] && x != hi[0] && y != lo[1] && y != hi[1] && z != lo[2] && z != hi[2] {
					continue
				}
				for _, i := range g.cells[g.key([3]int{x, y, z})] {
					visit(i)
				}
			}
		}
	}
}

func (g *grid) maxRing() int {
	m := g.dims[0]
	if g.dims[1] > m {
		m = g.dims[1]
	}
	if g.dims[2] > m {
		m = g.dims[2]
	}
	return m
}

// Search implements Searcher.
func (g GridSearch) Search(points, queries []geom.Point3, k int) ([]int, error) {
	if err := checkSearch(points, k); err != nil {
		return nil, err
	}
	cell := g.CellSize
	if g.R > 0 && cell <= 0 {
		cell = g.R
	}
	gr := buildGrid(points, cell)
	out := make([]int, len(queries)*k)
	kk := k
	if kk > len(points) {
		kk = len(points)
	}
	parallel.ForChunks(len(queries), func(lo, hi int) {
		idx := make([]int, kk)
		d := make([]float64, kk)
		found := make([]int, 0, k)
		for q := lo; q < hi; q++ {
			if g.R > 0 {
				found = found[:0]
				g.radiusQuery(gr, points, queries[q], k, &found)
				writePadded(out[q*k:(q+1)*k], found)
			} else {
				gridKNN(gr, points, queries[q], idx, d)
				writePadded(out[q*k:(q+1)*k], idx)
			}
		}
	})
	return out, nil
}

func (g GridSearch) radiusQuery(gr *grid, points []geom.Point3, p geom.Point3, k int, found *[]int) {
	r2 := g.R * g.R
	rings := int(g.R/gr.cell) + 1
	center := gr.coords(p)
	nearest, nearestD := 0, inf
	for ring := 0; ring <= rings; ring++ {
		gr.ring(center, ring, func(i int32) {
			if len(*found) >= k {
				return
			}
			dist := p.DistSq(points[i])
			if dist < nearestD {
				nearest, nearestD = int(i), dist
			}
			if dist <= r2 {
				*found = append(*found, int(i))
			}
		})
		if len(*found) >= k {
			return
		}
	}
	if len(*found) == 0 {
		// Fall back to the nearest point seen; if the rings were all empty,
		// widen until something is found (the cloud is non-empty).
		//edgepc:lint-ignore floateq nearestD is exactly +Inf until the first candidate is seen; only finite distances are ever assigned
		if nearestD == inf {
			for ring := rings + 1; ring <= gr.maxRing(); ring++ {
				gr.ring(center, ring, func(i int32) {
					dist := p.DistSq(points[i])
					if dist < nearestD {
						nearest, nearestD = int(i), dist
					}
				})
				if nearestD < inf {
					break
				}
			}
		}
		*found = append(*found, nearest)
	}
}

// gridKNN performs exact k-NN via expanding rings: it keeps visiting rings
// until the k-th best squared distance is smaller than the closest possible
// point in the next unvisited ring.
func gridKNN(gr *grid, points []geom.Point3, p geom.Point3, idx []int, d []float64) {
	k := len(idx)
	for i := range d {
		d[i] = inf
		idx[i] = -1
	}
	center := gr.coords(p)
	maxRing := gr.maxRing()
	for ring := 0; ring <= maxRing; ring++ {
		if ring > 0 {
			// Closest possible squared distance to any point in this ring.
			minDist := float64(ring-1) * gr.cell
			if minDist*minDist > d[k-1] {
				break
			}
		}
		gr.ring(center, ring, func(i int32) {
			dist := p.DistSq(points[i])
			if dist >= d[k-1] {
				return
			}
			j := k - 1
			for j > 0 && d[j-1] > dist {
				d[j] = d[j-1]
				idx[j] = idx[j-1]
				j--
			}
			d[j] = dist
			idx[j] = int(i)
		})
	}
	// Guard: if any slot is unfilled (k > points in grid), compact.
	for i := range idx {
		if idx[i] < 0 {
			panic(fmt.Sprintf("neighbor: grid kNN underfilled: %d points, k=%d", len(points), k))
		}
	}
}
