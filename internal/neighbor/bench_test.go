package neighbor

import (
	"testing"

	"repro/internal/geom"
)

func benchCloud(n int) []geom.Point3 {
	return geom.GenerateShape(geom.ShapeBlob, geom.ShapeOptions{N: n, DensitySkew: 0.5, Seed: 9}).Points
}

func benchSearcher(b *testing.B, s Searcher, n, k int) {
	pts := benchCloud(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Search(pts, pts, k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBruteKNN2048(b *testing.B)  { benchSearcher(b, BruteKNN{}, 2048, 8) }
func BenchmarkKDTreeKNN2048(b *testing.B) { benchSearcher(b, KDTreeKNN{}, 2048, 8) }
func BenchmarkGridKNN2048(b *testing.B)   { benchSearcher(b, GridSearch{}, 2048, 8) }
func BenchmarkBallQuery2048(b *testing.B) { benchSearcher(b, BallQuery{R: 0.2}, 2048, 8) }
func BenchmarkGridBall2048(b *testing.B)  { benchSearcher(b, GridSearch{R: 0.2}, 2048, 8) }

func BenchmarkKDTreeBuild8192(b *testing.B) {
	pts := benchCloud(8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewKDTree(pts)
	}
}
