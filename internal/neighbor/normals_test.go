package neighbor

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestEstimateNormalsPlane(t *testing.T) {
	// A z=0 plane: every normal must be ±z.
	c := geom.GenerateShape(geom.ShapePlane, geom.ShapeOptions{N: 300, Seed: 1})
	normals, err := EstimateNormals(c.Points, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range normals {
		if math.Abs(math.Abs(n.Z)-1) > 1e-6 {
			t.Fatalf("point %d: plane normal %v not ±z", i, n)
		}
		if math.Abs(n.Norm()-1) > 1e-9 {
			t.Fatalf("point %d: normal not unit: %v", i, n.Norm())
		}
	}
}

func TestEstimateNormalsSphereRadial(t *testing.T) {
	c := geom.GenerateShape(geom.ShapeSphere, geom.ShapeOptions{N: 2000, Seed: 2})
	normals, err := EstimateNormals(c.Points, 10)
	if err != nil {
		t.Fatal(err)
	}
	var sumAbsCos float64
	outward := 0
	for i, n := range normals {
		radial := c.Points[i] // unit sphere: the point IS the outward normal
		cos := n.Dot(radial)
		sumAbsCos += math.Abs(cos)
		if cos > 0 {
			outward++
		}
	}
	meanAbs := sumAbsCos / float64(len(normals))
	if meanAbs < 0.97 {
		t.Fatalf("mean |cos(normal, radial)| = %.4f, want ≥ 0.97", meanAbs)
	}
	// Centroid-based orientation must make the sphere consistently outward.
	if frac := float64(outward) / float64(len(normals)); frac < 0.99 {
		t.Fatalf("only %.1f%% of sphere normals point outward", 100*frac)
	}
}

func TestEstimateNormalsErrors(t *testing.T) {
	pts := []geom.Point3{{X: 1}, {X: 2}, {X: 3}, {X: 4}}
	if _, err := EstimateNormals(pts, 2); err == nil {
		t.Fatal("k<3: want error")
	}
	if _, err := EstimateNormals(nil, 4); err == nil {
		t.Fatal("empty points: want error")
	}
	if _, err := NormalsFromNeighbors(pts, []int{0, 1}, 3); err == nil {
		t.Fatal("shape mismatch: want error")
	}
}

func TestCovarianceEigenKnownMatrix(t *testing.T) {
	// Points spread along x and y only: smallest-variance direction is z.
	pts := []geom.Point3{
		{X: -1, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: -2}, {X: 0, Y: 2},
		{X: 1, Y: 1}, {X: -1, Y: -1},
	}
	n := geom.Covariance3(pts).EigenSmallest()
	if math.Abs(math.Abs(n.Z)-1) > 1e-9 {
		t.Fatalf("smallest eigenvector %v, want ±z", n)
	}
	// Degenerate (zero) covariance → deterministic fallback.
	zero := geom.Symmetric3{}
	if v := zero.EigenSmallest(); math.Abs(v.Norm()-1) > 1e-12 {
		t.Fatalf("degenerate eigenvector %v not unit", v)
	}
}
