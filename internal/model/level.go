package model

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// level is the per-resolution state flowing through a hierarchical
// point-cloud network: the points at this resolution, their feature matrix,
// and whether the point order is Morton-sorted (index-based operations are
// only valid on sorted levels).
//
// A key property the EdgePC design exploits: uniform-stride sampling of a
// Morton-sorted level yields positions in ascending order, so the *sampled
// subset is itself Morton-sorted* — deeper modules may keep using index-based
// operations without re-sorting.
type level struct {
	pts          []geom.Point3
	feats        *tensor.Matrix // len(pts) × C
	mortonSorted bool
	// posInParent holds, for each point of this level, its index in the
	// parent level's order (ascending when both levels are Morton-sorted).
	// nil for the input level.
	posInParent []int
}

func (l *level) len() int { return len(l.pts) }

// wsGet serves a rows×cols matrix from ws when inference runs in workspace
// mode, falling back to a fresh allocation (ws == nil: training, or a network
// without a workspace attached).
//
//edgepc:hotpath
func wsGet(ws *tensor.Workspace, rows, cols int) *tensor.Matrix {
	if ws != nil {
		return ws.Get(rows, cols)
	}
	//edgepc:lint-ignore hotpathalloc deliberate fallback when no workspace is attached (training mode)
	return tensor.New(rows, cols)
}

// wsPut recycles m if it is on loan from ws; otherwise it is a no-op. Safe to
// call with a nil workspace, a nil matrix, or a matrix the workspace does not
// own (e.g. a caller-provided input).
func wsPut(ws *tensor.Workspace, m *tensor.Matrix) {
	if ws != nil && m != nil && ws.Owns(m) {
		ws.Put(m)
	}
}

// coordMatrix converts points to an N×3 float32 feature matrix.
//
//edgepc:hotpath
func coordMatrix(ws *tensor.Workspace, pts []geom.Point3) *tensor.Matrix {
	m := wsGet(ws, len(pts), 3)
	for i, p := range pts {
		row := m.Row(i)
		row[0] = float32(p.X)
		row[1] = float32(p.Y)
		row[2] = float32(p.Z)
	}
	return m
}

// inputFeatures builds the level-0 feature matrix: coordinates, optionally
// concatenated with the cloud's own per-point features (RGB, intensity, …),
// whose width must match extraDim. The concat dispatches through the frame's
// compute backend (be must be non-nil; Exec.Backend always is).
//
//edgepc:hotpath
func inputFeatures(ws *tensor.Workspace, be tensor.Backend, pts []geom.Point3, feat []float32, featDim, extraDim int) (*tensor.Matrix, error) {
	coords := coordMatrix(ws, pts)
	if extraDim == 0 {
		return coords, nil
	}
	if featDim != extraDim {
		return nil, fmt.Errorf("model: network expects %d extra features per point, cloud has %d", extraDim, featDim)
	}
	extra, err := tensor.FromSlice(len(pts), featDim, feat)
	if err != nil {
		return nil, err
	}
	fused := wsGet(ws, len(pts), coords.Cols+featDim)
	if err := be.ConcatInto(fused, coords, extra); err != nil {
		return nil, err
	}
	wsPut(ws, coords)
	return fused, nil
}

// buildGroupedSA materializes the SetAbstraction grouping: for each query q
// (a sampled point) and neighbor slot j, row q*k+j holds
// [neighbor − center (3) | neighbor features (C)].
// nbr is flat q-major with indexes into the parent level.
//
//edgepc:hotpath
func buildGroupedSA(ws *tensor.Workspace, parentPts []geom.Point3, parentFeats *tensor.Matrix, centers []geom.Point3, nbr []int, k int) (*tensor.Matrix, error) {
	q := len(centers)
	if len(nbr) != q*k {
		return nil, fmt.Errorf("model: %d neighbor entries for %d queries × k=%d", len(nbr), q, k)
	}
	c := parentFeats.Cols
	out := wsGet(ws, q*k, 3+c)
	for i := 0; i < q; i++ {
		ctr := centers[i]
		for j := 0; j < k; j++ {
			n := nbr[i*k+j]
			if n < 0 || n >= len(parentPts) {
				return nil, fmt.Errorf("model: neighbor index %d out of %d points", n, len(parentPts))
			}
			row := out.Row(i*k + j)
			p := parentPts[n]
			row[0] = float32(p.X - ctr.X)
			row[1] = float32(p.Y - ctr.Y)
			row[2] = float32(p.Z - ctr.Z)
			copy(row[3:], parentFeats.Row(n))
		}
	}
	return out, nil
}

// groupedSABackward routes the gradient of the grouped matrix back to the
// parent feature matrix (the relative-coordinate columns carry no trainable
// gradient and are dropped).
func groupedSABackward(grad *tensor.Matrix, nbr []int, parentRows, parentCols int) (*tensor.Matrix, error) {
	if grad.Cols != 3+parentCols {
		return nil, fmt.Errorf("model: grouped grad has %d cols, expected %d", grad.Cols, 3+parentCols)
	}
	d := tensor.New(parentRows, parentCols)
	for r := 0; r < grad.Rows; r++ {
		n := nbr[r]
		src := grad.Row(r)[3:]
		dst := d.Row(n)
		for c, v := range src {
			dst[c] += v
		}
	}
	return d, nil
}

// buildGroupedEdge materializes the DGCNN EdgeConv grouping: row i*k+j holds
// [f_i | f_j − f_i] for neighbor j of point i. nbr indexes the same level.
//
//edgepc:hotpath
func buildGroupedEdge(ws *tensor.Workspace, feats *tensor.Matrix, nbr []int, k int) (*tensor.Matrix, error) {
	n := feats.Rows
	if len(nbr) != n*k {
		return nil, fmt.Errorf("model: %d neighbor entries for %d points × k=%d", len(nbr), n, k)
	}
	c := feats.Cols
	out := wsGet(ws, n*k, 2*c)
	for i := 0; i < n; i++ {
		fi := feats.Row(i)
		for j := 0; j < k; j++ {
			nj := nbr[i*k+j]
			if nj < 0 || nj >= n {
				return nil, fmt.Errorf("model: edge neighbor %d out of %d points", nj, n)
			}
			row := out.Row(i*k + j)
			copy(row[:c], fi)
			fj := feats.Row(nj)
			for t := 0; t < c; t++ {
				row[c+t] = fj[t] - fi[t]
			}
		}
	}
	return out, nil
}

// groupedEdgeBackward routes the gradient of the edge-grouped matrix back to
// the level features: the left half accumulates on i, the right half adds to
// j and subtracts from i.
func groupedEdgeBackward(grad *tensor.Matrix, nbr []int, n, c int) (*tensor.Matrix, error) {
	if grad.Cols != 2*c {
		return nil, fmt.Errorf("model: edge grad has %d cols, expected %d", grad.Cols, 2*c)
	}
	d := tensor.New(n, c)
	k := grad.Rows / n
	for i := 0; i < n; i++ {
		di := d.Row(i)
		for j := 0; j < k; j++ {
			row := grad.Row(i*k + j)
			nj := nbr[i*k+j]
			dj := d.Row(nj)
			for t := 0; t < c; t++ {
				di[t] += row[t] - row[c+t]
				dj[t] += row[c+t]
			}
		}
	}
	return d, nil
}

// featKNN performs exact k-nearest-neighbor search in feature space (rows of
// feats), the SOTA searcher of DGCNN's deeper EdgeConv modules where
// "distance between points are measured using the features" (§5.2.3). The
// query set is all rows; self is included as the first neighbor. O(N²·C).
//
//edgepc:hotpath
func featKNN(feats *tensor.Matrix, k int) []int {
	n := feats.Rows
	if k > n {
		k = n
	}
	//edgepc:lint-ignore hotpathalloc known per-frame O(N·k) index buffer; candidate for future workspace management
	out := make([]int, n*k)
	parallel.ForChunks(n, func(lo, hi int) {
		//edgepc:lint-ignore hotpathalloc per-chunk heap scratch, O(k), a handful per frame
		d := make([]float64, k)
		//edgepc:lint-ignore hotpathalloc per-chunk heap scratch, O(k), a handful per frame
		idx := make([]int, k)
		for i := lo; i < hi; i++ {
			fi := feats.Row(i)
			for t := range d {
				d[t] = 1e300
				idx[t] = -1
			}
			for j := 0; j < n; j++ {
				fj := feats.Row(j)
				var dist float64
				for t, v := range fi {
					dv := float64(v - fj[t])
					dist += dv * dv
				}
				if dist >= d[k-1] {
					continue
				}
				t := k - 1
				for t > 0 && d[t-1] > dist {
					d[t] = d[t-1]
					idx[t] = idx[t-1]
					t--
				}
				d[t] = dist
				idx[t] = j
			}
			copy(out[i*k:(i+1)*k], idx)
		}
	})
	return out
}
