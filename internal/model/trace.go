// Package model implements the two point-cloud CNN architectures the paper
// evaluates — PointNet++ (SetAbstraction + FeaturePropagation modules) and
// DGCNN (EdgeConv modules) — with forward *and* backward passes, and with the
// sample / neighbor-search stage of every module individually switchable
// between the SOTA algorithms (FPS, ball query, k-NN) and the EdgePC
// Morton-code approximations.
//
// Every stage a model executes is recorded in a Trace: which algorithm ran,
// over how many points/queries/neighbors, at which feature widths, and how
// long it took. The edgesim package prices these records with the
// edge-device cost model to regenerate the paper's latency and energy
// figures; the records' wall-clock durations provide a second, directly
// measured signal.
package model

import "time"

// StageKind classifies pipeline stages, following the paper's breakdown
// (Fig. 3 groups Sample+Neighbor vs Feature Compute; Fig. 9 and Fig. 11
// split per layer).
type StageKind int

// Pipeline stage kinds.
const (
	StageSample      StageKind = iota // down-sampling (FPS / Morton uniform)
	StageNeighbor                     // neighbor search (BQ / kNN / Morton window)
	StageGroup                        // feature gathering into (q·k, C) matrices
	StageFeature                      // shared-MLP feature computation
	StageInterp                       // up-sampling interpolation (FP modules)
	StageStructurize                  // Morton encode + sort (EdgePC only)
)

var stageNames = [...]string{"sample", "neighbor", "group", "feature", "interp", "structurize"}

// String names the stage kind.
func (k StageKind) String() string {
	if k < 0 || int(k) >= len(stageNames) {
		return "unknown"
	}
	return stageNames[k]
}

// StageRecord describes one executed stage: the operation shape the
// edge-device cost model needs, plus the measured wall time.
type StageRecord struct {
	Stage StageKind
	Layer int    // module index within the network (0-based)
	Algo  string // algorithm name, e.g. "fps", "morton", "ball-query", "knn-brute", "morton-window"

	N      int  // candidate point count
	Q      int  // query / output point count
	K      int  // neighbors per query
	W      int  // window size (Morton window search) or candidate count (interp)
	CIn    int  // input feature width (feature/group stages)
	COut   int  // output feature width (feature stages)
	Reused bool // true when the stage was skipped via neighbor-index reuse

	Dur time.Duration // measured wall time of this stage
}

// Span is the per-graph-node timing record the Graph executor emits: one
// span per Stage it ran (plus one for structurization), with the half-open
// range of Records the stage produced so a span can be broken down into the
// paper's sample / neighbor / group / feature categories (Fig. 3).
type Span struct {
	Node  string // graph-node name, e.g. "sa0", "fp1", "embed", "head"
	Layer int    // module index within the network (-1 for non-module nodes)
	Dur   time.Duration
	// Rec0/Rec1 delimit the Records ([Rec0, Rec1)) emitted while this node
	// ran.
	Rec0, Rec1 int
}

// Trace accumulates stage records for one inference. A nil *Trace is valid
// and records nothing.
type Trace struct {
	Records []StageRecord
	// Spans holds one entry per executed graph node (see Graph.Forward);
	// empty for code paths that bypass the stage-graph executor.
	Spans []Span
}

// Add appends a record. Safe on a nil receiver.
func (t *Trace) Add(rec StageRecord) {
	if t == nil {
		return
	}
	if t.Records == nil {
		// One up-front block instead of append's doubling chain: a fresh
		// per-frame Trace costs one allocation here, a serving Trace reused
		// across frames none.
		t.Records = make([]StageRecord, 0, 32)
	}
	t.Records = append(t.Records, rec)
}

// AddSpan appends a graph-node span. Safe on a nil receiver.
func (t *Trace) AddSpan(s Span) {
	if t == nil {
		return
	}
	if t.Spans == nil {
		t.Spans = make([]Span, 0, 16)
	}
	t.Spans = append(t.Spans, s)
}

// SpanRecords returns the stage records covered by a span (a view into
// t.Records; do not retain across Reset).
func (t *Trace) SpanRecords(s Span) []StageRecord {
	if t == nil || s.Rec0 < 0 || s.Rec1 > len(t.Records) || s.Rec0 > s.Rec1 {
		return nil
	}
	return t.Records[s.Rec0:s.Rec1]
}

// timed runs f and returns its wall-clock duration.
func timed(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}

// DurByStage sums measured durations per stage kind.
func (t *Trace) DurByStage() map[StageKind]time.Duration {
	out := make(map[StageKind]time.Duration)
	if t == nil {
		return out
	}
	for _, r := range t.Records {
		out[r.Stage] += r.Dur
	}
	return out
}

// Reset clears the trace for reuse across frames.
func (t *Trace) Reset() {
	if t != nil {
		t.Records = t.Records[:0]
		t.Spans = t.Spans[:0]
	}
}
