// Package model implements the two point-cloud CNN architectures the paper
// evaluates — PointNet++ (SetAbstraction + FeaturePropagation modules) and
// DGCNN (EdgeConv modules) — with forward *and* backward passes, and with the
// sample / neighbor-search stage of every module individually switchable
// between the SOTA algorithms (FPS, ball query, k-NN) and the EdgePC
// Morton-code approximations.
//
// Every stage a model executes is recorded in a Trace: which algorithm ran,
// over how many points/queries/neighbors, at which feature widths, and how
// long it took. The edgesim package prices these records with the
// edge-device cost model to regenerate the paper's latency and energy
// figures; the records' wall-clock durations provide a second, directly
// measured signal.
package model

import "time"

// StageKind classifies pipeline stages, following the paper's breakdown
// (Fig. 3 groups Sample+Neighbor vs Feature Compute; Fig. 9 and Fig. 11
// split per layer).
type StageKind int

// Pipeline stage kinds.
const (
	StageSample      StageKind = iota // down-sampling (FPS / Morton uniform)
	StageNeighbor                     // neighbor search (BQ / kNN / Morton window)
	StageGroup                        // feature gathering into (q·k, C) matrices
	StageFeature                      // shared-MLP feature computation
	StageInterp                       // up-sampling interpolation (FP modules)
	StageStructurize                  // Morton encode + sort (EdgePC only)
)

var stageNames = [...]string{"sample", "neighbor", "group", "feature", "interp", "structurize"}

// String names the stage kind.
func (k StageKind) String() string {
	if k < 0 || int(k) >= len(stageNames) {
		return "unknown"
	}
	return stageNames[k]
}

// StageRecord describes one executed stage: the operation shape the
// edge-device cost model needs, plus the measured wall time.
type StageRecord struct {
	Stage StageKind
	Layer int    // module index within the network (0-based)
	Algo  string // algorithm name, e.g. "fps", "morton", "ball-query", "knn-brute", "morton-window"

	N      int  // candidate point count
	Q      int  // query / output point count
	K      int  // neighbors per query
	W      int  // window size (Morton window search) or candidate count (interp)
	CIn    int  // input feature width (feature/group stages)
	COut   int  // output feature width (feature stages)
	Reused bool // true when the stage was skipped via neighbor-index reuse

	Dur time.Duration // measured wall time of this stage
}

// Trace accumulates stage records for one inference. A nil *Trace is valid
// and records nothing.
type Trace struct {
	Records []StageRecord
}

// Add appends a record. Safe on a nil receiver.
func (t *Trace) Add(rec StageRecord) {
	if t == nil {
		return
	}
	t.Records = append(t.Records, rec)
}

// timed runs f and returns its wall-clock duration.
func timed(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}

// DurByStage sums measured durations per stage kind.
func (t *Trace) DurByStage() map[StageKind]time.Duration {
	out := make(map[StageKind]time.Duration)
	if t == nil {
		return out
	}
	for _, r := range t.Records {
		out[r.Stage] += r.Dur
	}
	return out
}

// Reset clears the trace for reuse across frames.
func (t *Trace) Reset() {
	if t != nil {
		t.Records = t.Records[:0]
	}
}
