package model

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/neighbor"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/tensor"
)

// ModuleStrategy selects, for one network module, whether its bottleneck
// stages run the SOTA algorithm or the EdgePC Morton approximation. The
// paper's design point (§5.1.3, §5.2.3) enables Morton only on the critical
// modules: the first SA, the last FP, the first EdgeConv.
type ModuleStrategy struct {
	MortonSample bool // index-stride sampling instead of FPS
	MortonWindow bool // index-window neighbor search instead of BQ/kNN
	WindowW      int  // window size W (0 → W = k, the pure index pick)
	MortonInterp bool // stride-bracket interpolation instead of ThreeNN (FP only)
}

// SAModule is a PointNet++ SetAbstraction module: down-sample, search
// neighbors, group, and run a shared MLP with max pooling over neighbors.
type SAModule struct {
	Frac   float64 // output point fraction of the input level
	K      int     // neighbors per sampled point
	Radius float64 // >0: SOTA searcher is ball query with this radius; 0: kNN
	MLP    *nn.Sequential
	Strat  ModuleStrategy
	// Sampler selects the algorithm for the non-Morton sampling path:
	// exact FPS (default), bucketed pruned FPS, or pure index stride. When
	// the module's Morton strategy applies, it wins over this knob.
	Sampler sample.Arch
	// Quality is the BucketFPS Frac knob (ignored by the other archs).
	Quality float64

	cache saCache
	// centersBuf backs the sampled-center slice across frames; the level
	// handed to the next module aliases it, which is safe because levels live
	// at most one frame (training's cached levels never read pts in backward).
	centersBuf []geom.Point3
	// bucket and selBuf are the BucketFPS sampler state and its output
	// buffer, reused across frames for a zero-allocation steady state.
	bucket sample.BucketFPS
	selBuf []int
}

type saCache struct {
	parentRows, parentCols int
	nbr                    []int
	argmax                 []int32
	k                      int
}

func clampK(k, n int) int {
	if k > n {
		return n
	}
	return k
}

// forward consumes the parent level and fills next with the sampled level.
// Execution context (trace, train flag, workspace, reuse cache) comes from
// the Graph's Exec; train and x.ws != nil are mutually exclusive.
//
//edgepc:hotpath
func (m *SAModule) forward(parent, next *level, layer int, x *Exec) error {
	trace, train, ws := x.trace, x.train, x.ws
	n := parent.len()
	nOut := int(float64(n)*m.Frac + 0.5)
	if nOut < 1 {
		nOut = 1
	}
	if nOut > n {
		nOut = n
	}
	k := clampK(m.K, n)

	// --- Sample stage ---
	var sel []int
	var sampleAlgo string
	useMorton := m.Strat.MortonSample && parent.mortonSorted
	dur, err := timed(func() error {
		if useMorton {
			// The level is already Morton-sorted (the encode+sort cost is
			// the pipeline's one-time StageStructurize record), so sampling
			// is a pure index-stride pick.
			sampleAlgo = "morton-pick"
			sel = core.SamplePositions(n, nOut)
			return nil
		}
		switch m.Sampler {
		case sample.ArchBucketFPS:
			// Bucketed pruned FPS (quality-adjustable): most effective when
			// the level is Morton-sorted, but correct on any order.
			sampleAlgo = "bucketfps"
			m.bucket.Frac = m.Quality
			var e error
			sel, e = m.bucket.SampleInto(parent.pts, nOut, m.selBuf)
			m.selBuf = sel
			return e
		case sample.ArchStride:
			sampleAlgo = "stride"
			sel = core.SamplePositions(n, nOut)
			return nil
		default:
			sampleAlgo = "fps"
			var e error
			sel, e = sample.FPSIndexes(parent.pts, nOut, 0)
			return e
		}
	})
	if err != nil {
		return fmt.Errorf("model: SA%d sample: %w", layer, err)
	}
	trace.Add(StageRecord{Stage: StageSample, Layer: layer, Algo: sampleAlgo, N: n, Q: nOut, Dur: dur})

	if cap(m.centersBuf) < nOut {
		//edgepc:lint-ignore hotpathalloc cap-guarded grow; steady-state frames reuse the buffer
		m.centersBuf = make([]geom.Point3, nOut)
	}
	centers := m.centersBuf[:nOut]
	for i, s := range sel {
		centers[i] = parent.pts[s]
	}

	// --- Neighbor search stage (or cross-layer reuse, §5.2.3 generalized) ---
	var nbr []int
	var nsAlgo string
	w := 0
	reused := false
	dur, err = timed(func() error {
		if !x.reuseOn {
			var e error
			nbr, nsAlgo, w, e = m.searchNeighbors(parent, centers, sel, k, useMorton)
			return e
		}
		// Reuse path: cached indexes live in the previous SA's parent level
		// (domain layer−1); project them into this parent level when the
		// sampling map supports it, otherwise fall back to a real search.
		var adapt func(core.ReuseEntry) ([]int, error)
		if parent.posInParent != nil && isAscending(parent.posInParent) {
			adapt = func(prev core.ReuseEntry) ([]int, error) {
				return core.ProjectNeighbors(prev, sel, parent.posInParent, k)
			}
		}
		var computed bool
		var e error
		nbr, computed, e = x.reuse.ForLayerIn(layer, k, layer, adapt, func() ([]int, error) {
			res, algo, ww, e2 := m.searchNeighbors(parent, centers, sel, k, useMorton)
			nsAlgo, w = algo, ww
			return res, e2
		})
		if e == nil && !computed {
			nsAlgo, reused = "reuse", true
		}
		return e
	})
	if err != nil {
		return fmt.Errorf("model: SA%d neighbor: %w", layer, err)
	}
	trace.Add(StageRecord{Stage: StageNeighbor, Layer: layer, Algo: nsAlgo, N: n, Q: nOut, K: k, W: w, Reused: reused, Dur: dur})

	// --- Group stage ---
	var grouped *tensor.Matrix
	dur, err = timed(func() error {
		var e error
		grouped, e = buildGroupedSA(ws, parent.pts, parent.feats, centers, nbr, k)
		return e
	})
	if err != nil {
		return fmt.Errorf("model: SA%d group: %w", layer, err)
	}
	trace.Add(StageRecord{Stage: StageGroup, Layer: layer, Algo: "gather", N: n, Q: nOut, K: k, CIn: grouped.Cols, Dur: dur})

	// --- Feature compute stage ---
	var feats *tensor.Matrix
	var argmax []int32
	cin := grouped.Cols
	dur, err = timed(func() error {
		y, e := m.MLP.Forward(grouped, train)
		if e != nil {
			return e
		}
		if ws != nil {
			// The grouped matrix is dead once the MLP consumed it (unless the
			// MLP was a pass-through and returned it unchanged), and the MLP
			// output is dead once pooled.
			if y != grouped {
				wsPut(ws, grouped)
			}
			feats = ws.Get(y.Rows/k, y.Cols)
			if e = x.be.MaxPoolGroupsInto(feats, nil, y, k); e != nil {
				return e
			}
			wsPut(ws, y)
			return nil
		}
		//edgepc:lint-ignore hotpathalloc training / no-workspace fallback; backward needs the argmax this variant returns
		feats, argmax, e = tensor.MaxPoolGroups(y, k)
		return e
	})
	if err != nil {
		return fmt.Errorf("model: SA%d feature: %w", layer, err)
	}
	trace.Add(StageRecord{Stage: StageFeature, Layer: layer, Algo: "shared-mlp", Q: nOut * k, CIn: cin, COut: feats.Cols, Dur: dur})

	if train {
		m.cache = saCache{parentRows: n, parentCols: parent.feats.Cols, nbr: nbr, argmax: argmax, k: k}
	}
	next.pts = centers
	//edgepc:lint-ignore workspacepair level fields are frame-scoped; Graph.Forward resets the workspace before reusing them
	next.feats = feats
	next.mortonSorted = parent.mortonSorted && useMorton
	next.posInParent = sel
	return nil
}

// searchNeighbors runs the module's configured neighbor search (Morton
// window when enabled and applicable, else the SOTA ball query / kNN),
// returning the flat index array, the algorithm name, and the effective
// window size.
//
//edgepc:hotpath
func (m *SAModule) searchNeighbors(parent *level, centers []geom.Point3, sel []int, k int, useMorton bool) ([]int, string, int, error) {
	if m.Strat.MortonWindow && parent.mortonSorted && useMorton {
		searcher := core.WindowSearcher{W: m.Strat.WindowW}
		w := m.Strat.WindowW
		if w < k {
			w = k
		}
		nbr, err := searcher.SearchPositions(parent.pts, sel, k)
		return nbr, "morton-window", w, err
	}
	var s neighbor.Searcher
	if m.Radius > 0 {
		s = neighbor.BallQuery{R: m.Radius}
	} else {
		s = neighbor.BruteKNN{}
	}
	nbr, err := s.Search(parent.pts, centers, k)
	return nbr, s.Name(), 0, err
}

// backward routes the gradient of this module's output features back to the
// parent level's features.
func (m *SAModule) backward(grad *tensor.Matrix) (*tensor.Matrix, error) {
	c := &m.cache
	if c.nbr == nil {
		return nil, fmt.Errorf("model: SA backward before forward(train)")
	}
	g, err := tensor.MaxPoolBackward(grad, c.argmax, c.k)
	if err != nil {
		return nil, err
	}
	g, err = m.MLP.Backward(g)
	if err != nil {
		return nil, err
	}
	return groupedSABackward(g, c.nbr, c.parentRows, c.parentCols)
}

// FPModule is a PointNet++ FeaturePropagation module: interpolate coarse
// features onto the finer level, concatenate the fine level's skip features,
// and run a shared MLP.
type FPModule struct {
	MLP   *nn.Sequential
	Strat ModuleStrategy

	cache fpCache
}

type fpCache struct {
	plan       *sample.InterpPlan
	coarseRows int
	interpCols int
	skipCols   int
}

// forward interpolates coarseFeats (features at the coarse level) onto the
// fine level and fuses them with the fine level's own features. Execution
// context (trace, train flag, workspace, compute backend) comes from the
// Graph's Exec, the same contract as SAModule.forward.
//
//edgepc:hotpath
func (m *FPModule) forward(fine, coarse *level, coarseFeats *tensor.Matrix, layer int, x *Exec) (*tensor.Matrix, error) {
	trace, train, ws := x.trace, x.train, x.ws
	// --- Interpolation planning (the up-sampling stage of Fig. 9) ---
	var plan *sample.InterpPlan
	var algo string
	useMorton := m.Strat.MortonInterp && fine.mortonSorted && coarse.posInParent != nil && isAscending(coarse.posInParent)
	dur, err := timed(func() error {
		var e error
		if useMorton {
			algo = "morton-interp"
			plan, e = core.MortonInterp{}.PlanStructurized(fine.pts, coarse.posInParent)
		} else {
			algo = "three-nn"
			plan, e = sample.ThreeNN{}.Plan(fine.pts, coarse.pts)
		}
		return e
	})
	if err != nil {
		return nil, fmt.Errorf("model: FP%d interp plan: %w", layer, err)
	}
	trace.Add(StageRecord{Stage: StageInterp, Layer: layer, Algo: algo, N: fine.len(), Q: coarse.len(), K: plan.K, Dur: dur})

	// --- Apply + concat + MLP (feature compute) ---
	var out *tensor.Matrix
	var interpCols, cin int
	dur, err = timed(func() error {
		var dst []float32
		var interp *tensor.Matrix
		if ws != nil {
			// ApplyPlan writes into the workspace buffer in place (its cap is
			// at least fine.len()·Cols by construction).
			interp = ws.Get(fine.len(), coarseFeats.Cols)
			dst = interp.Data
		}
		interpData, e := sample.ApplyPlan(plan, coarseFeats.Data, coarseFeats.Cols, dst)
		if e != nil {
			return e
		}
		if interp == nil {
			interp, e = tensor.FromSlice(fine.len(), coarseFeats.Cols, interpData)
			if e != nil {
				return e
			}
		}
		interpCols = interp.Cols
		fused := wsGet(ws, fine.len(), interp.Cols+fine.feats.Cols)
		if e = x.be.ConcatInto(fused, interp, fine.feats); e != nil {
			return e
		}
		wsPut(ws, interp)
		cin = fused.Cols
		out, e = m.MLP.Forward(fused, train)
		if e == nil && ws != nil && out != fused {
			wsPut(ws, fused)
		}
		return e
	})
	if err != nil {
		return nil, fmt.Errorf("model: FP%d feature: %w", layer, err)
	}
	trace.Add(StageRecord{Stage: StageFeature, Layer: layer, Algo: "shared-mlp", Q: fine.len(), CIn: cin, COut: out.Cols, Dur: dur})

	if train {
		m.cache = fpCache{plan: plan, coarseRows: coarse.len(), interpCols: interpCols, skipCols: fine.feats.Cols}
	}
	return out, nil
}

// backward returns (gradSkip, gradCoarseFeats).
func (m *FPModule) backward(grad *tensor.Matrix) (*tensor.Matrix, *tensor.Matrix, error) {
	c := &m.cache
	if c.plan == nil {
		return nil, nil, fmt.Errorf("model: FP backward before forward(train)")
	}
	g, err := m.MLP.Backward(grad)
	if err != nil {
		return nil, nil, err
	}
	gInterp, gSkip, err := tensor.SplitCols(g, c.interpCols)
	if err != nil {
		return nil, nil, err
	}
	// Adjoint of ApplyPlan: dCoarse[src] += w · dInterp[target].
	gCoarse := tensor.New(c.coarseRows, c.interpCols)
	k := c.plan.K
	for t := 0; t < gInterp.Rows; t++ {
		row := gInterp.Row(t)
		for j := 0; j < k; j++ {
			s := c.plan.Indexes[t*k+j]
			w := float32(c.plan.Weights[t*k+j])
			dst := gCoarse.Row(s)
			for col, v := range row {
				dst[col] += w * v
			}
		}
	}
	return gSkip, gCoarse, nil
}

func isAscending(a []int) bool {
	for i := 1; i < len(a); i++ {
		if a[i-1] >= a[i] {
			return false
		}
	}
	return true
}

// PointNetPP is the PointNet++ semantic-segmentation network of Fig. 2a:
// Depth SetAbstraction modules followed by Depth FeaturePropagation modules
// and a per-point classification head, compiled into a stage Graph (see
// graph.go) that owns the shared executor machinery.
//
// Concurrency: see Graph — eval-mode weight-sharing replicas may run
// concurrently, one per goroutine; training must own the weights.
type PointNetPP struct {
	SA   []*SAModule
	FP   []*FPModule // FP[i] refines level Depth−i → Depth−1−i
	Head *nn.Sequential

	// Structurize, when non-nil, Morton-orders the input cloud before the
	// first module (the EdgePC configurations).
	Structurize *core.StructurizeOptions

	graph *Graph
}

// Output bundles the per-point logits with the label order they correspond
// to (structurization permutes the points; labels are carried along).
type Output struct {
	Logits *tensor.Matrix
	Labels []int32
	// Perm maps logits row → original cloud index (nil when no
	// structurization happened).
	Perm []int
}

// PPConfig describes a PointNet++ instance.
type PPConfig struct {
	Classes    int
	Depth      int     // number of SA (= FP) modules; default 4
	BaseWidth  int     // width of the first SA module; doubles per level; default 16
	K          int     // neighbors per query; default 8
	SampleFrac float64 // per-module down-sampling ratio; default 0.25
	Radius     float64 // base ball-query radius (doubles per level); 0 → kNN baseline
	// SampleArch selects the sampler for SA modules whose Morton strategy
	// does not apply: exact FPS (default), bucketed pruned FPS, or stride.
	SampleArch sample.Arch
	// SampleQuality is the BucketFPS quality knob in [0,1]; 0 defaults to 1
	// (exact picks, pruning as pure speedup).
	SampleQuality float64
	// ExtraFeatDim is the width of per-point input features beyond the
	// coordinates (e.g. 3 for RGB in S3DIS); input clouds must carry
	// exactly this FeatDim.
	ExtraFeatDim int
	// SAStrategies[i] configures SA module i; FPStrategies[i] configures FP
	// module i in execution order (i = Depth−1 is the last FP, the one
	// producing full resolution — the paper's optimized layer).
	SAStrategies []ModuleStrategy
	FPStrategies []ModuleStrategy
	Structurize  *core.StructurizeOptions
	// Reuse carries neighbor indexes across consecutive SA modules (§5.2.3
	// generalized to PointNet++): a reused layer skips its own search and
	// projects the previous module's indexes through the sampling map. The
	// zero policy (distance 0) recomputes every layer.
	Reuse core.ReusePolicy
	// Dropout is the head dropout probability; 0 selects the default (0.3),
	// a negative value disables dropout (useful for gradient checking).
	Dropout float64
	// Backend is the compute backend eval frames dispatch their kernels
	// through (nil → the reference float32 kernels); see tensor.Backend.
	Backend tensor.Backend
	Seed    int64
}

func (c *PPConfig) defaults() {
	if c.Depth == 0 {
		c.Depth = 4
	}
	if c.BaseWidth == 0 {
		c.BaseWidth = 16
	}
	if c.K == 0 {
		c.K = 8
	}
	if c.SampleFrac == 0 {
		c.SampleFrac = 0.25
	}
	if c.SampleQuality == 0 {
		c.SampleQuality = 1
	}
	if c.SAStrategies == nil {
		c.SAStrategies = make([]ModuleStrategy, c.Depth)
	}
	if c.FPStrategies == nil {
		c.FPStrategies = make([]ModuleStrategy, c.Depth)
	}
}

func (c *PPConfig) validate() error {
	if c.Classes < 2 {
		return fmt.Errorf("model: need ≥2 classes, got %d", c.Classes)
	}
	if len(c.SAStrategies) != c.Depth || len(c.FPStrategies) != c.Depth {
		return fmt.Errorf("model: strategies must match depth %d", c.Depth)
	}
	if c.SampleFrac <= 0 || c.SampleFrac > 1 {
		return fmt.Errorf("model: sample fraction %v out of (0, 1]", c.SampleFrac)
	}
	if c.SampleQuality < 0 || c.SampleQuality > 1 {
		return fmt.Errorf("model: sample quality %v out of [0, 1]", c.SampleQuality)
	}
	return nil
}

// saWidth returns the SA output width at level L (1-based).
func saWidth(base, l int) int { return base << (l - 1) }

// dropoutP maps the config convention (0 → default, negative → disabled) to
// a probability.
func dropoutP(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v == 0:
		return 0.3
	default:
		return v
	}
}

// NewPointNetPP constructs the network.
func NewPointNetPP(cfg PPConfig) (*PointNetPP, error) {
	cfg.defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	net := &PointNetPP{Structurize: cfg.Structurize}
	inC := 3 + cfg.ExtraFeatDim // level-0 features: coordinates ⊕ extras
	for l := 1; l <= cfg.Depth; l++ {
		w := saWidth(cfg.BaseWidth, l)
		radius := 0.0
		if cfg.Radius > 0 {
			radius = cfg.Radius * float64(int(1)<<(l-1))
		}
		net.SA = append(net.SA, &SAModule{
			Frac:    cfg.SampleFrac,
			K:       cfg.K,
			Radius:  radius,
			MLP:     nn.NewSharedMLP(fmt.Sprintf("sa%d", l), []int{3 + inC, w, w}, rng),
			Strat:   cfg.SAStrategies[l-1],
			Sampler: cfg.SampleArch,
			Quality: cfg.SampleQuality,
		})
		inC = w
	}
	// FP chain: FP[i] produces level L = Depth−1−i.
	coarseC := saWidth(cfg.BaseWidth, cfg.Depth)
	for i := 0; i < cfg.Depth; i++ {
		l := cfg.Depth - 1 - i
		skipC := 3 + cfg.ExtraFeatDim
		if l >= 1 {
			skipC = saWidth(cfg.BaseWidth, l)
		}
		outC := cfg.BaseWidth
		if l >= 1 {
			outC = saWidth(cfg.BaseWidth, l)
		}
		net.FP = append(net.FP, &FPModule{
			MLP:   nn.NewSharedMLP(fmt.Sprintf("fp%d", i), []int{coarseC + skipC, outC}, rng),
			Strat: cfg.FPStrategies[i],
		})
		coarseC = outC
	}
	net.Head = nn.NewSequential(
		nn.NewLinear("head.0", coarseC, cfg.BaseWidth, rng),
		nn.NewBatchNorm("head.0.bn", cfg.BaseWidth),
		&nn.ReLU{},
		&nn.Dropout{P: dropoutP(cfg.Dropout), Rng: rand.New(rand.NewSource(cfg.Seed + 2))},
		nn.NewLinear("head.1", cfg.BaseWidth, cfg.Classes, rng),
	)
	// Declarative stage list: SA chain, FP chain, head — compiled into the
	// shared Graph executor.
	stages := make([]Stage, 0, 2*cfg.Depth+1)
	for i, m := range net.SA {
		stages = append(stages, &saStage{name: fmt.Sprintf("sa%d", i), idx: i, m: m})
	}
	for i, m := range net.FP {
		stages = append(stages, &fpStage{name: fmt.Sprintf("fp%d", i), idx: i, depth: cfg.Depth, m: m})
	}
	stages = append(stages, &mlpStage{name: "head", mlp: net.Head})
	g, err := Compile(GraphSpec{
		Stages:       stages,
		Structurize:  cfg.Structurize,
		ExtraFeatDim: cfg.ExtraFeatDim,
		Reuse:        cfg.Reuse,
		Backend:      cfg.Backend,
	})
	if err != nil {
		return nil, err
	}
	net.graph = g
	return net, nil
}

// Params returns all trainable parameters.
func (n *PointNetPP) Params() []*nn.Param { return n.graph.Params() }

// Forward runs inference (or the training forward pass) on one cloud and
// returns per-point logits aligned with Output.Labels; see Graph.Forward for
// the workspace contract.
func (n *PointNetPP) Forward(cloud *geom.Cloud, trace *Trace, train bool) (*Output, error) {
	return n.graph.Forward(cloud, trace, train)
}

// Backward propagates the loss gradient (w.r.t. Forward's logits) through the
// whole network, accumulating parameter gradients.
func (n *PointNetPP) Backward(gradLogits *tensor.Matrix) error {
	return n.graph.Backward(gradLogits)
}
