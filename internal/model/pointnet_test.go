package model

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestPointNetVanillaForward(t *testing.T) {
	net, err := NewPointNetVanilla(PointNetConfig{Classes: 4, BaseWidth: 4, Dropout: -1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cloud := testCloud(30, 1)
	trace := &Trace{}
	out, err := net.Forward(cloud, trace, false)
	if err != nil {
		t.Fatal(err)
	}
	if out.Logits.Rows != 1 || out.Logits.Cols != 4 {
		t.Fatalf("logits %dx%d", out.Logits.Rows, out.Logits.Cols)
	}
	// The control property: no sample, neighbor or interp stages at all.
	for _, r := range trace.Records {
		if r.Stage != StageFeature {
			t.Fatalf("vanilla PointNet emitted a %v stage", r.Stage)
		}
	}
}

func TestPointNetVanillaGradientCheck(t *testing.T) {
	net, err := NewPointNetVanilla(PointNetConfig{Classes: 3, BaseWidth: 3, Dropout: -1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	cloud := testCloud(16, 2)
	cos := gradCosine(t, net, cloud, func(o *Output) []int32 { return []int32{1} })
	if cos < 0.90 {
		t.Fatalf("gradient cosine %v < 0.90", cos)
	}
}

func TestPointNetVanillaTrainsOnToyTask(t *testing.T) {
	net, err := NewPointNetVanilla(PointNetConfig{Classes: 2, BaseWidth: 6, Dropout: -1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	params := net.Params()
	opt := nn.NewAdam(2e-3)
	// Two-class toy task: small vs large sphere.
	var losses []float64
	for it := 0; it < 30; it++ {
		var totalLoss float64
		nn.ZeroGrads(params)
		for label := int32(0); label < 2; label++ {
			cloud := testCloud(24, int64(10+it*2)+int64(label))
			if label == 1 {
				cloud.Scale(3, 3, 3)
			}
			out, err := net.Forward(cloud, nil, true)
			if err != nil {
				t.Fatal(err)
			}
			loss, grad, err := nn.CrossEntropy(out.Logits, []int32{label})
			if err != nil {
				t.Fatal(err)
			}
			if err := net.Backward(grad); err != nil {
				t.Fatal(err)
			}
			totalLoss += loss
		}
		opt.Step(params)
		losses = append(losses, totalLoss)
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("vanilla PointNet did not learn: %v → %v", losses[0], losses[len(losses)-1])
	}
}

func TestPointNetVanillaErrors(t *testing.T) {
	if _, err := NewPointNetVanilla(PointNetConfig{Classes: 1}); err == nil {
		t.Fatal("1 class: want error")
	}
	net, err := NewPointNetVanilla(PointNetConfig{Classes: 2, BaseWidth: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Forward(geom.NewCloud(0, 0), nil, false); err == nil {
		t.Fatal("empty cloud: want error")
	}
	if err := net.Backward(tensor.New(1, 2)); err == nil {
		t.Fatal("backward before forward: want error")
	}
}
