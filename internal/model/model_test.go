package model

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func testCloud(n int, seed int64) *geom.Cloud {
	c := geom.GenerateShape(geom.ShapeBlob, geom.ShapeOptions{N: n, DensitySkew: 0.5, Seed: seed})
	c.Labels = make([]int32, n)
	for i := range c.Labels {
		if c.Points[i].Z > 0 {
			c.Labels[i] = 1
		}
	}
	return c
}

func tinyPPConfig(morton bool) PPConfig {
	cfg := PPConfig{
		Classes:    3,
		Depth:      2,
		BaseWidth:  4,
		K:          4,
		SampleFrac: 0.5,
		Dropout:    -1,
		Seed:       1,
	}
	if morton {
		cfg.SAStrategies = []ModuleStrategy{{MortonSample: true, MortonWindow: true, WindowW: 8}, {}}
		cfg.FPStrategies = []ModuleStrategy{{}, {MortonInterp: true}}
		cfg.Structurize = &core.StructurizeOptions{}
	}
	return cfg
}

func TestPointNetPPForwardShapes(t *testing.T) {
	for _, morton := range []bool{false, true} {
		net, err := NewPointNetPP(tinyPPConfig(morton))
		if err != nil {
			t.Fatal(err)
		}
		cloud := testCloud(64, 2)
		trace := &Trace{}
		out, err := net.Forward(cloud, trace, false)
		if err != nil {
			t.Fatalf("morton=%v: %v", morton, err)
		}
		if out.Logits.Rows != 64 || out.Logits.Cols != 3 {
			t.Fatalf("logits %dx%d", out.Logits.Rows, out.Logits.Cols)
		}
		if len(out.Labels) != 64 {
			t.Fatalf("labels %d", len(out.Labels))
		}
		if morton && out.Perm == nil {
			t.Fatal("morton run must return the permutation")
		}
		if !morton && out.Perm != nil {
			t.Fatal("baseline run must not permute")
		}
		// Trace must contain the expected stages.
		byStage := map[StageKind]int{}
		for _, r := range trace.Records {
			byStage[r.Stage]++
		}
		if byStage[StageSample] != 2 || byStage[StageNeighbor] != 2 || byStage[StageInterp] != 2 {
			t.Fatalf("morton=%v: stage counts %v", morton, byStage)
		}
		if morton && byStage[StageStructurize] != 1 {
			t.Fatalf("missing structurize record: %v", byStage)
		}
	}
}

func TestPointNetPPStrategiesRecorded(t *testing.T) {
	net, err := NewPointNetPP(tinyPPConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	trace := &Trace{}
	if _, err := net.Forward(testCloud(64, 3), trace, false); err != nil {
		t.Fatal(err)
	}
	var sampleAlgos, nsAlgos, interpAlgos []string
	for _, r := range trace.Records {
		switch r.Stage {
		case StageSample:
			sampleAlgos = append(sampleAlgos, r.Algo)
		case StageNeighbor:
			nsAlgos = append(nsAlgos, r.Algo)
		case StageInterp:
			interpAlgos = append(interpAlgos, r.Algo)
		}
	}
	if sampleAlgos[0] != "morton-pick" || sampleAlgos[1] != "fps" {
		t.Fatalf("sample algos = %v", sampleAlgos)
	}
	if nsAlgos[0] != "morton-window" || nsAlgos[1] == "morton-window" {
		t.Fatalf("neighbor algos = %v", nsAlgos)
	}
	// FP execution order: index 0 = deepest (three-nn), index 1 = last
	// (morton-interp, the optimized one).
	if interpAlgos[0] != "three-nn" || interpAlgos[1] != "morton-interp" {
		t.Fatalf("interp algos = %v", interpAlgos)
	}
}

func TestPointNetPPDeterministic(t *testing.T) {
	net, err := NewPointNetPP(tinyPPConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	cloud := testCloud(48, 4)
	a, err := net.Forward(cloud, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Forward(cloud, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Logits.Equal(b.Logits) {
		t.Fatal("inference not deterministic")
	}
}

// gradCosine runs a full-network numeric-vs-analytic gradient comparison and
// returns the cosine similarity over a parameter sample.
func gradCosine(t *testing.T, net interface {
	Forward(*geom.Cloud, *Trace, bool) (*Output, error)
	Backward(*tensor.Matrix) error
	Params() []*nn.Param
}, cloud *geom.Cloud, labels func(*Output) []int32) float64 {
	t.Helper()
	loss := func() float64 {
		out, err := net.Forward(cloud, nil, true)
		if err != nil {
			t.Fatal(err)
		}
		l, _, err := nn.CrossEntropy(out.Logits, labels(out))
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	params := net.Params()
	nn.ZeroGrads(params)
	out, err := net.Forward(cloud, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	_, grad, err := nn.CrossEntropy(out.Logits, labels(out))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Backward(grad); err != nil {
		t.Fatal(err)
	}
	var dot, na, nb float64
	rng := rand.New(rand.NewSource(9))
	for _, p := range params {
		analytic := append([]float32(nil), p.Grad.Data...)
		for i := 0; i < len(p.Value.Data); i++ {
			if rng.Float64() > 0.15 { // sample ~15% of weights
				continue
			}
			orig := p.Value.Data[i]
			const eps = 1e-2
			p.Value.Data[i] = orig + eps
			up := loss()
			p.Value.Data[i] = orig - eps
			down := loss()
			p.Value.Data[i] = orig
			num := (up - down) / (2 * eps)
			a := float64(analytic[i])
			dot += a * num
			na += a * a
			nb += num * num
		}
	}
	if na == 0 || nb == 0 {
		t.Fatal("gradient check degenerate (all-zero gradients)")
	}
	return dot / math.Sqrt(na*nb)
}

func TestPointNetPPGradientCheck(t *testing.T) {
	for _, morton := range []bool{false, true} {
		cfg := tinyPPConfig(morton)
		cfg.BaseWidth = 3
		net, err := NewPointNetPP(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cloud := testCloud(24, 5)
		cos := gradCosine(t, net, cloud, func(o *Output) []int32 { return o.Labels })
		if cos < 0.90 {
			t.Fatalf("morton=%v: gradient cosine %v < 0.90", morton, cos)
		}
	}
}

func tinyDGCNNConfig(morton bool, task Task) DGCNNConfig {
	cfg := DGCNNConfig{
		Classes:   3,
		Modules:   3,
		BaseWidth: 4,
		K:         4,
		Task:      task,
		Dropout:   -1,
		Seed:      2,
	}
	if morton {
		cfg.Strategies = []ModuleStrategy{{MortonWindow: true, WindowW: 8}, {}, {}}
		cfg.Reuse = core.ReusePolicy{Distance: 1}
		cfg.Structurize = &core.StructurizeOptions{}
	}
	return cfg
}

func TestDGCNNForwardShapes(t *testing.T) {
	for _, task := range []Task{TaskClassification, TaskSegmentation} {
		for _, morton := range []bool{false, true} {
			net, err := NewDGCNN(tinyDGCNNConfig(morton, task))
			if err != nil {
				t.Fatal(err)
			}
			cloud := testCloud(40, 6)
			trace := &Trace{}
			out, err := net.Forward(cloud, trace, false)
			if err != nil {
				t.Fatalf("task=%v morton=%v: %v", task, morton, err)
			}
			wantRows := 40
			if task == TaskClassification {
				wantRows = 1
			}
			if out.Logits.Rows != wantRows || out.Logits.Cols != 3 {
				t.Fatalf("logits %dx%d, want %dx3", out.Logits.Rows, out.Logits.Cols, wantRows)
			}
		}
	}
}

func TestDGCNNReuseSkipsSearch(t *testing.T) {
	net, err := NewDGCNN(tinyDGCNNConfig(true, TaskSegmentation))
	if err != nil {
		t.Fatal(err)
	}
	trace := &Trace{}
	if _, err := net.Forward(testCloud(40, 7), trace, false); err != nil {
		t.Fatal(err)
	}
	var algos []string
	var reused []bool
	for _, r := range trace.Records {
		if r.Stage == StageNeighbor {
			algos = append(algos, r.Algo)
			reused = append(reused, r.Reused)
		}
	}
	// Distance-1 reuse over 3 modules: compute, reuse, compute.
	if len(algos) != 3 {
		t.Fatalf("neighbor records = %v", algos)
	}
	if algos[0] != "morton-window" || !reused[1] || algos[1] != "reuse" || reused[2] {
		t.Fatalf("reuse pattern wrong: algos=%v reused=%v", algos, reused)
	}
	if algos[2] != "knn-feature" {
		t.Fatalf("layer 2 should recompute in feature space, got %q", algos[2])
	}
}

func TestDGCNNBaselineUsesCoordKNNFirst(t *testing.T) {
	net, err := NewDGCNN(tinyDGCNNConfig(false, TaskSegmentation))
	if err != nil {
		t.Fatal(err)
	}
	trace := &Trace{}
	if _, err := net.Forward(testCloud(40, 8), trace, false); err != nil {
		t.Fatal(err)
	}
	var algos []string
	for _, r := range trace.Records {
		if r.Stage == StageNeighbor {
			algos = append(algos, r.Algo)
		}
	}
	if algos[0] != "knn-brute" || algos[1] != "knn-feature" || algos[2] != "knn-feature" {
		t.Fatalf("baseline neighbor algos = %v", algos)
	}
}

// The DGCNN gradient checks freeze the neighbor graph by reusing layer 0's
// indexes everywhere (Reuse.Distance ≫ modules): deeper layers' feature-space
// kNN graphs are parameter-dependent and *non-differentiable* — perturbing a
// weight can flip an edge and jump the loss, which corrupts finite
// differences while the analytic per-edge gradients remain correct (verified
// layer-by-layer: layers downstream of the last graph construction match
// numerics to cosine 1.000).

func TestDGCNNGradientCheckSegmentation(t *testing.T) {
	cfg := tinyDGCNNConfig(false, TaskSegmentation)
	cfg.BaseWidth = 3
	cfg.Reuse = core.ReusePolicy{Distance: 10}
	net, err := NewDGCNN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cloud := testCloud(20, 9)
	cos := gradCosine(t, net, cloud, func(o *Output) []int32 { return o.Labels })
	if cos < 0.90 {
		t.Fatalf("gradient cosine %v < 0.90", cos)
	}
}

func TestDGCNNGradientCheckClassification(t *testing.T) {
	cfg := tinyDGCNNConfig(true, TaskClassification)
	cfg.BaseWidth = 3
	cfg.Reuse = core.ReusePolicy{Distance: 10}
	net, err := NewDGCNN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cloud := testCloud(20, 10)
	cos := gradCosine(t, net, cloud, func(o *Output) []int32 { return []int32{1} })
	if cos < 0.90 {
		t.Fatalf("gradient cosine %v < 0.90", cos)
	}
}

func TestModelErrors(t *testing.T) {
	if _, err := NewPointNetPP(PPConfig{Classes: 1}); err == nil {
		t.Fatal("1 class: want error")
	}
	if _, err := NewDGCNN(DGCNNConfig{Classes: 0}); err == nil {
		t.Fatal("0 classes: want error")
	}
	if _, err := NewPointNetPP(PPConfig{Classes: 2, Depth: 2, SAStrategies: make([]ModuleStrategy, 1), FPStrategies: make([]ModuleStrategy, 2)}); err == nil {
		t.Fatal("strategy length mismatch: want error")
	}
	net, err := NewPointNetPP(tinyPPConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Forward(geom.NewCloud(0, 0), nil, false); err == nil {
		t.Fatal("empty cloud: want error")
	}
	if err := net.Backward(tensor.New(1, 3)); err == nil {
		t.Fatal("backward before forward: want error")
	}
}

func TestTraceHelpers(t *testing.T) {
	var tr *Trace
	tr.Add(StageRecord{}) // nil-safe
	tr2 := &Trace{}
	tr2.Add(StageRecord{Stage: StageSample, Dur: 5})
	tr2.Add(StageRecord{Stage: StageSample, Dur: 7})
	tr2.Add(StageRecord{Stage: StageFeature, Dur: 1})
	byStage := tr2.DurByStage()
	if byStage[StageSample] != 12 || byStage[StageFeature] != 1 {
		t.Fatalf("DurByStage = %v", byStage)
	}
	tr2.Reset()
	if len(tr2.Records) != 0 {
		t.Fatal("reset failed")
	}
	if StageSample.String() != "sample" || StageStructurize.String() != "structurize" {
		t.Fatal("stage names wrong")
	}
	if StageKind(99).String() != "unknown" {
		t.Fatal("unknown stage name")
	}
}

func TestFeatKNNMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	feats := tensor.New(30, 5)
	for i := range feats.Data {
		feats.Data[i] = float32(rng.NormFloat64())
	}
	k := 4
	got := featKNN(feats, k)
	// Naive reference.
	for i := 0; i < 30; i++ {
		type cand struct {
			j int
			d float64
		}
		var all []cand
		for j := 0; j < 30; j++ {
			var d float64
			for c := 0; c < 5; c++ {
				dv := float64(feats.At(i, c) - feats.At(j, c))
				d += dv * dv
			}
			all = append(all, cand{j, d})
		}
		for a := 0; a < k; a++ {
			best := a
			for b := a + 1; b < len(all); b++ {
				if all[b].d < all[best].d {
					best = b
				}
			}
			all[a], all[best] = all[best], all[a]
			if math.Abs(all[a].d-distOf(feats, i, got[i*k+a])) > 1e-9 {
				t.Fatalf("featKNN point %d slot %d: dist %v vs %v", i, a, distOf(feats, i, got[i*k+a]), all[a].d)
			}
		}
	}
}

func distOf(feats *tensor.Matrix, i, j int) float64 {
	var d float64
	for c := 0; c < feats.Cols; c++ {
		dv := float64(feats.At(i, c) - feats.At(j, c))
		d += dv * dv
	}
	return d
}

func TestSampledSubsetStaysMortonSorted(t *testing.T) {
	// The level produced by a Morton SA module must itself be flagged
	// Morton-sorted (uniform stride of a sorted sequence is sorted).
	cfg := tinyPPConfig(true)
	cfg.SAStrategies = []ModuleStrategy{
		{MortonSample: true, MortonWindow: true},
		{MortonSample: true, MortonWindow: true},
	}
	net, err := NewPointNetPP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	trace := &Trace{}
	if _, err := net.Forward(testCloud(64, 12), trace, false); err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, r := range trace.Records {
		if r.Stage == StageSample && r.Algo == "morton-pick" {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("expected both SA modules to use morton sampling, got %d", count)
	}
}
