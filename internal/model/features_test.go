package model

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func intensityCloud(n int, seed int64) *geom.Cloud {
	return geom.GenerateScene(geom.SceneOptions{N: n, Intensity: true, Seed: seed})
}

func TestPointNetPPWithExtraFeatures(t *testing.T) {
	cloud := intensityCloud(64, 1)
	for _, morton := range []bool{false, true} {
		cfg := tinyPPConfig(morton)
		cfg.ExtraFeatDim = 1
		cfg.Classes = int(geom.NumSceneClasses)
		net, err := NewPointNetPP(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out, err := net.Forward(cloud, nil, false)
		if err != nil {
			t.Fatalf("morton=%v: %v", morton, err)
		}
		if out.Logits.Rows != cloud.Len() {
			t.Fatalf("logits rows %d", out.Logits.Rows)
		}
	}
}

func TestDGCNNWithExtraFeatures(t *testing.T) {
	cloud := intensityCloud(48, 2)
	cfg := tinyDGCNNConfig(true, TaskSegmentation)
	cfg.ExtraFeatDim = 1
	cfg.Classes = int(geom.NumSceneClasses)
	net, err := NewDGCNN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := net.Forward(cloud, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if out.Logits.Rows != cloud.Len() {
		t.Fatalf("logits rows %d", out.Logits.Rows)
	}
}

func TestExtraFeatureDimMismatch(t *testing.T) {
	cfg := tinyPPConfig(false)
	cfg.ExtraFeatDim = 3
	net, err := NewPointNetPP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Cloud without features against a network expecting 3 extras.
	if _, err := net.Forward(testCloud(32, 1), nil, false); err == nil {
		t.Fatal("missing features: want error")
	}
	// Cloud with 1 feature against a network expecting none: coordinates
	// only are used, features ignored — that must still work.
	plain, err := NewPointNetPP(tinyPPConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Forward(intensityCloud(32, 3), nil, false); err != nil {
		t.Fatalf("extra features on a plain net should be ignored: %v", err)
	}
}

func TestExtraFeaturesGradientCheck(t *testing.T) {
	cfg := tinyPPConfig(false)
	cfg.BaseWidth = 3
	cfg.ExtraFeatDim = 1
	cfg.Classes = int(geom.NumSceneClasses)
	net, err := NewPointNetPP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cloud := intensityCloud(20, 4)
	cos := gradCosine(t, net, cloud, func(o *Output) []int32 { return o.Labels })
	if cos < 0.90 {
		t.Fatalf("gradient cosine %v < 0.90", cos)
	}
}

func TestExtraFeaturesPermutedWithStructurization(t *testing.T) {
	// Features must travel with their points through the Morton reorder:
	// identical results whether we feed the raw or a pre-shuffled cloud.
	cloud := intensityCloud(40, 5)
	cfg := tinyPPConfig(true)
	cfg.ExtraFeatDim = 1
	cfg.Classes = int(geom.NumSceneClasses)
	net, err := NewPointNetPP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := net.Forward(cloud, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := cloud.Clone()
	perm := rand.New(rand.NewSource(9)).Perm(shuffled.Len())
	if err := shuffled.Permute(perm); err != nil {
		t.Fatal(err)
	}
	b, err := net.Forward(shuffled, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	// Both runs structurize to the same Morton order (ties aside), so the
	// label-aligned logits must match up to tie-breaking of equal codes.
	// Compare aggregate statistics, which are permutation-invariant.
	var sumA, sumB float32
	for i := range a.Logits.Data {
		sumA += a.Logits.Data[i]
		sumB += b.Logits.Data[i]
	}
	if diff := sumA - sumB; diff > 1e-2 || diff < -1e-2 {
		t.Fatalf("logit mass differs across input orders: %v vs %v", sumA, sumB)
	}
}
